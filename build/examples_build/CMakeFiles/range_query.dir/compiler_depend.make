# Empty compiler generated dependencies file for range_query.
# This may be replaced when dependencies are built.
