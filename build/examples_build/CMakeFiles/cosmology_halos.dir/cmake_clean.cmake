file(REMOVE_RECURSE
  "../examples/cosmology_halos"
  "../examples/cosmology_halos.pdb"
  "CMakeFiles/cosmology_halos.dir/cosmology_halos.cpp.o"
  "CMakeFiles/cosmology_halos.dir/cosmology_halos.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmology_halos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
