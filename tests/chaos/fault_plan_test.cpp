#include "faultsim/fault_plan.hpp"

#include <gtest/gtest.h>

namespace spio::faultsim {
namespace {

using simmpi::SendAction;

TEST(FaultPlan, RandomIsDeterministicPerSeed) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const FaultPlan a = FaultPlan::random(seed, 8);
    const FaultPlan b = FaultPlan::random(seed, 8);
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

TEST(FaultPlan, DistinctSeedsDiffer) {
  int distinct = 0;
  const FaultPlan base = FaultPlan::random(0, 8);
  for (std::uint64_t seed = 1; seed < 32; ++seed)
    if (!(FaultPlan::random(seed, 8) == base)) ++distinct;
  EXPECT_GT(distinct, 24);  // collisions are possible but must be rare
}

TEST(FaultPlan, RandomPlansAreRecoverableByConstruction) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const FaultPlan p = FaultPlan::random(seed, 6);
    EXPECT_FALSE(p.messages.empty());
    // At most one rule per tag: stacked rules on one tag would make the
    // second rule's trigger depend on retransmission timing.
    if (p.messages.size() == 2)
      EXPECT_NE(p.messages[0].tag, p.messages[1].tag);
    EXPECT_LE(p.messages.size(), 2u);
    for (const MessageRule& r : p.messages) {
      // Only the writer's data tags — never ACKs, never wildcards — and
      // a deterministic, retry-recoverable trigger window.
      EXPECT_TRUE(r.tag == kTagMetaExchange || r.tag == kTagParticleExchange);
      EXPECT_EQ(r.after, 0);
      EXPECT_GE(r.count, 1);
      EXPECT_LE(r.count, 2);
      EXPECT_NE(r.action, SendAction::kDeliver);
    }
    for (const FileRule& r : p.files) {
      EXPECT_NE(r.kind, FileFaultKind::kBitRot);  // silent; targeted only
      EXPECT_NE(r.kind, FileFaultKind::kNone);
      EXPECT_EQ(r.after, 0);
      EXPECT_LE(r.count, 2);
    }
    EXPECT_LE(p.deaths.size(), 1u);
  }
}

TEST(FaultInjector, TriggerWindowCountsMatchingSendsPerRank) {
  FaultPlan plan;
  plan.messages.push_back({SendAction::kDrop, -1, -1, /*tag=*/5,
                           /*after=*/2, /*count=*/2});
  FaultInjector inj(plan, 2);

  // Rank 0: sends 1,2 pass, 3,4 dropped, 5+ pass again.
  EXPECT_EQ(inj.on_send(0, 1, 5, 8), SendAction::kDeliver);
  EXPECT_EQ(inj.on_send(0, 1, 5, 8), SendAction::kDeliver);
  EXPECT_EQ(inj.on_send(0, 1, 5, 8), SendAction::kDrop);
  EXPECT_EQ(inj.on_send(0, 1, 5, 8), SendAction::kDrop);
  EXPECT_EQ(inj.on_send(0, 1, 5, 8), SendAction::kDeliver);
  // A different tag never matches.
  EXPECT_EQ(inj.on_send(0, 1, 6, 8), SendAction::kDeliver);
  // Rank 1 has its own window, unaffected by rank 0's sends.
  EXPECT_EQ(inj.on_send(1, 0, 5, 8), SendAction::kDeliver);
  EXPECT_EQ(inj.on_send(1, 0, 5, 8), SendAction::kDeliver);
  EXPECT_EQ(inj.on_send(1, 0, 5, 8), SendAction::kDrop);

  const auto events = inj.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].rank, 0);
  EXPECT_EQ(events[1].rank, 0);
  EXPECT_EQ(events[2].rank, 1);
  EXPECT_NE(events[0].description.find("drop"), std::string::npos);
}

TEST(FaultInjector, FirstMatchingRuleInWindowWins) {
  FaultPlan plan;
  plan.messages.push_back({SendAction::kDrop, -1, -1, 5, /*after=*/0, 1});
  plan.messages.push_back({SendAction::kDelay, -1, -1, 5, /*after=*/0, 9});
  FaultInjector inj(plan, 1);
  EXPECT_EQ(inj.on_send(0, 0, 5, 1), SendAction::kDrop);
  // First rule's window is spent; the second still matches.
  EXPECT_EQ(inj.on_send(0, 0, 5, 1), SendAction::kDelay);
}

TEST(FaultInjector, FileFaultWindowAndPathFilter) {
  FaultPlan plan;
  plan.files.push_back({FileFaultKind::kTornWrite, /*rank=*/-1, "File_",
                        /*after=*/0, /*count=*/2});
  FaultInjector inj(plan, 2);

  EXPECT_EQ(inj.next_file_fault(0, "meta.spio"), FileFaultKind::kNone);
  EXPECT_EQ(inj.next_file_fault(0, "File_0.bin"), FileFaultKind::kTornWrite);
  EXPECT_EQ(inj.next_file_fault(0, "File_0.bin"), FileFaultKind::kTornWrite);
  EXPECT_EQ(inj.next_file_fault(0, "File_0.bin"), FileFaultKind::kNone);
  // Per-rank window: rank 1's writes are faulted independently.
  EXPECT_EQ(inj.next_file_fault(1, "File_1.bin"), FileFaultKind::kTornWrite);
}

TEST(FaultInjector, RankDeathFiresOnlyForMatchingRankAndPhase) {
  FaultPlan plan;
  plan.deaths.push_back({1, WritePhase::kParticleExchange});
  FaultInjector inj(plan, 4);

  EXPECT_NO_THROW(inj.on_phase(1, WritePhase::kMetaExchange));
  EXPECT_NO_THROW(inj.on_phase(0, WritePhase::kParticleExchange));
  EXPECT_THROW(inj.on_phase(1, WritePhase::kParticleExchange), RankDeath);

  const auto events = inj.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].description.find("particle_exchange"),
            std::string::npos);
}

TEST(FaultInjector, EventsMergeSortedByRankThenSeq) {
  FaultPlan plan;
  plan.messages.push_back({SendAction::kDrop, -1, -1, -1, 0, 100});
  FaultInjector inj(plan, 3);
  // Interleave ranks; per-rank seq must still be contiguous and sorted.
  inj.on_send(2, 0, 1, 1);
  inj.on_send(0, 1, 1, 1);
  inj.on_send(2, 1, 1, 1);
  inj.on_send(1, 2, 1, 1);
  inj.on_send(0, 2, 1, 1);

  const auto events = inj.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_TRUE(events[i - 1].rank < events[i].rank ||
                (events[i - 1].rank == events[i].rank &&
                 events[i - 1].seq < events[i].seq));
  }
}

TEST(FaultNames, AreStable) {
  EXPECT_EQ(phase_name(WritePhase::kSetup), "setup");
  EXPECT_EQ(phase_name(WritePhase::kMetaExchange), "meta_exchange");
  EXPECT_EQ(phase_name(WritePhase::kParticleExchange), "particle_exchange");
  EXPECT_EQ(phase_name(WritePhase::kDataWrite), "data_write");
  EXPECT_EQ(phase_name(WritePhase::kCommit), "commit");
  EXPECT_EQ(file_fault_name(FileFaultKind::kTornWrite), "torn_write");
  EXPECT_EQ(file_fault_name(FileFaultKind::kBitRot), "bit_rot");
  EXPECT_EQ(ack_tag(kTagMetaExchange), 111);
  EXPECT_EQ(ack_tag(kTagParticleExchange), 112);
}

}  // namespace
}  // namespace spio::faultsim
