/// \file readpath_perf_test.cpp
/// Perf smoke tests for the read engine (ctest label `perf`). Like
/// hotpath_perf_test.cpp the bars are several times below what
/// bench/run_hotpath.sh measures, so they trip only on a genuine
/// re-pessimization. One floor is exact rather than generous: a
/// warm-cache query must not open a single file — that is a semantic
/// property of the buffer cache, not a timing.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>

#include "core/read_engine.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double best_seconds(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) best = std::min(best, seconds_of(fn));
  return best;
}

TEST(ReadpathPerf, WarmCacheQueryOpensZeroFiles) {
  TempDir dir("spio-readperf");
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), 8);
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {1, 1, 1};  // one file per patch: the query spans 8 files
  simmpi::run(8, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), 2000,
        stream_seed(55, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * 2000);
    write_dataset(comm, decomp, local, cfg);
  });

  ReadEngine& eng = ReadEngine::instance();
  const std::uint64_t prev_budget = eng.cache_budget();
  eng.set_cache_budget(256ull << 20);
  eng.clear_cache();

  const Dataset ds = Dataset::open(dir.path());
  const Box3 box({0.1, 0.1, 0.1}, {0.9, 0.9, 0.9});
  ds.query_box(box);  // prime

  ReadStats warm;
  const ParticleBuffer out = ds.query_box(box, -1, 1, &warm);
  EXPECT_GT(out.size(), 0u);
  EXPECT_EQ(warm.files_opened, 0) << "warm-cache query touched disk";
  EXPECT_EQ(warm.bytes_read, 0u);
  EXPECT_GT(warm.cache_hits, 0u);

  eng.set_cache_budget(prev_budget);
}

TEST(ReadpathPerf, FusedFilterBoxSustainsTwoMillionParticlesPerSecond) {
  constexpr std::uint64_t kParticles = 500000;
  const auto buf = workload::uniform(Schema::uintah(), Box3::unit(),
                                     kParticles, stream_seed(56, 0), 0);
  const Box3 half({0, 0, 0}, {0.5, 1, 1});

  ParticleBuffer out(Schema::uintah());
  const double s = best_seconds(3, [&] {
    out.clear();
    const auto n =
        read_detail::filter_box(buf.bytes(), buf.schema(), half, out);
    ASSERT_GT(n, 0u);
  });

  const double mpps = static_cast<double>(kParticles) / 1e6 / s;
  EXPECT_GE(mpps, 2.0) << "fused filter_box dropped to " << mpps
                       << " Mparticles/s; the run-copy kernel sustains "
                          "several times this";
}

}  // namespace
}  // namespace spio
