#pragma once

/// \file thread_pool.hpp
/// Small bounded worker pool shared by the read engine (and reusable by
/// any other subsystem that needs fan-out over independent tasks).
///
/// Semantics are chosen for determinism and exact serial fallback:
///   - `ThreadPool(1)` spawns no threads at all; `submit` runs the task
///     inline on the calling thread and returns an already-satisfied
///     future. A pool of size 1 therefore reproduces single-threaded
///     execution *exactly* (same call stack, same ordering, same
///     exception propagation point).
///   - `ThreadPool(n >= 2)` spawns `n` workers draining one FIFO queue.
///     Multiple threads may submit concurrently (simmpi ranks are
///     threads of one process and share the global read engine's pool);
///     tasks never block on other tasks, so the bounded pool cannot
///     deadlock.
///
/// Exceptions thrown by a task are captured in its future
/// (`std::packaged_task` semantics) and rethrown to the waiter.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace spio {

class ThreadPool {
 public:
  /// \param threads maximum task concurrency; clamped to >= 1.
  ///        1 = inline execution, no threads spawned.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum number of tasks that can run concurrently (1 = inline).
  int concurrency() const { return concurrency_; }

  /// Schedule `fn`; the returned future is satisfied when it completes
  /// (holding its exception if it threw). Inline pools run `fn` before
  /// returning.
  std::future<void> submit(std::function<void()> fn);

  /// Run every task of `tasks` and block until all have completed.
  /// Task order of *completion* is unspecified; callers that need a
  /// deterministic result order must write into per-task slots and merge
  /// after this returns. Exceptions are captured per task; `run_batch`
  /// itself does not throw on task failure (inspect per-task state).
  void run_batch(std::vector<std::function<void()>> tasks);

 private:
  void worker_loop();

  const int concurrency_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace spio
