#include "iosim/event_sim.hpp"

#include <algorithm>

namespace spio::iosim {

EventSim::EventSim(int num_servers)
    : server_free_(static_cast<std::size_t>(num_servers), 0.0),
      server_busy_(static_cast<std::size_t>(num_servers), 0.0) {
  SPIO_EXPECTS(num_servers >= 1);
}

int EventSim::submit(int server, double ready, double service) {
  SPIO_EXPECTS(!ran_);
  SPIO_EXPECTS(server >= 0 && server < server_count());
  SPIO_EXPECTS(ready >= 0.0 && service >= 0.0);
  const int id = static_cast<int>(jobs_.size());
  jobs_.push_back({id, server, ready, service});
  return id;
}

void EventSim::run() {
  SPIO_EXPECTS(!ran_);
  ran_ = true;
  completion_.resize(jobs_.size());

  // Event-ordered processing: jobs become eligible at their ready time;
  // each server serves eligible jobs FIFO by (ready, id). A min-heap over
  // (ready, id) yields jobs in eligibility order; because servers are
  // work-conserving FIFO queues, assigning jobs to servers in that order
  // reproduces the discrete-event schedule exactly.
  std::vector<const Job*> order;
  order.reserve(jobs_.size());
  for (const Job& j : jobs_) order.push_back(&j);
  std::stable_sort(order.begin(), order.end(),
                   [](const Job* a, const Job* b) { return a->ready < b->ready; });

  for (const Job* j : order) {
    auto& server_free = server_free_[static_cast<std::size_t>(j->server)];
    const double start = std::max(j->ready, server_free);
    const double done = start + j->service;
    server_free = done;
    server_busy_[static_cast<std::size_t>(j->server)] += j->service;
    completion_[static_cast<std::size_t>(j->id)] = done;
  }
}

double EventSim::completion(int id) const {
  SPIO_EXPECTS(ran_);
  SPIO_EXPECTS(id >= 0 && id < static_cast<int>(completion_.size()));
  return completion_[static_cast<std::size_t>(id)];
}

double EventSim::makespan() const {
  SPIO_EXPECTS(ran_);
  double m = 0;
  for (double c : completion_) m = std::max(m, c);
  return m;
}

double EventSim::busy_time(int server) const {
  SPIO_EXPECTS(server >= 0 && server < server_count());
  return server_busy_[static_cast<std::size_t>(server)];
}

}  // namespace spio::iosim
