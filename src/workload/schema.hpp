#pragma once

/// \file schema.hpp
/// Particle record schemas. A schema is an ordered list of named fields,
/// each with an element type and component count; records are stored AoS
/// (array of structures), which is how simulation codes hand their
/// per-particle state to the I/O layer.
///
/// The default schema reproduces the paper's evaluation workload (§5.1):
/// 15 double-precision values (position ×3, stress tensor ×9, density,
/// volume, ID) and one single-precision value (type) = 124 bytes/particle.

#include <cstdint>
#include <string>
#include <vector>

#include "util/serialize.hpp"

namespace spio {

/// Element type of a field.
enum class FieldType : std::uint8_t {
  kF32 = 0,
  kF64 = 1,
};

/// Size in bytes of one element of `t`.
constexpr std::size_t field_type_size(FieldType t) {
  return t == FieldType::kF32 ? 4 : 8;
}

/// One named field of a particle record.
struct FieldDesc {
  std::string name;
  FieldType type = FieldType::kF64;
  std::uint32_t components = 1;

  bool operator==(const FieldDesc&) const = default;

  std::size_t byte_size() const {
    return field_type_size(type) * components;
  }
};

/// An ordered collection of fields defining the particle record layout.
///
/// Invariant: the first field is named "position" with type f64 ×3; the
/// spatial I/O layer needs a position to place each particle.
class Schema {
 public:
  /// Builds a schema; validates the position invariant and uniqueness of
  /// field names. Throws `ConfigError` on violation.
  explicit Schema(std::vector<FieldDesc> fields);

  /// The paper's Uintah-representative schema: position f64x3,
  /// stress f64x9, density f64, volume f64, id f64, type f32.
  static Schema uintah();

  /// Minimal schema: position only (24 B/particle). Used by tests that do
  /// not care about attribute payloads.
  static Schema position_only();

  const std::vector<FieldDesc>& fields() const { return fields_; }
  std::size_t field_count() const { return fields_.size(); }

  /// Bytes per particle record.
  std::size_t record_size() const { return record_size_; }

  /// Byte offset of field `i` within a record.
  std::size_t offset(std::size_t i) const { return offsets_[i]; }

  /// Index of the field with `name`; throws `ConfigError` if absent.
  std::size_t index_of(const std::string& name) const;

  bool operator==(const Schema& o) const { return fields_ == o.fields_; }

  /// Serialize to / parse from the metadata file payload.
  void serialize(BinaryWriter& w) const;
  static Schema deserialize(BinaryReader& r);

 private:
  std::vector<FieldDesc> fields_;
  std::vector<std::size_t> offsets_;
  std::size_t record_size_ = 0;
};

}  // namespace spio
