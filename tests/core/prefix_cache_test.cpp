/// \file prefix_cache_test.cpp
/// Property tests for the sharded prefix cache: seeded random op
/// sequences (lookup/insert/invalidate/clear plus signature bumps that
/// model in-place rewrites) checked differentially against the
/// single-shard reference, plus invariants under tight budgets, a
/// concurrent-reader staleness hammer, and the SoA position mirror's
/// lifecycle (charged on insert, evicted with the prefix, dropped on
/// staleness).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/prefix_cache.hpp"
#include "simd/position_mirror.hpp"
#include "util/rng.hpp"

namespace spio {
namespace {

/// A block whose payload is derived from (key, sig): every byte is
/// checkable against what a correct cache must return for that exact
/// signature.
std::shared_ptr<const ByteBlock> make_block(const std::string& key,
                                            const FileSig& sig,
                                            std::size_t size) {
  auto block = std::make_shared<ByteBlock>(size);
  const std::uint64_t tag =
      std::hash<std::string>{}(key) ^ sig.size ^
      static_cast<std::uint64_t>(sig.mtime_ns) * 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < size; ++i)
    block->data()[i] = static_cast<std::byte>((tag >> (8 * (i % 8))) & 0xff);
  return block;
}

bool block_matches(const ByteBlock& got, const std::string& key,
                   const FileSig& sig) {
  const auto want = make_block(key, sig, got.size());
  return std::memcmp(got.span().data(), want->span().data(), got.size()) == 0;
}

/// Differential check: under an effectively unbounded budget (so
/// per-shard eviction pressure never differs), a sharded cache must be
/// op-for-op indistinguishable from the single-shard reference —
/// same hit/miss outcome per lookup, same bytes, same aggregate
/// counters at the end.
TEST(PrefixCacheProperty, ShardedMatchesSingleShardReferenceOpForOp) {
  constexpr std::uint64_t kBudget = 1ull << 30;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ShardedPrefixCache sharded(kBudget, 8);
    PrefixCache reference(kBudget);
    Xoshiro256 rng(stream_seed(7100, seed));

    // Per-key "current file signature"; a bump models an in-place
    // rewrite of the underlying file.
    std::vector<FileSig> sigs(24);
    for (std::size_t k = 0; k < sigs.size(); ++k)
      sigs[k] = FileSig{100 + 64 * k, 1};

    for (int op = 0; op < 800; ++op) {
      const std::size_t k = rng.uniform_index(sigs.size());
      const std::string key = "file-" + std::to_string(k) + "\x01" +
                              std::to_string(sigs[k].size);
      switch (rng.uniform_index(10)) {
        case 0:  // rewrite in place: same size, new mtime
          sigs[k].mtime_ns += 1;
          break;
        case 1:
          sharded.invalidate(key);
          reference.invalidate(key);
          break;
        case 2: case 3: case 4: {
          const auto data =
              make_block(key, sigs[k], static_cast<std::size_t>(sigs[k].size));
          sharded.insert(key, data, sigs[k]);
          reference.insert(key, data, sigs[k]);
          break;
        }
        default: {
          const auto got = sharded.lookup(key, sigs[k]);
          const auto ref = reference.lookup(key, sigs[k]);
          ASSERT_EQ(got != nullptr, ref != nullptr)
              << "seed " << seed << " op " << op;
          if (got) {
            ASSERT_TRUE(block_matches(*got, key, sigs[k]))
                << "seed " << seed << " op " << op;
          }
          break;
        }
      }
    }

    const ReadCacheStats got = sharded.stats();
    const ReadCacheStats ref = reference.stats();
    EXPECT_EQ(got.hits, ref.hits) << "seed " << seed;
    EXPECT_EQ(got.misses, ref.misses) << "seed " << seed;
    EXPECT_EQ(got.evictions, ref.evictions) << "seed " << seed;
    EXPECT_EQ(got.bytes_evicted, ref.bytes_evicted) << "seed " << seed;
    EXPECT_EQ(got.bytes_held, ref.bytes_held) << "seed " << seed;
    EXPECT_EQ(got.entries, ref.entries) << "seed " << seed;
  }
}

/// Under arbitrary tight budgets and any shard count, the cache must
/// (a) never hold more than its budget, (b) never serve bytes that do
/// not match the requested signature, and (c) keep its eviction
/// accounting consistent (held + evicted == inserted payload).
TEST(PrefixCacheProperty, BudgetAndAccountingInvariantsAcrossShardCounts) {
  for (const int shards : {1, 2, 8}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const std::uint64_t budget = 4096 + 512 * seed;
      ShardedPrefixCache cache(budget, shards);
      Xoshiro256 rng(stream_seed(7200, seed * 31 +
                                 static_cast<std::uint64_t>(shards)));
      std::vector<FileSig> sigs(12);
      for (std::size_t k = 0; k < sigs.size(); ++k)
        sigs[k] = FileSig{64 + 96 * k, 1};

      std::uint64_t inserted_bytes = 0;
      std::uint64_t inserts = 0;
      for (int op = 0; op < 600; ++op) {
        const std::size_t k = rng.uniform_index(sigs.size());
        const std::string key = "k" + std::to_string(k);
        if (rng.uniform_index(3) == 0) {
          const std::size_t size = static_cast<std::size_t>(sigs[k].size);
          cache.insert(key, make_block(key, sigs[k], size), sigs[k]);
          inserted_bytes += size;
          ++inserts;
        } else {
          const auto got = cache.lookup(key, sigs[k]);
          if (got) {
            ASSERT_TRUE(block_matches(*got, key, sigs[k]));
          }
        }
        const ReadCacheStats s = cache.stats();
        ASSERT_LE(s.bytes_held, budget) << "shards " << shards;
      }
      const ReadCacheStats s = cache.stats();
      // Every resident or evicted byte was inserted; payloads over the
      // per-shard budget were never admitted, hence <= not ==.
      EXPECT_LE(s.bytes_held + s.bytes_evicted, inserted_bytes);
      EXPECT_EQ(s.misses, inserts);  // insert counts exactly one miss
    }
  }
}

/// The SoA position mirror rides cache entries and must obey the same
/// lifecycle as the prefix it mirrors: its bytes count against the
/// budget (admission, residency, and eviction accounting alike), a hit
/// returns exactly the inserted mirror, and a staleness drop or
/// invalidation releases it with the prefix — a mirror can never
/// outlive the bytes it mirrors.
TEST(PrefixCacheProperty, MirrorBytesAreChargedEvictedAndInvalidatedWithPrefix) {
  constexpr std::size_t kRecord = 24;  // position-only records
  const auto mirror_for = [](const std::shared_ptr<const ByteBlock>& b) {
    return PositionMirror::build(b->span(), kRecord, 0);
  };

  // Exact charge: prefix bytes + mirror bytes, dropped together on an
  // in-place rewrite (stale signature).
  {
    PrefixCache cache(1ull << 20);
    const FileSig sig{10 * kRecord, 1};
    const auto data = make_block("m", sig, 10 * kRecord);
    const auto mirror = mirror_for(data);
    cache.insert("m", data, sig, mirror);
    EXPECT_EQ(cache.stats().bytes_held,
              data->size() + PositionMirror::bytes_for_count(10));
    std::shared_ptr<const PositionMirror> got_mirror;
    ASSERT_NE(cache.lookup("m", sig, &got_mirror), nullptr);
    EXPECT_EQ(got_mirror.get(), mirror.get());
    const FileSig bumped{10 * kRecord, 2};
    got_mirror = mirror;  // poison the out-param; a miss must reset it
    EXPECT_EQ(cache.lookup("m", bumped, &got_mirror), nullptr);
    EXPECT_EQ(got_mirror, nullptr);
    EXPECT_EQ(cache.stats().bytes_held, 0u);
  }

  // Admission counts the mirror: a prefix that fits alone is refused
  // once its mirror pushes the charge over budget.
  {
    const FileSig sig{40 * kRecord, 1};
    const auto data = make_block("a", sig, 40 * kRecord);
    const auto mirror = mirror_for(data);
    PrefixCache tight(data->size() + mirror->byte_size() - 1);
    tight.insert("a", data, sig, mirror);
    EXPECT_EQ(tight.stats().entries, 0u);
    PrefixCache fits(data->size() + mirror->byte_size());
    fits.insert("a", data, sig, mirror);
    EXPECT_EQ(fits.stats().entries, 1u);
  }

  // Random op property across shard counts, with mirrors on half the
  // inserts: the budget bound and the held+evicted <= inserted-charge
  // accounting must hold with mirror bytes in every term.
  for (const int shards : {1, 4}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const std::uint64_t budget = 8192 + 1024 * seed;
      ShardedPrefixCache cache(budget, shards);
      Xoshiro256 rng(stream_seed(7400, seed * 17 +
                                 static_cast<std::uint64_t>(shards)));
      std::vector<FileSig> sigs(10);
      for (std::size_t k = 0; k < sigs.size(); ++k)
        sigs[k] = FileSig{kRecord * (4 + 8 * k), 1};

      std::uint64_t inserted_charge = 0;
      for (int op = 0; op < 500; ++op) {
        const std::size_t k = rng.uniform_index(sigs.size());
        const std::string key = "k" + std::to_string(k);
        switch (rng.uniform_index(4)) {
          case 0:  // in-place rewrite
            sigs[k].mtime_ns += 1;
            break;
          case 1: {
            const std::size_t size = static_cast<std::size_t>(sigs[k].size);
            const auto data = make_block(key, sigs[k], size);
            std::shared_ptr<const PositionMirror> m;
            if (rng.uniform_index(2) == 0) m = mirror_for(data);
            cache.insert(key, data, sigs[k], m);
            inserted_charge += size + (m ? m->byte_size() : 0);
            break;
          }
          default: {
            std::shared_ptr<const PositionMirror> m;
            const auto got = cache.lookup(key, sigs[k], &m);
            if (got) {
              ASSERT_TRUE(block_matches(*got, key, sigs[k]));
              // A returned mirror always describes the returned bytes.
              if (m) ASSERT_EQ(m->size(), got->size() / kRecord);
            } else {
              ASSERT_EQ(m, nullptr);
            }
            break;
          }
        }
        ASSERT_LE(cache.stats().bytes_held, budget)
            << "shards " << shards << " seed " << seed;
      }
      const ReadCacheStats s = cache.stats();
      EXPECT_LE(s.bytes_held + s.bytes_evicted, inserted_charge)
          << "shards " << shards << " seed " << seed;
    }
  }
}

/// The eviction-accounting audit, pinned exactly: when every insert is
/// admitted (payload + mirror within the per-shard budget), each byte
/// charged on insert is either still held or has been counted into
/// `bytes_evicted` — by budget pressure, replacement, staleness drop,
/// invalidation, or clear(). `held + evicted == inserted charge` as an
/// exact `==`, across shard counts, with mirror bytes in every term;
/// a drift here is the read-amplification accounting lying.
TEST(PrefixCacheProperty, ChargeEqualsEvictExactlyWhenAllInsertsAdmitted) {
  constexpr std::size_t kRecord = 24;
  for (const int shards : {1, 4, 8}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      // Per-shard budget stays comfortably above the largest possible
      // charge (block + mirror), so no insert is ever refused — the
      // one case where charge and evict may legitimately diverge.
      const std::uint64_t budget =
          static_cast<std::uint64_t>(shards) * 4096;
      ShardedPrefixCache cache(budget, shards);
      Xoshiro256 rng(stream_seed(7500, seed * 13 +
                                 static_cast<std::uint64_t>(shards)));
      std::vector<FileSig> sigs(10);
      for (std::size_t k = 0; k < sigs.size(); ++k)
        sigs[k] = FileSig{kRecord * (2 + 3 * k), 1};

      std::uint64_t inserted_charge = 0;
      for (int op = 0; op < 600; ++op) {
        const std::size_t k = rng.uniform_index(sigs.size());
        const std::string key = "k" + std::to_string(k);
        switch (rng.uniform_index(6)) {
          case 0:  // in-place rewrite; the next lookup drops it stale
            sigs[k].mtime_ns += 1;
            break;
          case 1:
            cache.invalidate(key);
            break;
          case 2: case 3: {
            const std::size_t size = static_cast<std::size_t>(sigs[k].size);
            const auto data = make_block(key, sigs[k], size);
            std::shared_ptr<const PositionMirror> m;
            if (rng.uniform_index(2) == 0)
              m = PositionMirror::build(data->span(), kRecord, 0);
            inserted_charge += size + (m ? m->byte_size() : 0);
            cache.insert(key, data, sigs[k], std::move(m));
            break;
          }
          default: {
            const auto got = cache.lookup(key, sigs[k]);
            if (got) ASSERT_TRUE(block_matches(*got, key, sigs[k]));
            break;
          }
        }
        const ReadCacheStats s = cache.stats();
        ASSERT_EQ(s.bytes_held + s.bytes_evicted, inserted_charge)
            << "shards " << shards << " seed " << seed << " op " << op;
      }
      // clear() drains the residue into bytes_evicted: the ledger must
      // balance to the byte.
      cache.clear();
      const ReadCacheStats s = cache.stats();
      EXPECT_EQ(s.bytes_held, 0u);
      EXPECT_EQ(s.bytes_evicted, inserted_charge)
          << "shards " << shards << " seed " << seed;
    }
  }
}

/// The staleness guarantee under concurrency: one writer rewrites keys
/// in place (new signature, new payload) while readers look up with the
/// signature they last observed. A reader must either miss or get bytes
/// that match *its* requested signature — never a torn or stale view.
TEST(PrefixCacheProperty, InPlaceRewriteNeverServedStaleToConcurrentReaders) {
  constexpr std::size_t kKeys = 8;
  constexpr std::size_t kBlock = 256;
  ShardedPrefixCache cache(1ull << 24, 8);
  std::vector<std::atomic<std::int64_t>> version(kKeys);
  for (auto& v : version) v.store(1);

  std::atomic<bool> stop{false};
  std::atomic<int> hits{0};

  std::thread writer([&] {
    Xoshiro256 rng(stream_seed(7300, 1));
    // Keep rewriting until the readers have landed real hits (with a
    // generous cap): on a loaded single-core box a fixed iteration
    // count can finish before any reader is even scheduled.
    for (int i = 0; i < 400000 && hits.load() < 64; ++i) {
      const std::size_t k = rng.uniform_index(kKeys);
      const std::int64_t v = version[k].load() + 1;
      const std::string key = "k" + std::to_string(k);
      const FileSig sig{kBlock, v};
      cache.insert(key, make_block(key, sig, kBlock), sig);
      version[k].store(v);
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r)
    readers.emplace_back([&, r] {
      Xoshiro256 rng(stream_seed(7301, static_cast<std::uint64_t>(r)));
      while (!stop.load()) {
        const std::size_t k = rng.uniform_index(kKeys);
        const std::int64_t v = version[k].load();
        const std::string key = "k" + std::to_string(k);
        const FileSig sig{kBlock, v};
        if (const auto got = cache.lookup(key, sig)) {
          // The payload must encode the exact signature we asked for.
          ASSERT_TRUE(block_matches(*got, key, sig));
          hits.fetch_add(1);
        }
      }
    });

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_GT(hits.load(), 0) << "hammer never hit: test lost its teeth";
}

}  // namespace
}  // namespace spio
