#include "workload/schema.hpp"

#include <unordered_set>

#include "util/error.hpp"

namespace spio {

Schema::Schema(std::vector<FieldDesc> fields) : fields_(std::move(fields)) {
  SPIO_CHECK(!fields_.empty(), ConfigError, "schema must have fields");
  SPIO_CHECK(fields_.front().name == "position" &&
                 fields_.front().type == FieldType::kF64 &&
                 fields_.front().components == 3,
             ConfigError,
             "schema must begin with field 'position' (f64 x3)");
  std::unordered_set<std::string> names;
  offsets_.reserve(fields_.size());
  for (const FieldDesc& f : fields_) {
    SPIO_CHECK(f.components > 0, ConfigError,
               "field '" << f.name << "' has zero components");
    SPIO_CHECK(names.insert(f.name).second, ConfigError,
               "duplicate field name '" << f.name << "'");
    offsets_.push_back(record_size_);
    record_size_ += f.byte_size();
  }
}

Schema Schema::uintah() {
  return Schema({
      {"position", FieldType::kF64, 3},
      {"stress", FieldType::kF64, 9},
      {"density", FieldType::kF64, 1},
      {"volume", FieldType::kF64, 1},
      {"id", FieldType::kF64, 1},
      {"type", FieldType::kF32, 1},
  });
}

Schema Schema::position_only() {
  return Schema({{"position", FieldType::kF64, 3}});
}

std::size_t Schema::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i)
    if (fields_[i].name == name) return i;
  throw ConfigError("schema has no field named '" + name + "'");
}

void Schema::serialize(BinaryWriter& w) const {
  w.write<std::uint32_t>(static_cast<std::uint32_t>(fields_.size()));
  for (const FieldDesc& f : fields_) {
    w.write_string(f.name);
    w.write<std::uint8_t>(static_cast<std::uint8_t>(f.type));
    w.write<std::uint32_t>(f.components);
  }
}

Schema Schema::deserialize(BinaryReader& r) {
  const auto n = r.read<std::uint32_t>();
  SPIO_CHECK(n > 0 && n < 4096, FormatError,
             "implausible schema field count " << n);
  std::vector<FieldDesc> fields;
  fields.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    FieldDesc f;
    f.name = r.read_string();
    const auto t = r.read<std::uint8_t>();
    SPIO_CHECK(t <= 1, FormatError, "unknown field type tag " << int(t));
    f.type = static_cast<FieldType>(t);
    f.components = r.read<std::uint32_t>();
    fields.push_back(std::move(f));
  }
  return Schema(std::move(fields));
}

}  // namespace spio
