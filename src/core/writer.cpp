#include "core/writer.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "core/journal.hpp"
#include "core/metadata.hpp"
#include "faultsim/checked_io.hpp"
#include "faultsim/fault_plan.hpp"
#include "simmpi/reduce_ops.hpp"
#include "util/checksum.hpp"
#include "util/serialize.hpp"

namespace spio {

namespace {

// Point-to-point tags of the write pipeline; owned by the fault layer so
// fault plans address the same sites the writer uses.
constexpr int kTagMeta = faultsim::kTagMetaExchange;      // u64 count
constexpr int kTagData = faultsim::kTagParticleExchange;  // particle records

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Partition the local particles by target aggregation partition.
/// Aligned fast path: the whole buffer goes to one partition, no scan.
/// General path: per-particle binning (the cost the aligned grid avoids).
std::map<int, ParticleBuffer> bin_particles(const ParticleBuffer& local,
                                            const AggregationPlan& plan,
                                            bool use_fast_path) {
  std::map<int, ParticleBuffer> bins;
  if (local.empty()) return bins;
  if (use_fast_path) {
    const int p = plan.partitioning().partition_of_point(local.position(0));
    ParticleBuffer bin(local.schema());
    bin.adopt_bytes(std::vector<std::byte>(local.bytes().begin(),
                                           local.bytes().end()));
    bins.emplace(p, std::move(bin));
    return bins;
  }
  for (std::size_t i = 0; i < local.size(); ++i) {
    const int p = plan.partitioning().partition_of_point(local.position(i));
    auto it = bins.find(p);
    if (it == bins.end())
      it = bins.emplace(p, ParticleBuffer(local.schema())).first;
    it->second.append_from(local, i);
  }
  return bins;
}

/// Min/max of every field component over the aggregated particles (§3.5
/// metadata extension). Precondition: non-empty buffer.
std::vector<FieldRange> compute_field_ranges(const ParticleBuffer& buf) {
  SPIO_EXPECTS(!buf.empty());
  const Schema& s = buf.schema();
  std::vector<FieldRange> ranges;
  for (std::size_t f = 0; f < s.field_count(); ++f) {
    const FieldDesc& fd = s.fields()[f];
    for (std::uint32_t c = 0; c < fd.components; ++c) {
      FieldRange r;
      for (std::size_t i = 0; i < buf.size(); ++i) {
        const double v = fd.type == FieldType::kF64
                             ? buf.get_f64(i, f, c)
                             : static_cast<double>(buf.get_f32(i, f, c));
        if (i == 0) {
          r.min = r.max = v;
        } else {
          r.min = std::min(r.min, v);
          r.max = std::max(r.max, v);
        }
      }
      ranges.push_back(r);
    }
  }
  return ranges;
}

}  // namespace

WriteStats WriteStats::max_over(const WriteStats& a, const WriteStats& b) {
  WriteStats m;
  m.setup_seconds = std::max(a.setup_seconds, b.setup_seconds);
  m.meta_exchange_seconds =
      std::max(a.meta_exchange_seconds, b.meta_exchange_seconds);
  m.particle_exchange_seconds =
      std::max(a.particle_exchange_seconds, b.particle_exchange_seconds);
  m.reorder_seconds = std::max(a.reorder_seconds, b.reorder_seconds);
  m.file_io_seconds = std::max(a.file_io_seconds, b.file_io_seconds);
  m.metadata_io_seconds =
      std::max(a.metadata_io_seconds, b.metadata_io_seconds);
  m.particles_sent = a.particles_sent + b.particles_sent;
  m.bytes_sent = a.bytes_sent + b.bytes_sent;
  m.particles_written = a.particles_written + b.particles_written;
  m.bytes_written = a.bytes_written + b.bytes_written;
  m.files_written = a.files_written + b.files_written;
  m.partition_count = std::max(a.partition_count, b.partition_count);
  m.was_aggregator = a.was_aggregator || b.was_aggregator;
  m.used_aligned_fast_path =
      a.used_aligned_fast_path || b.used_aligned_fast_path;
  return m;
}

WriteStats write_dataset(simmpi::Comm& comm, const PatchDecomposition& decomp,
                         const ParticleBuffer& local,
                         const WriterConfig& config) {
  SPIO_CHECK(!config.dir.empty(), ConfigError,
             "WriterConfig.dir must be set");
  SPIO_CHECK(config.factor.valid(), ConfigError,
             "invalid partition factor " << config.factor.to_string());
  SPIO_CHECK(config.lod.valid(), ConfigError,
             "invalid LOD parameters P=" << config.lod.P
                                         << " S=" << config.lod.S);
  SPIO_CHECK(comm.size() == decomp.rank_count(), ConfigError,
             "decomposition has " << decomp.rank_count()
                                  << " patches for a job of " << comm.size()
                                  << " ranks");

  WriteStats stats;
  const int rank = comm.rank();

  // Rank 0 creates the dataset directory and opens the write journal
  // before anyone writes into it: from here until the metadata commit,
  // a crash leaves a journal that marks the directory incomplete.
  if (rank == 0) {
    std::error_code ec;
    std::filesystem::create_directories(config.dir, ec);
    SPIO_CHECK(!ec, IoError, "cannot create dataset directory '"
                                 << config.dir.string()
                                 << "': " << ec.message());
    if (config.journal) WriteJournal::begin(config.dir);
  }
  comm.barrier();

  // Fault-injection plumbing: phase announcements (scripted rank death)
  // and the acknowledged exchange that recovers dropped, duplicated and
  // delayed messages. Without an injector both collapse to the plain
  // protocol.
  const auto enter_phase = [&](faultsim::WritePhase phase) {
    if (config.faults) config.faults->on_phase(rank, phase);
  };
  const auto exchange = [&](std::vector<faultsim::Outbound> out,
                            const std::vector<int>& expect, int tag) {
    if (config.faults) {
      return faultsim::reliable_exchange(comm, std::move(out), expect, tag,
                                         config.retry);
    }
    for (auto& o : out) comm.send_bytes(o.dst, tag, std::move(o.payload));
    std::vector<std::vector<std::byte>> in;
    in.reserve(expect.size());
    for (const int s : expect) in.push_back(comm.recv_message(s, tag).payload);
    return in;
  };
  enter_phase(faultsim::WritePhase::kSetup);

  // ---- step 1 + 2: aggregation grid setup and aggregator selection ----
  auto t0 = Clock::now();
  const Box3 local_bounds = local.bounds();
  // The simulation contract is that particles lie within their owner's
  // patch; drifting particles (e.g. a checkpoint taken mid-advection)
  // break it. Detect spill collectively so every rank picks the same
  // plan construction.
  const bool my_spill =
      !local.empty() && !decomp.patch(rank).contains_box(local_bounds);
  AggregationPlan plan = [&] {
    if (config.adaptive || comm.allreduce(my_spill, simmpi::op::logical_or)) {
      // All-to-all exchange of tight extents + counts (§6); also used to
      // repair the communication sets when particles strayed.
      RankExtent mine{local_bounds, local.size()};
      const std::vector<RankExtent> extents = comm.allgather(mine);
      if (!config.adaptive) {
        return AggregationPlan::non_adaptive_with_extents(
            decomp, config.factor, config.placement, extents);
      }
      return config.adaptive_refine
                 ? AggregationPlan::adaptive_refined(
                       decomp, config.factor, config.placement, extents)
                 : AggregationPlan::adaptive(decomp, config.factor,
                                             config.placement, extents);
    }
    return AggregationPlan::non_adaptive(decomp, config.factor,
                                         config.placement);
  }();
  stats.partition_count = plan.partition_count();

  // The aligned fast path ships whole buffers without a per-particle
  // scan; it applies only when the plan is patch-aligned and this rank's
  // particles verifiably stayed home.
  const bool fast_path = plan.aligned() && !config.force_general_exchange &&
                         (local.empty() ||
                          decomp.patch(rank).contains_box(local_bounds));
  stats.used_aligned_fast_path = fast_path && !local.empty();
  stats.setup_seconds = seconds_since(t0);

  // ---- step 3: metadata exchange (counts) ----
  enter_phase(faultsim::WritePhase::kMetaExchange);
  t0 = Clock::now();
  std::map<int, ParticleBuffer> bins = bin_particles(local, plan, fast_path);
  // A bin must never target a partition outside the plan's target set —
  // that aggregator would not expect our message.
  for (const auto& [p, bin] : bins) {
    SPIO_CHECK(std::binary_search(plan.targets_of(rank).begin(),
                                  plan.targets_of(rank).end(), p),
               ConfigError,
               "rank " << rank << " holds particles for partition " << p
                       << " outside its plan target set; particles stray "
                          "outside the declared patch/extent");
  }
  // Send a count to the aggregator of every partition we *might* feed
  // (the plan's conservative target set), so receivers can post a matching
  // number of receives without a handshake.
  std::vector<faultsim::Outbound> count_msgs;
  for (const int p : plan.targets_of(rank)) {
    const auto it = bins.find(p);
    const std::uint64_t count = it == bins.end() ? 0 : it->second.size();
    BinaryWriter w;
    w.write<std::uint64_t>(count);
    count_msgs.push_back({plan.aggregator_of(p), w.take()});
  }

  const int my_partition = plan.partition_owned_by(rank);
  const std::vector<int> count_senders =
      my_partition >= 0 ? plan.senders_of(my_partition) : std::vector<int>{};
  const auto count_payloads =
      exchange(std::move(count_msgs), count_senders, kTagMeta);

  std::vector<std::uint64_t> incoming_counts(count_senders.size());
  std::uint64_t incoming_total = 0;
  if (my_partition >= 0) {
    for (std::size_t i = 0; i < count_senders.size(); ++i) {
      BinaryReader r(count_payloads[i]);
      incoming_counts[i] = r.read<std::uint64_t>();
      SPIO_CHECK(r.remaining() == 0, FormatError,
                 "count message from rank " << count_senders[i]
                                            << " carries trailing bytes");
      incoming_total += incoming_counts[i];
    }
    // The metadata exchange is exactly what lets the aggregator size its
    // buffer *before* any data moves — so an infeasible aggregation can
    // be rejected here instead of running out of memory mid-exchange.
    const std::uint64_t need = incoming_total * local.record_size();
    SPIO_CHECK(config.max_aggregation_bytes == 0 ||
                   need <= config.max_aggregation_bytes,
               ConfigError,
               "aggregator " << rank << " (partition " << my_partition
                             << ") would need " << need
                             << " bytes, over the configured limit of "
                             << config.max_aggregation_bytes
                             << "; use a smaller partition factor");
  }
  stats.meta_exchange_seconds = seconds_since(t0);

  // ---- steps 4 + 5: allocate aggregation buffer, exchange particles ----
  enter_phase(faultsim::WritePhase::kParticleExchange);
  t0 = Clock::now();
  std::vector<faultsim::Outbound> particle_msgs;
  for (auto& [p, bin] : bins) {
    if (bin.empty()) continue;
    const int agg = plan.aggregator_of(p);
    if (agg != rank) {
      stats.particles_sent += bin.size();
      stats.bytes_sent += bin.byte_size();
    }
    particle_msgs.push_back({agg, bin.take_bytes()});
  }
  bins.clear();

  // Only senders that announced a non-zero count actually ship data.
  std::vector<int> particle_senders;
  for (std::size_t i = 0; i < count_senders.size(); ++i)
    if (incoming_counts[i] > 0) particle_senders.push_back(count_senders[i]);

  ParticleBuffer aggregated(local.schema());
  aggregated.reserve(incoming_total);
  // Deterministic assembly order (ascending sender rank) makes the
  // aggregated buffer — and therefore the shuffled file — reproducible.
  const auto particle_payloads =
      exchange(std::move(particle_msgs), particle_senders, kTagData);
  for (const auto& payload : particle_payloads)
    aggregated.append_bytes(payload);
  if (my_partition >= 0) {
    SPIO_CHECK(aggregated.size() == incoming_total, FormatError,
               "aggregator " << rank << " assembled " << aggregated.size()
                             << " particles but metadata promised "
                             << incoming_total);
  }
  stats.particle_exchange_seconds = seconds_since(t0);

  // ---- step 6: LOD re-ordering ----
  t0 = Clock::now();
  if (!aggregated.empty()) {
    lod_reorder(aggregated,
                stream_seed(config.shuffle_seed,
                            static_cast<std::uint64_t>(my_partition)),
                config.heuristic);
  }
  stats.reorder_seconds = seconds_since(t0);

  // ---- step 7: write the data file ----
  enter_phase(faultsim::WritePhase::kDataWrite);
  t0 = Clock::now();
  FileRecord my_record;
  std::uint64_t my_crc = 0;
  bool have_file = false;
  if (my_partition >= 0 && !aggregated.empty()) {
    my_record.partition_id = static_cast<std::uint32_t>(my_partition);
    my_record.aggregator_rank = static_cast<std::uint32_t>(rank);
    my_record.particle_count = aggregated.size();
    my_record.bounds = plan.partitioning().partition_box(my_partition);
    if (config.write_field_ranges)
      my_record.field_ranges = compute_field_ranges(aggregated);
    const auto path = config.dir / my_record.file_name();
    if (config.faults) {
      // Validated write: read back, compare checksums, rewrite torn or
      // corrupted attempts within a bounded budget.
      my_crc = faultsim::checked_write_file(path, aggregated.bytes(),
                                            config.faults, rank);
    } else {
      if (config.write_checksums) my_crc = crc64(aggregated.bytes());
      write_file(path, aggregated.bytes());
    }
    stats.particles_written = aggregated.size();
    stats.bytes_written = aggregated.byte_size();
    stats.files_written = 1;
    stats.was_aggregator = true;
    have_file = true;
  }
  stats.file_io_seconds = seconds_since(t0);

  // ---- step 8: gather bounds on rank 0, write the spatial metadata ----
  enter_phase(faultsim::WritePhase::kCommit);
  t0 = Clock::now();
  BinaryWriter record_bytes;
  if (have_file) {
    my_record.serialize(record_bytes, config.write_spatial_metadata,
                        config.write_field_ranges);
    // The file checksum rides the gather wire format (it never enters the
    // frozen meta.spio layout; rank 0 splits it into checksums.spio).
    record_bytes.write<std::uint64_t>(my_crc);
  }
  const auto gathered = comm.allgatherv<std::byte>(record_bytes.bytes());
  if (rank == 0) {
    DatasetMetadata meta;
    meta.schema = local.schema();
    meta.domain = decomp.domain();
    meta.lod = config.lod;
    meta.heuristic = config.heuristic;
    meta.has_bounds = config.write_spatial_metadata;
    meta.has_field_ranges = config.write_field_ranges;
    std::vector<ChecksumTable::Entry> crcs;
    for (const auto& from_rank : gathered) {
      if (from_rank.empty()) continue;
      BinaryReader r(from_rank);
      const FileRecord f = FileRecord::deserialize(
          r, meta.has_bounds, meta.has_field_ranges, meta.range_count());
      crcs.push_back({f.aggregator_rank, r.read<std::uint64_t>()});
      meta.total_particles += f.particle_count;
      meta.files.push_back(f);
    }
    std::sort(meta.files.begin(), meta.files.end(),
              [](const FileRecord& a, const FileRecord& b) {
                return a.partition_id < b.partition_id;
              });
    if (config.write_checksums) {
      std::sort(crcs.begin(), crcs.end(),
                [](const ChecksumTable::Entry& a,
                   const ChecksumTable::Entry& b) {
                  return a.aggregator_rank < b.aggregator_rank;
                });
      ChecksumTable table;
      table.entries = std::move(crcs);
      table.save(config.dir);
    }
    // meta.spio is the commit point; the journal closes only after it.
    meta.save(config.dir);
    if (config.journal) WriteJournal::commit(config.dir);
  }
  // The write is complete (data + metadata) only once every rank returns.
  comm.barrier();
  stats.metadata_io_seconds = seconds_since(t0);

  return stats;
}

}  // namespace spio
