file(REMOVE_RECURSE
  "libspio_iosim.a"
)
