#include "util/serialize.hpp"

#include <cstdio>
#include <memory>

namespace spio {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_checked(const std::filesystem::path& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  SPIO_CHECK(f != nullptr, IoError,
             "cannot open '" << path.string() << "' (mode " << mode << ")");
  return f;
}

}  // namespace

void write_file(const std::filesystem::path& path,
                std::span<const std::byte> bytes) {
  FilePtr f = open_checked(path, "wb");
  if (!bytes.empty()) {
    const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f.get());
    SPIO_CHECK(n == bytes.size(), IoError,
               "short write to '" << path.string() << "': " << n << " of "
                                  << bytes.size() << " bytes");
  }
}

void append_file(const std::filesystem::path& path,
                 std::span<const std::byte> bytes) {
  FilePtr f = open_checked(path, "ab");
  if (!bytes.empty()) {
    const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f.get());
    SPIO_CHECK(n == bytes.size(), IoError,
               "short append to '" << path.string() << "': " << n << " of "
                                   << bytes.size() << " bytes");
  }
}

std::vector<std::byte> read_file(const std::filesystem::path& path) {
  return read_file_range(path, 0, file_size_bytes(path));
}

std::vector<std::byte> read_file_range(const std::filesystem::path& path,
                                       std::uint64_t offset,
                                       std::uint64_t length) {
  std::vector<std::byte> out(static_cast<std::size_t>(length));
  read_file_range_into(path, offset, out);
  return out;
}

void read_file_range_into(const std::filesystem::path& path,
                          std::uint64_t offset, std::span<std::byte> out) {
  FilePtr f = open_checked(path, "rb");
  SPIO_CHECK(std::fseek(f.get(), static_cast<long>(offset), SEEK_SET) == 0,
             IoError, "seek to " << offset << " failed in '" << path.string()
                                 << "'");
  if (out.empty()) return;
  const std::size_t n = std::fread(out.data(), 1, out.size(), f.get());
  SPIO_CHECK(n == out.size(), FormatError,
             "'" << path.string() << "' truncated: wanted " << out.size()
                 << " bytes at offset " << offset << ", got " << n);
}

std::uint64_t file_size_bytes(const std::filesystem::path& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  SPIO_CHECK(!ec, IoError,
             "cannot stat '" << path.string() << "': " << ec.message());
  return size;
}

}  // namespace spio
