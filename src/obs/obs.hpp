#pragma once

/// \file obs.hpp
/// Global switches of the observability subsystem (docs/OBSERVABILITY.md).
///
/// Everything in `src/obs/` hangs off one process-wide enable flag so the
/// instrumented hot paths (simmpi sends, reader file loop, writer phases)
/// pay exactly one relaxed atomic load when observability is off. The
/// flag is raised either programmatically (`obs::enable()`) or by the
/// `SPIO_TRACE=<path>` environment variable, which additionally arranges
/// for the merged Chrome trace to be written to `<path>` at process exit
/// and after every instrumented collective operation.
///
/// Rank attribution: simmpi runs each rank on its own thread, so spans
/// and counters are tagged with a thread-local rank id installed by the
/// runtime (`ThreadRankGuard` in `simmpi::run`). Code running outside a
/// rank thread (single-process tools) reports as rank 0.

#include <atomic>
#include <chrono>

namespace spio::obs {

namespace detail {
/// The process-wide switch. Inline so `enabled()` compiles to one
/// relaxed load at every instrumentation site.
inline std::atomic<bool> g_enabled{false};

/// Raised while the TelemetryExporter's background thread is sampling
/// (stats_export.hpp); lets counter sites feed the stats stream without
/// turning on full tracing.
inline std::atomic<bool> g_telemetry{false};

/// Process start on the steady clock; all trace timestamps are offsets
/// from it so they stay small and comparable across rank threads.
std::chrono::steady_clock::time_point epoch();
}  // namespace detail

/// True when tracing + metrics collection is on. The fast-path guard:
/// every instrumentation site checks this first and does nothing else
/// when it is false.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// True while the telemetry exporter (`SPIO_STATS`, stats_export.hpp) is
/// sampling the metrics registry.
inline bool telemetry_running() {
  return detail::g_telemetry.load(std::memory_order_relaxed);
}

/// Gate for metric-publication sites that should feed the live stats
/// stream as well as explicit tracing runs: one relaxed load per flag.
/// Hot paths use this instead of `enabled()` when the published counters
/// appear in `stats.spio.jsonl` (cache hits, single-flight, service
/// tallies); span/log emission stays behind `enabled()`.
inline bool stats_enabled() { return enabled() || telemetry_running(); }

/// Turn collection on/off for the whole process. Ranks of one simmpi job
/// share the process, so all of them observe the same state; toggle only
/// between jobs, not while one is running.
void enable();
void disable();

/// Microseconds since process start (steady clock), the timestamp unit
/// of the Chrome trace output.
double now_us();

/// Rank attribution for the calling thread; -1 = not a rank thread
/// (reported as rank 0 in traces).
void set_thread_rank(int rank);
int thread_rank();

/// RAII rank binding for a rank thread's lifetime (used by simmpi::run).
class ThreadRankGuard {
 public:
  explicit ThreadRankGuard(int rank) : prev_(thread_rank()) {
    set_thread_rank(rank);
  }
  ~ThreadRankGuard() { set_thread_rank(prev_); }
  ThreadRankGuard(const ThreadRankGuard&) = delete;
  ThreadRankGuard& operator=(const ThreadRankGuard&) = delete;

 private:
  int prev_;
};

/// Path from `SPIO_TRACE` (empty when the variable is unset). When set,
/// the process enables collection at startup and flushes the merged
/// Chrome trace there at exit and at the end of every instrumented
/// write/read collective.
const char* env_trace_path();

/// Apply the observability environment (`SPIO_TRACE`, `SPIO_LOG`)
/// explicitly. Both variables are also read by static initializers in
/// any binary linking obs, so this mainly documents intent at tool/bench
/// entry points and guards against initializer elision in static
/// archives.
void init_from_env();

/// Run records (`trace.spio.json` next to a dataset) are emitted when
/// collection is enabled; see run_record.hpp.
inline bool run_records_enabled() { return enabled(); }

}  // namespace spio::obs
