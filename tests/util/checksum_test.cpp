#include "util/checksum.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace spio {
namespace {

std::vector<std::byte> bytes_of(std::string_view s) {
  std::vector<std::byte> b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

TEST(Crc64, MatchesCrc64XzCheckValue) {
  // The standard CRC-64/XZ check value.
  EXPECT_EQ(crc64(bytes_of("123456789")), 0x995DC9BBDF1939FAULL);
}

TEST(Crc64, EmptyInputIsZero) {
  EXPECT_EQ(crc64({}), 0u);
}

TEST(Crc64, DetectsSingleBitFlip) {
  auto a = bytes_of("the quick brown fox jumps over the lazy dog");
  auto b = a;
  b[17] ^= std::byte{0x01};
  EXPECT_NE(crc64(a), crc64(b));
}

TEST(Crc64, DetectsSwappedBlocks) {
  // Same bytes, different order — a plain sum would miss this.
  auto ab = bytes_of("blockAblockB");
  auto ba = bytes_of("blockBblockA");
  EXPECT_NE(crc64(ab), crc64(ba));
}

TEST(Crc64, IsAPureFunction) {
  const auto data = bytes_of("spio checksum determinism");
  EXPECT_EQ(crc64(data), crc64(data));
}

}  // namespace
}  // namespace spio
