/// SSE2 kernel TU — compiled at the build's baseline ISA (x86-64
/// implies SSE2). The twin TU, kernels_avx2.cpp, holds the identical
/// bodies instantiated at `-mavx2`; simd_level.cpp picks between them
/// at runtime.

#include "simd/kernels_isa.hpp"

#if defined(__x86_64__) || defined(_M_X64) || defined(__SSE2__)
#define SPIO_SIMD_SSE2 1
#else
#define SPIO_SIMD_SSE2 0
#endif

#if SPIO_SIMD_SSE2

#include <emmintrin.h>

#include <cmath>

#include "simd/kernels_x86_body.hpp"

namespace spio::simd {

bool sse2_compiled() { return true; }

namespace detail {
namespace {

struct TraitsSSE2 {
  static constexpr std::size_t kLanes = 2;
  using Reg = __m128d;
  static Reg load(const double* p) { return _mm_loadu_pd(p); }
  static Reg set1(double v) { return _mm_set1_pd(v); }
  static Reg cmp_ge(Reg a, Reg b) { return _mm_cmpge_pd(a, b); }
  static Reg cmp_lt(Reg a, Reg b) { return _mm_cmplt_pd(a, b); }
  static Reg and_(Reg a, Reg b) { return _mm_and_pd(a, b); }
  static unsigned movemask(Reg m) {
    return static_cast<unsigned>(_mm_movemask_pd(m));
  }
  static Reg add(Reg a, Reg b) { return _mm_add_pd(a, b); }
  static Reg sub(Reg a, Reg b) { return _mm_sub_pd(a, b); }
  static Reg div(Reg a, Reg b) { return _mm_div_pd(a, b); }
  static Reg mul(Reg a, Reg b) { return _mm_mul_pd(a, b); }
  // Packed floor is SSE4.1 (ROUNDPD); per-lane std::floor keeps this TU
  // at the baseline ISA and is bit-identical by definition.
  static Reg floor_(Reg a) {
    alignas(16) double t[2];
    _mm_store_pd(t, a);
    t[0] = std::floor(t[0]);
    t[1] = std::floor(t[1]);
    return _mm_load_pd(t);
  }
  static Reg max_(Reg a, Reg b) { return _mm_max_pd(a, b); }  // NaN -> b
  static Reg min_(Reg a, Reg b) { return _mm_min_pd(a, b); }  // NaN -> b
  static void to_int32(Reg a, std::int32_t* out) {
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out), _mm_cvttpd_epi32(a));
  }
};

}  // namespace

std::uint64_t filter_box_sse2(const PositionMirror& mirror,
                              const std::byte* base, std::size_t record_size,
                              const Box3& box, ParticleBuffer& out) {
  return filter_box_body<TraitsSSE2>(mirror, base, record_size, box, out);
}

std::uint64_t filter_box_ranges_sse2(const PositionMirror& mirror,
                                     const std::byte* base,
                                     std::size_t record_size, const Box3& box,
                                     const RangePred* preds, std::size_t npreds,
                                     ParticleBuffer& out) {
  return filter_box_ranges_body<TraitsSSE2>(mirror, base, record_size, box,
                                            preds, npreds, out);
}

void bin_by_owner_sse2(const PositionMirror& mirror, const std::byte* base,
                       std::size_t record_size,
                       const PatchDecomposition& decomp,
                       std::vector<ParticleBuffer>& outgoing) {
  bin_by_owner_body<TraitsSSE2>(mirror, base, record_size, decomp, outgoing);
}

}  // namespace detail
}  // namespace spio::simd

#else  // !SPIO_SIMD_SSE2 — non-x86 target: dispatch never selects SSE2.

#include <cstdlib>

namespace spio::simd {

bool sse2_compiled() { return false; }

namespace detail {

std::uint64_t filter_box_sse2(const PositionMirror&, const std::byte*,
                              std::size_t, const Box3&, ParticleBuffer&) {
  std::abort();
}

std::uint64_t filter_box_ranges_sse2(const PositionMirror&, const std::byte*,
                                     std::size_t, const Box3&,
                                     const RangePred*, std::size_t,
                                     ParticleBuffer&) {
  std::abort();
}

void bin_by_owner_sse2(const PositionMirror&, const std::byte*, std::size_t,
                       const PatchDecomposition&,
                       std::vector<ParticleBuffer>&) {
  std::abort();
}

}  // namespace detail
}  // namespace spio::simd

#endif  // SPIO_SIMD_SSE2
