#include "baselines/shared_file.hpp"

#include <cstdio>
#include <numeric>

#include "obs/trace.hpp"
#include "simmpi/reduce_ops.hpp"
#include "util/serialize.hpp"

namespace spio::baselines {

namespace {
constexpr std::uint32_t kHeaderMagic = 0x44485353;  // "SSHD"
constexpr const char* kDataName = "shared.bin";
constexpr const char* kHeaderName = "shared_header.bin";

/// Positional write into an existing file without touching other ranks'
/// regions (each rank opens its own handle, as MPI-IO would).
void write_at(const std::filesystem::path& path, std::uint64_t offset,
              std::span<const std::byte> bytes) {
  if (bytes.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  SPIO_CHECK(f != nullptr, IoError,
             "cannot open shared file '" << path.string() << "'");
  bool ok = std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0;
  ok = ok && std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  SPIO_CHECK(ok, IoError, "positional write failed at offset " << offset);
}
}  // namespace

void shared_write(simmpi::Comm& comm, const ParticleBuffer& local,
                  const std::filesystem::path& dir) {
  obs::ScopedSpan span("baseline.shared.write", "baseline");
  const std::uint64_t my_bytes = local.byte_size();
  const std::uint64_t offset =
      comm.exscan<std::uint64_t>(my_bytes, simmpi::op::sum, 0);
  const std::uint64_t total_bytes =
      comm.allreduce<std::uint64_t>(my_bytes, simmpi::op::sum);

  if (comm.rank() == 0) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    SPIO_CHECK(!ec, IoError,
               "cannot create '" << dir.string() << "': " << ec.message());
    // Preallocate the shared file so positional writes land in place.
    write_file(dir / kDataName, std::vector<std::byte>(total_bytes));
  }
  comm.barrier();

  write_at(dir / kDataName, offset, local.bytes());

  const auto counts = comm.gather<std::uint64_t>(local.size(), 0);
  if (comm.rank() == 0) {
    BinaryWriter w;
    w.write<std::uint32_t>(kHeaderMagic);
    local.schema().serialize(w);
    w.write_vector(counts);
    write_file(dir / kHeaderName, w.bytes());
  }
  comm.barrier();
}

SharedDataset SharedDataset::open(const std::filesystem::path& dir) {
  const auto bytes = read_file(dir / kHeaderName);
  BinaryReader r(bytes);
  SPIO_CHECK(r.read<std::uint32_t>() == kHeaderMagic, FormatError,
             "not a shared-file header");
  Schema schema = Schema::deserialize(r);
  auto counts = r.read_vector<std::uint64_t>();
  SPIO_CHECK(r.at_end(), FormatError, "trailing bytes in shared-file header");
  SharedDataset ds(dir, std::move(schema), std::move(counts));
  const std::uint64_t expect =
      ds.total_particles() * ds.schema_.record_size();
  SPIO_CHECK(file_size_bytes(dir / kDataName) == expect, FormatError,
             "shared data file truncated");
  return ds;
}

std::uint64_t SharedDataset::total_particles() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

ParticleBuffer SharedDataset::read_all(ReadStats* stats) const {
  ParticleBuffer buf(schema_);
  buf.adopt_bytes(read_file(dir_ / kDataName));
  if (stats) {
    stats->files_opened += 1;
    stats->bytes_read += buf.byte_size();
    stats->particles_scanned += buf.size();
  }
  return buf;
}

ParticleBuffer SharedDataset::read_rank_slice(int rank,
                                              ReadStats* stats) const {
  SPIO_EXPECTS(rank >= 0 && rank < writer_count());
  std::uint64_t before = 0;
  for (int r = 0; r < rank; ++r) before += counts_[static_cast<std::size_t>(r)];
  const std::uint64_t rec = schema_.record_size();
  ParticleBuffer buf(schema_);
  buf.adopt_bytes(read_file_range(
      dir_ / kDataName, before * rec,
      counts_[static_cast<std::size_t>(rank)] * rec));
  if (stats) {
    stats->files_opened += 1;
    stats->bytes_read += buf.byte_size();
    stats->particles_scanned += buf.size();
  }
  return buf;
}

ParticleBuffer SharedDataset::query_box(const Box3& box,
                                        ReadStats* stats) const {
  obs::ScopedSpan span("baseline.shared.query_box", "baseline");
  const ParticleBuffer all = read_all(stats);
  ParticleBuffer out(schema_);
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (box.contains(all.position(i))) {
      out.append_from(all, i);
      if (stats) stats->particles_returned += 1;
    }
  }
  return out;
}

}  // namespace spio::baselines
