
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/baselines_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/baselines_test.cpp.o.d"
  "/root/repo/tests/baselines/convert_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/convert_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/convert_test.cpp.o.d"
  "/root/repo/tests/baselines/read_amplification_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/read_amplification_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/read_amplification_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spio_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/spio_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spio_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/spio_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/spio_faultsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
