#include "baselines/convert.hpp"

#include "baselines/fpp.hpp"
#include "baselines/rank_order.hpp"
#include "baselines/shared_file.hpp"
#include "core/reader.hpp"
#include "simmpi/reduce_ops.hpp"

namespace spio::baselines {

namespace {

/// Read this rank's share of the legacy data: files (or shared-file
/// slices) are dealt round-robin across the converting ranks.
ParticleBuffer read_share(simmpi::Comm& comm, LegacyFormat format,
                          const std::filesystem::path& src, int* files_seen) {
  switch (format) {
    case LegacyFormat::kFilePerProcess: {
      const FppDataset ds = FppDataset::open(src);
      *files_seen = ds.file_count();
      ParticleBuffer out(ds.schema());
      for (int f = comm.rank(); f < ds.file_count(); f += comm.size()) {
        const ParticleBuffer buf = ds.read_rank_file(f);
        out.append_bytes(buf.bytes());
      }
      return out;
    }
    case LegacyFormat::kSharedFile: {
      const SharedDataset ds = SharedDataset::open(src);
      *files_seen = 1;
      ParticleBuffer out(ds.schema());
      for (int w = comm.rank(); w < ds.writer_count(); w += comm.size()) {
        const ParticleBuffer buf = ds.read_rank_slice(w);
        out.append_bytes(buf.bytes());
      }
      return out;
    }
    case LegacyFormat::kRankOrder: {
      const RankOrderDataset ds = RankOrderDataset::open(src);
      *files_seen = ds.file_count();
      ParticleBuffer out(ds.schema());
      for (int f = comm.rank(); f < ds.file_count(); f += comm.size()) {
        const ParticleBuffer buf = ds.read_group_file(f);
        out.append_bytes(buf.bytes());
      }
      return out;
    }
  }
  throw ConfigError("unknown legacy format");
}

}  // namespace

ConvertResult convert_to_spio(simmpi::Comm& comm, LegacyFormat format,
                              const std::filesystem::path& src,
                              WriterConfig config) {
  int source_files = 0;
  const ParticleBuffer local = read_share(comm, format, src, &source_files);

  // Global tight bounds, padded so every particle is interior to the
  // domain (the decomposition's point location clamps at faces anyway;
  // the pad keeps patch boxes non-degenerate for point distributions).
  struct Bounds {
    Vec3d lo, hi;
  };
  const Box3 mine = local.bounds();
  const Bounds global = comm.allreduce<Bounds>(
      {local.empty() ? Vec3d(1e300) : mine.lo,
       local.empty() ? Vec3d(-1e300) : mine.hi},
      [](const Bounds& a, const Bounds& b) {
        return Bounds{Vec3d::min(a.lo, b.lo), Vec3d::max(a.hi, b.hi)};
      });
  SPIO_CHECK(global.lo.x <= global.hi.x, ConfigError,
             "legacy dataset at '" << src.string() << "' holds no particles");
  Box3 domain(global.lo, global.hi);
  for (int a = 0; a < 3; ++a) {
    const double pad =
        std::max(1e-9 * (domain.hi[a] - domain.lo[a]), 1e-12) +
        1e-12 * std::abs(domain.lo[a]);
    domain.lo[a] -= pad;
    domain.hi[a] += pad;
  }

  // The converting ranks' particles are not patch-local; the writer's
  // spill detection routes them through the extent-exchange plan, so any
  // decomposition works. A near-cubic grid gives a sensible aligned grid
  // for the aggregation factor.
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(domain, comm.size());
  const WriteStats stats = write_dataset(comm, decomp, local, config);

  ConvertResult result;
  result.particles =
      comm.allreduce<std::uint64_t>(local.size(), simmpi::op::sum);
  result.source_files = source_files;
  result.output_files =
      comm.allreduce<int>(stats.files_written, simmpi::op::sum);
  return result;
}

}  // namespace spio::baselines
