file(REMOVE_RECURSE
  "../bench/abl_alignment"
  "../bench/abl_alignment.pdb"
  "CMakeFiles/abl_alignment.dir/abl_alignment.cpp.o"
  "CMakeFiles/abl_alignment.dir/abl_alignment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
