file(REMOVE_RECURSE
  "../bench/abl_adaptive_refine"
  "../bench/abl_adaptive_refine.pdb"
  "CMakeFiles/abl_adaptive_refine.dir/abl_adaptive_refine.cpp.o"
  "CMakeFiles/abl_adaptive_refine.dir/abl_adaptive_refine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_adaptive_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
