#include "core/distributed_read.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "core/restart.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

class DistributedRead : public ::testing::Test {
 protected:
  static constexpr int kWriters = 16;
  static constexpr std::uint64_t kPerRank = 250;
  static constexpr std::uint64_t kTotal = kWriters * kPerRank;

  static void SetUpTestSuite() {
    dir_ = new TempDir("spio-distread");
    const PatchDecomposition decomp(Box3::unit(), {4, 2, 2});
    WriterConfig cfg;
    cfg.dir = dir_->path();
    cfg.factor = {2, 2, 1};  // 2x1x2 partitions = 4 files
    simmpi::run(kWriters, [&](simmpi::Comm& comm) {
      const auto local = workload::uniform(
          Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
          stream_seed(71, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      write_dataset(comm, decomp, local, cfg);
    });
  }

  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  static std::set<double> id_set(const ParticleBuffer& buf) {
    const auto id = buf.schema().index_of("id");
    std::set<double> out;
    for (std::size_t i = 0; i < buf.size(); ++i)
      out.insert(buf.get_f64(i, id));
    return out;
  }

  static TempDir* dir_;
};

TempDir* DistributedRead::dir_ = nullptr;

TEST_F(DistributedRead, CensusAndContainment) {
  for (const int readers : {1, 2, 4, 8}) {
    const PatchDecomposition decomp =
        PatchDecomposition::for_ranks(Box3::unit(), readers);
    std::mutex mu;
    std::set<double> seen;
    std::uint64_t total = 0;
    simmpi::run(readers, [&](simmpi::Comm& comm) {
      const ParticleBuffer mine =
          distributed_read(comm, decomp, dir_->path());
      const Box3 patch = decomp.patch(comm.rank());
      for (std::size_t i = 0; i < mine.size(); ++i)
        ASSERT_TRUE(patch.contains_closed(mine.position(i)));
      const auto ids = id_set(mine);
      std::lock_guard lk(mu);
      total += mine.size();
      for (double v : ids)
        ASSERT_TRUE(seen.insert(v).second) << "duplicate particle";
    });
    EXPECT_EQ(total, kTotal) << readers << " readers";
  }
}

TEST_F(DistributedRead, EachFileOpenedExactlyOnce) {
  constexpr int kReaders = 8;
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), kReaders);
  // Count files *touched* (disk opens + read-cache hits): an earlier
  // test in this process may have warmed the engine's cache for this
  // dataset, and what this test pins is the access pattern, not where
  // the bytes came from.
  std::atomic<int> opens{0};
  simmpi::run(kReaders, [&](simmpi::Comm& comm) {
    ReadStats rs;
    distributed_read(comm, decomp, dir_->path(), -1, &rs);
    opens += rs.files_opened + static_cast<int>(rs.cache_hits);
  });
  const Dataset ds = Dataset::open(dir_->path());
  EXPECT_EQ(opens.load(), ds.file_count());

  // Independent restart_read touches strictly more in total: boundary
  // files are read by several tiles.
  std::atomic<int> restart_opens{0};
  simmpi::run(kReaders, [&](simmpi::Comm& comm) {
    ReadStats rs;
    restart_read(comm, decomp, dir_->path(), &rs);
    restart_opens += rs.files_opened + static_cast<int>(rs.cache_hits);
  });
  EXPECT_GT(restart_opens.load(), opens.load());
}

TEST_F(DistributedRead, ReadStatsAccountBytesTimesAndAmplification) {
  constexpr int kReaders = 4;
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), kReaders);
  const Dataset ds = Dataset::open(dir_->path());
  const std::uint64_t record = ds.metadata().schema.record_size();

  ReadStats sum;
  std::mutex mu;
  simmpi::run(kReaders, [&](simmpi::Comm& comm) {
    ReadStats rs;
    const ParticleBuffer mine =
        distributed_read(comm, decomp, dir_->path(), -1, &rs);
    // particles_returned counts what this rank owns after the exchange.
    EXPECT_EQ(rs.particles_returned, mine.size());
    EXPECT_GE(rs.file_io_seconds, 0.0);
    EXPECT_GE(rs.exchange_seconds, 0.0);
    std::lock_guard lk(mu);
    sum.accumulate(rs);
  });

  // Each file is opened once and read in full, so the job scans exactly
  // the dataset and returns every particle: amplification 1.0.
  EXPECT_EQ(sum.particles_scanned, kTotal);
  EXPECT_EQ(sum.particles_returned, kTotal);
  EXPECT_EQ(sum.bytes_read, kTotal * record);
  EXPECT_DOUBLE_EQ(sum.read_amplification(), 1.0);

  // The job-level reduction sums volumes but maxes times.
  const ReadStats m = ReadStats::max_over(sum, sum);
  EXPECT_EQ(m.bytes_read, 2 * sum.bytes_read);
  EXPECT_DOUBLE_EQ(m.file_io_seconds, sum.file_io_seconds);
}

TEST_F(DistributedRead, AgreesWithRestartReadPerRank) {
  constexpr int kReaders = 4;
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), kReaders);
  std::vector<std::set<double>> via_distributed(kReaders),
      via_restart(kReaders);
  simmpi::run(kReaders, [&](simmpi::Comm& comm) {
    via_distributed[static_cast<std::size_t>(comm.rank())] =
        id_set(distributed_read(comm, decomp, dir_->path()));
  });
  simmpi::run(kReaders, [&](simmpi::Comm& comm) {
    via_restart[static_cast<std::size_t>(comm.rank())] =
        id_set(restart_read(comm, decomp, dir_->path()));
  });
  for (int r = 0; r < kReaders; ++r)
    EXPECT_EQ(via_distributed[static_cast<std::size_t>(r)],
              via_restart[static_cast<std::size_t>(r)])
        << "rank " << r;
}

TEST_F(DistributedRead, LodBoundedReadsPrefixCounts) {
  constexpr int kReaders = 4;
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), kReaders);
  const Dataset ds = Dataset::open(dir_->path());
  std::uint64_t expect = 0;
  for (int fi = 0; fi < ds.file_count(); ++fi)
    expect += ds.level_prefix_count(fi, 2, kReaders);

  std::atomic<std::uint64_t> got{0};
  simmpi::run(kReaders, [&](simmpi::Comm& comm) {
    got += distributed_read(comm, decomp, dir_->path(), /*levels=*/2).size();
  });
  EXPECT_EQ(got.load(), expect);
  EXPECT_LT(expect, kTotal);
}

TEST_F(DistributedRead, MoreReadersThanFiles) {
  // 32 readers, 4 files: most ranks read nothing but still receive their
  // tile's particles through the exchange.
  constexpr int kReaders = 32;
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), kReaders);
  std::atomic<std::uint64_t> total{0};
  simmpi::run(kReaders, [&](simmpi::Comm& comm) {
    total += distributed_read(comm, decomp, dir_->path()).size();
  });
  EXPECT_EQ(total.load(), kTotal);
}

TEST_F(DistributedRead, FileAssignmentIsSpatial) {
  const Dataset ds = Dataset::open(dir_->path());
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), 4);
  for (int fi = 0; fi < ds.file_count(); ++fi) {
    const int owner = file_reader(ds.metadata(), fi, decomp);
    const Box3& b = ds.metadata().files[static_cast<std::size_t>(fi)].bounds;
    EXPECT_TRUE(decomp.patch(owner).contains(b.center()));
  }
}

TEST_F(DistributedRead, RejectsMismatchedJob) {
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 1});
  EXPECT_THROW(
      simmpi::run(2,
                  [&](simmpi::Comm& comm) {
                    distributed_read(comm, decomp, dir_->path());
                  }),
      ConfigError);
}

}  // namespace
}  // namespace spio
