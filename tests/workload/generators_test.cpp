#include "workload/generators.hpp"

#include <gtest/gtest.h>

namespace spio::workload {
namespace {

const Box3 kPatch({2, 2, 2}, {4, 4, 4});

TEST(UniformGenerator, CountAndContainment) {
  const auto buf = uniform(Schema::uintah(), kPatch, 1000, 42);
  EXPECT_EQ(buf.size(), 1000u);
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_TRUE(kPatch.contains(buf.position(i))) << i;
}

TEST(UniformGenerator, Deterministic) {
  const auto a = uniform(Schema::uintah(), kPatch, 100, 7);
  const auto b = uniform(Schema::uintah(), kPatch, 100, 7);
  ASSERT_EQ(a.byte_size(), b.byte_size());
  EXPECT_EQ(std::memcmp(a.bytes().data(), b.bytes().data(), a.byte_size()), 0);
}

TEST(UniformGenerator, SeedChangesOutput) {
  const auto a = uniform(Schema::uintah(), kPatch, 100, 7);
  const auto b = uniform(Schema::uintah(), kPatch, 100, 8);
  EXPECT_NE(std::memcmp(a.bytes().data(), b.bytes().data(), a.byte_size()), 0);
}

TEST(UniformGenerator, IdsAreSequentialFromFirstId) {
  const auto buf = uniform(Schema::uintah(), kPatch, 10, 1, /*first_id=*/500);
  const auto id = buf.schema().index_of("id");
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_EQ(buf.get_f64(i, id), 500.0 + static_cast<double>(i));
}

TEST(UniformGenerator, AttributesArePhysicsPlausible) {
  const auto buf = uniform(Schema::uintah(), kPatch, 200, 3);
  const auto density = buf.schema().index_of("density");
  const auto volume = buf.schema().index_of("volume");
  const auto type = buf.schema().index_of("type");
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_GT(buf.get_f64(i, density), 0.0);
    EXPECT_GT(buf.get_f64(i, volume), 0.0);
    const float t = buf.get_f32(i, type);
    EXPECT_GE(t, 0.0f);
    EXPECT_LT(t, 4.0f);
  }
}

TEST(UniformGenerator, PositionsFillThePatch) {
  // With 5000 samples every octant of the patch should be hit.
  const auto buf = uniform(Schema::position_only(), kPatch, 5000, 11);
  int octant_count[8] = {0};
  const Vec3d mid = kPatch.center();
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const Vec3d p = buf.position(i);
    const int o = (p.x >= mid.x) | ((p.y >= mid.y) << 1) | ((p.z >= mid.z) << 2);
    ++octant_count[o];
  }
  for (int o = 0; o < 8; ++o) EXPECT_GT(octant_count[o], 300) << o;
}

TEST(ZeroCount, ProducesEmptyBuffer) {
  EXPECT_TRUE(uniform(Schema::uintah(), kPatch, 0, 1).empty());
}

TEST(GaussianClusters, ContainedAndClustered) {
  const auto buf =
      gaussian_clusters(Schema::uintah(), kPatch, 2000, 3, 0.05, 13);
  EXPECT_EQ(buf.size(), 2000u);
  Box3 bounds = Box3::empty();
  for (std::size_t i = 0; i < buf.size(); ++i) {
    ASSERT_TRUE(kPatch.contains(buf.position(i)));
    bounds.extend(buf.position(i));
  }
  // Clusters with sigma 5% of patch occupy far less than the whole patch
  // volume most of the time; just assert the distribution is not uniform:
  // count particles in the densest octant vs the sparsest.
  int octant_count[8] = {0};
  const Vec3d mid = kPatch.center();
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const Vec3d p = buf.position(i);
    const int o = (p.x >= mid.x) | ((p.y >= mid.y) << 1) | ((p.z >= mid.z) << 2);
    ++octant_count[o];
  }
  int mn = octant_count[0], mx = octant_count[0];
  for (int o = 1; o < 8; ++o) {
    mn = std::min(mn, octant_count[o]);
    mx = std::max(mx, octant_count[o]);
  }
  EXPECT_GT(mx, 2 * std::max(mn, 1));
}

TEST(CoverageRegion, ShrinksAlongX) {
  const Box3 domain({0, 0, 0}, {8, 2, 2});
  const Box3 half = coverage_region(domain, 0.5);
  EXPECT_EQ(half, Box3({0, 0, 0}, {4, 2, 2}));
  const Box3 full = coverage_region(domain, 1.0);
  EXPECT_EQ(full, domain);
  const Box3 eighth = coverage_region(domain, 0.125);
  EXPECT_DOUBLE_EQ(eighth.hi.x, 1.0);
}

TEST(UniformInRegion, EmptyIntersectionYieldsNoParticles) {
  const Box3 region({0, 0, 0}, {1, 1, 1});  // disjoint from kPatch
  EXPECT_TRUE(
      uniform_in_region(Schema::uintah(), kPatch, region, 100, 5).empty());
}

TEST(UniformInRegion, PartialIntersectionStaysInside) {
  const Box3 region({0, 0, 0}, {3, 10, 10});  // overlaps half of kPatch in x
  const auto buf = uniform_in_region(Schema::uintah(), kPatch, region, 500, 5);
  EXPECT_EQ(buf.size(), 500u);
  const Box3 live = Box3::intersection(kPatch, region);
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_TRUE(live.contains(buf.position(i)));
}

TEST(PlummerSphere, CountContainmentAndDeterminism) {
  const auto a = plummer_sphere(Schema::uintah(), kPatch, 1500, 0.05, 31);
  const auto b = plummer_sphere(Schema::uintah(), kPatch, 1500, 0.05, 31);
  EXPECT_EQ(a.size(), 1500u);
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_TRUE(kPatch.contains(a.position(i)));
  EXPECT_EQ(std::memcmp(a.bytes().data(), b.bytes().data(), a.byte_size()), 0);
}

TEST(PlummerSphere, CentrallyConcentrated) {
  const auto buf =
      plummer_sphere(Schema::position_only(), kPatch, 20000, 0.05, 7);
  const Vec3d center = kPatch.center();
  const double half_extent = kPatch.size().min_component() / 2;
  int inner = 0, outer = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const double r = distance(buf.position(i), center);
    if (r < 0.1 * half_extent) ++inner;
    if (r > 0.5 * half_extent) ++outer;
  }
  // Plummer theory: M(<a) = a^3/(2a^2)^(3/2) ~ 35% of the mass inside
  // r = a (here a = 0.1 = the "inner" radius), and ~6% beyond r = 0.5.
  // Uniform sampling would put ~0.05% inside the inner ball.
  EXPECT_GT(inner, 4 * std::max(outer, 1));
  EXPECT_NEAR(static_cast<double>(inner) / static_cast<double>(buf.size()),
              0.354, 0.04);
  EXPECT_NEAR(static_cast<double>(outer) / static_cast<double>(buf.size()),
              0.057, 0.03);
}

TEST(PlummerSphere, ScaleRadiusControlsSpread) {
  const auto tight =
      plummer_sphere(Schema::position_only(), kPatch, 4000, 0.02, 5);
  const auto wide =
      plummer_sphere(Schema::position_only(), kPatch, 4000, 0.3, 5);
  auto mean_radius = [&](const ParticleBuffer& b) {
    double s = 0;
    for (std::size_t i = 0; i < b.size(); ++i)
      s += distance(b.position(i), kPatch.center());
    return s / static_cast<double>(b.size());
  };
  EXPECT_LT(mean_radius(tight), 0.5 * mean_radius(wide));
}

TEST(Injection, TimeZeroIsEmpty) {
  const Box3 domain({0, 0, 0}, {10, 10, 10});
  EXPECT_TRUE(injection(Schema::uintah(), kPatch, domain, 0.0, 100, 9).empty());
}

TEST(Injection, FrontAdvancesWithTime) {
  const Box3 domain({0, 0, 0}, {10, 10, 10});
  const Box3 patch({0, 0, 0}, {10, 10, 10});  // single-rank view
  const auto early = injection(Schema::uintah(), patch, domain, 0.2, 4000, 9);
  const auto late = injection(Schema::uintah(), patch, domain, 0.9, 4000, 9);
  ASSERT_FALSE(early.empty());
  ASSERT_FALSE(late.empty());
  EXPECT_LT(early.bounds().hi.x, 2.01);
  EXPECT_GT(late.bounds().hi.x, 5.0);
}

TEST(Injection, DensityDecaysTowardFront) {
  const Box3 domain({0, 0, 0}, {10, 10, 10});
  const Box3 patch = domain;
  const auto buf = injection(Schema::uintah(), patch, domain, 1.0, 20000, 21);
  // Count particles in the first and last thirds of the occupied region.
  int head = 0, tail = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const double x = buf.position(i).x;
    if (x < 10.0 / 3.0) ++head;
    if (x > 20.0 / 3.0) ++tail;
  }
  EXPECT_GT(head, tail);
}

TEST(Injection, RanksOutsideFrontAreEmpty) {
  const Box3 domain({0, 0, 0}, {10, 10, 10});
  const Box3 far_patch({8, 0, 0}, {10, 10, 10});
  EXPECT_TRUE(
      injection(Schema::uintah(), far_patch, domain, 0.5, 100, 3).empty());
}

}  // namespace
}  // namespace spio::workload
