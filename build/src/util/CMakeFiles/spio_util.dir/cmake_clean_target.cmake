file(REMOVE_RECURSE
  "libspio_util.a"
)
