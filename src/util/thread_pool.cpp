#include "util/thread_pool.hpp"

namespace spio {

ThreadPool::ThreadPool(int threads, bool inline_when_single)
    : concurrency_(threads < 1 ? 1 : threads) {
  if (concurrency_ < 2 && inline_when_single) return;
  workers_.reserve(static_cast<std::size_t>(concurrency_));
  for (int i = 0; i < concurrency_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { drain_and_stop(); }

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  if (workers_.empty()) {
    task();  // inline pool: run now, on the caller
    return fut;
  }
  {
    std::lock_guard lk(mu_);
    if (!stop_) {
      queue_.push_back(std::move(task));  // leaves `task` without state
    }
    // else: the drain has begun (or finished) — run on the caller
    // instead of racing the workers' exit; an accepted task is never
    // dropped.
  }
  if (task.valid()) {
    task();
    return fut;
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::run_batch(std::vector<std::function<void()>> tasks) {
  if (workers_.empty()) {
    for (auto& t : tasks) t();
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (auto& t : tasks) futures.push_back(submit(std::move(t)));
  for (auto& f : futures) f.wait();
}

void ThreadPool::drain_and_stop() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();  // from here on, submit runs inline
  // Workers exit only on an empty queue and submits after stop_ run
  // inline, so nothing should be left. Run any stragglers defensively —
  // a task must execute exactly once, never be dropped.
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::lock_guard lk(mu_);
      if (queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::stopped() const {
  std::lock_guard lk(mu_);
  return stop_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace spio
