/// \file access_profile_test.cpp
/// Oracle differential suite for the spatial access profiler (ctest
/// label `profile`). The profiler's byte semantics are pinned against
/// two independent oracles:
///   - `bytes_fetched` must byte-match an instrumented
///     `ReadEngine::FetchHook` — the hook fires on every real disk read
///     (bypass + single-flight leader) and on nothing else, so cache
///     hits, followers, and coalesced service waiters must add nothing,
///   - `bytes_used` must byte-match what each query actually returned.
/// Both hold across box/range/LOD/stream queries, cold and warm caches,
/// and serial vs engine vs service execution; the detailed per-query
/// records must have per-file splits summing exactly to query totals.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/distributed_read.hpp"
#include "core/query_service.hpp"
#include "core/read_engine.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "obs/access_profile.hpp"
#include "obs/json.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

/// Scoped engine configuration (pool size / cache budget), restored on
/// destruction.
class EngineConfig {
 public:
  EngineConfig(int threads, std::uint64_t budget)
      : prev_threads_(ReadEngine::instance().concurrency()),
        prev_budget_(ReadEngine::instance().cache_budget()) {
    ReadEngine::instance().set_concurrency(threads);
    ReadEngine::instance().set_cache_budget(budget);
  }
  ~EngineConfig() {
    ReadEngine::instance().set_concurrency(prev_threads_);
    ReadEngine::instance().set_cache_budget(prev_budget_);
  }

 private:
  int prev_threads_;
  std::uint64_t prev_budget_;
};

/// The fetch-hook oracle: sums the prefix bytes of every real disk read
/// the engine performs while installed. An optional per-read sleep
/// widens the single-flight window so concurrent cold queries reliably
/// produce followers.
class FetchOracle {
 public:
  explicit FetchOracle(int sleep_ms = 0) {
    ReadEngine::instance().set_fetch_hook(
        [this, sleep_ms](const std::filesystem::path&, std::uint64_t bytes) {
          if (sleep_ms > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
          std::lock_guard lk(mu_);
          bytes_ += bytes;
          ++reads_;
        });
  }
  ~FetchOracle() { ReadEngine::instance().set_fetch_hook({}); }

  std::uint64_t bytes() const {
    std::lock_guard lk(mu_);
    return bytes_;
  }
  std::uint64_t reads() const {
    std::lock_guard lk(mu_);
    return reads_;
  }

 private:
  mutable std::mutex mu_;
  std::uint64_t bytes_ = 0;
  std::uint64_t reads_ = 0;
};

/// Fresh accounting for one test: cache emptied (so cold means cold)
/// and every profiler slot zeroed.
void reset_accounting() {
  ReadEngine::instance().clear_cache();
  ReadEngine::instance().reset_cache_stats();
  obs::AccessProfiler::instance().reset_counters();
}

class AccessProfileTest : public ::testing::Test {
 protected:
  static constexpr int kRanks = 8;
  static constexpr std::uint64_t kPerRank = 600;

  static void SetUpTestSuite() {
    dir_ = new TempDir("spio-profile");
    const PatchDecomposition decomp =
        PatchDecomposition::for_ranks(Box3::unit(), kRanks);
    WriterConfig cfg;
    cfg.dir = dir_->path();
    cfg.factor = {1, 1, 1};  // one file per patch: queries fan out
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      const auto local = workload::uniform(
          Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
          stream_seed(83, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      write_dataset(comm, decomp, local, cfg);
    });
  }
  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  /// Run one of each query shape (box, range, LOD, stream) and return
  /// the total bytes they handed back to the caller.
  static std::uint64_t run_query_mix(const Dataset& ds) {
    const Schema& schema = ds.metadata().schema;
    const Box3 box({0.1, 0.1, 0.1}, {0.9, 0.9, 0.9});
    const std::vector<Dataset::RangeFilter> filters{
        {schema.index_of("density"), 0, 990.0, 1060.0}};
    std::uint64_t returned = 0;
    returned += ds.query_box(box).byte_size();
    returned += ds.query(box, filters).byte_size();
    returned += ds.query_box(box, /*levels=*/2).byte_size();  // LOD subset
    ds.stream_box(box, [&](const ParticleBuffer& chunk) {
      returned += chunk.byte_size();
      return true;
    });
    return returned;
  }

  static TempDir* dir_;
};

TempDir* AccessProfileTest::dir_ = nullptr;

// ---- bytes_fetched vs the fetch-hook oracle ----

TEST_F(AccessProfileTest, FetchedBytesMatchHookOracleAcrossConfigsAndWarmth) {
  const Dataset ds = Dataset::open(dir_->path());
  auto& prof = obs::AccessProfiler::instance();

  struct Config {
    int threads;
    std::uint64_t budget;
  };
  // Serial/no-cache (every fetch a bypass), serial with cache, and the
  // pooled engine with cache — the three execution shapes of the read
  // path outside the service.
  for (const Config c : {Config{1, 0}, Config{1, 64ull << 20},
                         Config{4, 64ull << 20}}) {
    EngineConfig cfg(c.threads, c.budget);
    reset_accounting();
    FetchOracle oracle;

    const std::uint64_t cold_returned = run_query_mix(ds);
    ASSERT_GT(cold_returned, 0u);
    obs::AccessProfiler::Totals t = prof.totals();
    EXPECT_EQ(t.bytes_fetched, oracle.bytes())
        << "cold, threads=" << c.threads << " budget=" << c.budget;
    EXPECT_GT(t.bytes_fetched, 0u);

    // Warm pass: with the cache on, hits must add nothing to either
    // side; with it off, both sides grow by the same plain re-reads.
    run_query_mix(ds);
    t = prof.totals();
    EXPECT_EQ(t.bytes_fetched, oracle.bytes())
        << "warm, threads=" << c.threads << " budget=" << c.budget;
    if (c.budget > 0) {
      // Everything fit, so the warm mix fetched nothing new.
      EXPECT_GT(t.accesses, 0u);
      EXPECT_GT(t.bytes_scanned, t.bytes_fetched);
    }
  }
}

TEST_F(AccessProfileTest, UsedBytesMatchReturnedBytes) {
  const Dataset ds = Dataset::open(dir_->path());
  auto& prof = obs::AccessProfiler::instance();

  for (const int threads : {1, 4}) {
    EngineConfig cfg(threads, 64ull << 20);
    reset_accounting();
    const std::uint64_t returned = run_query_mix(ds);
    const obs::AccessProfiler::Totals t = prof.totals();
    EXPECT_EQ(t.bytes_used, returned) << "threads=" << threads;
    EXPECT_GE(t.bytes_scanned, t.bytes_used) << "threads=" << threads;
    EXPECT_GE(t.bytes_scanned, t.bytes_fetched) << "threads=" << threads;
  }

  // The scan-all baseline filters every record of every file: used
  // equals returned there too, while scanned covers the whole dataset.
  EngineConfig cfg(1, 0);
  reset_accounting();
  const Box3 corner({0.0, 0.0, 0.0}, {0.4, 0.4, 0.4});
  const ParticleBuffer out = ds.query_box_scan_all(corner);
  const obs::AccessProfiler::Totals t = prof.totals();
  EXPECT_EQ(t.bytes_used, out.byte_size());
  EXPECT_EQ(t.bytes_scanned, ds.metadata().total_particles *
                                 ds.metadata().schema.record_size());
}

TEST_F(AccessProfileTest, PerFileSlotInvariantsHold) {
  const Dataset ds = Dataset::open(dir_->path());
  auto& prof = obs::AccessProfiler::instance();
  EngineConfig cfg(4, 64ull << 20);
  reset_accounting();
  run_query_mix(ds);
  run_query_mix(ds);  // warm pass adds hits

  const auto files = prof.snapshot_files(/*touched_only=*/true);
  ASSERT_FALSE(files.empty());
  obs::AccessProfiler::Totals sum;
  for (const auto& f : files) {
    EXPECT_EQ(f.hits + f.misses + f.followers + f.bypasses, f.accesses)
        << f.name;
    EXPECT_LE(f.bytes_fetched, f.bytes_scanned) << f.name;
    EXPECT_GT(f.particle_count, 0u) << f.name;
    EXPECT_GT(f.last_touch_us, 0u) << f.name;
    EXPECT_FALSE(f.name.empty());
    sum.accesses += f.accesses;
    sum.bytes_scanned += f.bytes_scanned;
    sum.bytes_fetched += f.bytes_fetched;
    sum.bytes_used += f.bytes_used;
  }
  // Per-file slots are the only accounting: totals are exactly their sum.
  const obs::AccessProfiler::Totals t = prof.totals();
  EXPECT_EQ(t.accesses, sum.accesses);
  EXPECT_EQ(t.bytes_scanned, sum.bytes_scanned);
  EXPECT_EQ(t.bytes_fetched, sum.bytes_fetched);
  EXPECT_EQ(t.bytes_used, sum.bytes_used);
  EXPECT_EQ(prof.unattributed(), 0u);
}

// ---- concurrency: followers and coalesced waiters never double-count ----

TEST_F(AccessProfileTest, ConcurrentColdQueriesNeverDoubleCountDiskBytes) {
  const Dataset ds = Dataset::open(dir_->path());
  auto& prof = obs::AccessProfiler::instance();
  EngineConfig cfg(4, 64ull << 20);
  reset_accounting();
  // The sleeping hook holds every leader in the read long enough that
  // concurrent ranks reliably join as single-flight followers.
  FetchOracle oracle(/*sleep_ms=*/3);

  const Box3 box({0.1, 0.1, 0.1}, {0.9, 0.9, 0.9});
  simmpi::run(4, [&](simmpi::Comm& comm) {
    (void)comm;
    const ParticleBuffer out = ds.query_box(box);
    ASSERT_GT(out.size(), 0u);
  });

  const obs::AccessProfiler::Totals t = prof.totals();
  EXPECT_EQ(t.bytes_fetched, oracle.bytes())
      << "followers or hits charged disk bytes they did not read";
  // All four ranks scanned every intersecting prefix; the disk saw each
  // at most a handful of times (once, outside a narrow single-flight
  // re-entry race — which the oracle equality above still covers).
  EXPECT_GE(t.bytes_scanned, t.bytes_fetched);
}

TEST_F(AccessProfileTest, CoalescedServiceWaitersNeverDoubleCount) {
  const Dataset ds = Dataset::open(dir_->path());
  auto& prof = obs::AccessProfiler::instance();
  EngineConfig cfg(4, 64ull << 20);
  reset_accounting();
  FetchOracle oracle(/*sleep_ms=*/2);

  const Box3 box({0.2, 0.2, 0.2}, {0.8, 0.8, 0.8});
  QueryService svc(ServiceConfig{2, 256, {}});
  std::atomic<std::uint64_t> returned{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c)
    clients.emplace_back([&] {
      for (int i = 0; i < 3; ++i) {
        QueryService::Options opt;
        opt.coalesce_key = "hot-box";  // every client hammers one key
        const QueryService::Result got =
            svc.run([&ds, &box] { return ds.query_box(box); }, opt);
        returned += got->byte_size();
      }
    });
  for (auto& t : clients) t.join();
  const ServiceStats stats = svc.stats();
  svc.shutdown();

  ASSERT_GT(returned.load(), 0u);
  EXPECT_GT(stats.coalesced, 0u) << "the coalescing path was never exercised";
  const obs::AccessProfiler::Totals t = prof.totals();
  // Coalesced waiters share one execution: disk bytes match the hook
  // exactly, and used bytes reflect executions, not client completions.
  EXPECT_EQ(t.bytes_fetched, oracle.bytes());
  EXPECT_LT(t.bytes_used, returned.load());
}

TEST_F(AccessProfileTest, DistributedReadChargesWholePrefixesAsUsed) {
  auto& prof = obs::AccessProfiler::instance();
  EngineConfig cfg(4, 64ull << 20);
  reset_accounting();
  FetchOracle oracle;

  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), 4);
  std::atomic<std::uint64_t> particles{0};
  simmpi::run(4, [&](simmpi::Comm& comm) {
    particles += distributed_read(comm, decomp, dir_->path()).size();
  });
  ASSERT_EQ(particles.load(), kRanks * kPerRank);

  const obs::AccessProfiler::Totals t = prof.totals();
  EXPECT_EQ(t.bytes_fetched, oracle.bytes());
  // Owner binning delivers every scanned record to some rank: nothing
  // is filtered away, so used == scanned.
  EXPECT_EQ(t.bytes_used, t.bytes_scanned);
  EXPECT_GT(t.bytes_used, 0u);
}

// ---- detailed per-query records ----

TEST_F(AccessProfileTest, DetailedRecordsSplitSumsExactlyToQueryTotals) {
  const Dataset ds = Dataset::open(dir_->path());
  auto& prof = obs::AccessProfiler::instance();
  EngineConfig cfg(4, 64ull << 20);
  reset_accounting();
  prof.set_detailed(true);  // collect records; no auto-write

  run_query_mix(ds);
  const std::string text = prof.dump();
  prof.set_detailed(false);

  const obs::JsonValue doc = obs::JsonValue::parse(text);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("format").as_string(), "spio.access_profile");
  EXPECT_EQ(doc.at("version").as_u64(), 1u);

  const obs::JsonValue& queries = doc.at("queries");
  // query_box, query, LOD query_box, stream_box.
  ASSERT_EQ(queries.size(), 4u);
  std::set<std::uint64_t> qids;
  std::set<std::string> kinds;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const obs::JsonValue& q = queries.at(i);
    const std::uint64_t qid = q.at("qid").as_u64();
    EXPECT_NE(qid, 0u);
    qids.insert(qid);
    kinds.insert(q.at("kind").as_string());

    std::uint64_t scanned = 0, fetched = 0, used = 0;
    const obs::JsonValue& files = q.at("files");
    ASSERT_GT(files.size(), 0u) << "query " << i;
    for (std::size_t f = 0; f < files.size(); ++f) {
      scanned += files.at(f).at("bytes_scanned").as_u64();
      fetched += files.at(f).at("bytes_fetched").as_u64();
      used += files.at(f).at("bytes_used").as_u64();
    }
    EXPECT_EQ(scanned, q.at("bytes_scanned").as_u64()) << "query " << i;
    EXPECT_EQ(fetched, q.at("bytes_fetched").as_u64()) << "query " << i;
    EXPECT_EQ(used, q.at("bytes_used").as_u64()) << "query " << i;
    EXPECT_LE(fetched, scanned) << "query " << i;
  }
  EXPECT_EQ(qids.size(), queries.size()) << "request IDs must be distinct";
  EXPECT_EQ(kinds, (std::set<std::string>{"query_box", "query", "stream_box"}))
      << "the LOD query is a query_box record";
  EXPECT_EQ(doc.at("queries_dropped").as_u64(), 0u);

  // The queries' fetched bytes are the totals' fetched bytes: every
  // cold fetch of this test happened inside a recorded query.
  const obs::JsonValue& totals = doc.at("totals");
  EXPECT_EQ(totals.at("bytes_fetched").as_u64(),
            prof.totals().bytes_fetched);
}

TEST_F(AccessProfileTest, WriteProducesAParsableProfileDocument) {
  const Dataset ds = Dataset::open(dir_->path());
  auto& prof = obs::AccessProfiler::instance();
  EngineConfig cfg(1, 64ull << 20);
  reset_accounting();
  prof.set_detailed(true);
  run_query_mix(ds);

  TempDir out("spio-profile-out");
  const std::string path = (out.path() / "profile.spio.json").string();
  ASSERT_TRUE(prof.write(path));
  prof.set_detailed(false);

  const std::vector<std::byte> bytes = read_file(path);
  const obs::JsonValue doc = obs::JsonValue::parse(std::string_view(
      reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  EXPECT_EQ(doc.at("format").as_string(), "spio.access_profile");
  bool found = false;
  const obs::JsonValue& datasets = doc.at("datasets");
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    if (datasets.at(d).at("dir").as_string() == dir_->path().string()) {
      found = true;
      const obs::JsonValue& files = datasets.at(d).at("files");
      EXPECT_EQ(files.size(), static_cast<std::size_t>(kRanks));
      // Partition bboxes ride along: that is what makes the profile a
      // spatial heatmap rather than a flat byte table.
      const obs::JsonValue& b = files.at(0).at("bounds");
      EXPECT_EQ(b.at("lo").size(), 3u);
      EXPECT_EQ(b.at("hi").size(), 3u);
    }
  }
  EXPECT_TRUE(found) << "the test dataset must appear in the profile";
}

// ---- kill switch ----

TEST_F(AccessProfileTest, KillSwitchFreezesAllCounters) {
  const Dataset ds = Dataset::open(dir_->path());
  auto& prof = obs::AccessProfiler::instance();
  EngineConfig cfg(1, 0);
  reset_accounting();

  prof.set_enabled(false);
  ds.query_box(Box3({0.1, 0.1, 0.1}, {0.9, 0.9, 0.9}));
  obs::AccessProfiler::Totals t = prof.totals();
  EXPECT_EQ(t.accesses, 0u);
  EXPECT_EQ(t.bytes_scanned, 0u);
  EXPECT_EQ(t.bytes_used, 0u);

  prof.set_enabled(true);
  ds.query_box(Box3({0.1, 0.1, 0.1}, {0.9, 0.9, 0.9}));
  t = prof.totals();
  EXPECT_GT(t.accesses, 0u);
  EXPECT_GT(t.bytes_used, 0u);
}

}  // namespace
}  // namespace spio
