#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace spio::obs {

namespace {

/// Recursive-descent parser over a string_view with a position cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    SPIO_CHECK(pos_ == text_.size(), FormatError,
               "JSON: trailing garbage at offset " << pos_);
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    SPIO_CHECK(false, FormatError,
               "JSON: " << what << " at offset " << pos_);
    std::abort();  // unreachable; SPIO_CHECK throws
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::null_value();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our own writers; pass them through raw).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_])))
        digits = true;
      ++pos_;
    }
    if (!digits) fail("expected a value");
    std::string raw(text_.substr(start, pos_ - start));
    const double v = std::strtod(raw.c_str(), nullptr);
    // Keep the exact source token so integer counters round-trip.
    return JsonValue::number_from_token(std::move(raw), v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double x) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = x;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  v.str_ = buf;
  return v;
}

JsonValue JsonValue::number(std::uint64_t x) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = static_cast<double>(x);
  v.str_ = std::to_string(x);
  return v;
}

JsonValue JsonValue::number(std::int64_t x) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = static_cast<double>(x);
  v.str_ = std::to_string(x);
  return v;
}

JsonValue JsonValue::number_from_token(std::string raw, double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.num_ = v;
  out.str_ = std::move(raw);
  return out;
}

JsonValue JsonValue::string(std::string_view s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = s;
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool JsonValue::as_bool() const {
  SPIO_CHECK(is_bool(), FormatError, "JSON: value is not a boolean");
  return bool_;
}

double JsonValue::as_double() const {
  SPIO_CHECK(is_number(), FormatError, "JSON: value is not a number");
  return num_;
}

std::uint64_t JsonValue::as_u64() const {
  SPIO_CHECK(is_number(), FormatError, "JSON: value is not a number");
  // Prefer the raw token: doubles lose integers above 2^53.
  if (!str_.empty() && str_.find_first_of(".eE") == std::string::npos &&
      str_[0] != '-') {
    return std::strtoull(str_.c_str(), nullptr, 10);
  }
  return static_cast<std::uint64_t>(num_);
}

std::int64_t JsonValue::as_i64() const {
  SPIO_CHECK(is_number(), FormatError, "JSON: value is not a number");
  if (!str_.empty() && str_.find_first_of(".eE") == std::string::npos) {
    return std::strtoll(str_.c_str(), nullptr, 10);
  }
  return static_cast<std::int64_t>(num_);
}

const std::string& JsonValue::as_string() const {
  SPIO_CHECK(is_string(), FormatError, "JSON: value is not a string");
  return str_;
}

std::size_t JsonValue::size() const {
  if (is_array()) return arr_.size();
  if (is_object()) return obj_.size();
  SPIO_CHECK(false, FormatError, "JSON: value has no size");
  return 0;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  SPIO_CHECK(is_array(), FormatError, "JSON: value is not an array");
  SPIO_CHECK(i < arr_.size(), FormatError,
             "JSON: array index " << i << " out of range (size "
                                  << arr_.size() << ")");
  return arr_[i];
}

JsonValue& JsonValue::push_back(JsonValue v) {
  SPIO_CHECK(is_array(), FormatError, "JSON: value is not an array");
  arr_.push_back(std::move(v));
  return arr_.back();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  SPIO_CHECK(is_object(), FormatError, "JSON: value is not an object");
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  SPIO_CHECK(v != nullptr, FormatError,
             "JSON: missing key '" << std::string(key) << "'");
  return *v;
}

JsonValue& JsonValue::set(std::string_view key, JsonValue v) {
  SPIO_CHECK(is_object(), FormatError, "JSON: value is not an object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
  return obj_.back().second;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  SPIO_CHECK(is_object(), FormatError, "JSON: value is not an object");
  return obj_;
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      if (std::isfinite(num_)) {
        out += str_.empty() ? "0" : str_;
      } else {
        out += "null";  // JSON has no inf/nan
      }
      break;
    case Kind::kString:
      out += '"';
      append_json_escaped(out, str_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        out += '"';
        append_json_escaped(out, obj_[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace spio::obs
