# Empty dependencies file for spio_baselines.
# This may be replaced when dependencies are built.
