#include "core/validate.hpp"

#include <limits>
#include <optional>
#include <sstream>

#include "core/journal.hpp"
#include "core/query_plan/zone_map.hpp"
#include "core/reader.hpp"
#include "util/checksum.hpp"
#include "util/serialize.hpp"

namespace spio {

namespace {

template <typename... Args>
std::string fmt(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

void deep_check_file(const Dataset& ds, int fi, const ZoneMapTable* zones,
                     ValidationReport& report) {
  const DatasetMetadata& meta = ds.metadata();
  const FileRecord& rec = meta.files[static_cast<std::size_t>(fi)];
  ParticleBuffer buf(meta.schema);
  try {
    buf = ds.read_data_file(fi);
  } catch (const Error& e) {
    report.errors.push_back(e.what());
    return;
  }
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (meta.has_bounds && !rec.bounds.contains_closed(buf.position(i))) {
      report.errors.push_back(
          fmt("file '", rec.file_name(), "': particle ", i, " at ",
              buf.position(i), " lies outside the recorded bounds ",
              rec.bounds));
      break;  // one example per file is enough
    }
  }
  if (meta.has_field_ranges) {
    for (std::size_t f = 0; f < meta.schema.field_count(); ++f) {
      const FieldDesc& fd = meta.schema.fields()[f];
      for (std::uint32_t c = 0; c < fd.components; ++c) {
        const FieldRange& fr =
            rec.field_ranges[meta.range_index(f, c)];
        for (std::size_t i = 0; i < buf.size(); ++i) {
          const double v =
              fd.type == FieldType::kF64
                  ? buf.get_f64(i, f, c)
                  : static_cast<double>(buf.get_f32(i, f, c));
          if (v < fr.min || v > fr.max) {
            report.errors.push_back(
                fmt("file '", rec.file_name(), "': field '", fd.name,
                    "' component ", c, " value ", v,
                    " outside recorded range [", fr.min, ", ", fr.max, "]"));
            i = buf.size();  // one example per component
          }
        }
      }
    }
  }
  if (const FileZones* fz =
          zones ? zones->find(rec.aggregator_rank) : nullptr) {
    // Every record must lie inside its zone's recorded ranges; a NaN
    // record is legal only under the conservative [-inf, +inf] zone.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const std::size_t rc = zones->range_count;
    std::uint32_t z = 0;
    std::uint64_t next = zone_begin(zones->lod, 1, rec.particle_count);
    bool reported = false;
    for (std::size_t i = 0; i < buf.size() && !reported; ++i) {
      while (i >= next) {
        ++z;
        next = zone_begin(zones->lod, z + 1, rec.particle_count);
      }
      for (std::size_t f = 0;
           f < meta.schema.field_count() && !reported; ++f) {
        const FieldDesc& fd = meta.schema.fields()[f];
        for (std::uint32_t c = 0; c < fd.components && !reported; ++c) {
          const double v =
              fd.type == FieldType::kF64
                  ? buf.get_f64(i, f, c)
                  : static_cast<double>(buf.get_f32(i, f, c));
          const FieldRange& zr = fz->zones[z * rc + meta.range_index(f, c)];
          const bool bad = v != v ? !(zr.min == -kInf && zr.max == kInf)
                                  : (v < zr.min || v > zr.max);
          if (bad) {
            report.errors.push_back(
                fmt("file '", rec.file_name(), "': field '", fd.name,
                    "' component ", c, " value ", v, " of record ", i,
                    " outside zone ", z, " range [", zr.min, ", ", zr.max,
                    "]"));
            reported = true;  // one example per file is enough
          }
        }
      }
    }
  }
}

}  // namespace

ValidationReport validate_dataset(const std::filesystem::path& dir,
                                  bool deep) {
  ValidationReport report;
  const bool journal_open = WriteJournal::present(dir);

  DatasetMetadata meta;
  try {
    meta = DatasetMetadata::load(dir);
  } catch (const Error& e) {
    if (journal_open) {
      report.errors.push_back(
          "write journal present and metadata unreadable: the last write "
          "did not complete (repair with check_and_repair)");
    }
    report.errors.push_back(e.what());
    return report;
  }

  std::uint64_t count_sum = 0;
  for (const FileRecord& rec : meta.files) {
    count_sum += rec.particle_count;
    const auto path = dir / rec.file_name();
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) {
      report.errors.push_back(
          fmt("data file '", rec.file_name(), "' is missing"));
      continue;
    }
    const std::uint64_t expect =
        rec.particle_count * meta.schema.record_size();
    if (size != expect) {
      report.errors.push_back(fmt("data file '", rec.file_name(), "' holds ",
                                  size, " bytes, metadata expects ", expect));
    }
    if (meta.has_bounds && !meta.domain.contains_box(rec.bounds)) {
      report.warnings.push_back(fmt("file '", rec.file_name(), "' bounds ",
                                    rec.bounds,
                                    " extend outside the domain ",
                                    meta.domain));
    }
    if (rec.particle_count == 0) {
      report.warnings.push_back(
          fmt("file '", rec.file_name(), "' holds no particles"));
    }
  }
  // The metadata loader already enforces count_sum == total_particles; a
  // mismatch here would mean the loader changed, so treat it as an error
  // anyway (defense in depth for hand-edited metadata).
  if (count_sum != meta.total_particles) {
    report.errors.push_back(fmt("file counts sum to ", count_sum,
                                " but the header claims ",
                                meta.total_particles));
  }

  if (meta.has_bounds) {
    for (std::size_t a = 0; a < meta.files.size(); ++a) {
      for (std::size_t b = a + 1; b < meta.files.size(); ++b) {
        if (meta.files[a].bounds.overlaps(meta.files[b].bounds)) {
          report.warnings.push_back(
              fmt("files '", meta.files[a].file_name(), "' and '",
                  meta.files[b].file_name(), "' have overlapping bounds"));
        }
      }
    }
  }

  // Zone-map sidecar: absence is benign (the planner degrades to
  // zone-free pruning), but a sidecar that fails its CRC or does not
  // match the metadata is detectable corruption.
  std::optional<ZoneMapTable> zones;
  if (ZoneMapTable::present(dir)) {
    try {
      ZoneMapTable table = ZoneMapTable::load(dir);
      if (!zones_consistent(table, meta)) {
        report.errors.push_back(
            "zone-map sidecar 'zones.spio' does not match the metadata "
            "(stale or partially rewritten dataset)");
      } else {
        zones = std::move(table);
      }
    } catch (const Error& e) {
      report.errors.push_back(e.what());
    }
  } else if (meta.has_zone_maps) {
    report.warnings.push_back(
        "metadata promises zone maps but 'zones.spio' is missing (queries "
        "fall back to zone-free planning)");
  }

  // An open journal over an otherwise-consistent dataset is a crash
  // between the metadata commit and the journal removal: the data is
  // whole, but the directory should be finalized.
  if (journal_open) {
    if (report.errors.empty()) {
      report.warnings.push_back(
          "stale write journal over a complete dataset (finalize with "
          "check_and_repair)");
    } else {
      report.errors.push_back(
          "write journal present: the last write did not complete (repair "
          "with check_and_repair)");
    }
  }

  if (deep && report.errors.empty()) {
    // Checksum pass first: it catches silent corruption (bit rot, torn
    // writes that kept the expected size) that the per-particle checks
    // below could misattribute to writer bugs.
    std::optional<ChecksumTable> crcs;
    if (ChecksumTable::present(dir)) {
      try {
        crcs = ChecksumTable::load(dir);
      } catch (const Error& e) {
        report.errors.push_back(e.what());
      }
    }
    if (crcs) {
      for (const FileRecord& rec : meta.files) {
        const auto want = crcs->crc_for(rec.aggregator_rank);
        if (!want) {
          report.warnings.push_back(
              fmt("file '", rec.file_name(),
                  "' has no entry in the checksum table"));
          continue;
        }
        try {
          const auto bytes = read_file(dir / rec.file_name());
          if (crc64(bytes) != *want) {
            report.errors.push_back(
                fmt("file '", rec.file_name(),
                    "' fails its recorded checksum: silent data corruption"));
          }
        } catch (const Error& e) {
          report.errors.push_back(e.what());
        }
      }
    }
  }

  if (deep && report.errors.empty()) {
    const Dataset ds = Dataset::open(dir);
    for (int fi = 0; fi < ds.file_count(); ++fi)
      deep_check_file(ds, fi, zones ? &*zones : nullptr, report);
  }
  return report;
}

}  // namespace spio
