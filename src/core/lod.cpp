#include "core/lod.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "util/error.hpp"

namespace spio {

namespace {
constexpr std::uint64_t kU64Max = ~0ULL;

/// n · P · S^l with saturation to u64 max.
std::uint64_t nominal(const LodParams& p, int n_readers, int level) {
  SPIO_EXPECTS(p.valid());
  SPIO_EXPECTS(n_readers >= 1);
  SPIO_EXPECTS(level >= 0);
  const double v = static_cast<double>(n_readers) *
                   static_cast<double>(p.P) *
                   std::pow(p.S, static_cast<double>(level));
  if (v >= static_cast<double>(kU64Max)) return kU64Max;
  return static_cast<std::uint64_t>(v + 0.5);
}
}  // namespace

std::uint64_t lod_level_size(const LodParams& p, int n_readers, int level) {
  return nominal(p, n_readers, level);
}

std::uint64_t lod_cumulative(const LodParams& p, int n_readers, int levels,
                             std::uint64_t total) {
  SPIO_EXPECTS(levels >= 0);
  std::uint64_t cum = 0;
  for (int l = 0; l < levels; ++l) {
    const std::uint64_t sz = nominal(p, n_readers, l);
    if (sz >= total - cum) return total;  // saturated
    cum += sz;
  }
  return cum;
}

std::uint64_t lod_level_size_capped(const LodParams& p, int n_readers,
                                    int level, std::uint64_t total) {
  const std::uint64_t before = lod_cumulative(p, n_readers, level, total);
  const std::uint64_t through = lod_cumulative(p, n_readers, level + 1, total);
  return through - before;
}

int lod_level_count(const LodParams& p, int n_readers, std::uint64_t total) {
  if (total == 0) return 0;
  int levels = 0;
  while (lod_cumulative(p, n_readers, levels, total) < total) ++levels;
  return levels;
}

namespace {

void shuffle_random(ParticleBuffer& buf, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const std::size_t n = buf.size();
  // Fisher–Yates: after the pass, every permutation is equally likely, so
  // every prefix is a uniform random subset — exactly the property the LOD
  // prefix reads rely on.
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.uniform_index(static_cast<std::uint64_t>(i)));
    buf.swap_records(i - 1, j);
  }
}

/// Rebuild `buf` as the permutation buf[order[0]], buf[order[1]], ... via
/// one pre-sized allocation and one record memcpy per particle (the
/// per-record append path re-checked bounds and grew the vector
/// incrementally).
void gather_records(ParticleBuffer& buf,
                    const std::vector<std::uint32_t>& order) {
  const std::size_t rs = buf.record_size();
  const std::byte* src = buf.bytes().data();
  std::vector<std::byte> out(order.size() * rs);
  std::byte* dst = out.data();
  for (const std::uint32_t idx : order) {
    std::memcpy(dst, src + static_cast<std::size_t>(idx) * rs, rs);
    dst += rs;
  }
  buf.adopt_bytes(std::move(out));
}

/// Indices 0..2^bits-1 in bit-reversed order, filtered to < n.
std::vector<std::uint32_t> bit_reversed_order(std::size_t n) {
  std::vector<std::uint32_t> order;
  order.reserve(n);
  if (n == 0) return order;
  std::size_t bits = 0;
  while ((1ULL << bits) < n) ++bits;
  for (std::size_t i = 0; i < (1ULL << bits); ++i) {
    std::size_t rev = 0;
    for (std::size_t b = 0; b < bits; ++b)
      if (i & (1ULL << b)) rev |= 1ULL << (bits - 1 - b);
    if (rev < n) order.push_back(static_cast<std::uint32_t>(rev));
  }
  return order;
}

/// 30-bit Morton code (10 bits per axis) of a normalized position.
std::uint32_t morton_code(const Vec3d& rel) {
  auto quantize = [](double v) {
    return static_cast<std::uint32_t>(
        std::clamp(v, 0.0, 1.0 - 1e-12) * 1024.0);
  };
  auto spread = [](std::uint32_t x) {
    // Interleave 10 bits with two zero bits each.
    std::uint64_t v = x & 0x3FF;
    v = (v | (v << 16)) & 0x030000FF0000FFULL;
    v = (v | (v << 8)) & 0x0300F00F00F00FULL;
    v = (v | (v << 4)) & 0x030C30C30C30C3ULL;
    v = (v | (v << 2)) & 0x09249249249249ULL;
    return v;
  };
  return static_cast<std::uint32_t>(spread(quantize(rel.x)) |
                                    (spread(quantize(rel.y)) << 1) |
                                    (spread(quantize(rel.z)) << 2));
}

void shuffle_stratified(ParticleBuffer& buf, std::uint64_t seed) {
  const std::size_t n = buf.size();
  if (n < 2) return;
  const Box3 bounds = buf.bounds();
  const Vec3d size = Vec3d::max(bounds.size(), Vec3d(1e-300));

  // Sort particle indices along the Morton curve; ties (same cell) are
  // broken pseudo-randomly so co-located particles do not keep their
  // input order.
  struct Key {
    std::uint32_t morton;
    std::uint32_t tiebreak;
    std::uint32_t index;
  };
  std::vector<Key> keys(n);
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3d rel = (buf.position(i) - bounds.lo) / size;
    keys[i] = {morton_code(rel), static_cast<std::uint32_t>(rng.next()),
               static_cast<std::uint32_t>(i)};
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    return a.morton != b.morton ? a.morton < b.morton
                                : a.tiebreak < b.tiebreak;
  });

  // Emit the space-sorted sequence in bit-reversed rank order: each
  // prefix visits the Morton curve at even spacing, i.e. is spatially
  // stratified.
  std::vector<std::uint32_t> order;
  order.reserve(n);
  for (const std::uint32_t r : bit_reversed_order(n))
    order.push_back(keys[r].index);
  gather_records(buf, order);
}

void shuffle_stride(ParticleBuffer& buf) {
  // Deterministic interleave: emit indices 0, n/2, n/4, 3n/4, ... —
  // bit-reversed order over the input sequence. Applied out of place
  // (records are large; a cycle-walk in place would touch each record
  // twice anyway).
  const std::size_t n = buf.size();
  if (n < 2) return;
  gather_records(buf, bit_reversed_order(n));
}

}  // namespace

void lod_reorder(ParticleBuffer& buf, std::uint64_t seed,
                 LodHeuristic heuristic) {
  switch (heuristic) {
    case LodHeuristic::kRandom:
      shuffle_random(buf, seed);
      return;
    case LodHeuristic::kStride:
      shuffle_stride(buf);
      return;
    case LodHeuristic::kStratified:
      shuffle_stratified(buf, seed);
      return;
  }
  throw ConfigError("unknown LOD heuristic");
}

}  // namespace spio
