#include "obs/obs.hpp"

#include <cstdlib>
#include <string>

#include "obs/access_profile.hpp"
#include "obs/log.hpp"
#include "obs/stats_export.hpp"
#include "obs/trace.hpp"

namespace spio::obs {

namespace detail {

std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

}  // namespace detail

namespace {

thread_local int tls_rank = -1;

/// SPIO_TRACE handling: read once, enable collection, and register an
/// exit flush so even a tool that never calls `flush_env()` explicitly
/// leaves a loadable trace behind.
const std::string& env_path_storage() {
  static const std::string path = [] {
    const char* v = std::getenv("SPIO_TRACE");
    return std::string(v ? v : "");
  }();
  return path;
}

const bool g_env_init = [] {
  (void)detail::epoch();  // pin the epoch before any rank thread starts
  if (!env_path_storage().empty()) {
    enable();
    std::atexit([] { Tracer::instance().flush_env(); });
  }
  TelemetryExporter::instance().init_from_env();  // SPIO_STATS
  AccessProfiler::instance().init_from_env();     // SPIO_PROFILE
  return true;
}();

}  // namespace

void enable() { detail::g_enabled.store(true, std::memory_order_relaxed); }

void disable() { detail::g_enabled.store(false, std::memory_order_relaxed); }

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - detail::epoch())
      .count();
}

void set_thread_rank(int rank) { tls_rank = rank; }

int thread_rank() { return tls_rank; }

const char* env_trace_path() {
  (void)g_env_init;
  return env_path_storage().c_str();
}

void init_from_env() {
  (void)env_trace_path();
  log::init_from_env();
  TelemetryExporter::instance().init_from_env();
  AccessProfiler::instance().init_from_env();
}

}  // namespace spio::obs
