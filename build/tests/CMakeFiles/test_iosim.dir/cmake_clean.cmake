file(REMOVE_RECURSE
  "CMakeFiles/test_iosim.dir/iosim/adaptive_model_test.cpp.o"
  "CMakeFiles/test_iosim.dir/iosim/adaptive_model_test.cpp.o.d"
  "CMakeFiles/test_iosim.dir/iosim/event_sim_property_test.cpp.o"
  "CMakeFiles/test_iosim.dir/iosim/event_sim_property_test.cpp.o.d"
  "CMakeFiles/test_iosim.dir/iosim/event_sim_test.cpp.o"
  "CMakeFiles/test_iosim.dir/iosim/event_sim_test.cpp.o.d"
  "CMakeFiles/test_iosim.dir/iosim/read_model_test.cpp.o"
  "CMakeFiles/test_iosim.dir/iosim/read_model_test.cpp.o.d"
  "CMakeFiles/test_iosim.dir/iosim/write_model_test.cpp.o"
  "CMakeFiles/test_iosim.dir/iosim/write_model_test.cpp.o.d"
  "test_iosim"
  "test_iosim.pdb"
  "test_iosim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
