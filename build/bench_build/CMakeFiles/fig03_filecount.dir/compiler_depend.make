# Empty compiler generated dependencies file for fig03_filecount.
# This may be replaced when dependencies are built.
