#include "util/units.hpp"

#include <gtest/gtest.h>

namespace spio {
namespace {

TEST(FormatBytes, PicksAppropriateUnit) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4096), "4.0 KiB");
  EXPECT_EQ(format_bytes(4 * 1024 * 1024), "4.0 MiB");
  EXPECT_EQ(format_bytes(3ull * 1024 * 1024 * 1024), "3.0 GiB");
}

TEST(ThroughputGbs, BasicConversion) {
  // 1 GiB in 1 second = 1 GB/s in our convention.
  EXPECT_DOUBLE_EQ(throughput_gbs(1ull << 30, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(throughput_gbs(1ull << 31, 2.0), 1.0);
}

TEST(ThroughputGbs, ZeroOrNegativeTimeIsZero) {
  EXPECT_EQ(throughput_gbs(1000, 0.0), 0.0);
  EXPECT_EQ(throughput_gbs(1000, -1.0), 0.0);
}

TEST(FormatSeconds, PicksScale) {
  EXPECT_EQ(format_seconds(0.0000005), "0.5 us");
  EXPECT_EQ(format_seconds(0.033), "33.0 ms");
  EXPECT_EQ(format_seconds(2.5), "2.50 s");
}

}  // namespace
}  // namespace spio
