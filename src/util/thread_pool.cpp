#include "util/thread_pool.hpp"

namespace spio {

ThreadPool::ThreadPool(int threads) : concurrency_(threads < 1 ? 1 : threads) {
  if (concurrency_ < 2) return;
  workers_.reserve(static_cast<std::size_t>(concurrency_));
  for (int i = 0; i < concurrency_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  if (workers_.empty()) {
    task();  // inline pool: run now, on the caller
    return fut;
  }
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::run_batch(std::vector<std::function<void()>> tasks) {
  if (workers_.empty()) {
    for (auto& t : tasks) t();
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (auto& t : tasks) futures.push_back(submit(std::move(t)));
  for (auto& f : futures) f.wait();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace spio
