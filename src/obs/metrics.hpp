#pragma once

/// \file metrics.hpp
/// Typed metric registry: counters, gauges, and fixed log2-bucket
/// histograms, addressed by dotted names.
///
/// Naming scheme (`<subsystem>.<what>`, see docs/OBSERVABILITY.md):
///   writer.*    — the two-phase write pipeline (writer.bytes_sent,
///                 writer.bytes_written, writer.files_written, ...)
///   reader.*    — Dataset queries and distributed reads
///                 (reader.files_opened, reader.bytes_read,
///                 reader.read_amplification, ...)
///   simmpi.*    — transport (simmpi.msg_count, simmpi.bytes_sent,
///                 simmpi.recv_wait_us, simmpi.collectives, ...)
///   faultsim.*  — reliability layer (faultsim.retries,
///                 faultsim.rewrites, faultsim.exchanges, ...)
///   baseline.*  — the comparison formats (baseline.bytes_written, ...)
///
/// Metric objects are registered on first use and never destroyed or
/// re-created, so call sites may cache references
/// (`static auto& c = MetricsRegistry::global().counter("x");`) and hit
/// a single relaxed atomic add afterwards. `reset()` zeroes values but
/// keeps every registered object valid.
///
/// The registry itself is always live; *hot-path* call sites (per-message
/// transport counters) additionally gate on `obs::enabled()` so the
/// disabled build stays at one atomic load per site. One-shot accounting
/// (a write's final WriteStats publication) is unconditional.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/windowed_histogram.hpp"

namespace spio::obs {

/// Monotonic event/volume counter.
class Counter {
 public:
  void add(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar (ratios, levels, configuration echoes).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Raise the gauge to `v` if `v` is larger (high-water marks, e.g.
  /// `service.queue_depth_max`). Concurrent set_max calls keep the max;
  /// a plain `set` still overwrites — the exporter uses that to reset
  /// the watermark each sampling window.
  void set_max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram over unsigned values with fixed log2 buckets: bucket `i`
/// counts observations `v` with `bit_width(v) == i`, i.e. bucket 0 holds
/// the zeros and bucket i >= 1 holds [2^(i-1), 2^i). 65 buckets cover
/// the whole u64 range — message sizes, file sizes, retry latencies all
/// fit without configuration.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v) {
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket `i` (2^i - 1; bucket 0 -> 0).
  static std::uint64_t bucket_bound(std::size_t i) {
    return i == 0 ? 0
           : i >= 64
               ? ~std::uint64_t{0}
               : (std::uint64_t{1} << i) - 1;
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Name-addressed metric directory. Lookup takes a lock; cache the
/// returned reference at the call site.
class MetricsRegistry {
 public:
  /// The process-wide registry all built-in instrumentation uses.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  /// Sliding-window histogram for live quantiles (service latencies);
  /// same registration semantics as the cumulative kinds.
  WindowedHistogram& windowed(std::string_view name);

  /// Point-in-time copy of every metric, names sorted (map order).
  struct HistogramData {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// (bucket upper bound, count) for non-empty buckets only.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };
  /// Merged-window view of a WindowedHistogram at snapshot time.
  struct WindowedData {
    std::uint64_t count = 0;       ///< samples in the merged window
    std::uint64_t sum = 0;         ///< their sum
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t total_count = 0; ///< cumulative since start
    std::uint64_t total_sum = 0;
  };
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> histograms;
    std::map<std::string, WindowedData> windows;
  };
  Snapshot snapshot() const;

  /// Advance every windowed histogram's epoch (exporter tick).
  void rotate_windows();

  /// Zero every metric's value. Registered objects (and cached
  /// references to them) stay valid.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>, std::less<>>
      windows_;
};

}  // namespace spio::obs
