#pragma once

/// \file partition_factor.hpp
/// The aggregation partition factor (Px, Py, Pz) — the paper's central
/// tuning parameter (§3.1): the ratio of the aggregation-partition size to
/// the simulation's per-process patch size along each axis.
///
///   (1,1,1)  -> every patch is its own partition: file-per-process I/O
///   (nx,ny,nz)-> one partition spanning the domain: single shared file
///
/// Larger factors mean more communication during aggregation and fewer,
/// larger output files; the law `f = ceil(nx/Px)·ceil(ny/Py)·ceil(nz/Pz)`
/// gives the output file count.

#include <cstdint>
#include <string>

#include "util/error.hpp"
#include "util/vec3.hpp"

namespace spio {

struct PartitionFactor {
  int px = 1;
  int py = 1;
  int pz = 1;

  constexpr PartitionFactor() = default;
  constexpr PartitionFactor(int x, int y, int z) : px(x), py(y), pz(z) {}

  constexpr bool operator==(const PartitionFactor&) const = default;

  /// Number of processes whose patches aggregate into one partition (the
  /// communication group size of the aggregation phase).
  constexpr std::int64_t group_size() const {
    return static_cast<std::int64_t>(px) * py * pz;
  }

  constexpr bool valid() const { return px >= 1 && py >= 1 && pz >= 1; }

  /// "PxxPyxPz", e.g. "2x2x4" — the notation used in the paper's figures.
  std::string to_string() const {
    return std::to_string(px) + "x" + std::to_string(py) + "x" +
           std::to_string(pz);
  }
};

/// Number of aggregation partitions (= output data files) produced when a
/// `grid` of processes aggregates with `factor`: the paper's
/// `f = (nx/Px)(ny/Py)(nz/Pz)` law, generalized with ceilings for factors
/// that do not divide the process grid.
constexpr std::int64_t file_count(const Vec3i& process_grid,
                                  const PartitionFactor& factor) {
  auto ceil_div = [](std::int64_t a, std::int64_t b) {
    return (a + b - 1) / b;
  };
  return ceil_div(process_grid.x, factor.px) *
         ceil_div(process_grid.y, factor.py) *
         ceil_div(process_grid.z, factor.pz);
}

}  // namespace spio
