#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace spio {

double Xoshiro256::normal() {
  // Box-Muller transform. We draw both uniforms every call and discard the
  // second deviate so that the stream position is a pure function of the
  // call count (no hidden cached state to reason about in tests).
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace spio
