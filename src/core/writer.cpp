#include "core/writer.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <span>
#include <string>
#include <type_traits>

#include "core/journal.hpp"
#include "core/metadata.hpp"
#include "core/query_plan/zone_map.hpp"
#include "faultsim/checked_io.hpp"
#include "faultsim/fault_plan.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/run_record.hpp"
#include "obs/trace.hpp"
#include "simmpi/reduce_ops.hpp"
#include "util/checksum.hpp"
#include "util/serialize.hpp"

namespace spio {

namespace {

// Point-to-point tags of the write pipeline; owned by the fault layer so
// fault plans address the same sites the writer uses.
constexpr int kTagMeta = faultsim::kTagMetaExchange;      // u64 count
constexpr int kTagData = faultsim::kTagParticleExchange;  // particle records

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Per-axis grid state hoisted out of the binning loop: raw edge pointer,
/// dimension, and inverse nominal cell size in one flat struct, so the
/// per-particle lookup runs on registers instead of re-walking the grid's
/// vectors through the virtual interface. `operator()` reproduces
/// `AggregationGrid::locate` exactly (same estimate, same local walk
/// against the same stored edges).
struct HoistedLocator {
  struct Axis {
    const double* edges;
    std::int64_t dims;
    double lo;
    double inv;
  };
  Axis ax[3];
  std::int64_t dx, dy;

  explicit HoistedLocator(const AggregationGrid& g)
      : dx(g.dims().x), dy(g.dims().y) {
    for (int a = 0; a < 3; ++a) {
      ax[a].edges = g.edges(a).data();
      ax[a].dims = g.dims()[a];
      ax[a].lo = g.edges(a).front();
      ax[a].inv = g.inv_cell()[a];
    }
  }

  std::int64_t axis_index(int a, double p) const {
    const Axis& x = ax[a];
    const double est = (p - x.lo) * x.inv;
    std::int64_t i = est > 0.0 ? static_cast<std::int64_t>(est) : 0;
    if (i > x.dims - 1) i = x.dims - 1;
    while (i + 1 < x.dims && p >= x.edges[i + 1]) ++i;
    while (i > 0 && p < x.edges[i]) --i;
    return i;
  }

  int operator()(const Vec3d& p) const {
    return static_cast<int>(axis_index(0, p.x) +
                            dx * (axis_index(1, p.y) +
                                  dy * axis_index(2, p.z)));
  }
};

const char* heuristic_name(LodHeuristic h) {
  switch (h) {
    case LodHeuristic::kRandom:
      return "random";
    case LodHeuristic::kStride:
      return "stride";
    case LodHeuristic::kStratified:
      return "stratified";
  }
  return "unknown";
}

/// Mirror one rank's WriteStats into the metrics registry (naming scheme:
/// docs/OBSERVABILITY.md). One-shot per write, so it runs whenever
/// collection is on regardless of how hot the pipeline itself was.
void publish_write_stats(const WriteStats& s) {
  if (!obs::enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("writer.particles_sent").add(s.particles_sent);
  reg.counter("writer.bytes_sent").add(s.bytes_sent);
  reg.counter("writer.particles_written").add(s.particles_written);
  reg.counter("writer.bytes_written").add(s.bytes_written);
  reg.counter("writer.files_written")
      .add(static_cast<std::uint64_t>(s.files_written));
  if (s.was_aggregator) reg.counter("writer.aggregators").add(1);
  const auto us = [](double sec) {
    return static_cast<std::uint64_t>(sec * 1e6);
  };
  reg.counter("writer.setup_us").add(us(s.setup_seconds));
  reg.counter("writer.meta_exchange_us").add(us(s.meta_exchange_seconds));
  reg.counter("writer.particle_exchange_us")
      .add(us(s.particle_exchange_seconds));
  reg.counter("writer.reorder_us").add(us(s.reorder_seconds));
  reg.counter("writer.file_io_us").add(us(s.file_io_seconds));
  reg.counter("writer.metadata_io_us").add(us(s.metadata_io_seconds));
}

/// Flat config echo for the run record.
std::map<std::string, std::string> config_echo(const WriterConfig& c) {
  const auto yesno = [](bool b) { return std::string(b ? "true" : "false"); };
  std::map<std::string, std::string> out;
  out["factor"] = c.factor.to_string();
  out["adaptive"] = yesno(c.adaptive);
  out["adaptive_refine"] = yesno(c.adaptive_refine);
  out["lod_P"] = std::to_string(c.lod.P);
  out["lod_S"] = std::to_string(c.lod.S);
  out["heuristic"] = heuristic_name(c.heuristic);
  out["write_spatial_metadata"] = yesno(c.write_spatial_metadata);
  out["write_field_ranges"] = yesno(c.write_field_ranges);
  out["write_zone_maps"] = yesno(c.write_zone_maps);
  out["write_checksums"] = yesno(c.write_checksums);
  out["journal"] = yesno(c.journal);
  out["fault_injection"] = yesno(c.faults != nullptr);
  return out;
}

double load_component(const std::byte* p, bool f64) {
  if (f64) {
    double v;
    std::memcpy(&v, p, sizeof(double));
    return v;
  }
  float v;
  std::memcpy(&v, p, sizeof(float));
  return static_cast<double>(v);
}

/// The failing rank's partial stats for the postmortem bundle: whatever
/// phases completed keep their timings, everything after the failure
/// point reads zero.
obs::JsonValue write_stats_to_json(const WriteStats& s) {
  obs::JsonValue out = obs::JsonValue::object();
  out.set("setup_seconds", obs::JsonValue::number(s.setup_seconds));
  out.set("meta_exchange_seconds",
          obs::JsonValue::number(s.meta_exchange_seconds));
  out.set("particle_exchange_seconds",
          obs::JsonValue::number(s.particle_exchange_seconds));
  out.set("reorder_seconds", obs::JsonValue::number(s.reorder_seconds));
  out.set("file_io_seconds", obs::JsonValue::number(s.file_io_seconds));
  out.set("metadata_io_seconds",
          obs::JsonValue::number(s.metadata_io_seconds));
  out.set("particles_sent", obs::JsonValue::number(s.particles_sent));
  out.set("bytes_sent", obs::JsonValue::number(s.bytes_sent));
  out.set("particles_written", obs::JsonValue::number(s.particles_written));
  out.set("bytes_written", obs::JsonValue::number(s.bytes_written));
  out.set("files_written",
          obs::JsonValue::number(std::int64_t{s.files_written}));
  out.set("partition_count",
          obs::JsonValue::number(std::int64_t{s.partition_count}));
  out.set("was_aggregator", obs::JsonValue::boolean(s.was_aggregator));
  return out;
}

/// Echo of the *immutable* fault plan. The injector's per-rank event log
/// is deliberately not read here: other ranks may still be appending to
/// it when one rank fails (it is only aggregatable after the job joins);
/// the flight recorder's kFault records carry the fired injections.
obs::JsonValue fault_plan_to_json(const faultsim::FaultPlan& plan) {
  using obs::JsonValue;
  JsonValue out = JsonValue::object();
  JsonValue messages = JsonValue::array();
  for (const faultsim::MessageRule& r : plan.messages) {
    JsonValue m = JsonValue::object();
    m.set("action",
          JsonValue::string(faultsim::send_action_name(r.action)));
    m.set("tag", JsonValue::number(std::int64_t{r.tag}));
    m.set("src", JsonValue::number(std::int64_t{r.src}));
    m.set("dst", JsonValue::number(std::int64_t{r.dst}));
    m.set("after", JsonValue::number(std::int64_t{r.after}));
    m.set("count", JsonValue::number(std::int64_t{r.count}));
    messages.push_back(std::move(m));
  }
  out.set("messages", std::move(messages));
  JsonValue files = JsonValue::array();
  for (const faultsim::FileRule& r : plan.files) {
    JsonValue f = JsonValue::object();
    f.set("kind", JsonValue::string(faultsim::file_fault_name(r.kind)));
    f.set("rank", JsonValue::number(std::int64_t{r.rank}));
    f.set("path_contains", JsonValue::string(r.path_contains));
    f.set("after", JsonValue::number(std::int64_t{r.after}));
    f.set("count", JsonValue::number(std::int64_t{r.count}));
    files.push_back(std::move(f));
  }
  out.set("files", std::move(files));
  JsonValue deaths = JsonValue::array();
  for (const faultsim::DeathRule& d : plan.deaths) {
    JsonValue dd = JsonValue::object();
    dd.set("rank", JsonValue::number(std::int64_t{d.rank}));
    dd.set("phase", JsonValue::string(faultsim::phase_name(d.phase)));
    deaths.push_back(std::move(dd));
  }
  out.set("deaths", std::move(deaths));
  return out;
}

void dump_write_postmortem(const WriterConfig& config, const WriteStats& stats,
                           int job_ranks, int rank,
                           faultsim::WritePhase phase, const char* reason) {
  obs::PostmortemInfo info;
  info.reason = reason;
  info.failed_rank = rank;
  info.phase = std::string(faultsim::phase_name(phase));
  info.job_ranks = job_ranks;
  info.sections.emplace_back("write_stats", write_stats_to_json(stats));
  obs::JsonValue cfg = obs::JsonValue::object();
  for (const auto& [k, v] : config_echo(config))
    cfg.set(k, obs::JsonValue::string(v));
  info.sections.emplace_back("config", std::move(cfg));
  if (config.faults)
    info.sections.emplace_back("fault_plan",
                               fault_plan_to_json(config.faults->plan()));
  obs::log::Event(obs::log::Level::kError, "write.failed")
      .kv("rank", rank)
      .kv("phase", info.phase)
      .kv("reason", reason);
  obs::save_postmortem(config.dir, info);
}

}  // namespace

namespace writer_detail {

int BinnedParticles::index_of(int partition) const {
  const auto it =
      std::lower_bound(partitions.begin(), partitions.end(), partition);
  if (it == partitions.end() || *it != partition) return -1;
  return static_cast<int>(it - partitions.begin());
}

BinnedParticles bin_particles(const ParticleBuffer& local,
                              const AggregationPlan& plan,
                              bool use_fast_path) {
  BinnedParticles out;
  if (local.empty()) return out;
  const std::size_t n = local.size();
  const std::size_t rs = local.record_size();
  const std::byte* base = local.bytes().data();
  const SpatialPartitioning& part = plan.partitioning();

  if (use_fast_path) {
    out.partitions.push_back(part.partition_of_point(local.position(0)));
    out.counts.push_back(n);
    out.payloads.emplace_back(local.bytes().begin(), local.bytes().end());
    return out;
  }

  // Pass 1: partition of every particle + histogram. Positions are read
  // straight off the AoS records (the schema pins position as field 0).
  // The concrete-grid branch trades the virtual binary search for the
  // inlined O(1) locator; both return identical indices.
  const auto nparts = static_cast<std::size_t>(plan.partition_count());
  std::vector<std::uint32_t> part_of(n);
  std::vector<std::uint64_t> hist(nparts, 0);
  if (const auto* grid = dynamic_cast<const AggregationGrid*>(&part)) {
    const HoistedLocator locate(*grid);
    for (std::size_t i = 0; i < n; ++i) {
      Vec3d pos;
      std::memcpy(&pos, base + i * rs, sizeof(Vec3d));
      const int p = locate(pos);
      part_of[i] = static_cast<std::uint32_t>(p);
      ++hist[static_cast<std::size_t>(p)];
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      Vec3d pos;
      std::memcpy(&pos, base + i * rs, sizeof(Vec3d));
      const int p = part.partition_of_point(pos);
      part_of[i] = static_cast<std::uint32_t>(p);
      ++hist[static_cast<std::size_t>(p)];
    }
  }

  // Bin directory: ascending partition ids, payload capacity reserved
  // exactly but *not* value-initialized — the scatter writes every byte,
  // and zero-filling tens of MB first would double the store traffic.
  std::vector<std::int32_t> bin_of(nparts, -1);
  for (std::size_t p = 0; p < nparts; ++p) {
    if (hist[p] == 0) continue;
    bin_of[p] = static_cast<std::int32_t>(out.partitions.size());
    out.partitions.push_back(static_cast<int>(p));
    out.counts.push_back(hist[p]);
    out.payloads.emplace_back();
    out.payloads.back().reserve(hist[p] * rs);
  }

  // Pass 2: contiguous scatter, one record append per particle (a memcpy
  // within reserved capacity). Scanning the input in order keeps original
  // particle order within each bin, so the file bytes match the
  // per-particle reference exactly.
  for (std::size_t i = 0; i < n; ++i) {
    auto& payload = out.payloads[static_cast<std::size_t>(bin_of[part_of[i]])];
    const std::byte* rec = base + i * rs;
    payload.insert(payload.end(), rec, rec + rs);
  }
  return out;
}

BinnedParticles bin_particles_reference(const ParticleBuffer& local,
                                        const AggregationPlan& plan,
                                        bool use_fast_path) {
  std::map<int, ParticleBuffer> bins;
  if (!local.empty()) {
    if (use_fast_path) {
      const int p = plan.partitioning().partition_of_point(local.position(0));
      ParticleBuffer bin(local.schema());
      bin.adopt_bytes(std::vector<std::byte>(local.bytes().begin(),
                                             local.bytes().end()));
      bins.emplace(p, std::move(bin));
    } else {
      for (std::size_t i = 0; i < local.size(); ++i) {
        const int p =
            plan.partitioning().partition_of_point(local.position(i));
        auto it = bins.find(p);
        if (it == bins.end())
          it = bins.emplace(p, ParticleBuffer(local.schema())).first;
        it->second.append_from(local, i);
      }
    }
  }
  BinnedParticles out;
  for (auto& [p, bin] : bins) {
    out.partitions.push_back(p);
    out.counts.push_back(bin.size());
    out.payloads.push_back(bin.take_bytes());
  }
  return out;
}

std::vector<FieldRange> compute_field_ranges(const ParticleBuffer& buf) {
  SPIO_EXPECTS(!buf.empty());
  const Schema& s = buf.schema();

  // Flattened component directory: byte offset within a record + type.
  struct Comp {
    std::size_t offset;
    bool f64;
  };
  std::vector<Comp> comps;
  for (std::size_t f = 0; f < s.field_count(); ++f) {
    const FieldDesc& fd = s.fields()[f];
    const std::size_t elem = field_type_size(fd.type);
    for (std::uint32_t c = 0; c < fd.components; ++c)
      comps.push_back({s.offset(f) + c * elem, fd.type == FieldType::kF64});
  }

  const std::byte* base = buf.bytes().data();
  const std::size_t rs = buf.record_size();
  const std::size_t n = buf.size();

  // Record-major: every record is touched once, all component ranges are
  // updated from it while it is in cache (vs. fields x components sweeps
  // over the whole AoS buffer).
  std::vector<FieldRange> ranges(comps.size());
  for (std::size_t c = 0; c < comps.size(); ++c) {
    const double v = load_component(base + comps[c].offset, comps[c].f64);
    ranges[c].min = ranges[c].max = v;
  }
  for (std::size_t i = 1; i < n; ++i) {
    const std::byte* rec = base + i * rs;
    for (std::size_t c = 0; c < comps.size(); ++c) {
      const double v = load_component(rec + comps[c].offset, comps[c].f64);
      ranges[c].min = std::min(ranges[c].min, v);
      ranges[c].max = std::max(ranges[c].max, v);
    }
  }
  return ranges;
}

}  // namespace writer_detail

WriteStats WriteStats::max_over(const WriteStats& a, const WriteStats& b) {
  WriteStats m;
  m.setup_seconds = std::max(a.setup_seconds, b.setup_seconds);
  m.meta_exchange_seconds =
      std::max(a.meta_exchange_seconds, b.meta_exchange_seconds);
  m.particle_exchange_seconds =
      std::max(a.particle_exchange_seconds, b.particle_exchange_seconds);
  m.reorder_seconds = std::max(a.reorder_seconds, b.reorder_seconds);
  m.file_io_seconds = std::max(a.file_io_seconds, b.file_io_seconds);
  m.metadata_io_seconds =
      std::max(a.metadata_io_seconds, b.metadata_io_seconds);
  m.particles_sent = a.particles_sent + b.particles_sent;
  m.bytes_sent = a.bytes_sent + b.bytes_sent;
  m.particles_written = a.particles_written + b.particles_written;
  m.bytes_written = a.bytes_written + b.bytes_written;
  m.files_written = a.files_written + b.files_written;
  m.partition_count = std::max(a.partition_count, b.partition_count);
  m.was_aggregator = a.was_aggregator || b.was_aggregator;
  m.used_aligned_fast_path =
      a.used_aligned_fast_path || b.used_aligned_fast_path;
  return m;
}

namespace {

/// The write pipeline proper. `stats` and `cur_phase` live in the caller
/// so the postmortem wrapper below can bundle the partial stats and the
/// phase the failing rank was in.
void write_dataset_impl(simmpi::Comm& comm, const PatchDecomposition& decomp,
                        const ParticleBuffer& local,
                        const WriterConfig& config, WriteStats& stats,
                        faultsim::WritePhase& cur_phase) {
  const int rank = comm.rank();

  // simmpi ranks are threads of one process, so every rank observes the
  // same collection state and agrees on the record-emission collectives
  // below without a broadcast.
  const bool record_run = config.run_record && obs::run_records_enabled();
  obs::ScopedSpan whole_span("write.dataset", "writer");
  obs::PhaseSpan phase("writer");

  // Rank 0 creates the dataset directory and opens the write journal
  // before anyone writes into it: from here until the metadata commit,
  // a crash leaves a journal that marks the directory incomplete.
  if (rank == 0) {
    std::error_code ec;
    std::filesystem::create_directories(config.dir, ec);
    SPIO_CHECK(!ec, IoError, "cannot create dataset directory '"
                                 << config.dir.string()
                                 << "': " << ec.message());
    if (config.journal) WriteJournal::begin(config.dir);
  }
  comm.barrier();
  // Fatal-signal black box: if the process dies mid-write, the installed
  // crash handler (when any) dumps the flight rings next to this dataset.
  obs::set_crash_dump_dir(config.dir);

  // Fault-injection plumbing: phase announcements (scripted rank death)
  // and the acknowledged exchange that recovers dropped, duplicated and
  // delayed messages. Without an injector both collapse to the plain
  // protocol.
  const auto enter_phase = [&](faultsim::WritePhase phase_id) {
    cur_phase = phase_id;
    obs::flight_record(obs::FlightType::kPhase,
                       faultsim::phase_name(phase_id).data());
    if (config.faults) config.faults->on_phase(rank, phase_id);
  };
  const auto exchange = [&](std::vector<faultsim::Outbound> out,
                            const std::vector<int>& expect, int tag) {
    if (config.faults) {
      return faultsim::reliable_exchange(comm, std::move(out), expect, tag,
                                         config.retry);
    }
    for (auto& o : out) comm.send_bytes(o.dst, tag, std::move(o.payload));
    std::vector<std::vector<std::byte>> in;
    in.reserve(expect.size());
    for (const int s : expect) in.push_back(comm.recv_message(s, tag).payload);
    return in;
  };
  enter_phase(faultsim::WritePhase::kSetup);

  // ---- step 1 + 2: aggregation grid setup and aggregator selection ----
  phase.begin("write.setup");
  auto t0 = Clock::now();
  const Box3 local_bounds = local.bounds();
  // The simulation contract is that particles lie within their owner's
  // patch; drifting particles (e.g. a checkpoint taken mid-advection)
  // break it. Detect spill collectively so every rank picks the same
  // plan construction.
  const bool my_spill =
      !local.empty() && !decomp.patch(rank).contains_box(local_bounds);
  AggregationPlan plan = [&] {
    if (config.adaptive || comm.allreduce(my_spill, simmpi::op::logical_or)) {
      // All-to-all exchange of tight extents + counts (§6); also used to
      // repair the communication sets when particles strayed.
      RankExtent mine{local_bounds, local.size()};
      const std::vector<RankExtent> extents = comm.allgather(mine);
      if (!config.adaptive) {
        return AggregationPlan::non_adaptive_with_extents(
            decomp, config.factor, config.placement, extents);
      }
      return config.adaptive_refine
                 ? AggregationPlan::adaptive_refined(
                       decomp, config.factor, config.placement, extents)
                 : AggregationPlan::adaptive(decomp, config.factor,
                                             config.placement, extents);
    }
    return AggregationPlan::non_adaptive(decomp, config.factor,
                                         config.placement);
  }();
  stats.partition_count = plan.partition_count();

  // The aligned fast path ships whole buffers without a per-particle
  // scan; it applies only when the plan is patch-aligned and this rank's
  // particles verifiably stayed home.
  const bool fast_path = plan.aligned() && !config.force_general_exchange &&
                         (local.empty() ||
                          decomp.patch(rank).contains_box(local_bounds));
  stats.used_aligned_fast_path = fast_path && !local.empty();
  stats.setup_seconds = seconds_since(t0);

  // ---- step 3: metadata exchange (counts) ----
  enter_phase(faultsim::WritePhase::kMetaExchange);
  phase.begin("write.meta_exchange");
  t0 = Clock::now();
  // On the aligned fast path the single bin is the whole local buffer;
  // materializing it is deferred until we know whether it must travel at
  // all (a self-aggregated buffer is never copied into a message).
  int fast_partition = -1;
  if (fast_path && !local.empty())
    fast_partition = plan.partitioning().partition_of_point(local.position(0));
  writer_detail::BinnedParticles bins;
  if (!fast_path) bins = writer_detail::bin_particles(local, plan, false);

  // A bin must never target a partition outside the plan's target set —
  // that aggregator would not expect our message.
  const auto check_target = [&](int p) {
    SPIO_CHECK(std::binary_search(plan.targets_of(rank).begin(),
                                  plan.targets_of(rank).end(), p),
               ConfigError,
               "rank " << rank << " holds particles for partition " << p
                       << " outside its plan target set; particles stray "
                          "outside the declared patch/extent");
  };
  if (fast_partition >= 0) check_target(fast_partition);
  for (const int p : bins.partitions) check_target(p);

  // Send a count to the aggregator of every partition we *might* feed
  // (the plan's conservative target set), so receivers can post a matching
  // number of receives without a handshake.
  std::vector<faultsim::Outbound> count_msgs;
  for (const int p : plan.targets_of(rank)) {
    std::uint64_t count = 0;
    if (p == fast_partition) {
      count = local.size();
    } else {
      const int b = bins.index_of(p);
      if (b >= 0) count = bins.counts[static_cast<std::size_t>(b)];
    }
    BinaryWriter w;
    w.write<std::uint64_t>(count);
    count_msgs.push_back({plan.aggregator_of(p), w.take()});
  }

  const int my_partition = plan.partition_owned_by(rank);
  const std::vector<int> count_senders =
      my_partition >= 0 ? plan.senders_of(my_partition) : std::vector<int>{};
  const auto count_payloads =
      exchange(std::move(count_msgs), count_senders, kTagMeta);

  std::vector<std::uint64_t> incoming_counts(count_senders.size());
  std::uint64_t incoming_total = 0;
  if (my_partition >= 0) {
    for (std::size_t i = 0; i < count_senders.size(); ++i) {
      BinaryReader r(count_payloads[i]);
      incoming_counts[i] = r.read<std::uint64_t>();
      SPIO_CHECK(r.remaining() == 0, FormatError,
                 "count message from rank " << count_senders[i]
                                            << " carries trailing bytes");
      incoming_total += incoming_counts[i];
    }
    // The metadata exchange is exactly what lets the aggregator size its
    // buffer *before* any data moves — so an infeasible aggregation can
    // be rejected here instead of running out of memory mid-exchange.
    const std::uint64_t need = incoming_total * local.record_size();
    SPIO_CHECK(config.max_aggregation_bytes == 0 ||
                   need <= config.max_aggregation_bytes,
               ConfigError,
               "aggregator " << rank << " (partition " << my_partition
                             << ") would need " << need
                             << " bytes, over the configured limit of "
                             << config.max_aggregation_bytes
                             << "; use a smaller partition factor");
  }
  stats.meta_exchange_seconds = seconds_since(t0);

  // ---- steps 4 + 5: allocate aggregation buffer, exchange particles ----
  enter_phase(faultsim::WritePhase::kParticleExchange);
  phase.begin("write.particle_exchange");
  t0 = Clock::now();
  // Self-send elision: a bin whose aggregator is this rank is spliced
  // into the aggregation buffer directly instead of looping through the
  // mailbox. Disabled under fault injection so scripted transport faults
  // keep addressing the same message sites as before.
  bool self_elided = false;
  std::span<const std::byte> self_bytes{};
  std::vector<std::byte> self_owned;  // keeps a general-path self bin alive

  std::vector<faultsim::Outbound> particle_msgs;
  if (fast_partition >= 0) {
    const int agg = plan.aggregator_of(fast_partition);
    if (agg == rank && !config.faults) {
      // The whole local buffer stays home: no copy, no message.
      self_elided = true;
      self_bytes = local.bytes();
    } else {
      if (agg != rank) {
        stats.particles_sent += local.size();
        stats.bytes_sent += local.byte_size();
      }
      particle_msgs.push_back({agg, std::vector<std::byte>(
                                        local.bytes().begin(),
                                        local.bytes().end())});
    }
  }
  for (std::size_t b = 0; b < bins.bin_count(); ++b) {
    const int agg = plan.aggregator_of(bins.partitions[b]);
    if (agg == rank && !config.faults) {
      self_elided = true;
      self_owned = std::move(bins.payloads[b]);
      self_bytes = self_owned;
      continue;
    }
    if (agg != rank) {
      stats.particles_sent += bins.counts[b];
      stats.bytes_sent += bins.payloads[b].size();
    }
    particle_msgs.push_back({agg, std::move(bins.payloads[b])});
  }

  // Only senders that announced a non-zero count actually ship data; an
  // elided self-send never enters the mailbox, so it is not expected.
  std::vector<int> particle_senders;
  for (std::size_t i = 0; i < count_senders.size(); ++i) {
    if (incoming_counts[i] == 0) continue;
    if (self_elided && count_senders[i] == rank) continue;
    particle_senders.push_back(count_senders[i]);
  }

  ParticleBuffer aggregated(local.schema());
  // Deterministic assembly order (ascending sender rank, the elided local
  // payload spliced at this rank's ordinal) makes the aggregated buffer —
  // and therefore the shuffled file — reproducible and byte-identical to
  // the pre-elision protocol.
  auto particle_payloads =
      exchange(std::move(particle_msgs), particle_senders, kTagData);
  if (particle_payloads.size() == 1 && !self_elided) {
    // Single remote contributor: adopt the payload, zero copies.
    aggregated.adopt_bytes(std::move(particle_payloads[0]));
  } else if (particle_payloads.empty() && self_elided &&
             !self_owned.empty()) {
    // Sole contributor is this rank's own general-path bin: adopt it.
    aggregated.adopt_bytes(std::move(self_owned));
  } else {
    aggregated.reserve(incoming_total);
    std::size_t next = 0;
    bool spliced = !self_elided;
    for (const int s : particle_senders) {
      if (!spliced && rank < s) {
        aggregated.append_bytes(self_bytes);
        spliced = true;
      }
      aggregated.append_bytes(particle_payloads[next++]);
    }
    if (!spliced) aggregated.append_bytes(self_bytes);
  }
  if (my_partition >= 0) {
    SPIO_CHECK(aggregated.size() == incoming_total, FormatError,
               "aggregator " << rank << " assembled " << aggregated.size()
                             << " particles but metadata promised "
                             << incoming_total);
  }
  stats.particle_exchange_seconds = seconds_since(t0);

  // ---- step 6: LOD re-ordering ----
  phase.begin("write.reorder");
  t0 = Clock::now();
  if (!aggregated.empty()) {
    lod_reorder(aggregated,
                stream_seed(config.shuffle_seed,
                            static_cast<std::uint64_t>(my_partition)),
                config.heuristic);
  }
  stats.reorder_seconds = seconds_since(t0);

  // ---- step 7: write the data file ----
  enter_phase(faultsim::WritePhase::kDataWrite);
  phase.begin("write.file_io");
  t0 = Clock::now();
  FileRecord my_record;
  std::uint64_t my_crc = 0;
  std::vector<FieldRange> my_zones;
  bool have_file = false;
  if (my_partition >= 0 && !aggregated.empty()) {
    my_record.partition_id = static_cast<std::uint32_t>(my_partition);
    my_record.aggregator_rank = static_cast<std::uint32_t>(rank);
    my_record.particle_count = aggregated.size();
    my_record.bounds = plan.partitioning().partition_box(my_partition);
    if (config.write_zone_maps) {
      // One pass produces both artifacts: the per-LOD-level zone table
      // and, as the union of its zones, the file-level field ranges.
      my_zones = compute_zone_maps(aggregated, config.lod);
      if (config.write_field_ranges) {
        std::size_t rcount = 0;
        for (const FieldDesc& fd : local.schema().fields())
          rcount += fd.components;
        my_record.field_ranges = zone_union(my_zones, rcount);
      }
    } else if (config.write_field_ranges) {
      my_record.field_ranges = writer_detail::compute_field_ranges(aggregated);
    }
    const auto path = config.dir / my_record.file_name();
    if (config.faults) {
      // Validated write: read back, compare checksums, rewrite torn or
      // corrupted attempts within a bounded budget.
      my_crc = faultsim::checked_write_file(path, aggregated.bytes(),
                                            config.faults, rank);
    } else if (config.write_checksums) {
      // The CRC streams alongside the write — one pass over the buffer
      // instead of a checksum scan followed by a write scan.
      my_crc = crc64_write_file(path, aggregated.bytes());
    } else {
      write_file(path, aggregated.bytes());
    }
    stats.particles_written = aggregated.size();
    stats.bytes_written = aggregated.byte_size();
    stats.files_written = 1;
    stats.was_aggregator = true;
    have_file = true;
  }
  stats.file_io_seconds = seconds_since(t0);

  // ---- step 8: gather bounds on rank 0, write the spatial metadata ----
  enter_phase(faultsim::WritePhase::kCommit);
  phase.begin("write.metadata_io");
  t0 = Clock::now();
  // Per-partition load balance (the paper's §6 adaptive-aggregation
  // motivation): rank 0 measures it at the commit point, where the
  // per-file particle counts are in hand.
  std::uint64_t lb_max = 0;
  double lb_mean = 0;
  double lb_imbalance = 0;
  BinaryWriter record_bytes;
  if (have_file) {
    my_record.serialize(record_bytes, config.write_spatial_metadata,
                        config.write_field_ranges);
    // The file checksum rides the gather wire format (it never enters the
    // frozen meta.spio layout; rank 0 splits it into checksums.spio).
    record_bytes.write<std::uint64_t>(my_crc);
    if (config.write_zone_maps) {
      // The zone table rides the same wire; rank 0 splits it into
      // zones.spio. Count first so the reader can size the blob.
      record_bytes.write<std::uint32_t>(
          zone_file_count(config.lod, my_record.particle_count));
      for (const FieldRange& z : my_zones) {
        record_bytes.write<double>(z.min);
        record_bytes.write<double>(z.max);
      }
    }
  }
  const auto gathered = comm.allgatherv<std::byte>(record_bytes.bytes());
  if (rank == 0) {
    DatasetMetadata meta;
    meta.schema = local.schema();
    meta.domain = decomp.domain();
    meta.lod = config.lod;
    meta.heuristic = config.heuristic;
    meta.has_bounds = config.write_spatial_metadata;
    meta.has_field_ranges = config.write_field_ranges;
    std::vector<ChecksumTable::Entry> crcs;
    ZoneMapTable zone_table;
    zone_table.range_count = meta.range_count();
    zone_table.lod = config.lod;
    for (const auto& from_rank : gathered) {
      if (from_rank.empty()) continue;
      BinaryReader r(from_rank);
      const FileRecord f = FileRecord::deserialize(
          r, meta.has_bounds, meta.has_field_ranges, meta.range_count());
      crcs.push_back({f.aggregator_rank, r.read<std::uint64_t>()});
      if (config.write_zone_maps) {
        FileZones fz;
        fz.aggregator_rank = f.aggregator_rank;
        fz.particle_count = f.particle_count;
        const auto nz = r.read<std::uint32_t>();
        fz.zones.resize(std::size_t{nz} * meta.range_count());
        for (FieldRange& z : fz.zones) {
          z.min = r.read<double>();
          z.max = r.read<double>();
        }
        zone_table.files.push_back(std::move(fz));
      }
      meta.total_particles += f.particle_count;
      meta.files.push_back(f);
    }
    std::sort(meta.files.begin(), meta.files.end(),
              [](const FileRecord& a, const FileRecord& b) {
                return a.partition_id < b.partition_id;
              });
    if (!meta.files.empty()) {
      std::uint64_t sum = 0;
      for (const FileRecord& f : meta.files) {
        lb_max = std::max(lb_max, f.particle_count);
        sum += f.particle_count;
      }
      lb_mean = static_cast<double>(sum) /
                static_cast<double>(meta.files.size());
      lb_imbalance =
          lb_mean > 0 ? static_cast<double>(lb_max) / lb_mean : 0.0;
      if (obs::enabled()) {
        auto& reg = obs::MetricsRegistry::global();
        reg.gauge("write.partition_particles_max")
            .set(static_cast<double>(lb_max));
        reg.gauge("write.partition_particles_mean").set(lb_mean);
        reg.gauge("write.partition_imbalance").set(lb_imbalance);
      }
    }
    if (config.write_checksums) {
      std::sort(crcs.begin(), crcs.end(),
                [](const ChecksumTable::Entry& a,
                   const ChecksumTable::Entry& b) {
                  return a.aggregator_rank < b.aggregator_rank;
                });
      ChecksumTable table;
      table.entries = std::move(crcs);
      table.save(config.dir);
    }
    meta.has_zone_maps = config.write_zone_maps && !meta.files.empty();
    if (meta.has_zone_maps) {
      std::sort(zone_table.files.begin(), zone_table.files.end(),
                [](const FileZones& a, const FileZones& b) {
                  return a.aggregator_rank < b.aggregator_rank;
                });
      // Like checksums.spio: the sidecar lands before the commit point,
      // so a metadata file never vouches for a zone table that a crash
      // kept from reaching the disk.
      if (config.faults) {
        // Under fault injection the sidecar takes the same validated
        // write as the data files, so torn/corrupt-write schedules can
        // target `zones.spio` too.
        faultsim::checked_write_file(config.dir / ZoneMapTable::kFileName,
                                     zone_table.serialize(), config.faults,
                                     rank);
      } else {
        zone_table.save(config.dir);
      }
    }
    // meta.spio is the commit point; the journal closes only after it.
    meta.save(config.dir);
    if (config.journal) WriteJournal::commit(config.dir);
    obs::log::Event(obs::log::Level::kInfo, "write.commit")
        .kv("dir", config.dir.string())
        .kv("particles", meta.total_particles)
        .kv("files", static_cast<std::uint64_t>(meta.files.size()))
        .kv("imbalance", lb_imbalance);
  }
  // The write is complete (data + metadata) only once every rank returns.
  comm.barrier();
  stats.metadata_io_seconds = seconds_since(t0);
  phase.end();
  whole_span.end();
  publish_write_stats(stats);

  if (record_run) {
    // Gather every rank's stats so rank 0 can lay down the Darshan-style
    // run record next to the dataset. All ranks take the same branch (see
    // record_run above), so the extra collective is uniform.
    static_assert(std::is_trivially_copyable_v<WriteStats>);
    const std::vector<WriteStats> all = comm.gather<WriteStats>(stats, 0);
    if (rank == 0) {
      obs::WriteRunInfo info;
      info.ranks = comm.size();
      info.schema_bytes = local.record_size();
      info.partition_count = stats.partition_count;
      info.config = config_echo(config);
      for (int r = 0; r < comm.size(); ++r) {
        const WriteStats& s = all[static_cast<std::size_t>(r)];
        info.phases.push_back({r, s.setup_seconds, s.meta_exchange_seconds,
                               s.particle_exchange_seconds, s.reorder_seconds,
                               s.file_io_seconds, s.metadata_io_seconds});
        info.totals.particles_sent += s.particles_sent;
        info.totals.bytes_sent += s.bytes_sent;
        info.totals.particles_written += s.particles_written;
        info.totals.bytes_written += s.bytes_written;
        info.totals.files_written +=
            static_cast<std::uint64_t>(s.files_written);
      }
      info.load_balance.partition_particles_max = lb_max;
      info.load_balance.partition_particles_mean = lb_mean;
      info.load_balance.imbalance = lb_imbalance;
      obs::save_write_record(config.dir, info,
                             obs::MetricsRegistry::global().snapshot());
    }
  }
}

}  // namespace

WriteStats write_dataset(simmpi::Comm& comm, const PatchDecomposition& decomp,
                         const ParticleBuffer& local,
                         const WriterConfig& config) {
  SPIO_CHECK(!config.dir.empty(), ConfigError,
             "WriterConfig.dir must be set");
  SPIO_CHECK(config.factor.valid(), ConfigError,
             "invalid partition factor " << config.factor.to_string());
  SPIO_CHECK(config.lod.valid(), ConfigError,
             "invalid LOD parameters P=" << config.lod.P
                                         << " S=" << config.lod.S);
  SPIO_CHECK(comm.size() == decomp.rank_count(), ConfigError,
             "decomposition has " << decomp.rank_count()
                                  << " patches for a job of " << comm.size()
                                  << " ranks");

  WriteStats stats;
  faultsim::WritePhase cur_phase = faultsim::WritePhase::kSetup;
  try {
    write_dataset_impl(comm, decomp, local, config, stats, cur_phase);
    return stats;
  } catch (const simmpi::Aborted&) {
    // Secondary casualty of another rank's failure: that rank owns the
    // postmortem; dumping here would overwrite it with less context.
    throw;
  } catch (const std::exception& e) {
    // A failure before rank 0 created the directory has nowhere to dump.
    std::error_code ec;
    if (std::filesystem::is_directory(config.dir, ec))
      dump_write_postmortem(config, stats, comm.size(), comm.rank(),
                            cur_phase, e.what());
    throw;
  }
}

}  // namespace spio
