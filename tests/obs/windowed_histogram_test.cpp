/// \file windowed_histogram_test.cpp
/// WindowedHistogram correctness: bucket math round trips, quantile
/// estimates stay within the log-linear layout's guaranteed band of an
/// exact sort-the-samples oracle (across distributions and window
/// rotations), empty windows answer zero, rotation ages samples out
/// after `kWindows` epochs without ever touching the cumulative totals
/// (the differential pin against the log2 `Histogram`), and a
/// rotate-vs-observe race keeps the cumulative tallies exact.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/windowed_histogram.hpp"

namespace spio {
namespace {

using obs::WindowedHistogram;

/// The layout guarantee under test: the estimate is the upper bound of
/// the exact value's bucket, so `exact <= est <= exact + exact/8 + 1`.
void expect_within_band(std::uint64_t est, std::uint64_t exact,
                        const char* what) {
  EXPECT_GE(est, exact) << what << ": quantile under-reports";
  EXPECT_LE(est, exact + exact / WindowedHistogram::kSubBuckets + 1)
      << what << ": quantile overshoots its bucket band";
}

std::uint64_t exact_quantile(std::vector<std::uint64_t> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t rank = std::min<std::uint64_t>(
      sorted.size() - 1,
      static_cast<std::uint64_t>(q * static_cast<double>(sorted.size())));
  return sorted[static_cast<std::size_t>(rank)];
}

TEST(WindowedHistogram, BucketMathRoundTrips) {
  for (std::size_t idx = 0; idx < WindowedHistogram::kBuckets; ++idx) {
    const std::uint64_t lower = WindowedHistogram::bucket_lower(idx);
    const std::uint64_t upper = WindowedHistogram::bucket_upper(idx);
    ASSERT_LE(lower, upper) << "bucket " << idx;
    EXPECT_EQ(WindowedHistogram::bucket_index(lower), idx);
    EXPECT_EQ(WindowedHistogram::bucket_index(upper), idx);
    if (idx > 0) {
      EXPECT_EQ(WindowedHistogram::bucket_lower(idx),
                WindowedHistogram::bucket_upper(idx - 1) + 1)
          << "gap/overlap between buckets " << idx - 1 << " and " << idx;
    }
  }
  // Extremes: zero is exact, u64-max lands in the last bucket.
  EXPECT_EQ(WindowedHistogram::bucket_index(0), 0u);
  EXPECT_EQ(WindowedHistogram::bucket_index(~std::uint64_t{0}),
            WindowedHistogram::kBuckets - 1);
  EXPECT_EQ(WindowedHistogram::bucket_upper(WindowedHistogram::kBuckets - 1),
            ~std::uint64_t{0});
}

TEST(WindowedHistogram, SmallValuesAreExact) {
  WindowedHistogram h;
  for (std::uint64_t v = 0; v < WindowedHistogram::kSubBuckets; ++v)
    h.observe(v);
  // Every value 0..7 has its own bucket, so quantiles are exact.
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 4u);
  EXPECT_EQ(h.quantile(0.99), 7u);
}

TEST(WindowedHistogram, QuantilesTrackSortOracleAcrossDistributions) {
  std::mt19937_64 rng(20260808);
  struct Dist {
    const char* name;
    std::function<std::uint64_t()> draw;
  };
  const std::vector<Dist> dists{
      {"uniform-small",
       [&] { return std::uniform_int_distribution<std::uint64_t>(0, 500)(rng); }},
      {"uniform-latency-us",
       [&] {
         return std::uniform_int_distribution<std::uint64_t>(50, 2'000'000)(
             rng);
       }},
      {"log-uniform",
       [&] {
         const int shift =
             std::uniform_int_distribution<int>(0, 50)(rng);
         return std::uniform_int_distribution<std::uint64_t>(0, 255)(rng)
                << shift;
       }},
      {"heavy-tail",
       [&] {
         // Mostly fast, occasionally 1000x: the shape that makes p99
         // interesting.
         const bool slow =
             std::uniform_int_distribution<int>(0, 99)(rng) < 2;
         return std::uniform_int_distribution<std::uint64_t>(
             slow ? 1'000'000 : 100, slow ? 5'000'000 : 3'000)(rng);
       }},
  };
  for (const Dist& d : dists) {
    WindowedHistogram h;
    std::vector<std::uint64_t> samples(10'000);
    for (auto& v : samples) {
      v = d.draw();
      h.observe(v);
    }
    for (const double q : {0.0, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
      expect_within_band(h.quantile(q), exact_quantile(samples, q), d.name);
    }
    const auto m = h.merged();
    EXPECT_EQ(m.count, samples.size()) << d.name;
    expect_within_band(m.p50, exact_quantile(samples, 0.50), d.name);
    expect_within_band(m.p95, exact_quantile(samples, 0.95), d.name);
    expect_within_band(m.p99, exact_quantile(samples, 0.99), d.name);
  }
}

TEST(WindowedHistogram, QuantilesSpanRotatedSubWindows) {
  // Samples spread across several epochs still merge into one oracle-
  // consistent window, as long as fewer than kWindows rotations passed.
  std::mt19937_64 rng(7);
  WindowedHistogram h;
  std::vector<std::uint64_t> samples;
  for (std::size_t epoch = 0; epoch + 1 < WindowedHistogram::kWindows;
       ++epoch) {
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t v =
          std::uniform_int_distribution<std::uint64_t>(0, 100'000)(rng);
      samples.push_back(v);
      h.observe(v);
    }
    h.rotate();
  }
  const auto m = h.merged();
  EXPECT_EQ(m.count, samples.size());
  expect_within_band(m.p50, exact_quantile(samples, 0.50), "rotated");
  expect_within_band(m.p99, exact_quantile(samples, 0.99), "rotated");
}

TEST(WindowedHistogram, EmptyWindowAnswersZero) {
  WindowedHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
  const auto m = h.merged();
  EXPECT_EQ(m.count, 0u);
  EXPECT_EQ(m.sum, 0u);
  EXPECT_EQ(m.p50, 0u);
  EXPECT_EQ(m.p99, 0u);
  // A window that saw traffic and then aged fully out is empty again.
  for (int i = 0; i < 100; ++i) h.observe(1234);
  for (std::size_t r = 0; r < WindowedHistogram::kWindows; ++r) h.rotate();
  EXPECT_EQ(h.merged().count, 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
}

TEST(WindowedHistogram, RotationAgesOutOldestEpochOnly) {
  WindowedHistogram h;
  for (int i = 0; i < 100; ++i) h.observe(10);
  h.rotate();
  for (int i = 0; i < 50; ++i) h.observe(1'000'000);
  // Both epochs are live: the merge sees every sample.
  EXPECT_EQ(h.merged().count, 150u);
  // Age the first epoch out (kWindows - 1 more rotations bring the ring
  // back around to its window); the second epoch follows one tick later.
  for (std::size_t r = 1; r < WindowedHistogram::kWindows; ++r) h.rotate();
  EXPECT_EQ(h.merged().count, 50u);
  expect_within_band(h.quantile(0.5), 1'000'000, "survivor epoch");
  h.rotate();
  EXPECT_EQ(h.merged().count, 0u);
}

TEST(WindowedHistogram, CumulativeTotalsMatchLog2HistogramOracle) {
  // The differential pin: rotation must never touch the cumulative
  // tallies, which stay equal to a log2 Histogram fed the same stream.
  std::mt19937_64 rng(99);
  WindowedHistogram w;
  obs::Histogram cumulative;
  std::uint64_t expected_sum = 0;
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (int i = 0; i < 777; ++i) {
      const std::uint64_t v =
          std::uniform_int_distribution<std::uint64_t>(0, 1'000'000'000)(rng);
      w.observe(v);
      cumulative.observe(v);
      expected_sum += v;
    }
    w.rotate();
  }
  EXPECT_EQ(w.total_count(), cumulative.count());
  EXPECT_EQ(w.total_sum(), cumulative.sum());
  EXPECT_EQ(w.total_sum(), expected_sum);
  // The merged window, by contrast, only covers the live epochs.
  EXPECT_LT(w.merged().count, w.total_count());
}

TEST(WindowedHistogram, ConcurrentObserveWithRotationKeepsTotalsExact) {
  // observe() may race rotate() (the exporter thread); the documented
  // slop is merged-window attribution only — cumulative totals must not
  // lose a single count. Also the TSan workout for the lock-free path.
  WindowedHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(static_cast<std::uint64_t>(t * 1000 + (i & 1023)));
    });
  for (int r = 0; r < 100; ++r) {
    h.rotate();
    (void)h.merged();  // concurrent reader
    std::this_thread::yield();
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.total_count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(WindowedHistogram, ResetZeroesEverything) {
  WindowedHistogram h;
  for (int i = 0; i < 100; ++i) h.observe(42);
  h.rotate();
  for (int i = 0; i < 100; ++i) h.observe(43);
  h.reset();
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.total_sum(), 0u);
  EXPECT_EQ(h.merged().count, 0u);
}

TEST(WindowedHistogram, RegistryRegistersRotatesAndSnapshots) {
  auto& reg = obs::MetricsRegistry::global();
  auto& h = reg.windowed("test.windowed_probe_us");
  EXPECT_EQ(&h, &reg.windowed("test.windowed_probe_us"))
      << "same name must return the same object";
  h.reset();
  for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
  const auto snap = reg.snapshot();
  const auto it = snap.windows.find("test.windowed_probe_us");
  ASSERT_NE(it, snap.windows.end());
  EXPECT_EQ(it->second.count, 1000u);
  EXPECT_EQ(it->second.total_count, 1000u);
  expect_within_band(it->second.p50, 500, "registry snapshot");
  // rotate_windows() ages registry-held histograms like any other.
  for (std::size_t r = 0; r < obs::WindowedHistogram::kWindows; ++r)
    reg.rotate_windows();
  EXPECT_EQ(reg.snapshot().windows.at("test.windowed_probe_us").count, 0u);
  EXPECT_EQ(
      reg.snapshot().windows.at("test.windowed_probe_us").total_count,
      1000u);
  h.reset();
}

TEST(WindowedHistogram, GaugeSetMaxKeepsHighWater) {
  obs::Gauge g;
  g.set_max(3.0);
  g.set_max(10.0);
  g.set_max(7.0);
  EXPECT_EQ(g.value(), 10.0);
  g.set(2.0);  // plain set still overwrites (the exporter's window reset)
  EXPECT_EQ(g.value(), 2.0);
  g.set_max(5.0);
  EXPECT_EQ(g.value(), 5.0);
}

}  // namespace
}  // namespace spio
