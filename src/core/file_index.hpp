#pragma once

/// \file file_index.hpp
/// In-memory spatial index over the metadata's file bounding boxes. The
/// paper's datasets reach 64K files (the (1,1,1) configuration at 64K
/// ranks); a linear scan per query is fine for thousands of files but
/// not for an interactive viewer issuing queries per frame. The index
/// bins file ids into a coarse uniform grid sized to ~cbrt(F) cells per
/// axis, so a box query touches only the cells it overlaps.

#include <vector>

#include "core/metadata.hpp"
#include "util/box.hpp"

namespace spio {

class FileIndex {
 public:
  /// Build over `meta.files` (requires `meta.has_bounds`). O(F) build.
  explicit FileIndex(const DatasetMetadata& meta);

  /// Indices of files whose bounds intersect `box` — identical to
  /// `DatasetMetadata::files_intersecting`, ascending order.
  std::vector<int> query(const Box3& box) const;

  const Vec3i& dims() const { return dims_; }

 private:
  /// Cell coordinate range [lo, hi] overlapped by a box (clamped).
  void cell_range(const Box3& box, Vec3i* lo, Vec3i* hi) const;

  Box3 domain_;
  Vec3i dims_{1, 1, 1};
  std::vector<std::vector<std::int32_t>> cells_;  // file ids per cell
  std::vector<Box3> boxes_;                       // file bounds by id
  int file_count_ = 0;
};

}  // namespace spio
