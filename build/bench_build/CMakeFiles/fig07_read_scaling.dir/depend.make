# Empty dependencies file for fig07_read_scaling.
# This may be replaced when dependencies are built.
