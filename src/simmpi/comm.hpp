#pragma once

/// \file comm.hpp
/// The communicator: tagged point-to-point messaging, non-blocking
/// requests, and collectives. Each rank thread owns a `Comm` *handle*; all
/// handles of one communicator share a `CommState`.
///
/// MPI correspondence (for porting spio to real MPI):
///   send / recv            -> MPI_Send / MPI_Recv
///   isend / irecv          -> MPI_Isend / MPI_Irecv
///   wait_all               -> MPI_Waitall
///   iprobe                 -> MPI_Iprobe (+ MPI_Get_count)
///   barrier                -> MPI_Barrier
///   bcast                  -> MPI_Bcast
///   gather / allgather     -> MPI_Gather / MPI_Allgather
///   allgatherv             -> MPI_Allgatherv
///   reduce / allreduce     -> MPI_Reduce / MPI_Allreduce
///   exscan                 -> MPI_Exscan
///   alltoall / alltoallv   -> MPI_Alltoall / MPI_Alltoallv
///   split                  -> MPI_Comm_split

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "simmpi/collective_arena.hpp"
#include "simmpi/hooks.hpp"
#include "simmpi/mailbox.hpp"
#include "simmpi/message.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace simmpi {

class Comm;

namespace detail {

/// A message held back by a `SendAction::kDelay` verdict, waiting for the
/// sender's next delivery opportunity.
struct DelayedMessage {
  int dst = 0;
  Message msg;
};

/// State shared by all rank handles of one communicator.
struct CommState {
  CommState(int size, std::shared_ptr<std::atomic<bool>> abort_flag);

  int size;
  std::shared_ptr<std::atomic<bool>> abort;
  std::vector<Mailbox> mailboxes;
  CollectiveArena arena;

  /// Transport interposition (fault injection); null in production. Set
  /// once before any rank runs; sub-communicators inherit it on split.
  CommHooks* hooks = nullptr;

  /// Per-sender stash of delayed messages. Slot `r` is touched only by
  /// rank r's thread, so no lock is needed.
  std::vector<std::vector<DelayedMessage>> delayed;

  /// Point-to-point traffic accounting: bytes/messages sent from rank s
  /// to rank d at index s * size + d. Collectives do not appear here
  /// (they move through the arena), so this is exactly the data-plane
  /// traffic — used by tests to verify communication-locality claims.
  std::vector<std::atomic<std::uint64_t>> p2p_bytes;
  std::vector<std::atomic<std::uint64_t>> p2p_msgs;

  // Rendezvous area for split(): the leader of each new group publishes the
  // child state here, keyed by (parent collective round, color).
  std::mutex split_mu;
  std::condition_variable split_cv;
  struct SplitEntry {
    std::shared_ptr<CommState> child;
    int fetches_left = 0;
  };
  std::map<std::pair<std::uint64_t, int>, SplitEntry> split_children;

  void interrupt_all();
};

}  // namespace detail

/// A non-blocking operation handle. `wait()` completes the operation; for
/// receives this blocks until the matching message arrives and fills the
/// caller's buffer (which must stay alive until then, as in MPI).
class Request {
 public:
  Request() = default;

  /// True once wait() has run (or the request was born complete).
  bool done() const { return !pending_; }

  /// Complete the operation. Idempotent.
  void wait() {
    if (pending_) {
      auto fn = std::move(pending_);
      pending_ = nullptr;
      fn();
    }
  }

  /// Complete a batch of requests (MPI_Waitall).
  static void wait_all(std::span<Request> reqs) {
    for (auto& r : reqs) r.wait();
  }

 private:
  friend class Comm;
  explicit Request(std::function<void()> fn) : pending_(std::move(fn)) {}

  std::function<void()> pending_;
};

/// Per-rank communicator handle. Cheap to copy within the owning rank
/// thread; do not share one handle across threads (each rank has its own).
class Comm {
 public:
  Comm(std::shared_ptr<detail::CommState> state, int rank)
      : st_(std::move(state)), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return st_->size; }

  /// True once the job's abort flag is raised (another rank failed).
  /// Polling loops outside the runtime's blocking calls (e.g. retry
  /// protocols) must check this and throw `Aborted` to preserve the
  /// no-deadlock guarantee on rank death.
  bool aborting() const {
    return st_->abort->load(std::memory_order_relaxed);
  }

  // ---- point-to-point, bytes ----

  /// Buffered send: the payload is moved into the destination mailbox and
  /// the call returns immediately (simmpi's transport is shared memory, so
  /// every send behaves like MPI_Bsend).
  void send_bytes(int dst, int tag, std::vector<std::byte> payload);

  /// Blocking receive of one message matching (src, tag); wildcards allowed.
  Message recv_message(int src, int tag);

  // ---- point-to-point, typed ----

  /// Send a contiguous range of trivially-copyable elements.
  template <typename T>
  void send(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::byte*>(data.data());
    send_bytes(dst, tag, std::vector<std::byte>(p, p + data.size_bytes()));
  }

  /// Send a single trivially-copyable value.
  template <typename T>
  void send_value(int dst, int tag, const T& v) {
    send<T>(dst, tag, std::span<const T>(&v, 1));
  }

  /// Receive a vector of T; the element count is derived from the payload
  /// size (which must be a multiple of sizeof(T)).
  template <typename T>
  std::vector<T> recv(int src, int tag, int* actual_src = nullptr) {
    Message m = recv_message(src, tag);
    if (actual_src) *actual_src = m.src;
    return bytes_to_vector<T>(m.payload);
  }

  /// Receive exactly one value of T.
  template <typename T>
  T recv_value(int src, int tag, int* actual_src = nullptr) {
    auto v = recv<T>(src, tag, actual_src);
    SPIO_CHECK(v.size() == 1, spio::FormatError,
               "recv_value: expected 1 element, got " << v.size());
    return v.front();
  }

  // ---- non-blocking ----

  /// Non-blocking send. Completes immediately (buffered transport); the
  /// returned request exists so call sites mirror MPI structure.
  template <typename T>
  Request isend(int dst, int tag, std::span<const T> data) {
    send<T>(dst, tag, data);
    return Request();
  }

  Request isend_bytes(int dst, int tag, std::vector<std::byte> payload) {
    send_bytes(dst, tag, std::move(payload));
    return Request();
  }

  /// Non-blocking receive into `out`; `out` must outlive wait().
  template <typename T>
  Request irecv(std::vector<T>& out, int src, int tag) {
    auto* state = st_.get();
    const int r = rank_;
    return Request([state, r, src, tag, &out] {
      Message m = state->mailboxes[static_cast<std::size_t>(r)].receive(
          src, tag, *state->abort);
      out = bytes_to_vector<T>(m.payload);
    });
  }

  /// Non-blocking probe for a matching message.
  bool iprobe(int src, int tag, int* out_src = nullptr,
              std::size_t* out_bytes = nullptr);

  // ---- collectives (must be called by all ranks in the same order) ----

  void barrier();

  /// Broadcast `value` from `root`; every rank returns root's value.
  template <typename T>
  T bcast(const T& value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_rank(root);
    std::vector<std::byte> contrib;
    if (rank_ == root) contrib = to_bytes(value);
    T result{};
    collective(std::move(contrib), [&](const auto& all) {
      result = from_bytes<T>(all[static_cast<std::size_t>(root)]);
    });
    return result;
  }

  /// Gather one value per rank to `root`. Returns the rank-indexed vector
  /// at root and an empty vector elsewhere.
  template <typename T>
  std::vector<T> gather(const T& value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_rank(root);
    std::vector<T> result;
    collective(to_bytes(value), [&](const auto& all) {
      if (rank_ != root) return;
      result.reserve(all.size());
      for (const auto& c : all) result.push_back(from_bytes<T>(c));
    });
    return result;
  }

  /// Gather one value per rank to every rank.
  template <typename T>
  std::vector<T> allgather(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> result;
    collective(to_bytes(value), [&](const auto& all) {
      result.reserve(all.size());
      for (const auto& c : all) result.push_back(from_bytes<T>(c));
    });
    return result;
  }

  /// Gather a variable-length span per rank to every rank; result is
  /// indexed by source rank.
  template <typename T>
  std::vector<std::vector<T>> allgatherv(std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::byte*>(data.data());
    std::vector<std::vector<T>> result;
    collective(std::vector<std::byte>(p, p + data.size_bytes()),
               [&](const auto& all) {
                 result.reserve(all.size());
                 for (const auto& c : all)
                   result.push_back(bytes_to_vector<T>(c));
               });
    return result;
  }

  /// Gather a variable-length span per rank to `root`; the rank-indexed
  /// table at root, empty vectors elsewhere.
  template <typename T>
  std::vector<std::vector<T>> gatherv(std::span<const T> data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_rank(root);
    const auto* p = reinterpret_cast<const std::byte*>(data.data());
    std::vector<std::vector<T>> result;
    collective(std::vector<std::byte>(p, p + data.size_bytes()),
               [&](const auto& all) {
                 if (rank_ != root) return;
                 result.reserve(all.size());
                 for (const auto& c : all)
                   result.push_back(bytes_to_vector<T>(c));
               });
    return result;
  }

  /// Inclusive prefix reduction: rank r receives op over ranks [0, r].
  template <typename T, typename BinOp>
  T scan(const T& value, BinOp op) {
    static_assert(std::is_trivially_copyable_v<T>);
    T result{};
    collective(to_bytes(value), [&](const auto& all) {
      result = from_bytes<T>(all[0]);
      for (int i = 1; i <= rank_; ++i)
        result = op(result, from_bytes<T>(all[static_cast<std::size_t>(i)]));
    });
    return result;
  }

  /// Reduce with a binary operation, deterministic rank order 0..n-1.
  /// Returns the reduction on every rank.
  template <typename T, typename BinOp>
  T allreduce(const T& value, BinOp op) {
    static_assert(std::is_trivially_copyable_v<T>);
    T result{};
    collective(to_bytes(value), [&](const auto& all) {
      result = from_bytes<T>(all[0]);
      for (std::size_t i = 1; i < all.size(); ++i)
        result = op(result, from_bytes<T>(all[i]));
    });
    return result;
  }

  /// Reduce to root only; other ranks receive a value-initialized T.
  template <typename T, typename BinOp>
  T reduce(const T& value, BinOp op, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_rank(root);
    T result{};
    collective(to_bytes(value), [&](const auto& all) {
      if (rank_ != root) return;
      result = from_bytes<T>(all[0]);
      for (std::size_t i = 1; i < all.size(); ++i)
        result = op(result, from_bytes<T>(all[i]));
    });
    return result;
  }

  /// Exclusive prefix reduction: rank r receives op over ranks [0, r),
  /// and `identity` on rank 0.
  template <typename T, typename BinOp>
  T exscan(const T& value, BinOp op, const T& identity) {
    static_assert(std::is_trivially_copyable_v<T>);
    T result = identity;
    collective(to_bytes(value), [&](const auto& all) {
      for (int i = 0; i < rank_; ++i)
        result = op(result, from_bytes<T>(all[static_cast<std::size_t>(i)]));
    });
    return result;
  }

  /// Personalized all-to-all of variable-length typed buffers.
  /// `send_to[d]` is this rank's data for rank d (size() entries); returns
  /// `recv_from[s]`, the data rank s sent to this rank.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& send_to) {
    static_assert(std::is_trivially_copyable_v<T>);
    SPIO_EXPECTS(static_cast<int>(send_to.size()) == size());
    // Contribution layout: per destination, u64 byte count, then payloads.
    spio::BinaryWriter w;
    for (const auto& v : send_to) {
      w.write<std::uint64_t>(v.size() * sizeof(T));
    }
    for (const auto& v : send_to) {
      w.write_span<T>(std::span<const T>(v.data(), v.size()));
    }
    std::vector<std::vector<T>> result(static_cast<std::size_t>(size()));
    collective(w.take(), [&](const auto& all) {
      for (std::size_t src = 0; src < all.size(); ++src) {
        spio::BinaryReader r(all[src]);
        std::vector<std::uint64_t> counts(static_cast<std::size_t>(size()));
        std::uint64_t before = 0;
        for (int d = 0; d < size(); ++d) {
          counts[static_cast<std::size_t>(d)] = r.read<std::uint64_t>();
          if (d < rank_) before += counts[static_cast<std::size_t>(d)];
        }
        const std::uint64_t mine = counts[static_cast<std::size_t>(rank_)];
        // Skip to this rank's slice.
        r.read_span<std::byte>(static_cast<std::size_t>(before));
        result[src] =
            r.read_span<T>(static_cast<std::size_t>(mine / sizeof(T)));
      }
    });
    return result;
  }

  /// Split into disjoint sub-communicators by `color`; ranks within a new
  /// communicator are ordered by (key, parent rank). Collective.
  Comm split(int color, int key);

  // ---- traffic accounting (testing/diagnostics) ----

  /// Bytes this communicator has moved point-to-point from `src` to
  /// `dst` so far. Not a collective; reads a racy-but-monotonic counter
  /// (exact once the senders have quiesced, e.g. after a barrier).
  std::uint64_t bytes_sent(int src, int dst) const;

  /// Ranks `src` has sent at least one point-to-point byte or message to.
  std::vector<int> destinations_of(int src) const;

 private:
  template <typename T>
  static std::vector<std::byte> to_bytes(const T& v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    return std::vector<std::byte>(p, p + sizeof(T));
  }

  template <typename T>
  static T from_bytes(const std::vector<std::byte>& b) {
    SPIO_CHECK(b.size() == sizeof(T), spio::FormatError,
               "collective payload size mismatch: " << b.size() << " vs "
                                                    << sizeof(T));
    T v;
    std::memcpy(&v, b.data(), sizeof(T));
    return v;
  }

  template <typename T>
  static std::vector<T> bytes_to_vector(const std::vector<std::byte>& b) {
    SPIO_CHECK(b.size() % sizeof(T) == 0, spio::FormatError,
               "payload size " << b.size() << " not a multiple of element size "
                               << sizeof(T));
    std::vector<T> out(b.size() / sizeof(T));
    std::memcpy(out.data(), b.data(), b.size());
    return out;
  }

  void check_rank(int r) const {
    SPIO_EXPECTS(r >= 0 && r < size());
  }

  /// Run one arena round with this rank's contribution.
  void collective(std::vector<std::byte> contribution,
                  const CollectiveArena::Reader& reader);

  /// Hand a message to the destination mailbox (post-hook delivery).
  void deliver(int dst, Message&& m);

  /// Deliver every message this rank has stashed under a delay verdict.
  /// Called after each later delivery and at collective entry, so delayed
  /// messages arrive out of order but are never lost.
  void flush_delayed();

  std::shared_ptr<detail::CommState> st_;
  int rank_ = 0;
  std::uint64_t round_ = 0;  // per-rank collective round counter
};

}  // namespace simmpi
