/// \file obs_overhead_test.cpp
/// Perf floor (ctest label `perf`) for the observability subsystem's
/// disabled path: an instrumentation site that is off must cost about
/// one relaxed atomic load — nanoseconds, not microseconds — so spans
/// can live on hot paths (per-message transport, per-file reads) without
/// a recompile-time switch. The bar is generous for loaded CI boxes;
/// a regression here means someone put work ahead of the enabled() gate.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace spio {
namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double best_seconds(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) best = std::min(best, seconds_of(fn));
  return best;
}

TEST(ObsOverhead, DisabledSpansAreNanosecondCheap) {
  obs::disable();
  obs::Tracer::instance().clear();
  obs::FlightRecorder::instance().clear();
  // The floor is measured with the black box LIVE: a disabled span still
  // feeds the always-on flight recorder (two ring records), and that
  // combined path must stay within the same budget.
  ASSERT_TRUE(obs::FlightRecorder::instance().is_enabled());

  constexpr int kIters = 1000000;
  const double s = best_seconds(3, [&] {
    for (int i = 0; i < kIters; ++i) {
      obs::ScopedSpan span("perf.noop", "perf");
    }
  });
  // Nothing may reach the tracer while disabled — but every span must
  // have hit the flight ring (begin + end per iteration).
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
  EXPECT_GE(obs::FlightRecorder::instance().record_count(),
            2u * kIters);

  const double ns_per_span = s / kIters * 1e9;
  EXPECT_LE(ns_per_span, 200.0)
      << "a disabled span costs " << ns_per_span
      << " ns; the enabled() gate should keep it at a handful";
  obs::FlightRecorder::instance().clear();
}

TEST(ObsOverhead, FlightRecordIsNanosecondCheap) {
  obs::FlightRecorder::instance().clear();
  constexpr int kIters = 1000000;
  const double s = best_seconds(3, [&] {
    for (int i = 0; i < kIters; ++i)
      obs::flight_record(obs::FlightType::kMark, "perf.flight",
                         static_cast<std::uint64_t>(i));
  });
  EXPECT_GE(obs::FlightRecorder::instance().record_count(),
            static_cast<std::uint64_t>(kIters));

  const double ns_per_record = s / kIters * 1e9;
  EXPECT_LE(ns_per_record, 150.0)
      << "a flight record costs " << ns_per_record
      << " ns; it should be one clock read plus relaxed stores";
  obs::FlightRecorder::instance().clear();
}

TEST(ObsOverhead, CachedCounterAddStaysCheapWhileEnabled) {
  obs::enable();
  auto& c = obs::MetricsRegistry::global().counter("perf.overhead_probe");
  c.reset();

  constexpr int kIters = 1000000;
  const double s = best_seconds(3, [&] {
    for (int i = 0; i < kIters; ++i) c.add(1);
  });
  EXPECT_GE(c.value(), static_cast<std::uint64_t>(kIters));

  const double ns_per_add = s / kIters * 1e9;
  EXPECT_LE(ns_per_add, 100.0)
      << "a cached counter add costs " << ns_per_add
      << " ns; it should be one relaxed fetch_add";

  obs::disable();
  c.reset();
}

}  // namespace
}  // namespace spio
