file(REMOVE_RECURSE
  "../tools/spio_bench"
  "../tools/spio_bench.pdb"
  "CMakeFiles/spio_bench.dir/spio_bench.cpp.o"
  "CMakeFiles/spio_bench.dir/spio_bench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spio_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
