#pragma once

/// \file lod.hpp
/// Level-of-detail ordering (paper §3.4). Aggregated particles are
/// re-shuffled in place so that any prefix of a data file is a uniform
/// random subset of its particles; reading "one more level" means reading
/// further into the file.
///
/// Level l holds at most `x(n, l) = n · P · S^l` particles of the whole
/// dataset, where n is the number of *reading* processes, P the particle
/// count of the first level per reader, and S the resolution scale factor
/// (default 2). The last level holds the remainder. Because levels are
/// plain subsets, the layout adds no storage overhead.

#include <cstdint>

#include "util/rng.hpp"
#include "workload/particle_buffer.hpp"

namespace spio {

/// LOD tuning parameters, fixed at write time and recorded in the spatial
/// metadata file so readers agree on the layout.
struct LodParams {
  /// Particles per reading process in the first level (paper default 32).
  std::uint64_t P = 32;
  /// Resolution scale factor between consecutive levels (paper default 2).
  double S = 2.0;

  constexpr bool operator==(const LodParams&) const = default;
  constexpr bool valid() const { return P >= 1 && S >= 1.0; }
};

/// Nominal (uncapped) size of level `level` for `n_readers` readers:
/// `n · P · S^l`.
std::uint64_t lod_level_size(const LodParams& p, int n_readers, int level);

/// Total particles in levels `[0, levels)`, capped at `total`. With the
/// paper's example (total=100, n=1, P=32, S=2): levels 0..2 cumulate to
/// 32, 96, 100.
std::uint64_t lod_cumulative(const LodParams& p, int n_readers, int levels,
                             std::uint64_t total);

/// Size of level `level` given `total` particles (the last level holds the
/// remainder; levels past the data are 0). Paper example: 100 particles,
/// n=1, P=32, S=2 -> sizes 32, 64, 4.
std::uint64_t lod_level_size_capped(const LodParams& p, int n_readers,
                                    int level, std::uint64_t total);

/// Number of non-empty levels for a dataset of `total` particles. For the
/// paper's Fig. 8 configuration (total=2^31, n=64, P=32, S=2) the maximum
/// level index is 20 (= log2(2^31 / (64·32))), i.e. 21 non-empty levels.
int lod_level_count(const LodParams& p, int n_readers, std::uint64_t total);

/// The shuffle heuristic used to build the LOD order (§3.4: "the order of
/// particles used to create the levels of detail can be defined using
/// different kinds of heuristics such as density or random").
enum class LodHeuristic : std::uint8_t {
  /// Uniform random permutation (Fisher–Yates); the paper's choice: every
  /// prefix is a uniform random sample.
  kRandom = 0,
  /// Deterministic strided interleave (round-robin over S-ary strides);
  /// cheaper but prefixes are biased toward the original input order.
  /// Kept for the ablation bench.
  kStride = 1,
  /// Density-stratified: particles are Morton-ordered by position, then
  /// emitted in bit-reversed rank order, so every prefix spreads evenly
  /// over *space* rather than over the population — tiny prefixes cover
  /// sparse regions a random sample would miss. The paper's "density"
  /// heuristic direction.
  kStratified = 2,
};

/// Re-order `buf` in place into LOD order with the given heuristic. The
/// shuffle is deterministic in `seed`; writers derive the seed from the
/// partition id so re-running a write reproduces files bit-for-bit.
void lod_reorder(ParticleBuffer& buf, std::uint64_t seed,
                 LodHeuristic heuristic = LodHeuristic::kRandom);

}  // namespace spio
