#include <gtest/gtest.h>

#include "simmpi/reduce_ops.hpp"
#include "simmpi/runtime.hpp"

namespace simmpi {
namespace {

TEST(Split, EvenOddGroups) {
  constexpr int kRanks = 8;
  run(kRanks, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), kRanks / 2);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Collectives work within the sub-communicator.
    const int sum = sub.allreduce(comm.rank(), op::sum);
    const int expect = comm.rank() % 2 == 0 ? (0 + 2 + 4 + 6) : (1 + 3 + 5 + 7);
    EXPECT_EQ(sum, expect);
  });
}

TEST(Split, KeyOrdersNewRanks) {
  constexpr int kRanks = 4;
  run(kRanks, [](Comm& comm) {
    // Reverse the rank order via the key.
    Comm sub = comm.split(0, comm.size() - comm.rank());
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(Split, SingletonGroups) {
  run(4, [](Comm& comm) {
    Comm sub = comm.split(comm.rank(), 0);
    EXPECT_EQ(sub.size(), 1);
    EXPECT_EQ(sub.rank(), 0);
    EXPECT_EQ(sub.allreduce(comm.rank(), op::sum), comm.rank());
  });
}

TEST(Split, P2pWithinSubCommunicator) {
  run(6, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() / 3, comm.rank());  // {0,1,2} {3,4,5}
    ASSERT_EQ(sub.size(), 3);
    if (sub.rank() == 0) {
      sub.send_value<int>(1, 0, comm.rank());
    } else if (sub.rank() == 1) {
      const int v = sub.recv_value<int>(0, 0);
      // Sub-rank 0 of my group is global rank (group * 3).
      EXPECT_EQ(v, (comm.rank() / 3) * 3);
    }
  });
}

TEST(Split, ParentStillUsableAfterSplit) {
  run(4, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    sub.barrier();
    EXPECT_EQ(comm.allreduce(1, op::sum), 4);
    sub.barrier();
    EXPECT_EQ(comm.allreduce(2, op::sum), 8);
  });
}

TEST(Split, NestedSplits) {
  constexpr int kRanks = 8;
  run(kRanks, [](Comm& comm) {
    Comm half = comm.split(comm.rank() / 4, comm.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    const int partner_sum = quarter.allreduce(comm.rank(), op::sum);
    // Partners are global ranks {2k, 2k+1}.
    EXPECT_EQ(partner_sum, (comm.rank() / 2) * 4 + 1);
  });
}

TEST(Split, RepeatedSplitsDoNotCollide) {
  run(4, [](Comm& comm) {
    for (int i = 0; i < 10; ++i) {
      Comm sub = comm.split(comm.rank() % 2, comm.rank());
      EXPECT_EQ(sub.size(), 2);
      sub.barrier();
    }
  });
}

}  // namespace
}  // namespace simmpi
