#include "workload/decomposition.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace spio {
namespace {

TEST(Decomposition, RankCoordinateRoundTrip) {
  const PatchDecomposition d(Box3::unit(), {4, 3, 2});
  EXPECT_EQ(d.rank_count(), 24);
  for (int r = 0; r < d.rank_count(); ++r)
    EXPECT_EQ(d.rank_of(d.coord_of(r)), r);
}

TEST(Decomposition, XVariesFastest) {
  const PatchDecomposition d(Box3::unit(), {4, 3, 2});
  EXPECT_EQ(d.coord_of(0), Vec3i(0, 0, 0));
  EXPECT_EQ(d.coord_of(1), Vec3i(1, 0, 0));
  EXPECT_EQ(d.coord_of(4), Vec3i(0, 1, 0));
  EXPECT_EQ(d.coord_of(12), Vec3i(0, 0, 1));
}

TEST(Decomposition, PatchesTileTheDomain) {
  const Box3 domain({-2, 0, 1}, {6, 3, 5});
  const PatchDecomposition d(domain, {4, 2, 2});
  double total_volume = 0;
  for (int r = 0; r < d.rank_count(); ++r) {
    const Box3 p = d.patch(r);
    EXPECT_FALSE(p.is_empty());
    EXPECT_TRUE(domain.contains_box(p));
    total_volume += p.volume();
  }
  EXPECT_NEAR(total_volume, domain.volume(), 1e-9);
}

TEST(Decomposition, NeighboringPatchesShareFaces) {
  const PatchDecomposition d(Box3::unit(), {4, 1, 1});
  for (int r = 0; r + 1 < 4; ++r) {
    EXPECT_DOUBLE_EQ(d.patch(r).hi.x, d.patch(r + 1).lo.x);
  }
  EXPECT_DOUBLE_EQ(d.patch(3).hi.x, 1.0);
}

TEST(Decomposition, PatchSize) {
  const PatchDecomposition d(Box3({0, 0, 0}, {8, 4, 2}), {4, 2, 1});
  EXPECT_EQ(d.patch_size(), Vec3d(2, 2, 2));
}

TEST(Decomposition, CellOfLocatesPoints) {
  const PatchDecomposition d(Box3::unit(), {4, 4, 4});
  EXPECT_EQ(d.cell_of({0.1, 0.1, 0.1}), Vec3i(0, 0, 0));
  EXPECT_EQ(d.cell_of({0.30, 0.60, 0.80}), Vec3i(1, 2, 3));
  // Points exactly on the upper domain face clamp into the last cell.
  EXPECT_EQ(d.cell_of({1.0, 1.0, 1.0}), Vec3i(3, 3, 3));
  EXPECT_EQ(d.cell_of({0.0, 0.0, 0.0}), Vec3i(0, 0, 0));
}

TEST(Decomposition, EveryPatchPointMapsBackToItsRank) {
  const PatchDecomposition d(Box3({0, 0, 0}, {10, 10, 10}), {3, 2, 2});
  for (int r = 0; r < d.rank_count(); ++r) {
    const Vec3d c = d.patch(r).center();
    EXPECT_EQ(d.rank_of(d.cell_of(c)), r);
  }
}

TEST(Decomposition, ForRanksProducesExactRankCount) {
  for (int n : {1, 2, 3, 4, 6, 8, 12, 16, 17, 36, 64, 100, 512}) {
    const auto d = PatchDecomposition::for_ranks(Box3::unit(), n);
    EXPECT_EQ(d.rank_count(), n) << "n=" << n;
  }
}

TEST(Decomposition, NearCubicFactorsAreBalanced) {
  EXPECT_EQ(near_cubic_factors(8), Vec3i(2, 2, 2));
  EXPECT_EQ(near_cubic_factors(64), Vec3i(4, 4, 4));
  EXPECT_EQ(near_cubic_factors(1), Vec3i(1, 1, 1));
  const Vec3i f36 = near_cubic_factors(36);
  EXPECT_EQ(f36.product(), 36);
  EXPECT_LE(f36.max_component(), 6);
  const Vec3i f17 = near_cubic_factors(17);  // prime
  EXPECT_EQ(f17.product(), 17);
}

TEST(Decomposition, FactorsSortedDescending) {
  const Vec3i f = near_cubic_factors(12);
  EXPECT_GE(f.x, f.y);
  EXPECT_GE(f.y, f.z);
  EXPECT_EQ(f.product(), 12);
}

TEST(Decomposition, RejectsInvalidConfig) {
  EXPECT_THROW(PatchDecomposition(Box3::empty(), {1, 1, 1}), ConfigError);
  EXPECT_THROW(PatchDecomposition(Box3::unit(), {0, 1, 1}), ConfigError);
  EXPECT_THROW(PatchDecomposition::for_ranks(Box3::unit(), 0), ConfigError);
}

}  // namespace
}  // namespace spio
