#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <array>

namespace spio {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats rs;
  rs.add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_EQ(rs.mean(), 5.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.min(), 5.0);
  EXPECT_EQ(rs.max(), 5.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
}

TEST(Mean, EmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Mean, Basic) {
  const std::array<double, 4> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stddev, ConstantSampleIsZero) {
  const std::array<double, 3> xs{3, 3, 3};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenValues) {
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 25.0), 2.5);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 100.0), 9.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42}, 99.0), 42.0);
}

TEST(Rmse, IdenticalSamplesIsZero) {
  const std::array<double, 3> a{1, 2, 3};
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
}

TEST(Rmse, KnownValue) {
  const std::array<double, 2> a{0, 0}, b{3, 4};
  // sqrt((9 + 16) / 2)
  EXPECT_DOUBLE_EQ(rmse(a, b), std::sqrt(12.5));
}

}  // namespace
}  // namespace spio
