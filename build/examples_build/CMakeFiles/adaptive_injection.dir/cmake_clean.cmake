file(REMOVE_RECURSE
  "../examples/adaptive_injection"
  "../examples/adaptive_injection.pdb"
  "CMakeFiles/adaptive_injection.dir/adaptive_injection.cpp.o"
  "CMakeFiles/adaptive_injection.dir/adaptive_injection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
