#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/distributed_read.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/run_record.hpp"
#include "obs/trace.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

constexpr int kRanks = 8;
constexpr std::uint64_t kPerRank = 200;
constexpr std::uint64_t kTotal = kRanks * kPerRank;

/// Golden-schema coverage for the instrumented pipeline: a real 8-rank
/// write + read run must emit a parseable Chrome trace whose spans nest,
/// with every pipeline phase present, and the registry's byte accounting
/// must match the Write/ReadStats the pipeline itself returns.
class PipelineTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::enable();
    obs::Tracer::instance().clear();
    obs::MetricsRegistry::global().reset();
  }
  void TearDown() override {
    obs::disable();
    obs::Tracer::instance().clear();
    obs::MetricsRegistry::global().reset();
  }

  static WriteStats write_dataset_traced(const std::filesystem::path& dir) {
    const PatchDecomposition decomp(Box3::unit(), {2, 2, 2});
    WriterConfig cfg;
    cfg.dir = dir;
    cfg.factor = {2, 2, 1};
    WriteStats job{};
    std::mutex mu;
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      const auto local = workload::uniform(
          Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
          stream_seed(99, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      const WriteStats s = write_dataset(comm, decomp, local, cfg);
      std::lock_guard lk(mu);
      job = WriteStats::max_over(job, s);
    });
    return job;
  }

  struct SpanRec {
    std::string name;
    double ts = 0;
    double end = 0;
    std::int64_t tid = 0;
  };

  static std::vector<SpanRec> complete_spans() {
    const obs::JsonValue doc =
        obs::JsonValue::parse(obs::Tracer::instance().chrome_json());
    const obs::JsonValue& events = doc.at("traceEvents");
    std::vector<SpanRec> out;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const obs::JsonValue& e = events.at(i);
      if (e.at("ph").as_string() != "X") continue;
      SpanRec s;
      s.name = e.at("name").as_string();
      s.ts = e.at("ts").as_double();
      s.end = s.ts + e.at("dur").as_double();
      s.tid = e.at("tid").as_i64();
      out.push_back(std::move(s));
    }
    return out;
  }

  static std::uint64_t counter(const char* name) {
    return obs::MetricsRegistry::global().counter(name).value();
  }
};

TEST_F(PipelineTrace, WriteEmitsNestedSpansOnEveryRankTrack) {
  TempDir dir("spio-pipeline");
  write_dataset_traced(dir.path());

  const std::vector<SpanRec> spans = complete_spans();
  static const char* kPhases[] = {"write.setup",        "write.meta_exchange",
                                  "write.particle_exchange", "write.reorder",
                                  "write.file_io",      "write.metadata_io"};

  // Every rank thread contributes its own track, and each track carries
  // the umbrella span plus all six pipeline phases.
  std::set<std::int64_t> tids;
  for (const SpanRec& s : spans) tids.insert(s.tid);
  for (int r = 0; r < kRanks; ++r) EXPECT_EQ(tids.count(r), 1u) << "rank " << r;

  for (int r = 0; r < kRanks; ++r) {
    const SpanRec* whole = nullptr;
    for (const SpanRec& s : spans)
      if (s.tid == r && s.name == "write.dataset") whole = &s;
    ASSERT_NE(whole, nullptr) << "rank " << r;

    std::vector<const SpanRec*> phases;
    for (const char* name : kPhases) {
      const SpanRec* found = nullptr;
      for (const SpanRec& s : spans)
        if (s.tid == r && s.name == name) found = &s;
      ASSERT_NE(found, nullptr) << name << " missing on rank " << r;
      phases.push_back(found);
    }

    // Phases nest inside the umbrella span and run back to back without
    // overlapping (1 us tolerance: begin/end share one clock read).
    constexpr double kTolUs = 1.0;
    for (const SpanRec* p : phases) {
      EXPECT_GE(p->ts, whole->ts - kTolUs) << p->name;
      EXPECT_LE(p->end, whole->end + kTolUs) << p->name;
    }
    std::vector<const SpanRec*> ordered = phases;
    std::sort(ordered.begin(), ordered.end(),
              [](const SpanRec* a, const SpanRec* b) { return a->ts < b->ts; });
    for (std::size_t i = 1; i < ordered.size(); ++i)
      EXPECT_GE(ordered[i]->ts, ordered[i - 1]->end - kTolUs)
          << ordered[i]->name << " overlaps " << ordered[i - 1]->name;
  }
}

TEST_F(PipelineTrace, WriteCountersMatchWriteStatsExactly) {
  TempDir dir("spio-pipeline");
  const WriteStats job = write_dataset_traced(dir.path());

  // max_over sums volume fields across ranks, so the job-level stats and
  // the per-rank counter publications must land on identical totals.
  EXPECT_EQ(counter("writer.particles_sent"), job.particles_sent);
  EXPECT_EQ(counter("writer.bytes_sent"), job.bytes_sent);
  EXPECT_EQ(counter("writer.particles_written"), job.particles_written);
  EXPECT_EQ(counter("writer.bytes_written"), job.bytes_written);
  EXPECT_EQ(counter("writer.files_written"),
            static_cast<std::uint64_t>(job.files_written));
  EXPECT_EQ(job.particles_written, kTotal);

  // The run record next to the dataset carries the same totals.
  ASSERT_TRUE(obs::run_record_present(dir.path()));
  const obs::JsonValue doc = obs::load_run_record(dir.path());
  const obs::JsonValue& w = doc.at("write");
  EXPECT_EQ(w.at("ranks").as_i64(), kRanks);
  EXPECT_EQ(w.at("phase_seconds").size(), static_cast<std::size_t>(kRanks));
  EXPECT_EQ(w.at("totals").at("bytes_written").as_u64(), job.bytes_written);
  EXPECT_EQ(w.at("totals").at("particles_written").as_u64(),
            job.particles_written);
  EXPECT_EQ(w.at("totals").at("files_written").as_u64(),
            static_cast<std::uint64_t>(job.files_written));
  EXPECT_EQ(w.at("config").at("factor").as_string(), "2x2x1");
}

TEST_F(PipelineTrace, QueryCountersMatchReadStatsExactly) {
  TempDir dir("spio-pipeline");
  write_dataset_traced(dir.path());
  // Isolate the reader's counters from the write that produced the data.
  obs::MetricsRegistry::global().reset();
  obs::Tracer::instance().clear();

  const Dataset ds = Dataset::open(dir.path());
  ReadStats rs;
  const ParticleBuffer all = ds.query_box(Box3::unit(), -1, 1, &rs);
  EXPECT_EQ(all.size(), kTotal);

  EXPECT_EQ(counter("reader.files_opened"),
            static_cast<std::uint64_t>(rs.files_opened));
  EXPECT_EQ(counter("reader.bytes_read"), rs.bytes_read);
  EXPECT_EQ(counter("reader.particles_scanned"), rs.particles_scanned);
  EXPECT_EQ(counter("reader.particles_returned"), rs.particles_returned);
  EXPECT_EQ(counter("reader.bytes_returned"),
            rs.particles_returned * ds.metadata().schema.record_size());

  // The query emits its own spans: one per opened file under the query.
  const std::vector<SpanRec> spans = complete_spans();
  std::size_t query_spans = 0, file_spans = 0;
  for (const SpanRec& s : spans) {
    if (s.name == "read.query_box") ++query_spans;
    if (s.name == "read.file") ++file_spans;
  }
  EXPECT_EQ(query_spans, 1u);
  EXPECT_EQ(file_spans, static_cast<std::size_t>(rs.files_opened));
}

TEST_F(PipelineTrace, DistributedReadMergesReadSectionIntoRunRecord) {
  TempDir dir("spio-pipeline");
  const WriteStats job = write_dataset_traced(dir.path());

  constexpr int kReaders = 4;
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), kReaders);
  ReadStats sum;
  std::mutex mu;
  simmpi::run(kReaders, [&](simmpi::Comm& comm) {
    ReadStats rs;
    distributed_read(comm, decomp, dir.path(), -1, &rs);
    std::lock_guard lk(mu);
    sum.accumulate(rs);
  });
  EXPECT_EQ(sum.particles_returned, kTotal);

  const obs::JsonValue doc = obs::load_run_record(dir.path());
  // The reader extends the record in place; the write section survives.
  EXPECT_EQ(doc.at("write").at("totals").at("bytes_written").as_u64(),
            job.bytes_written);
  const obs::JsonValue& r = doc.at("read");
  EXPECT_EQ(r.at("ranks").as_i64(), kReaders);
  EXPECT_EQ(r.at("phase_seconds").size(),
            static_cast<std::size_t>(kReaders));
  EXPECT_EQ(r.at("totals").at("files_opened").as_u64(),
            static_cast<std::uint64_t>(sum.files_opened));
  EXPECT_EQ(r.at("totals").at("bytes_read").as_u64(), sum.bytes_read);
  EXPECT_EQ(r.at("totals").at("particles_scanned").as_u64(),
            sum.particles_scanned);
  EXPECT_EQ(r.at("totals").at("particles_returned").as_u64(),
            sum.particles_returned);
  EXPECT_DOUBLE_EQ(r.at("totals").at("read_amplification").as_double(),
                   static_cast<double>(sum.particles_scanned) /
                       static_cast<double>(sum.particles_returned));

  // Distributed-read umbrella + phase spans are on the trace.
  const std::vector<SpanRec> spans = complete_spans();
  std::set<std::string> names;
  for (const SpanRec& s : spans) names.insert(s.name);
  EXPECT_EQ(names.count("read.distributed"), 1u);
  EXPECT_EQ(names.count("read.distributed.local_io"), 1u);
  EXPECT_EQ(names.count("read.distributed.exchange"), 1u);
}

TEST_F(PipelineTrace, DisabledRunLeavesDatasetDirClean) {
  obs::disable();
  TempDir dir("spio-pipeline");
  write_dataset_traced(dir.path());
  // Default (untraced) runs must leave the dataset byte-identical to the
  // pre-observability format: no run record appears.
  EXPECT_FALSE(obs::run_record_present(dir.path()));
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

}  // namespace
}  // namespace spio
