/// \file abl_adaptive_refine.cpp
/// Ablation: uniform adaptive grid (§6) vs density-refined k-d
/// partitioning (§7 future work, implemented here) on increasingly
/// clustered distributions. The metric is file-size balance — the uniform
/// grid equalizes *volume* per partition, so clustered particles pile
/// into few huge files; the k-d partitioner equalizes estimated *load*.

#include <iostream>
#include <vector>

#include "bench_env.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/table.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

using namespace spio;

namespace {

struct Layout {
  int files = 0;
  std::uint64_t max_file = 0;
  std::uint64_t min_file = 0;
};

Layout run_case(double concentration, bool refine) {
  // 16 ranks; rank r holds particles proportional to a power law in r,
  // `concentration` controlling the skew (0 = uniform).
  constexpr int kRanks = 16;
  constexpr std::uint64_t kBase = 6400;
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 1});
  TempDir dir("abl-refine");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 1};
  cfg.adaptive = true;
  cfg.adaptive_refine = refine;
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    const double weight =
        std::pow(1.0 / (1.0 + comm.rank()), concentration);
    const auto n = static_cast<std::uint64_t>(kBase * weight);
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), n,
        stream_seed(44, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * 100000);
    write_dataset(comm, decomp, local, cfg);
  });
  const Dataset ds = Dataset::open(dir.path());
  Layout out;
  out.files = ds.file_count();
  out.min_file = ~0ull;
  for (const auto& f : ds.metadata().files) {
    out.max_file = std::max(out.max_file, f.particle_count);
    out.min_file = std::min(out.min_file, f.particle_count);
  }
  return out;
}

}  // namespace

int main() {
  spio::bench::init_observability();
  Table t("Ablation: adaptive grid refinement (16 ranks, skewed "
          "distributions)",
          {"skew", "scheme", "files", "largest file", "smallest file",
           "imbalance"});
  for (const double skew : {0.0, 1.0, 2.0, 3.0}) {
    for (const bool refine : {false, true}) {
      const Layout l = run_case(skew, refine);
      t.row()
          .add_double(skew, 1)
          .add(refine ? "kd-refined" : "uniform grid")
          .add_int(l.files)
          .add_int(static_cast<long long>(l.max_file))
          .add_int(static_cast<long long>(l.min_file))
          .add_double(static_cast<double>(l.max_file) /
                          static_cast<double>(std::max<std::uint64_t>(
                              l.min_file, 1)),
                      2);
    }
  }
  t.print(std::cout);
  std::cout << "\nthe uniform adaptive grid equalizes volume; under skew "
               "its largest file grows\nunbounded. The k-d refinement "
               "equalizes estimated load, keeping files even —\nthe "
               "paper's §7 're-balance the grid partition size' "
               "direction.\n";
  return 0;
}
