#include <gtest/gtest.h>

#include <type_traits>

#include "core/reader.hpp"
#include "core/writer.hpp"

namespace spio {
namespace {

WriteStats sample_write(double t, std::uint64_t v) {
  WriteStats s;
  s.setup_seconds = t;
  s.meta_exchange_seconds = t * 2;
  s.particle_exchange_seconds = t * 3;
  s.reorder_seconds = t * 4;
  s.file_io_seconds = t * 5;
  s.metadata_io_seconds = t * 6;
  s.particles_sent = v;
  s.bytes_sent = v * 10;
  s.particles_written = v * 2;
  s.bytes_written = v * 20;
  s.files_written = static_cast<int>(v % 7);
  s.partition_count = static_cast<int>(v % 5);
  return s;
}

// Both stats structs ride through simmpi gathers as raw bytes when the
// run record is assembled.
static_assert(std::is_trivially_copyable_v<WriteStats>);
static_assert(std::is_trivially_copyable_v<ReadStats>);

TEST(WriteStats, MaxOverTakesSlowestTimesAndSumsVolumes) {
  WriteStats a = sample_write(1.0, 100);
  WriteStats b = sample_write(2.0, 30);
  a.file_io_seconds = 11.0;  // a is slower at I/O, b everywhere else
  b.was_aggregator = true;
  b.used_aligned_fast_path = true;
  b.partition_count = 8;

  const WriteStats m = WriteStats::max_over(a, b);
  EXPECT_DOUBLE_EQ(m.setup_seconds, 2.0);
  EXPECT_DOUBLE_EQ(m.meta_exchange_seconds, 4.0);
  EXPECT_DOUBLE_EQ(m.particle_exchange_seconds, 6.0);
  EXPECT_DOUBLE_EQ(m.reorder_seconds, 8.0);
  EXPECT_DOUBLE_EQ(m.file_io_seconds, 11.0);
  EXPECT_DOUBLE_EQ(m.metadata_io_seconds, 12.0);
  EXPECT_EQ(m.particles_sent, 130u);
  EXPECT_EQ(m.bytes_sent, 1300u);
  EXPECT_EQ(m.particles_written, 260u);
  EXPECT_EQ(m.bytes_written, 2600u);
  EXPECT_EQ(m.files_written, a.files_written + b.files_written);
  EXPECT_EQ(m.partition_count, 8);
  EXPECT_TRUE(m.was_aggregator);
  EXPECT_TRUE(m.used_aligned_fast_path);
}

TEST(WriteStats, MaxOverWithDefaultIsIdentity) {
  const WriteStats a = sample_write(1.5, 42);
  const WriteStats m = WriteStats::max_over(WriteStats{}, a);
  EXPECT_DOUBLE_EQ(m.total_seconds(), a.total_seconds());
  EXPECT_EQ(m.particles_written, a.particles_written);
  EXPECT_EQ(m.bytes_sent, a.bytes_sent);
  EXPECT_EQ(m.files_written, a.files_written);
  EXPECT_FALSE(m.was_aggregator);
}

TEST(WriteStats, TotalAndAggregationSecondsSplitAtFileIo) {
  const WriteStats s = sample_write(1.0, 1);
  // total = 1+2+3+4+5+6, aggregation = everything before file I/O.
  EXPECT_DOUBLE_EQ(s.total_seconds(), 21.0);
  EXPECT_DOUBLE_EQ(s.aggregation_seconds(), 10.0);
  EXPECT_DOUBLE_EQ(s.total_seconds() - s.aggregation_seconds(),
                   s.file_io_seconds + s.metadata_io_seconds);
}

TEST(ReadStats, MaxOverTakesSlowestTimesAndSumsVolumes) {
  ReadStats a;
  a.files_opened = 2;
  a.bytes_read = 1000;
  a.particles_scanned = 10;
  a.particles_returned = 5;
  a.cache_hits = 1;
  a.cache_misses = 2;
  a.file_io_seconds = 3.0;
  a.exchange_seconds = 0.5;
  ReadStats b;
  b.files_opened = 3;
  b.bytes_read = 500;
  b.particles_scanned = 4;
  b.particles_returned = 4;
  b.cache_hits = 4;
  b.cache_misses = 8;
  b.file_io_seconds = 1.0;
  b.exchange_seconds = 2.0;

  const ReadStats m = ReadStats::max_over(a, b);
  EXPECT_EQ(m.files_opened, 5);
  EXPECT_EQ(m.bytes_read, 1500u);
  EXPECT_EQ(m.particles_scanned, 14u);
  EXPECT_EQ(m.particles_returned, 9u);
  EXPECT_EQ(m.cache_hits, 5u);
  EXPECT_EQ(m.cache_misses, 10u);
  EXPECT_DOUBLE_EQ(m.file_io_seconds, 3.0);
  EXPECT_DOUBLE_EQ(m.exchange_seconds, 2.0);
}

TEST(ReadStats, AccumulateAddsEveryField) {
  ReadStats acc;
  ReadStats one;
  one.files_opened = 1;
  one.bytes_read = 100;
  one.particles_scanned = 8;
  one.particles_returned = 2;
  one.cache_hits = 3;
  one.cache_misses = 1;
  one.file_io_seconds = 0.25;
  one.exchange_seconds = 0.125;
  acc.accumulate(one);
  acc.accumulate(one);
  EXPECT_EQ(acc.files_opened, 2);
  EXPECT_EQ(acc.bytes_read, 200u);
  EXPECT_EQ(acc.particles_scanned, 16u);
  EXPECT_EQ(acc.particles_returned, 4u);
  EXPECT_EQ(acc.cache_hits, 6u);
  EXPECT_EQ(acc.cache_misses, 2u);
  EXPECT_DOUBLE_EQ(acc.file_io_seconds, 0.5);
  EXPECT_DOUBLE_EQ(acc.exchange_seconds, 0.25);
}

TEST(ReadStats, ReadAmplificationIsScannedOverReturned) {
  ReadStats s;
  EXPECT_DOUBLE_EQ(s.read_amplification(), 0.0);  // nothing returned
  s.particles_scanned = 12;
  s.particles_returned = 4;
  EXPECT_DOUBLE_EQ(s.read_amplification(), 3.0);
  s.particles_returned = 0;
  EXPECT_DOUBLE_EQ(s.read_amplification(), 0.0);
}

}  // namespace
}  // namespace spio
