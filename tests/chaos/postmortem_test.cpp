/// \file postmortem_test.cpp
/// Automatic fault postmortems: every structured failure of the write
/// path — an injected phase death at any of the five phases, a
/// checked-write retry budget exhausted, an incomplete dataset found by
/// `check_and_repair` — must leave a parseable `postmortem.spio.json`
/// bundle next to the dataset, and repair must remove it so a recovered
/// directory stays byte-identical to a fault-free golden run.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "chaos/chaos_util.hpp"
#include "core/journal.hpp"
#include "faultsim/fault_plan.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/postmortem.hpp"
#include "util/temp_dir.hpp"

namespace spio {
namespace {

/// True when any ring of the bundle holds an event of `type` whose name
/// starts with `prefix`.
bool bundle_has_event(const obs::JsonValue& doc, const std::string& type,
                      const std::string& prefix) {
  const obs::JsonValue& ranks = doc.at("flight_recorder").at("ranks");
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const obs::JsonValue& events = ranks.at(i).at("events");
    for (std::size_t j = 0; j < events.size(); ++j) {
      const obs::JsonValue& e = events.at(j);
      if (e.at("type").as_string() == type &&
          e.at("name").as_string().rfind(prefix, 0) == 0)
        return true;
    }
  }
  return false;
}

TEST(Postmortem, EveryPhaseDeathLeavesAParseableBundle) {
  for (int p = 0; p < faultsim::kNumWritePhases; ++p) {
    const auto phase = static_cast<faultsim::WritePhase>(p);
    const std::string phase_str(faultsim::phase_name(phase));
    SCOPED_TRACE("death at " + phase_str);

    obs::FlightRecorder::instance().clear();
    TempDir dir("spio-postmortem");
    faultsim::FaultPlan plan;
    plan.deaths.push_back({/*rank=*/1, phase});
    const chaos::ChaosOutcome out = chaos::run_chaos_write(dir.path(), plan);
    ASSERT_TRUE(out.rank_death) << out.what;

    ASSERT_TRUE(obs::postmortem_present(dir.path()));
    const obs::JsonValue doc = obs::load_postmortem(dir.path());
    const auto problems = obs::validate_postmortem(doc);
    EXPECT_TRUE(problems.empty())
        << "first problem: " << (problems.empty() ? "" : problems.front());

    // Only the dying rank dumps; its secondary casualties (Aborted) must
    // not overwrite the bundle with their own rank/phase.
    EXPECT_EQ(doc.at("failed_rank").as_i64(), 1);
    EXPECT_EQ(doc.at("phase").as_string(), phase_str);
    EXPECT_EQ(doc.at("job_ranks").as_i64(), chaos::kRanks);
    EXPECT_NE(doc.at("reason").as_string().find("injected rank death"),
              std::string::npos)
        << doc.at("reason").as_string();

    // The writer's context sections and the fault-plan echo ride along.
    EXPECT_TRUE(doc.contains("write_stats"));
    EXPECT_TRUE(doc.contains("config"));
    const obs::JsonValue& deaths = doc.at("fault_plan").at("deaths");
    ASSERT_EQ(deaths.size(), 1u);
    EXPECT_EQ(deaths.at(0).at("rank").as_i64(), 1);
    EXPECT_EQ(deaths.at(0).at("phase").as_string(), phase_str);

    // The black box recorded the injection and the phase entry.
    EXPECT_TRUE(bundle_has_event(doc, "fault", "death rank=1"));
    EXPECT_TRUE(bundle_has_event(doc, "phase", phase_str));
  }
}

TEST(Postmortem, CheckedWriteExhaustionLeavesABundle) {
  obs::FlightRecorder::instance().clear();
  TempDir dir("spio-postmortem");
  // Fail every write attempt of every data file: the retry budget (6
  // attempts under fast_retry) exhausts and the aggregator throws a
  // structured FaultError.
  faultsim::FaultPlan plan;
  faultsim::FileRule rule;
  rule.kind = faultsim::FileFaultKind::kFailedSync;
  rule.rank = -1;
  rule.path_contains = "File_";
  rule.after = 0;
  rule.count = 1000;
  plan.files.push_back(rule);
  const chaos::ChaosOutcome out = chaos::run_chaos_write(dir.path(), plan);
  ASSERT_TRUE(out.fault_error) << out.what;

  ASSERT_TRUE(obs::postmortem_present(dir.path()));
  const obs::JsonValue doc = obs::load_postmortem(dir.path());
  EXPECT_TRUE(obs::validate_postmortem(doc).empty());
  EXPECT_EQ(doc.at("phase").as_string(), "data_write");
  EXPECT_NE(doc.at("reason").as_string().find("injected fault"),
            std::string::npos)
      << doc.at("reason").as_string();
  EXPECT_TRUE(bundle_has_event(doc, "fault", "failed_sync"));
  EXPECT_TRUE(bundle_has_event(doc, "mark", "checked_write_exhausted"));
}

TEST(Postmortem, RepairExplainsAnUnexplainedIncompleteDataset) {
  TempDir dir("spio-postmortem");
  faultsim::FaultPlan plan;
  plan.deaths.push_back({/*rank=*/0, faultsim::WritePhase::kDataWrite});
  ASSERT_TRUE(chaos::run_chaos_write(dir.path(), plan).rank_death);

  // Simulate a hard crash that could not dump: no bundle on disk.
  std::filesystem::remove(dir.path() / obs::kPostmortemFile);

  // A non-destructive check must lay down a minimal bundle...
  ASSERT_EQ(check_and_repair(dir.path(), /*remove_partial=*/false),
            RepairOutcome::kIncomplete);
  ASSERT_TRUE(obs::postmortem_present(dir.path()));
  const obs::JsonValue doc = obs::load_postmortem(dir.path());
  EXPECT_TRUE(obs::validate_postmortem(doc).empty());
  EXPECT_EQ(doc.at("phase").as_string(), "repair");

  // ...and a second check must keep the existing, richer bundle.
  ASSERT_EQ(check_and_repair(dir.path(), /*remove_partial=*/false),
            RepairOutcome::kIncomplete);
}

TEST(Postmortem, RepairRemovesBundleAndRewriteMatchesGolden) {
  TempDir dir("spio-postmortem");
  faultsim::FaultPlan plan;
  plan.deaths.push_back({/*rank=*/2, faultsim::WritePhase::kCommit});
  ASSERT_TRUE(chaos::run_chaos_write(dir.path(), plan).rank_death);
  ASSERT_TRUE(obs::postmortem_present(dir.path()));

  ASSERT_EQ(check_and_repair(dir.path(), /*remove_partial=*/true),
            RepairOutcome::kRemovedPartial);
  EXPECT_FALSE(obs::postmortem_present(dir.path()))
      << "repair must clear the failed attempt's bundle";

  chaos::write_golden(dir.path());
  EXPECT_TRUE(chaos::snapshot_dir(dir.path()) == chaos::golden_snapshot())
      << "a repaired-and-rewritten directory must be byte-identical to a "
         "fault-free run";
}

}  // namespace
}  // namespace spio
