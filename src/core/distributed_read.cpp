#include "core/distributed_read.hpp"

namespace spio {

int file_reader(const DatasetMetadata& meta, int file_index,
                const PatchDecomposition& decomp) {
  SPIO_EXPECTS(file_index >= 0 &&
               file_index < static_cast<int>(meta.files.size()));
  SPIO_CHECK(meta.has_bounds, ConfigError,
             "distributed reads need spatial metadata");
  const Box3& b = meta.files[static_cast<std::size_t>(file_index)].bounds;
  return decomp.rank_of(decomp.cell_of(b.center()));
}

ParticleBuffer distributed_read(simmpi::Comm& comm,
                                const PatchDecomposition& decomp,
                                const std::filesystem::path& dir, int levels,
                                ReadStats* stats) {
  SPIO_CHECK(comm.size() == decomp.rank_count(), ConfigError,
             "decomposition has " << decomp.rank_count()
                                  << " patches for a job of " << comm.size()
                                  << " ranks");
  const Dataset ds = Dataset::open(dir);
  SPIO_CHECK(decomp.domain().contains_box(ds.metadata().domain), ConfigError,
             "reader domain " << decomp.domain()
                              << " does not contain the dataset domain "
                              << ds.metadata().domain);

  // Phase 1: read my assigned files and bin their particles by owner
  // tile. Binning uses the decomposition's point location, which clamps
  // boundary particles into the domain's edge patches.
  std::vector<ParticleBuffer> outgoing(
      static_cast<std::size_t>(comm.size()),
      ParticleBuffer(ds.metadata().schema));
  for (int fi = 0; fi < ds.file_count(); ++fi) {
    if (file_reader(ds.metadata(), fi, decomp) != comm.rank()) continue;
    const ParticleBuffer buf = ds.read_data_file(fi, levels, comm.size(),
                                                 stats);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      const int owner = decomp.rank_of(decomp.cell_of(buf.position(i)));
      outgoing[static_cast<std::size_t>(owner)].append_from(buf, i);
    }
  }

  // Phase 2: personalized exchange of the binned bytes.
  std::vector<std::vector<std::byte>> send_to(
      static_cast<std::size_t>(comm.size()));
  for (int r = 0; r < comm.size(); ++r)
    send_to[static_cast<std::size_t>(r)] =
        outgoing[static_cast<std::size_t>(r)].take_bytes();
  const auto received = comm.alltoallv(send_to);

  ParticleBuffer mine(ds.metadata().schema);
  for (const auto& payload : received) mine.append_bytes(payload);
  return mine;
}

}  // namespace spio
