#pragma once

/// \file json.hpp
/// Minimal JSON value tree: parse, inspect, mutate, serialize. Enough for
/// the observability artifacts (Chrome traces, `trace.spio.json` run
/// records, BENCH_*.json) without an external dependency.
///
/// Numbers keep their raw source token alongside the double conversion,
/// so 64-bit counters survive a parse → serialize round trip without
/// precision loss.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spio::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  static JsonValue null_value() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue number(std::uint64_t v);
  static JsonValue number(std::int64_t v);
  static JsonValue number(int v) { return number(std::int64_t{v}); }
  static JsonValue string(std::string_view s);
  /// Number carrying its exact source token (parser internal).
  static JsonValue number_from_token(std::string raw, double v);
  static JsonValue array();
  static JsonValue object();

  /// Parse a complete document (trailing whitespace allowed, trailing
  /// garbage rejected). Throws `FormatError` on malformed input.
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw `FormatError` on kind mismatch.
  bool as_bool() const;
  double as_double() const;
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  const std::string& as_string() const;

  // ---- arrays ----
  std::size_t size() const;  // array or object member count
  const JsonValue& at(std::size_t i) const;
  JsonValue& push_back(JsonValue v);

  // ---- objects ----
  /// Member lookup; null when absent (object kind required).
  const JsonValue* find(std::string_view key) const;
  /// Member lookup that throws `FormatError` when the key is absent.
  const JsonValue& at(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  /// Insert or replace a member, preserving insertion order.
  JsonValue& set(std::string_view key, JsonValue v);
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Serialize. `indent > 0` pretty-prints with that many spaces per
  /// level; 0 emits the compact form.
  std::string dump(int indent = 0) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;  // string value, or the raw token of a number
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace spio::obs
