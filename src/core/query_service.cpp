#include "core/query_service.hpp"

#include <cstdlib>
#include <thread>
#include <utility>

#include "core/read_engine.hpp"
#include "obs/access_profile.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/postmortem.hpp"
#include "obs/query_context.hpp"
#include "obs/stats_export.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace spio {

namespace {

int env_int(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  return fallback;
}

int default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int clamped = hw > 16 ? 16 : static_cast<int>(hw);
  return clamped < 2 ? 2 : clamped;
}

void publish_counter(const char* name, std::uint64_t delta) {
  if (delta == 0 || !obs::stats_enabled()) return;
  obs::MetricsRegistry::global().counter(name).add(delta);
}

void publish_queue_depth(std::size_t depth) {
  if (!obs::stats_enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge("service.queue_depth").set(static_cast<double>(depth));
  // The point gauge only captures submit/complete edges; the high-water
  // mark survives between exporter ticks (which reset it) so spikes
  // shorter than one sampling window stay visible.
  reg.gauge("service.queue_depth_max").set_max(static_cast<double>(depth));
}

}  // namespace

QueryService& QueryService::instance() {
  static QueryService service;
  return service;
}

QueryService::QueryService(const ServiceConfig& cfg)
    : workers_(cfg.workers >= 1
                   ? cfg.workers
                   : env_int("SPIO_SERVE_THREADS", default_workers())),
      depth_(cfg.queue_depth >= 1 ? cfg.queue_depth
                                  : env_int("SPIO_SERVE_QUEUE", 256)),
      postmortem_dir_(cfg.postmortem_dir),
      pool_(std::make_unique<ThreadPool>(workers_,
                                         /*inline_when_single=*/false)) {}

QueryService::~QueryService() { shutdown(); }

std::future<QueryService::Result> QueryService::submit(QueryFn fn,
                                                       Options opt) {
  std::future<Result> fut;
  {
    std::lock_guard lk(mu_);
    if (stopping_) {
      ++tallies_.rejected;
      publish_counter("service.rejected", 1);
      throw RejectedError("query service is shut down");
    }
    if (!opt.coalesce_key.empty()) {
      const auto it = by_key_.find(opt.coalesce_key);
      if (it != by_key_.end() && !it->second->done) {
        // An identical query is queued or executing: share it. The
        // join is free — it consumes no queue slot and no execution.
        it->second->waiters.emplace_back();
        fut = it->second->waiters.back().get_future();
        ++tallies_.accepted;
        ++tallies_.coalesced;
        publish_counter("service.coalesced", 1);
        return fut;
      }
    }
    if (queue_.size() >= static_cast<std::size_t>(depth_)) {
      ++tallies_.rejected;
      publish_counter("service.rejected", 1);
      throw RejectedError("admission queue full (" + std::to_string(depth_) +
                          " queued)");
    }
    auto job = std::make_shared<Job>();
    job->id = obs::next_query_id();
    job->admitted_at = Clock::now();
    job->fn = std::move(fn);
    job->opt = std::move(opt);
    job->waiters.emplace_back();
    fut = job->waiters.back().get_future();
    if (!job->opt.coalesce_key.empty()) by_key_[job->opt.coalesce_key] = job;
    queue_.push_back(std::move(job));
    ++tallies_.accepted;
    publish_queue_depth(queue_.size());
  }
  // One pool task per admitted job; the pool's drain_and_stop is what
  // makes shutdown() finish everything accepted.
  pool_->submit([this] { drain_one(); });
  return fut;
}

QueryService::Result QueryService::run(QueryFn fn, Options opt) {
  return submit(std::move(fn), std::move(opt)).get();
}

void QueryService::drain_one() {
  std::shared_ptr<Job> job;
  {
    std::lock_guard lk(mu_);
    if (queue_.empty()) return;  // defensive; one task per job
    job = std::move(queue_.front());
    queue_.pop_front();
    ++inflight_;
    publish_queue_depth(queue_.size());
  }

  Result result;
  std::exception_ptr error;
  const auto started_at = Clock::now();
  {
    // The query ID scopes the whole execution: every span, log line and
    // flight record below — including those on engine pool workers,
    // which re-install the ID next to the inherited deadline — carries
    // this job's ID.
    obs::ScopedQueryId qid_scope(job->id);
    {
      obs::ScopedSpan span("serve.query", "service");
      read_detail::ScopedDeadline dl(job->opt.deadline);
      try {
        // A deadline that expired while the query was queued aborts it
        // before it runs at all.
        read_detail::check_deadline();
        result = std::make_shared<const ParticleBuffer>(job->fn());
      } catch (...) {
        error = std::current_exception();
      }
    }

    // Server-side latency telemetry is always-on (a clock read and a
    // few relaxed adds per query, same budget class as the flight
    // recorder): `spio_bench --serve` and the stats exporter read these
    // without tracing enabled. Latency is admission → completion, the
    // figure a client would see from inside the server.
    const auto now = Clock::now();
    const auto us = [](Clock::duration d) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(d).count());
    };
    const std::uint64_t wait_us = us(started_at - job->admitted_at);
    const std::uint64_t latency_us = us(now - job->admitted_at);
    auto& reg = obs::MetricsRegistry::global();
    static auto& latency_hist = reg.windowed("service.latency_us");
    static auto& wait_hist = reg.windowed("service.queue_wait_us");
    latency_hist.observe(latency_us);
    wait_hist.observe(wait_us);
    const std::uint64_t slo = obs::slo_budget_us();
    if (slo != 0 && latency_us > slo) {
      slo_violations_.fetch_add(1, std::memory_order_relaxed);
      publish_counter("service.slo_violations", 1);
    }
    obs::log::Event(obs::log::Level::kDebug, "serve.query.done")
        .kv("wait_us", wait_us)
        .kv("total_us", latency_us)
        .kv("ok", !error);
  }

  std::vector<std::promise<Result>> waiters;
  {
    std::lock_guard lk(mu_);
    --inflight_;
    job->done = true;  // no waiter may attach past this point
    waiters = std::move(job->waiters);
    if (!job->opt.coalesce_key.empty()) {
      const auto it = by_key_.find(job->opt.coalesce_key);
      if (it != by_key_.end() && it->second == job) by_key_.erase(it);
    }
    if (!error) tallies_.completed += waiters.size();
  }
  // Annotate the access profile's query record (detailed mode) with the
  // service-side view: queue wait, admission→completion latency, and
  // how many coalesced clients this one execution served.
  {
    const auto us = [](Clock::duration d) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(d).count());
    };
    const auto now = Clock::now();
    obs::AccessProfiler::instance().complete_query(
        job->id, us(started_at - job->admitted_at),
        us(now - job->admitted_at), waiters.size());
  }

  if (error) {
    std::string what = "unknown query failure";
    bool timeout = false;
    try {
      std::rethrow_exception(error);
    } catch (const TimeoutError& e) {
      timeout = true;
      what = e.what();
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
    }
    {
      std::lock_guard lk(mu_);
      if (timeout) {
        tallies_.deadline_expired += 1;
      } else {
        tallies_.failed += 1;
      }
    }
    publish_counter(timeout ? "service.deadline_expired" : "service.failed",
                    1);
    if (!timeout) note_failure(what);
  } else {
    publish_counter("service.completed", waiters.size());
  }

  for (std::promise<Result>& w : waiters) {
    if (error) {
      w.set_exception(error);
    } else {
      w.set_value(result);
    }
  }
}

void QueryService::note_failure(const std::string& what) {
  {
    std::lock_guard lk(mu_);
    if (postmortem_dir_.empty() || postmortem_saved_) return;
    postmortem_saved_ = true;
  }
  obs::PostmortemInfo info;
  info.reason = what;
  info.phase = "serve";
  obs::save_postmortem(postmortem_dir_, info);  // never throws
}

void QueryService::shutdown() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  // Every accepted job has a matching pool task; draining the pool
  // executes them all and resolves every outstanding future.
  pool_->drain_and_stop();
}

ServiceStats QueryService::stats() const {
  std::lock_guard lk(mu_);
  ServiceStats s = tallies_;
  s.queue_depth = queue_.size();
  s.inflight = inflight_;
  s.slo_violations = slo_violations_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace spio
