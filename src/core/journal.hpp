#pragma once

/// \file journal.hpp
/// Crash consistency for the two-phase write path.
///
/// The write protocol brackets every dataset write with a journal file:
///
///   1. rank 0 creates `write.journal` in the dataset directory and
///      removes any previous `meta.spio` / `checksums.spio` /
///      `zones.spio` (so a stale metadata file can never vouch for
///      half-overwritten data);
///   2. all ranks write their data files;
///   3. rank 0 writes `checksums.spio` and `zones.spio`, then `meta.spio`
///      (the commit point), then removes the journal.
///
/// A crash anywhere in between leaves the journal behind, so the on-disk
/// states are unambiguous:
///
///   journal absent             -> dataset is complete (or was never
///                                 written by a journaling writer);
///   journal present, metadata
///   valid and files intact     -> crash between commit and journal
///                                 removal: complete, journal is stale;
///   journal present otherwise  -> incomplete write.
///
/// `check_and_repair` classifies a directory and optionally finalizes a
/// stale journal or clears out partial artifacts.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "util/error.hpp"

namespace spio {

/// Raised when a dataset directory holds a detectably incomplete write
/// (a crash-orphaned journal with missing or inconsistent artifacts).
class IncompleteDatasetError : public Error {
 public:
  explicit IncompleteDatasetError(const std::string& what)
      : Error("spio: incomplete dataset: " + what) {}
};

/// The write-intent journal of one dataset directory.
struct WriteJournal {
  static constexpr std::uint32_t kMagic = 0x4A575053;  // "SPWJ"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr const char* kFileName = "write.journal";

  /// Open the journal (rank 0, before any data write): create the journal
  /// file, then invalidate any previous commit by removing `meta.spio`,
  /// `checksums.spio` and `zones.spio`. Ordered so that a crash at any
  /// point leaves a detectable state (see file header).
  static void begin(const std::filesystem::path& dir);

  /// Close the journal (rank 0, after `meta.spio` is durable).
  static void commit(const std::filesystem::path& dir);

  /// True when `dir` holds an open journal.
  static bool present(const std::filesystem::path& dir);
};

/// Per-data-file CRC-64 table, written as the optional sidecar
/// `checksums.spio` next to `meta.spio`. Lets readers and validators
/// detect silent data corruption that file sizes cannot reveal. A
/// separate file keeps the frozen `meta.spio` format unchanged.
struct ChecksumTable {
  static constexpr std::uint32_t kMagic = 0x4B435053;  // "SPCK"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr const char* kFileName = "checksums.spio";

  struct Entry {
    std::uint32_t aggregator_rank = 0;  // names the data file (Fig. 4)
    std::uint64_t crc = 0;              // CRC-64/XZ of the file's bytes

    bool operator==(const Entry&) const = default;
  };
  std::vector<Entry> entries;

  bool operator==(const ChecksumTable&) const = default;

  /// CRC recorded for `File_<aggregator_rank>.bin`, if any.
  std::optional<std::uint64_t> crc_for(std::uint32_t aggregator_rank) const;

  void save(const std::filesystem::path& dir) const;
  /// Throws `IoError` when absent, `FormatError` when malformed.
  static ChecksumTable load(const std::filesystem::path& dir);
  static bool present(const std::filesystem::path& dir);
};

/// Classification of a dataset directory by `check_and_repair`.
enum class RepairOutcome {
  kClean,             // no journal: nothing to do
  kFinalizedJournal,  // complete dataset under a stale journal; removed it
  kIncomplete,        // partial write detected and left in place
  kRemovedPartial,    // partial write detected; artifacts deleted
};

/// Inspect `dir` for an interrupted write and repair what is repairable:
/// a stale journal over a complete dataset is finalized (removed); a
/// genuinely incomplete write is reported, and with `remove_partial` its
/// artifacts (`meta.spio`, `checksums.spio`, `zones.spio`, `File_*.bin`,
/// the journal) are deleted so the directory can be rewritten from
/// scratch.
RepairOutcome check_and_repair(const std::filesystem::path& dir,
                               bool remove_partial = false);

}  // namespace spio
