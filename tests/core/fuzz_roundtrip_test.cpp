#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "core/reader.hpp"
#include "core/validate.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

/// Randomized end-to-end property check: for a seed-derived random
/// configuration (process grid, partition factor, distribution, LOD
/// parameters, adaptivity, heuristic), a write followed by a deep
/// validation and a full-domain read must preserve every particle
/// exactly once, and random box queries must agree with a brute-force
/// scan.
class FuzzRoundTrip : public ::testing::TestWithParam<int> {};

/// Base seed of the fuzz streams. Overridable with SPIO_TEST_SEED (any
/// strtoull base-0 literal, e.g. `SPIO_TEST_SEED=0xBEEF`) so a failing
/// configuration can be replayed — or new ground explored — without a
/// rebuild. Each parameterized instance derives its stream from
/// (base, instance index).
std::uint64_t base_fuzz_seed() {
  static const std::uint64_t seed = [] {
    if (const char* env = std::getenv("SPIO_TEST_SEED"))
      return std::strtoull(env, nullptr, 0);
    return 0xF022ULL;
  }();
  return seed;
}

TEST_P(FuzzRoundTrip, WriteValidateQuery) {
  // Printed via SCOPED_TRACE on any failure below, so the exact stream is
  // always in the report.
  SCOPED_TRACE("SPIO_TEST_SEED=" + std::to_string(base_fuzz_seed()) +
               " instance=" + std::to_string(GetParam()));
  Xoshiro256 rng(
      stream_seed(base_fuzz_seed(), static_cast<std::uint64_t>(GetParam())));

  // Random process grid with 4..32 ranks.
  const Vec3i grids[] = {{2, 2, 1}, {2, 2, 2}, {4, 2, 1}, {4, 2, 2},
                         {3, 2, 2}, {4, 4, 1}, {3, 3, 2}, {4, 4, 2}};
  const Vec3i grid = grids[rng.uniform_index(std::size(grids))];
  const int nranks = static_cast<int>(grid.product());

  PartitionFactor factor{1 + static_cast<int>(rng.uniform_index(4)),
                         1 + static_cast<int>(rng.uniform_index(3)),
                         1 + static_cast<int>(rng.uniform_index(2))};
  const Box3 domain({0, 0, 0},
                    {1 + rng.uniform(0, 8), 1 + rng.uniform(0, 4),
                     1 + rng.uniform(0, 4)});
  const PatchDecomposition decomp(domain, grid);

  WriterConfig cfg;
  TempDir dir("spio-fuzz");
  cfg.dir = dir.path();
  cfg.factor = factor;
  cfg.adaptive = rng.uniform() < 0.4;
  cfg.adaptive_refine = cfg.adaptive && rng.uniform() < 0.5;
  cfg.lod = {1 + rng.uniform_index(64), 1.0 + rng.uniform(0, 2.5)};
  cfg.heuristic = static_cast<LodHeuristic>(rng.uniform_index(3));
  cfg.force_general_exchange = rng.uniform() < 0.25;
  cfg.shuffle_seed = rng.next();

  const int distribution = static_cast<int>(rng.uniform_index(3));
  const double coverage = 0.25 + 0.75 * rng.uniform();
  const std::uint64_t per_rank = rng.uniform_index(300);
  const std::uint64_t base_seed = rng.next();

  std::uint64_t expected_total = 0;
  {
    // Pre-compute the expected census with the same generator calls.
    for (int r = 0; r < nranks; ++r) {
      ParticleBuffer buf(Schema::uintah());
      const auto seed = stream_seed(base_seed, static_cast<std::uint64_t>(r));
      const auto first_id = static_cast<std::uint64_t>(r) * 1000;
      switch (distribution) {
        case 0:
          buf = workload::uniform(Schema::uintah(), decomp.patch(r), per_rank,
                                  seed, first_id);
          break;
        case 1:
          buf = workload::uniform_in_region(
              Schema::uintah(), decomp.patch(r),
              workload::coverage_region(domain, coverage), per_rank, seed,
              first_id);
          break;
        default:
          buf = workload::gaussian_clusters(Schema::uintah(), decomp.patch(r),
                                            per_rank, 2, 0.1, seed, first_id);
      }
      expected_total += buf.size();
    }
  }

  simmpi::run(nranks, [&](simmpi::Comm& comm) {
    const int r = comm.rank();
    const auto seed = stream_seed(base_seed, static_cast<std::uint64_t>(r));
    const auto first_id = static_cast<std::uint64_t>(r) * 1000;
    ParticleBuffer buf(Schema::uintah());
    switch (distribution) {
      case 0:
        buf = workload::uniform(Schema::uintah(), decomp.patch(r), per_rank,
                                seed, first_id);
        break;
      case 1:
        buf = workload::uniform_in_region(
            Schema::uintah(), decomp.patch(r),
            workload::coverage_region(domain, coverage), per_rank, seed,
            first_id);
        break;
      default:
        buf = workload::gaussian_clusters(Schema::uintah(), decomp.patch(r),
                                          per_rank, 2, 0.1, seed, first_id);
    }
    write_dataset(comm, decomp, buf, cfg);
  });

  // Deep validation: bounds containment and field ranges hold.
  const auto report = validate_dataset(dir.path(), /*deep=*/true);
  ASSERT_TRUE(report.ok()) << report.errors.front();

  const Dataset ds = Dataset::open(dir.path());
  ASSERT_EQ(ds.metadata().total_particles, expected_total);
  if (expected_total == 0) return;

  // Full read: exact census, unique ids.
  const auto idf = Schema::uintah().index_of("id");
  const auto all = ds.query_box(domain);
  ASSERT_EQ(all.size(), expected_total);
  std::set<double> ids;
  for (std::size_t i = 0; i < all.size(); ++i)
    ids.insert(all.get_f64(i, idf));
  ASSERT_EQ(ids.size(), expected_total);

  // Random box queries agree with the brute-force scan.
  for (int q = 0; q < 3; ++q) {
    Box3 box;
    for (int a = 0; a < 3; ++a) {
      const double lo = rng.uniform(domain.lo[a], domain.hi[a]);
      const double hi = rng.uniform(domain.lo[a], domain.hi[a]);
      box.lo[a] = std::min(lo, hi);
      box.hi[a] = std::max(lo, hi);
    }
    if (box.is_empty()) continue;
    const auto fast = ds.query_box(box);
    const auto slow = ds.query_box_scan_all(box);
    std::set<double> fast_ids, slow_ids;
    for (std::size_t i = 0; i < fast.size(); ++i)
      fast_ids.insert(fast.get_f64(i, idf));
    for (std::size_t i = 0; i < slow.size(); ++i)
      slow_ids.insert(slow.get_f64(i, idf));
    ASSERT_EQ(fast_ids, slow_ids) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRoundTrip, ::testing::Range(0, 16),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace spio
