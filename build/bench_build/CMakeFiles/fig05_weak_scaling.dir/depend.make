# Empty dependencies file for fig05_weak_scaling.
# This may be replaced when dependencies are built.
