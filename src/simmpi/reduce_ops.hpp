#pragma once

/// \file reduce_ops.hpp
/// Common reduction functors for `Comm::reduce`/`allreduce`, mirroring the
/// predefined MPI_Op set.

#include <algorithm>

namespace simmpi::op {

/// MPI_SUM
struct Sum {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
};

/// MPI_MIN
struct Min {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return std::min(a, b);
  }
};

/// MPI_MAX
struct Max {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return std::max(a, b);
  }
};

/// MPI_LOR
struct LogicalOr {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a || b;
  }
};

/// MPI_LAND
struct LogicalAnd {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a && b;
  }
};

inline constexpr Sum sum{};
inline constexpr Min min{};
inline constexpr Max max{};
inline constexpr LogicalOr logical_or{};
inline constexpr LogicalAnd logical_and{};

}  // namespace simmpi::op
