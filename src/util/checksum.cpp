#include "util/checksum.hpp"

#include <array>

namespace spio {

namespace {

// Reflected form of the ECMA-182 polynomial 0x42F0E1EBA9EA3693.
constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ULL;

constexpr std::array<std::uint64_t, 256> make_table() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint64_t, 256> kTable = make_table();

}  // namespace

std::uint64_t crc64(std::span<const std::byte> data) {
  std::uint64_t crc = ~0ULL;
  for (const std::byte b : data) {
    crc = kTable[(crc ^ static_cast<std::uint64_t>(b)) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace spio
