/// \file telemetry_overhead_test.cpp
/// Perf floor (ctest label `perf`) for live telemetry: running the
/// stats exporter must not meaningfully slow the query path. The
/// telemetry per query is a few windowed-histogram observes (relaxed
/// atomic adds), a queue-depth gauge update, and a disabled log site —
/// the background thread samples off the hot path. The bound is a
/// ratio against the exporter-off time plus an absolute slack so a
/// noisy CI box cannot fail a nanosecond-scale difference, but a
/// telemetry path that grew a lock or an allocation will.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>

#include "core/query_service.hpp"
#include "obs/obs.hpp"
#include "obs/stats_export.hpp"
#include "obs/windowed_histogram.hpp"
#include "util/temp_dir.hpp"
#include "workload/particle_buffer.hpp"
#include "workload/schema.hpp"

namespace spio {
namespace {

using namespace std::chrono_literals;

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double best_seconds(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) best = std::min(best, seconds_of(fn));
  return best;
}

/// A query with a deterministic dab of CPU work (~microseconds), so the
/// measured path is admission + dispatch + telemetry, not disk.
ParticleBuffer busywork_query() {
  ParticleBuffer out(Schema::uintah());
  volatile double sink = 0;
  double acc = 0;
  for (int i = 1; i <= 2000; ++i) acc += 1.0 / static_cast<double>(i);
  sink = acc;
  (void)sink;
  return out;
}

TEST(TelemetryOverhead, WindowedObserveIsNanosecondCheap) {
  obs::WindowedHistogram h;
  constexpr int kIters = 1000000;
  const double s = best_seconds(3, [&] {
    for (int i = 0; i < kIters; ++i)
      h.observe(static_cast<std::uint64_t>(i & 65535));
  });
  const double ns_per_observe = s / kIters * 1e9;
  EXPECT_LE(ns_per_observe, 150.0)
      << "a windowed observe costs " << ns_per_observe
      << " ns; it should be a bucket index plus relaxed adds";
}

TEST(TelemetryOverhead, ExporterKeepsQueryPathWithinFivePercent) {
  obs::disable();
  constexpr int kQueries = 2000;
  constexpr int kReps = 5;

  const auto run_batch = [] {
    ServiceConfig cfg;
    cfg.workers = 2;
    QueryService svc(cfg);
    for (int i = 0; i < kQueries; ++i) svc.run(busywork_query);
    svc.shutdown();
  };

  // Interleave off/on reps so drift (thermal, noisy neighbors) hits both
  // arms equally; best-of keeps the cleanest run of each.
  TempDir dir("spio-telemetry-perf");
  auto& exp = obs::TelemetryExporter::instance();
  double best_off = 1e300, best_on = 1e300;
  for (int r = 0; r < kReps; ++r) {
    ASSERT_FALSE(exp.running());
    best_off = std::min(best_off, seconds_of(run_batch));

    ASSERT_TRUE(exp.start(10ms, dir.file("perf.jsonl").string()));
    best_on = std::min(best_on, seconds_of(run_batch));
    exp.stop();
  }

  // ≤5% relative plus 20ms absolute slack: the batch takes tens of
  // milliseconds, so scheduler jitter alone can swing a few percent.
  EXPECT_LE(best_on, best_off * 1.05 + 0.020)
      << "telemetry-on batch took " << best_on << "s vs " << best_off
      << "s off; the per-query telemetry path must stay at relaxed-atomic "
         "cost";
}

}  // namespace
}  // namespace spio
