#include "core/knn.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

class Knn : public ::testing::Test {
 protected:
  static constexpr int kRanks = 16;
  static constexpr std::uint64_t kPerRank = 400;

  static void SetUpTestSuite() {
    dir_ = new TempDir("spio-knn");
    const PatchDecomposition decomp(Box3::unit(), {4, 4, 1});
    WriterConfig cfg;
    cfg.dir = dir_->path();
    cfg.factor = {1, 1, 1};  // 16 files: pruning has something to skip
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      const auto local = workload::uniform(
          Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
          stream_seed(41, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      write_dataset(comm, decomp, local, cfg);
    });
  }

  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  /// Brute force reference: distances of all particles, sorted.
  static std::vector<double> brute_force(const Dataset& ds,
                                         const Vec3d& q) {
    const auto all = ds.query_box_scan_all(ds.metadata().domain);
    std::vector<double> d;
    d.reserve(all.size());
    for (std::size_t i = 0; i < all.size(); ++i)
      d.push_back(distance(all.position(i), q));
    std::sort(d.begin(), d.end());
    return d;
  }

  static TempDir* dir_;
};

TempDir* Knn::dir_ = nullptr;

TEST(DistanceToBox, InsideOnFaceAndOutside) {
  const Box3 b({0, 0, 0}, {1, 1, 1});
  EXPECT_DOUBLE_EQ(distance_to_box({0.5, 0.5, 0.5}, b), 0.0);
  EXPECT_DOUBLE_EQ(distance_to_box({1.0, 0.5, 0.5}, b), 0.0);
  EXPECT_DOUBLE_EQ(distance_to_box({2.0, 0.5, 0.5}, b), 1.0);
  EXPECT_DOUBLE_EQ(distance_to_box({2.0, 2.0, 0.5}, b),
                   std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(distance_to_box({-1, -1, -1}, b), std::sqrt(3.0));
}

TEST_F(Knn, MatchesBruteForceDistances) {
  const Dataset ds = Dataset::open(dir_->path());
  Xoshiro256 rng(5);
  for (int q = 0; q < 10; ++q) {
    const Vec3d p{rng.uniform(), rng.uniform(), rng.uniform()};
    const auto ref = brute_force(ds, p);
    for (const int k : {1, 5, 32}) {
      const KnnResult res = k_nearest(ds, p, k);
      ASSERT_EQ(res.distances.size(), static_cast<std::size_t>(k));
      ASSERT_EQ(res.particles.size(), static_cast<std::size_t>(k));
      for (int i = 0; i < k; ++i) {
        ASSERT_DOUBLE_EQ(res.distances[static_cast<std::size_t>(i)],
                         ref[static_cast<std::size_t>(i)])
            << "query " << q << " k=" << k << " i=" << i;
        // The returned record really is at the claimed distance.
        ASSERT_DOUBLE_EQ(
            distance(res.particles.position(static_cast<std::size_t>(i)), p),
            res.distances[static_cast<std::size_t>(i)]);
      }
    }
  }
}

TEST_F(Knn, DistancesAreAscending) {
  const Dataset ds = Dataset::open(dir_->path());
  const KnnResult res = k_nearest(ds, {0.3, 0.7, 0.5}, 50);
  EXPECT_TRUE(std::is_sorted(res.distances.begin(), res.distances.end()));
}

TEST_F(Knn, PrunesDistantFiles) {
  const Dataset ds = Dataset::open(dir_->path());
  ReadStats rs;
  // A query deep inside one tile with small k touches few of 16 files.
  k_nearest(ds, {0.125, 0.125, 0.5}, 5, &rs);
  EXPECT_LT(rs.files_opened, 6);
  EXPECT_GE(rs.files_opened, 1);
}

TEST_F(Knn, FarAwayQueryStillWorks) {
  const Dataset ds = Dataset::open(dir_->path());
  const KnnResult res = k_nearest(ds, {50, 50, 50}, 3);
  ASSERT_EQ(res.distances.size(), 3u);
  EXPECT_GT(res.distances[0], 80.0);  // everything is far
}

TEST_F(Knn, KLargerThanDatasetReturnsEverything) {
  const Dataset ds = Dataset::open(dir_->path());
  const KnnResult res =
      k_nearest(ds, {0.5, 0.5, 0.5}, 2 * kRanks * kPerRank);
  EXPECT_EQ(res.particles.size(), kRanks * kPerRank);
}

TEST_F(Knn, RejectsBadInput) {
  const Dataset ds = Dataset::open(dir_->path());
  EXPECT_THROW(k_nearest(ds, {0, 0, 0}, 0), ConfigError);
}

}  // namespace
}  // namespace spio
