#pragma once

/// \file prefix_cache.hpp
/// The read path's file-prefix buffer cache, extracted from ReadEngine
/// and sharded for concurrent service traffic (docs/PERF.md "Query
/// service").
///
/// `PrefixCache` is one LRU shard: entries keyed by an opaque string
/// (the engine uses `path + '\1' + prefix_bytes`), each validated
/// against the file's `(size, mtime)` signature on every hit so a
/// dataset rewritten in place is never served stale. A byte budget
/// bounds residency; inserting evicts from the LRU tail.
///
/// `ShardedPrefixCache` routes each key to one of N shards by hash
/// (`SPIO_CACHE_SHARDS`, default 8) so 64 service threads hitting a hot
/// region contend on N mutexes instead of one. The total budget is
/// split evenly across shards; the same key always lands on the same
/// shard, so per-key LRU/staleness semantics are those of the
/// single-shard cache. What sharding gives up is *global* LRU order —
/// eviction pressure is per shard — which the differential property
/// tests (tests/core/prefix_cache_test.cpp) pin down: under an
/// effectively unbounded budget a sharded cache is op-for-op
/// indistinguishable from the single-shard reference.
///
/// Counters (`reader.cache.{hits,misses,bytes_evicted}`) are published
/// into the metrics registry by the shard that served the operation.

#include <cstdint>
#include <memory>
#include <mutex>
#include <list>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace spio {

class PositionMirror;  // simd/position_mirror.hpp

/// (size, mtime) identity of a file at probe time; the cache's staleness
/// check. `mtime_ns` is 0 when the cache is disabled (not sampled).
struct FileSig {
  std::uint64_t size = 0;
  std::int64_t mtime_ns = 0;
};

/// Point-in-time cache counters (also mirrored into the metrics
/// registry as `reader.cache.*` when observability is on). The
/// `singleflight_*` pair is filled in by `ReadEngine::cache_stats` —
/// dedup happens above the cache, in the engine's fetch path.
struct ReadCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;      ///< entries dropped (budget or stale)
  std::uint64_t bytes_evicted = 0;  ///< payload bytes of those entries
  std::uint64_t bytes_held = 0;     ///< current resident payload bytes
  std::uint64_t entries = 0;        ///< current resident entry count
  std::uint64_t singleflight_leaders = 0;    ///< misses that did the read
  std::uint64_t singleflight_followers = 0;  ///< waiters served by a leader
};

/// An exactly-sized, immutable-after-fill byte block. Unlike
/// `std::vector`, construction does NOT zero the storage, so a cache
/// miss reads a file prefix in one pass (fread) instead of two
/// (memset + fread) — a full-memory-bandwidth saving on large prefixes.
class ByteBlock {
 public:
  explicit ByteBlock(std::size_t size)
      : data_(new std::byte[size]), size_(size) {}
  std::byte* data() { return data_.get(); }
  std::size_t size() const { return size_; }
  std::span<const std::byte> span() const { return {data_.get(), size_}; }

 private:
  std::unique_ptr<std::byte[]> data_;
  std::size_t size_;
};

/// One LRU shard. Thread-safe; every operation takes the shard mutex.
class PrefixCache {
 public:
  explicit PrefixCache(std::uint64_t budget) : budget_(budget) {}

  /// The cached block for `key` when resident AND signature-fresh;
  /// nullptr on a miss. A resident entry whose signature differs from
  /// `sig` is dropped (counted as an eviction) — in-place rewrites are
  /// never served stale. A fresh hit moves the entry to the LRU front.
  /// When `mirror` is non-null it receives the entry's SoA position
  /// mirror (may be null — not every entry has one); a stale drop or a
  /// miss leaves it null, so a mirror can never outlive its bytes.
  std::shared_ptr<const ByteBlock> lookup(
      const std::string& key, const FileSig& sig,
      std::shared_ptr<const PositionMirror>* mirror = nullptr);

  /// Insert `data` for `key`, stamped with `sig`, counting one miss.
  /// Evicts from the LRU tail to fit the budget; an entry larger than
  /// the whole budget is not cached at all (the miss still counts). An
  /// existing entry under `key` (a raced concurrent miss) is replaced.
  /// `mirror`, when given, rides with the entry: its bytes are charged
  /// against the budget alongside the block's, and it is dropped with
  /// the entry on eviction, staleness, and invalidation.
  void insert(const std::string& key, std::shared_ptr<const ByteBlock> data,
              const FileSig& sig,
              std::shared_ptr<const PositionMirror> mirror = nullptr);

  /// Drop `key` if resident (counted as an eviction). No-op otherwise.
  void invalidate(const std::string& key);

  /// Drop every resident entry (counted as evictions).
  void clear();

  /// Re-budget; 0 disables caching (and drops residents). Counters are
  /// preserved.
  void set_budget(std::uint64_t bytes);
  std::uint64_t budget() const;

  /// Zero the hit/miss/eviction counters (residents stay).
  void reset_stats();
  ReadCacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const ByteBlock> data;
    std::shared_ptr<const PositionMirror> mirror;  // may be null
    FileSig sig;
  };
  using LruList = std::list<Entry>;

  /// What the entry charges against the budget: block plus mirror.
  static std::uint64_t entry_bytes(const Entry& e);

  /// Unlink + account one resident entry (caller holds `mu_`).
  void evict_locked(LruList::iterator it);
  /// Evict from the tail until `bytes_held_ <= target` (caller holds
  /// `mu_`).
  void shrink_to_locked(std::uint64_t target);

  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::string, LruList::iterator> map_;
  std::uint64_t budget_ = 0;
  std::uint64_t bytes_held_ = 0;
  ReadCacheStats stats_;
};

/// N independent `PrefixCache` shards behind one facade. Keys route by
/// `std::hash` of the key string; budgets and stats are aggregated.
class ShardedPrefixCache {
 public:
  /// \param total_budget bytes across all shards (split evenly, the
  ///        first `total % shards` shards get one extra byte).
  /// \param shards clamped to >= 1.
  ShardedPrefixCache(std::uint64_t total_budget, int shards);

  std::shared_ptr<const ByteBlock> lookup(
      const std::string& key, const FileSig& sig,
      std::shared_ptr<const PositionMirror>* mirror = nullptr) {
    return shard_for(key).lookup(key, sig, mirror);
  }
  void insert(const std::string& key, std::shared_ptr<const ByteBlock> data,
              const FileSig& sig,
              std::shared_ptr<const PositionMirror> mirror = nullptr) {
    shard_for(key).insert(key, std::move(data), sig, std::move(mirror));
  }
  void invalidate(const std::string& key) { shard_for(key).invalidate(key); }
  void clear();

  bool enabled() const { return budget() > 0; }
  std::uint64_t budget() const;
  /// Re-split `bytes` across the existing shards, evicting as needed.
  void set_budget(std::uint64_t bytes);

  int shard_count() const { return static_cast<int>(shards_.size()); }
  std::size_t shard_of(const std::string& key) const {
    return std::hash<std::string>{}(key) % shards_.size();
  }

  void reset_stats();
  /// Aggregated over shards (sum of counters; `singleflight_*` stays 0
  /// here — the engine owns those).
  ReadCacheStats stats() const;

 private:
  PrefixCache& shard_for(const std::string& key) {
    return *shards_[shard_of(key)];
  }

  std::vector<std::unique_ptr<PrefixCache>> shards_;
};

}  // namespace spio
