#pragma once

/// \file density.hpp
/// Binned density fields over particle sets — the quantitative stand-in
/// for the paper's renderings (Fig. 9): LOD prefixes are judged by how
/// closely their normalized density field matches the full dataset's and
/// how much of the occupied space they cover.

#include <cstdint>
#include <vector>

#include "util/box.hpp"
#include "workload/particle_buffer.hpp"

namespace spio {

/// A regular `nx × ny × nz` histogram of particle positions over a box,
/// normalized to a probability distribution (sums to 1 when non-empty).
class DensityField {
 public:
  /// \param domain region binned; positions outside are clamped to edge
  ///        bins.
  /// \param dims bins per axis (all >= 1).
  DensityField(const Box3& domain, const Vec3i& dims);

  /// Accumulate the first `count` particles of `buf` (default: all).
  void add(const ParticleBuffer& buf, std::size_t count = ~std::size_t{0});

  /// Finish accumulation: normalize to a distribution. Idempotent.
  void normalize();

  const Box3& domain() const { return domain_; }
  const Vec3i& dims() const { return dims_; }
  std::size_t bin_count() const { return values_.size(); }
  std::uint64_t samples() const { return samples_; }
  const std::vector<double>& values() const { return values_; }

  /// Root-mean-square difference between two normalized fields with the
  /// same dimensions.
  double rmse_against(const DensityField& other) const;

  /// Fraction of `reference`'s non-empty bins that are also non-empty
  /// here (spatial coverage of a subset against the full set).
  double coverage_of(const DensityField& reference) const;

 private:
  Box3 domain_;
  Vec3i dims_;
  std::vector<double> values_;
  std::uint64_t samples_ = 0;
  bool normalized_ = false;
};

}  // namespace spio
