# Empty dependencies file for lod_progressive.
# This may be replaced when dependencies are built.
