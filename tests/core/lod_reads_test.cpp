#include <gtest/gtest.h>

#include <set>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

/// Fixture writing one dataset shared by all LOD-read tests: 8 ranks,
/// 2 partitions, 4000 particles total, P=16, S=2.
class LodReads : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kPerRank = 500;
  static constexpr int kRanks = 8;

  static void SetUpTestSuite() {
    dir_ = new TempDir("spio-lodreads");
    const PatchDecomposition decomp(Box3({0, 0, 0}, {4, 4, 4}), {2, 2, 2});
    WriterConfig cfg;
    cfg.dir = dir_->path();
    cfg.factor = {2, 2, 1};  // 2 partitions -> 2 files of 2000 each
    cfg.lod = {16, 2.0};
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      const auto local = workload::uniform(
          Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
          stream_seed(3, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      write_dataset(comm, decomp, local, cfg);
    });
  }

  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  static TempDir* dir_;
};

TempDir* LodReads::dir_ = nullptr;

TEST_F(LodReads, LevelPrefixCountsFollowTheLaw) {
  const Dataset ds = Dataset::open(dir_->path());
  ASSERT_EQ(ds.file_count(), 2);
  const std::uint64_t total = ds.metadata().total_particles;
  ASSERT_EQ(total, 4000u);
  // With n=1, P=16, S=2: global prefixes 16, 48, 112, ... Each file holds
  // half the particles, so per-file prefixes are half of those (rounded
  // up).
  EXPECT_EQ(ds.level_prefix_count(0, 1, 1), 8u);
  EXPECT_EQ(ds.level_prefix_count(0, 2, 1), 24u);
  EXPECT_EQ(ds.level_prefix_count(0, 3, 1), 56u);
  // All levels = whole file.
  const int levels = ds.level_count(1);
  EXPECT_EQ(ds.level_prefix_count(0, levels, 1), 2000u);
  EXPECT_EQ(ds.level_prefix_count(0, -1, 1), 2000u);
}

TEST_F(LodReads, MoreReadersShiftLevelSizes) {
  const Dataset ds = Dataset::open(dir_->path());
  // n readers multiply every level size by n.
  EXPECT_EQ(ds.level_prefix_count(0, 1, 4), 4 * ds.level_prefix_count(0, 1, 1));
  EXPECT_LT(ds.level_count(8), ds.level_count(1));
}

TEST_F(LodReads, ReadingMoreLevelsIsMonotonic) {
  const Dataset ds = Dataset::open(dir_->path());
  std::uint64_t prev = 0;
  for (int l = 0; l <= ds.level_count(1); ++l) {
    const std::uint64_t n = ds.level_prefix_count(0, l, 1);
    EXPECT_GE(n, prev);
    prev = n;
  }
  EXPECT_EQ(prev, 2000u);
}

TEST_F(LodReads, PrefixReadsAreProperPrefixes) {
  // Progressive refinement: the first k particles of level L+1's read are
  // exactly level L's read — an application can append level after level.
  const Dataset ds = Dataset::open(dir_->path());
  const ParticleBuffer l2 = ds.read_data_file(0, 2, 1);
  const ParticleBuffer l4 = ds.read_data_file(0, 4, 1);
  ASSERT_LT(l2.size(), l4.size());
  EXPECT_EQ(std::memcmp(l2.bytes().data(), l4.bytes().data(), l2.byte_size()),
            0);
}

TEST_F(LodReads, PrefixBytesReadMatchesPrefixSize) {
  const Dataset ds = Dataset::open(dir_->path());
  ReadStats rs;
  const auto buf = ds.read_data_file(0, 3, 1, &rs);
  EXPECT_EQ(rs.bytes_read, buf.size() * Schema::uintah().record_size());
  EXPECT_LT(rs.bytes_read, 2000u * Schema::uintah().record_size());
}

TEST_F(LodReads, LodBoundedBoxQueryReturnsSubsetOfFullQuery) {
  const Dataset ds = Dataset::open(dir_->path());
  const Box3 q({0.5, 0.5, 0.5}, {3.5, 3.5, 3.5});
  const ParticleBuffer coarse = ds.query_box(q, /*levels=*/3);
  const ParticleBuffer full = ds.query_box(q);
  EXPECT_LT(coarse.size(), full.size());

  const auto idf = Schema::uintah().index_of("id");
  std::set<double> full_ids;
  for (std::size_t i = 0; i < full.size(); ++i)
    full_ids.insert(full.get_f64(i, idf));
  for (std::size_t i = 0; i < coarse.size(); ++i)
    EXPECT_TRUE(full_ids.count(coarse.get_f64(i, idf)))
        << "coarse particle missing from full query";
}

TEST_F(LodReads, LodPrefixIsRepresentative) {
  // Fig. 9's claim, quantified: the mean position of a 2-level prefix is
  // close to the mean position of the whole file.
  const Dataset ds = Dataset::open(dir_->path());
  const ParticleBuffer coarse = ds.read_data_file(0, 5, 1);
  const ParticleBuffer full = ds.read_data_file(0);
  auto mean_pos = [](const ParticleBuffer& b) {
    Vec3d m{0, 0, 0};
    for (std::size_t i = 0; i < b.size(); ++i) m += b.position(i);
    return m / static_cast<double>(b.size());
  };
  const Vec3d mc = mean_pos(coarse), mf = mean_pos(full);
  const Vec3d extent =
      ds.metadata().files[0].bounds.size();
  EXPECT_LT(std::abs(mc.x - mf.x), 0.15 * extent.x);
  EXPECT_LT(std::abs(mc.y - mf.y), 0.15 * extent.y);
  EXPECT_LT(std::abs(mc.z - mf.z), 0.15 * extent.z);
}

TEST_F(LodReads, ZeroLevelsReadsNothing) {
  const Dataset ds = Dataset::open(dir_->path());
  EXPECT_EQ(ds.read_data_file(0, 0, 1).size(), 0u);
  EXPECT_EQ(ds.query_box(Box3({0, 0, 0}, {4, 4, 4}), 0).size(), 0u);
}

TEST(LodReadsNoMeta, DatasetWithoutBoundsFallsBackToScan) {
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 1});
  TempDir dir("spio-nobounds");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {1, 1, 1};
  cfg.write_spatial_metadata = false;
  simmpi::run(4, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), 100,
        stream_seed(9, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * 100);
    write_dataset(comm, decomp, local, cfg);
  });
  const Dataset ds = Dataset::open(dir.path());
  EXPECT_FALSE(ds.metadata().has_bounds);
  const Box3 q({0, 0, 0}, {0.5, 0.5, 1});
  EXPECT_THROW(ds.query_box(q), ConfigError);
  ReadStats rs;
  const auto out = ds.query_box_scan_all(q, &rs);
  EXPECT_EQ(rs.files_opened, 4);          // must touch every file
  EXPECT_EQ(rs.particles_scanned, 400u);  // and scan every particle
  EXPECT_GT(out.size(), 0u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_TRUE(q.contains(out.position(i)));
}

TEST(ReaderTile, TilesAreDisjointAndCoverDomain) {
  const Box3 domain({0, 0, 0}, {6, 4, 2});
  for (const int n : {1, 2, 4, 6, 8}) {
    double vol = 0;
    for (int r = 0; r < n; ++r) {
      const Box3 t = reader_tile(domain, r, n);
      vol += t.volume();
      for (int s = r + 1; s < n; ++s)
        EXPECT_FALSE(t.overlaps(reader_tile(domain, s, n)));
    }
    EXPECT_NEAR(vol, domain.volume(), 1e-9);
  }
}

}  // namespace
}  // namespace spio
