# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_chaos[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_iosim[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
