file(REMOVE_RECURSE
  "../tools/spio_convert"
  "../tools/spio_convert.pdb"
  "CMakeFiles/spio_convert.dir/spio_convert.cpp.o"
  "CMakeFiles/spio_convert.dir/spio_convert.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spio_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
