#pragma once

/// \file aggregation_grid.hpp
/// The aggregation-grid (paper §3.1): a rectilinear partitioning of (a
/// region of) the simulation domain into axis-aligned aggregation
/// partitions. Every particle falls into exactly one partition; all
/// particles of a partition are aggregated onto one process and written to
/// one file.
///
/// Two constructions are provided:
///  * `aligned(...)`: partition boundaries coincide with simulation patch
///    boundaries (partition size = an integer multiple of the patch size),
///    so each process's whole patch lies in exactly one partition and the
///    writer can skip the per-particle binning scan (§3.3).
///  * the general constructor: uniform partitioning of an arbitrary box,
///    used by the adaptive scheme (§6) where the grid covers only the
///    occupied sub-region.

#include <vector>

#include "core/partition_factor.hpp"
#include "core/spatial_partition.hpp"
#include "util/box.hpp"
#include "workload/decomposition.hpp"

namespace spio {

class AggregationGrid final : public SpatialPartitioning {
 public:
  /// General construction: partition `region` uniformly into
  /// `dims.x × dims.y × dims.z` boxes.
  AggregationGrid(const Box3& region, const Vec3i& dims);

  /// Aligned construction: partition boundaries are chosen from the patch
  /// boundaries of `decomp`, grouping `factor.px × py × pz` patches per
  /// partition (the trailing partition on an axis takes the remainder when
  /// the factor does not divide the process grid).
  static AggregationGrid aligned(const PatchDecomposition& decomp,
                                 const PartitionFactor& factor);

  /// Overall region covered by the grid.
  Box3 region() const override;
  const Vec3i& dims() const { return dims_; }
  int partition_count() const override {
    return static_cast<int>(dims_.product());
  }

  /// Index of the partition containing `p`. Points outside the region are
  /// clamped to the nearest boundary partition (the global domain's upper
  /// face thus belongs to the last partition).
  int partition_of_point(const Vec3d& p) const override;

  /// Axis-aligned box of partition `idx`.
  Box3 partition_box(int idx) const override;

  Vec3i coord_of(int idx) const;
  int index_of(const Vec3i& c) const;

  /// True when every patch of `decomp` lies entirely within a single
  /// partition — the precondition for the writer's no-scan fast path.
  bool is_aligned_with(const PatchDecomposition& decomp) const;

  bool operator==(const AggregationGrid& o) const {
    return dims_ == o.dims_ && edges_[0] == o.edges_[0] &&
           edges_[1] == o.edges_[1] && edges_[2] == o.edges_[2];
  }

 private:
  AggregationGrid() = default;

  Vec3i dims_{1, 1, 1};
  /// Per-axis partition boundary coordinates, `dims_[a] + 1` entries each,
  /// strictly increasing.
  std::vector<double> edges_[3];
};

/// Select the aggregator rank for each of `nparts` partitions from
/// `nranks` ranks, spread uniformly over the rank space (§3.2): partition
/// i is owned by rank `floor(i * nranks / nparts)`. With 16 ranks and 4
/// partitions this yields ranks {0, 4, 8, 12} as in the paper.
/// Precondition: 1 <= nparts <= nranks. The result has no duplicates.
std::vector<int> select_aggregators_uniform(int nranks, int nparts);

/// Ablation alternative: pack aggregators into the low ranks {0, 1, ...}.
/// On machines with dedicated I/O nodes mapped to rank blocks (Mira) this
/// concentrates I/O traffic onto few I/O nodes; see bench/abl_placement.
std::vector<int> select_aggregators_packed(int nranks, int nparts);

}  // namespace spio
