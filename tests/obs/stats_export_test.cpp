/// \file stats_export_test.cpp
/// TelemetryExporter: SPIO_STATS spec parsing, the start/stop lifecycle
/// (flag transitions, idempotent stop, restartability, no thread leak),
/// the stats stream's shape (every line parses, seq consecutive, final
/// marker only on the last line), torn-line-free output under concurrent
/// metric hammering, and the queue_depth_max watermark reset per window.

#include "obs/stats_export.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/temp_dir.hpp"

namespace spio {
namespace {

using obs::JsonValue;
using obs::TelemetryExporter;
using namespace std::chrono_literals;

std::vector<std::string> lines_of(const std::filesystem::path& p) {
  std::ifstream f(p, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) lines.push_back(line);
  return lines;
}

/// Current thread count of this process (Linux; 0 elsewhere).
int process_thread_count() {
  std::ifstream f("/proc/self/status");
  std::string key;
  while (f >> key) {
    if (key == "Threads:") {
      int n = 0;
      f >> n;
      return n;
    }
    f.ignore(4096, '\n');
  }
  return 0;
}

/// Wait for `path` to accumulate at least `n` lines (bounded).
void await_lines(const std::filesystem::path& path, std::size_t n) {
  for (int spins = 0; spins < 500; ++spins) {
    if (lines_of(path).size() >= n) return;
    std::this_thread::sleep_for(10ms);
  }
}

class StatsExportTest : public ::testing::Test {
 protected:
  void TearDown() override {
    TelemetryExporter::instance().stop();
    obs::MetricsRegistry::global().reset();
  }
};

TEST_F(StatsExportTest, ParseSpecAcceptsIntervalColonPath) {
  std::chrono::milliseconds interval{0};
  std::string path;
  EXPECT_TRUE(
      TelemetryExporter::parse_spec("250:/tmp/stats.jsonl", interval, path));
  EXPECT_EQ(interval, 250ms);
  EXPECT_EQ(path, "/tmp/stats.jsonl");
  // Paths may themselves contain colons (only the first splits).
  EXPECT_TRUE(TelemetryExporter::parse_spec("5:a:b.jsonl", interval, path));
  EXPECT_EQ(interval, 5ms);
  EXPECT_EQ(path, "a:b.jsonl");
}

TEST_F(StatsExportTest, ParseSpecRejectsMalformedInput) {
  std::chrono::milliseconds interval{777};
  std::string path = "untouched";
  for (const char* bad :
       {"", "250", ":path", "0:path", "-5:path", "abc:path", "250:",
        "1e3:path", "99999999:path"}) {
    EXPECT_FALSE(TelemetryExporter::parse_spec(bad, interval, path))
        << "spec '" << bad << "' should be rejected";
  }
  EXPECT_EQ(interval, 777ms) << "outputs must stay untouched on failure";
  EXPECT_EQ(path, "untouched");
}

TEST_F(StatsExportTest, LifecycleFlagsAndIdempotentStop) {
  TempDir dir("spio-stats");
  auto& exp = TelemetryExporter::instance();
  EXPECT_FALSE(exp.running());
  EXPECT_FALSE(obs::telemetry_running());

  ASSERT_TRUE(exp.start(10ms, dir.file("s.jsonl").string()));
  EXPECT_TRUE(exp.running());
  EXPECT_TRUE(obs::telemetry_running());
  EXPECT_TRUE(obs::stats_enabled()) << "counter sites must publish now";
  EXPECT_FALSE(exp.start(10ms, dir.file("other.jsonl").string()))
      << "second start while running must be refused";

  exp.stop();
  EXPECT_FALSE(exp.running());
  EXPECT_FALSE(obs::telemetry_running());
  exp.stop();  // idempotent
  EXPECT_FALSE(exp.running());

  // The stream ends with exactly one final sample even when stop()
  // lands between ticks.
  const auto lines = lines_of(dir.file("s.jsonl"));
  ASSERT_FALSE(lines.empty());
  EXPECT_TRUE(JsonValue::parse(lines.back()).at("final").as_bool());
  for (std::size_t i = 0; i + 1 < lines.size(); ++i)
    EXPECT_FALSE(JsonValue::parse(lines[i]).at("final").as_bool())
        << "final marker before the last line (line " << i << ")";
}

TEST_F(StatsExportTest, RestartAfterStopStartsFreshStream) {
  TempDir dir("spio-stats");
  auto& exp = TelemetryExporter::instance();
  ASSERT_TRUE(exp.start(10ms, dir.file("one.jsonl").string()));
  await_lines(dir.file("one.jsonl"), 2);
  exp.stop();
  ASSERT_TRUE(exp.start(10ms, dir.file("two.jsonl").string()));
  await_lines(dir.file("two.jsonl"), 2);
  exp.stop();
  const auto two = lines_of(dir.file("two.jsonl"));
  ASSERT_GE(two.size(), 2u);
  EXPECT_EQ(JsonValue::parse(two.front()).at("seq").as_u64(), 0u)
      << "a restarted stream numbers samples from zero";
}

TEST_F(StatsExportTest, StartStopCyclesDoNotLeakThreads) {
  const int before = process_thread_count();
  if (before == 0) GTEST_SKIP() << "/proc/self/status unavailable";
  TempDir dir("spio-stats");
  auto& exp = TelemetryExporter::instance();
  for (int cycle = 0; cycle < 8; ++cycle) {
    ASSERT_TRUE(exp.start(5ms, dir.file("cycle.jsonl").string()));
    std::this_thread::sleep_for(15ms);
    exp.stop();
  }
  EXPECT_EQ(process_thread_count(), before)
      << "each stop() must join the sampler thread";
}

TEST_F(StatsExportTest, StreamShapeSeqAndTimestamps) {
  TempDir dir("spio-stats");
  auto& reg = obs::MetricsRegistry::global();
  auto& exp = TelemetryExporter::instance();
  ASSERT_TRUE(exp.start(10ms, dir.file("s.jsonl").string()));
  reg.counter("service.completed").add(7);
  reg.windowed("service.latency_us").observe(1500);
  await_lines(dir.file("s.jsonl"), 4);
  exp.stop();

  const auto lines = lines_of(dir.file("s.jsonl"));
  ASSERT_GE(lines.size(), 4u);
  double prev_ts = -1;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const JsonValue s = JsonValue::parse(lines[i]);
    EXPECT_EQ(s.at("format").as_string(), "spio.stats");
    EXPECT_EQ(s.at("version").as_u64(), 1u);
    EXPECT_EQ(s.at("seq").as_u64(), i) << "seq must be consecutive";
    const double ts = s.at("ts_us").as_double();
    EXPECT_GE(ts, prev_ts) << "timestamps must be non-decreasing";
    prev_ts = ts;
    EXPECT_EQ(s.at("interval_ms").as_u64(), 10u);
    // The counter and the windowed histogram both appear.
    EXPECT_GE(s.at("counters").at("service.completed").as_u64(), 7u);
    const JsonValue& w = s.at("windows").at("service.latency_us");
    EXPECT_GE(w.at("total_count").as_u64(), 1u);
    const double p50 = w.at("p50").as_double();
    EXPECT_LE(p50, w.at("p95").as_double());
    EXPECT_LE(w.at("p95").as_double(), w.at("p99").as_double());
  }
}

TEST_F(StatsExportTest, ConcurrentHammeringNeverTearsALine) {
  TempDir dir("spio-stats");
  auto& reg = obs::MetricsRegistry::global();
  auto& exp = TelemetryExporter::instance();
  ASSERT_TRUE(exp.start(5ms, dir.file("s.jsonl").string()));

  std::atomic<bool> go{true};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 4; ++t)
    hammers.emplace_back([&reg, &go] {
      auto& c = reg.counter("service.completed");
      auto& h = reg.windowed("service.latency_us");
      auto& g = reg.gauge("service.queue_depth");
      std::uint64_t v = 0;
      while (go.load(std::memory_order_relaxed)) {
        c.add(1);
        h.observe(100 + (v & 8191));
        g.set(static_cast<double>(v & 63));
        ++v;
      }
    });
  std::this_thread::sleep_for(150ms);
  go.store(false);
  for (auto& h : hammers) h.join();
  exp.stop();

  const auto lines = lines_of(dir.file("s.jsonl"));
  ASSERT_GE(lines.size(), 10u) << "expected many 5ms ticks in 150ms";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ASSERT_NO_THROW({
      const JsonValue s = JsonValue::parse(lines[i]);
      EXPECT_EQ(s.at("seq").as_u64(), i);
    }) << "line " << i << " is torn or malformed: " << lines[i];
  }
  EXPECT_TRUE(JsonValue::parse(lines.back()).at("final").as_bool());
}

TEST_F(StatsExportTest, QueueDepthMaxWatermarkResetsEachWindow) {
  TempDir dir("spio-stats");
  auto& reg = obs::MetricsRegistry::global();
  // Simulate what publish_queue_depth does: set + set_max.
  reg.gauge("service.queue_depth").set(3);
  reg.gauge("service.queue_depth_max").set_max(9);

  auto& exp = TelemetryExporter::instance();
  ASSERT_TRUE(exp.start(10ms, dir.file("s.jsonl").string()));
  await_lines(dir.file("s.jsonl"), 2);
  exp.stop();

  const auto lines = lines_of(dir.file("s.jsonl"));
  ASSERT_GE(lines.size(), 2u);
  const JsonValue first = JsonValue::parse(lines.front());
  EXPECT_EQ(first.at("derived").at("queue_depth_max").as_double(), 9.0)
      << "the first window reports the pre-start high water";
  // After the first sample the watermark collapses to the live depth;
  // with no further traffic every later window reports 3.
  const JsonValue second = JsonValue::parse(lines[1]);
  EXPECT_EQ(second.at("derived").at("queue_depth_max").as_double(), 3.0)
      << "watermark must reset to current depth after each sample";
  EXPECT_EQ(second.at("derived").at("queue_depth").as_double(), 3.0);
}

TEST_F(StatsExportTest, DerivedRatesComeFromWindowDeltas) {
  TempDir dir("spio-stats");
  auto& reg = obs::MetricsRegistry::global();
  // Pre-load history that must NOT count toward the first window's
  // rates: deltas start from the snapshot taken at start().
  reg.counter("reader.cache.hits").add(1'000'000);
  reg.counter("reader.cache.misses").add(1'000'000);

  auto& exp = TelemetryExporter::instance();
  ASSERT_TRUE(exp.start(10ms, dir.file("s.jsonl").string()));
  // During the run everything hits.
  for (int i = 0; i < 100; ++i) reg.counter("reader.cache.hits").add(1);
  await_lines(dir.file("s.jsonl"), 3);
  exp.stop();

  const auto lines = lines_of(dir.file("s.jsonl"));
  ASSERT_GE(lines.size(), 1u);
  // Some window saw the 100 pure hits: its hit rate is exactly 1.0
  // (the 50% cumulative history would drag a non-delta rate to ~0.5).
  bool saw_pure_hits = false;
  for (const auto& line : lines) {
    const JsonValue s = JsonValue::parse(line);
    if (s.at("derived").at("cache_hit_rate").as_double() == 1.0)
      saw_pure_hits = true;
  }
  EXPECT_TRUE(saw_pure_hits)
      << "cache_hit_rate must be computed from per-window deltas";
}

}  // namespace
}  // namespace spio
