#pragma once

/// \file shared_file.hpp
/// Single-shared-file baseline: all ranks write their particles into one
/// file at rank-order offsets (the MPI-IO collective pattern of [8, 12,
/// 26]). The layout is rank-contiguous, not spatially coherent; reads of a
/// spatial region must scan the whole file.

#include <filesystem>

#include "core/reader.hpp"
#include "simmpi/comm.hpp"
#include "workload/particle_buffer.hpp"

namespace spio::baselines {

/// Collective: ranks compute their byte offsets with an exclusive scan and
/// write concurrently into `<dir>/shared.bin`; rank 0 writes a header file
/// with the schema and per-rank counts.
void shared_write(simmpi::Comm& comm, const ParticleBuffer& local,
                  const std::filesystem::path& dir);

class SharedDataset {
 public:
  static SharedDataset open(const std::filesystem::path& dir);

  std::uint64_t total_particles() const;
  const Schema& schema() const { return schema_; }
  int writer_count() const { return static_cast<int>(counts_.size()); }

  /// Read the whole file.
  ParticleBuffer read_all(ReadStats* stats = nullptr) const;

  /// Read the contiguous slice written by one rank.
  ParticleBuffer read_rank_slice(int rank, ReadStats* stats = nullptr) const;

  /// Box query: scans the entire file.
  ParticleBuffer query_box(const Box3& box, ReadStats* stats = nullptr) const;

 private:
  SharedDataset(std::filesystem::path dir, Schema schema,
                std::vector<std::uint64_t> counts)
      : dir_(std::move(dir)),
        schema_(std::move(schema)),
        counts_(std::move(counts)) {}

  std::filesystem::path dir_;
  Schema schema_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace spio::baselines
