#include "obs/run_record.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace spio::obs {

namespace {

std::filesystem::path record_path(const std::filesystem::path& dir) {
  return dir / kRunRecordFile;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  SPIO_CHECK(f.good(), IoError,
             "cannot open run record '" << path.string() << "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void save(const std::filesystem::path& dir, const JsonValue& doc) {
  const auto path = record_path(dir);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  SPIO_CHECK(f.good(), IoError,
             "cannot write run record '" << path.string() << "'");
  f << doc.dump(2) << "\n";
  f.flush();
  SPIO_CHECK(f.good(), IoError,
             "failed writing run record '" << path.string() << "'");
}

JsonValue fresh_document() {
  JsonValue doc = JsonValue::object();
  doc.set("format", JsonValue::string("spio.run_record"));
  doc.set("version", JsonValue::number(std::int64_t{1}));
  return doc;
}

}  // namespace

JsonValue metrics_to_json(const MetricsRegistry::Snapshot& snapshot) {
  JsonValue out = JsonValue::object();
  for (const auto& [name, v] : snapshot.counters)
    out.set(name, JsonValue::number(v));
  for (const auto& [name, v] : snapshot.gauges)
    out.set(name, JsonValue::number(v));
  for (const auto& [name, h] : snapshot.histograms) {
    JsonValue hv = JsonValue::object();
    hv.set("count", JsonValue::number(h.count));
    hv.set("sum", JsonValue::number(h.sum));
    JsonValue buckets = JsonValue::array();
    for (const auto& [bound, n] : h.buckets) {
      JsonValue pair = JsonValue::array();
      pair.push_back(JsonValue::number(bound));
      pair.push_back(JsonValue::number(n));
      buckets.push_back(std::move(pair));
    }
    hv.set("buckets", std::move(buckets));
    out.set(name, std::move(hv));
  }
  return out;
}

void save_write_record(const std::filesystem::path& dataset_dir,
                       const WriteRunInfo& info,
                       const MetricsRegistry::Snapshot& metrics) {
  JsonValue doc = fresh_document();

  JsonValue w = JsonValue::object();
  w.set("ranks", JsonValue::number(std::int64_t{info.ranks}));
  w.set("schema_bytes", JsonValue::number(info.schema_bytes));
  w.set("partition_count",
        JsonValue::number(std::int64_t{info.partition_count}));

  JsonValue cfg = JsonValue::object();
  for (const auto& [k, v] : info.config) cfg.set(k, JsonValue::string(v));
  w.set("config", std::move(cfg));

  JsonValue phases = JsonValue::array();
  for (const WritePhaseSeconds& p : info.phases) {
    JsonValue row = JsonValue::object();
    row.set("rank", JsonValue::number(std::int64_t{p.rank}));
    row.set("setup", JsonValue::number(p.setup));
    row.set("meta_exchange", JsonValue::number(p.meta_exchange));
    row.set("particle_exchange", JsonValue::number(p.particle_exchange));
    row.set("reorder", JsonValue::number(p.reorder));
    row.set("file_io", JsonValue::number(p.file_io));
    row.set("metadata_io", JsonValue::number(p.metadata_io));
    phases.push_back(std::move(row));
  }
  w.set("phase_seconds", std::move(phases));

  JsonValue totals = JsonValue::object();
  totals.set("particles_sent", JsonValue::number(info.totals.particles_sent));
  totals.set("bytes_sent", JsonValue::number(info.totals.bytes_sent));
  totals.set("particles_written",
             JsonValue::number(info.totals.particles_written));
  totals.set("bytes_written", JsonValue::number(info.totals.bytes_written));
  totals.set("files_written", JsonValue::number(info.totals.files_written));
  w.set("totals", std::move(totals));

  JsonValue lb = JsonValue::object();
  lb.set("partition_particles_max",
         JsonValue::number(info.load_balance.partition_particles_max));
  lb.set("partition_particles_mean",
         JsonValue::number(info.load_balance.partition_particles_mean));
  lb.set("imbalance", JsonValue::number(info.load_balance.imbalance));
  w.set("load_balance", std::move(lb));

  w.set("counters", metrics_to_json(metrics));

  JsonValue env = JsonValue::object();
  env.set("transport", JsonValue::string("simmpi"));
  env.set("threads_as_ranks", JsonValue::boolean(true));
  w.set("environment", std::move(env));

  doc.set("write", std::move(w));
  save(dataset_dir, doc);
}

void save_read_record(const std::filesystem::path& dataset_dir,
                      const ReadRunInfo& info,
                      const MetricsRegistry::Snapshot& metrics) {
  // Preserve the writer's section when one exists; a malformed existing
  // record is replaced rather than propagated.
  JsonValue doc = fresh_document();
  if (run_record_present(dataset_dir)) {
    try {
      doc = load_run_record(dataset_dir);
    } catch (const Error&) {
      doc = fresh_document();
    }
  }

  JsonValue r = JsonValue::object();
  r.set("ranks", JsonValue::number(std::int64_t{info.ranks}));
  r.set("levels", JsonValue::number(std::int64_t{info.levels}));

  JsonValue phases = JsonValue::array();
  for (const ReadPhaseSeconds& p : info.phases) {
    JsonValue row = JsonValue::object();
    row.set("rank", JsonValue::number(std::int64_t{p.rank}));
    row.set("file_io", JsonValue::number(p.file_io));
    row.set("exchange", JsonValue::number(p.exchange));
    phases.push_back(std::move(row));
  }
  r.set("phase_seconds", std::move(phases));

  JsonValue totals = JsonValue::object();
  totals.set("files_opened", JsonValue::number(info.totals.files_opened));
  totals.set("bytes_read", JsonValue::number(info.totals.bytes_read));
  totals.set("particles_scanned",
             JsonValue::number(info.totals.particles_scanned));
  totals.set("particles_returned",
             JsonValue::number(info.totals.particles_returned));
  totals.set("read_amplification",
             JsonValue::number(info.totals.read_amplification));
  r.set("totals", std::move(totals));

  r.set("counters", metrics_to_json(metrics));

  doc.set("read", std::move(r));
  save(dataset_dir, doc);
}

bool run_record_present(const std::filesystem::path& dataset_dir) {
  std::error_code ec;
  return std::filesystem::exists(record_path(dataset_dir), ec);
}

JsonValue load_run_record(const std::filesystem::path& dataset_dir) {
  JsonValue doc = JsonValue::parse(slurp(record_path(dataset_dir)));
  SPIO_CHECK(doc.is_object() && doc.contains("format") &&
                 doc.at("format").is_string() &&
                 doc.at("format").as_string() == "spio.run_record",
             FormatError,
             "'" << record_path(dataset_dir).string()
                 << "' is not an spio run record");
  return doc;
}

}  // namespace spio::obs
