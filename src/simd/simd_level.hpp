#pragma once

/// \file simd_level.hpp
/// Runtime ISA dispatch for the SIMD kernel engine (docs/PERF.md "SIMD
/// kernels"). The kernel TU is compiled twice — once at the baseline
/// ISA (SSE2, implied by x86-64) and once at `-mavx2` — and the level
/// chosen at runtime picks between them:
///
///   * `kAVX2`   — 4-lane f64 vectors (requires CPU support *and* a
///                 toolchain that could compile the AVX2 TU),
///   * `kSSE2`   — 2-lane f64 vectors, the x86-64 baseline,
///   * `kScalar` — no SIMD path; callers fall back to the fused scalar
///                 kernels (read_detail::filter_box etc.), which remain
///                 the byte-identity oracles.
///
/// `SPIO_SIMD` caps the level from the environment: `off`/`scalar`/`0`
/// force the scalar fallback everywhere (the differential suites run
/// once per path), `sse2` caps at SSE2, `avx2`/unset means "whatever
/// the CPU has". Tests can additionally cap the level in-process with
/// `ScopedLevelCap`; the effective level is always
/// min(CPU, SPIO_SIMD, cap).

#include <cstdint>

namespace spio::simd {

enum class Level : std::uint8_t {
  kScalar = 0,
  kSSE2 = 1,
  kAVX2 = 2,
};

/// Highest level this CPU + build supports (cached after first call).
Level detected_level();

/// min(detected, SPIO_SIMD, test cap) — what the kernels dispatch on.
Level active_level();

/// "scalar" / "sse2" / "avx2" — recorded in BENCH_readpath.json.
const char* level_name(Level level);

/// RAII cap for tests: while alive, `active_level()` never exceeds
/// `cap` (it still never exceeds the CPU's or `SPIO_SIMD`'s level, so a
/// suite forced scalar by the environment stays scalar). Not
/// thread-safe — install from the main thread while no queries run.
class ScopedLevelCap {
 public:
  explicit ScopedLevelCap(Level cap);
  ~ScopedLevelCap();
  ScopedLevelCap(const ScopedLevelCap&) = delete;
  ScopedLevelCap& operator=(const ScopedLevelCap&) = delete;

 private:
  int prev_;
};

}  // namespace spio::simd
