#pragma once

/// \file windowed_histogram.hpp
/// Log-linear histogram over a sliding window of epoch sub-windows, for
/// live latency quantiles (docs/OBSERVABILITY.md "Live telemetry").
///
/// The cumulative log2 `Histogram` answers "what happened since the
/// process started"; an operator of a live service needs "what is the
/// p99 *right now*". `WindowedHistogram` keeps a ring of `kWindows`
/// sub-windows; `observe()` lands in the current sub-window with relaxed
/// atomic adds only (no locks, safe from any thread), and the telemetry
/// exporter calls `rotate()` once per sampling tick, which zeroes the
/// oldest sub-window and makes it current. Quantiles are computed over
/// the merge of all sub-windows, so they describe roughly the last
/// `kWindows` ticks and old traffic ages out instead of being averaged
/// into eternity.
///
/// Bucket layout is log-linear: exact buckets for values 0..7, then 8
/// sub-buckets per power of two (`kSubBits` = 3 mantissa bits kept), for
/// a worst-case relative quantile error of 1/8 — tight enough that a
/// p99 of 4 ms reads as at most ~4.5 ms — across the full u64 range in
/// 496 buckets. `quantile()` returns the *upper* bound of the bucket
/// holding the rank, so estimates never under-report a latency.
///
/// Cumulative `total_count()`/`total_sum()` are unaffected by rotation;
/// the differential test pins them against the log2 `Histogram` fed the
/// same samples.
///
/// Concurrency: `observe()` may race with `rotate()`; an observation
/// landing in the sub-window being recycled is attributed to the new
/// epoch (or dropped from the merged window for one tick). That slop is
/// bounded by one sample per racing thread per tick and is irrelevant at
/// the sampling intervals involved; the cumulative totals never lose
/// counts. Only one thread may call `rotate()`/`reset()` at a time.

#include <array>
#include <atomic>
#include <cstdint>

namespace spio::obs {

class WindowedHistogram {
 public:
  /// Mantissa bits preserved per octave: 2^3 = 8 sub-buckets per power
  /// of two, worst-case relative error 1/8.
  static constexpr std::size_t kSubBits = 3;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  /// 0..7 exact + 8 sub-buckets for each of exponents 3..63.
  static constexpr std::size_t kBuckets = (64 - kSubBits + 1) * kSubBuckets;
  /// Sub-windows in the ring; the merged window spans the last kWindows
  /// exporter ticks.
  static constexpr std::size_t kWindows = 8;

  /// Record one value. Lock-free: one bucket add + window and cumulative
  /// tallies, all relaxed.
  void observe(std::uint64_t v) {
    const std::size_t idx = bucket_index(v);
    Window& w = windows_[cur_.load(std::memory_order_relaxed)];
    w.buckets[idx].fetch_add(1, std::memory_order_relaxed);
    w.count.fetch_add(1, std::memory_order_relaxed);
    w.sum.fetch_add(v, std::memory_order_relaxed);
    total_count_.fetch_add(1, std::memory_order_relaxed);
    total_sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Advance the epoch: zero the oldest sub-window and make it current.
  /// Called by the telemetry exporter once per tick; single caller only.
  void rotate();

  /// Merged view over all live sub-windows.
  struct Merged {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
  };
  Merged merged() const;

  /// Quantile over the merged window: upper bound of the bucket holding
  /// rank floor(q * count) (0 when the window is empty). For any sample
  /// set the estimate `e` satisfies `exact <= e <= exact + exact/8 + 1`.
  std::uint64_t quantile(double q) const;

  /// Cumulative tallies since construction/reset; rotation never touches
  /// these (the differential oracle against the log2 Histogram).
  std::uint64_t total_count() const {
    return total_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_sum() const {
    return total_sum_.load(std::memory_order_relaxed);
  }

  /// Zero everything — every sub-window and the cumulative tallies.
  /// Single caller only, like rotate().
  void reset();

  /// Bucket of value `v`: exact for v < 8, else top kSubBits mantissa
  /// bits after the leading one select the sub-bucket within the octave.
  static std::size_t bucket_index(std::uint64_t v);
  /// Smallest value mapping to bucket `idx`.
  static std::uint64_t bucket_lower(std::size_t idx);
  /// Largest value mapping to bucket `idx` (inclusive).
  static std::uint64_t bucket_upper(std::size_t idx);

 private:
  struct Window {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };

  std::array<Window, kWindows> windows_{};
  std::atomic<std::size_t> cur_{0};
  std::atomic<std::uint64_t> total_count_{0};
  std::atomic<std::uint64_t> total_sum_{0};
};

}  // namespace spio::obs
