#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "core/distributed_read.hpp"
#include "core/reader.hpp"
#include "core/validate.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

/// The largest functional run in the suite: 128 writer ranks through the
/// full pipeline, then readers at several scales — the shape of a real
/// production job, shrunk to thread scale.
TEST(ScaleIntegration, HundredTwentyEightRanksEndToEnd) {
  constexpr int kWriters = 128;
  constexpr std::uint64_t kPerRank = 256;
  const PatchDecomposition decomp(Box3({0, 0, 0}, {8, 4, 4}), {8, 4, 4});
  TempDir dir("spio-scale");

  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 2};  // 16 files of 8 ranks each

  WriteStats job{};
  std::mutex mu;
  simmpi::run(kWriters, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
        stream_seed(128, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * kPerRank);
    const WriteStats s = write_dataset(comm, decomp, local, cfg);
    std::lock_guard lk(mu);
    job = WriteStats::max_over(job, s);
  });

  EXPECT_EQ(job.files_written, 16);
  EXPECT_EQ(job.particles_written, kWriters * kPerRank);
  EXPECT_TRUE(job.used_aligned_fast_path);

  // Deep validation of all 16 files.
  const auto report = validate_dataset(dir.path(), /*deep=*/true);
  ASSERT_TRUE(report.ok()) << report.errors.front();

  // Post-processing at three very different scales.
  for (const int readers : {3, 16, 64}) {
    const PatchDecomposition rdecomp =
        PatchDecomposition::for_ranks(Box3({0, 0, 0}, {8, 4, 4}), readers);
    std::atomic<std::uint64_t> total{0};
    simmpi::run(readers, [&](simmpi::Comm& comm) {
      total += distributed_read(comm, rdecomp, dir.path()).size();
    });
    EXPECT_EQ(total.load(), kWriters * kPerRank) << readers << " readers";
  }
}

/// Mixed-size ranks (including empty ones) at 64 ranks with adaptivity.
TEST(ScaleIntegration, SixtyFourRanksAdaptiveWithEmptyRanks) {
  constexpr int kRanks = 64;
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 4});
  TempDir dir("spio-scale");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 2};
  cfg.adaptive = true;

  std::uint64_t expected = 0;
  for (int r = 0; r < kRanks; ++r) expected += (r % 3 == 0) ? 0 : 100 + r;

  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    const int r = comm.rank();
    const std::uint64_t n = (r % 3 == 0) ? 0 : 100 + static_cast<std::uint64_t>(r);
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(r), n,
        stream_seed(64, static_cast<std::uint64_t>(r)),
        static_cast<std::uint64_t>(r) * 1000);
    write_dataset(comm, decomp, local, cfg);
  });

  const Dataset ds = Dataset::open(dir.path());
  EXPECT_EQ(ds.metadata().total_particles, expected);
  EXPECT_TRUE(validate_dataset(dir.path(), true).ok());
}

}  // namespace
}  // namespace spio
