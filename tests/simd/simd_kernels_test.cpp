/// \file simd_kernels_test.cpp
/// The SIMD kernel engine's contract, pinned:
///   1. `simd::filter_box` / `filter_box_ranges` / `bin_by_owner` are
///      byte-identical to the scalar `*_reference` oracles at every
///      compiled ISA level — including particles exactly on box faces,
///      NaN and ±inf coordinates, and NaN attribute values,
///   2. the `read_detail::*_dispatch` wrappers match the oracles whether
///      they take the SIMD path or the scalar fallback (so the whole
///      suite is meaningful under `SPIO_SIMD=off`, where every SIMD try
///      must return false),
///   3. `ReadEngine::fetch` builds the SoA position mirror on a leader
///      miss, serves the same mirror on warm hits, and skips it when
///      dispatch is scalar,
///   4. the mirror itself is a faithful SoA copy with NaN lane padding.
///
/// The ctest registration runs this binary twice: once under the host's
/// best ISA and once with `SPIO_SIMD=off` (label `simd`, see
/// tests/CMakeLists.txt), so both sides of every dispatch are exercised
/// by the same assertions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <limits>
#include <vector>

#include "core/read_engine.hpp"
#include "simd/kernels.hpp"
#include "simd/position_mirror.hpp"
#include "simd/simd_level.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

constexpr double kQNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

bool same_bytes(std::span<const std::byte> a, std::span<const std::byte> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

/// The ISA levels dispatch can actually reach in this process — capped
/// by the CPU, the build, and `SPIO_SIMD`. Empty means every SIMD try
/// must report false (scalar-fallback mode).
std::vector<simd::Level> reachable_levels() {
  std::vector<simd::Level> levels;
  const auto top = static_cast<int>(simd::active_level());
  if (top >= static_cast<int>(simd::Level::kSSE2))
    levels.push_back(simd::Level::kSSE2);
  if (top >= static_cast<int>(simd::Level::kAVX2))
    levels.push_back(simd::Level::kAVX2);
  return levels;
}

Schema random_schema(Xoshiro256& rng) {
  std::vector<FieldDesc> fields{{"position", FieldType::kF64, 3}};
  const std::size_t extra = 1 + rng.uniform_index(3);
  for (std::size_t i = 0; i < extra; ++i)
    fields.push_back({"f" + std::to_string(i),
                      rng.uniform_index(2) == 0 ? FieldType::kF64
                                                : FieldType::kF32,
                      static_cast<std::uint32_t>(1 + rng.uniform_index(3))});
  return Schema(fields);
}

Box3 random_box(Xoshiro256& rng) {
  Box3 box;
  for (int a = 0; a < 3; ++a) {
    const double lo = rng.uniform(-0.1, 1.1);
    const double hi = rng.uniform(-0.1, 1.1);
    box.lo[a] = std::min(lo, hi);
    box.hi[a] = std::max(lo, hi);
  }
  return box;
}

std::shared_ptr<const PositionMirror> mirror_of(const ParticleBuffer& buf) {
  return PositionMirror::build(buf.bytes(), buf.schema().record_size(),
                               buf.schema().offset(0));
}

/// Particles probing every boundary the box predicate can disagree on:
/// faces (>= lo in, >= hi out), corners, -0.0 vs 0.0, NaN in each
/// coordinate, ±inf. `box` must have lo > -1 and hi < 2 so the inside/
/// outside fillers land where intended.
ParticleBuffer boundary_particles(const Schema& schema, const Box3& box,
                                  Xoshiro256& rng) {
  ParticleBuffer buf =
      workload::uniform(schema, Box3::unit(), 64, rng.next(), 0);
  std::vector<Vec3d> probes;
  const Vec3d mid = (box.lo + box.hi) * 0.5;
  for (int a = 0; a < 3; ++a) {
    Vec3d on_lo = mid, on_hi = mid, below = mid, nan_a = mid, pinf = mid,
          ninf = mid;
    on_lo[a] = box.lo[a];                      // face: included
    on_hi[a] = box.hi[a];                      // face: excluded
    below[a] = std::nextafter(box.lo[a], -2.0);  // just outside
    nan_a[a] = kQNaN;                          // excluded
    pinf[a] = kInf;                            // excluded
    ninf[a] = -kInf;                           // excluded
    probes.insert(probes.end(), {on_lo, on_hi, below, nan_a, pinf, ninf});
  }
  probes.push_back(box.lo);                 // corner: included
  probes.push_back(box.hi);                 // corner: excluded
  probes.push_back({-0.0, mid.y, mid.z});   // -0.0 >= 0.0 when lo.x == 0
  probes.push_back({kQNaN, kQNaN, kQNaN});  // all-NaN
  for (std::size_t i = 0; i < probes.size() && i < buf.size(); ++i)
    buf.set_position(i, probes[i]);
  return buf;
}

// ---- 1. SIMD kernels vs reference oracles ------------------------------

TEST(SimdKernels, FilterBoxMatchesReferenceOnBoundariesNaNAndInf) {
  Xoshiro256 rng(601);
  // lo.x == 0 so the -0.0 probe sits exactly on a face.
  const Box3 box({0.0, 0.25, 0.25}, {0.75, 0.75, 0.75});
  for (int round = 0; round < 10; ++round) {
    const Schema schema = random_schema(rng);
    const ParticleBuffer buf = boundary_particles(schema, box, rng);
    const auto mirror = mirror_of(buf);

    ParticleBuffer ref(schema);
    const auto nref =
        read_detail::filter_box_reference(buf.bytes(), schema, box, ref);

    for (const simd::Level level : reachable_levels()) {
      simd::ScopedLevelCap cap(level);
      ParticleBuffer out(schema);
      std::uint64_t kept = 0;
      ASSERT_TRUE(simd::filter_box(*mirror, buf.bytes(), schema.record_size(),
                                   box, out, &kept))
          << simd::level_name(level);
      EXPECT_EQ(kept, nref) << simd::level_name(level);
      EXPECT_TRUE(same_bytes(ref.bytes(), out.bytes()))
          << simd::level_name(level) << " round " << round;
    }
    if (reachable_levels().empty()) {
      ParticleBuffer out(schema);
      EXPECT_FALSE(simd::filter_box(*mirror, buf.bytes(),
                                    schema.record_size(), box, out, nullptr));
      EXPECT_EQ(out.size(), 0u);
    }
  }
}

TEST(SimdKernels, FilterBoxMatchesReferenceOnRandomInputs) {
  Xoshiro256 rng(602);
  for (int round = 0; round < 15; ++round) {
    const Schema schema = random_schema(rng);
    auto buf = workload::uniform(schema, Box3::unit(),
                                 500 + rng.uniform_index(1500), rng.next(), 0);
    for (int k = 0; k < 5; ++k)
      buf.set_position(rng.uniform_index(buf.size()), {kQNaN, 0.5, 0.5});
    const Box3 box = random_box(rng);
    const auto mirror = mirror_of(buf);

    ParticleBuffer ref(schema);
    const auto nref =
        read_detail::filter_box_reference(buf.bytes(), schema, box, ref);
    for (const simd::Level level : reachable_levels()) {
      simd::ScopedLevelCap cap(level);
      ParticleBuffer out(schema);
      std::uint64_t kept = 0;
      ASSERT_TRUE(simd::filter_box(*mirror, buf.bytes(), schema.record_size(),
                                   box, out, &kept));
      EXPECT_EQ(kept, nref);
      EXPECT_TRUE(same_bytes(ref.bytes(), out.bytes()))
          << simd::level_name(level) << " round " << round;
    }
  }
}

TEST(SimdKernels, FilterBoxRangesMatchesReferenceIncludingNaNAndEdges) {
  Xoshiro256 rng(603);
  for (int round = 0; round < 15; ++round) {
    const Schema schema = random_schema(rng);
    auto buf = workload::uniform(schema, Box3::unit(), 1000, rng.next(), 0);

    std::vector<RangeFilter> filters;
    const std::size_t nf = 1 + rng.uniform_index(2);
    for (std::size_t k = 0; k < nf; ++k) {
      const std::size_t field = 1 + rng.uniform_index(schema.field_count() - 1);
      const FieldDesc& fd = schema.fields()[field];
      const std::uint32_t comp =
          static_cast<std::uint32_t>(rng.uniform_index(fd.components));
      const double a = rng.uniform(0, 1), b = rng.uniform(0, 1);
      filters.push_back({field, comp, std::min(a, b), std::max(a, b)});
    }
    // Edge values the predicate must agree on: exactly lo and hi (both
    // pass `!(v < lo || v > hi)`), NaN (passes), +inf (fails).
    const RangeFilter& rf = filters[0];
    const bool f64 = schema.fields()[rf.field].type == FieldType::kF64;
    const double edges[] = {rf.lo, rf.hi, kQNaN, kInf};
    for (int k = 0; k < 12; ++k) {
      const std::size_t i = rng.uniform_index(buf.size());
      const double v = edges[k % 4];
      if (f64)
        buf.set_f64(i, rf.field, rf.component, v);
      else
        buf.set_f32(i, rf.field, rf.component, static_cast<float>(v));
    }
    const Box3 box = random_box(rng);
    const auto mirror = mirror_of(buf);

    ParticleBuffer ref(schema);
    const auto nref = read_detail::filter_box_ranges_reference(
        buf.bytes(), schema, box, filters, ref);
    for (const simd::Level level : reachable_levels()) {
      simd::ScopedLevelCap cap(level);
      std::vector<simd::RangePred> preds;
      for (const RangeFilter& f : filters) {
        const FieldDesc& fd = schema.fields()[f.field];
        preds.push_back({schema.offset(f.field) +
                             f.component * field_type_size(fd.type),
                         fd.type == FieldType::kF64, f.lo, f.hi});
      }
      ParticleBuffer out(schema);
      std::uint64_t kept = 0;
      ASSERT_TRUE(simd::filter_box_ranges(*mirror, buf.bytes(),
                                          schema.record_size(), box, preds,
                                          out, &kept));
      EXPECT_EQ(kept, nref);
      EXPECT_TRUE(same_bytes(ref.bytes(), out.bytes()))
          << simd::level_name(level) << " round " << round;
    }
  }
}

TEST(SimdKernels, BinByOwnerMatchesReferenceIncludingClampedPositions) {
  Xoshiro256 rng(604);
  for (const int ranks : {1, 2, 5, 8, 12}) {
    const Schema schema = random_schema(rng);
    auto buf = workload::uniform(schema, Box3::unit(), 2000, rng.next(), 0);
    // Positions the point location must clamp identically: exactly on
    // domain.hi (maps to the last patch), outside, NaN and ±inf (now
    // well-defined: NaN clamps to cell 0).
    const Vec3d specials[] = {{1.0, 1.0, 1.0}, {1.0, 0.5, 0.5},
                              {-0.5, 0.5, 0.5}, {2.0, 0.5, 0.5},
                              {kQNaN, 0.5, 0.5}, {kQNaN, kQNaN, kQNaN},
                              {kInf, 0.5, 0.5},  {-kInf, 0.5, 0.5}};
    for (std::size_t k = 0; k < std::size(specials); ++k)
      buf.set_position(k, specials[k]);
    const PatchDecomposition decomp =
        PatchDecomposition::for_ranks(Box3::unit(), ranks);
    const auto mirror = mirror_of(buf);

    std::vector<ParticleBuffer> ref(static_cast<std::size_t>(ranks),
                                    ParticleBuffer(schema));
    read_detail::bin_by_owner_reference(buf.bytes(), schema, decomp, ref);

    for (const simd::Level level : reachable_levels()) {
      simd::ScopedLevelCap cap(level);
      std::vector<ParticleBuffer> out(static_cast<std::size_t>(ranks),
                                      ParticleBuffer(schema));
      ASSERT_TRUE(simd::bin_by_owner(*mirror, buf.bytes(),
                                     schema.record_size(), decomp, out));
      for (int r = 0; r < ranks; ++r)
        EXPECT_TRUE(same_bytes(ref[static_cast<std::size_t>(r)].bytes(),
                               out[static_cast<std::size_t>(r)].bytes()))
            << simd::level_name(level) << " ranks " << ranks << " bin " << r;
    }
  }
}

// ---- 2. dispatch wrappers ----------------------------------------------

TEST(SimdDispatch, DispatchMatchesReferenceWithAndWithoutMirror) {
  Xoshiro256 rng(605);
  const Schema schema = random_schema(rng);
  auto buf = workload::uniform(schema, Box3::unit(), 3000, rng.next(), 0);
  for (int k = 0; k < 5; ++k)
    buf.set_position(rng.uniform_index(buf.size()), {kQNaN, 0.5, 0.5});
  const Box3 box({0.1, 0.1, 0.1}, {0.6, 0.9, 0.9});
  const auto mirror = mirror_of(buf);

  ParticleBuffer ref(schema);
  const auto nref =
      read_detail::filter_box_reference(buf.bytes(), schema, box, ref);

  for (const PositionMirror* m : {mirror.get(),
                                  static_cast<const PositionMirror*>(nullptr)}) {
    ParticleBuffer out(schema);
    const auto n =
        read_detail::filter_box_dispatch(buf.bytes(), schema, box, m, out);
    EXPECT_EQ(n, nref);
    EXPECT_TRUE(same_bytes(ref.bytes(), out.bytes()))
        << (m ? "mirror" : "fallback");
  }

  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), 6);
  std::vector<ParticleBuffer> bref(6, ParticleBuffer(schema));
  read_detail::bin_by_owner_reference(buf.bytes(), schema, decomp, bref);
  for (const PositionMirror* m : {mirror.get(),
                                  static_cast<const PositionMirror*>(nullptr)}) {
    std::vector<ParticleBuffer> bout(6, ParticleBuffer(schema));
    read_detail::bin_by_owner_dispatch(buf.bytes(), schema, decomp, m, bout);
    for (int r = 0; r < 6; ++r)
      EXPECT_TRUE(same_bytes(bref[static_cast<std::size_t>(r)].bytes(),
                             bout[static_cast<std::size_t>(r)].bytes()))
          << (m ? "mirror" : "fallback") << " bin " << r;
  }
}

TEST(SimdDispatch, StaleMirrorIsRejectedNotTrusted) {
  Xoshiro256 rng(606);
  const Schema schema = random_schema(rng);
  const auto big = workload::uniform(schema, Box3::unit(), 512, rng.next(), 0);
  const auto small = workload::uniform(schema, Box3::unit(), 256, rng.next(), 0);
  const auto stale = mirror_of(big);  // 512 records, bytes have 256
  ParticleBuffer out(schema);
  EXPECT_FALSE(simd::filter_box(*stale, small.bytes(), schema.record_size(),
                                Box3::unit(), out, nullptr));
  EXPECT_EQ(out.size(), 0u);
}

// ---- 3. level selection ------------------------------------------------

TEST(SimdLevel, ScopedCapNeverRaisesAboveActive) {
  const simd::Level active = simd::active_level();
  {
    simd::ScopedLevelCap cap(simd::Level::kScalar);
    EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
    {
      // A nested wider cap cannot exceed the environment's level.
      simd::ScopedLevelCap inner(simd::Level::kAVX2);
      EXPECT_LE(static_cast<int>(simd::active_level()),
                static_cast<int>(active));
    }
    EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  }
  EXPECT_EQ(simd::active_level(), active);
  EXPECT_LE(static_cast<int>(active),
            static_cast<int>(simd::detected_level()));
}

TEST(SimdLevel, ScalarCapForcesKernelFallback) {
  Xoshiro256 rng(607);
  const Schema schema = random_schema(rng);
  const auto buf = workload::uniform(schema, Box3::unit(), 128, rng.next(), 0);
  const auto mirror = mirror_of(buf);
  simd::ScopedLevelCap cap(simd::Level::kScalar);
  ParticleBuffer out(schema);
  EXPECT_FALSE(simd::filter_box(*mirror, buf.bytes(), schema.record_size(),
                                Box3::unit(), out, nullptr));
}

TEST(SimdLevel, LevelNamesAreStable) {
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kSSE2), "sse2");
  EXPECT_STREQ(simd::level_name(simd::Level::kAVX2), "avx2");
}

// ---- 4. the mirror itself ----------------------------------------------

TEST(PositionMirrorTest, MirrorsPositionsAndPadsWithNaN) {
  Xoshiro256 rng(608);
  const Schema schema = random_schema(rng);
  for (const std::size_t n : {0ul, 1ul, 7ul, 8ul, 13ul, 256ul}) {
    const auto buf = workload::uniform(schema, Box3::unit(), n, rng.next(), 0);
    const auto m = PositionMirror::build(buf.bytes(), schema.record_size(),
                                         schema.offset(0));
    ASSERT_EQ(m->size(), n);
    EXPECT_EQ(m->byte_size(), PositionMirror::bytes_for_count(n));
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3d p = buf.position(i);
      EXPECT_EQ(m->x()[i], p.x);
      EXPECT_EQ(m->y()[i], p.y);
      EXPECT_EQ(m->z()[i], p.z);
    }
    // Padding lanes are NaN so they can never satisfy a box compare.
    const std::size_t padded = m->byte_size() / (3 * sizeof(double));
    EXPECT_GE(padded, std::max<std::size_t>(n, 1));
    for (std::size_t i = n; i < padded; ++i) {
      EXPECT_TRUE(std::isnan(m->x()[i]));
      EXPECT_TRUE(std::isnan(m->y()[i]));
      EXPECT_TRUE(std::isnan(m->z()[i]));
    }
  }
}

// ---- 5. engine integration ---------------------------------------------

TEST(SimdEngine, FetchBuildsCachesAndServesTheMirror) {
  TempDir dir("spio-simd-fetch");
  const std::size_t rec = 32;  // f64x3 position at offset 0 + 8 pad bytes
  const std::size_t n = 100;
  const auto path = dir.path() / "records.bin";
  {
    std::vector<double> payload(n * 4);
    Xoshiro256 rng(609);
    for (auto& v : payload) v = rng.uniform(0, 1);
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size() * sizeof(double)));
  }

  ReadEngine& eng = ReadEngine::instance();
  const std::uint64_t prev_budget = eng.cache_budget();
  eng.set_cache_budget(8u << 20);
  eng.clear_cache();

  const FileSig sig = eng.probe(path);
  const ReadEngine::MirrorSpec spec{rec, 0};
  auto cold = eng.fetch(path, n * rec, sig, &spec);
  EXPECT_EQ(cold.outcome, CacheOutcome::kMiss);
  auto warm = eng.fetch(path, n * rec, sig, &spec);
  EXPECT_EQ(warm.outcome, CacheOutcome::kHit);

  if (simd::active_level() != simd::Level::kScalar) {
    ASSERT_NE(cold.mirror, nullptr);
    EXPECT_EQ(cold.mirror->size(), n);
    // The warm hit serves the very same mirror, no rebuild.
    EXPECT_EQ(warm.mirror.get(), cold.mirror.get());
    // And it mirrors the fetched bytes exactly.
    for (std::size_t i = 0; i < n; ++i) {
      double p[3];
      std::memcpy(p, cold.bytes().data() + i * rec, sizeof p);
      EXPECT_EQ(cold.mirror->x()[i], p[0]);
      EXPECT_EQ(cold.mirror->y()[i], p[1]);
      EXPECT_EQ(cold.mirror->z()[i], p[2]);
    }
  } else {
    // Scalar dispatch (SPIO_SIMD=off or no SIMD build): no mirror is
    // built — it would be dead weight in the cache.
    EXPECT_EQ(cold.mirror, nullptr);
    EXPECT_EQ(warm.mirror, nullptr);
  }

  // Without a spec the fetch still works and simply carries no mirror
  // for entries inserted without one.
  eng.clear_cache();
  auto plain = eng.fetch(path, n * rec, sig);
  EXPECT_EQ(plain.outcome, CacheOutcome::kMiss);
  EXPECT_EQ(plain.mirror, nullptr);

  eng.set_cache_budget(prev_budget);
}

}  // namespace
}  // namespace spio
