/// \file uintah_checkpoint.cpp
/// The paper's motivating workload (§5.1): a Uintah-style multi-timestep
/// particle simulation that checkpoints through spio. The example
///   1. sweeps the partition factor on the first checkpoint and picks the
///      fastest (the paper exposes the factor as a tuning parameter),
///   2. advances a toy MPM-like simulation for several timesteps, writing
///      one dataset per checkpoint,
///   3. "restarts": reads the last checkpoint back on a *different* rank
///      count and verifies the particle census.
///
/// Usage: uintah_checkpoint [output-dir]   (default: ./uintah_run)

#include <chrono>
#include <iostream>
#include <mutex>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/units.hpp"
#include "workload/generators.hpp"

using namespace spio;

namespace {

constexpr int kRanks = 16;
constexpr std::uint64_t kPerRank = 8000;
constexpr int kTimesteps = 3;

/// Advance particles one step: drift along +x with reflecting walls, and
/// evolve the density field slightly. Stands in for the MPM solve.
void advance(ParticleBuffer& buf, const Box3& domain, double dt) {
  const auto density = buf.schema().index_of("density");
  for (std::size_t i = 0; i < buf.size(); ++i) {
    Vec3d p = buf.position(i);
    p.x += dt * (0.2 + 0.1 * std::sin(p.y * 12.0));
    if (p.x >= domain.hi.x) p.x = domain.hi.x - (p.x - domain.hi.x) - 1e-9;
    buf.set_position(i, p);
    buf.set_f64(i, density, 0, buf.get_f64(i, density) * (1.0 + 0.001 * dt));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path base = argc > 1 ? argv[1] : "uintah_run";
  const PatchDecomposition decomp(Box3::unit(), {4, 2, 2});

  // --- step 1: tune the partition factor on a trial checkpoint.
  const PartitionFactor candidates[] = {{1, 1, 1}, {2, 2, 1}, {2, 2, 2},
                                        {4, 2, 2}};
  PartitionFactor best{1, 1, 1};
  double best_ms = 1e300;
  std::cout << "tuning partition factor on a trial checkpoint:\n";
  for (const PartitionFactor f : candidates) {
    const auto t0 = std::chrono::steady_clock::now();
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      const auto local = workload::uniform(
          Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
          stream_seed(7, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      WriterConfig cfg;
      cfg.dir = base / ("tune_" + f.to_string());
      cfg.factor = f;
      write_dataset(comm, decomp, local, cfg);
    });
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::cout << "  " << f.to_string() << ": "
              << file_count(decomp.grid(), f) << " files, " << ms << " ms\n";
    if (ms < best_ms) {
      best_ms = ms;
      best = f;
    }
  }
  std::cout << "chosen factor: " << best.to_string() << "\n\n";

  // --- step 2: the simulation loop with periodic checkpoints. Particle
  // state persists across timesteps inside the rank threads' closures via
  // a per-rank store.
  std::vector<ParticleBuffer> state(kRanks, ParticleBuffer(Schema::uintah()));
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    state[static_cast<std::size_t>(comm.rank())] = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
        stream_seed(7, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * kPerRank);
  });

  for (int step = 1; step <= kTimesteps; ++step) {
    const auto dir = base / ("t" + std::to_string(step));
    WriteStats job{};
    std::mutex mu;
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      ParticleBuffer& local = state[static_cast<std::size_t>(comm.rank())];
      advance(local, decomp.domain(), 0.05);
      WriterConfig cfg;
      cfg.dir = dir;
      cfg.factor = best;
      // Drifting particles can leave their patch: spio detects this and
      // falls back to the general (binning) exchange automatically.
      const WriteStats s = write_dataset(comm, decomp, local, cfg);
      std::lock_guard lk(mu);
      job = WriteStats::max_over(job, s);
    });
    std::cout << "checkpoint t" << step << ": "
              << format_bytes(job.bytes_written) << " in "
              << job.files_written << " files, "
              << format_seconds(job.total_seconds())
              << (job.used_aligned_fast_path ? " (aligned path)"
                                             : " (general path)")
              << "\n";
  }

  // --- step 3: restart read on a smaller machine (4 ranks, not 16).
  const auto last = base / ("t" + std::to_string(kTimesteps));
  std::mutex mu;
  std::uint64_t restored = 0;
  simmpi::run(4, [&](simmpi::Comm& comm) {
    const Dataset ds = Dataset::open(last);
    const Box3 tile =
        reader_tile(ds.metadata().domain, comm.rank(), comm.size());
    const ParticleBuffer mine = ds.query_box(tile);
    std::lock_guard lk(mu);
    restored += mine.size();
  });
  std::cout << "\nrestart on 4 ranks restored " << restored << " of "
            << kRanks * kPerRank << " particles\n";
  if (restored != kRanks * kPerRank) {
    std::cerr << "particle census mismatch!\n";
    return 1;
  }
  return 0;
}
