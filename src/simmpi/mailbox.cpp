#include "simmpi/mailbox.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

namespace simmpi {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
// Period at which blocked receivers re-check the abort flag. Aborts are a
// failure path only, so the latency here never affects a healthy run.
constexpr auto kAbortPoll = std::chrono::milliseconds(20);
}  // namespace

void Mailbox::deliver(Message&& m) {
  std::lock_guard lk(mu_);
  // Posted-receive fast path: hand the payload directly to the first
  // (FIFO) waiter it matches and wake only that waiter. Waiters are
  // registered only when the queue held no match for them, so a direct
  // hand-off of this newer message preserves non-overtaking order.
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    Waiter* w = *it;
    if (matches(m, w->src, w->tag)) {
      w->msg = std::move(m);
      w->ready = true;
      waiters_.erase(it);
      // Notify under the lock: the waiter frame is freed once receive()
      // observes `ready`, which it can only do after we release mu_.
      w->cv.notify_one();
      return;
    }
  }
  // No waiter wants it: queue for a later receive. Nobody is blocked on
  // this message, so no wakeup is needed.
  queue_.push_back(std::move(m));
}

std::size_t Mailbox::find_match(int src, int tag) const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (matches(queue_[i], src, tag)) return i;
  }
  return kNpos;
}

Message Mailbox::receive(int src, int tag, const std::atomic<bool>& abort) {
  std::unique_lock lk(mu_);
  const std::size_t i = find_match(src, tag);
  if (i != kNpos) {
    Message m = std::move(queue_[i]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    return m;
  }
  Waiter w;
  w.src = src;
  w.tag = tag;
  waiters_.push_back(&w);
  for (;;) {
    if (w.ready) return std::move(w.msg);
    if (abort.load(std::memory_order_relaxed)) {
      // Deregister before unwinding; `w` is about to go out of scope.
      waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), &w),
                     waiters_.end());
      throw Aborted();
    }
    w.cv.wait_for(lk, kAbortPoll);
  }
}

std::optional<Message> Mailbox::try_receive(int src, int tag) {
  std::lock_guard lk(mu_);
  const std::size_t i = find_match(src, tag);
  if (i == kNpos) return std::nullopt;
  Message m = std::move(queue_[i]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
  return m;
}

bool Mailbox::probe(int src, int tag, int* out_src, int* out_tag,
                    std::size_t* out_bytes) {
  std::lock_guard lk(mu_);
  const std::size_t i = find_match(src, tag);
  if (i == kNpos) return false;
  if (out_src) *out_src = queue_[i].src;
  if (out_tag) *out_tag = queue_[i].tag;
  if (out_bytes) *out_bytes = queue_[i].payload.size();
  return true;
}

std::size_t Mailbox::pending() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

void Mailbox::interrupt() {
  std::lock_guard lk(mu_);
  for (Waiter* w : waiters_) w->cv.notify_one();
}

}  // namespace simmpi
