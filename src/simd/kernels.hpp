#pragma once

/// \file kernels.hpp
/// Explicitly vectorized read-path kernels over the SoA position mirror
/// (docs/PERF.md "SIMD kernels"). Each kernel evaluates its predicate as
/// SIMD masks over the mirror's contiguous x/y/z arrays, converts the
/// masks to runs, then reserves the output exactly and copies the
/// matching runs from the *AoS* byte buffer in record order with one
/// `append_records` per run — the same records in the same order as the
/// fused scalar kernels, so output is byte-identical to the
/// `*_reference` oracles by construction (the differential suite in
/// tests/simd/simd_kernels_test.cpp pins all three paths together).
///
/// Every entry point is a *try*: it returns false — leaving `out`
/// untouched — when no SIMD path is available (`active_level()` is
/// `kScalar`: non-x86 build, `SPIO_SIMD=off`, or a test cap) or when the
/// mirror does not describe `bytes` (count mismatch). Callers fall back
/// to the fused scalar kernels; `read_detail::*_dispatch` in
/// core/read_engine.hpp does exactly that and counts
/// `kernel.simd_{hits,fallbacks}`.
///
/// Comparison semantics are pinned to the scalar kernels exactly:
/// ordered-quiet SIMD compares, so NaN coordinates match no box (as with
/// scalar `>=`/`<`), range predicates pass NaN attribute values (scalar
/// `!(v < lo || v > hi)`), and owner binning reproduces
/// `PatchDecomposition::cell_of`'s sub/div/mul/floor/clamp sequence
/// operation for operation (IEEE ops are deterministic, so the lanes are
/// bit-identical to the scalar loop).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "simd/position_mirror.hpp"
#include "simd/simd_level.hpp"
#include "util/box.hpp"
#include "workload/decomposition.hpp"
#include "workload/particle_buffer.hpp"

namespace spio::simd {

/// One hoisted range predicate: keep records whose element at byte
/// `offset` (f64, or f32 widened) lies in [lo, hi]; NaN passes. The
/// SIMD-side twin of the read engine's hoisted `RangeFilter`.
struct RangePred {
  std::size_t offset = 0;
  bool is_f64 = true;
  double lo = 0;
  double hi = 0;
};

/// SIMD `filter_box`: append every record of `bytes` whose mirrored
/// position lies in `box` (half-open) to `out`; `*kept` gets the count.
/// Returns false (no-op) when dispatch lands on the scalar level or
/// `mirror.size() != bytes.size() / record_size`.
bool filter_box(const PositionMirror& mirror, std::span<const std::byte> bytes,
                std::size_t record_size, const Box3& box, ParticleBuffer& out,
                std::uint64_t* kept);

/// SIMD `filter_box_ranges`: the box predicate runs at full vector width
/// over the mirror; surviving lanes evaluate the (rarely more than one
/// or two) range predicates against the AoS record. Same try contract as
/// `filter_box`.
bool filter_box_ranges(const PositionMirror& mirror,
                       std::span<const std::byte> bytes,
                       std::size_t record_size, const Box3& box,
                       std::span<const RangePred> preds, ParticleBuffer& out,
                       std::uint64_t* kept);

/// SIMD `bin_by_owner`: vectorized point location (sub/div/mul/floor/
/// clamp per lane, exactly `cell_of`) into per-chunk owner arrays,
/// folded into owner runs and appended with the fused kernel's two-pass
/// reserve+memcpy. `outgoing.size()` must equal `decomp.rank_count()`.
/// Same try contract as `filter_box`.
bool bin_by_owner(const PositionMirror& mirror,
                  std::span<const std::byte> bytes, std::size_t record_size,
                  const PatchDecomposition& decomp,
                  std::vector<ParticleBuffer>& outgoing);

}  // namespace spio::simd
