#!/usr/bin/env sh
# Regenerate BENCH_hotpath.json, the committed machine-readable perf
# baseline for the write pipeline's hot paths (binning, exchange, LOD
# reorder, CRC, file write; micro kernels vs their pre-optimization
# references).
#
# Usage: bench/run_hotpath.sh [build-dir] [reps]
#
# Run from the repository root on an otherwise idle machine. The JSON is
# written to the repository root; commit it when refreshing the baseline.
set -eu

BUILD_DIR="${1:-build}"
REPS="${2:-5}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH="$REPO_ROOT/$BUILD_DIR/tools/spio_bench"

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j --target spio_bench" >&2
  exit 1
fi

exec "$BENCH" --hotpath --reps "$REPS" --json "$REPO_ROOT/BENCH_hotpath.json"
