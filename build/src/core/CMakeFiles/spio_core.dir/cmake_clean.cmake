file(REMOVE_RECURSE
  "CMakeFiles/spio_core.dir/aggregation_grid.cpp.o"
  "CMakeFiles/spio_core.dir/aggregation_grid.cpp.o.d"
  "CMakeFiles/spio_core.dir/aggregation_plan.cpp.o"
  "CMakeFiles/spio_core.dir/aggregation_plan.cpp.o.d"
  "CMakeFiles/spio_core.dir/density.cpp.o"
  "CMakeFiles/spio_core.dir/density.cpp.o.d"
  "CMakeFiles/spio_core.dir/distributed_read.cpp.o"
  "CMakeFiles/spio_core.dir/distributed_read.cpp.o.d"
  "CMakeFiles/spio_core.dir/file_index.cpp.o"
  "CMakeFiles/spio_core.dir/file_index.cpp.o.d"
  "CMakeFiles/spio_core.dir/journal.cpp.o"
  "CMakeFiles/spio_core.dir/journal.cpp.o.d"
  "CMakeFiles/spio_core.dir/kd_partition.cpp.o"
  "CMakeFiles/spio_core.dir/kd_partition.cpp.o.d"
  "CMakeFiles/spio_core.dir/knn.cpp.o"
  "CMakeFiles/spio_core.dir/knn.cpp.o.d"
  "CMakeFiles/spio_core.dir/lod.cpp.o"
  "CMakeFiles/spio_core.dir/lod.cpp.o.d"
  "CMakeFiles/spio_core.dir/metadata.cpp.o"
  "CMakeFiles/spio_core.dir/metadata.cpp.o.d"
  "CMakeFiles/spio_core.dir/reader.cpp.o"
  "CMakeFiles/spio_core.dir/reader.cpp.o.d"
  "CMakeFiles/spio_core.dir/restart.cpp.o"
  "CMakeFiles/spio_core.dir/restart.cpp.o.d"
  "CMakeFiles/spio_core.dir/timeseries.cpp.o"
  "CMakeFiles/spio_core.dir/timeseries.cpp.o.d"
  "CMakeFiles/spio_core.dir/validate.cpp.o"
  "CMakeFiles/spio_core.dir/validate.cpp.o.d"
  "CMakeFiles/spio_core.dir/writer.cpp.o"
  "CMakeFiles/spio_core.dir/writer.cpp.o.d"
  "libspio_core.a"
  "libspio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
