#include "util/vec3.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace spio {
namespace {

TEST(Vec3, DefaultIsZero) {
  Vec3d v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3, BroadcastConstructor) {
  Vec3d v(2.5);
  EXPECT_EQ(v, Vec3d(2.5, 2.5, 2.5));
}

TEST(Vec3, IndexAccessMatchesComponents) {
  Vec3d v{1, 2, 3};
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 3);
  v[1] = 9;
  EXPECT_EQ(v.y, 9);
}

TEST(Vec3, Arithmetic) {
  Vec3d a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3d(5, 7, 9));
  EXPECT_EQ(b - a, Vec3d(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3d(2, 4, 6));
  EXPECT_EQ(b / 2.0, Vec3d(2, 2.5, 3));
  EXPECT_EQ(a * b, Vec3d(4, 10, 18));
  EXPECT_EQ(b / a, Vec3d(4, 2.5, 2));
}

TEST(Vec3, CompoundAssignment) {
  Vec3d a{1, 1, 1};
  a += Vec3d{1, 2, 3};
  EXPECT_EQ(a, Vec3d(2, 3, 4));
  a -= Vec3d{1, 1, 1};
  EXPECT_EQ(a, Vec3d(1, 2, 3));
}

TEST(Vec3, ProductSumAndExtrema) {
  Vec3i v{2, 3, 4};
  EXPECT_EQ(v.product(), 24);
  EXPECT_EQ(v.sum(), 9);
  EXPECT_EQ(v.max_component(), 4);
  EXPECT_EQ(v.min_component(), 2);
}

TEST(Vec3, MaxAxisBreaksTiesLow) {
  EXPECT_EQ(Vec3d(3, 1, 2).max_axis(), 0);
  EXPECT_EQ(Vec3d(1, 3, 2).max_axis(), 1);
  EXPECT_EQ(Vec3d(1, 2, 3).max_axis(), 2);
  EXPECT_EQ(Vec3d(2, 2, 2).max_axis(), 0);
  EXPECT_EQ(Vec3d(1, 2, 2).max_axis(), 1);
}

TEST(Vec3, MinMaxCombinators) {
  Vec3d a{1, 5, 3}, b{2, 4, 3};
  EXPECT_EQ(Vec3d::min(a, b), Vec3d(1, 4, 3));
  EXPECT_EQ(Vec3d::max(a, b), Vec3d(2, 5, 3));
}

TEST(Vec3, CastConvertsComponentwise) {
  Vec3d v{1.9, 2.1, -3.7};
  Vec3i i = v.cast<std::int64_t>();
  EXPECT_EQ(i, Vec3i(1, 2, -3));
}

TEST(Vec3, LengthAndDistance) {
  EXPECT_DOUBLE_EQ(length(Vec3d(3, 4, 0)), 5.0);
  EXPECT_DOUBLE_EQ(distance(Vec3d(1, 1, 1), Vec3d(1, 1, 4)), 3.0);
}

TEST(Vec3, StreamOutput) {
  std::ostringstream oss;
  oss << Vec3i{1, 2, 3};
  EXPECT_EQ(oss.str(), "(1, 2, 3)");
}

}  // namespace
}  // namespace spio
