#include "core/aggregation_grid.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace spio {
namespace {

TEST(AggregationGrid, UniformPartitionBoxesTileRegion) {
  const Box3 region({0, 0, 0}, {8, 4, 2});
  const AggregationGrid g(region, {4, 2, 1});
  EXPECT_EQ(g.partition_count(), 8);
  double vol = 0;
  for (int p = 0; p < g.partition_count(); ++p) {
    const Box3 b = g.partition_box(p);
    EXPECT_TRUE(region.contains_box(b));
    vol += b.volume();
  }
  EXPECT_NEAR(vol, region.volume(), 1e-9);
  EXPECT_EQ(g.region(), region);
}

TEST(AggregationGrid, PartitionBoxesAreDisjoint) {
  const AggregationGrid g(Box3::unit(), {2, 2, 2});
  for (int a = 0; a < g.partition_count(); ++a)
    for (int b = a + 1; b < g.partition_count(); ++b)
      EXPECT_FALSE(g.partition_box(a).overlaps(g.partition_box(b)));
}

TEST(AggregationGrid, PointLocationConsistentWithBoxes) {
  const AggregationGrid g(Box3({-1, -1, -1}, {1, 1, 1}), {3, 2, 4});
  Xoshiro256 rng(77);
  for (int i = 0; i < 2000; ++i) {
    const Vec3d p{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const int idx = g.partition_of_point(p);
    EXPECT_TRUE(g.partition_box(idx).contains(p)) << p;
  }
}

TEST(AggregationGrid, UpperDomainFaceClampsToLastPartition) {
  const AggregationGrid g(Box3::unit(), {2, 2, 2});
  EXPECT_EQ(g.partition_of_point({1, 1, 1}), g.partition_count() - 1);
  EXPECT_EQ(g.partition_of_point({0, 0, 0}), 0);
  // Points outside the region clamp to boundary partitions.
  EXPECT_EQ(g.partition_of_point({-5, -5, -5}), 0);
  EXPECT_EQ(g.partition_of_point({5, 5, 5}), g.partition_count() - 1);
}

TEST(AggregationGrid, CoordIndexRoundTrip) {
  const AggregationGrid g(Box3::unit(), {3, 4, 5});
  for (int p = 0; p < g.partition_count(); ++p)
    EXPECT_EQ(g.index_of(g.coord_of(p)), p);
}

TEST(AggregationGrid, AlignedPartitionCountMatchesFileCountLaw) {
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 2});
  for (const PartitionFactor f :
       {PartitionFactor{1, 1, 1}, {2, 2, 2}, {2, 2, 1}, {4, 4, 2}, {3, 3, 2}}) {
    const AggregationGrid g = AggregationGrid::aligned(decomp, f);
    EXPECT_EQ(g.partition_count(), file_count(decomp.grid(), f))
        << f.to_string();
  }
}

TEST(AggregationGrid, AlignedBoundariesSitOnPatchBoundaries) {
  const PatchDecomposition decomp(Box3({0, 0, 0}, {8, 8, 8}), {4, 4, 4});
  const AggregationGrid g =
      AggregationGrid::aligned(decomp, PartitionFactor{2, 2, 2});
  EXPECT_EQ(g.dims(), Vec3i(2, 2, 2));
  // Partition 0 covers exactly the 2x2x2 block of patches at the origin.
  EXPECT_EQ(g.partition_box(0), Box3({0, 0, 0}, {4, 4, 4}));
}

TEST(AggregationGrid, AlignedWithNonDividingFactorTakesRemainder) {
  const PatchDecomposition decomp(Box3({0, 0, 0}, {5, 1, 1}), {5, 1, 1});
  const AggregationGrid g =
      AggregationGrid::aligned(decomp, PartitionFactor{2, 1, 1});
  EXPECT_EQ(g.dims(), Vec3i(3, 1, 1));
  EXPECT_EQ(g.partition_box(0), Box3({0, 0, 0}, {2, 1, 1}));
  EXPECT_EQ(g.partition_box(1), Box3({2, 0, 0}, {4, 1, 1}));
  EXPECT_EQ(g.partition_box(2), Box3({4, 0, 0}, {5, 1, 1}));  // remainder
}

TEST(AggregationGrid, EveryPatchInsideExactlyOnePartitionWhenAligned) {
  const PatchDecomposition decomp(Box3::unit(), {6, 4, 2});
  const AggregationGrid g =
      AggregationGrid::aligned(decomp, PartitionFactor{3, 2, 2});
  EXPECT_TRUE(g.is_aligned_with(decomp));
  for (int r = 0; r < decomp.rank_count(); ++r) {
    const Box3 patch = decomp.patch(r);
    const int p = g.partition_of_point(patch.center());
    EXPECT_TRUE(g.partition_box(p).contains_box(patch)) << "rank " << r;
  }
}

TEST(AggregationGrid, MisalignedGridDetected) {
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 1});
  // A 3x3 partitioning of the unit square does not align with 4x4 patches.
  const AggregationGrid g(Box3::unit(), {3, 3, 1});
  EXPECT_FALSE(g.is_aligned_with(decomp));
}

TEST(AggregationGrid, RejectsInvalidConstruction) {
  EXPECT_THROW(AggregationGrid(Box3::empty(), {1, 1, 1}), ConfigError);
  EXPECT_THROW(AggregationGrid(Box3::unit(), {0, 1, 1}), ConfigError);
}

TEST(AggregatorSelection, PaperExampleSixteenRanksFourPartitions) {
  // §3.2: "with 16 participating processes and 4 aggregation partitions,
  // we assign processes with ranks 0, 4, 8 and 12".
  EXPECT_EQ(select_aggregators_uniform(16, 4),
            (std::vector<int>{0, 4, 8, 12}));
}

TEST(AggregatorSelection, UniformCoversRankSpaceWithoutDuplicates) {
  for (const auto& [n, k] : {std::pair{64, 8}, {100, 7}, {12, 12}, {9, 1}}) {
    const auto aggs = select_aggregators_uniform(n, k);
    ASSERT_EQ(aggs.size(), static_cast<std::size_t>(k));
    std::set<int> unique(aggs.begin(), aggs.end());
    EXPECT_EQ(unique.size(), aggs.size());
    for (int a : aggs) {
      EXPECT_GE(a, 0);
      EXPECT_LT(a, n);
    }
    // Uniform spread: consecutive aggregators are ~n/k apart.
    for (std::size_t i = 1; i < aggs.size(); ++i)
      EXPECT_NEAR(aggs[i] - aggs[i - 1], n / k, 1.0);
  }
}

TEST(AggregatorSelection, AllRanksAggregateAtFactorOne) {
  const auto aggs = select_aggregators_uniform(8, 8);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(aggs[static_cast<std::size_t>(i)], i);
}

TEST(AggregatorSelection, PackedUsesLowRanks) {
  EXPECT_EQ(select_aggregators_packed(16, 4), (std::vector<int>{0, 1, 2, 3}));
}

TEST(AggregatorSelection, RejectsMorePartitionsThanRanks) {
  EXPECT_THROW(select_aggregators_uniform(4, 5), ConfigError);
  EXPECT_THROW(select_aggregators_uniform(4, 0), ConfigError);
}

}  // namespace
}  // namespace spio
