#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

/// Write one dataset with `nranks` rank-threads: each rank generates
/// `per_rank` particles with `gen` and writes via `config`.
using RankGenerator =
    std::function<ParticleBuffer(int rank, const PatchDecomposition&)>;

ParticleBuffer uniform_rank_particles(int rank,
                                      const PatchDecomposition& decomp,
                                      std::uint64_t per_rank) {
  return workload::uniform(Schema::uintah(), decomp.patch(rank), per_rank,
                           stream_seed(1234, static_cast<std::uint64_t>(rank)),
                           static_cast<std::uint64_t>(rank) * per_rank);
}

WriteStats write_with(int nranks, const PatchDecomposition& decomp,
                      const RankGenerator& gen, WriterConfig config) {
  WriteStats job{};
  std::mutex mu;
  simmpi::run(nranks, [&](simmpi::Comm& comm) {
    const ParticleBuffer local = gen(comm.rank(), decomp);
    const WriteStats s = write_dataset(comm, decomp, local, config);
    std::lock_guard lk(mu);
    job = WriteStats::max_over(job, s);
  });
  return job;
}

/// All ids in a buffer (ids are unique across the dataset by generator
/// construction).
std::set<double> id_set(const ParticleBuffer& buf) {
  const auto id = buf.schema().index_of("id");
  std::set<double> out;
  for (std::size_t i = 0; i < buf.size(); ++i) out.insert(buf.get_f64(i, id));
  return out;
}

// ---- parameterized full-pipeline round trip ----

struct RoundTripCase {
  int nranks;
  Vec3i grid;
  PartitionFactor factor;
  std::uint64_t per_rank;
  bool adaptive;
  bool force_general;
};

class RoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(RoundTrip, WriteThenReadBackEverything) {
  const RoundTripCase& c = GetParam();
  const PatchDecomposition decomp(Box3({0, 0, 0}, {8, 8, 8}), c.grid);
  ASSERT_EQ(decomp.rank_count(), c.nranks);

  TempDir dir("spio-roundtrip");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = c.factor;
  cfg.adaptive = c.adaptive;
  cfg.force_general_exchange = c.force_general;

  const WriteStats stats = write_with(
      c.nranks, decomp,
      [&](int r, const PatchDecomposition& d) {
        return uniform_rank_particles(r, d, c.per_rank);
      },
      cfg);

  const std::uint64_t total = c.per_rank * static_cast<std::uint64_t>(c.nranks);
  EXPECT_EQ(stats.particles_written, total);
  if (!c.adaptive && c.per_rank > 0) {
    EXPECT_EQ(stats.files_written,
              static_cast<int>(file_count(c.grid, c.factor)));
  }

  const Dataset ds = Dataset::open(dir.path());
  EXPECT_EQ(ds.metadata().total_particles, total);
  EXPECT_EQ(ds.metadata().schema, Schema::uintah());

  // Reading the whole domain returns every particle exactly once.
  ReadStats rs;
  const ParticleBuffer all =
      ds.query_box(decomp.domain(), /*levels=*/-1, 1, &rs);
  EXPECT_EQ(all.size(), total);
  EXPECT_EQ(id_set(all).size(), total);
  EXPECT_EQ(rs.files_opened, ds.file_count());

  // Every particle lies inside the bounds of the file that holds it.
  for (int fi = 0; fi < ds.file_count(); ++fi) {
    const auto& rec = ds.metadata().files[static_cast<std::size_t>(fi)];
    const ParticleBuffer fb = ds.read_data_file(fi);
    ASSERT_EQ(fb.size(), rec.particle_count);
    for (std::size_t i = 0; i < fb.size(); ++i)
      ASSERT_TRUE(rec.bounds.contains_closed(fb.position(i)))
          << "file " << fi << " particle " << i;
  }

  // File bounds are pairwise disjoint.
  for (int a = 0; a < ds.file_count(); ++a)
    for (int b = a + 1; b < ds.file_count(); ++b)
      EXPECT_FALSE(ds.metadata()
                       .files[static_cast<std::size_t>(a)]
                       .bounds.overlaps(
                           ds.metadata().files[static_cast<std::size_t>(b)].bounds));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RoundTrip,
    ::testing::Values(
        RoundTripCase{8, {2, 2, 2}, {1, 1, 1}, 200, false, false},
        RoundTripCase{8, {2, 2, 2}, {2, 2, 2}, 200, false, false},
        RoundTripCase{16, {4, 2, 2}, {2, 2, 2}, 150, false, false},
        RoundTripCase{16, {4, 4, 1}, {2, 2, 1}, 100, false, false},
        RoundTripCase{16, {4, 4, 1}, {4, 4, 1}, 100, false, false},
        RoundTripCase{27, {3, 3, 3}, {3, 3, 3}, 64, false, false},
        RoundTripCase{32, {4, 4, 2}, {2, 2, 2}, 50, false, false},
        RoundTripCase{12, {3, 2, 2}, {2, 2, 2}, 80, false, false},  // non-dividing
        RoundTripCase{16, {4, 2, 2}, {2, 2, 2}, 150, false, true},  // general path
        RoundTripCase{16, {4, 2, 2}, {2, 2, 2}, 150, true, false},  // adaptive
        RoundTripCase{8, {2, 2, 2}, {2, 2, 2}, 0, false, false}),   // no particles
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      const auto& c = info.param;
      std::string name = std::to_string(c.nranks) + "ranks_" +
                         c.factor.to_string() + "_" +
                         std::to_string(c.per_rank) + "ppr";
      if (c.adaptive) name += "_adaptive";
      if (c.force_general) name += "_general";
      for (auto& ch : name)
        if (ch == 'x') ch = '_';
      return name;
    });

// ---- box queries against brute force ----

TEST(BoxQuery, MatchesBruteForceScan) {
  const PatchDecomposition decomp(Box3({0, 0, 0}, {4, 4, 4}), {2, 2, 2});
  TempDir dir("spio-query");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 1};
  write_with(8, decomp,
             [&](int r, const PatchDecomposition& d) {
               return uniform_rank_particles(r, d, 400);
             },
             cfg);

  const Dataset ds = Dataset::open(dir.path());
  Xoshiro256 rng(99);
  for (int q = 0; q < 25; ++q) {
    Box3 box;
    for (int a = 0; a < 3; ++a) {
      const double lo = rng.uniform(0, 4);
      const double hi = rng.uniform(0, 4);
      box.lo[a] = std::min(lo, hi);
      box.hi[a] = std::max(lo, hi);
    }
    if (box.is_empty()) continue;
    const auto fast = ds.query_box(box);
    const auto slow = ds.query_box_scan_all(box);
    EXPECT_EQ(id_set(fast), id_set(slow)) << "query " << q;
  }
}

TEST(BoxQuery, TouchesOnlyIntersectingFiles) {
  const PatchDecomposition decomp(Box3({0, 0, 0}, {4, 4, 4}), {4, 2, 2});
  TempDir dir("spio-query");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {1, 2, 2};  // 4 partitions along x
  write_with(16, decomp,
             [&](int r, const PatchDecomposition& d) {
               return uniform_rank_particles(r, d, 100);
             },
             cfg);

  const Dataset ds = Dataset::open(dir.path());
  ASSERT_EQ(ds.file_count(), 4);
  ReadStats rs;
  // A query inside the first x-slab touches exactly one file; the
  // spatially-unaware baseline reads all four.
  const Box3 q({0.1, 0.1, 0.1}, {0.9, 3.9, 3.9});
  ds.query_box(q, -1, 1, &rs);
  EXPECT_EQ(rs.files_opened + static_cast<int>(rs.cache_hits), 1);
  // The baseline touches all four files; the one the query above read
  // may now be served from the read cache instead of reopened.
  ReadStats rs_scan;
  ds.query_box_scan_all(q, &rs_scan);
  EXPECT_EQ(rs_scan.files_opened + static_cast<int>(rs_scan.cache_hits), 4);
}

TEST(BoxQuery, FullyContainedFileSkipsFiltering) {
  const PatchDecomposition decomp(Box3({0, 0, 0}, {2, 2, 2}), {2, 1, 1});
  TempDir dir("spio-query");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {1, 1, 1};
  write_with(2, decomp,
             [&](int r, const PatchDecomposition& d) {
               return uniform_rank_particles(r, d, 300);
             },
             cfg);
  const Dataset ds = Dataset::open(dir.path());
  ReadStats rs;
  const auto out = ds.query_box(decomp.domain(), -1, 1, &rs);
  EXPECT_EQ(out.size(), 600u);
  EXPECT_EQ(rs.particles_scanned, rs.particles_returned);
}

// ---- reads at different core counts than the write (paper §4) ----

TEST(ParallelReads, DifferentReaderCountsSeeTheSameData) {
  const PatchDecomposition decomp(Box3({0, 0, 0}, {8, 8, 8}), {4, 2, 2});
  TempDir dir("spio-readers");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 2};
  write_with(16, decomp,
             [&](int r, const PatchDecomposition& d) {
               return uniform_rank_particles(r, d, 250);
             },
             cfg);

  for (const int readers : {1, 2, 4, 8}) {
    std::mutex mu;
    std::set<double> seen;
    std::uint64_t total_read = 0;
    simmpi::run(readers, [&](simmpi::Comm& comm) {
      const Dataset ds = Dataset::open(dir.path());
      const Box3 tile =
          reader_tile(ds.metadata().domain, comm.rank(), comm.size());
      const ParticleBuffer mine = ds.query_box(tile);
      const auto ids = id_set(mine);
      std::lock_guard lk(mu);
      total_read += mine.size();
      for (double v : ids) {
        EXPECT_TRUE(seen.insert(v).second)
            << "particle read by two tiles with " << readers << " readers";
      }
    });
    EXPECT_EQ(total_read, 16u * 250u) << readers << " readers";
  }
}

// ---- determinism and path equivalence ----

TEST(Determinism, RepeatedWritesAreBitIdentical) {
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 2});
  auto write_once = [&](const std::filesystem::path& dir) {
    WriterConfig cfg;
    cfg.dir = dir;
    cfg.factor = {2, 2, 1};
    write_with(8, decomp,
               [&](int r, const PatchDecomposition& d) {
                 return uniform_rank_particles(r, d, 120);
               },
               cfg);
  };
  TempDir a("spio-det-a"), b("spio-det-b");
  write_once(a.path());
  write_once(b.path());
  for (const auto& entry : std::filesystem::directory_iterator(a.path())) {
    const auto other = b.path() / entry.path().filename();
    ASSERT_TRUE(std::filesystem::exists(other)) << entry.path();
    EXPECT_EQ(read_file(entry.path()), read_file(other)) << entry.path();
  }
}

TEST(Determinism, FastAndGeneralExchangePathsProduceIdenticalFiles) {
  const PatchDecomposition decomp(Box3::unit(), {4, 2, 2});
  auto write_once = [&](const std::filesystem::path& dir, bool general) {
    WriterConfig cfg;
    cfg.dir = dir;
    cfg.factor = {2, 2, 2};
    cfg.force_general_exchange = general;
    return write_with(16, decomp,
                      [&](int r, const PatchDecomposition& d) {
                        return uniform_rank_particles(r, d, 90);
                      },
                      cfg);
  };
  TempDir a("spio-fast"), b("spio-general");
  const WriteStats fast = write_once(a.path(), false);
  const WriteStats general = write_once(b.path(), true);
  EXPECT_TRUE(fast.used_aligned_fast_path);
  EXPECT_FALSE(general.used_aligned_fast_path);
  for (const auto& entry : std::filesystem::directory_iterator(a.path())) {
    EXPECT_EQ(read_file(entry.path()),
              read_file(b.path() / entry.path().filename()))
        << entry.path();
  }
}

TEST(Stats, AggregationVolumeAccountsRemoteSendsOnly) {
  const PatchDecomposition decomp(Box3::unit(), {4, 1, 1});
  TempDir dir("spio-stats");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {4, 1, 1};  // single aggregator: rank 0
  const WriteStats s = write_with(
      4, decomp,
      [&](int r, const PatchDecomposition& d) {
        return uniform_rank_particles(r, d, 100);
      },
      cfg);
  // Ranks 1..3 ship 100 particles each; rank 0's stay local.
  EXPECT_EQ(s.particles_sent, 300u);
  EXPECT_EQ(s.bytes_sent, 300u * Schema::uintah().record_size());
  EXPECT_EQ(s.particles_written, 400u);
  EXPECT_EQ(s.files_written, 1);
}

TEST(Writer, FilePerProcessEqualsFactorOne) {
  // §3.1: (1,1,1) "is equivalent to file per-process I/O".
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 1});
  TempDir dir("spio-fpp");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {1, 1, 1};
  const WriteStats s = write_with(
      4, decomp,
      [&](int r, const PatchDecomposition& d) {
        return uniform_rank_particles(r, d, 50);
      },
      cfg);
  EXPECT_EQ(s.files_written, 4);
  EXPECT_EQ(s.particles_sent, 0u);  // nothing moves between ranks
  const Dataset ds = Dataset::open(dir.path());
  for (const auto& f : ds.metadata().files)
    EXPECT_EQ(f.particle_count, 50u);
}

TEST(Writer, SharedFileEqualsFullFactor) {
  // §3.1: a partition spanning the domain "will save out a single file,
  // equivalent to single shared file I/O".
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 2});
  TempDir dir("spio-shared");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 2};
  const WriteStats s = write_with(
      8, decomp,
      [&](int r, const PatchDecomposition& d) {
        return uniform_rank_particles(r, d, 50);
      },
      cfg);
  EXPECT_EQ(s.files_written, 1);
  EXPECT_EQ(Dataset::open(dir.path()).metadata().files[0].particle_count,
            400u);
}

// ---- non-uniform distributions and adaptive aggregation ----

TEST(Adaptive, EmptyRegionsGetNoFiles) {
  const PatchDecomposition decomp(Box3({0, 0, 0}, {8, 2, 2}), {4, 2, 2});
  const Box3 occupied = workload::coverage_region(decomp.domain(), 0.5);
  TempDir dir("spio-adaptive");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 2};
  cfg.adaptive = true;
  write_with(16, decomp,
             [&](int r, const PatchDecomposition& d) {
               return workload::uniform_in_region(
                   Schema::uintah(), d.patch(r), occupied, 100,
                   stream_seed(5, static_cast<std::uint64_t>(r)),
                   static_cast<std::uint64_t>(r) * 100);
             },
             cfg);
  const Dataset ds = Dataset::open(dir.path());
  // Only the occupied half is covered by file bounds.
  for (const auto& f : ds.metadata().files) {
    EXPECT_LE(f.bounds.hi.x, occupied.hi.x + 1e-9);
    EXPECT_GT(f.particle_count, 0u);
  }
  // All particles present (8 occupied ranks x 100).
  EXPECT_EQ(ds.metadata().total_particles, 800u);
  const auto all = ds.query_box(decomp.domain());
  EXPECT_EQ(id_set(all).size(), 800u);
}

TEST(Adaptive, NonAdaptiveOnSameDistributionKeepsEmptyPartitionsOut) {
  // The non-adaptive writer on a half-empty domain produces files only for
  // occupied partitions (empty partitions write nothing), but its grid
  // still spans the whole domain.
  const PatchDecomposition decomp(Box3({0, 0, 0}, {8, 2, 2}), {4, 2, 2});
  const Box3 occupied = workload::coverage_region(decomp.domain(), 0.5);
  TempDir dir("spio-nonadaptive");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 2};
  const WriteStats s = write_with(
      16, decomp,
      [&](int r, const PatchDecomposition& d) {
        return workload::uniform_in_region(
            Schema::uintah(), d.patch(r), occupied, 100,
            stream_seed(5, static_cast<std::uint64_t>(r)),
            static_cast<std::uint64_t>(r) * 100);
      },
      cfg);
  EXPECT_EQ(s.partition_count, 2);  // grid has 2 partitions along x
  EXPECT_EQ(s.files_written, 1);    // but only one holds particles
  EXPECT_EQ(Dataset::open(dir.path()).metadata().total_particles, 800u);
}

TEST(Adaptive, ClusteredDistributionRoundTrips) {
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 2});
  TempDir dir("spio-clusters");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 2};
  cfg.adaptive = true;
  write_with(8, decomp,
             [&](int r, const PatchDecomposition& d) {
               // Only half the ranks hold particles, in tight clusters.
               if (r % 2 == 1) return ParticleBuffer(Schema::uintah());
               return workload::gaussian_clusters(
                   Schema::uintah(), d.patch(r), 200, 2, 0.1,
                   stream_seed(17, static_cast<std::uint64_t>(r)),
                   static_cast<std::uint64_t>(r) * 200);
             },
             cfg);
  const Dataset ds = Dataset::open(dir.path());
  EXPECT_EQ(ds.metadata().total_particles, 4u * 200u);
  EXPECT_EQ(id_set(ds.query_box(decomp.domain())).size(), 800u);
}

// ---- failure injection ----

TEST(FailureInjection, TruncatedDataFileDetectedOnRead) {
  const PatchDecomposition decomp(Box3::unit(), {2, 1, 1});
  TempDir dir("spio-trunc");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {1, 1, 1};
  write_with(2, decomp,
             [&](int r, const PatchDecomposition& d) {
               return uniform_rank_particles(r, d, 100);
             },
             cfg);
  // Truncate the first data file.
  const Dataset ds = Dataset::open(dir.path());
  const auto victim =
      dir.path() / ds.metadata().files[0].file_name();
  auto bytes = read_file(victim);
  bytes.resize(bytes.size() / 2);
  write_file(victim, bytes);
  EXPECT_THROW(ds.read_data_file(0), FormatError);
  EXPECT_THROW(ds.query_box(Box3::unit()), FormatError);
}

TEST(FailureInjection, MissingMetadataRejected) {
  TempDir dir("spio-nometa");
  EXPECT_THROW(Dataset::open(dir.path()), IoError);
}

TEST(FailureInjection, CorruptMetadataRejected) {
  const PatchDecomposition decomp(Box3::unit(), {2, 1, 1});
  TempDir dir("spio-corrupt");
  WriterConfig cfg;
  cfg.dir = dir.path();
  write_with(2, decomp,
             [&](int r, const PatchDecomposition& d) {
               return uniform_rank_particles(r, d, 10);
             },
             cfg);
  auto bytes = read_file(dir.file(DatasetMetadata::kFileName));
  bytes.resize(bytes.size() - 16);  // chop the tail of the record table
  write_file(dir.file(DatasetMetadata::kFileName), bytes);
  EXPECT_THROW(Dataset::open(dir.path()), FormatError);
}

TEST(Writer, AggregationMemoryGuard) {
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 1});
  // All-to-one aggregation of 4 x 100 particles = 49,600 bytes.
  auto attempt = [&](std::uint64_t limit) {
    TempDir dir("spio-memguard");
    WriterConfig cfg;
    cfg.dir = dir.path();
    cfg.factor = {2, 2, 1};  // single aggregator
    cfg.max_aggregation_bytes = limit;
    simmpi::run(4, [&](simmpi::Comm& comm) {
      write_dataset(comm, decomp,
                    uniform_rank_particles(comm.rank(), decomp, 100), cfg);
    });
  };
  EXPECT_NO_THROW(attempt(0));        // unlimited
  EXPECT_NO_THROW(attempt(1 << 20));  // roomy
  EXPECT_THROW(attempt(10000), ConfigError);
}

TEST(Writer, RejectsBadConfigs) {
  const PatchDecomposition decomp(Box3::unit(), {2, 1, 1});
  EXPECT_THROW(
      simmpi::run(2,
                  [&](simmpi::Comm& comm) {
                    ParticleBuffer empty(Schema::uintah());
                    WriterConfig cfg;  // dir unset
                    write_dataset(comm, decomp, empty, cfg);
                  }),
      ConfigError);
  EXPECT_THROW(
      simmpi::run(2,
                  [&](simmpi::Comm& comm) {
                    ParticleBuffer empty(Schema::uintah());
                    WriterConfig cfg;
                    cfg.dir = "/tmp/spio-x";
                    cfg.factor = {0, 1, 1};
                    write_dataset(comm, decomp, empty, cfg);
                  }),
      ConfigError);
  // Rank count mismatch with the decomposition.
  EXPECT_THROW(
      simmpi::run(3,
                  [&](simmpi::Comm& comm) {
                    ParticleBuffer empty(Schema::uintah());
                    WriterConfig cfg;
                    cfg.dir = "/tmp/spio-x";
                    write_dataset(comm, decomp, empty, cfg);
                  }),
      ConfigError);
}

}  // namespace
}  // namespace spio
