# Empty dependencies file for fig06_time_breakdown.
# This may be replaced when dependencies are built.
