#pragma once

/// \file convert.hpp
/// Parallel conversion of legacy particle datasets (file-per-process,
/// single shared file, rank-order sub-filed) into the spio format. §2 of
/// the paper describes exactly this post-processing step — "time
/// consuming, and requires making a duplicate copy of the data" — as the
/// bottleneck spio's native format removes; this converter exists for
/// data that was *already* written the old way.
///
/// The conversion is itself parallel two-phase I/O: readers split the
/// legacy files among themselves, the spio writer's extent-exchange
/// machinery routes every particle to its spatial aggregator, and the
/// result is a fully spatially-aware dataset (bounds, field ranges, LOD
/// order).

#include <filesystem>

#include "core/writer.hpp"
#include "simmpi/comm.hpp"

namespace spio::baselines {

/// Legacy source format.
enum class LegacyFormat : std::uint8_t {
  kFilePerProcess = 0,
  kSharedFile = 1,
  kRankOrder = 2,
};

struct ConvertResult {
  std::uint64_t particles = 0;
  int source_files = 0;
  int output_files = 0;
};

/// Collective: read the legacy dataset at `src` and write it as a spio
/// dataset per `config` (config.dir is the destination). The domain is
/// the tight bounding box of all particles, expanded by a relative
/// margin so boundary particles stay interior.
ConvertResult convert_to_spio(simmpi::Comm& comm, LegacyFormat format,
                              const std::filesystem::path& src,
                              WriterConfig config);

}  // namespace spio::baselines
