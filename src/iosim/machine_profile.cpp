#include "iosim/machine_profile.hpp"

#include <algorithm>
#include <cmath>

namespace spio::iosim {

int MachineProfile::job_resources(int nranks) const {
  if (ranks_per_resource <= 0) return io_resources;
  const int engaged =
      static_cast<int>((static_cast<long long>(nranks) + ranks_per_resource - 1) /
                       ranks_per_resource);
  return std::clamp(engaged, 1, io_resources);
}

double MachineProfile::aggregation_seconds(int senders,
                                           double per_sender_bytes) const {
  if (senders <= 1 || per_sender_bytes <= 0) {
    return senders > 1 ? msg_latency * senders : 0.0;
  }
  double bw = aggregation_bw / (1.0 + incast_factor * (senders - 1));
  if (agg_msg_size_exponent > 0 && per_sender_bytes > agg_msg_ref_bytes) {
    bw *= std::pow(per_sender_bytes / agg_msg_ref_bytes,
                   agg_msg_size_exponent);
  }
  // The aggregator's own share does not cross the network.
  return msg_latency * senders + (senders - 1) * per_sender_bytes / bw;
}

double MachineProfile::effective_create_seconds(double files) const {
  if (create_contention_knee <= 0 || files <= create_contention_knee)
    return file_create_seconds;
  return file_create_seconds *
         (1.0 + (files - create_contention_knee) / create_contention_knee);
}

MachineProfile MachineProfile::mira() {
  MachineProfile p;
  p.name = "Mira";
  // 384 GPFS I/O nodes, ~240 GB/s documented peak => ~0.625 GB/s each.
  p.io_resources = 384;
  p.resource_bw = 6.25e8;
  // 128 compute nodes per ION x 16 ranks/node: a job of N ranks reaches
  // ceil(N / 2048) IONs. At 262,144 ranks that is 128 IONs = 1/3 of the
  // machine — the paper's "using 1/3 of the system".
  p.ranks_per_resource = 2048;
  // GPFS block allocation & indirect blocks: per-file fixed cost ~12 MB
  // equivalent; hurts file-per-process, amortized by large files.
  p.per_file_overhead_bytes = 12.0 * (1 << 20);
  // Creates serialize in the filesystem; beyond ~8K files in a directory,
  // contention grows roughly linearly (FPP collapses at 131K-262K files).
  p.file_create_seconds = 2.0e-4;
  p.mds_parallelism = 16;
  p.create_contention_knee = 8192;
  p.shared_lock_factor = 3.0e-4;
  p.shared_base_efficiency = 0.7;
  // 5D torus with dedicated I/O forwarding: aggregation over the torus is
  // cheap (the paper's Fig. 6a/b: aggregation is a small share of time).
  p.aggregation_bw = 7.0e8;
  p.msg_latency = 5.0e-6;
  p.incast_factor = 0.02;
  p.agg_msg_size_exponent = 0.5;
  p.placement_loss = 0.25;
  p.per_writer_bw = 1.5e8;
  p.read_bw_per_process = 5.0e7;
  p.read_total_bw = 2.4e11;
  p.file_open_seconds = 0.03;
  return p;
}

MachineProfile MachineProfile::theta() {
  MachineProfile p;
  p.name = "Theta";
  // The paper's runs stripe over 48 OSTs (48 stripes x 8 MB); peak for
  // that configuration ~220-260 GB/s => ~5.5 GB/s per OST.
  p.io_resources = 48;
  p.resource_bw = 5.5e9;
  // Lustre: any job reaches all OSTs.
  p.ranks_per_resource = 0;
  p.per_file_overhead_bytes = 1.0 * (1 << 20);
  // Lustre MDS create cost; dominates file-per-process at 262K files
  // ("file creation time for the large number of files begins to dominate
  // the actual I/O time").
  p.file_create_seconds = 1.96e-4;
  p.mds_parallelism = 4;
  p.create_contention_knee = 0;
  p.shared_lock_factor = 2.0e-5;
  p.shared_base_efficiency = 0.05;
  // Dragonfly with shared I/O routers and slow single-thread KNL cores:
  // aggregation (fan-in receive + packing) is far more expensive than on
  // Mira (Fig. 6c/d), which is why small partition factors win on Theta.
  p.aggregation_bw = 5.7e6;
  p.msg_latency = 3.0e-6;
  p.incast_factor = 0.02;
  p.agg_msg_size_exponent = 0.85;
  p.placement_loss = 0.05;
  p.per_writer_bw = 1.5e8;
  p.read_bw_per_process = 4.0e7;
  p.read_total_bw = 2.1e11;
  p.file_open_seconds = 0.05;
  return p;
}

MachineProfile MachineProfile::ssd_workstation() {
  MachineProfile p;
  p.name = "SSD workstation";
  // 4-socket Xeon workstation, 3 TB RAM, two SSDs.
  p.io_resources = 2;
  p.resource_bw = 1.1e9;
  p.ranks_per_resource = 0;
  p.per_file_overhead_bytes = 4096;
  p.file_create_seconds = 5.0e-5;
  p.mds_parallelism = 8;
  p.create_contention_knee = 0;
  p.shared_lock_factor = 1.0e-5;
  p.shared_base_efficiency = 0.5;
  p.aggregation_bw = 2.0e9;  // shared memory
  p.msg_latency = 2.0e-7;
  p.incast_factor = 0.01;
  p.per_writer_bw = 1.1e9;
  // Reads: local SSDs; per-process stream ~70 MB/s with 64 readers
  // sharing ~4.5 GB/s aggregate; file opens are effectively free compared
  // to a parallel filesystem.
  p.read_bw_per_process = 7.0e7;
  p.read_total_bw = 4.5e9;
  p.file_open_seconds = 2.0e-4;
  return p;
}

}  // namespace spio::iosim
