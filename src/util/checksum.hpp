#pragma once

/// \file checksum.hpp
/// CRC-64/XZ (reflected ECMA-182 polynomial) over byte spans. Used by the
/// writer's rewrite-and-revalidate recovery path and by the optional
/// `checksums.spio` sidecar that lets readers detect silent data-file
/// corruption (bit rot, torn writes that escaped the writer).

#include <cstddef>
#include <cstdint>
#include <span>

namespace spio {

/// CRC-64/XZ of `data`. Matches the widely-used xz/liblzma parameters
/// (poly 0x42F0E1EBA9EA3693 reflected, init/xorout ~0), so values can be
/// cross-checked with external tooling.
std::uint64_t crc64(std::span<const std::byte> data);

}  // namespace spio
