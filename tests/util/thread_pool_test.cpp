/// \file thread_pool_test.cpp
/// The pool's drain-and-stop contract, which QueryService shutdown
/// leans on: every accepted task executes exactly once — tasks already
/// queued when the drain starts, tasks enqueued *by running tasks*
/// while the drain is in progress, and tasks submitted after the pool
/// stopped (those run inline on the submitter).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace spio {
namespace {

TEST(ThreadPool, DrainAndStopRunsEverythingQueued) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ran.fetch_add(1);
    }));
  pool.drain_and_stop();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_TRUE(pool.stopped());
  for (auto& f : futures)
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
}

TEST(ThreadPool, DrainAndStopIsIdempotentAndDestructorSafe) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.submit([&] { ran.fetch_add(1); });
  pool.drain_and_stop();
  pool.drain_and_stop();  // second drain: no-op, no crash
  EXPECT_EQ(ran.load(), 8);
  // Destructor runs drain_and_stop a third time on scope exit.
}

TEST(ThreadPool, SubmitAfterStopRunsInlineAndIsNeverDropped) {
  ThreadPool pool(3);
  pool.drain_and_stop();
  std::atomic<int> ran{0};
  std::future<void> f = pool.submit([&] { ran.fetch_add(1); });
  // Inline execution: satisfied before submit returned.
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(ran.load(), 1);
}

/// The QueryService-destruction regression: a task that enqueues a
/// follow-up task while the pool is being drained/destroyed. Whether
/// the follow-up lands in the queue (drain not yet started) or runs
/// inline on the worker (drain in progress), it must execute.
TEST(ThreadPool, TaskEnqueuedDuringDestructionStillExecutes) {
  std::atomic<int> followups{0};
  for (int round = 0; round < 20; ++round) {
    auto pool = std::make_unique<ThreadPool>(2);
    // Raw pointer: unique_ptr::reset() nulls its pointer before the
    // destructor runs, but the pool object stays alive (and usable by
    // its own workers) until drain_and_stop returns.
    ThreadPool* raw = pool.get();
    std::atomic<int> submitted{0};
    for (int i = 0; i < 8; ++i)
      raw->submit([&, i] {
        std::this_thread::sleep_for(std::chrono::microseconds(50 * i));
        raw->submit([&] { followups.fetch_add(1); });
        submitted.fetch_add(1);
      });
    pool.reset();  // destructor: drain_and_stop
    EXPECT_EQ(submitted.load(), 8) << "round " << round;
    EXPECT_EQ(followups.load(), 8 * (round + 1)) << "round " << round;
  }
}

TEST(ThreadPool, InlineWhenSingleFalseSpawnsARealWorker) {
  ThreadPool pool(1, /*inline_when_single=*/false);
  const auto self = std::this_thread::get_id();
  std::thread::id task_thread;
  pool.submit([&] { task_thread = std::this_thread::get_id(); }).get();
  EXPECT_NE(task_thread, self);

  ThreadPool inline_pool(1);
  std::thread::id inline_thread;
  inline_pool.submit([&] { inline_thread = std::this_thread::get_id(); });
  EXPECT_EQ(inline_thread, self);
}

}  // namespace
}  // namespace spio
