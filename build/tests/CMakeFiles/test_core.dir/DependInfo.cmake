
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/aggregation_grid_test.cpp" "tests/CMakeFiles/test_core.dir/core/aggregation_grid_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/aggregation_grid_test.cpp.o.d"
  "/root/repo/tests/core/aggregation_plan_test.cpp" "tests/CMakeFiles/test_core.dir/core/aggregation_plan_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/aggregation_plan_test.cpp.o.d"
  "/root/repo/tests/core/communication_locality_test.cpp" "tests/CMakeFiles/test_core.dir/core/communication_locality_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/communication_locality_test.cpp.o.d"
  "/root/repo/tests/core/concurrent_jobs_test.cpp" "tests/CMakeFiles/test_core.dir/core/concurrent_jobs_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/concurrent_jobs_test.cpp.o.d"
  "/root/repo/tests/core/density_test.cpp" "tests/CMakeFiles/test_core.dir/core/density_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/density_test.cpp.o.d"
  "/root/repo/tests/core/distributed_read_test.cpp" "tests/CMakeFiles/test_core.dir/core/distributed_read_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/distributed_read_test.cpp.o.d"
  "/root/repo/tests/core/file_index_test.cpp" "tests/CMakeFiles/test_core.dir/core/file_index_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/file_index_test.cpp.o.d"
  "/root/repo/tests/core/format_golden_test.cpp" "tests/CMakeFiles/test_core.dir/core/format_golden_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/format_golden_test.cpp.o.d"
  "/root/repo/tests/core/fuzz_roundtrip_test.cpp" "tests/CMakeFiles/test_core.dir/core/fuzz_roundtrip_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/fuzz_roundtrip_test.cpp.o.d"
  "/root/repo/tests/core/kd_partition_test.cpp" "tests/CMakeFiles/test_core.dir/core/kd_partition_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/kd_partition_test.cpp.o.d"
  "/root/repo/tests/core/knn_test.cpp" "tests/CMakeFiles/test_core.dir/core/knn_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/knn_test.cpp.o.d"
  "/root/repo/tests/core/lod_reads_test.cpp" "tests/CMakeFiles/test_core.dir/core/lod_reads_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/lod_reads_test.cpp.o.d"
  "/root/repo/tests/core/lod_test.cpp" "tests/CMakeFiles/test_core.dir/core/lod_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/lod_test.cpp.o.d"
  "/root/repo/tests/core/metadata_test.cpp" "tests/CMakeFiles/test_core.dir/core/metadata_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/metadata_test.cpp.o.d"
  "/root/repo/tests/core/partition_factor_test.cpp" "tests/CMakeFiles/test_core.dir/core/partition_factor_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/partition_factor_test.cpp.o.d"
  "/root/repo/tests/core/range_query_test.cpp" "tests/CMakeFiles/test_core.dir/core/range_query_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/range_query_test.cpp.o.d"
  "/root/repo/tests/core/restart_test.cpp" "tests/CMakeFiles/test_core.dir/core/restart_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/restart_test.cpp.o.d"
  "/root/repo/tests/core/scale_integration_test.cpp" "tests/CMakeFiles/test_core.dir/core/scale_integration_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/scale_integration_test.cpp.o.d"
  "/root/repo/tests/core/spill_test.cpp" "tests/CMakeFiles/test_core.dir/core/spill_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/spill_test.cpp.o.d"
  "/root/repo/tests/core/stream_query_test.cpp" "tests/CMakeFiles/test_core.dir/core/stream_query_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/stream_query_test.cpp.o.d"
  "/root/repo/tests/core/timeseries_test.cpp" "tests/CMakeFiles/test_core.dir/core/timeseries_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/timeseries_test.cpp.o.d"
  "/root/repo/tests/core/validate_test.cpp" "tests/CMakeFiles/test_core.dir/core/validate_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/validate_test.cpp.o.d"
  "/root/repo/tests/core/writer_reader_test.cpp" "tests/CMakeFiles/test_core.dir/core/writer_reader_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/writer_reader_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spio_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/spio_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spio_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/spio_faultsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
