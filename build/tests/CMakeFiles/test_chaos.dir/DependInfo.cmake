
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chaos/chaos_recovery_test.cpp" "tests/CMakeFiles/test_chaos.dir/chaos/chaos_recovery_test.cpp.o" "gcc" "tests/CMakeFiles/test_chaos.dir/chaos/chaos_recovery_test.cpp.o.d"
  "/root/repo/tests/chaos/chaos_write_test.cpp" "tests/CMakeFiles/test_chaos.dir/chaos/chaos_write_test.cpp.o" "gcc" "tests/CMakeFiles/test_chaos.dir/chaos/chaos_write_test.cpp.o.d"
  "/root/repo/tests/chaos/fault_plan_test.cpp" "tests/CMakeFiles/test_chaos.dir/chaos/fault_plan_test.cpp.o" "gcc" "tests/CMakeFiles/test_chaos.dir/chaos/fault_plan_test.cpp.o.d"
  "/root/repo/tests/chaos/reliable_exchange_test.cpp" "tests/CMakeFiles/test_chaos.dir/chaos/reliable_exchange_test.cpp.o" "gcc" "tests/CMakeFiles/test_chaos.dir/chaos/reliable_exchange_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spio_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/spio_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spio_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/spio_faultsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
