file(REMOVE_RECURSE
  "../bench/micro_shuffle"
  "../bench/micro_shuffle.pdb"
  "CMakeFiles/micro_shuffle.dir/micro_shuffle.cpp.o"
  "CMakeFiles/micro_shuffle.dir/micro_shuffle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
