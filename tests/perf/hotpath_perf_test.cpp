/// \file hotpath_perf_test.cpp
/// Perf smoke tests (ctest label `perf`): floor thresholds for the write
/// pipeline's optimized kernels. The bars are deliberately generous —
/// several times below what bench/run_hotpath.sh measures on an idle
/// laptop-class machine — so they only trip on a real regression (an
/// accidental re-pessimization of a hot loop), not on machine noise or a
/// loaded CI box. BENCH_hotpath.json carries the precise numbers.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <vector>

#include "core/writer.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Best of `reps` timed runs — perf floors compare the machine's best
/// effort, not a run that lost its timeslice.
double best_seconds(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) best = std::min(best, seconds_of(fn));
  return best;
}

TEST(HotpathPerf, Crc64SustainsAGigabytePerSecond) {
  constexpr std::size_t kBytes = 64ull << 20;
  std::vector<std::byte> buf(kBytes);
  Xoshiro256 rng(7);
  for (auto& b : buf) b = static_cast<std::byte>(rng.next());

  volatile std::uint64_t sink = 0;
  const double s = best_seconds(3, [&] { sink = sink ^ crc64(buf); });

  const double gbs = static_cast<double>(kBytes) / 1e9 / s;
  EXPECT_GE(gbs, 1.0) << "crc64 dropped to " << gbs
                      << " GB/s on a 64 MiB buffer; the sliced kernel "
                         "sustains well over 1 GB/s";
}

TEST(HotpathPerf, GeneralPathBinningSustainsTwoMillionParticlesPerSecond) {
  constexpr std::uint64_t kParticles = 500000;
  const auto decomp = PatchDecomposition::for_ranks(Box3::unit(), 64);
  const auto plan = AggregationPlan::non_adaptive(
      decomp, {1, 1, 1}, AggregatorPlacement::kUniform);
  // Domain-wide particles: every partition gets a share, the binning
  // worst case.
  const auto local = workload::uniform(Schema::uintah(), Box3::unit(),
                                       kParticles, stream_seed(11, 0), 0);

  const double s = best_seconds(3, [&] {
    const auto bins = writer_detail::bin_particles(local, plan, false);
    ASSERT_GT(bins.bin_count(), 0u);
  });

  const double mpps = static_cast<double>(kParticles) / 1e6 / s;
  EXPECT_GE(mpps, 2.0) << "general-path binning dropped to " << mpps
                       << " Mparticles/s; the two-pass scatter sustains "
                          "several times this";
}

}  // namespace
}  // namespace spio
