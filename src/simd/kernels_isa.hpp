#pragma once

/// \file kernels_isa.hpp
/// Internal: per-ISA kernel entry points, one set per compiled TU
/// (kernels_sse2.cpp at the baseline ISA, kernels_avx2.cpp at
/// `-mavx2`). The dispatcher in kernels.cpp routes to these based on
/// `active_level()`; it never calls into a TU whose `*_compiled()`
/// flag is false, so the abort-stub bodies the guards leave behind on
/// toolchains that can't build an ISA are unreachable.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simd/kernels.hpp"
#include "simd/position_mirror.hpp"
#include "util/box.hpp"
#include "workload/decomposition.hpp"
#include "workload/particle_buffer.hpp"

namespace spio::simd {

// True when the TU was actually built at its target ISA.
bool sse2_compiled();
bool avx2_compiled();

namespace detail {

std::uint64_t filter_box_sse2(const PositionMirror& mirror,
                              const std::byte* base, std::size_t record_size,
                              const Box3& box, ParticleBuffer& out);
std::uint64_t filter_box_avx2(const PositionMirror& mirror,
                              const std::byte* base, std::size_t record_size,
                              const Box3& box, ParticleBuffer& out);

std::uint64_t filter_box_ranges_sse2(const PositionMirror& mirror,
                                     const std::byte* base,
                                     std::size_t record_size, const Box3& box,
                                     const RangePred* preds, std::size_t npreds,
                                     ParticleBuffer& out);
std::uint64_t filter_box_ranges_avx2(const PositionMirror& mirror,
                                     const std::byte* base,
                                     std::size_t record_size, const Box3& box,
                                     const RangePred* preds, std::size_t npreds,
                                     ParticleBuffer& out);

void bin_by_owner_sse2(const PositionMirror& mirror, const std::byte* base,
                       std::size_t record_size,
                       const PatchDecomposition& decomp,
                       std::vector<ParticleBuffer>& outgoing);
void bin_by_owner_avx2(const PositionMirror& mirror, const std::byte* base,
                       std::size_t record_size,
                       const PatchDecomposition& decomp,
                       std::vector<ParticleBuffer>& outgoing);

}  // namespace detail
}  // namespace spio::simd
