/// \file query_service_test.cpp
/// The concurrency torture suite for QueryService (ISSUE 6): the serial
/// path is THE semantics, and a saturated service must reproduce it
/// byte for byte. Pinned here:
///   - 64 client threads hammering mixed box/LOD/range queries stay
///     byte-identical to serial oracles (coalesced and uncoalesced),
///   - K concurrent same-prefix queries cost exactly one disk open
///     (single-flight: 1 leader, K-1 followers),
///   - a full admission queue rejects with `RejectedError`,
///   - a deadline expiring mid-I/O returns `TimeoutError` and leaves
///     the cache/engine fully usable (the next query is byte-identical),
///   - shutdown with queries in flight drains them all cleanly.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/query_service.hpp"
#include "core/read_engine.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

/// Scoped engine configuration (mirrors read_engine_test): pool size +
/// cache budget, restored on exit.
class EngineConfig {
 public:
  EngineConfig(int threads, std::uint64_t budget)
      : prev_threads_(ReadEngine::instance().concurrency()),
        prev_budget_(ReadEngine::instance().cache_budget()) {
    ReadEngine::instance().set_concurrency(threads);
    ReadEngine::instance().set_cache_budget(budget);
  }
  ~EngineConfig() {
    ReadEngine::instance().set_concurrency(prev_threads_);
    ReadEngine::instance().set_cache_budget(prev_budget_);
  }

 private:
  int prev_threads_;
  std::uint64_t prev_budget_;
};

/// Scoped fetch hook, always uninstalled on exit (and engine counters
/// reset so per-test assertions start from zero).
class ScopedFetchHook {
 public:
  explicit ScopedFetchHook(ReadEngine::FetchHook hook) {
    ReadEngine::instance().set_fetch_hook(std::move(hook));
  }
  ~ScopedFetchHook() { ReadEngine::instance().set_fetch_hook(nullptr); }
};

bool same_bytes(std::span<const std::byte> a, std::span<const std::byte> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

class QueryServiceTorture : public ::testing::Test {
 protected:
  static constexpr int kRanks = 8;
  static constexpr std::uint64_t kPerRank = 500;

  static void SetUpTestSuite() {
    dir_ = new TempDir("spio-serve");
    const PatchDecomposition decomp =
        PatchDecomposition::for_ranks(Box3::unit(), kRanks);
    WriterConfig cfg;
    cfg.dir = dir_->path();
    cfg.factor = {1, 1, 1};  // one file per patch: queries fan out
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      const auto local = workload::uniform(
          Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
          stream_seed(91, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      write_dataset(comm, decomp, local, cfg);
    });
  }
  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  static TempDir* dir_;
};

TempDir* QueryServiceTorture::dir_ = nullptr;

/// One query shape the torture mix draws from, with its serial-oracle
/// result bytes precomputed.
struct TortureCase {
  std::function<ParticleBuffer(const Dataset&)> run;
  std::vector<std::byte> want;
  std::string key;
};

TEST_F(QueryServiceTorture, SixtyFourClientsStayByteIdenticalToSerialOracle) {
  const Dataset ds = Dataset::open(dir_->path());

  // Mixed shapes: full boxes, an LOD prefix query, a range query.
  std::vector<TortureCase> cases;
  const std::vector<Box3> boxes = {
      Box3({0.05, 0.05, 0.05}, {0.95, 0.95, 0.95}),
      Box3({0.0, 0.0, 0.0}, {0.5, 1.0, 1.0}),
      Box3({0.3, 0.1, 0.2}, {0.7, 0.8, 0.9}),
  };
  for (std::size_t b = 0; b < boxes.size(); ++b) {
    const Box3 box = boxes[b];
    cases.push_back({[box](const Dataset& d) { return d.query_box(box); },
                     {},
                     "box:" + std::to_string(b)});
    cases.push_back(
        {[box](const Dataset& d) { return d.query_box(box, 2); },
         {},
         "lod:" + std::to_string(b)});
  }
  {
    const Box3 box = boxes[0];
    const std::vector<RangeFilter> filters = {{2, 0, 0.2, 0.8}};
    cases.push_back({[box, filters](const Dataset& d) {
                       return d.query(box, filters);
                     },
                     {},
                     "range:0"});
  }

  // Serial oracles: cache off, pool forced to 1 — the pre-engine path.
  {
    EngineConfig serial(1, 0);
    for (TortureCase& c : cases) {
      const ParticleBuffer ref = c.run(ds);
      c.want.assign(ref.bytes().begin(), ref.bytes().end());
    }
  }

  EngineConfig cfg(4, 256ull << 20);
  ReadEngine::instance().clear_cache();
  QueryService svc(ServiceConfig{8, 512, {}});

  constexpr int kClients = 64;
  constexpr int kQueriesPerClient = 6;
  std::atomic<int> mismatches{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int cl = 0; cl < kClients; ++cl)
    clients.emplace_back([&, cl] {
      Xoshiro256 rng(stream_seed(92, static_cast<std::uint64_t>(cl)));
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const TortureCase& c = cases[rng.uniform_index(cases.size())];
        QueryService::Options opt;
        // Half the clients coalesce; results must agree either way.
        if (cl % 2 == 0) opt.coalesce_key = c.key;
        const QueryService::Result got =
            svc.run([&c, &ds] { return c.run(ds); }, opt);
        if (!same_bytes(got->bytes(),
                        std::span<const std::byte>(c.want)))
          mismatches.fetch_add(1);
        completed.fetch_add(1);
      }
    });
  for (auto& t : clients) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(completed.load(), kClients * kQueriesPerClient);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.accepted, static_cast<std::uint64_t>(kClients) *
                             kQueriesPerClient);
  EXPECT_EQ(st.completed, st.accepted);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_EQ(st.failed, 0u);
  svc.shutdown();
}

TEST_F(QueryServiceTorture, ConcurrentSamePrefixQueriesCostExactlyOneOpen) {
  const Dataset ds = Dataset::open(dir_->path());
  EngineConfig cfg(1, 256ull << 20);
  ReadEngine& eng = ReadEngine::instance();
  eng.clear_cache();
  eng.reset_cache_stats();

  constexpr int kClients = 8;
  // Hold every fetch open long enough that all K clients pile onto the
  // in-flight read before the leader finishes.
  std::atomic<int> disk_reads{0};
  ScopedFetchHook hook([&](const std::filesystem::path&, std::uint64_t) {
    disk_reads.fetch_add(1);
    // Generous: even under TSan every client must reach the in-flight
    // join while the leader is still inside this sleep.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  });

  QueryService svc(ServiceConfig{kClients, 64, {}});
  std::atomic<int> started{0};
  std::vector<ReadStats> stats(kClients);
  std::vector<std::future<QueryService::Result>> futures;
  for (int i = 0; i < kClients; ++i)
    futures.push_back(svc.submit([&, i] {
      // Rough start barrier: wait until every client's query function
      // is running so the fetches genuinely race.
      started.fetch_add(1);
      while (started.load() < kClients) std::this_thread::yield();
      return ds.read_data_file(0, -1, 1, &stats[i]);
    }));

  std::vector<QueryService::Result> results;
  for (auto& f : futures) results.push_back(f.get());
  svc.shutdown();

  // Exactly one disk read; every result shares those bytes.
  EXPECT_EQ(disk_reads.load(), 1);
  std::uint64_t opens = 0, cache_hits = 0;
  for (const ReadStats& rs : stats) {
    opens += rs.files_opened;
    cache_hits += rs.cache_hits;
  }
  EXPECT_EQ(opens, 1u);
  EXPECT_EQ(cache_hits, static_cast<std::uint64_t>(kClients) - 1);
  const ReadCacheStats cs = eng.cache_stats();
  EXPECT_EQ(cs.singleflight_leaders, 1u);
  EXPECT_EQ(cs.singleflight_followers,
            static_cast<std::uint64_t>(kClients) - 1);
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_TRUE(same_bytes(results[0]->bytes(), results[i]->bytes()));
}

TEST_F(QueryServiceTorture, FullAdmissionQueueRejectsWithTypedError) {
  const Dataset ds = Dataset::open(dir_->path());
  QueryService svc(ServiceConfig{1, 2, {}});

  // Block the single worker, then fill the two queue slots.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  auto blocked = svc.submit([gate, &ds] {
    gate.wait();
    return ds.query_box(Box3::unit());
  });
  // The worker may not have dequeued the blocker yet; admit the two
  // fillers with retry until both sit in the queue.
  std::vector<std::future<QueryService::Result>> fillers;
  while (fillers.size() < 2) {
    try {
      fillers.push_back(svc.submit([gate, &ds] {
        gate.wait();
        return ds.query_box(Box3::unit());
      }));
    } catch (const RejectedError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Wait until the blocker is actually executing (queue == 2 fillers).
  while (svc.stats().inflight == 0) std::this_thread::yield();

  EXPECT_THROW(svc.submit([&ds] { return ds.query_box(Box3::unit()); }),
               RejectedError);
  EXPECT_GE(svc.stats().rejected, 1u);

  release.set_value();
  EXPECT_NO_THROW(blocked.get());
  for (auto& f : fillers) EXPECT_NO_THROW(f.get());
  svc.shutdown();
  EXPECT_THROW(svc.submit([&ds] { return ds.query_box(Box3::unit()); }),
               RejectedError);
}

TEST_F(QueryServiceTorture, DeadlineExpiryMidIoLeavesEngineUsable) {
  const Dataset ds = Dataset::open(dir_->path());
  EngineConfig cfg(1, 256ull << 20);
  ReadEngine::instance().clear_cache();
  const Box3 box = ds.metadata().domain;

  ParticleBuffer want(ds.metadata().schema);
  {
    EngineConfig serial(1, 0);
    want = ds.query_box(box);
  }

  // 3 ms per file over 8 files vs a 10 ms budget: the deadline expires
  // mid-query, strictly between file fetches.
  ScopedFetchHook hook([](const std::filesystem::path&, std::uint64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  });

  QueryService svc(ServiceConfig{2, 16, {}});
  QueryService::Options opt;
  opt.deadline = QueryService::Clock::now() + std::chrono::milliseconds(10);
  EXPECT_THROW(svc.run([&] { return ds.query_box(box); }, opt),
               TimeoutError);
  EXPECT_EQ(svc.stats().deadline_expired, 1u);
  EXPECT_EQ(svc.stats().failed, 0u);  // timeouts are not failures

  // The expired query corrupted nothing: the same query, no deadline,
  // completes byte-identical to the serial oracle (partially-warmed
  // cache and all).
  const QueryService::Result got =
      svc.run([&] { return ds.query_box(box); });
  EXPECT_TRUE(same_bytes(got->bytes(), want.bytes()));
  svc.shutdown();
}

TEST_F(QueryServiceTorture, DeadlineExpiredInQueueNeverRuns) {
  const Dataset ds = Dataset::open(dir_->path());
  QueryService svc(ServiceConfig{1, 8, {}});

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  auto blocker = svc.submit([gate, &ds] {
    gate.wait();
    return ds.query_box(Box3::unit());
  });
  while (svc.stats().inflight == 0) std::this_thread::yield();

  std::atomic<bool> ran{false};
  QueryService::Options opt;
  opt.deadline = QueryService::Clock::now() - std::chrono::milliseconds(1);
  auto doomed = svc.submit(
      [&]() -> ParticleBuffer {
        ran.store(true);
        return ds.query_box(Box3::unit());
      },
      opt);

  release.set_value();
  EXPECT_NO_THROW(blocker.get());
  EXPECT_THROW(doomed.get(), TimeoutError);
  EXPECT_FALSE(ran.load()) << "expired-in-queue query must not execute";
  svc.shutdown();
}

TEST_F(QueryServiceTorture, CoalescedQueriesShareOneExecutionAndOneBuffer) {
  const Dataset ds = Dataset::open(dir_->path());
  QueryService svc(ServiceConfig{1, 32, {}});

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> executions{0};
  const Box3 box({0.1, 0.1, 0.1}, {0.9, 0.9, 0.9});
  const auto fn = [&]() -> ParticleBuffer {
    executions.fetch_add(1);
    gate.wait();
    return ds.query_box(box);
  };

  QueryService::Options opt;
  opt.coalesce_key = "shared-box";
  constexpr int kWaiters = 6;
  std::vector<std::future<QueryService::Result>> futures;
  for (int i = 0; i < kWaiters; ++i) futures.push_back(svc.submit(fn, opt));
  release.set_value();

  std::vector<QueryService::Result> results;
  for (auto& f : futures) results.push_back(f.get());
  EXPECT_EQ(executions.load(), 1);
  for (int i = 1; i < kWaiters; ++i)
    EXPECT_EQ(results[0].get(), results[i].get())
        << "coalesced waiters must share one buffer";
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.coalesced, static_cast<std::uint64_t>(kWaiters) - 1);
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kWaiters));
  svc.shutdown();
}

TEST_F(QueryServiceTorture, ShutdownWithInflightQueriesDrainsCleanly) {
  const Dataset ds = Dataset::open(dir_->path());
  EngineConfig cfg(1, 256ull << 20);
  ScopedFetchHook hook([](const std::filesystem::path&, std::uint64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  ReadEngine::instance().clear_cache();

  ParticleBuffer want(ds.metadata().schema);
  {
    EngineConfig serial(1, 0);
    want = ds.query_box(Box3::unit());
  }

  auto svc = std::make_unique<QueryService>(ServiceConfig{2, 32, {}});
  constexpr int kQueries = 6;
  std::vector<std::future<QueryService::Result>> futures;
  for (int i = 0; i < kQueries; ++i)
    futures.push_back(
        svc->submit([&ds] { return ds.query_box(Box3::unit()); }));

  svc->shutdown();  // queries are queued/executing right now

  // Every accepted future must be resolved — with the right bytes.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const QueryService::Result got = f.get();
    EXPECT_TRUE(same_bytes(got->bytes(), want.bytes()));
  }
  EXPECT_EQ(svc->stats().completed, static_cast<std::uint64_t>(kQueries));
  svc.reset();  // destructor after shutdown: no-op, no crash
}

}  // namespace
}  // namespace spio
