/// \file abl_placement.cpp
/// Ablation: uniform aggregator placement over the rank space (§3.2, the
/// paper's choice) versus packing aggregators into the low ranks. On a
/// machine with dedicated I/O nodes mapped to rank blocks (Mira), packed
/// placement funnels all file traffic through the few I/O nodes owning
/// the low ranks; uniform placement engages the whole job's I/O nodes.

#include <iostream>
#include <vector>

#include "bench_env.hpp"
#include "iosim/event_sim.hpp"
#include "iosim/machine_profile.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace spio;
using namespace spio::iosim;

namespace {

/// Storage time with an explicit aggregator-rank -> ION mapping, driven
/// through the discrete-event engine.
double storage_time_with_placement(const MachineProfile& m, int nprocs,
                                   const std::vector<int>& aggregator_ranks,
                                   double bytes_per_file) {
  const int job_res = m.job_resources(nprocs);
  const int ranks_per_res =
      m.ranks_per_resource > 0 ? m.ranks_per_resource : nprocs;
  EventSim sim(job_res);
  const double service =
      (bytes_per_file + m.per_file_overhead_bytes) / m.resource_bw;
  int i = 0;
  for (const int agg : aggregator_ranks) {
    const int res = std::min(job_res - 1, agg / ranks_per_res);
    const double ready =
        (static_cast<double>(i++ / m.mds_parallelism) + 1.0) *
        m.file_create_seconds;
    sim.submit(res, ready, service);
  }
  sim.run();
  return sim.makespan();
}

}  // namespace

int main() {
  spio::bench::init_observability();
  const auto mira = MachineProfile::mira();
  const std::uint64_t bytes_per_proc = 32768ull * 124;

  Table t("Ablation: aggregator placement on Mira (32K particles/core, "
          "group size 32)",
          {"procs", "uniform GB/s", "packed GB/s", "speedup"});
  for (const int n : {8192, 32768, 131072, 262144}) {
    const int files = n / 32;
    const double total = static_cast<double>(bytes_per_proc) * n;
    const double per_file = total / files;

    std::vector<int> uniform, packed;
    for (int i = 0; i < files; ++i) {
      uniform.push_back(static_cast<int>(
          static_cast<std::int64_t>(i) * n / files));
      packed.push_back(i);
    }
    const double tu = storage_time_with_placement(mira, n, uniform, per_file);
    const double tp = storage_time_with_placement(mira, n, packed, per_file);
    t.row()
        .add_int(n)
        .add_double(throughput_gbs(static_cast<std::uint64_t>(total), tu), 2)
        .add_double(throughput_gbs(static_cast<std::uint64_t>(total), tp), 2)
        .add_double(tp / tu, 2);
  }
  t.print(std::cout);
  std::cout << "\nuniform placement engages every I/O node the job can "
               "reach; packing the\naggregators into low ranks serializes "
               "all files behind a few I/O nodes.\n";
  return 0;
}
