#pragma once

/// \file flight_recorder.hpp
/// Always-on per-rank flight recorder (docs/OBSERVABILITY.md).
///
/// A fixed-capacity ring of 64-byte binary records per rank that keeps
/// the *most recent* span begin/ends, log events, simmpi sends/receives
/// and faultsim injections — even when tracing (`obs::enabled()`) is
/// off. Unlike the opt-in `Tracer`, the recorder exists so a failed run
/// can explain itself: on any failure path the rings are dumped into a
/// `postmortem.spio.json` bundle next to the dataset (postmortem.hpp).
///
/// Concurrency model: records are stored as 8 relaxed `std::atomic`
/// words per slot and the write cursor is a relaxed `fetch_add`, so the
/// recorder is lock-free and data-race-free by construction (TSan-clean;
/// `tests/obs/flight_recorder_test.cpp` stresses it). A reader that
/// snapshots while writers wrap may observe a torn record — acceptable
/// for a black box, never undefined behavior.
///
/// Cost model: one relaxed load (the kill switch), one `fetch_add`, one
/// clock read and nine relaxed stores per record. The `perf`-label
/// overhead floor test bounds the combined disabled-span + recorder
/// path.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/obs.hpp"

namespace spio::obs {

/// What a flight record describes. Values are stable (they appear in
/// postmortem bundles as names, but tests rely on the mapping).
enum class FlightType : std::uint8_t {
  kSpanBegin = 0,  ///< ScopedSpan/PhaseSpan opened; text = span name
  kSpanEnd = 1,    ///< span closed; text = span name
  kLog = 2,        ///< log event emitted; detail = level, text = event
  kSend = 3,       ///< simmpi send; a = dst, b = bytes, detail = tag (mod 256)
  kRecv = 4,       ///< simmpi recv; a = src, b = bytes, detail = tag (mod 256)
  kFault = 5,      ///< faultsim injection; text = kind, a/b = site args
  kPhase = 6,      ///< writer phase entered; text = phase name
  kMark = 7,       ///< free-form marker
};

const char* flight_type_name(FlightType t);

/// One decoded ring record (the atomic words unpacked; see
/// `FlightRecorder::record` for the field meanings per type).
struct FlightRecord {
  double ts_us = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t seq = 0;
  std::int16_t rank = -1;
  FlightType type = FlightType::kMark;
  std::uint8_t detail = 0;
  char text[33] = {};  // NUL-terminated, truncated to 32 chars
};

/// Snapshot of one rank's ring, oldest first (sorted by timestamp).
struct FlightRingSnapshot {
  int rank = -1;               ///< -1 = non-rank threads
  std::uint64_t recorded = 0;  ///< total records ever pushed
  std::uint64_t dropped = 0;   ///< records overwritten by wraparound
  std::vector<FlightRecord> events;
};

class FlightRecorder {
 public:
  /// Records kept per rank ring; 64 bytes each.
  static constexpr std::size_t kCapacity = 1024;
  /// Rank ids above this share the overflow ring (slot 0, like rank -1).
  static constexpr int kMaxRank = 511;

  static FlightRecorder& instance();

  /// Append a record to the calling thread's rank ring (lock-free; the
  /// ring is allocated on first use). `text` may be null; at most 32
  /// chars are kept. No-op when the recorder is disabled.
  void record(FlightType type, const char* text, std::uint64_t a = 0,
              std::uint64_t b = 0, std::uint8_t detail = 0) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    push(type, text, a, b, detail);
  }

  /// Decode every allocated ring. Safe to call at any time, including
  /// concurrently with writers (see the torn-record caveat above).
  std::vector<FlightRingSnapshot> snapshot() const;

  /// Total records ever pushed across all rings (diagnostics/tests).
  std::uint64_t record_count() const;

  /// Reset every ring's cursor (records become invisible; storage and
  /// registration stay). Test helper — not safe against concurrent
  /// writers that have reserved but not yet filled a slot.
  void clear();

  /// Kill switch (`SPIO_FLIGHT=off`). The recorder is on by default.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool is_enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kWordsPerRecord = 8;
  static constexpr std::size_t kSlots = std::size_t{kMaxRank} + 2;

  /// One rank's storage: a power-of-two ring of packed records.
  struct Ring {
    std::atomic<std::uint64_t> cursor{0};
    std::array<std::atomic<std::uint64_t>, kCapacity * kWordsPerRecord>
        words{};
  };

  FlightRecorder() = default;

  void push(FlightType type, const char* text, std::uint64_t a,
            std::uint64_t b, std::uint8_t detail);
  Ring& ring_for_slot(std::size_t slot);

  std::atomic<bool> enabled_{true};
  std::array<std::atomic<Ring*>, kSlots> rings_{};
  std::mutex alloc_mu_;  // serializes ring allocation only
  std::vector<std::unique_ptr<Ring>> owned_;
};

/// Convenience front door for instrumentation sites (inline: one call,
/// then the recorder's own relaxed-load gate).
inline void flight_record(FlightType type, const char* text,
                          std::uint64_t a = 0, std::uint64_t b = 0,
                          std::uint8_t detail = 0) {
  FlightRecorder::instance().record(type, text, a, b, detail);
}

}  // namespace spio::obs
