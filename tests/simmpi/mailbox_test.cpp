#include "simmpi/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace simmpi {
namespace {

Message msg(int src, int tag, std::size_t bytes = 0) {
  return Message{src, tag, std::vector<std::byte>(bytes)};
}

TEST(Mailbox, TryReceiveMatchesSourceAndTag) {
  Mailbox mb;
  mb.deliver(msg(1, 7));
  mb.deliver(msg(2, 7));
  EXPECT_FALSE(mb.try_receive(3, 7).has_value());
  EXPECT_FALSE(mb.try_receive(1, 8).has_value());
  const auto m = mb.try_receive(2, 7);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->src, 2);
  EXPECT_EQ(mb.pending(), 1u);
}

TEST(Mailbox, WildcardsMatchFirstArrival) {
  Mailbox mb;
  mb.deliver(msg(5, 1));
  mb.deliver(msg(6, 2));
  const auto any = mb.try_receive(kAnySource, kAnyTag);
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(any->src, 5);
  const auto by_tag = mb.try_receive(kAnySource, 2);
  ASSERT_TRUE(by_tag.has_value());
  EXPECT_EQ(by_tag->src, 6);
}

TEST(Mailbox, FifoPerSourceAndTag) {
  Mailbox mb;
  mb.deliver(msg(1, 0, 10));
  mb.deliver(msg(1, 0, 20));
  mb.deliver(msg(1, 0, 30));
  EXPECT_EQ(mb.try_receive(1, 0)->payload.size(), 10u);
  EXPECT_EQ(mb.try_receive(1, 0)->payload.size(), 20u);
  EXPECT_EQ(mb.try_receive(1, 0)->payload.size(), 30u);
}

TEST(Mailbox, ProbeReportsEnvelopeWithoutConsuming) {
  Mailbox mb;
  mb.deliver(msg(4, 9, 128));
  int src = -1, tag = -1;
  std::size_t bytes = 0;
  EXPECT_TRUE(mb.probe(kAnySource, kAnyTag, &src, &tag, &bytes));
  EXPECT_EQ(src, 4);
  EXPECT_EQ(tag, 9);
  EXPECT_EQ(bytes, 128u);
  EXPECT_EQ(mb.pending(), 1u);
  EXPECT_FALSE(mb.probe(4, 10));
}

TEST(Mailbox, BlockingReceiveWakesOnDelivery) {
  Mailbox mb;
  std::atomic<bool> abort{false};
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mb.deliver(msg(0, 3, 5));
  });
  const Message m = mb.receive(0, 3, abort);
  EXPECT_EQ(m.payload.size(), 5u);
  producer.join();
}

TEST(Mailbox, BlockingReceiveThrowsOnAbort) {
  Mailbox mb;
  std::atomic<bool> abort{false};
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    abort.store(true);
    mb.interrupt();
  });
  EXPECT_THROW(mb.receive(0, 0, abort), Aborted);
  killer.join();
}

TEST(Mailbox, ReceiveSkipsNonMatchingMessages) {
  Mailbox mb;
  std::atomic<bool> abort{false};
  mb.deliver(msg(1, 1));
  mb.deliver(msg(2, 2));
  const Message m = mb.receive(2, 2, abort);
  EXPECT_EQ(m.src, 2);
  EXPECT_EQ(mb.pending(), 1u);  // the (1,1) message is still queued
}

}  // namespace
}  // namespace simmpi
