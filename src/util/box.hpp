#pragma once

/// \file box.hpp
/// Axis-aligned bounding boxes in physical (double) and index (integer)
/// space. `Box3` is the core spatial primitive of the library: simulation
/// patches, aggregation partitions, data-file extents and read queries are
/// all axis-aligned boxes.

#include <limits>
#include <ostream>

#include "util/vec3.hpp"

namespace spio {

/// An axis-aligned box over `[lo, hi)` in physical space.
///
/// The half-open convention matches the paper's aggregation grid: every
/// particle position falls into exactly one aggregation partition, with the
/// global domain's upper boundary treated inclusively by the point-location
/// helpers in `AggregationGrid`.
struct Box3 {
  Vec3d lo{std::numeric_limits<double>::max(),
           std::numeric_limits<double>::max(),
           std::numeric_limits<double>::max()};
  Vec3d hi{std::numeric_limits<double>::lowest(),
           std::numeric_limits<double>::lowest(),
           std::numeric_limits<double>::lowest()};

  constexpr Box3() = default;
  constexpr Box3(const Vec3d& lo_, const Vec3d& hi_) : lo(lo_), hi(hi_) {}

  /// An inverted box that behaves as the identity for `extend()`.
  static constexpr Box3 empty() { return Box3{}; }
  /// The unit cube `[0,1)^3`.
  static constexpr Box3 unit() { return {{0, 0, 0}, {1, 1, 1}}; }

  constexpr bool operator==(const Box3& o) const = default;

  /// True when the box has no volume (any `hi <= lo`).
  constexpr bool is_empty() const {
    return hi.x <= lo.x || hi.y <= lo.y || hi.z <= lo.z;
  }

  constexpr Vec3d size() const { return hi - lo; }
  constexpr Vec3d center() const { return (lo + hi) * 0.5; }
  constexpr double volume() const {
    return is_empty() ? 0.0 : size().product();
  }

  /// Point membership under the half-open convention `[lo, hi)`.
  constexpr bool contains(const Vec3d& p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y &&
           p.z >= lo.z && p.z < hi.z;
  }

  /// Point membership with the upper face included, used for the global
  /// domain boundary where particles may sit exactly on `hi`.
  constexpr bool contains_closed(const Vec3d& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  /// True when `inner` lies entirely within this box (closed comparison).
  constexpr bool contains_box(const Box3& inner) const {
    return inner.lo.x >= lo.x && inner.hi.x <= hi.x && inner.lo.y >= lo.y &&
           inner.hi.y <= hi.y && inner.lo.z >= lo.z && inner.hi.z <= hi.z;
  }

  /// True when the two boxes share volume (open overlap test).
  constexpr bool overlaps(const Box3& o) const {
    return lo.x < o.hi.x && hi.x > o.lo.x && lo.y < o.hi.y && hi.y > o.lo.y &&
           lo.z < o.hi.z && hi.z > o.lo.z;
  }

  /// Conservative overlap test: boxes that merely touch (shared face or
  /// degenerate extent) count as overlapping. Used when a superset answer
  /// is required, e.g. enumerating the ranks that *might* send particles
  /// to an aggregation partition.
  constexpr bool overlaps_closed(const Box3& o) const {
    return lo.x <= o.hi.x && hi.x >= o.lo.x && lo.y <= o.hi.y &&
           hi.y >= o.lo.y && lo.z <= o.hi.z && hi.z >= o.lo.z;
  }

  /// Grow the box to include point `p`.
  constexpr void extend(const Vec3d& p) {
    lo = Vec3d::min(lo, p);
    hi = Vec3d::max(hi, p);
  }

  /// Grow the box to include box `b` (empty boxes are ignored).
  constexpr void extend(const Box3& b) {
    if (b.lo.x > b.hi.x) return;  // inverted/empty sentinel
    lo = Vec3d::min(lo, b.lo);
    hi = Vec3d::max(hi, b.hi);
  }

  /// Intersection of two boxes; may be empty.
  static constexpr Box3 intersection(const Box3& a, const Box3& b) {
    return {Vec3d::max(a.lo, b.lo), Vec3d::min(a.hi, b.hi)};
  }
};

inline std::ostream& operator<<(std::ostream& os, const Box3& b) {
  return os << '[' << b.lo << " .. " << b.hi << ']';
}

/// An axis-aligned box over integer grid coordinates `[lo, hi)`.
/// Used for patch index ranges on the process grid.
struct Box3i {
  Vec3i lo{0, 0, 0};
  Vec3i hi{0, 0, 0};

  constexpr Box3i() = default;
  constexpr Box3i(const Vec3i& lo_, const Vec3i& hi_) : lo(lo_), hi(hi_) {}

  constexpr bool operator==(const Box3i& o) const = default;

  constexpr Vec3i size() const { return hi - lo; }
  constexpr std::int64_t cell_count() const {
    const Vec3i s = size();
    return (s.x <= 0 || s.y <= 0 || s.z <= 0) ? 0 : s.product();
  }
  constexpr bool contains(const Vec3i& p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y &&
           p.z >= lo.z && p.z < hi.z;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Box3i& b) {
  return os << '[' << b.lo << " .. " << b.hi << ')';
}

}  // namespace spio
