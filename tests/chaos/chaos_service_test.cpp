/// \file chaos_service_test.cpp
/// Chaos under concurrency (ISSUE 6): fault injection firing while the
/// query service is saturated. The write-side chaos suite injects
/// faults through `checked_write_file`; the read side injects them at
/// the engine boundary — the fetch hook delays reads (I/O weather) and
/// a chaos thread truncates a data file in place (a torn read) while 16
/// clients hammer the service. Every run must end in a clean outcome:
/// every future resolves (no hangs), each with byte-identical data or a
/// typed `spio::Error` (no silent corruption, no double-free — ASan
/// covers the latter), a postmortem bundle is emitted for the failure,
/// and after the file is restored the service recovers byte-identically.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "core/query_service.hpp"
#include "core/read_engine.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "obs/postmortem.hpp"
#include "simmpi/runtime.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

constexpr int kRanks = 8;
constexpr std::uint64_t kPerRank = 400;

void write_dataset_to(const std::filesystem::path& dir) {
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), kRanks);
  WriterConfig cfg;
  cfg.dir = dir;
  cfg.factor = {1, 1, 1};
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
        stream_seed(77, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * kPerRank);
    write_dataset(comm, decomp, local, cfg);
  });
}

class EngineConfig {
 public:
  EngineConfig(int threads, std::uint64_t budget)
      : prev_threads_(ReadEngine::instance().concurrency()),
        prev_budget_(ReadEngine::instance().cache_budget()) {
    ReadEngine::instance().set_concurrency(threads);
    ReadEngine::instance().set_cache_budget(budget);
  }
  ~EngineConfig() {
    ReadEngine::instance().set_concurrency(prev_threads_);
    ReadEngine::instance().set_cache_budget(prev_budget_);
  }

 private:
  int prev_threads_;
  std::uint64_t prev_budget_;
};

class ScopedFetchHook {
 public:
  explicit ScopedFetchHook(ReadEngine::FetchHook hook) {
    ReadEngine::instance().set_fetch_hook(std::move(hook));
  }
  ~ScopedFetchHook() { ReadEngine::instance().set_fetch_hook(nullptr); }
};

bool same_bytes(std::span<const std::byte> a, std::span<const std::byte> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

/// One seeded chaos schedule: saturate the service with 16 clients,
/// truncate one data file mid-run (plus per-fetch delay jitter), then
/// restore it and verify recovery.
void run_chaos_serve(std::uint64_t seed) {
  TempDir dir("spio-chaos-serve");
  write_dataset_to(dir.path());
  const Dataset ds = Dataset::open(dir.path());
  const Box3 box = ds.metadata().domain;

  ParticleBuffer want(ds.metadata().schema);
  {
    EngineConfig serial(1, 0);
    want = ds.query_box(box);
  }

  ReadEngine& eng = ReadEngine::instance();
  EngineConfig cfg(2, 256ull << 20);
  eng.clear_cache();

  // Delayed I/O: every real disk read costs 0-2 ms, seeded.
  std::atomic<std::uint64_t> delay_state{seed * 2654435761ull + 1};
  ScopedFetchHook hook([&](const std::filesystem::path&, std::uint64_t) {
    std::uint64_t x = delay_state.fetch_add(0x9e3779b97f4a7c15ull);
    x ^= x >> 33;
    std::this_thread::sleep_for(std::chrono::microseconds(x % 2000));
  });

  QueryService svc(ServiceConfig{4, 128, dir.path()});

  // Pick the victim file and remember its bytes.
  const auto& victim_rec = ds.metadata().files[0];
  const std::filesystem::path victim = dir.path() / victim_rec.file_name();
  const std::vector<std::byte> original = read_file(victim);

  constexpr int kClients = 16;
  constexpr int kQueriesPerClient = 5;
  std::atomic<int> ok{0}, typed_errors{0}, wrong{0};
  std::atomic<bool> chaos_started{false};

  std::thread chaos([&] {
    // Torn read mid-saturation: truncate the victim in place and drop
    // the cache so in-flight and future queries must touch the torn
    // file. `fetch_file` surfaces it as FormatError (size mismatch) or
    // IoError (short read) — typed, never silent.
    while (svc.stats().inflight == 0) std::this_thread::yield();
    std::filesystem::resize_file(victim, original.size() / 2);
    eng.clear_cache();
    chaos_started.store(true);
    // Hold the fault until at least one query failed on it, then heal.
    const auto t0 = std::chrono::steady_clock::now();
    while (svc.stats().failed == 0 &&
           std::chrono::steady_clock::now() - t0 < std::chrono::seconds(5))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(original.data()),
              static_cast<std::streamsize>(original.size()));
    out.close();
    eng.clear_cache();  // drop any half-era residents; sigs re-validate
  });

  std::vector<std::thread> clients;
  for (int cl = 0; cl < kClients; ++cl)
    clients.emplace_back([&, cl] {
      Xoshiro256 rng(stream_seed(seed, static_cast<std::uint64_t>(cl)));
      for (int q = 0; q < kQueriesPerClient; ++q) {
        try {
          const QueryService::Result got =
              svc.run([&] { return ds.query_box(box); });
          if (same_bytes(got->bytes(), want.bytes()))
            ok.fetch_add(1);
          else
            wrong.fetch_add(1);
        } catch (const Error&) {
          typed_errors.fetch_add(1);  // FormatError/IoError/Rejected
        }
        // Jitter so the chaos window overlaps different query phases.
        std::this_thread::sleep_for(
            std::chrono::microseconds(rng.uniform_index(500)));
      }
    });

  for (auto& t : clients) t.join();
  chaos.join();
  svc.shutdown();

  // No hangs (we got here), no silent corruption:
  EXPECT_EQ(wrong.load(), 0) << "seed " << seed;
  EXPECT_EQ(ok.load() + typed_errors.load(), kClients * kQueriesPerClient)
      << "seed " << seed;
  EXPECT_TRUE(chaos_started.load());
  // The fault bit: the full-domain query always touches the victim, so
  // the window between truncation and heal fails some queries.
  EXPECT_GT(typed_errors.load(), 0) << "seed " << seed;

  // The injected fault actually bit, and the postmortem bundle emitted.
  if (typed_errors.load() > 0 && svc.stats().failed > 0) {
    EXPECT_TRUE(
        std::filesystem::exists(dir.path() / obs::kPostmortemFile))
        << "seed " << seed;
  }

  // Recovery: the healed dataset serves byte-identical results.
  eng.clear_cache();
  QueryService after(ServiceConfig{2, 16, {}});
  const QueryService::Result healed =
      after.run([&] { return ds.query_box(box); });
  EXPECT_TRUE(same_bytes(healed->bytes(), want.bytes())) << "seed " << seed;
  after.shutdown();
}

TEST(ChaosService, TornReadsAndDelayedIoUnderSaturationStayTyped) {
  for (const std::uint64_t seed : {11ull, 23ull, 37ull}) run_chaos_serve(seed);
}

}  // namespace
}  // namespace spio
