/// \file fig03_filecount.cpp
/// Figure 3 + §3.1/§4/§5.2 arithmetic: the file-count law
/// f = ceil(nx/Px)·ceil(ny/Py)·ceil(nz/Pz) and the resulting per-file
/// sizes for the paper's worked examples.

#include <iostream>

#include "bench_env.hpp"
#include "core/partition_factor.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace spio;

int main() {
  spio::bench::init_observability();
  {
    // Fig. 3: 16 processes on a 4x4 grid (2D; z = 1).
    Table t("Figure 3: aggregation configurations for a 4x4 process grid",
            {"panel", "factor", "files", "equivalent"});
    struct Row {
      const char* panel;
      PartitionFactor f;
      const char* note;
    };
    const Row rows[] = {
        {"(b)", {2, 1, 1}, "8 partitions"},
        {"(c)", {4, 1, 1}, "4 column partitions"},
        {"(d)", {1, 1, 1}, "file per-process"},
        {"(e)", {2, 2, 1}, "paper's (4/2)x(4/2) = 4 example"},
        {"(f)", {4, 4, 1}, "single shared file"},
    };
    for (const Row& r : rows) {
      t.row()
          .add(r.panel)
          .add(r.f.to_string())
          .add_int(file_count({4, 4, 1}, r.f))
          .add(r.note);
    }
    t.print(std::cout);
  }

  {
    // §4: 64K writers, (2,2,2) -> 8K files; readers open files/reader.
    Table t("Section 4: files opened per reader (64K-rank dataset)",
            {"layout", "files", "readers", "files/reader"});
    t.row().add("(2,2,2)").add_int(file_count({64, 32, 32}, {2, 2, 2}))
        .add_int(512).add_int(8192 / 512);
    t.row().add("(1,1,1)").add_int(file_count({64, 32, 32}, {1, 1, 1}))
        .add_int(512).add_int(65536 / 512);
    t.print(std::cout);
  }

  {
    // §5.2: per-file sizes at 4096 ranks with 32K particles/core (4 MB).
    Table t("Section 5.2: file sizes at 4096 ranks, 32K particles/core",
            {"factor", "files", "file size"});
    const std::uint64_t per_core = 32768ull * 124;
    for (const PartitionFactor f :
         {PartitionFactor{1, 1, 1}, {2, 2, 2}, {2, 2, 4}, {2, 4, 4}}) {
      const auto files = file_count({16, 16, 16}, f);
      t.row()
          .add(f.to_string())
          .add_int(files)
          .add(format_bytes(per_core * 4096 /
                            static_cast<std::uint64_t>(files)));
    }
    t.print(std::cout);
    std::cout << "note: the paper's text pairs \"(2, 2, 4)\" with 128 files "
                 "of 128 MB;\nself-consistent arithmetic gives that for "
                 "(2,4,4), and 256 x 64 MB for (2,2,4).\n\n";
  }
  return 0;
}
