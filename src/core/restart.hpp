#pragma once

/// \file restart.hpp
/// Checkpoint restart: load a dataset back into a running SPMD job whose
/// decomposition (and rank count) may differ from the writer's — the
/// paper's key read-side property ("allows reads with different core
/// counts than were used to write the data", §2.1/§4).

#include <filesystem>

#include "core/reader.hpp"
#include "simmpi/comm.hpp"
#include "workload/decomposition.hpp"

namespace spio {

/// Collective: every rank receives exactly the particles lying in its
/// patch of `decomp`. Together the ranks reconstruct the full dataset
/// with no duplicates (patches tile the domain; each particle belongs to
/// exactly one patch, with the domain's upper faces assigned to the
/// boundary patches).
///
/// The schema comes from the dataset; `decomp.domain()` must contain the
/// dataset's domain or a `ConfigError` is raised on every rank.
ParticleBuffer restart_read(simmpi::Comm& comm,
                            const PatchDecomposition& decomp,
                            const std::filesystem::path& dir,
                            ReadStats* stats = nullptr);

}  // namespace spio
