file(REMOVE_RECURSE
  "CMakeFiles/spio_faultsim.dir/checked_io.cpp.o"
  "CMakeFiles/spio_faultsim.dir/checked_io.cpp.o.d"
  "CMakeFiles/spio_faultsim.dir/fault_plan.cpp.o"
  "CMakeFiles/spio_faultsim.dir/fault_plan.cpp.o.d"
  "CMakeFiles/spio_faultsim.dir/reliable.cpp.o"
  "CMakeFiles/spio_faultsim.dir/reliable.cpp.o.d"
  "libspio_faultsim.a"
  "libspio_faultsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spio_faultsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
