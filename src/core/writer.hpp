#pragma once

/// \file writer.hpp
/// The spatially-aware two-phase write pipeline (paper §3):
///
///   1. set up the aggregation grid          (§3.1)
///   2. select aggregators                   (§3.2)
///   3. exchange metadata (particle counts)  (§3.3)
///   4. allocate aggregation buffers         (§3.3)
///   5. exchange particles                   (§3.3)
///   6. re-order particles into LOD order    (§3.4)
///   7. write one data file per partition    (§3.4)
///   8. gather bounds and write the spatial metadata file (§3.5)
///
/// The adaptive variant (§6) prepends an all-to-all extent exchange and
/// builds the grid over the occupied sub-region only.

#include <filesystem>

#include "core/aggregation_plan.hpp"
#include "core/lod.hpp"
#include "core/metadata.hpp"
#include "faultsim/reliable.hpp"
#include "simmpi/comm.hpp"
#include "workload/decomposition.hpp"
#include "workload/particle_buffer.hpp"

namespace spio::faultsim {
class FaultInjector;
}  // namespace spio::faultsim

namespace spio::obs {
class MetricsRegistry;
}  // namespace spio::obs

namespace spio {

/// Everything a write needs besides the data. The partition factor is the
/// user-facing tuning knob; the paper's §5 sweeps it per machine.
struct WriterConfig {
  /// Dataset directory; created if absent. One data file per non-empty
  /// aggregation partition plus `meta.spio` are written into it.
  std::filesystem::path dir;

  /// Aggregation partition factor (Px, Py, Pz).
  PartitionFactor factor{1, 1, 1};

  /// Level-of-detail layout parameters, recorded in the metadata.
  LodParams lod{};
  LodHeuristic heuristic = LodHeuristic::kRandom;

  /// Use the adaptive aggregation grid (§6). Adds an all-to-all extent
  /// exchange and covers only the occupied sub-region.
  bool adaptive = false;

  /// With `adaptive`: use the density-refined k-d partitioning (§7
  /// extension) instead of the uniform adaptive grid — balances particle
  /// load per file under clustered distributions.
  bool adaptive_refine = false;

  /// Write the spatial metadata file with bounding boxes. Disabled only to
  /// produce the paper's Fig. 7 "without spatial metadata" baseline.
  bool write_spatial_metadata = true;

  /// Record per-file min/max of every field component in the metadata
  /// (§3.5 extension), enabling attribute range queries that skip files.
  bool write_field_ranges = true;

  /// Write the `zones.spio` sidecar: per-file, per-LOD-level min/max of
  /// every field component (query_plan/zone_map.hpp), computed during
  /// the reorder phase at near-zero extra cost. Lets the query planner
  /// skip whole files and LOD tails that provably contain no matches.
  bool write_zone_maps = true;

  /// Aggregator placement policy (ablation; the paper uses uniform).
  AggregatorPlacement placement = AggregatorPlacement::kUniform;

  /// Base seed for the deterministic LOD shuffles (per-partition streams
  /// are derived from it).
  std::uint64_t shuffle_seed = 0x5910f00d;

  /// Force the per-particle binning path even when the aligned fast path
  /// applies; used by tests to check both paths agree.
  bool force_general_exchange = false;

  /// Upper bound on one aggregator's assembled buffer, in bytes
  /// (0 = unlimited). §3.1 notes that all-to-one aggregation "is not
  /// feasible due to limitations in the available memory on a single
  /// core"; this guard turns that silent OOM into a diagnosable
  /// `ConfigError` naming the partition and suggesting a smaller factor.
  std::uint64_t max_aggregation_bytes = 0;

  /// Bracket the write with `write.journal` so an interrupted job leaves
  /// a detectable (and repairable) state; see core/journal.hpp.
  bool journal = true;

  /// Record per-file CRC-64 checksums in the `checksums.spio` sidecar,
  /// letting readers detect silent data corruption.
  bool write_checksums = true;

  /// Fault injector for chaos testing (not owned; null in production).
  /// When set, the writer announces phase entries to it, routes both
  /// exchanges through the acknowledged retry protocol, and validates
  /// every data-file write with read-back + bounded rewrite.
  faultsim::FaultInjector* faults = nullptr;

  /// Retransmission policy for the reliable exchanges (used only when
  /// `faults` is set).
  faultsim::RetryPolicy retry{};

  /// Emit the Darshan-style `trace.spio.json` run record next to the
  /// dataset (config, per-rank phase seconds, counter dump). Effective
  /// only while the observability layer is collecting
  /// (`obs::run_records_enabled()`), so default runs leave the dataset
  /// directory byte-identical to earlier releases.
  bool run_record = true;
};

/// Per-rank timing and volume statistics for one write. Times are wall
/// clock on this rank; reduce across ranks with `WriteStats::max_over`.
struct WriteStats {
  double setup_seconds = 0;              // plan/grid construction (+ extent
                                         // all-to-all when adaptive)
  double meta_exchange_seconds = 0;      // step 3
  double particle_exchange_seconds = 0;  // steps 4–5
  double reorder_seconds = 0;            // step 6
  double file_io_seconds = 0;            // step 7
  double metadata_io_seconds = 0;        // step 8

  std::uint64_t particles_sent = 0;  // shipped to a *different* rank
  std::uint64_t bytes_sent = 0;
  std::uint64_t particles_written = 0;
  std::uint64_t bytes_written = 0;
  int files_written = 0;
  int partition_count = 0;
  bool was_aggregator = false;
  bool used_aligned_fast_path = false;

  /// Total wall time of the phases above.
  double total_seconds() const {
    return setup_seconds + meta_exchange_seconds + particle_exchange_seconds +
           reorder_seconds + file_io_seconds + metadata_io_seconds;
  }

  /// Aggregation-phase time (everything before file writes), the
  /// "Data aggregation" share of the paper's Fig. 6 breakdown.
  double aggregation_seconds() const {
    return setup_seconds + meta_exchange_seconds + particle_exchange_seconds +
           reorder_seconds;
  }

  /// Element-wise max of times, sum of volumes; the job-level view.
  static WriteStats max_over(const WriteStats& a, const WriteStats& b);
};

/// Collective: write `local` (this rank's particles, which must carry the
/// schema shared by all ranks) as one spio dataset. Returns this rank's
/// statistics. Throws `ConfigError` for invalid configurations and
/// `IoError` on filesystem failure; failures on any rank abort the job.
WriteStats write_dataset(simmpi::Comm& comm, const PatchDecomposition& decomp,
                         const ParticleBuffer& local,
                         const WriterConfig& config);

namespace writer_detail {

/// Result of the binning pass: only non-empty bins appear, partition ids
/// ascending, and each payload keeps its particles in original input
/// order (the ordering the file format's reproducibility rests on).
struct BinnedParticles {
  std::vector<int> partitions;                 // ascending, non-empty only
  std::vector<std::uint64_t> counts;           // particles per bin
  std::vector<std::vector<std::byte>> payloads;  // raw records per bin

  std::size_t bin_count() const { return partitions.size(); }

  /// Index of `partition` among the bins, or -1 if it received nothing.
  int index_of(int partition) const;
};

/// Partition the local particles by target aggregation partition with a
/// two-pass histogram + contiguous scatter (one partition lookup and one
/// record memcpy per particle). Aligned fast path: the whole buffer goes
/// to one partition, no per-particle scan. Exposed for the perf harness
/// and differential tests; `write_dataset` is the production entry point.
BinnedParticles bin_particles(const ParticleBuffer& local,
                              const AggregationPlan& plan,
                              bool use_fast_path);

/// Pre-optimization reference binning (ordered map + per-particle
/// append). Kept as the differential-testing oracle for `bin_particles`
/// and as the perf baseline the committed BENCH_hotpath.json speedups are
/// measured against.
BinnedParticles bin_particles_reference(const ParticleBuffer& local,
                                        const AggregationPlan& plan,
                                        bool use_fast_path);

/// Min/max of every field component over the aggregated particles (§3.5
/// metadata extension), in one record-major pass over the AoS buffer.
/// Precondition: non-empty buffer.
std::vector<FieldRange> compute_field_ranges(const ParticleBuffer& buf);

}  // namespace writer_detail

}  // namespace spio
