file(REMOVE_RECURSE
  "../examples/lod_progressive"
  "../examples/lod_progressive.pdb"
  "CMakeFiles/lod_progressive.dir/lod_progressive.cpp.o"
  "CMakeFiles/lod_progressive.dir/lod_progressive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lod_progressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
