#include <gtest/gtest.h>

#include <stdexcept>

#include "simmpi/runtime.hpp"

namespace simmpi {
namespace {

TEST(Failure, ExceptionInOneRankPropagatesToCaller) {
  EXPECT_THROW(run(4,
                   [](Comm& comm) {
                     if (comm.rank() == 2)
                       throw std::runtime_error("rank 2 failed");
                     // Other ranks keep working; they may or may not block.
                   }),
               std::runtime_error);
}

TEST(Failure, BlockedReceiversUnwindInsteadOfDeadlocking) {
  // Rank 0 dies; rank 1 is blocked in a receive that will never be
  // matched. The runtime must abort rank 1 and rethrow rank 0's error.
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0)
                       throw std::logic_error("writer exploded");
                     comm.recv_value<int>(0, 0);  // would block forever
                     FAIL() << "recv returned after peer death";
                   }),
               std::logic_error);
}

TEST(Failure, BlockedCollectiveUnwinds) {
  EXPECT_THROW(run(4,
                   [](Comm& comm) {
                     if (comm.rank() == 3)
                       throw std::runtime_error("no barrier for me");
                     comm.barrier();  // 3 never arrives
                     FAIL() << "barrier completed without all ranks";
                   }),
               std::runtime_error);
}

TEST(Failure, FirstExceptionWins) {
  try {
    run(4, [](Comm& comm) {
      if (comm.rank() == 0) throw std::runtime_error("original failure");
      comm.barrier();
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "original failure");
  }
}

TEST(Failure, HealthyJobAfterFailedJob) {
  // A failed job must not poison subsequent jobs (no global state).
  EXPECT_THROW(run(2,
                   [](Comm&) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  int ok = 0;
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) ok = 1;
    comm.barrier();
  });
  EXPECT_EQ(ok, 1);
}

TEST(Failure, RunRejectsNonPositiveRankCountByContract) {
  // Contract violations abort; we only verify the positive path here and
  // exercise 1-rank jobs as the boundary.
  run(1, [](Comm& comm) { EXPECT_EQ(comm.size(), 1); });
}

TEST(Failure, SplitBlockedPeersUnwind) {
  EXPECT_THROW(run(4,
                   [](Comm& comm) {
                     if (comm.rank() == 1)
                       throw std::runtime_error("dies before split");
                     Comm sub = comm.split(0, comm.rank());
                     sub.barrier();
                   }),
               std::runtime_error);
}

}  // namespace
}  // namespace simmpi
