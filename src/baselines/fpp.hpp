#pragma once

/// \file fpp.hpp
/// File-per-process baseline: the traditional checkpoint format ([7] in
/// the paper). Every rank dumps its particles to its own file; a tiny
/// manifest records per-rank counts. There is no spatial metadata and no
/// LOD ordering, so any spatial query must read and filter every file.

#include <filesystem>

#include "core/reader.hpp"
#include "simmpi/comm.hpp"
#include "workload/particle_buffer.hpp"

namespace spio::baselines {

/// Collective: every rank writes `rank_<r>.bin`; rank 0 writes
/// `fpp_manifest.bin` (schema + per-rank counts).
void fpp_write(simmpi::Comm& comm, const ParticleBuffer& local,
               const std::filesystem::path& dir);

/// Read-side view of an FPP dataset.
class FppDataset {
 public:
  static FppDataset open(const std::filesystem::path& dir);

  int file_count() const { return static_cast<int>(counts_.size()); }
  std::uint64_t total_particles() const;
  const Schema& schema() const { return schema_; }

  /// Read one rank file in full.
  ParticleBuffer read_rank_file(int rank, ReadStats* stats = nullptr) const;

  /// Box query: must scan every file (no spatial information exists).
  ParticleBuffer query_box(const Box3& box, ReadStats* stats = nullptr) const;

 private:
  FppDataset(std::filesystem::path dir, Schema schema,
             std::vector<std::uint64_t> counts)
      : dir_(std::move(dir)),
        schema_(std::move(schema)),
        counts_(std::move(counts)) {}

  std::filesystem::path dir_;
  Schema schema_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace spio::baselines
