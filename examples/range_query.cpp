/// \file range_query.cpp
/// Attribute range queries via the §3.5 metadata extension: per-file
/// min/max of every field component let a reader skip files whose value
/// ranges cannot match, before any data is touched. The example writes a
/// dataset whose density field varies across the domain, then answers
/// "hot spot" queries (high density, low volume) with file-level pruning.
///
/// Usage: range_query [output-dir]   (default: ./range_demo)

#include <iostream>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/units.hpp"
#include "workload/generators.hpp"

using namespace spio;

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "range_demo";

  constexpr int kRanks = 16;
  constexpr std::uint64_t kPerRank = 20000;
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 1});

  // The density attribute rises along x: files on the right hold hot
  // material, files on the left cold.
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    ParticleBuffer local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
        stream_seed(7, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * kPerRank);
    const auto density = local.schema().index_of("density");
    for (std::size_t i = 0; i < local.size(); ++i) {
      const double x = local.position(i).x;
      local.set_f64(i, density, 0, 500.0 + 2000.0 * x * x);
    }
    WriterConfig cfg;
    cfg.dir = dir;
    cfg.factor = {2, 2, 1};  // 4 quadrant files
    write_dataset(comm, decomp, local, cfg);
  });

  const Dataset ds = Dataset::open(dir);
  const auto& meta = ds.metadata();
  const auto density = meta.schema.index_of("density");

  std::cout << "per-file density ranges recorded in the metadata:\n";
  for (const auto& f : meta.files) {
    const auto& r = f.field_ranges[meta.range_index(density, 0)];
    std::cout << "  " << f.file_name() << "  density in [" << r.min << ", "
              << r.max << "]\n";
  }

  // Query 1: hot material (density > 1800) anywhere in the domain. Files
  // whose recorded maximum is below the threshold are never opened.
  {
    const Dataset::RangeFilter hot{density, 0, 1800.0, 1e9};
    ReadStats rs;
    const auto out = ds.query(meta.domain, std::span(&hot, 1), -1, 1, &rs);
    std::cout << "\nhot query (density > 1800): " << out.size()
              << " particles from " << rs.files_opened << "/"
              << ds.file_count() << " files, "
              << format_bytes(rs.bytes_read) << " read\n";
  }

  // Query 2: conjunction of spatial + two attribute predicates.
  {
    const Dataset::RangeFilter filters[] = {
        {density, 0, 1000.0, 1500.0},
        {meta.schema.index_of("type"), 0, 2.0, 3.0},
    };
    const Box3 upper_half({0, 0.5, 0}, {1, 1, 1});
    ReadStats rs;
    const auto out = ds.query(upper_half, filters, -1, 1, &rs);
    std::cout << "combined query (upper half, density 1000-1500, type "
                 "2-3): "
              << out.size() << " particles from " << rs.files_opened << "/"
              << ds.file_count() << " files\n";
  }

  // Query 3: an impossible range costs no file opens at all.
  {
    const Dataset::RangeFilter none{density, 0, 1e7, 2e7};
    ReadStats rs;
    const auto out = ds.query(meta.domain, std::span(&none, 1), -1, 1, &rs);
    std::cout << "impossible query: " << out.size() << " particles, "
              << rs.files_opened << " files opened\n";
  }
  return 0;
}
