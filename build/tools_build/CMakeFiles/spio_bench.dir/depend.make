# Empty dependencies file for spio_bench.
# This may be replaced when dependencies are built.
