#!/usr/bin/env sh
# Regenerate BENCH_hotpath.json, the committed machine-readable perf
# baseline for the write pipeline's hot paths (binning, exchange, LOD
# reorder, CRC, file write; micro kernels vs their pre-optimization
# references).
#
# Usage: bench/run_hotpath.sh [build-dir] [reps]
#
# Run from the repository root on an otherwise idle machine. The JSON is
# written to the repository root; commit it when refreshing the baseline.
#
# Three observability gates ride along (docs/OBSERVABILITY.md):
#   - the fresh results are compared against the committed baseline with
#     `spio_bench --compare`; any stage MB/s or micro-kernel speedup more
#     than 15% below BENCH_hotpath.json fails the script,
#   - the 8-rank stage run also emits a Chrome trace which is validated
#     with `spio_trace --check`,
#   - the flight recorder dumps a postmortem smoke bundle which is
#     validated with `spio_trace --check` as well.
set -eu

BUILD_DIR="${1:-build}"
REPS="${2:-5}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH="$REPO_ROOT/$BUILD_DIR/tools/spio_bench"
TRACE_TOOL="$REPO_ROOT/$BUILD_DIR/tools/spio_trace"

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j --target spio_bench spio_trace" >&2
  exit 1
fi

BASELINE="$REPO_ROOT/BENCH_hotpath.json"
TRACE_JSON="$REPO_ROOT/$BUILD_DIR/hotpath_trace.json"
BUNDLE_DIR="$REPO_ROOT/$BUILD_DIR"

# Gate against the committed baseline when one exists; the same
# invocation rewrites it (the baseline is read before the overwrite).
COMPARE_ARGS=""
if [ -f "$BASELINE" ]; then
  COMPARE_ARGS="--compare $BASELINE"
else
  echo "no committed baseline at $BASELINE; generating without the gate" >&2
fi

# shellcheck disable=SC2086  # COMPARE_ARGS is intentionally word-split
"$BENCH" --hotpath --reps "$REPS" --json "$BASELINE" $COMPARE_ARGS \
  --trace "$TRACE_JSON" --dump-postmortem "$BUNDLE_DIR"

if [ -x "$TRACE_TOOL" ]; then
  "$TRACE_TOOL" --check "$TRACE_JSON"
  "$TRACE_TOOL" --check "$BUNDLE_DIR/postmortem.spio.json"
else
  echo "warning: $TRACE_TOOL not built; skipping artifact validation" >&2
fi

# Read-path baseline (BENCH_readpath.json): the fused filter kernels vs
# their references, plus cold/warm/range-filter/distributed end-to-end
# stages through the read engine. Gated the same way.
READ_BASELINE="$REPO_ROOT/BENCH_readpath.json"
READ_COMPARE_ARGS=""
if [ -f "$READ_BASELINE" ]; then
  READ_COMPARE_ARGS="--compare $READ_BASELINE"
else
  echo "no committed baseline at $READ_BASELINE; generating without the gate" >&2
fi

# shellcheck disable=SC2086  # READ_COMPARE_ARGS is intentionally word-split
"$BENCH" --readpath --reps "$REPS" --json "$READ_BASELINE" $READ_COMPARE_ARGS
