/// AVX2 kernel TU — CMake compiles exactly this file with `-mavx2`
/// (see src/simd/CMakeLists.txt) when the toolchain supports the flag;
/// the rest of the library stays at the baseline ISA and reaches this
/// code only through runtime dispatch, so a non-AVX2 host never
/// executes an AVX2 instruction.

#include "simd/kernels_isa.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "simd/kernels_x86_body.hpp"

namespace spio::simd {

bool avx2_compiled() { return true; }

namespace detail {
namespace {

struct TraitsAVX2 {
  static constexpr std::size_t kLanes = 4;
  using Reg = __m256d;
  static Reg load(const double* p) { return _mm256_loadu_pd(p); }
  static Reg set1(double v) { return _mm256_set1_pd(v); }
  // Ordered-quiet predicates: NaN compares false, as scalar `>=`/`<`.
  static Reg cmp_ge(Reg a, Reg b) { return _mm256_cmp_pd(a, b, _CMP_GE_OQ); }
  static Reg cmp_lt(Reg a, Reg b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static Reg and_(Reg a, Reg b) { return _mm256_and_pd(a, b); }
  static unsigned movemask(Reg m) {
    return static_cast<unsigned>(_mm256_movemask_pd(m));
  }
  static Reg add(Reg a, Reg b) { return _mm256_add_pd(a, b); }
  static Reg sub(Reg a, Reg b) { return _mm256_sub_pd(a, b); }
  static Reg div(Reg a, Reg b) { return _mm256_div_pd(a, b); }
  static Reg mul(Reg a, Reg b) { return _mm256_mul_pd(a, b); }
  static Reg floor_(Reg a) { return _mm256_floor_pd(a); }
  static Reg max_(Reg a, Reg b) { return _mm256_max_pd(a, b); }  // NaN -> b
  static Reg min_(Reg a, Reg b) { return _mm256_min_pd(a, b); }  // NaN -> b
  static void to_int32(Reg a, std::int32_t* out) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                     _mm256_cvttpd_epi32(a));
  }
};

}  // namespace

std::uint64_t filter_box_avx2(const PositionMirror& mirror,
                              const std::byte* base, std::size_t record_size,
                              const Box3& box, ParticleBuffer& out) {
  return filter_box_body<TraitsAVX2>(mirror, base, record_size, box, out);
}

std::uint64_t filter_box_ranges_avx2(const PositionMirror& mirror,
                                     const std::byte* base,
                                     std::size_t record_size, const Box3& box,
                                     const RangePred* preds, std::size_t npreds,
                                     ParticleBuffer& out) {
  return filter_box_ranges_body<TraitsAVX2>(mirror, base, record_size, box,
                                            preds, npreds, out);
}

void bin_by_owner_avx2(const PositionMirror& mirror, const std::byte* base,
                       std::size_t record_size,
                       const PatchDecomposition& decomp,
                       std::vector<ParticleBuffer>& outgoing) {
  bin_by_owner_body<TraitsAVX2>(mirror, base, record_size, decomp, outgoing);
}

}  // namespace detail
}  // namespace spio::simd

#else  // !__AVX2__ — toolchain could not build this TU at AVX2;
       // detected_level() caps at SSE2 and these stubs stay unreachable.

#include <cstdlib>

namespace spio::simd {

bool avx2_compiled() { return false; }

namespace detail {

std::uint64_t filter_box_avx2(const PositionMirror&, const std::byte*,
                              std::size_t, const Box3&, ParticleBuffer&) {
  std::abort();
}

std::uint64_t filter_box_ranges_avx2(const PositionMirror&, const std::byte*,
                                     std::size_t, const Box3&,
                                     const RangePred*, std::size_t,
                                     ParticleBuffer&) {
  std::abort();
}

void bin_by_owner_avx2(const PositionMirror&, const std::byte*, std::size_t,
                       const PatchDecomposition&,
                       std::vector<ParticleBuffer>&) {
  std::abort();
}

}  // namespace detail
}  // namespace spio::simd

#endif  // __AVX2__
