file(REMOVE_RECURSE
  "../bench/abl_shuffle_heuristic"
  "../bench/abl_shuffle_heuristic.pdb"
  "CMakeFiles/abl_shuffle_heuristic.dir/abl_shuffle_heuristic.cpp.o"
  "CMakeFiles/abl_shuffle_heuristic.dir/abl_shuffle_heuristic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_shuffle_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
