#pragma once

/// \file event_sim.hpp
/// A small discrete-event simulator for queueing networks of FIFO
/// servers. The storage-side write model schedules file creates on the
/// metadata-server pool and data transfers on I/O resources (GPFS I/O
/// nodes / Lustre OSTs) through this engine, which captures the effects an
/// analytic max() cannot: uneven queues from clustered aggregator
/// placement, create/transfer pipelining, and remainder imbalance.

#include <cstdint>
#include <queue>
#include <vector>

#include "util/error.hpp"

namespace spio::iosim {

/// A set of FIFO servers. Jobs are submitted with a ready time and a
/// service duration; `run()` processes them in event order (ready time,
/// then submission order) and reports per-job completion times.
class EventSim {
 public:
  explicit EventSim(int num_servers);

  /// Enqueue a job; returns its id. `ready` is the earliest time the job
  /// may start (e.g. when its predecessor finished elsewhere).
  int submit(int server, double ready, double service);

  /// Process all submitted jobs. May be called once after all submits.
  void run();

  /// Completion time of job `id` (valid after run()).
  double completion(int id) const;

  /// Time the last job completes; 0 if no jobs.
  double makespan() const;

  /// Busy time of `server` (sum of service actually executed there).
  double busy_time(int server) const;

  int server_count() const { return static_cast<int>(server_free_.size()); }

 private:
  struct Job {
    int id;
    int server;
    double ready;
    double service;
  };

  std::vector<Job> jobs_;
  std::vector<double> server_free_;
  std::vector<double> server_busy_;
  std::vector<double> completion_;
  bool ran_ = false;
};

}  // namespace spio::iosim
