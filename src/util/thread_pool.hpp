#pragma once

/// \file thread_pool.hpp
/// Small bounded worker pool shared by the read engine (and reusable by
/// any other subsystem that needs fan-out over independent tasks).
///
/// Semantics are chosen for determinism and exact serial fallback:
///   - `ThreadPool(1)` spawns no threads at all; `submit` runs the task
///     inline on the calling thread and returns an already-satisfied
///     future. A pool of size 1 therefore reproduces single-threaded
///     execution *exactly* (same call stack, same ordering, same
///     exception propagation point). The query service passes
///     `inline_when_single = false` to get a real single worker thread
///     instead — its admission queue must be able to fill up.
///   - `ThreadPool(n >= 2)` spawns `n` workers draining one FIFO queue.
///     Multiple threads may submit concurrently (simmpi ranks are
///     threads of one process and share the global read engine's pool);
///     tasks never block on other tasks, so the bounded pool cannot
///     deadlock.
///
/// Shutdown is always *drain* semantics: `drain_and_stop()` (also run by
/// the destructor) stops accepting queued work, lets the workers finish
/// everything already queued — including tasks that running tasks enqueue
/// while the drain is in progress — and joins them. A `submit` that
/// arrives after the drain completed runs inline on the caller, so an
/// accepted task is always executed, never dropped.
///
/// Exceptions thrown by a task are captured in its future
/// (`std::packaged_task` semantics) and rethrown to the waiter.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace spio {

class ThreadPool {
 public:
  /// \param threads maximum task concurrency; clamped to >= 1.
  /// \param inline_when_single with the default `true`, a pool of 1 runs
  ///        tasks inline on the submitter (exact serial reproduction);
  ///        `false` spawns one real worker thread even for size 1.
  explicit ThreadPool(int threads, bool inline_when_single = true);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum number of tasks that can run concurrently (1 = inline).
  int concurrency() const { return concurrency_; }

  /// Schedule `fn`; the returned future is satisfied when it completes
  /// (holding its exception if it threw). Inline pools — and any pool
  /// after `drain_and_stop` — run `fn` before returning.
  std::future<void> submit(std::function<void()> fn);

  /// Run every task of `tasks` and block until all have completed.
  /// Task order of *completion* is unspecified; callers that need a
  /// deterministic result order must write into per-task slots and merge
  /// after this returns. Exceptions are captured per task; `run_batch`
  /// itself does not throw on task failure (inspect per-task state).
  void run_batch(std::vector<std::function<void()>> tasks);

  /// Finish every queued task, join the workers, and switch the pool to
  /// inline execution. Idempotent and safe to call from any thread that
  /// is not itself a pool worker. This is the QueryService shutdown
  /// path: every task accepted before the drain is executed exactly
  /// once.
  void drain_and_stop();

  /// True once `drain_and_stop` has begun (subsequent submits run
  /// inline).
  bool stopped() const;

 private:
  void worker_loop();

  const int concurrency_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace spio
