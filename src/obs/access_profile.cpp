#include "obs/access_profile.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <utility>

#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace spio::obs {

namespace {

constexpr auto kRx = std::memory_order_relaxed;

int latency_bucket(std::uint64_t us) {
  const int b = static_cast<int>(std::bit_width(us));
  return b < AccessProfiler::kLatencyBuckets ? b
                                             : AccessProfiler::kLatencyBuckets - 1;
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

JsonValue vec_json(const Vec3d& v) {
  JsonValue a = JsonValue::array();
  a.push_back(JsonValue::number(v.x));
  a.push_back(JsonValue::number(v.y));
  a.push_back(JsonValue::number(v.z));
  return a;
}

JsonValue box_json(const Box3& b) {
  JsonValue v = JsonValue::object();
  v.set("lo", vec_json(b.lo));
  v.set("hi", vec_json(b.hi));
  return v;
}

}  // namespace

AccessProfiler& AccessProfiler::instance() {
  // Leaked (see Tracer): the SPIO_PROFILE exit writer is registered with
  // std::atexit *during* construction, so it would run after a static
  // instance's destructor and serialize freed state.
  static AccessProfiler* p = new AccessProfiler();
  return *p;
}

AccessProfiler::AccessProfiler() { init_from_env(); }

void AccessProfiler::init_from_env() {
  const char* env = std::getenv("SPIO_PROFILE");
  if (env != nullptr && *env != '\0') set_detailed(true, env);
}

void AccessProfiler::set_detailed(bool on, std::string path) {
  if (!on) {
    detailed_.store(false, kRx);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    if (!path.empty()) {
      std::error_code ec;
      if (std::filesystem::is_directory(path, ec))
        path = (std::filesystem::path(path) / "profile.spio.json").string();
      path_ = std::move(path);
      if (!exit_writer_registered_) {
        exit_writer_registered_ = true;
        std::atexit([] {
          // A throw here is std::terminate; a profile is diagnostics and
          // must never turn a clean exit into an abort.
          try {
            AccessProfiler& p = AccessProfiler::instance();
            const std::string out = p.profile_path();
            if (!out.empty() && !p.write(out))
              std::fprintf(stderr, "spio: access profile write failed: %s\n",
                           out.c_str());
          } catch (const std::exception& e) {
            std::fprintf(stderr, "spio: access profile write failed: %s\n",
                         e.what());
          }
        });
      }
    }
  }
  detailed_.store(true, kRx);
}

std::string AccessProfiler::profile_path() const {
  std::lock_guard<std::mutex> lk(reg_mu_);
  return path_;
}

int AccessProfiler::register_dataset(const std::string& dir, const Box3& domain,
                                     std::uint64_t record_size, bool has_bounds,
                                     std::vector<FileInfo> files) {
  std::lock_guard<std::mutex> lk(reg_mu_);
  for (const DatasetReg& d : datasets_)
    if (d.dir == dir && d.files.size() == files.size()) return d.base;
  if (next_slot_ + static_cast<int>(files.size()) > kMaxSlots) return -1;
  if (slots_.load(std::memory_order_acquire) == nullptr) {
    // One full-size table for the process lifetime, never freed: record
    // sites read it with a single acquire load and no further fencing.
    slots_.store(new FileSlot[kMaxSlots], std::memory_order_release);
  }
  DatasetReg reg;
  reg.dir = dir;
  reg.domain = domain;
  reg.record_size = record_size;
  reg.has_bounds = has_bounds;
  reg.base = next_slot_;
  reg.files = std::move(files);
  next_slot_ += static_cast<int>(reg.files.size());
  datasets_.push_back(std::move(reg));
  return datasets_.back().base;
}

void AccessProfiler::record_fetch(int base, int file_index, std::uint64_t bytes,
                                  AccessOutcome outcome, bool had_mirror,
                                  std::uint64_t fetch_us) {
  if (!enabled_.load(kRx)) return;
  FileSlot* slots = slots_.load(std::memory_order_acquire);
  const int slot = base + file_index;
  if (base < 0 || slots == nullptr || slot < 0 || slot >= kMaxSlots) {
    unattributed_.fetch_add(1, kRx);
    return;
  }
  FileSlot& s = slots[slot];
  s.accesses.fetch_add(1, kRx);
  s.bytes_scanned.fetch_add(bytes, kRx);
  const bool disk =
      outcome == AccessOutcome::kBypass || outcome == AccessOutcome::kMiss;
  std::uint64_t fetched = 0;
  if (disk) {
    fetched = bytes;
    s.bytes_fetched.fetch_add(bytes, kRx);
    s.fetch_us_hist[latency_bucket(fetch_us)].fetch_add(1, kRx);
  }
  switch (outcome) {
    case AccessOutcome::kBypass:
      s.bypasses.fetch_add(1, kRx);
      break;
    case AccessOutcome::kHit:
      s.hits.fetch_add(1, kRx);
      break;
    case AccessOutcome::kMiss:
      s.misses.fetch_add(1, kRx);
      break;
    case AccessOutcome::kFollower:
      s.followers.fetch_add(1, kRx);
      break;
  }
  if (had_mirror) s.mirror_fetches.fetch_add(1, kRx);
  s.last_touch_us.store(static_cast<std::uint64_t>(now_us()), kRx);

  if (!detailed()) return;
  const std::uint64_t qid = current_query_id();
  if (qid == 0) return;
  std::lock_guard<std::mutex> lk(query_mu_);
  QueryRecord* q = find_open_locked(qid);
  if (q == nullptr) return;
  QueryFile& f = query_file_locked(*q, slot);
  f.bytes_scanned += bytes;
  f.bytes_fetched += fetched;
  q->bytes_scanned += bytes;
  q->bytes_fetched += fetched;
  q->fetch_us += fetch_us;
}

void AccessProfiler::record_used(int base, int file_index, std::uint64_t bytes,
                                 std::uint64_t filter_us,
                                 std::uint64_t merge_us) {
  if (!enabled_.load(kRx)) return;
  FileSlot* slots = slots_.load(std::memory_order_acquire);
  const int slot = base + file_index;
  if (base < 0 || slots == nullptr || slot < 0 || slot >= kMaxSlots) return;
  slots[slot].bytes_used.fetch_add(bytes, kRx);

  if (!detailed()) return;
  const std::uint64_t qid = current_query_id();
  if (qid == 0) return;
  std::lock_guard<std::mutex> lk(query_mu_);
  QueryRecord* q = find_open_locked(qid);
  if (q == nullptr) return;
  query_file_locked(*q, slot).bytes_used += bytes;
  q->bytes_used += bytes;
  q->filter_us += filter_us;
  q->merge_us += merge_us;
}

void AccessProfiler::complete_query(std::uint64_t qid, std::uint64_t wait_us,
                                    std::uint64_t latency_us,
                                    std::size_t waiters) {
  if (!detailed()) return;
  std::lock_guard<std::mutex> lk(query_mu_);
  auto annotate = [&](QueryRecord& q) {
    q.served = true;
    q.wait_us = wait_us;
    q.latency_us = latency_us;
    q.waiters = static_cast<std::uint64_t>(waiters);
  };
  for (auto it = finished_.rbegin(); it != finished_.rend(); ++it) {
    if (it->qid == qid) {
      annotate(*it);
      return;
    }
  }
  if (QueryRecord* q = find_open_locked(qid)) annotate(*q);
}

bool AccessProfiler::begin_query(std::uint64_t qid, const char* kind) {
  std::lock_guard<std::mutex> lk(query_mu_);
  if (find_open_locked(qid) != nullptr) return false;  // nested entry point
  if (finished_.size() >= kMaxQueryRecords) {
    ++queries_dropped_;
    return false;
  }
  QueryRecord q;
  q.qid = qid;
  q.kind = kind;
  q.start_us = now_us();
  open_.push_back(std::move(q));
  return true;
}

void AccessProfiler::finish_query(std::uint64_t qid, std::uint64_t total_us) {
  std::lock_guard<std::mutex> lk(query_mu_);
  for (std::size_t i = 0; i < open_.size(); ++i) {
    if (open_[i].qid != qid) continue;
    open_[i].total_us = total_us;
    open_[i].finished = true;
    if (finished_.size() < kMaxQueryRecords)
      finished_.push_back(std::move(open_[i]));
    else
      ++queries_dropped_;
    open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
    return;
  }
}

AccessProfiler::QueryFile& AccessProfiler::query_file_locked(QueryRecord& q,
                                                             int slot) {
  for (QueryFile& f : q.files)
    if (f.slot == slot) return f;
  q.files.push_back(QueryFile{slot, 0, 0, 0});
  return q.files.back();
}

AccessProfiler::QueryRecord* AccessProfiler::find_open_locked(
    std::uint64_t qid) {
  for (auto it = open_.rbegin(); it != open_.rend(); ++it)
    if (it->qid == qid) return &*it;
  return nullptr;
}

std::vector<AccessProfiler::FileSnapshot> AccessProfiler::snapshot_files(
    bool touched_only) const {
  std::vector<FileSnapshot> out;
  const FileSlot* slots = slots_.load(std::memory_order_acquire);
  if (slots == nullptr) return out;
  std::lock_guard<std::mutex> lk(reg_mu_);
  for (const DatasetReg& d : datasets_) {
    for (std::size_t i = 0; i < d.files.size(); ++i) {
      const FileSlot& s = slots[d.base + static_cast<int>(i)];
      FileSnapshot fs;
      fs.accesses = s.accesses.load(kRx);
      if (touched_only && fs.accesses == 0) continue;
      fs.dataset = d.dir;
      fs.name = d.files[i].name;
      fs.file_index = static_cast<int>(i);
      fs.bounds = d.files[i].bounds;
      fs.particle_count = d.files[i].particle_count;
      fs.bytes_scanned = s.bytes_scanned.load(kRx);
      fs.bytes_fetched = s.bytes_fetched.load(kRx);
      fs.bytes_used = s.bytes_used.load(kRx);
      fs.hits = s.hits.load(kRx);
      fs.misses = s.misses.load(kRx);
      fs.followers = s.followers.load(kRx);
      fs.bypasses = s.bypasses.load(kRx);
      fs.mirror_fetches = s.mirror_fetches.load(kRx);
      fs.last_touch_us = s.last_touch_us.load(kRx);
      out.push_back(std::move(fs));
    }
  }
  return out;
}

AccessProfiler::Totals AccessProfiler::totals() const {
  Totals t;
  const FileSlot* slots = slots_.load(std::memory_order_acquire);
  if (slots == nullptr) return t;
  int n = 0;
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    n = next_slot_;
  }
  for (int i = 0; i < n; ++i) {
    t.accesses += slots[i].accesses.load(kRx);
    t.bytes_scanned += slots[i].bytes_scanned.load(kRx);
    t.bytes_fetched += slots[i].bytes_fetched.load(kRx);
    t.bytes_used += slots[i].bytes_used.load(kRx);
  }
  return t;
}

std::string AccessProfiler::dump() const {
  const FileSlot* slots = slots_.load(std::memory_order_acquire);

  JsonValue doc = JsonValue::object();
  doc.set("format", JsonValue::string("spio.access_profile"));
  doc.set("version", JsonValue::number(std::uint64_t{1}));
  doc.set("generated_us",
          JsonValue::number(static_cast<std::uint64_t>(now_us())));
  doc.set("unattributed", JsonValue::number(unattributed_.load(kRx)));

  Totals tot;
  JsonValue datasets = JsonValue::array();
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    for (const DatasetReg& d : datasets_) {
      JsonValue jd = JsonValue::object();
      jd.set("dir", JsonValue::string(d.dir));
      jd.set("domain", box_json(d.domain));
      jd.set("record_size", JsonValue::number(d.record_size));
      jd.set("has_bounds", JsonValue::boolean(d.has_bounds));
      JsonValue files = JsonValue::array();
      for (std::size_t i = 0; i < d.files.size(); ++i) {
        const FileInfo& info = d.files[i];
        JsonValue jf = JsonValue::object();
        jf.set("name", JsonValue::string(info.name));
        jf.set("index", JsonValue::number(static_cast<std::uint64_t>(i)));
        jf.set("bounds", box_json(info.bounds));
        jf.set("particles", JsonValue::number(info.particle_count));
        std::uint64_t fetched = 0;
        std::uint64_t used = 0;
        if (slots != nullptr) {
          const FileSlot& s = slots[d.base + static_cast<int>(i)];
          const std::uint64_t accesses = s.accesses.load(kRx);
          const std::uint64_t scanned = s.bytes_scanned.load(kRx);
          fetched = s.bytes_fetched.load(kRx);
          used = s.bytes_used.load(kRx);
          tot.accesses += accesses;
          tot.bytes_scanned += scanned;
          tot.bytes_fetched += fetched;
          tot.bytes_used += used;
          jf.set("accesses", JsonValue::number(accesses));
          jf.set("bytes_scanned", JsonValue::number(scanned));
          jf.set("bytes_fetched", JsonValue::number(fetched));
          jf.set("bytes_used", JsonValue::number(used));
          jf.set("hits", JsonValue::number(s.hits.load(kRx)));
          jf.set("misses", JsonValue::number(s.misses.load(kRx)));
          jf.set("followers", JsonValue::number(s.followers.load(kRx)));
          jf.set("bypasses", JsonValue::number(s.bypasses.load(kRx)));
          jf.set("mirror_fetches",
                 JsonValue::number(s.mirror_fetches.load(kRx)));
          jf.set("last_touch_us", JsonValue::number(s.last_touch_us.load(kRx)));
          jf.set("read_amplification", JsonValue::number(ratio(fetched, used)));
          jf.set("scan_amplification", JsonValue::number(ratio(scanned, used)));
          // Trailing-zero-trimmed log2(us) histogram of disk fetches.
          int last = -1;
          for (int b = 0; b < kLatencyBuckets; ++b)
            if (s.fetch_us_hist[b].load(kRx) != 0) last = b;
          JsonValue hist = JsonValue::array();
          for (int b = 0; b <= last; ++b)
            hist.push_back(JsonValue::number(s.fetch_us_hist[b].load(kRx)));
          jf.set("fetch_us_hist", std::move(hist));
        }
        files.push_back(std::move(jf));
      }
      jd.set("files", std::move(files));
      datasets.push_back(std::move(jd));
    }
  }
  doc.set("datasets", std::move(datasets));

  JsonValue jt = JsonValue::object();
  jt.set("accesses", JsonValue::number(tot.accesses));
  jt.set("bytes_scanned", JsonValue::number(tot.bytes_scanned));
  jt.set("bytes_fetched", JsonValue::number(tot.bytes_fetched));
  jt.set("bytes_used", JsonValue::number(tot.bytes_used));
  jt.set("read_amplification",
         JsonValue::number(ratio(tot.bytes_fetched, tot.bytes_used)));
  jt.set("scan_amplification",
         JsonValue::number(ratio(tot.bytes_scanned, tot.bytes_used)));
  doc.set("totals", std::move(jt));

  // Slot -> (dataset dir, file name) for the per-query file entries.
  struct SlotName {
    const std::string* dir;
    const std::string* name;
    int index;
  };
  std::vector<SlotName> names;
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    names.resize(static_cast<std::size_t>(next_slot_), SlotName{});
    for (const DatasetReg& d : datasets_)
      for (std::size_t i = 0; i < d.files.size(); ++i)
        names[static_cast<std::size_t>(d.base) + i] =
            SlotName{&d.dir, &d.files[i].name, static_cast<int>(i)};

    std::lock_guard<std::mutex> qlk(query_mu_);
    JsonValue queries = JsonValue::array();
    for (const QueryRecord& q : finished_) {
      JsonValue jq = JsonValue::object();
      jq.set("qid", JsonValue::number(q.qid));
      jq.set("kind", JsonValue::string(q.kind));
      jq.set("bytes_scanned", JsonValue::number(q.bytes_scanned));
      jq.set("bytes_fetched", JsonValue::number(q.bytes_fetched));
      jq.set("bytes_used", JsonValue::number(q.bytes_used));
      jq.set("read_amplification",
             JsonValue::number(ratio(q.bytes_fetched, q.bytes_used)));
      jq.set("scan_amplification",
             JsonValue::number(ratio(q.bytes_scanned, q.bytes_used)));
      jq.set("fetch_us", JsonValue::number(q.fetch_us));
      jq.set("filter_us", JsonValue::number(q.filter_us));
      jq.set("merge_us", JsonValue::number(q.merge_us));
      jq.set("total_us", JsonValue::number(q.total_us));
      JsonValue jfiles = JsonValue::array();
      for (const QueryFile& f : q.files) {
        JsonValue jf = JsonValue::object();
        const std::size_t s = static_cast<std::size_t>(f.slot);
        if (f.slot >= 0 && s < names.size() && names[s].name != nullptr) {
          jf.set("file", JsonValue::string(*names[s].name));
          jf.set("index",
                 JsonValue::number(static_cast<std::uint64_t>(names[s].index)));
          jf.set("dataset", JsonValue::string(*names[s].dir));
        }
        jf.set("bytes_scanned", JsonValue::number(f.bytes_scanned));
        jf.set("bytes_fetched", JsonValue::number(f.bytes_fetched));
        jf.set("bytes_used", JsonValue::number(f.bytes_used));
        jfiles.push_back(std::move(jf));
      }
      jq.set("files", std::move(jfiles));
      if (q.served) {
        jq.set("wait_us", JsonValue::number(q.wait_us));
        jq.set("latency_us", JsonValue::number(q.latency_us));
        jq.set("waiters", JsonValue::number(q.waiters));
      }
      queries.push_back(std::move(jq));
    }
    doc.set("queries", std::move(queries));
    doc.set("queries_dropped", JsonValue::number(queries_dropped_));
  }

  return doc.dump(2);
}

bool AccessProfiler::write(const std::string& path) const {
  const std::string text = dump();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = n == text.size() && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

void AccessProfiler::reset_counters() {
  FileSlot* slots = slots_.load(std::memory_order_acquire);
  if (slots != nullptr) {
    for (int i = 0; i < kMaxSlots; ++i) {
      FileSlot& s = slots[i];
      s.accesses.store(0, kRx);
      s.bytes_scanned.store(0, kRx);
      s.bytes_fetched.store(0, kRx);
      s.bytes_used.store(0, kRx);
      s.hits.store(0, kRx);
      s.misses.store(0, kRx);
      s.followers.store(0, kRx);
      s.bypasses.store(0, kRx);
      s.mirror_fetches.store(0, kRx);
      s.last_touch_us.store(0, kRx);
      for (int b = 0; b < kLatencyBuckets; ++b) s.fetch_us_hist[b].store(0, kRx);
    }
  }
  unattributed_.store(0, kRx);
  std::lock_guard<std::mutex> lk(query_mu_);
  open_.clear();
  finished_.clear();
  queries_dropped_ = 0;
}

ProfiledQuery::ProfiledQuery(const char* kind) {
  AccessProfiler& p = AccessProfiler::instance();
  if (!p.detailed() || !p.profiling_enabled()) return;
  qid_ = current_query_id();
  if (qid_ == 0) {
    qid_ = next_query_id();
    scope_.emplace(qid_);
  }
  t0_us_ = now_us();
  active_ = p.begin_query(qid_, kind);
}

ProfiledQuery::~ProfiledQuery() {
  if (!active_) return;
  const auto total = static_cast<std::uint64_t>(now_us() - t0_us_);
  AccessProfiler::instance().finish_query(qid_, total);
}

}  // namespace spio::obs
