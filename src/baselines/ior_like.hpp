#pragma once

/// \file ior_like.hpp
/// An IOR-style synthetic I/O kernel (the paper's reference benchmark
/// [29]): each rank writes `block_bytes` of synthetic data in
/// `transfer_bytes` chunks, either to its own file (file-per-process mode)
/// or into one shared file at rank offsets (collective mode). No fsync is
/// issued, matching the paper's configuration. Used by the functional
/// micro-benchmarks to put a real local-filesystem number beside the
/// modeled machine numbers.

#include <cstdint>
#include <filesystem>

#include "simmpi/comm.hpp"

namespace spio::baselines {

enum class IorMode : std::uint8_t {
  kFilePerProcess = 0,
  kSharedFile = 1,
};

struct IorConfig {
  std::filesystem::path dir;
  IorMode mode = IorMode::kFilePerProcess;
  std::uint64_t block_bytes = 4 << 20;     // per-rank volume
  std::uint64_t transfer_bytes = 1 << 20;  // write granularity
};

struct IorResult {
  double write_seconds = 0;   // max across ranks
  std::uint64_t total_bytes = 0;
  double throughput_gbs() const;
};

/// Collective: run the write kernel and report the slowest rank's time
/// (the job completes when the last rank does, as IOR reports).
IorResult ior_write(simmpi::Comm& comm, const IorConfig& config);

}  // namespace spio::baselines
