# Empty dependencies file for uintah_checkpoint.
# This may be replaced when dependencies are built.
