#include "core/timeseries.hpp"

#include <gtest/gtest.h>

#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

constexpr int kRanks = 8;
constexpr std::uint64_t kPerRank = 100;

const PatchDecomposition& decomp() {
  static const PatchDecomposition d(Box3::unit(), {2, 2, 2});
  return d;
}

void write_step_n(const std::filesystem::path& base, int step) {
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp().patch(comm.rank()), kPerRank,
        stream_seed(static_cast<std::uint64_t>(step),
                    static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(step) * 100000 +
            static_cast<std::uint64_t>(comm.rank()) * kPerRank);
    WriterConfig cfg;
    cfg.factor = {2, 2, 2};
    TimeSeries::write_step(comm, decomp(), local, base, step, cfg);
  });
}

TEST(TimeSeries, StepsAccumulateInOrder) {
  TempDir dir("spio-series");
  write_step_n(dir.path(), 0);
  write_step_n(dir.path(), 10);
  write_step_n(dir.path(), 5);  // out-of-order write

  const TimeSeries series = TimeSeries::open(dir.path());
  EXPECT_EQ(series.steps(), (std::vector<int>{0, 5, 10}));
  EXPECT_TRUE(series.has_step(5));
  EXPECT_FALSE(series.has_step(7));
}

TEST(TimeSeries, EachStepIsACompleteDataset) {
  TempDir dir("spio-series");
  write_step_n(dir.path(), 1);
  write_step_n(dir.path(), 2);
  const TimeSeries series = TimeSeries::open(dir.path());
  for (const int step : series.steps()) {
    const Dataset ds = series.open_step(step);
    EXPECT_EQ(ds.metadata().total_particles, kRanks * kPerRank);
    EXPECT_EQ(ds.query_box(ds.metadata().domain).size(), kRanks * kPerRank);
  }
}

TEST(TimeSeries, StepsHoldDistinctData) {
  TempDir dir("spio-series");
  write_step_n(dir.path(), 1);
  write_step_n(dir.path(), 2);
  const TimeSeries series = TimeSeries::open(dir.path());
  const auto idf = Schema::uintah().index_of("id");
  const auto p1 = series.open_step(1).query_box(Box3::unit());
  const auto p2 = series.open_step(2).query_box(Box3::unit());
  // Step-tagged ids do not overlap.
  double max1 = 0, min2 = 1e300;
  for (std::size_t i = 0; i < p1.size(); ++i)
    max1 = std::max(max1, p1.get_f64(i, idf));
  for (std::size_t i = 0; i < p2.size(); ++i)
    min2 = std::min(min2, p2.get_f64(i, idf));
  EXPECT_LT(max1, min2);
}

TEST(TimeSeries, RewritingAStepReplacesIt) {
  TempDir dir("spio-series");
  write_step_n(dir.path(), 3);
  write_step_n(dir.path(), 3);
  const TimeSeries series = TimeSeries::open(dir.path());
  EXPECT_EQ(series.steps(), std::vector<int>{3});
  EXPECT_EQ(series.open_step(3).metadata().total_particles,
            kRanks * kPerRank);
}

TEST(TimeSeries, OpenMissingStepRejected) {
  TempDir dir("spio-series");
  write_step_n(dir.path(), 0);
  const TimeSeries series = TimeSeries::open(dir.path());
  EXPECT_THROW(series.open_step(1), ConfigError);
}

TEST(TimeSeries, OpenWithoutIndexRejected) {
  TempDir dir("spio-series-none");
  EXPECT_THROW(TimeSeries::open(dir.path()), IoError);
}

TEST(TimeSeries, NegativeStepRejected) {
  TempDir dir("spio-series");
  EXPECT_THROW(
      simmpi::run(kRanks,
                  [&](simmpi::Comm& comm) {
                    ParticleBuffer empty(Schema::uintah());
                    WriterConfig cfg;
                    TimeSeries::write_step(comm, decomp(), empty,
                                           dir.path(), -1, cfg);
                  }),
      ConfigError);
}

TEST(TimeSeries, RemoveStepDropsDataAndIndexEntry) {
  TempDir dir("spio-series");
  write_step_n(dir.path(), 1);
  write_step_n(dir.path(), 2);
  write_step_n(dir.path(), 3);
  TimeSeries::remove_step(dir.path(), 2);
  const TimeSeries series = TimeSeries::open(dir.path());
  EXPECT_EQ(series.steps(), (std::vector<int>{1, 3}));
  EXPECT_FALSE(
      std::filesystem::exists(TimeSeries::step_dir(dir.path(), 2)));
  // Remaining steps stay readable.
  EXPECT_EQ(series.open_step(3).metadata().total_particles,
            kRanks * kPerRank);
  EXPECT_THROW(TimeSeries::remove_step(dir.path(), 2), ConfigError);
}

TEST(TimeSeries, StepDirNamingIsPadded) {
  EXPECT_EQ(TimeSeries::step_dir("/base", 7).filename(), "step_000007");
  EXPECT_EQ(TimeSeries::step_dir("/base", 123456).filename(), "step_123456");
}

}  // namespace
}  // namespace spio
