file(REMOVE_RECURSE
  "../examples/range_query"
  "../examples/range_query.pdb"
  "CMakeFiles/range_query.dir/range_query.cpp.o"
  "CMakeFiles/range_query.dir/range_query.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
