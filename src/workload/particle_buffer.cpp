#include "workload/particle_buffer.hpp"

#include <algorithm>

namespace spio {

ParticleBuffer::ParticleBuffer(Schema schema)
    : schema_(std::move(schema)), record_size_(schema_.record_size()) {}

std::span<std::byte> ParticleBuffer::append_uninitialized() {
  data_.resize(data_.size() + record_size_, std::byte{0});
  return {data_.data() + data_.size() - record_size_, record_size_};
}

void ParticleBuffer::append_record(std::span<const std::byte> record) {
  SPIO_EXPECTS(record.size() == record_size_);
  data_.insert(data_.end(), record.begin(), record.end());
}

void ParticleBuffer::append_from(const ParticleBuffer& other, std::size_t i) {
  SPIO_EXPECTS(other.schema_ == schema_);
  append_record(other.record(i));
}

void ParticleBuffer::append_bytes(std::span<const std::byte> bytes) {
  SPIO_CHECK(bytes.size() % record_size_ == 0, FormatError,
             "particle payload of " << bytes.size()
                                    << " bytes is not a multiple of the "
                                    << record_size_ << "-byte record");
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

std::span<const std::byte> ParticleBuffer::record(std::size_t i) const {
  SPIO_EXPECTS(i < size());
  return {data_.data() + i * record_size_, record_size_};
}

std::span<std::byte> ParticleBuffer::record(std::size_t i) {
  SPIO_EXPECTS(i < size());
  return {data_.data() + i * record_size_, record_size_};
}

std::vector<std::byte> ParticleBuffer::take_bytes() {
  std::vector<std::byte> out = std::move(data_);
  data_.clear();
  return out;
}

void ParticleBuffer::adopt_bytes(std::vector<std::byte> bytes) {
  SPIO_CHECK(bytes.size() % record_size_ == 0, FormatError,
             "adopted payload of " << bytes.size()
                                   << " bytes is not a multiple of the "
                                   << record_size_ << "-byte record");
  data_ = std::move(bytes);
}

const std::byte* ParticleBuffer::field_ptr(std::size_t i, std::size_t field,
                                           std::size_t comp,
                                           std::size_t elem_size) const {
  SPIO_EXPECTS(i < size());
  SPIO_EXPECTS(field < schema_.field_count());
  SPIO_EXPECTS(comp < schema_.fields()[field].components);
  SPIO_EXPECTS(field_type_size(schema_.fields()[field].type) == elem_size);
  return data_.data() + i * record_size_ + schema_.offset(field) +
         comp * elem_size;
}

std::byte* ParticleBuffer::field_ptr(std::size_t i, std::size_t field,
                                     std::size_t comp, std::size_t elem_size) {
  return const_cast<std::byte*>(
      static_cast<const ParticleBuffer*>(this)->field_ptr(i, field, comp,
                                                          elem_size));
}

Vec3d ParticleBuffer::position(std::size_t i) const {
  Vec3d p;
  std::memcpy(&p, field_ptr(i, 0, 0, sizeof(double)), sizeof(Vec3d));
  return p;
}

void ParticleBuffer::set_position(std::size_t i, const Vec3d& p) {
  std::memcpy(field_ptr(i, 0, 0, sizeof(double)), &p, sizeof(Vec3d));
}

double ParticleBuffer::get_f64(std::size_t i, std::size_t field,
                               std::size_t comp) const {
  double v;
  std::memcpy(&v, field_ptr(i, field, comp, sizeof(double)), sizeof(double));
  return v;
}

void ParticleBuffer::set_f64(std::size_t i, std::size_t field,
                             std::size_t comp, double v) {
  std::memcpy(field_ptr(i, field, comp, sizeof(double)), &v, sizeof(double));
}

float ParticleBuffer::get_f32(std::size_t i, std::size_t field,
                              std::size_t comp) const {
  float v;
  std::memcpy(&v, field_ptr(i, field, comp, sizeof(float)), sizeof(float));
  return v;
}

void ParticleBuffer::set_f32(std::size_t i, std::size_t field,
                             std::size_t comp, float v) {
  std::memcpy(field_ptr(i, field, comp, sizeof(float)), &v, sizeof(float));
}

void ParticleBuffer::swap_records(std::size_t a, std::size_t b) {
  SPIO_EXPECTS(a < size() && b < size());
  if (a == b) return;
  std::swap_ranges(data_.begin() + static_cast<std::ptrdiff_t>(a * record_size_),
                   data_.begin() + static_cast<std::ptrdiff_t>((a + 1) * record_size_),
                   data_.begin() + static_cast<std::ptrdiff_t>(b * record_size_));
}

void ParticleBuffer::truncate(std::size_t count) {
  if (count < size()) data_.resize(count * record_size_);
}

Box3 ParticleBuffer::bounds() const {
  Box3 box = Box3::empty();
  for (std::size_t i = 0; i < size(); ++i) box.extend(position(i));
  return box;
}

}  // namespace spio
