#include <gtest/gtest.h>

#include <future>
#include <set>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

/// The runtime and writer hold no global state: several independent SPMD
/// jobs may run concurrently in one process (e.g. a test harness, or an
/// application writing two datasets from two thread pools) without
/// cross-talk.
TEST(ConcurrentJobs, ParallelWritesToDistinctDatasets) {
  constexpr int kJobs = 4;
  constexpr int kRanks = 8;
  constexpr std::uint64_t kPerRank = 400;
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 2});

  std::vector<TempDir> dirs;
  for (int j = 0; j < kJobs; ++j) dirs.emplace_back("spio-conc");

  std::vector<std::future<void>> jobs;
  for (int j = 0; j < kJobs; ++j) {
    jobs.push_back(std::async(std::launch::async, [&, j] {
      WriterConfig cfg;
      cfg.dir = dirs[static_cast<std::size_t>(j)].path();
      cfg.factor = {2, 2, 1};
      simmpi::run(kRanks, [&](simmpi::Comm& comm) {
        const auto local = workload::uniform(
            Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
            stream_seed(static_cast<std::uint64_t>(j),
                        static_cast<std::uint64_t>(comm.rank())),
            static_cast<std::uint64_t>(j) * 1000000 +
                static_cast<std::uint64_t>(comm.rank()) * kPerRank);
        write_dataset(comm, decomp, local, cfg);
      });
    }));
  }
  for (auto& f : jobs) f.get();

  // Every dataset is complete and holds exactly its own job's ids.
  const auto idf = Schema::uintah().index_of("id");
  for (int j = 0; j < kJobs; ++j) {
    const Dataset ds = Dataset::open(dirs[static_cast<std::size_t>(j)].path());
    ASSERT_EQ(ds.metadata().total_particles, kRanks * kPerRank) << "job " << j;
    const auto all = ds.query_box(Box3::unit());
    for (std::size_t i = 0; i < all.size(); ++i) {
      const double id = all.get_f64(i, idf);
      EXPECT_GE(id, j * 1000000.0);
      EXPECT_LT(id, j * 1000000.0 + kRanks * kPerRank);
    }
  }
}

/// Concurrent readers of one dataset are safe (Dataset is immutable).
TEST(ConcurrentJobs, ParallelReadersOfOneDataset) {
  constexpr int kRanks = 8;
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 2});
  TempDir dir("spio-conc-read");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 2};
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), 500,
        stream_seed(4, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * 500);
    write_dataset(comm, decomp, local, cfg);
  });

  std::vector<std::future<std::uint64_t>> readers;
  for (int t = 0; t < 6; ++t) {
    readers.push_back(std::async(std::launch::async, [&, t] {
      const Dataset ds = Dataset::open(dir.path());
      const Box3 tile = reader_tile(ds.metadata().domain, t % 3, 3);
      return static_cast<std::uint64_t>(ds.query_box(tile).size());
    }));
  }
  std::uint64_t counts[3] = {0, 0, 0};
  for (int t = 0; t < 6; ++t) {
    const std::uint64_t n = readers[static_cast<std::size_t>(t)].get();
    if (counts[t % 3] == 0) {
      counts[t % 3] = n;
    } else {
      EXPECT_EQ(counts[t % 3], n);  // identical answers across threads
    }
  }
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 8u * 500u);
}

}  // namespace
}  // namespace spio
