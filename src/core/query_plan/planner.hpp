#pragma once

/// \file planner.hpp
/// The hierarchical query planner: given a dataset's metadata, a k-d tree
/// over its partition boxes (kd_tree.hpp) and its zone-map sidecar
/// (zone_map.hpp), produce the minimal per-file fetch plan for a spatial
/// + attribute query. Three pruning levels, each provably lossless:
///
///   1. k-d descent   — candidate files in O(log F + hits);
///   2. file ranges   — drop candidates whose recorded field min/max
///                      misses a filter (the pre-existing §3.5 pruning);
///   3. zone maps     — drop candidates none of whose LOD zones can match
///                      (whole-file skip), and clamp each survivor's
///                      fetch to its last possibly-matching zone
///                      (LOD tail skip).
///
/// Zone interval tests are *closed* on both the query box and the filter
/// intervals, which makes them conservative with respect to every filter
/// kernel — including the whole-file `contains_box` fast path, which
/// appends records sitting exactly on a box's upper faces.
///
/// `plan_reference` is the retained linear-scan planner: the exact
/// pre-k-d, pre-zone behaviour, used as the differential oracle by
/// `tests/core/query_plan_test.cpp` and as the fallback when the tree or
/// sidecar is unavailable (`SPIO_PLAN=linear`, corrupt `zones.spio`).

#include <memory>
#include <span>
#include <vector>

#include "core/metadata.hpp"
#include "core/query_plan/kd_tree.hpp"
#include "core/query_plan/zone_map.hpp"
#include "core/read_engine.hpp"

namespace spio {

/// Particles in the first `levels` LOD levels of file `file_index` for
/// `n_readers` readers (`levels < 0`: the whole file) — the file's
/// proportional share of the global level-size law (§3.4), rounded up.
std::uint64_t file_prefix_count(const DatasetMetadata& meta, int file_index,
                                int levels, int n_readers);

/// One file's slice of a query plan. `prefix_records` is the plain LOD
/// prefix; `fetch_records <= prefix_records` after zone tail-skipping.
struct FilePlan {
  int file = 0;
  std::uint64_t fetch_records = 0;
  std::uint64_t prefix_records = 0;

  bool operator==(const FilePlan&) const = default;
};

/// A planned query: which files to touch and how many records of each.
struct QueryPlan {
  std::vector<FilePlan> files;
  /// Candidates the box search produced (before range/zone pruning).
  int files_considered = 0;
  /// Candidates dropped without being opened (range- or zone-pruned).
  int files_skipped = 0;
  /// Bytes the zone tail-skips shaved off surviving files' prefixes.
  std::uint64_t lod_bytes_skipped = 0;
  /// True when the linear-scan path produced this plan.
  bool used_linear = false;
  /// True when zone maps pruned or clamped anything.
  bool zone_pruned = false;
};

enum class PlanMode : std::uint8_t { kPruned = 0, kLinear = 1 };

/// `SPIO_PLAN=linear` forces the linear-scan planner process-wide (the
/// bench fallback arm); anything else selects the pruned planner.
PlanMode plan_mode_from_env();

/// Immutable planning state of one open dataset. Methods take the
/// metadata per call, so a copied `Dataset` never dangles; the tree and
/// zone table are shared with it.
class QueryPlanner {
 public:
  QueryPlanner(std::shared_ptr<const BoxKdTree> tree,
               std::shared_ptr<const ZoneMapTable> zones, PlanMode mode)
      : tree_(std::move(tree)), zones_(std::move(zones)), mode_(mode) {}

  const std::shared_ptr<const BoxKdTree>& tree() const { return tree_; }
  const ZoneMapTable* zones() const { return zones_.get(); }
  PlanMode mode() const { return mode_; }

  /// Files whose bounds intersect `box`, ascending — `files_intersecting`
  /// semantics via the k-d tree when available. Requires bounds.
  std::vector<int> intersecting(const DatasetMetadata& meta,
                                const Box3& box) const;

  /// Full pruned plan (or the linear plan under `PlanMode::kLinear`).
  /// Requires bounds; a box disjoint from the domain yields an empty
  /// plan with `files_considered == 0` — zero metadata work, zero opens.
  QueryPlan plan(const DatasetMetadata& meta, const Box3& box,
                 std::span<const RangeFilter> filters, int levels,
                 int n_readers) const;

  /// The linear-scan oracle: bbox scan + file-range pruning, full LOD
  /// prefixes, no zones. Byte-identical query results to `plan` by the
  /// planner property suite.
  QueryPlan plan_reference(const DatasetMetadata& meta, const Box3& box,
                           std::span<const RangeFilter> filters, int levels,
                           int n_readers) const;

 private:
  std::shared_ptr<const BoxKdTree> tree_;
  std::shared_ptr<const ZoneMapTable> zones_;
  PlanMode mode_ = PlanMode::kPruned;
};

}  // namespace spio
