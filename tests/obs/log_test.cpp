/// \file log_test.cpp
/// Structured logging: spec parsing, level filtering, the file sink's
/// line format (prefix, rank, event name, key=value fields, quoting),
/// and the guarantee that active log events land in the flight recorder.

#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "util/temp_dir.hpp"

namespace spio {
namespace {

using obs::log::Level;

/// Every line of a text file.
std::vector<std::string> lines_of(const std::filesystem::path& p) {
  std::ifstream f(p);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) lines.push_back(line);
  return lines;
}

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::log::set_level(Level::kOff);
    obs::log::set_sink_path("");
    obs::set_thread_rank(-1);
    obs::FlightRecorder::instance().clear();
  }
};

TEST_F(LogTest, ParseLevelAcceptsKeywordsAndRejectsJunk) {
  Level l = Level::kOff;
  EXPECT_TRUE(obs::log::parse_level("trace", &l));
  EXPECT_EQ(l, Level::kTrace);
  EXPECT_TRUE(obs::log::parse_level("warn", &l));
  EXPECT_EQ(l, Level::kWarn);
  EXPECT_TRUE(obs::log::parse_level("warning", &l));
  EXPECT_EQ(l, Level::kWarn);
  EXPECT_TRUE(obs::log::parse_level("off", &l));
  EXPECT_EQ(l, Level::kOff);
  EXPECT_FALSE(obs::log::parse_level("verbose", &l));
  EXPECT_FALSE(obs::log::parse_level("", &l));
}

TEST_F(LogTest, ParseSpecSplitsLevelAndPath) {
  Level l = Level::kOff;
  std::string path = "untouched";
  EXPECT_TRUE(obs::log::parse_spec("debug", &l, &path));
  EXPECT_EQ(l, Level::kDebug);
  EXPECT_EQ(path, "");

  EXPECT_TRUE(obs::log::parse_spec("info:/tmp/spio.log", &l, &path));
  EXPECT_EQ(l, Level::kInfo);
  EXPECT_EQ(path, "/tmp/spio.log");

  // Paths may themselves contain ':' (only the first one splits).
  EXPECT_TRUE(obs::log::parse_spec("error:log:v2.txt", &l, &path));
  EXPECT_EQ(path, "log:v2.txt");

  l = Level::kError;
  path = "untouched";
  EXPECT_FALSE(obs::log::parse_spec("chatty:/tmp/x", &l, &path));
  EXPECT_EQ(l, Level::kError) << "outputs must survive a malformed spec";
  EXPECT_EQ(path, "untouched");
  EXPECT_FALSE(obs::log::parse_spec("", &l, &path));
}

TEST_F(LogTest, LevelFilterGatesEmission) {
  obs::log::set_level(Level::kWarn);
  EXPECT_FALSE(obs::log::enabled(Level::kDebug));
  EXPECT_FALSE(obs::log::enabled(Level::kInfo));
  EXPECT_TRUE(obs::log::enabled(Level::kWarn));
  EXPECT_TRUE(obs::log::enabled(Level::kError));

  TempDir dir("spio-log");
  const auto sink = dir.path() / "out.log";
  obs::log::set_sink_path(sink.string());
  obs::log::Event(Level::kInfo, "suppressed.event").kv("k", 1);
  obs::log::Event(Level::kError, "emitted.event").kv("k", 2);
  obs::log::set_sink_path("");

  const auto lines = lines_of(sink);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("emitted.event"), std::string::npos);
  EXPECT_NE(lines[0].find("ERROR"), std::string::npos);
}

TEST_F(LogTest, LineFormatCarriesPrefixRankAndFields) {
  obs::log::set_level(Level::kInfo);
  TempDir dir("spio-log");
  const auto sink = dir.path() / "out.log";
  obs::log::set_sink_path(sink.string());

  obs::set_thread_rank(7);
  obs::log::Event(Level::kInfo, "writer.commit")
      .kv("dir", "/data/run1")
      .kv("files", std::uint64_t{16})
      .kv("ok", true)
      .kv("ratio", 1.5);
  obs::set_thread_rank(-1);
  obs::log::set_sink_path("");

  const auto lines = lines_of(sink);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.rfind("[spio] INFO ", 0), 0u) << line;
  EXPECT_NE(line.find(" r7 "), std::string::npos) << line;
  EXPECT_NE(line.find("writer.commit"), std::string::npos) << line;
  EXPECT_NE(line.find("dir=/data/run1"), std::string::npos) << line;
  EXPECT_NE(line.find("files=16"), std::string::npos) << line;
  EXPECT_NE(line.find("ok=true"), std::string::npos) << line;
  EXPECT_NE(line.find("ratio=1.5"), std::string::npos) << line;
}

TEST_F(LogTest, ValuesWithSpacesOrEqualsAreQuoted) {
  obs::log::set_level(Level::kInfo);
  TempDir dir("spio-log");
  const auto sink = dir.path() / "out.log";
  obs::log::set_sink_path(sink.string());

  obs::log::Event(Level::kInfo, "quoting.test")
      .kv("msg", "drop msg tag=101 src=2")
      .kv("plain", "bare");
  obs::log::set_sink_path("");

  const auto lines = lines_of(sink);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("msg=\"drop msg tag=101 src=2\""),
            std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("plain=bare"), std::string::npos) << lines[0];
}

TEST_F(LogTest, ActiveEventsLandInFlightRecorder) {
  obs::FlightRecorder::instance().clear();
  obs::log::set_level(Level::kWarn);
  { obs::log::Event(Level::kWarn, "flight.mirrored"); }
  { obs::log::Event(Level::kDebug, "flight.suppressed"); }
  obs::log::set_level(Level::kOff);

  bool mirrored = false, suppressed = false;
  for (const auto& ring : obs::FlightRecorder::instance().snapshot())
    for (const auto& e : ring.events) {
      if (std::string(e.text) == "flight.mirrored" &&
          e.type == obs::FlightType::kLog)
        mirrored = true;
      if (std::string(e.text) == "flight.suppressed") suppressed = true;
    }
  EXPECT_TRUE(mirrored)
      << "an emitted log event must appear in the flight ring";
  EXPECT_FALSE(suppressed)
      << "a filtered log event must not reach the flight ring";
}

}  // namespace
}  // namespace spio
