#pragma once

/// \file reliable.hpp
/// Stop-and-wait reliable exchange over simmpi point-to-point messaging.
///
/// The writer's two exchange phases (counts, then particle payloads) send
/// at most one message per (sender, destination, tag) pair. Under fault
/// injection those messages can be dropped, duplicated or delayed; this
/// layer recovers all three with per-message acknowledgements and bounded
/// retransmission:
///
///   - every received payload is acknowledged on `ack_tag(tag)`, even
///     duplicates (the sender may have missed an earlier ACK);
///   - duplicates are filtered by (source, tag) — safe because the write
///     protocol sends at most one message per pair and phase;
///   - a sender retransmits after `ack_timeout` without an ACK, up to
///     `max_attempts`, then throws `FaultError` (a structured failure,
///     never a hang);
///   - sending and receiving are one combined loop: a rank services
///     inbound payloads while waiting for its own ACKs, so two ranks
///     exchanging with each other cannot deadlock.
///
/// If another rank dies, the runtime's abort flag unblocks the loop via
/// `Comm::aborting()` and the usual `Aborted` unwind.

#include <chrono>
#include <cstddef>
#include <vector>

#include "simmpi/comm.hpp"

namespace spio::faultsim {

/// One outbound message of an exchange.
struct Outbound {
  int dst = 0;
  std::vector<std::byte> payload;
};

/// Retransmission policy. The defaults suit in-process chaos tests (small
/// jobs, millisecond delivery); a real network transport would scale the
/// timeout with measured round-trip time.
struct RetryPolicy {
  int max_attempts = 5;
  std::chrono::milliseconds ack_timeout{80};
  std::chrono::milliseconds poll_interval{1};
};

/// Send every message in `to_send` (destinations must be distinct) and
/// receive exactly one payload from each rank in `recv_from`, all on
/// `tag`, reliably. Returns the received payloads indexed like
/// `recv_from`. Collective in spirit: every participating rank must call
/// it with matching send/receive sets or the exchange cannot complete.
/// Throws `FaultError` when a peer never acknowledges within the retry
/// budget and `simmpi::Aborted` when the job aborts underneath it.
std::vector<std::vector<std::byte>> reliable_exchange(
    simmpi::Comm& comm, std::vector<Outbound> to_send,
    const std::vector<int>& recv_from, int tag,
    const RetryPolicy& policy = {});

}  // namespace spio::faultsim
