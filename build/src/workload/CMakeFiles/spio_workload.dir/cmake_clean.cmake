file(REMOVE_RECURSE
  "CMakeFiles/spio_workload.dir/decomposition.cpp.o"
  "CMakeFiles/spio_workload.dir/decomposition.cpp.o.d"
  "CMakeFiles/spio_workload.dir/generators.cpp.o"
  "CMakeFiles/spio_workload.dir/generators.cpp.o.d"
  "CMakeFiles/spio_workload.dir/particle_buffer.cpp.o"
  "CMakeFiles/spio_workload.dir/particle_buffer.cpp.o.d"
  "CMakeFiles/spio_workload.dir/schema.cpp.o"
  "CMakeFiles/spio_workload.dir/schema.cpp.o.d"
  "libspio_workload.a"
  "libspio_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spio_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
