#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace spio::obs {
namespace {

TEST(Metrics, CounterAccumulatesAndResets) {
  MetricsRegistry reg;
  Counter& c = reg.counter("t.count");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  // The reference stays valid and addresses the same metric.
  c.add(7);
  EXPECT_EQ(reg.counter("t.count").value(), 7u);
}

TEST(Metrics, SameNameYieldsSameObject) {
  MetricsRegistry reg;
  EXPECT_EQ(&reg.counter("a"), &reg.counter("a"));
  EXPECT_EQ(&reg.gauge("g"), &reg.gauge("g"));
  EXPECT_EQ(&reg.histogram("h"), &reg.histogram("h"));
  // Namespaces are per-kind: a counter "x" and a gauge "x" coexist.
  reg.counter("x").add(1);
  reg.gauge("x").set(2.5);
  EXPECT_EQ(reg.counter("x").value(), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("x").value(), 2.5);
}

TEST(Metrics, HistogramUsesLog2Buckets) {
  Histogram h;
  h.observe(0);     // bucket 0
  h.observe(1);     // bucket 1: [1, 1]
  h.observe(2);     // bucket 2: [2, 3]
  h.observe(3);     // bucket 2
  h.observe(1024);  // bucket 11: [1024, 2047]
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);
  EXPECT_EQ(h.bucket(3), 0u);

  EXPECT_EQ(Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_bound(11), 2047u);
  EXPECT_EQ(Histogram::bucket_bound(64), ~std::uint64_t{0});

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Metrics, HistogramCoversTheFullU64Range) {
  Histogram h;
  h.observe(~std::uint64_t{0});
  EXPECT_EQ(h.bucket(64), 1u);
}

TEST(Metrics, SnapshotCapturesAllKinds) {
  MetricsRegistry reg;
  reg.counter("writer.bytes_written").add(1000);
  reg.gauge("reader.read_amplification").set(1.5);
  reg.histogram("simmpi.msg_bytes").observe(500);
  reg.histogram("simmpi.msg_bytes").observe(600);

  const MetricsRegistry::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.count("writer.bytes_written"), 1u);
  EXPECT_EQ(snap.counters.at("writer.bytes_written"), 1000u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("reader.read_amplification"), 1.5);
  const auto& h = snap.histograms.at("simmpi.msg_bytes");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 1100u);
  // Only non-empty buckets appear: 500 lands in [256, 511] (bucket 9),
  // 600 in [512, 1023] (bucket 10).
  ASSERT_EQ(h.buckets.size(), 2u);
  EXPECT_EQ(h.buckets[0].first, 511u);
  EXPECT_EQ(h.buckets[0].second, 1u);
  EXPECT_EQ(h.buckets[1].first, 1023u);
  EXPECT_EQ(h.buckets[1].second, 1u);
}

TEST(Metrics, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace spio::obs
