#include "obs/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/query_context.hpp"

namespace spio::obs::log {

namespace {

/// Sink state. Never destroyed so atexit-time log sites stay safe.
struct Sink {
  std::mutex mu;
  std::FILE* file = nullptr;  // null = stderr
};

Sink& sink() {
  static Sink* s = new Sink();
  return *s;
}

const bool g_log_env_init = [] {
  init_from_env();
  return true;
}();

/// A value needs quoting when it would break key=value tokenization.
bool needs_quotes(std::string_view v) {
  if (v.empty()) return true;
  for (const char c : v)
    if (c == ' ' || c == '=' || c == '"' || c == '\n' || c == '\t')
      return true;
  return false;
}

void append_value(std::string& line, std::string_view v) {
  if (!needs_quotes(v)) {
    line.append(v);
    return;
  }
  line.push_back('"');
  for (const char c : v)
    line.push_back(c == '"' || c == '\n' || c == '\t' ? '\'' : c);
  line.push_back('"');
}

}  // namespace

const char* level_name(Level l) {
  switch (l) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

bool parse_level(std::string_view text, Level* out) {
  if (text == "trace") *out = Level::kTrace;
  else if (text == "debug") *out = Level::kDebug;
  else if (text == "info") *out = Level::kInfo;
  else if (text == "warn" || text == "warning") *out = Level::kWarn;
  else if (text == "error") *out = Level::kError;
  else if (text == "off" || text == "none") *out = Level::kOff;
  else return false;
  return true;
}

bool parse_spec(std::string_view spec, Level* level, std::string* path) {
  const std::size_t colon = spec.find(':');
  const std::string_view level_part =
      colon == std::string_view::npos ? spec : spec.substr(0, colon);
  Level parsed;
  if (!parse_level(level_part, &parsed)) return false;
  *level = parsed;
  *path = colon == std::string_view::npos
              ? std::string()
              : std::string(spec.substr(colon + 1));
  return true;
}

void set_level(Level l) {
  detail::g_min_level.store(static_cast<int>(l), std::memory_order_relaxed);
}

Level level() {
  return static_cast<Level>(
      detail::g_min_level.load(std::memory_order_relaxed));
}

void set_sink_path(const std::string& path) {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.file) {
    std::fclose(s.file);
    s.file = nullptr;
  }
  if (!path.empty()) s.file = std::fopen(path.c_str(), "a");
}

void init_from_env() {
  static const bool once = [] {
    const char* spec = std::getenv("SPIO_LOG");
    if (!spec || !*spec) return true;
    Level parsed;
    std::string path;
    if (!parse_spec(spec, &parsed, &path)) {
      std::fprintf(stderr, "[spio] ignoring malformed SPIO_LOG='%s'\n", spec);
      return true;
    }
    set_level(parsed);
    if (!path.empty()) set_sink_path(path);
    return true;
  }();
  (void)once;
}

namespace detail {

void emit(Level l, const std::string& line) {
  (void)l;
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  std::FILE* out = s.file ? s.file : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fputc('\n', out);
  std::fflush(out);
}

}  // namespace detail

Event::Event(Level l, const char* event)
    : active_(enabled(l)),
      level_(l),
      event_(event),
      qid_(active_ ? current_query_id() : 0) {
  if (!active_) return;
  char head[128];
  const int rank = thread_rank();
  if (qid_ != 0) {
    std::snprintf(head, sizeof head, "[spio] %s r%d +%.1fus %s qid=%llu",
                  level_name(l), rank, now_us(), event,
                  static_cast<unsigned long long>(qid_));
  } else {
    std::snprintf(head, sizeof head, "[spio] %s r%d +%.1fus %s",
                  level_name(l), rank, now_us(), event);
  }
  line_ = head;
}

Event::~Event() {
  if (!active_) return;
  flight_record(FlightType::kLog, event_, qid_, 0,
                static_cast<std::uint8_t>(level_));
  detail::emit(level_, line_);
}

Event& Event::kv(std::string_view key, std::string_view value) {
  if (!active_) return *this;
  line_.push_back(' ');
  line_.append(key);
  line_.push_back('=');
  append_value(line_, value);
  return *this;
}

Event& Event::kv(std::string_view key, double value) {
  if (!active_) return *this;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return kv(key, std::string_view(buf));
}

Event& Event::kv(std::string_view key, std::uint64_t value) {
  if (!active_) return *this;
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  return kv(key, std::string_view(buf));
}

Event& Event::kv(std::string_view key, std::int64_t value) {
  if (!active_) return *this;
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  return kv(key, std::string_view(buf));
}

}  // namespace spio::obs::log
