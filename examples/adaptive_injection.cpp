/// \file adaptive_injection.cpp
/// Adaptive aggregation on a non-uniform workload (paper §6, Fig. 10/11):
/// a coal-jet style injection simulation where particles enter at one
/// face and fill the domain over time. Early timesteps leave most ranks
/// empty; the adaptive aggregation grid covers only the occupied region
/// and assigns no aggregator to empty space. The example writes a
/// checkpoint at several injection times with both schemes and compares
/// the resulting layouts.
///
/// Usage: adaptive_injection [output-dir]   (default: ./injection_run)

#include <iostream>
#include <mutex>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/generators.hpp"

using namespace spio;

int main(int argc, char** argv) {
  const std::filesystem::path base = argc > 1 ? argv[1] : "injection_run";

  constexpr int kRanks = 32;
  constexpr std::uint64_t kPerRank = 12000;
  const Box3 domain({0, 0, 0}, {4, 1, 1});
  const PatchDecomposition decomp(domain, {8, 2, 2});

  Table t("Injection checkpoint layouts: adaptive vs non-adaptive "
          "aggregation",
          {"time", "scheme", "particles", "files", "grid region (x)",
           "max/min file"});

  for (const double t01 : {0.25, 0.5, 1.0}) {
    for (const bool adaptive : {false, true}) {
      const auto dir = base / ((adaptive ? "adaptive_t" : "static_t") +
                               std::to_string(static_cast<int>(t01 * 100)));
      simmpi::run(kRanks, [&](simmpi::Comm& comm) {
        const auto local = workload::injection(
            Schema::uintah(), decomp.patch(comm.rank()), domain, t01,
            kPerRank,
            stream_seed(606, static_cast<std::uint64_t>(comm.rank())),
            static_cast<std::uint64_t>(comm.rank()) * kPerRank);
        WriterConfig cfg;
        cfg.dir = dir;
        cfg.factor = {2, 2, 2};
        cfg.adaptive = adaptive;
        write_dataset(comm, decomp, local, cfg);
      });

      const Dataset ds = Dataset::open(dir);
      Box3 covered = Box3::empty();
      std::uint64_t min_count = ~0ull, max_count = 0;
      for (const auto& f : ds.metadata().files) {
        covered.extend(f.bounds);
        min_count = std::min(min_count, f.particle_count);
        max_count = std::max(max_count, f.particle_count);
      }
      char region[64];
      std::snprintf(region, sizeof(region), "[%.2f, %.2f]", covered.lo.x,
                    covered.hi.x);
      t.row()
          .add_double(t01, 2)
          .add(adaptive ? "adaptive" : "non-adaptive")
          .add_int(static_cast<long long>(ds.metadata().total_particles))
          .add_int(ds.file_count())
          .add(region)
          .add(std::to_string(max_count) + "/" + std::to_string(min_count));
    }
  }
  t.print(std::cout);
  std::cout
      << "\nat early times the non-adaptive grid wastes partitions on the "
         "empty region\n(fewer, uneven files); the adaptive grid covers "
         "only the jet and balances file\nsizes. Both schemes store the "
         "same particles — verify with a query:\n";

  const Dataset early = Dataset::open(base / "adaptive_t25");
  ReadStats rs;
  const Box3 nose({0.8, 0, 0}, {1.0, 1, 1});
  const auto hits = early.query_box(nose, -1, 1, &rs);
  std::cout << "query at the jet front " << nose << ": " << hits.size()
            << " particles from " << rs.files_opened << "/"
            << early.file_count() << " files ("
            << format_bytes(rs.bytes_read) << ")\n";
  return 0;
}
