#pragma once

/// \file write_model.hpp
/// Cost model for parallel writes at leadership scale. The functional
/// library (src/core) runs for real at workstation scale; this model
/// extrapolates the same plans to 512-262,144 ranks on the calibrated
/// machine profiles, regenerating the *shapes* of the paper's Fig. 5
/// (weak-scaling throughput), Fig. 6 (aggregation vs file I/O breakdown)
/// and Fig. 11 (adaptive aggregation). Storage-side queueing (file
/// creates at the MDS pipelined into per-resource transfers) runs through
/// the discrete-event engine.

#include <cstdint>

#include "core/partition_factor.hpp"
#include "iosim/machine_profile.hpp"
#include "util/vec3.hpp"

namespace spio::iosim {

/// I/O scheme being modeled.
enum class WriteScheme : std::uint8_t {
  /// Our spatially-aware two-phase I/O with a partition factor.
  kSpio = 0,
  /// Plain file-per-process (also the spio (1,1,1) configuration and the
  /// paper's IOR FPP reference).
  kFilePerProcess = 1,
  /// IOR shared-file: all ranks write one file at rank offsets.
  kIorShared = 2,
  /// Parallel HDF5 (h5perf-like): shared file with collective metadata
  /// overhead; degrades past ~32K ranks (Byna et al. report failures).
  kPhdf5 = 3,
};

const char* write_scheme_name(WriteScheme s);

struct WriteCase {
  int nprocs = 512;
  std::uint64_t particles_per_proc = 32768;
  std::uint64_t record_bytes = 124;
  WriteScheme scheme = WriteScheme::kSpio;
  /// Partition factor for kSpio; the process grid is the near-cubic
  /// factorization of nprocs unless set explicitly.
  PartitionFactor factor{1, 1, 1};
  Vec3i process_grid{0, 0, 0};  // {0,0,0} = derive from nprocs

  std::uint64_t bytes_per_proc() const {
    return particles_per_proc * record_bytes;
  }
  std::uint64_t total_bytes() const {
    return bytes_per_proc() * static_cast<std::uint64_t>(nprocs);
  }
};

struct WriteBreakdown {
  double aggregation_seconds = 0;  // two-phase data movement (Fig. 6 share)
  double io_seconds = 0;           // creates + transfers (pipelined)
  double create_seconds = 0;       // informational: the create component
  std::int64_t files = 0;
  std::int64_t group_size = 1;
  std::uint64_t total_bytes = 0;

  double total_seconds() const { return aggregation_seconds + io_seconds; }
  double throughput_gbs() const;
  /// Fraction of total time spent aggregating (Fig. 6's y-axis).
  double aggregation_share() const;
};

/// Model one write. Throws `ConfigError` on invalid cases.
WriteBreakdown model_write(const MachineProfile& machine, const WriteCase& c);

/// The §6.1 experiment: `nprocs` ranks, total particle count fixed, but
/// particles occupy only `coverage` (0,1] of the domain. `adaptive`
/// selects the layout-aware adaptive grid (partitions over the occupied
/// region only, aggregators uniform over the full rank space) versus the
/// layout-agnostic grid (aggregators assigned to empty regions too, so
/// active aggregators cluster in the rank space).
struct AdaptiveCase {
  int nprocs = 4096;
  std::uint64_t total_particles = 4096ull * 32768;
  std::uint64_t record_bytes = 124;
  PartitionFactor factor{2, 2, 2};
  double coverage = 1.0;
  bool adaptive = true;
};

WriteBreakdown model_adaptive_write(const MachineProfile& machine,
                                    const AdaptiveCase& c);

}  // namespace spio::iosim
