#include <gtest/gtest.h>

#include <set>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

class StreamQuery : public ::testing::Test {
 protected:
  static constexpr int kRanks = 16;
  static constexpr std::uint64_t kPerRank = 300;

  static void SetUpTestSuite() {
    dir_ = new TempDir("spio-stream");
    const PatchDecomposition decomp(Box3::unit(), {4, 4, 1});
    WriterConfig cfg;
    cfg.dir = dir_->path();
    cfg.factor = {2, 2, 1};  // 4 files
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      const auto local = workload::uniform(
          Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
          stream_seed(81, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      write_dataset(comm, decomp, local, cfg);
    });
  }

  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  static std::set<double> id_set(const ParticleBuffer& buf) {
    const auto id = buf.schema().index_of("id");
    std::set<double> out;
    for (std::size_t i = 0; i < buf.size(); ++i)
      out.insert(buf.get_f64(i, id));
    return out;
  }

  static TempDir* dir_;
};

TempDir* StreamQuery::dir_ = nullptr;

TEST_F(StreamQuery, StreamedChunksEqualMaterializedQuery) {
  const Dataset ds = Dataset::open(dir_->path());
  const Box3 q({0.1, 0.2, 0.0}, {0.8, 0.9, 1.0});
  std::set<double> streamed;
  std::uint64_t chunks = 0, total = 0;
  const std::uint64_t delivered = ds.stream_box(q, [&](const ParticleBuffer& c) {
    ++chunks;
    total += c.size();
    for (std::size_t i = 0; i < c.size(); ++i)
      EXPECT_TRUE(q.contains(c.position(i)));  // EXPECT: lambda returns bool
    const auto ids = id_set(c);
    streamed.insert(ids.begin(), ids.end());
    return true;
  });
  const auto reference = id_set(ds.query_box(q));
  EXPECT_EQ(streamed, reference);
  EXPECT_EQ(delivered, total);
  EXPECT_EQ(delivered, reference.size());
  EXPECT_GT(chunks, 1u);  // query spans several files
}

TEST_F(StreamQuery, PeakMemoryIsOneChunk) {
  const Dataset ds = Dataset::open(dir_->path());
  std::uint64_t max_chunk = 0;
  ds.stream_box(ds.metadata().domain, [&](const ParticleBuffer& c) {
    max_chunk = std::max<std::uint64_t>(max_chunk, c.size());
    return true;
  });
  // One file holds 4 ranks' particles; chunks never exceed a file.
  EXPECT_LE(max_chunk, 4 * kPerRank);
  EXPECT_GT(max_chunk, 0u);
}

TEST_F(StreamQuery, SinkCanStopEarly) {
  const Dataset ds = Dataset::open(dir_->path());
  int chunks = 0;
  const std::uint64_t delivered =
      ds.stream_box(ds.metadata().domain, [&](const ParticleBuffer&) {
        ++chunks;
        return false;  // stop after the first chunk
      });
  EXPECT_EQ(chunks, 1);
  EXPECT_EQ(delivered, 4 * kPerRank);  // exactly one file's worth
}

TEST_F(StreamQuery, LodBoundedStreaming) {
  const Dataset ds = Dataset::open(dir_->path());
  ReadStats rs;
  std::uint64_t total = 0;
  ds.stream_box(
      ds.metadata().domain,
      [&](const ParticleBuffer& c) {
        total += c.size();
        return true;
      },
      /*levels=*/2, /*n_readers=*/1, &rs);
  std::uint64_t expect = 0;
  for (int fi = 0; fi < ds.file_count(); ++fi)
    expect += ds.level_prefix_count(fi, 2, 1);
  EXPECT_EQ(total, expect);
  EXPECT_LT(rs.bytes_read,
            kRanks * kPerRank * Schema::uintah().record_size());
}

TEST_F(StreamQuery, EmptyQueryDeliversNothing) {
  const Dataset ds = Dataset::open(dir_->path());
  int chunks = 0;
  const std::uint64_t delivered =
      ds.stream_box(Box3({5, 5, 5}, {6, 6, 6}), [&](const ParticleBuffer&) {
        ++chunks;
        return true;
      });
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(chunks, 0);
}

TEST(ParticleBufferTruncate, DropsTail) {
  ParticleBuffer buf(Schema::position_only());
  for (int i = 0; i < 5; ++i) {
    buf.append_uninitialized();
    buf.set_position(static_cast<std::size_t>(i), Vec3d(i, 0, 0));
  }
  buf.truncate(2);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.position(1), Vec3d(1, 0, 0));
  buf.truncate(10);  // no-op
  EXPECT_EQ(buf.size(), 2u);
  buf.truncate(0);
  EXPECT_TRUE(buf.empty());
}

}  // namespace
}  // namespace spio
