#pragma once

/// \file fault_plan.hpp
/// Deterministic fault injection for the two-phase write path.
///
/// A `FaultPlan` scripts faults by *site* (message tag / file path /
/// pipeline phase) and *trigger* (the n-th matching event on a rank). A
/// `FaultInjector` executes the plan: it implements `simmpi::CommHooks`
/// for message faults, is consulted by `checked_write_file` for storage
/// faults, and is called by the writer at phase boundaries for rank
/// death. Every applied fault is recorded in a per-rank event log so a
/// test can assert that the same seed produces the same fault sequence.
///
/// Determinism model: triggers are counted per (rule, rank), and each
/// rank's stream of first transmissions and file-write attempts is
/// deterministic. Retransmission *counts* can vary with scheduling, so a
/// plan meant to be replayed exactly should use `after = 0` for message
/// rules — the faulted events are then the first `count` transmissions,
/// which never depend on timing. `FaultPlan::random` obeys this, and it
/// never targets acknowledgement tags, so every schedule it produces is
/// recoverable by the writer's bounded-retry protocol.
///
/// A scheduled rank death is itself deterministic, but it aborts the job
/// while other ranks are mid-phase: which of *their* scheduled faults
/// were applied before the abort depends on thread scheduling. Tests
/// replaying a death schedule should compare the death events, not the
/// full log.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "simmpi/hooks.hpp"
#include "util/error.hpp"

namespace spio::faultsim {

/// A fault-injection outcome the subsystem classifies as *structured*:
/// retry budgets exhausted, unacknowledged peers, unrecoverable storage.
/// Distinct from `IoError`/`FormatError` so tests can tell an injected,
/// detected failure from an accidental one.
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& what)
      : Error("spio: injected fault: " + what) {}
};

/// Thrown by a phase hook to simulate a rank dying at a chosen point of
/// the write pipeline. The simmpi runtime treats it like any rank
/// failure: the job aborts and `simmpi::run` rethrows it to the caller.
class RankDeath : public Error {
 public:
  explicit RankDeath(const std::string& what)
      : Error("spio: injected rank death: " + what) {}
};

/// Write-pipeline phases at which a rank death can be scheduled. The
/// writer announces each phase entry to the injector.
enum class WritePhase : int {
  kSetup = 0,             // grid construction + aggregator selection (§3.1–3.2)
  kMetaExchange = 1,      // particle-count exchange (§3.3)
  kParticleExchange = 2,  // particle data exchange (§3.3)
  kDataWrite = 3,         // per-partition data files (§3.4)
  kCommit = 4,            // metadata gather + meta.spio write (§3.5)
};
constexpr int kNumWritePhases = 5;

/// Human-readable phase name (event logs, test output).
std::string_view phase_name(WritePhase phase);

/// Point-to-point tags of the write protocol. Owned by this layer (not
/// the writer) so fault plans and the writer agree on the fault surface
/// without a dependency cycle.
constexpr int kTagMetaExchange = 101;
constexpr int kTagParticleExchange = 102;

/// Acknowledgement tag paired with a data tag by `reliable_exchange`.
constexpr int kAckTagOffset = 10;
constexpr int ack_tag(int tag) { return tag + kAckTagOffset; }

/// Fault one point-to-point message stream. Matches sends where every
/// non-wildcard field agrees; the trigger window [after, after + count)
/// is counted per sending rank.
struct MessageRule {
  simmpi::SendAction action = simmpi::SendAction::kDrop;
  int src = -1;   // sending rank, -1 = any
  int dst = -1;   // destination rank, -1 = any
  int tag = -1;   // message tag, -1 = any (matches ACK tags too — such a
                  // plan can defeat recovery; see file header)
  int after = 0;  // matching sends to let pass per sender first
  int count = 1;  // matching sends to fault per sender

  bool operator==(const MessageRule&) const = default;
};

/// Human-readable send-action name (event logs, postmortem bundles).
std::string_view send_action_name(simmpi::SendAction a);

/// Storage fault kinds applied by `checked_write_file`.
enum class FileFaultKind : int {
  kNone = 0,
  kTornWrite,    // only a prefix of the payload reaches the file
  kCorruptByte,  // one payload byte is flipped before the write
  kFailedSync,   // the write "succeeds" but the flush fails (IoError-like)
  kBitRot,       // the file is corrupted *after* write validation passes;
                 // only reader-side checksum validation can catch it
};

/// Human-readable file-fault name (event logs, test output).
std::string_view file_fault_name(FileFaultKind kind);

/// Fault the n-th checked file write on a rank whose target path contains
/// `path_contains` (empty = any file).
struct FileRule {
  FileFaultKind kind = FileFaultKind::kTornWrite;
  int rank = -1;              // writing rank, -1 = any
  std::string path_contains;  // substring of the target file name
  int after = 0;              // matching writes to let pass per rank first
  int count = 1;              // matching writes to fault per rank

  bool operator==(const FileRule&) const = default;
};

/// Kill `rank` when it enters `phase`.
struct DeathRule {
  int rank = 0;
  WritePhase phase = WritePhase::kDataWrite;

  bool operator==(const DeathRule&) const = default;
};

/// A complete fault schedule. Plain data: build one by hand for targeted
/// tests or with `random` for chaos schedules.
struct FaultPlan {
  std::vector<MessageRule> messages;
  std::vector<FileRule> files;
  std::vector<DeathRule> deaths;

  bool operator==(const FaultPlan&) const = default;

  /// Deterministic pseudo-random plan for a `nranks`-rank write. The same
  /// (seed, nranks) always yields the same plan. Every generated schedule
  /// is recoverable or ends in a structured failure: message rules use
  /// `after = 0`, target only the writer's data tags (never ACKs), and
  /// fault fewer events than the retry budget; file rules use recoverable
  /// kinds (no bit rot); a minority of seeds schedule one rank death.
  static FaultPlan random(std::uint64_t seed, int nranks);
};

/// One applied fault. `seq` orders events within a rank; cross-rank order
/// is not meaningful (ranks run concurrently).
struct FaultEvent {
  int rank = 0;
  std::uint64_t seq = 0;
  std::string description;

  bool operator==(const FaultEvent&) const = default;
};

/// Executes a `FaultPlan`. Install via `simmpi::RunOptions::comm_hooks`
/// for message faults and pass to the writer (WriterConfig::faults) for
/// phase and storage faults. One injector serves one job: per-rank state
/// is sized at construction and each slot is touched only by that rank's
/// thread, so no locking is needed (and `events()` must only be called
/// after the job has joined).
class FaultInjector final : public simmpi::CommHooks {
 public:
  FaultInjector(FaultPlan plan, int nranks);

  const FaultPlan& plan() const { return plan_; }

  /// simmpi::CommHooks: decide the fate of one message.
  simmpi::SendAction on_send(int src, int dst, int tag,
                             std::size_t bytes) override;

  /// Called by the writer when `rank` enters `phase`. Throws `RankDeath`
  /// if the plan schedules this rank's death here.
  void on_phase(int rank, WritePhase phase);

  /// Called by `checked_write_file` before each write attempt of `path`
  /// on `rank`; returns the storage fault to apply to this attempt.
  FileFaultKind next_file_fault(int rank, std::string_view path);

  /// All applied faults, merged across ranks and sorted by (rank, seq).
  /// Deterministic for `after = 0` plans; see the file header.
  std::vector<FaultEvent> events() const;

 private:
  void record(int rank, std::string description);

  FaultPlan plan_;
  int nranks_;
  // seen_*[rule][rank]: matching events observed so far. Slot [*][r] is
  // only touched by rank r's thread.
  std::vector<std::vector<int>> seen_msgs_;
  std::vector<std::vector<int>> seen_files_;
  std::vector<std::vector<FaultEvent>> log_;   // per rank
  std::vector<std::uint64_t> next_seq_;        // per rank
};

}  // namespace spio::faultsim
