#include "util/temp_dir.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace spio {
namespace {

namespace fs = std::filesystem;

TEST(TempDir, CreatesDirectory) {
  TempDir d("spio-test");
  EXPECT_TRUE(fs::is_directory(d.path()));
}

TEST(TempDir, RemovedOnDestruction) {
  fs::path p;
  {
    TempDir d("spio-test");
    p = d.path();
    std::ofstream(d.file("x.txt")) << "hello";
    EXPECT_TRUE(fs::exists(p / "x.txt"));
  }
  EXPECT_FALSE(fs::exists(p));
}

TEST(TempDir, UniqueAcrossInstances) {
  TempDir a("spio-test"), b("spio-test");
  EXPECT_NE(a.path(), b.path());
}

TEST(TempDir, MoveTransfersOwnership) {
  fs::path p;
  {
    TempDir a("spio-test");
    p = a.path();
    TempDir b = std::move(a);
    EXPECT_EQ(b.path(), p);
    EXPECT_TRUE(fs::exists(p));
  }
  EXPECT_FALSE(fs::exists(p));
}

TEST(TempDir, ReleasePreventsCleanup) {
  fs::path p;
  {
    TempDir d("spio-test");
    p = d.release();
  }
  EXPECT_TRUE(fs::exists(p));
  fs::remove_all(p);
}

TEST(TempDir, FileHelperJoinsPath) {
  TempDir d("spio-test");
  EXPECT_EQ(d.file("data.bin"), d.path() / "data.bin");
}

}  // namespace
}  // namespace spio
