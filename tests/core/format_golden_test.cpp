#include <gtest/gtest.h>

#include <string>

#include "core/metadata.hpp"
#include "core/query_plan/kd_tree.hpp"

namespace spio {
namespace {

/// On-disk format freeze: the exact byte sequence of a reference metadata
/// file, current version 3 (zone-map flag + k-d tree footer). If this
/// test fails, the format changed — either fix the regression or bump
/// `DatasetMetadata::kVersion` and regenerate the golden bytes (see
/// docs/FORMAT.md).
constexpr const char* kGoldenHexV3 =
    "5350494f0300000004030201060000000800000000000000706f736974696f6e0103"
    "00000006000000000000007374726573730109000000070000000000000064656e73"
    "69747901010000000600000000000000766f6c756d65010100000002000000000000"
    "00696401010000000400000000000000747970650001000000000000000000000000"
    "00000000000000000000000000000000000000000010400000000000000040000000"
    "000000f03f2000000000000000000000000000004000010101070000000000000001"
    "00000000000000030000000700000000000000000000000000000000000000000000"
    "00000000000000000000000000000000400000000000000040000000000000f03f00"
    "0000000000f0bf000000000000f03f000000000000f0bf000000000000f03f000000"
    "000000f0bf000000000000f03f000000000000f0bf000000000000f03f0000000000"
    "00f0bf000000000000f03f000000000000f0bf000000000000f03f000000000000f0"
    "bf000000000000f03f000000000000f0bf000000000000f03f000000000000f0bf00"
    "0000000000f03f000000000000f0bf000000000000f03f000000000000f0bf000000"
    "000000f03f000000000000f0bf000000000000f03f000000000000f0bf0000000000"
    "00f03f000000000000f0bf000000000000f03f000000000000f0bf000000000000f0"
    "3f000000000000f0bf000000000000f03f0100000001000000000000000000000000"
    "00000000000000000000000000000000000000000000400000000000000040000000"
    "000000f03fffffffffffffffff000000000100000000000000";

/// The same reference dataset as written by format version 2 (no
/// zone-map flag, no k-d footer) — the back-compatibility fixture: v2
/// datasets must keep parsing, with the tree rebuilt in memory.
constexpr const char* kGoldenHexV2 =
    "5350494f0200000004030201060000000800000000000000706f736974696f6e0103"
    "00000006000000000000007374726573730109000000070000000000000064656e73"
    "69747901010000000600000000000000766f6c756d65010100000002000000000000"
    "00696401010000000400000000000000747970650001000000000000000000000000"
    "00000000000000000000000000000000000000000010400000000000000040000000"
    "000000f03f2000000000000000000000000000004000010107000000000000000100"
    "00000000000003000000070000000000000000000000000000000000000000000000"
    "000000000000000000000000000000400000000000000040000000000000f03f0000"
    "00000000f0bf000000000000f03f000000000000f0bf000000000000f03f00000000"
    "0000f0bf000000000000f03f000000000000f0bf000000000000f03f000000000000"
    "f0bf000000000000f03f000000000000f0bf000000000000f03f000000000000f0bf"
    "000000000000f03f000000000000f0bf000000000000f03f000000000000f0bf0000"
    "00000000f03f000000000000f0bf000000000000f03f000000000000f0bf00000000"
    "0000f03f000000000000f0bf000000000000f03f000000000000f0bf000000000000"
    "f03f000000000000f0bf000000000000f03f000000000000f0bf000000000000f03f"
    "000000000000f0bf000000000000f03f";

DatasetMetadata reference_metadata() {
  DatasetMetadata m;
  m.schema = Schema::uintah();
  m.domain = Box3({0, 0, 0}, {4, 2, 1});
  m.lod = {32, 2.0};
  m.heuristic = LodHeuristic::kRandom;
  m.total_particles = 7;
  FileRecord f;
  f.partition_id = 0;
  f.aggregator_rank = 3;
  f.particle_count = 7;
  f.bounds = Box3({0, 0, 0}, {2, 2, 1});
  f.field_ranges.assign(m.range_count(), FieldRange{-1.0, 1.0});
  m.files.push_back(f);
  m.has_zone_maps = true;
  return m;
}

std::string to_hex(std::span<const std::byte> bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::byte b : bytes) {
    out.push_back(digits[static_cast<unsigned>(b) >> 4]);
    out.push_back(digits[static_cast<unsigned>(b) & 0xF]);
  }
  return out;
}

std::vector<std::byte> from_hex(const std::string& hex) {
  std::vector<std::byte> bytes;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    bytes.push_back(
        static_cast<std::byte>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return bytes;
}

TEST(FormatGolden, MetadataBytesAreFrozen) {
  const auto bytes = reference_metadata().serialize();
  EXPECT_EQ(bytes.size(), 603u);
  EXPECT_EQ(to_hex(bytes), kGoldenHexV3);
}

TEST(FormatGolden, GoldenBytesParseBackToTheReference) {
  const DatasetMetadata parsed =
      DatasetMetadata::deserialize(from_hex(kGoldenHexV3));
  EXPECT_EQ(parsed, reference_metadata());
  // The footer's tree must equal a fresh build over the file boxes.
  ASSERT_NE(parsed.spatial_tree, nullptr);
  EXPECT_EQ(*parsed.spatial_tree,
            BoxKdTree::build({parsed.files[0].bounds}));
}

TEST(FormatGolden, Version2BytesStillParse) {
  const DatasetMetadata parsed =
      DatasetMetadata::deserialize(from_hex(kGoldenHexV2));
  // v2 carries no zone-map flag; everything else matches the reference,
  // and the k-d tree is rebuilt in memory from the file boxes.
  DatasetMetadata expect = reference_metadata();
  expect.has_zone_maps = false;
  EXPECT_EQ(parsed, expect);
  ASSERT_NE(parsed.spatial_tree, nullptr);
  EXPECT_EQ(*parsed.spatial_tree,
            BoxKdTree::build({parsed.files[0].bounds}));
}

TEST(FormatGolden, MagicSpellsSpio) {
  const auto bytes = reference_metadata().serialize();
  EXPECT_EQ(static_cast<char>(bytes[0]), 'S');
  EXPECT_EQ(static_cast<char>(bytes[1]), 'P');
  EXPECT_EQ(static_cast<char>(bytes[2]), 'I');
  EXPECT_EQ(static_cast<char>(bytes[3]), 'O');
  EXPECT_EQ(static_cast<unsigned>(bytes[4]), 3u);  // version
}

TEST(FormatGolden, TruncatedMetadataRaisesStructuredError) {
  // A torn metadata write (the crash mode the write journal exists for)
  // must surface as FormatError at every truncation point — never an
  // out-of-bounds read, a crash, or a silently short parse. The k-d
  // footer is covered by the points past the file table.
  const auto whole = reference_metadata().serialize();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{4}, std::size_t{5},
        std::size_t{16}, std::size_t{100}, whole.size() / 2,
        whole.size() - 60, whole.size() - 1}) {
    std::vector<std::byte> torn(whole.begin(),
                                whole.begin() + static_cast<long>(keep));
    EXPECT_THROW(DatasetMetadata::deserialize(torn), FormatError)
        << "truncated to " << keep << " bytes";
  }
}

TEST(FormatGolden, TrailingGarbageAfterMetadataIsRejected) {
  auto bytes = reference_metadata().serialize();
  bytes.push_back(std::byte{0x5A});
  EXPECT_THROW(DatasetMetadata::deserialize(bytes), FormatError);
}

TEST(FormatGolden, CorruptedMagicIsRejected) {
  auto bytes = reference_metadata().serialize();
  bytes[0] = std::byte{'X'};
  EXPECT_THROW(DatasetMetadata::deserialize(bytes), FormatError);
}

TEST(FormatGolden, CorruptedKdFooterIsRejected) {
  // Flip the root's child links to nonsense: the structural validation
  // must refuse rather than follow bogus offsets.
  auto bytes = reference_metadata().serialize();
  // The footer's node record sits 20 bytes before the trailing leaf file
  // id; its `left` field is at [-20, -16) relative to the end.
  const std::size_t left_off = bytes.size() - 20;
  bytes[left_off] = std::byte{0x02};  // left = 2 (out of range for 1 node)
  bytes[left_off + 1] = std::byte{0x00};
  bytes[left_off + 2] = std::byte{0x00};
  bytes[left_off + 3] = std::byte{0x00};
  EXPECT_THROW(DatasetMetadata::deserialize(bytes), FormatError);
}

}  // namespace
}  // namespace spio
