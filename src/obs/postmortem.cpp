#include "obs/postmortem.hpp"

#include <csignal>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/run_record.hpp"
#include "util/error.hpp"

namespace spio::obs {

namespace {

/// Serializes concurrent dumps (several ranks can fail at once).
std::mutex& dump_mutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

/// Crash-handler target directory: a fixed buffer so the signal handler
/// can read it without touching the allocator.
char g_crash_dir[4096] = {};
std::mutex g_crash_dir_mu;

extern "C" void crash_signal_handler(int sig) {
  // Best effort only: everything below is formally async-signal-unsafe,
  // which is acceptable for a last-gasp diagnostic before re-raising.
  if (g_crash_dir[0] != '\0') {
    PostmortemInfo info;
    info.reason = std::string("fatal signal ") + std::to_string(sig) + " (" +
                  strsignal(sig) + ")";
    info.failed_rank = thread_rank();
    info.phase = "signal";
    save_postmortem(g_crash_dir, info);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

JsonValue flight_to_json(const std::vector<FlightRingSnapshot>& rings) {
  JsonValue fr = JsonValue::object();
  fr.set("capacity",
         JsonValue::number(std::uint64_t{FlightRecorder::kCapacity}));
  JsonValue ranks = JsonValue::array();
  for (const FlightRingSnapshot& ring : rings) {
    JsonValue r = JsonValue::object();
    r.set("rank", JsonValue::number(std::int64_t{ring.rank}));
    r.set("recorded", JsonValue::number(ring.recorded));
    r.set("dropped", JsonValue::number(ring.dropped));
    JsonValue events = JsonValue::array();
    for (const FlightRecord& e : ring.events) {
      JsonValue ev = JsonValue::object();
      ev.set("ts_us", JsonValue::number(e.ts_us));
      ev.set("type", JsonValue::string(flight_type_name(e.type)));
      ev.set("name", JsonValue::string(e.text));
      ev.set("seq", JsonValue::number(std::uint64_t{e.seq}));
      if (e.a != 0) ev.set("a", JsonValue::number(e.a));
      if (e.b != 0) ev.set("b", JsonValue::number(e.b));
      if (e.detail != 0)
        ev.set("detail", JsonValue::number(std::uint64_t{e.detail}));
      events.push_back(std::move(ev));
    }
    r.set("events", std::move(events));
    ranks.push_back(std::move(r));
  }
  fr.set("ranks", std::move(ranks));
  return fr;
}

bool save_postmortem(const std::filesystem::path& dir,
                     const PostmortemInfo& info) noexcept {
  try {
    std::lock_guard<std::mutex> lock(dump_mutex());
    JsonValue doc = JsonValue::object();
    doc.set("format", JsonValue::string("spio.postmortem"));
    doc.set("version", JsonValue::number(std::int64_t{1}));
    doc.set("reason", JsonValue::string(info.reason));
    doc.set("failed_rank", JsonValue::number(std::int64_t{info.failed_rank}));
    doc.set("phase", JsonValue::string(info.phase));
    doc.set("job_ranks", JsonValue::number(std::int64_t{info.job_ranks}));
    doc.set("metrics", metrics_to_json(MetricsRegistry::global().snapshot()));
    doc.set("flight_recorder",
            flight_to_json(FlightRecorder::instance().snapshot()));
    for (const auto& [key, section] : info.sections) {
      JsonValue copy = section;
      doc.set(key, std::move(copy));
    }

    const std::filesystem::path path = dir / kPostmortemFile;
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f.good()) return false;
    f << doc.dump(2) << "\n";
    f.flush();
    return f.good();
  } catch (...) {
    return false;
  }
}

bool postmortem_present(const std::filesystem::path& dir) {
  std::error_code ec;
  return std::filesystem::exists(dir / kPostmortemFile, ec);
}

JsonValue load_postmortem(const std::filesystem::path& dir) {
  const std::filesystem::path path = dir / kPostmortemFile;
  std::ifstream f(path, std::ios::binary);
  SPIO_CHECK(f.good(), IoError,
             "cannot open postmortem '" << path.string() << "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  JsonValue doc = JsonValue::parse(ss.str());
  SPIO_CHECK(doc.is_object() && doc.contains("format") &&
                 doc.at("format").is_string() &&
                 doc.at("format").as_string() == "spio.postmortem",
             FormatError,
             "'" << path.string() << "' is not an spio postmortem bundle");
  return doc;
}

std::vector<std::string> validate_postmortem(const JsonValue& doc) {
  std::vector<std::string> problems;
  const auto complain = [&](const std::string& what) {
    problems.push_back(what);
  };
  if (!doc.is_object()) {
    complain("bundle is not a JSON object");
    return problems;
  }
  if (!doc.contains("format") || !doc.at("format").is_string() ||
      doc.at("format").as_string() != "spio.postmortem")
    complain("format is not 'spio.postmortem'");
  if (!doc.contains("version")) complain("missing version");
  if (!doc.contains("reason") || !doc.at("reason").is_string() ||
      doc.at("reason").as_string().empty())
    complain("missing or empty reason");
  if (!doc.contains("failed_rank")) complain("missing failed_rank");
  if (!doc.contains("metrics") || !doc.at("metrics").is_object())
    complain("missing metrics object");

  const JsonValue* fr = doc.find("flight_recorder");
  if (!fr || !fr->is_object()) {
    complain("missing flight_recorder section");
    return problems;
  }
  if (!fr->contains("capacity")) complain("flight_recorder lacks capacity");
  const JsonValue* ranks = fr->find("ranks");
  if (!ranks || !ranks->is_array()) {
    complain("flight_recorder lacks a ranks array");
    return problems;
  }
  for (std::size_t i = 0; i < ranks->size(); ++i) {
    const JsonValue& r = ranks->at(i);
    const std::string where = "flight ring " + std::to_string(i);
    if (!r.is_object() || !r.contains("rank") || !r.contains("recorded") ||
        !r.contains("dropped") || !r.contains("events") ||
        !r.at("events").is_array()) {
      complain(where + " lacks rank/recorded/dropped/events");
      continue;
    }
    double prev_ts = -1;
    const JsonValue& events = r.at("events");
    for (std::size_t j = 0; j < events.size(); ++j) {
      const JsonValue& e = events.at(j);
      if (!e.is_object() || !e.contains("ts_us") || !e.contains("type") ||
          !e.contains("name")) {
        complain(where + " event " + std::to_string(j) +
                 " lacks ts_us/type/name");
        continue;
      }
      const double ts = e.at("ts_us").as_double();
      if (ts < prev_ts)
        complain(where + " event " + std::to_string(j) +
                 " breaks timestamp order");
      prev_ts = ts;
    }
  }
  return problems;
}

void set_crash_dump_dir(const std::filesystem::path& dir) {
  std::lock_guard<std::mutex> lock(g_crash_dir_mu);
  const std::string s = dir.string();
  const std::size_t n = std::min(s.size(), sizeof(g_crash_dir) - 1);
  std::memcpy(g_crash_dir, s.data(), n);
  g_crash_dir[n] = '\0';
}

void install_crash_handler() {
  static const bool once = [] {
    for (const int sig :
         {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT})
      std::signal(sig, crash_signal_handler);
    return true;
  }();
  (void)once;
}

}  // namespace spio::obs
