#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace spio {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, DeterministicSequence) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Xoshiro256, UniformIndexCoversRangeWithoutBias) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t bound = 7;
  std::vector<int> counts(bound, 0);
  constexpr int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(bound)];
  for (std::uint64_t k = 0; k < bound; ++k) {
    EXPECT_NEAR(counts[k], n / static_cast<int>(bound), 600)
        << "bucket " << k;
  }
}

TEST(Xoshiro256, UniformIndexOfOneIsAlwaysZero) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Xoshiro256, NormalHasUnitMoments) {
  Xoshiro256 rng(5);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(StreamSeed, DistinctStreamsGetDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 1000; ++s)
    seeds.insert(stream_seed(123, s));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(StreamSeed, PureFunctionOfInputs) {
  EXPECT_EQ(stream_seed(1, 2), stream_seed(1, 2));
  EXPECT_NE(stream_seed(1, 2), stream_seed(2, 1));
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  Xoshiro256 rng(0);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace spio
