#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace spio {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.stddev();
}

double percentile(std::vector<double> xs, double q) {
  SPIO_EXPECTS(!xs.empty());
  SPIO_EXPECTS(q >= 0.0 && q <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double idx = q / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double rmse(std::span<const double> a, std::span<const double> b) {
  SPIO_EXPECTS(a.size() == b.size());
  SPIO_EXPECTS(!a.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace spio
