#include "core/file_index.hpp"

#include <algorithm>
#include <cmath>

namespace spio {

FileIndex::FileIndex(const DatasetMetadata& meta) {
  SPIO_CHECK(meta.has_bounds, ConfigError,
             "cannot build a spatial file index without bounding boxes");
  file_count_ = static_cast<int>(meta.files.size());

  // The indexed domain covers every file box (files may extend slightly
  // past the nominal domain, e.g. adaptive grids padded around
  // degenerate extents).
  domain_ = meta.domain;
  for (const FileRecord& f : meta.files) domain_.extend(f.bounds);
  if (domain_.is_empty()) {
    // No volume to index (empty dataset); keep one cell for uniformity.
    domain_ = Box3({0, 0, 0}, {1, 1, 1});
  }

  const auto per_axis = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(std::cbrt(static_cast<double>(
                 std::max(file_count_, 1))))));
  dims_ = {per_axis, per_axis, per_axis};
  cells_.assign(static_cast<std::size_t>(dims_.product()), {});

  for (int fi = 0; fi < file_count_; ++fi) {
    Vec3i lo, hi;
    cell_range(meta.files[static_cast<std::size_t>(fi)].bounds, &lo, &hi);
    for (std::int64_t z = lo.z; z <= hi.z; ++z)
      for (std::int64_t y = lo.y; y <= hi.y; ++y)
        for (std::int64_t x = lo.x; x <= hi.x; ++x)
          cells_[static_cast<std::size_t>(x + dims_.x * (y + dims_.y * z))]
              .push_back(fi);
  }
  // Per-file boxes are needed for the exact test at query time; stash a
  // copy so the index does not dangle if the metadata moves.
  boxes_.reserve(static_cast<std::size_t>(file_count_));
  for (const FileRecord& f : meta.files) boxes_.push_back(f.bounds);
}

void FileIndex::cell_range(const Box3& box, Vec3i* lo, Vec3i* hi) const {
  const Vec3d size = domain_.size();
  for (int a = 0; a < 3; ++a) {
    const double rel_lo = (box.lo[a] - domain_.lo[a]) / size[a];
    const double rel_hi = (box.hi[a] - domain_.lo[a]) / size[a];
    (*lo)[a] = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(
            std::floor(rel_lo * static_cast<double>(dims_[a]))),
        0, dims_[a] - 1);
    (*hi)[a] = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(
            std::floor(rel_hi * static_cast<double>(dims_[a]))),
        0, dims_[a] - 1);
  }
}

std::vector<int> FileIndex::query(const Box3& box) const {
  Vec3i lo, hi;
  cell_range(box, &lo, &hi);
  std::vector<int> out;
  for (std::int64_t z = lo.z; z <= hi.z; ++z)
    for (std::int64_t y = lo.y; y <= hi.y; ++y)
      for (std::int64_t x = lo.x; x <= hi.x; ++x)
        for (const std::int32_t fi :
             cells_[static_cast<std::size_t>(x + dims_.x * (y + dims_.y * z))])
          if (boxes_[static_cast<std::size_t>(fi)].overlaps(box))
            out.push_back(fi);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace spio
