#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "core/restart.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

std::set<double> id_set(const ParticleBuffer& buf) {
  const auto id = buf.schema().index_of("id");
  std::set<double> out;
  for (std::size_t i = 0; i < buf.size(); ++i) out.insert(buf.get_f64(i, id));
  return out;
}

class RestartRead : public ::testing::Test {
 protected:
  static constexpr int kWriters = 16;
  static constexpr std::uint64_t kPerRank = 300;
  static constexpr std::uint64_t kTotal = kWriters * kPerRank;

  static void SetUpTestSuite() {
    dir_ = new TempDir("spio-restart");
    const PatchDecomposition decomp(Box3({0, 0, 0}, {2, 2, 2}), {4, 2, 2});
    WriterConfig cfg;
    cfg.dir = dir_->path();
    cfg.factor = {2, 2, 2};
    simmpi::run(kWriters, [&](simmpi::Comm& comm) {
      const auto local = workload::uniform(
          Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
          stream_seed(61, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      write_dataset(comm, decomp, local, cfg);
    });
  }

  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  /// Restart with `nranks` readers; returns per-rank particle counts and
  /// checks the census is exactly the written set.
  static std::vector<std::uint64_t> restart_with(int nranks,
                                                 const Vec3i& grid) {
    const PatchDecomposition decomp(Box3({0, 0, 0}, {2, 2, 2}), grid);
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(nranks));
    std::mutex mu;
    std::set<double> seen;
    simmpi::run(nranks, [&](simmpi::Comm& comm) {
      const ParticleBuffer mine =
          restart_read(comm, decomp, dir_->path());
      // Every particle a rank receives lies in its patch.
      const Box3 patch = decomp.patch(comm.rank());
      for (std::size_t i = 0; i < mine.size(); ++i)
        ASSERT_TRUE(patch.contains_closed(mine.position(i)));
      counts[static_cast<std::size_t>(comm.rank())] = mine.size();
      const auto ids = id_set(mine);
      std::lock_guard lk(mu);
      for (double v : ids)
        ASSERT_TRUE(seen.insert(v).second) << "duplicate particle";
    });
    std::uint64_t total = 0;
    for (auto c : counts) total += c;
    EXPECT_EQ(total, kTotal);
    return counts;
  }

  static TempDir* dir_;
};

TempDir* RestartRead::dir_ = nullptr;

TEST_F(RestartRead, SameDecomposition) {
  restart_with(16, {4, 2, 2});
}

TEST_F(RestartRead, FewerRanks) {
  restart_with(4, {2, 2, 1});
  restart_with(2, {2, 1, 1});
  restart_with(1, {1, 1, 1});
}

TEST_F(RestartRead, MoreRanksThanWriters) {
  restart_with(32, {4, 4, 2});
}

TEST_F(RestartRead, MismatchedGridRejected) {
  const PatchDecomposition decomp(Box3({0, 0, 0}, {2, 2, 2}), {2, 2, 2});
  EXPECT_THROW(
      simmpi::run(4, [&](simmpi::Comm& comm) {
        restart_read(comm, decomp, dir_->path());  // 8 patches, 4 ranks
      }),
      ConfigError);
}

TEST_F(RestartRead, DomainMustContainDataset) {
  const PatchDecomposition decomp(Box3({0, 0, 0}, {1, 1, 1}), {2, 2, 1});
  EXPECT_THROW(
      simmpi::run(4, [&](simmpi::Comm& comm) {
        restart_read(comm, decomp, dir_->path());
      }),
      ConfigError);
}

TEST_F(RestartRead, StatsAccumulate) {
  const PatchDecomposition decomp(Box3({0, 0, 0}, {2, 2, 2}), {1, 1, 1});
  simmpi::run(1, [&](simmpi::Comm& comm) {
    ReadStats rs;
    const auto all = restart_read(comm, decomp, dir_->path(), &rs);
    EXPECT_EQ(all.size(), kTotal);
    EXPECT_GT(rs.files_opened, 0);
    EXPECT_EQ(rs.bytes_read,
              kTotal * Schema::uintah().record_size());
  });
}

}  // namespace
}  // namespace spio
