#include "core/knn.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/query_plan/kd_tree.hpp"

namespace spio {

double distance_to_box(const Vec3d& p, const Box3& b) {
  double acc = 0;
  for (int a = 0; a < 3; ++a) {
    const double d =
        p[a] < b.lo[a] ? b.lo[a] - p[a] : (p[a] > b.hi[a] ? p[a] - b.hi[a] : 0);
    acc += d * d;
  }
  return std::sqrt(acc);
}

KnnResult k_nearest(const Dataset& dataset, const Vec3d& query, int k,
                    ReadStats* stats) {
  SPIO_CHECK(k >= 1, ConfigError, "k must be >= 1");
  const DatasetMetadata& meta = dataset.metadata();
  SPIO_CHECK(meta.has_bounds, ConfigError,
             "k-nearest queries need spatial metadata");

  // Current best k as a max-heap of (distance, file, record index); the
  // records themselves are fetched once the visiting order is final.
  struct Hit {
    double dist;
    int file;
    std::size_t record;
    bool operator<(const Hit& o) const { return dist < o.dist; }
  };
  std::priority_queue<Hit> best;  // largest distance on top

  // Keep the particles of visited files alive until assembly.
  std::vector<std::pair<int, ParticleBuffer>> visited;

  // Visit one file: scan its particles into the best-k heap. Returns
  // false once the search is provably complete — we hold k hits and even
  // the closest unvisited file cannot beat the worst of them.
  const auto visit_file = [&](int file, double min_dist) {
    if (static_cast<int>(best.size()) >= k && min_dist >= best.top().dist)
      return false;
    visited.emplace_back(file, dataset.read_data_file(file, -1, 1, stats));
    const ParticleBuffer& buf = visited.back().second;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      const double d = distance(buf.position(i), query);
      if (static_cast<int>(best.size()) < k) {
        best.push({d, file, i});
      } else if (d < best.top().dist) {
        best.pop();
        best.push({d, file, i});
      }
    }
    return true;
  };

  if (const auto& tree = dataset.spatial_tree(); tree && !tree->empty()) {
    // Best-first descent: the k-d tree hands out files in ascending order
    // of best-possible distance without ranking all F of them up front.
    tree->visit_nearest(query, visit_file);
  } else {
    // No tree (bound-less or empty dataset): rank every file linearly.
    struct Candidate {
      double min_dist;
      int file;
      bool operator>(const Candidate& o) const { return min_dist > o.min_dist; }
    };
    std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>>
        frontier;
    for (int fi = 0; fi < dataset.file_count(); ++fi) {
      frontier.push(
          {distance_to_box(query,
                           meta.files[static_cast<std::size_t>(fi)].bounds),
           fi});
    }
    while (!frontier.empty()) {
      const Candidate c = frontier.top();
      frontier.pop();
      if (!visit_file(c.file, c.min_dist)) break;
    }
  }

  // Drain the heap into ascending order and copy the records out.
  std::vector<Hit> hits;
  hits.reserve(best.size());
  while (!best.empty()) {
    hits.push_back(best.top());
    best.pop();
  }
  std::reverse(hits.begin(), hits.end());

  KnnResult result{ParticleBuffer(meta.schema), {}};
  result.distances.reserve(hits.size());
  for (const Hit& h : hits) {
    for (const auto& [file, buf] : visited) {
      if (file == h.file) {
        result.particles.append_from(buf, h.record);
        break;
      }
    }
    result.distances.push_back(h.dist);
  }
  return result;
}

}  // namespace spio
