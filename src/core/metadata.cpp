#include "core/metadata.hpp"

#include "core/query_plan/kd_tree.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace spio {

namespace {

constexpr std::uint32_t kEndianProbe = 0x01020304;

std::vector<Box3> file_boxes(const std::vector<FileRecord>& files) {
  std::vector<Box3> boxes;
  boxes.reserve(files.size());
  for (const FileRecord& f : files) boxes.push_back(f.bounds);
  return boxes;
}

}  // namespace

void FileRecord::serialize(BinaryWriter& w, bool with_bounds,
                           bool with_ranges) const {
  w.write<std::uint32_t>(partition_id);
  w.write<std::uint32_t>(aggregator_rank);
  w.write<std::uint64_t>(particle_count);
  if (with_bounds) {
    w.write<double>(bounds.lo.x);
    w.write<double>(bounds.lo.y);
    w.write<double>(bounds.lo.z);
    w.write<double>(bounds.hi.x);
    w.write<double>(bounds.hi.y);
    w.write<double>(bounds.hi.z);
  }
  if (with_ranges) {
    for (const FieldRange& r : field_ranges) {
      w.write<double>(r.min);
      w.write<double>(r.max);
    }
  }
}

FileRecord FileRecord::deserialize(BinaryReader& r, bool with_bounds,
                                   bool with_ranges,
                                   std::size_t range_count) {
  FileRecord f;
  f.partition_id = r.read<std::uint32_t>();
  f.aggregator_rank = r.read<std::uint32_t>();
  f.particle_count = r.read<std::uint64_t>();
  if (with_bounds) {
    f.bounds.lo.x = r.read<double>();
    f.bounds.lo.y = r.read<double>();
    f.bounds.lo.z = r.read<double>();
    f.bounds.hi.x = r.read<double>();
    f.bounds.hi.y = r.read<double>();
    f.bounds.hi.z = r.read<double>();
    SPIO_CHECK(!f.bounds.is_empty(), FormatError,
               "file record has an empty bounding box");
  }
  if (with_ranges) {
    f.field_ranges.resize(range_count);
    for (FieldRange& fr : f.field_ranges) {
      fr.min = r.read<double>();
      fr.max = r.read<double>();
      SPIO_CHECK(fr.min <= fr.max, FormatError,
                 "file record has an inverted field range");
    }
  }
  return f;
}

std::vector<std::byte> DatasetMetadata::serialize() const {
  BinaryWriter w;
  w.write<std::uint32_t>(kMagic);
  w.write<std::uint32_t>(kVersion);
  w.write<std::uint32_t>(kEndianProbe);
  schema.serialize(w);
  w.write<double>(domain.lo.x);
  w.write<double>(domain.lo.y);
  w.write<double>(domain.lo.z);
  w.write<double>(domain.hi.x);
  w.write<double>(domain.hi.y);
  w.write<double>(domain.hi.z);
  w.write<std::uint64_t>(lod.P);
  w.write<double>(lod.S);
  w.write<std::uint8_t>(static_cast<std::uint8_t>(heuristic));
  w.write<std::uint8_t>(has_bounds ? 1 : 0);
  w.write<std::uint8_t>(has_field_ranges ? 1 : 0);
  w.write<std::uint8_t>(has_zone_maps ? 1 : 0);
  w.write<std::uint64_t>(total_particles);
  w.write<std::uint32_t>(static_cast<std::uint32_t>(files.size()));
  for (const FileRecord& f : files) {
    SPIO_CHECK(!has_field_ranges || f.field_ranges.size() == range_count(),
               ConfigError,
               "file record carries " << f.field_ranges.size()
                                      << " field ranges, schema needs "
                                      << range_count());
    f.serialize(w, has_bounds, has_field_ranges);
  }
  // The k-d footer is always regenerated from the file boxes rather than
  // taken from `spatial_tree`, so the bytes are a pure function of the
  // records above (and a stale attached tree can never be persisted).
  if (has_bounds && !files.empty())
    BoxKdTree::build(file_boxes(files)).serialize(w);
  return w.take();
}

DatasetMetadata DatasetMetadata::deserialize(std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  SPIO_CHECK(r.read<std::uint32_t>() == kMagic, FormatError,
             "not a spio metadata file (bad magic)");
  const auto version = r.read<std::uint32_t>();
  SPIO_CHECK(version >= kMinVersion && version <= kVersion, FormatError,
             "unsupported metadata version " << version);
  SPIO_CHECK(r.read<std::uint32_t>() == kEndianProbe, FormatError,
             "metadata file endianness does not match this host");

  DatasetMetadata m;
  m.schema = Schema::deserialize(r);
  m.domain.lo.x = r.read<double>();
  m.domain.lo.y = r.read<double>();
  m.domain.lo.z = r.read<double>();
  m.domain.hi.x = r.read<double>();
  m.domain.hi.y = r.read<double>();
  m.domain.hi.z = r.read<double>();
  m.lod.P = r.read<std::uint64_t>();
  m.lod.S = r.read<double>();
  SPIO_CHECK(m.lod.valid(), FormatError,
             "invalid LOD parameters P=" << m.lod.P << " S=" << m.lod.S);
  const auto h = r.read<std::uint8_t>();
  SPIO_CHECK(h <= 2, FormatError, "unknown LOD heuristic tag " << int(h));
  m.heuristic = static_cast<LodHeuristic>(h);
  const auto hb = r.read<std::uint8_t>();
  SPIO_CHECK(hb <= 1, FormatError, "corrupt has_bounds flag");
  m.has_bounds = hb == 1;
  const auto hr = r.read<std::uint8_t>();
  SPIO_CHECK(hr <= 1, FormatError, "corrupt has_field_ranges flag");
  m.has_field_ranges = hr == 1;
  if (version >= 3) {
    const auto hz = r.read<std::uint8_t>();
    SPIO_CHECK(hz <= 1, FormatError, "corrupt has_zone_maps flag");
    m.has_zone_maps = hz == 1;
  }
  m.total_particles = r.read<std::uint64_t>();
  const auto nfiles = r.read<std::uint32_t>();

  std::uint64_t count_sum = 0;
  m.files.reserve(nfiles);
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    m.files.push_back(FileRecord::deserialize(r, m.has_bounds,
                                              m.has_field_ranges,
                                              m.range_count()));
    count_sum += m.files.back().particle_count;
  }
  if (m.has_bounds && !m.files.empty()) {
    if (version >= 3) {
      // Parse + structurally validate the footer against the file boxes.
      m.spatial_tree = std::make_shared<const BoxKdTree>(
          BoxKdTree::deserialize(r, file_boxes(m.files)));
    } else {
      // v2: no footer on disk — rebuild transparently.
      m.spatial_tree = std::make_shared<const BoxKdTree>(
          BoxKdTree::build(file_boxes(m.files)));
    }
  }
  SPIO_CHECK(r.at_end(), FormatError,
             "trailing bytes after metadata payload");
  SPIO_CHECK(count_sum == m.total_particles, FormatError,
             "file particle counts sum to " << count_sum
                                            << " but header claims "
                                            << m.total_particles);
  return m;
}

void DatasetMetadata::save(const std::filesystem::path& dir) const {
  write_file(dir / kFileName, serialize());
}

DatasetMetadata DatasetMetadata::load(const std::filesystem::path& dir) {
  return deserialize(read_file(dir / kFileName));
}

std::vector<int> DatasetMetadata::files_intersecting(const Box3& box) const {
  SPIO_CHECK(has_bounds, ConfigError,
             "dataset was written without spatial metadata; spatial "
             "queries require a full scan (use query_box_scan_all)");
  std::vector<int> out;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].bounds.overlaps(box)) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::size_t DatasetMetadata::range_index(std::size_t field,
                                         std::uint32_t component) const {
  SPIO_EXPECTS(field < schema.field_count());
  SPIO_EXPECTS(component < schema.fields()[field].components);
  std::size_t idx = 0;
  for (std::size_t f = 0; f < field; ++f)
    idx += schema.fields()[f].components;
  return idx + component;
}

std::size_t DatasetMetadata::range_count() const {
  std::size_t n = 0;
  for (const FieldDesc& f : schema.fields()) n += f.components;
  return n;
}

}  // namespace spio
