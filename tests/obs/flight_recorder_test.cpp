/// \file flight_recorder_test.cpp
/// The always-on black box: record/decode round trips, rank attribution,
/// wraparound accounting, the kill switch, and a multi-threaded stress
/// run with concurrent snapshots (the TSan target of the `sanitize`
/// preset's obs pass — the recorder must be data-race-free even while
/// rings wrap under load).

#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace spio {
namespace {

using obs::FlightRecorder;
using obs::FlightRingSnapshot;
using obs::FlightType;

/// Ring snapshot for `rank`, or nullptr when that ring was never touched.
const FlightRingSnapshot* ring_of(
    const std::vector<FlightRingSnapshot>& rings, int rank) {
  for (const FlightRingSnapshot& r : rings)
    if (r.rank == rank) return &r;
  return nullptr;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_thread_rank(-1);
    FlightRecorder::instance().clear();
  }
  void TearDown() override {
    obs::set_thread_rank(-1);
    FlightRecorder::instance().clear();
  }
};

TEST_F(FlightRecorderTest, RecordsRoundTripThroughSnapshot) {
  obs::set_thread_rank(3);
  obs::flight_record(FlightType::kSend, "p2p", 7, 4096, 101);
  obs::flight_record(FlightType::kMark, "checkpoint");

  const auto rings = FlightRecorder::instance().snapshot();
  const FlightRingSnapshot* r = ring_of(rings, 3);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->recorded, 2u);
  EXPECT_EQ(r->dropped, 0u);
  ASSERT_EQ(r->events.size(), 2u);

  const obs::FlightRecord& send = r->events[0];
  EXPECT_EQ(send.type, FlightType::kSend);
  EXPECT_STREQ(send.text, "p2p");
  EXPECT_EQ(send.a, 7u);
  EXPECT_EQ(send.b, 4096u);
  EXPECT_EQ(send.detail, 101);
  EXPECT_EQ(send.rank, 3);

  const obs::FlightRecord& mark = r->events[1];
  EXPECT_EQ(mark.type, FlightType::kMark);
  EXPECT_STREQ(mark.text, "checkpoint");
  EXPECT_GE(mark.ts_us, send.ts_us) << "snapshot must be time-ordered";
}

TEST_F(FlightRecorderTest, TextIsTruncatedNotOverrun) {
  const std::string longname(100, 'x');
  obs::flight_record(FlightType::kMark, longname.c_str());

  const auto rings = FlightRecorder::instance().snapshot();
  const FlightRingSnapshot* r = ring_of(rings, -1);
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->events.size(), 1u);
  EXPECT_EQ(std::strlen(r->events[0].text), 32u);
  EXPECT_EQ(std::string(r->events[0].text), std::string(32, 'x'));
}

TEST_F(FlightRecorderTest, NonRankAndOutOfRangeRanksShareOverflowRing) {
  obs::set_thread_rank(-1);
  obs::flight_record(FlightType::kMark, "from_main");
  obs::set_thread_rank(FlightRecorder::kMaxRank + 100);
  obs::flight_record(FlightType::kMark, "from_huge_rank");

  const auto rings = FlightRecorder::instance().snapshot();
  const FlightRingSnapshot* r = ring_of(rings, -1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->recorded, 2u);
}

TEST_F(FlightRecorderTest, WraparoundKeepsNewestAndCountsDropped) {
  obs::set_thread_rank(5);
  const std::uint64_t total = FlightRecorder::kCapacity + 37;
  for (std::uint64_t i = 0; i < total; ++i)
    obs::flight_record(FlightType::kMark, "wrap", i);

  const auto rings = FlightRecorder::instance().snapshot();
  const FlightRingSnapshot* r = ring_of(rings, 5);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->recorded, total);
  EXPECT_EQ(r->dropped, total - FlightRecorder::kCapacity);
  EXPECT_EQ(r->events.size(), FlightRecorder::kCapacity);
  // The survivors are exactly the newest kCapacity records.
  std::uint64_t min_a = ~0ull, max_a = 0;
  for (const obs::FlightRecord& e : r->events) {
    min_a = std::min(min_a, e.a);
    max_a = std::max(max_a, e.a);
  }
  EXPECT_EQ(min_a, total - FlightRecorder::kCapacity);
  EXPECT_EQ(max_a, total - 1);
}

TEST_F(FlightRecorderTest, KillSwitchDropsRecords) {
  FlightRecorder::instance().set_enabled(false);
  obs::flight_record(FlightType::kMark, "invisible");
  EXPECT_EQ(FlightRecorder::instance().record_count(), 0u);
  FlightRecorder::instance().set_enabled(true);
  obs::flight_record(FlightType::kMark, "visible");
  EXPECT_EQ(FlightRecorder::instance().record_count(), 1u);
}

TEST_F(FlightRecorderTest, ConcurrentWritersAndSnapshotsAreRaceFree) {
  // Enough pushes per thread to wrap each ring several times while a
  // reader thread snapshots continuously. The assertions are loose by
  // design — the point is that TSan observes heavy concurrent wrap +
  // snapshot traffic and stays silent.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 4 * FlightRecorder::kCapacity;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    obs::set_thread_rank(-1);
    while (!stop.load(std::memory_order_relaxed)) {
      const auto rings = FlightRecorder::instance().snapshot();
      for (const FlightRingSnapshot& r : rings)
        ASSERT_LE(r.events.size(), FlightRecorder::kCapacity);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      obs::set_thread_rank(t);
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        obs::flight_record(FlightType::kMark, "stress", i,
                           static_cast<std::uint64_t>(t));
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(FlightRecorder::instance().record_count(),
            std::uint64_t{kThreads} * kPerThread);
  const auto rings = FlightRecorder::instance().snapshot();
  for (int t = 0; t < kThreads; ++t) {
    const FlightRingSnapshot* r = ring_of(rings, t);
    ASSERT_NE(r, nullptr) << "rank " << t;
    EXPECT_EQ(r->recorded, kPerThread);
    EXPECT_EQ(r->dropped, kPerThread - FlightRecorder::kCapacity);
    EXPECT_EQ(r->events.size(), FlightRecorder::kCapacity);
  }
}

}  // namespace
}  // namespace spio
