/// \file micro_pipeline.cpp
/// End-to-end micro-benchmark of the real pipeline on this machine:
/// write (aggregation + LOD + files + metadata) and read (metadata-guided
/// box query) at thread scale, across partition factors. Demonstrates
/// the functional system the models extrapolate from.

#include <benchmark/benchmark.h>

#include <mutex>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

using namespace spio;

namespace {

constexpr int kRanks = 8;
constexpr std::uint64_t kPerRank = 20000;

const PatchDecomposition& decomp() {
  static const PatchDecomposition d(Box3::unit(), {2, 2, 2});
  return d;
}

ParticleBuffer rank_particles(int rank) {
  return workload::uniform(Schema::uintah(), decomp().patch(rank), kPerRank,
                           stream_seed(1, static_cast<std::uint64_t>(rank)),
                           static_cast<std::uint64_t>(rank) * kPerRank);
}

void BM_WriteDataset(benchmark::State& state) {
  const PartitionFactor factor{static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(0))};
  for (auto _ : state) {
    TempDir dir("micro-pipeline");
    WriterConfig cfg;
    cfg.dir = dir.path();
    cfg.factor = factor;
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      write_dataset(comm, decomp(), rank_particles(comm.rank()), cfg);
    });
  }
  state.SetBytesProcessed(state.iterations() * kRanks * kPerRank *
                          static_cast<std::int64_t>(
                              Schema::uintah().record_size()));
  state.SetLabel("factor " + factor.to_string());
}
BENCHMARK(BM_WriteDataset)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_BoxQuery(benchmark::State& state) {
  static TempDir dir("micro-pipeline-read");
  static bool written = false;
  if (!written) {
    WriterConfig cfg;
    cfg.dir = dir.path();
    cfg.factor = {2, 2, 1};
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      write_dataset(comm, decomp(), rank_particles(comm.rank()), cfg);
    });
    written = true;
  }
  const Dataset ds = Dataset::open(dir.path());
  const Box3 q({0.1, 0.1, 0.1}, {0.4, 0.4, 0.9});
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    ReadStats rs;
    const auto out = ds.query_box(q, -1, 1, &rs);
    benchmark::DoNotOptimize(out.bytes().data());
    bytes += rs.bytes_read;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_BoxQuery)->Unit(benchmark::kMillisecond);

void BM_ScanAllQuery(benchmark::State& state) {
  static TempDir dir("micro-pipeline-scan");
  static bool written = false;
  if (!written) {
    WriterConfig cfg;
    cfg.dir = dir.path();
    cfg.factor = {2, 2, 1};
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      write_dataset(comm, decomp(), rank_particles(comm.rank()), cfg);
    });
    written = true;
  }
  const Dataset ds = Dataset::open(dir.path());
  const Box3 q({0.1, 0.1, 0.1}, {0.4, 0.4, 0.9});
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    ReadStats rs;
    const auto out = ds.query_box_scan_all(q, &rs);
    benchmark::DoNotOptimize(out.bytes().data());
    bytes += rs.bytes_read;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ScanAllQuery)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
