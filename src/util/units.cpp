#include "util/units.hpp"

#include <cstdio>

namespace spio {

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (b >= kGiB)
    std::snprintf(buf, sizeof(buf), "%.1f GiB", b / kGiB);
  else if (b >= kMiB)
    std::snprintf(buf, sizeof(buf), "%.1f MiB", b / kMiB);
  else if (b >= kKiB)
    std::snprintf(buf, sizeof(buf), "%.1f KiB", b / kKiB);
  else
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  return buf;
}

double throughput_gbs(std::uint64_t bytes, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) / kGB / seconds;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3)
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  else if (seconds < 1.0)
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  return buf;
}

}  // namespace spio
