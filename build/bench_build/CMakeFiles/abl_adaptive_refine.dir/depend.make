# Empty dependencies file for abl_adaptive_refine.
# This may be replaced when dependencies are built.
