#pragma once

/// \file collective_arena.hpp
/// Shared-memory rendezvous used to implement collectives.
///
/// All ranks of a communicator execute collectives in the same order (the
/// usual SPMD contract), so each collective is a numbered *round*. The
/// arena double-buffers rounds in two slots (even rounds in slot 0, odd in
/// slot 1), which lets a rank enter round r+1 while stragglers are still
/// leaving round r without any global serialization.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "simmpi/message.hpp"

namespace simmpi {

class CollectiveArena {
 public:
  /// \param size Number of ranks in the communicator.
  /// \param abort Shared job-abort flag; waits poll it and throw `Aborted`.
  CollectiveArena(int size, std::shared_ptr<std::atomic<bool>> abort);

  /// Reads the contributions of all ranks once every rank has arrived.
  /// The span of contributions is indexed by rank and valid only inside the
  /// callback.
  using Reader =
      std::function<void(const std::vector<std::vector<std::byte>>&)>;

  /// Execute one collective round. Every rank of the communicator must call
  /// `run` with the same `round` value (its per-rank collective counter),
  /// its own contribution bytes, and a reader invoked once all ranks have
  /// contributed.
  void run(int rank, std::uint64_t round, std::vector<std::byte> contribution,
           const Reader& reader);

 private:
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t round;  // round currently being assembled in this slot
    int arrived = 0;
    int departed = 0;
    std::vector<std::vector<std::byte>> contrib;
  };

  int size_;
  std::shared_ptr<std::atomic<bool>> abort_;
  Slot slots_[2];
};

}  // namespace simmpi
