#include "simmpi/comm.hpp"

#include <algorithm>
#include <chrono>
#include <tuple>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace simmpi {

namespace {

/// Transport metrics (naming scheme: docs/OBSERVABILITY.md). References
/// are resolved once; when observability is off, the call sites skip
/// them entirely behind the single `obs::enabled()` load.
struct TransportMetrics {
  spio::obs::Counter& msg_count;
  spio::obs::Counter& bytes_sent;
  spio::obs::Counter& recv_count;
  spio::obs::Counter& recv_wait_us;
  spio::obs::Counter& collectives;
  spio::obs::Counter& collective_wait_us;
  spio::obs::Histogram& msg_bytes;

  static TransportMetrics& get() {
    auto& reg = spio::obs::MetricsRegistry::global();
    static TransportMetrics m{reg.counter("simmpi.msg_count"),
                              reg.counter("simmpi.bytes_sent"),
                              reg.counter("simmpi.recv_count"),
                              reg.counter("simmpi.recv_wait_us"),
                              reg.counter("simmpi.collectives"),
                              reg.counter("simmpi.collective_wait_us"),
                              reg.histogram("simmpi.msg_bytes")};
    return m;
  }
};

}  // namespace

namespace detail {

CommState::CommState(int sz, std::shared_ptr<std::atomic<bool>> abort_flag)
    : size(sz),
      abort(std::move(abort_flag)),
      mailboxes(static_cast<std::size_t>(sz)),
      arena(sz, abort),
      delayed(static_cast<std::size_t>(sz)),
      p2p_bytes(static_cast<std::size_t>(sz) * static_cast<std::size_t>(sz)),
      p2p_msgs(static_cast<std::size_t>(sz) * static_cast<std::size_t>(sz)) {}

void CommState::interrupt_all() {
  for (auto& mb : mailboxes) mb.interrupt();
  split_cv.notify_all();
}

}  // namespace detail

void Comm::send_bytes(int dst, int tag, std::vector<std::byte> payload) {
  check_rank(dst);
  SPIO_EXPECTS(tag >= 0);
  const std::size_t cell = static_cast<std::size_t>(rank_) *
                               static_cast<std::size_t>(st_->size) +
                           static_cast<std::size_t>(dst);
  // Accounting covers every *attempted* send: a dropped message was still
  // paid for by the sender, matching what a network counter would report.
  st_->p2p_bytes[cell].fetch_add(payload.size(), std::memory_order_relaxed);
  st_->p2p_msgs[cell].fetch_add(1, std::memory_order_relaxed);
  // Always-on black box: the last sends before a failure show up in
  // postmortem bundles (a = destination, b = bytes, detail = tag low
  // byte) even with tracing off.
  spio::obs::flight_record(spio::obs::FlightType::kSend, "p2p",
                           static_cast<std::uint64_t>(dst), payload.size(),
                           static_cast<std::uint8_t>(tag & 0xff));
  if (spio::obs::enabled()) {
    auto& m = TransportMetrics::get();
    m.msg_count.add(1);
    m.bytes_sent.add(payload.size());
    m.msg_bytes.observe(payload.size());
  }

  if (st_->hooks) {
    switch (st_->hooks->on_send(rank_, dst, tag, payload.size())) {
      case SendAction::kDrop:
        return;
      case SendAction::kDelay:
        st_->delayed[static_cast<std::size_t>(rank_)].push_back(
            {dst, Message{rank_, tag, std::move(payload)}});
        return;
      case SendAction::kDuplicate:
        deliver(dst, Message{rank_, tag, payload});
        deliver(dst, Message{rank_, tag, std::move(payload)});
        flush_delayed();
        return;
      case SendAction::kDeliver:
        break;
    }
    deliver(dst, Message{rank_, tag, std::move(payload)});
    // Stashed messages arrive *after* this newer one: the observable
    // reordering a delay fault exists to produce.
    flush_delayed();
    return;
  }
  deliver(dst, Message{rank_, tag, std::move(payload)});
}

void Comm::deliver(int dst, Message&& m) {
  st_->mailboxes[static_cast<std::size_t>(dst)].deliver(std::move(m));
}

void Comm::flush_delayed() {
  auto& stash = st_->delayed[static_cast<std::size_t>(rank_)];
  for (auto& d : stash) deliver(d.dst, std::move(d.msg));
  stash.clear();
}

Message Comm::recv_message(int src, int tag) {
  SPIO_EXPECTS(src == kAnySource || (src >= 0 && src < size()));
  if (spio::obs::enabled()) {
    // Wait-time accounting: everything between entry and delivery is
    // time this rank spent blocked on the transport.
    const double t0 = spio::obs::now_us();
    Message m = st_->mailboxes[static_cast<std::size_t>(rank_)].receive(
        src, tag, *st_->abort);
    auto& tm = TransportMetrics::get();
    tm.recv_count.add(1);
    tm.recv_wait_us.add(
        static_cast<std::uint64_t>(spio::obs::now_us() - t0));
    spio::obs::flight_record(spio::obs::FlightType::kRecv, "p2p",
                             static_cast<std::uint64_t>(m.src),
                             m.payload.size(),
                             static_cast<std::uint8_t>(m.tag & 0xff));
    return m;
  }
  Message m = st_->mailboxes[static_cast<std::size_t>(rank_)].receive(
      src, tag, *st_->abort);
  spio::obs::flight_record(spio::obs::FlightType::kRecv, "p2p",
                           static_cast<std::uint64_t>(m.src),
                           m.payload.size(),
                           static_cast<std::uint8_t>(m.tag & 0xff));
  return m;
}

bool Comm::iprobe(int src, int tag, int* out_src, std::size_t* out_bytes) {
  return st_->mailboxes[static_cast<std::size_t>(rank_)].probe(
      src, tag, out_src, nullptr, out_bytes);
}

void Comm::barrier() {
  collective({}, nullptr);
}

void Comm::collective(std::vector<std::byte> contribution,
                      const CollectiveArena::Reader& reader) {
  // A collective is a delivery horizon for delayed messages: everything
  // stashed must be visible to peers that synchronize with us here.
  if (st_->hooks) flush_delayed();
  if (spio::obs::enabled()) {
    const double t0 = spio::obs::now_us();
    st_->arena.run(rank_, round_++, std::move(contribution), reader);
    auto& tm = TransportMetrics::get();
    tm.collectives.add(1);
    tm.collective_wait_us.add(
        static_cast<std::uint64_t>(spio::obs::now_us() - t0));
    return;
  }
  st_->arena.run(rank_, round_++, std::move(contribution), reader);
}

std::uint64_t Comm::bytes_sent(int src, int dst) const {
  check_rank(src);
  check_rank(dst);
  return st_->p2p_bytes[static_cast<std::size_t>(src) *
                            static_cast<std::size_t>(st_->size) +
                        static_cast<std::size_t>(dst)]
      .load(std::memory_order_relaxed);
}

std::vector<int> Comm::destinations_of(int src) const {
  check_rank(src);
  std::vector<int> out;
  for (int d = 0; d < size(); ++d) {
    const std::size_t cell = static_cast<std::size_t>(src) *
                                 static_cast<std::size_t>(st_->size) +
                             static_cast<std::size_t>(d);
    if (st_->p2p_msgs[cell].load(std::memory_order_relaxed) > 0)
      out.push_back(d);
  }
  return out;
}

Comm Comm::split(int color, int key) {
  SPIO_EXPECTS(color >= 0);

  struct Entry {
    int color;
    int key;
    int rank;
  };
  // Deterministic group construction on every rank from the same gathered
  // table, mirroring MPI_Comm_split semantics.
  const std::uint64_t my_round = round_;  // unique id for this split point
  std::vector<Entry> entries = allgather<Entry>({color, key, rank_});

  std::vector<Entry> group;
  for (const Entry& e : entries)
    if (e.color == color) group.push_back(e);
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
  });

  int new_rank = -1;
  for (std::size_t i = 0; i < group.size(); ++i)
    if (group[i].rank == rank_) new_rank = static_cast<int>(i);
  SPIO_ENSURES(new_rank >= 0);

  const bool leader = (new_rank == 0);
  const auto map_key = std::make_pair(my_round, color);
  std::shared_ptr<detail::CommState> child;
  {
    std::unique_lock lk(st_->split_mu);
    if (leader) {
      auto& entry = st_->split_children[map_key];
      entry.child = std::make_shared<detail::CommState>(
          static_cast<int>(group.size()), st_->abort);
      entry.child->hooks = st_->hooks;  // faults follow sub-communicators
      entry.fetches_left = static_cast<int>(group.size());
      st_->split_cv.notify_all();
    }
    while (true) {
      auto it = st_->split_children.find(map_key);
      if (it != st_->split_children.end()) {
        child = it->second.child;
        if (--it->second.fetches_left == 0) st_->split_children.erase(it);
        break;
      }
      if (st_->abort->load(std::memory_order_relaxed)) throw Aborted();
      st_->split_cv.wait_for(lk, std::chrono::milliseconds(20));
    }
  }
  return Comm(std::move(child), new_rank);
}

}  // namespace simmpi
