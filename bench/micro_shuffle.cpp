/// \file micro_shuffle.cpp
/// §3.4 micro-benchmark: the LOD reorder cost. The paper measures 33 ms
/// (Mira) / 80 ms (Theta) to reshuffle 32K particles; this reports the
/// same operation on this machine across particle counts and heuristics,
/// plus the per-particle binning scan the aligned grid avoids.

#include <benchmark/benchmark.h>

#include "core/aggregation_grid.hpp"
#include "core/lod.hpp"
#include "workload/generators.hpp"

using namespace spio;

namespace {

ParticleBuffer make_particles(std::int64_t n) {
  return workload::uniform(Schema::uintah(), Box3::unit(),
                           static_cast<std::uint64_t>(n), 42);
}

void BM_LodShuffleRandom(benchmark::State& state) {
  const ParticleBuffer base = make_particles(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ParticleBuffer buf(base.schema());
    buf.append_bytes(base.bytes());
    state.ResumeTiming();
    lod_reorder(buf, 7, LodHeuristic::kRandom);
    benchmark::DoNotOptimize(buf.bytes().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LodShuffleRandom)->Arg(1 << 12)->Arg(32768)->Arg(1 << 17)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_LodShuffleStride(benchmark::State& state) {
  const ParticleBuffer base = make_particles(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ParticleBuffer buf(base.schema());
    buf.append_bytes(base.bytes());
    state.ResumeTiming();
    lod_reorder(buf, 7, LodHeuristic::kStride);
    benchmark::DoNotOptimize(buf.bytes().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LodShuffleStride)->Arg(32768)->Arg(1 << 17)
    ->Unit(benchmark::kMillisecond);

/// The per-particle partition classification the aligned fast path skips.
void BM_ParticleBinningScan(benchmark::State& state) {
  const ParticleBuffer buf = make_particles(state.range(0));
  const AggregationGrid grid(Box3::unit(), {4, 4, 4});
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < buf.size(); ++i)
      acc += static_cast<std::uint64_t>(
          grid.partition_of_point(buf.position(i)));
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParticleBinningScan)->Arg(32768)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
