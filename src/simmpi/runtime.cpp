#include "simmpi/runtime.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "obs/obs.hpp"

namespace simmpi {

void run(int nranks, const std::function<void(Comm&)>& rank_main) {
  run(nranks, RunOptions{}, rank_main);
}

void run(int nranks, const RunOptions& options,
         const std::function<void(Comm&)>& rank_main) {
  SPIO_EXPECTS(nranks > 0);

  auto abort = std::make_shared<std::atomic<bool>>(false);
  auto state = std::make_shared<detail::CommState>(nranks, abort);
  state->hooks = options.comm_hooks;

  std::mutex failure_mu;
  std::exception_ptr first_failure;

  auto rank_body = [&](int rank) {
    // Tag this thread for the observability layer: spans and counters
    // recorded anywhere under rank_main attribute to this rank's track.
    const spio::obs::ThreadRankGuard obs_rank(rank);
    Comm comm(state, rank);
    try {
      rank_main(comm);
    } catch (const Aborted&) {
      // Secondary casualty of another rank's failure; nothing to record.
    } catch (...) {
      {
        std::lock_guard lk(failure_mu);
        if (!first_failure) first_failure = std::current_exception();
      }
      abort->store(true, std::memory_order_relaxed);
      state->interrupt_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) threads.emplace_back(rank_body, r);
  for (auto& t : threads) t.join();

  if (first_failure) std::rethrow_exception(first_failure);
}

}  // namespace simmpi
