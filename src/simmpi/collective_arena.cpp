#include "simmpi/collective_arena.hpp"

#include <chrono>

namespace simmpi {

namespace {
constexpr auto kAbortPoll = std::chrono::milliseconds(20);
}

CollectiveArena::CollectiveArena(int size,
                                 std::shared_ptr<std::atomic<bool>> abort)
    : size_(size), abort_(std::move(abort)) {
  for (int s = 0; s < 2; ++s) {
    slots_[s].round = static_cast<std::uint64_t>(s);
    slots_[s].contrib.resize(static_cast<std::size_t>(size_));
  }
}

void CollectiveArena::run(int rank, std::uint64_t round,
                          std::vector<std::byte> contribution,
                          const Reader& reader) {
  Slot& s = slots_[round % 2];
  std::unique_lock lk(s.mu);

  auto wait_until = [&](auto&& pred) {
    while (!pred()) {
      if (abort_->load(std::memory_order_relaxed)) throw Aborted();
      s.cv.wait_for(lk, kAbortPoll);
    }
  };

  // Wait for the slot to be recycled for our round (the occupants of round
  // `round - 2` must all have departed).
  wait_until([&] { return s.round == round; });

  s.contrib[static_cast<std::size_t>(rank)] = std::move(contribution);
  ++s.arrived;
  if (s.arrived == size_) {
    s.cv.notify_all();
  } else {
    wait_until([&] { return s.arrived == size_ && s.round == round; });
  }

  // All contributions are in place; let this rank consume them. Readers run
  // under the slot lock, which serializes them; contributions are small
  // control-plane payloads (counts, bounding boxes), so this is not a
  // bottleneck, and bulk data always moves through point-to-point sends.
  if (reader) reader(s.contrib);

  ++s.departed;
  if (s.departed == size_) {
    s.arrived = 0;
    s.departed = 0;
    for (auto& c : s.contrib) c.clear();
    s.round += 2;
    s.cv.notify_all();
  }
}

}  // namespace simmpi
