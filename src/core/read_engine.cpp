#include "core/read_engine.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "simd/kernels.hpp"
#include "simd/position_mirror.hpp"
#include "simd/simd_level.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace spio {

namespace {

/// Default LRU budget when `SPIO_READ_CACHE` is unset: enough for the
/// working set of a laptop-scale analysis session, small next to the
/// datasets the paper targets.
constexpr std::uint64_t kDefaultCacheBytes = 256ull << 20;

int default_concurrency() {
  if (const char* env = std::getenv("SPIO_READ_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 1;
  return hw > 16 ? 16 : static_cast<int>(hw);
}

std::uint64_t default_cache_budget() {
  if (const char* env = std::getenv("SPIO_READ_CACHE")) {
    std::uint64_t bytes = 0;
    if (read_detail::parse_size_bytes(env, &bytes)) return bytes;
  }
  return kDefaultCacheBytes;
}

int default_cache_shards() {
  if (const char* env = std::getenv("SPIO_CACHE_SHARDS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  return 8;
}

void publish_counter(const char* name, std::uint64_t delta) {
  if (delta == 0 || !obs::stats_enabled()) return;
  obs::MetricsRegistry::global().counter(name).add(delta);
}

/// Windowed disk-fetch latency (leader and bypass reads only — hits and
/// followers are not fetches). Always-on like the service latency
/// histograms: two clock reads per *disk read* is noise.
void observe_fetch(std::chrono::steady_clock::time_point t0) {
  static auto& h = obs::MetricsRegistry::global().windowed("reader.fetch_us");
  h.observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
}

}  // namespace

ReadEngine& ReadEngine::instance() {
  static ReadEngine engine;
  return engine;
}

ReadEngine::ReadEngine()
    : cache_(std::make_unique<ShardedPrefixCache>(default_cache_budget(),
                                                  default_cache_shards())),
      pool_(std::make_unique<ThreadPool>(default_concurrency())) {}

FileSig ReadEngine::probe(const std::filesystem::path& path) const {
  FileSig sig;
  sig.size = file_size_bytes(path);  // throws IoError when absent
  if (cache_enabled()) {
    std::error_code ec;
    const auto t = std::filesystem::last_write_time(path, ec);
    if (!ec) sig.mtime_ns = static_cast<std::int64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            t.time_since_epoch())
            .count());
  }
  return sig;
}

ReadEngine::Fetched ReadEngine::fetch(const std::filesystem::path& path,
                                      std::uint64_t prefix_bytes,
                                      const FileSig& sig,
                                      const MirrorSpec* mirror) {
  if (!cache_->enabled() || prefix_bytes == 0) {
    run_fetch_hook(path, prefix_bytes);
    Fetched f;
    const auto t0 = std::chrono::steady_clock::now();
    f.owned = read_file_range(path, 0, prefix_bytes);
    observe_fetch(t0);
    f.outcome = CacheOutcome::kBypass;
    return f;
  }

  const std::string key =
      path.string() + '\1' + std::to_string(prefix_bytes);
  std::shared_ptr<const PositionMirror> cached_mirror;
  if (std::shared_ptr<const ByteBlock> data =
          cache_->lookup(key, sig, &cached_mirror)) {
    Fetched f;
    f.shared = std::move(data);
    f.mirror = std::move(cached_mirror);
    f.outcome = CacheOutcome::kHit;
    return f;
  }

  // Single flight: the first thread to miss on this key becomes the
  // leader and does the read; concurrent missers wait as followers and
  // share the leader's buffer. Exactly one disk open per cold key, no
  // matter how many queries race on it.
  std::shared_ptr<InFlight> fl;
  bool leader = false;
  {
    std::lock_guard lk(sf_mu_);
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) {
      fl = std::make_shared<InFlight>();
      inflight_.emplace(key, fl);
      leader = true;
      ++sf_leaders_;
    } else {
      fl = it->second;
      ++sf_followers_;
    }
  }

  if (!leader) {
    publish_counter("service.singleflight_follower", 1);
    std::unique_lock lk(fl->mu);
    fl->cv.wait(lk, [&] { return fl->done; });
    if (fl->error) std::rethrow_exception(fl->error);
    Fetched f;
    f.shared = fl->data;
    f.mirror = fl->mirror;
    f.outcome = CacheOutcome::kFollower;
    return f;
  }

  publish_counter("service.singleflight_leader", 1);
  std::shared_ptr<const ByteBlock> data;
  std::shared_ptr<const PositionMirror> built_mirror;
  try {
    run_fetch_hook(path, prefix_bytes);
    // One-pass read into uninitialized storage (no vector zero-fill).
    const auto t0 = std::chrono::steady_clock::now();
    auto block = std::make_shared<ByteBlock>(
        static_cast<std::size_t>(prefix_bytes));
    read_file_range_into(path, 0, {block->data(), block->size()});
    observe_fetch(t0);
    data = std::move(block);
    // Build the SoA mirror once, while the freshly read prefix is still
    // warm — every warm query on this entry then skips the gather. Not
    // worth the memory when dispatch is scalar: the kernels would never
    // read it.
    if (mirror && mirror->record_size > 0 &&
        mirror->position_offset + 3 * sizeof(double) <= mirror->record_size &&
        data->size() % mirror->record_size == 0 &&
        simd::active_level() != simd::Level::kScalar) {
      built_mirror = PositionMirror::build(data->span(), mirror->record_size,
                                           mirror->position_offset);
    }
    cache_->insert(key, data, sig, built_mirror);
  } catch (...) {
    {
      std::lock_guard lk(sf_mu_);
      inflight_.erase(key);
    }
    {
      std::lock_guard lk(fl->mu);
      fl->error = std::current_exception();
      fl->done = true;
    }
    fl->cv.notify_all();
    throw;
  }
  // Unpublish the flight *before* waking the followers: a fetch arriving
  // after this point starts fresh (and will hit the cache).
  {
    std::lock_guard lk(sf_mu_);
    inflight_.erase(key);
  }
  {
    std::lock_guard lk(fl->mu);
    fl->data = data;
    fl->mirror = built_mirror;
    fl->done = true;
  }
  fl->cv.notify_all();
  Fetched f;
  f.shared = std::move(data);
  f.mirror = std::move(built_mirror);
  f.outcome = CacheOutcome::kMiss;
  return f;
}

ThreadPool& ReadEngine::pool() { return *pool_; }

int ReadEngine::concurrency() const { return pool_->concurrency(); }

bool ReadEngine::cache_enabled() const { return cache_->enabled(); }

std::uint64_t ReadEngine::cache_budget() const { return cache_->budget(); }

ReadCacheStats ReadEngine::cache_stats() const {
  ReadCacheStats s = cache_->stats();
  std::lock_guard lk(sf_mu_);
  s.singleflight_leaders = sf_leaders_;
  s.singleflight_followers = sf_followers_;
  return s;
}

int ReadEngine::cache_shards() const { return cache_->shard_count(); }

void ReadEngine::clear_cache() { cache_->clear(); }

void ReadEngine::set_cache_budget(std::uint64_t bytes) {
  cache_->set_budget(bytes);
}

void ReadEngine::reset_cache_stats() {
  cache_->reset_stats();
  std::lock_guard lk(sf_mu_);
  sf_leaders_ = 0;
  sf_followers_ = 0;
}

void ReadEngine::set_concurrency(int threads) {
  pool_ = std::make_unique<ThreadPool>(threads);
}

void ReadEngine::set_cache_shards(int shards) {
  cache_ = std::make_unique<ShardedPrefixCache>(cache_->budget(), shards);
}

void ReadEngine::set_fetch_hook(FetchHook hook) {
  std::lock_guard lk(hook_mu_);
  fetch_hook_ = std::move(hook);
}

void ReadEngine::run_fetch_hook(const std::filesystem::path& path,
                                std::uint64_t prefix_bytes) {
  FetchHook hook;
  {
    std::lock_guard lk(hook_mu_);
    hook = fetch_hook_;
  }
  if (hook) hook(path, prefix_bytes);
}

namespace read_detail {

namespace {
thread_local const DeadlineToken* t_deadline = nullptr;
}  // namespace

const DeadlineToken* current_deadline() { return t_deadline; }

void check_deadline() {
  const DeadlineToken* d = t_deadline;
  if (!d) return;
  if (std::chrono::steady_clock::now() >= d->at)
    throw TimeoutError("query deadline expired");
}

ScopedDeadline::ScopedDeadline(std::chrono::steady_clock::time_point at)
    : token_{at}, prev_(t_deadline) {
  t_deadline =
      at == std::chrono::steady_clock::time_point{} ? nullptr : &token_;
}

ScopedDeadline::ScopedDeadline(const DeadlineToken* inherited)
    : token_{}, prev_(t_deadline) {
  t_deadline = inherited;
}

ScopedDeadline::~ScopedDeadline() { t_deadline = prev_; }

bool parse_size_bytes(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) return false;
  std::uint64_t mult = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': mult = 1ull << 10; break;
      case 'm': case 'M': mult = 1ull << 20; break;
      case 'g': case 'G': mult = 1ull << 30; break;
      default: return false;
    }
    if (end[1] != '\0') return false;
  }
  *out = static_cast<std::uint64_t>(v) * mult;
  return true;
}

namespace {

constexpr std::size_t kNoRun = static_cast<std::size_t>(-1);

/// A ParticleBuffer holding a copy of `bytes` — the reference oracles
/// run the exact retained per-particle loops, which are written against
/// the buffer API.
ParticleBuffer materialize(std::span<const std::byte> bytes,
                           const Schema& schema) {
  ParticleBuffer buf(schema);
  buf.append_bytes(bytes);
  return buf;
}

/// Per-filter state with the component's byte offset and element type
/// hoisted out of the record loop.
struct HoistedRange {
  std::size_t offset = 0;
  bool is_f64 = true;
  double lo = 0;
  double hi = 0;
};

std::vector<HoistedRange> hoist_filters(const Schema& schema,
                                        std::span<const RangeFilter> filters) {
  std::vector<HoistedRange> hoisted;
  hoisted.reserve(filters.size());
  for (const RangeFilter& rf : filters) {
    const FieldDesc& fd = schema.fields()[rf.field];
    HoistedRange h;
    h.is_f64 = fd.type == FieldType::kF64;
    h.offset = schema.offset(rf.field) +
               static_cast<std::size_t>(rf.component) *
                   field_type_size(fd.type);
    h.lo = rf.lo;
    h.hi = rf.hi;
    hoisted.push_back(h);
  }
  return hoisted;
}

inline bool position_in_box(const std::byte* rec, std::size_t pos_off,
                            const Box3& box) {
  double p[3];
  std::memcpy(p, rec + pos_off, sizeof p);
  // Exactly Box3::contains — half-open, NaN excluded.
  return p[0] >= box.lo.x && p[0] < box.hi.x && p[1] >= box.lo.y &&
         p[1] < box.hi.y && p[2] >= box.lo.z && p[2] < box.hi.z;
}

}  // namespace

std::uint64_t filter_box(std::span<const std::byte> bytes,
                         const Schema& schema, const Box3& box,
                         ParticleBuffer& out) {
  const std::size_t rec = schema.record_size();
  SPIO_EXPECTS(rec > 0 && bytes.size() % rec == 0);
  const std::size_t n = bytes.size() / rec;
  const std::size_t pos_off = schema.offset(0);
  const std::byte* base = bytes.data();
  std::uint64_t kept = 0;
  std::size_t run_start = kNoRun;
  // Single pass: a run is copied the moment it closes, so its source
  // bytes are still in L1/L2 from the position test that closed it.
  for (std::size_t i = 0; i < n; ++i) {
    if (position_in_box(base + i * rec, pos_off, box)) {
      if (run_start == kNoRun) run_start = i;
    } else if (run_start != kNoRun) {
      out.append_records(base + run_start * rec, i - run_start);
      kept += i - run_start;
      run_start = kNoRun;
    }
  }
  if (run_start != kNoRun) {
    out.append_records(base + run_start * rec, n - run_start);
    kept += n - run_start;
  }
  return kept;
}

std::uint64_t filter_box_reference(std::span<const std::byte> bytes,
                                   const Schema& schema, const Box3& box,
                                   ParticleBuffer& out) {
  const ParticleBuffer buf = materialize(bytes, schema);
  std::uint64_t kept = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (box.contains(buf.position(i))) {
      out.append_from(buf, i);
      ++kept;
    }
  }
  return kept;
}

std::uint64_t filter_box_ranges(std::span<const std::byte> bytes,
                                const Schema& schema, const Box3& box,
                                std::span<const RangeFilter> filters,
                                ParticleBuffer& out) {
  const std::size_t rec = schema.record_size();
  SPIO_EXPECTS(rec > 0 && bytes.size() % rec == 0);
  const std::size_t n = bytes.size() / rec;
  const std::size_t pos_off = schema.offset(0);
  const std::vector<HoistedRange> hoisted = hoist_filters(schema, filters);
  const std::byte* base = bytes.data();
  std::uint64_t kept = 0;
  std::size_t run_start = kNoRun;
  for (std::size_t i = 0; i < n; ++i) {
    const std::byte* r = base + i * rec;
    bool keep = position_in_box(r, pos_off, box);
    for (std::size_t k = 0; keep && k < hoisted.size(); ++k) {
      const HoistedRange& h = hoisted[k];
      double v;
      if (h.is_f64) {
        std::memcpy(&v, r + h.offset, sizeof(double));
      } else {
        float f;
        std::memcpy(&f, r + h.offset, sizeof(float));
        v = static_cast<double>(f);
      }
      // NaN passes, exactly as in the reference predicate.
      if (v < h.lo || v > h.hi) keep = false;
    }
    if (keep) {
      if (run_start == kNoRun) run_start = i;
    } else if (run_start != kNoRun) {
      out.append_records(base + run_start * rec, i - run_start);
      kept += i - run_start;
      run_start = kNoRun;
    }
  }
  if (run_start != kNoRun) {
    out.append_records(base + run_start * rec, n - run_start);
    kept += n - run_start;
  }
  return kept;
}

std::uint64_t filter_box_ranges_reference(std::span<const std::byte> bytes,
                                          const Schema& schema,
                                          const Box3& box,
                                          std::span<const RangeFilter> filters,
                                          ParticleBuffer& out) {
  const ParticleBuffer buf = materialize(bytes, schema);
  std::uint64_t kept = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (!box.contains(buf.position(i))) continue;
    bool keep = true;
    for (const RangeFilter& rf : filters) {
      const FieldDesc& fd = schema.fields()[rf.field];
      const double v =
          fd.type == FieldType::kF64
              ? buf.get_f64(i, rf.field, rf.component)
              : static_cast<double>(buf.get_f32(i, rf.field, rf.component));
      if (v < rf.lo || v > rf.hi) {
        keep = false;
        break;
      }
    }
    if (keep) {
      out.append_from(buf, i);
      ++kept;
    }
  }
  return kept;
}

void bin_by_owner(std::span<const std::byte> bytes, const Schema& schema,
                  const PatchDecomposition& decomp,
                  std::vector<ParticleBuffer>& outgoing) {
  SPIO_EXPECTS(outgoing.size() ==
               static_cast<std::size_t>(decomp.rank_count()));
  const std::size_t rec = schema.record_size();
  SPIO_EXPECTS(rec > 0 && bytes.size() % rec == 0);
  const std::size_t n = bytes.size() / rec;
  const std::size_t pos_off = schema.offset(0);
  const std::byte* base = bytes.data();

  // Pass 1: one point-location per record, folded into owner-tagged
  // runs; per-owner totals let pass 2 reserve each bin exactly.
  struct OwnerRun {
    std::size_t start;
    std::size_t len;
    int owner;
  };
  std::vector<OwnerRun> runs;
  std::vector<std::size_t> totals(outgoing.size(), 0);
  int cur_owner = -1;
  std::size_t run_start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double p[3];
    std::memcpy(p, base + i * rec + pos_off, sizeof p);
    const int owner = decomp.rank_of(decomp.cell_of({p[0], p[1], p[2]}));
    if (owner != cur_owner) {
      if (cur_owner >= 0 && i > run_start) {
        runs.push_back({run_start, i - run_start, cur_owner});
        totals[static_cast<std::size_t>(cur_owner)] += i - run_start;
      }
      cur_owner = owner;
      run_start = i;
    }
  }
  if (cur_owner >= 0 && n > run_start) {
    runs.push_back({run_start, n - run_start, cur_owner});
    totals[static_cast<std::size_t>(cur_owner)] += n - run_start;
  }

  // Pass 2: single memcpy per run into exactly-sized bins.
  for (std::size_t o = 0; o < outgoing.size(); ++o)
    if (totals[o] > 0) outgoing[o].reserve(outgoing[o].size() + totals[o]);
  for (const OwnerRun& r : runs)
    outgoing[static_cast<std::size_t>(r.owner)].append_records(
        base + r.start * rec, r.len);
}

void bin_by_owner_reference(std::span<const std::byte> bytes,
                            const Schema& schema,
                            const PatchDecomposition& decomp,
                            std::vector<ParticleBuffer>& outgoing) {
  SPIO_EXPECTS(outgoing.size() ==
               static_cast<std::size_t>(decomp.rank_count()));
  const ParticleBuffer buf = materialize(bytes, schema);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const int owner = decomp.rank_of(decomp.cell_of(buf.position(i)));
    outgoing[static_cast<std::size_t>(owner)].append_from(buf, i);
  }
}

namespace {

/// One `kernel.simd_{hits,fallbacks}` tick per kernel dispatch. The
/// counters tell an operator whether warm queries actually ride the
/// SIMD path (a fleet stuck on fallbacks means mirrors aren't being
/// built — cache disabled, cold reads, or `SPIO_SIMD=off`).
void count_dispatch(bool simd) {
  publish_counter(simd ? "kernel.simd_hits" : "kernel.simd_fallbacks", 1);
}

const char* dispatch_span_name(bool simd) {
  if (!simd) return "kernel.scalar";
  return simd::active_level() == simd::Level::kAVX2 ? "kernel.avx2"
                                                    : "kernel.sse2";
}

}  // namespace

std::uint64_t filter_box_dispatch(std::span<const std::byte> bytes,
                                  const Schema& schema, const Box3& box,
                                  const PositionMirror* mirror,
                                  ParticleBuffer& out) {
  if (mirror && simd::active_level() != simd::Level::kScalar) {
    std::uint64_t kept = 0;
    obs::ScopedSpan span(dispatch_span_name(true), "kernel");
    if (simd::filter_box(*mirror, bytes, schema.record_size(), box, out,
                         &kept)) {
      count_dispatch(true);
      return kept;
    }
  }
  obs::ScopedSpan span(dispatch_span_name(false), "kernel");
  count_dispatch(false);
  return filter_box(bytes, schema, box, out);
}

std::uint64_t filter_box_ranges_dispatch(std::span<const std::byte> bytes,
                                         const Schema& schema, const Box3& box,
                                         std::span<const RangeFilter> filters,
                                         const PositionMirror* mirror,
                                         ParticleBuffer& out) {
  if (mirror && simd::active_level() != simd::Level::kScalar) {
    // Hoist offsets/types exactly as the fused kernel does; the SIMD
    // kernel evaluates these per surviving lane from the AoS record.
    const std::vector<HoistedRange> hoisted = hoist_filters(schema, filters);
    std::vector<simd::RangePred> preds;
    preds.reserve(hoisted.size());
    for (const HoistedRange& h : hoisted)
      preds.push_back({h.offset, h.is_f64, h.lo, h.hi});
    std::uint64_t kept = 0;
    obs::ScopedSpan span(dispatch_span_name(true), "kernel");
    if (simd::filter_box_ranges(*mirror, bytes, schema.record_size(), box,
                                preds, out, &kept)) {
      count_dispatch(true);
      return kept;
    }
  }
  obs::ScopedSpan span(dispatch_span_name(false), "kernel");
  count_dispatch(false);
  return filter_box_ranges(bytes, schema, box, filters, out);
}

void bin_by_owner_dispatch(std::span<const std::byte> bytes,
                           const Schema& schema,
                           const PatchDecomposition& decomp,
                           const PositionMirror* mirror,
                           std::vector<ParticleBuffer>& outgoing) {
  if (mirror && simd::active_level() != simd::Level::kScalar) {
    obs::ScopedSpan span(dispatch_span_name(true), "kernel");
    if (simd::bin_by_owner(*mirror, bytes, schema.record_size(), decomp,
                           outgoing)) {
      count_dispatch(true);
      return;
    }
  }
  obs::ScopedSpan span(dispatch_span_name(false), "kernel");
  count_dispatch(false);
  bin_by_owner(bytes, schema, decomp, outgoing);
}

}  // namespace read_detail

}  // namespace spio
