#pragma once

/// \file read_model.hpp
/// Cost model for post-processing reads (paper §5.3-5.4): visualization
/// style strong scaling (Fig. 7) and progressive level-of-detail reads
/// (Fig. 8) on datasets far larger than the functional test scale.

#include <cstdint>

#include "core/lod.hpp"
#include "iosim/machine_profile.hpp"

namespace spio::iosim {

/// How readers locate data.
enum class ReadMode : std::uint8_t {
  /// Spatial metadata available: each reader opens only its own
  /// `files / readers` share and reads exactly its tile.
  kWithMetadata = 0,
  /// No spatial metadata: every reader must open all files and scan all
  /// particles to cherry-pick its region (§4).
  kWithoutMetadata = 1,
};

struct ReadCase {
  std::int64_t files = 8192;
  std::uint64_t total_bytes = (1ull << 31) * 124;  // 2^31 particles x 124 B
  int readers = 64;
  ReadMode mode = ReadMode::kWithMetadata;
};

/// Wall time for the whole parallel read (slowest reader).
double model_read_seconds(const MachineProfile& machine, const ReadCase& c);

struct LodReadCase {
  std::int64_t files = 8192;
  std::uint64_t total_particles = 1ull << 31;
  std::uint64_t record_bytes = 124;
  int readers = 64;
  LodParams lod{32, 2.0};
  int levels = 1;  // read levels [0, levels)
};

/// Wall time to read the first `levels` LOD levels across all files.
double model_lod_read_seconds(const MachineProfile& machine,
                              const LodReadCase& c);

}  // namespace spio::iosim
