#include "baselines/rank_order.hpp"

#include <numeric>

#include "obs/trace.hpp"
#include "util/serialize.hpp"

namespace spio::baselines {

namespace {
constexpr std::uint32_t kManifestMagic = 0x4F4B5253;  // "SRKO"
constexpr const char* kManifestName = "rank_order_manifest.bin";
constexpr int kTagCount = 201;
constexpr int kTagData = 202;

std::string group_file_name(int group) {
  return "Group_" + std::to_string(group) + ".bin";
}
}  // namespace

void rank_order_write(simmpi::Comm& comm, const ParticleBuffer& local,
                      const std::filesystem::path& dir, int group_size) {
  obs::ScopedSpan span("baseline.rank_order.write", "baseline");
  SPIO_CHECK(group_size >= 1, ConfigError, "group size must be >= 1");
  if (comm.rank() == 0) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    SPIO_CHECK(!ec, IoError,
               "cannot create '" << dir.string() << "': " << ec.message());
  }
  comm.barrier();

  const int group = comm.rank() / group_size;
  const int leader = group * group_size;
  const int groups = (comm.size() + group_size - 1) / group_size;

  comm.send_value<std::uint64_t>(leader, kTagCount, local.size());
  if (!local.empty()) {
    comm.send_bytes(leader, kTagData,
                    std::vector<std::byte>(local.bytes().begin(),
                                           local.bytes().end()));
  }

  std::uint64_t group_count = 0;
  if (comm.rank() == leader) {
    const int members =
        std::min(group_size, comm.size() - leader);
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(members));
    for (int m = 0; m < members; ++m)
      counts[static_cast<std::size_t>(m)] =
          comm.recv_value<std::uint64_t>(leader + m, kTagCount);
    ParticleBuffer agg(local.schema());
    for (int m = 0; m < members; ++m) {
      if (counts[static_cast<std::size_t>(m)] == 0) continue;
      simmpi::Message msg = comm.recv_message(leader + m, kTagData);
      agg.append_bytes(msg.payload);
    }
    group_count = agg.size();
    write_file(dir / group_file_name(group), agg.bytes());
  }

  const auto gathered = comm.gather<std::uint64_t>(
      comm.rank() == leader ? group_count : 0, 0);
  if (comm.rank() == 0) {
    std::vector<std::uint64_t> per_group(static_cast<std::size_t>(groups));
    for (int g = 0; g < groups; ++g)
      per_group[static_cast<std::size_t>(g)] =
          gathered[static_cast<std::size_t>(g * group_size)];
    BinaryWriter w;
    w.write<std::uint32_t>(kManifestMagic);
    local.schema().serialize(w);
    w.write_vector(per_group);
    write_file(dir / kManifestName, w.bytes());
  }
  comm.barrier();
}

RankOrderDataset RankOrderDataset::open(const std::filesystem::path& dir) {
  const auto bytes = read_file(dir / kManifestName);
  BinaryReader r(bytes);
  SPIO_CHECK(r.read<std::uint32_t>() == kManifestMagic, FormatError,
             "not a rank-order manifest");
  Schema schema = Schema::deserialize(r);
  auto counts = r.read_vector<std::uint64_t>();
  SPIO_CHECK(r.at_end(), FormatError, "trailing bytes in manifest");
  return RankOrderDataset(dir, std::move(schema), std::move(counts));
}

std::uint64_t RankOrderDataset::total_particles() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

ParticleBuffer RankOrderDataset::read_group_file(int group,
                                                 ReadStats* stats) const {
  SPIO_EXPECTS(group >= 0 && group < file_count());
  const auto path = dir_ / group_file_name(group);
  const std::uint64_t expect =
      counts_[static_cast<std::size_t>(group)] * schema_.record_size();
  SPIO_CHECK(file_size_bytes(path) == expect, FormatError,
             "group file " << group << " truncated");
  ParticleBuffer buf(schema_);
  buf.adopt_bytes(read_file(path));
  if (stats) {
    stats->files_opened += 1;
    stats->bytes_read += expect;
    stats->particles_scanned += buf.size();
  }
  return buf;
}

ParticleBuffer RankOrderDataset::query_box(const Box3& box,
                                           ReadStats* stats) const {
  obs::ScopedSpan span("baseline.rank_order.query_box", "baseline");
  ParticleBuffer out(schema_);
  for (int g = 0; g < file_count(); ++g) {
    const ParticleBuffer buf = read_group_file(g, stats);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      if (box.contains(buf.position(i))) {
        out.append_from(buf, i);
        if (stats) stats->particles_returned += 1;
      }
    }
  }
  return out;
}

}  // namespace spio::baselines
