/// \file profile_overhead_test.cpp
/// Perf floor (ctest label `perf`) for the spatial access profiler's
/// always-on tier: per-file attribution rides every fetch of the read
/// path, so it must cost a handful of relaxed atomic RMWs — bounded
/// both at the call site (absolute nanoseconds) and end to end (a
/// warm readpath with the profiler on must stay within 3% of the
/// kill-switched run, the budget docs/OBSERVABILITY.md promises).

#include <gtest/gtest.h>

#include <chrono>
#include <functional>

#include "core/read_engine.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "obs/access_profile.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

TEST(ProfileOverhead, RecordFetchIsNanosecondCheap) {
  auto& prof = obs::AccessProfiler::instance();
  // A real slot, so the measurement covers the attribution path and not
  // just the unattributed bump.
  const int base = prof.register_dataset(
      "perf-probe", Box3::unit(), 48, true,
      {{"probe.bin", Box3::unit(), 1000}});
  ASSERT_GE(base, 0);
  prof.reset_counters();

  constexpr int kIters = 1000000;
  double best = 1e300;
  for (int r = 0; r < 3; ++r)
    best = std::min(best, seconds_of([&] {
             for (int i = 0; i < kIters; ++i)
               prof.record_fetch(base, 0, 4096, obs::AccessOutcome::kHit,
                                 false, 3);
           }));
  const double ns = best / kIters * 1e9;
  EXPECT_LE(ns, 300.0)
      << "an always-on record_fetch costs " << ns
      << " ns; it should be a clock read plus relaxed adds";

  // The kill switch must cut that to a single relaxed load.
  prof.set_enabled(false);
  best = 1e300;
  for (int r = 0; r < 3; ++r)
    best = std::min(best, seconds_of([&] {
             for (int i = 0; i < kIters; ++i)
               prof.record_fetch(base, 0, 4096, obs::AccessOutcome::kHit,
                                 false, 3);
           }));
  prof.set_enabled(true);
  const double off_ns = best / kIters * 1e9;
  EXPECT_LE(off_ns, 30.0) << "the kill-switched record_fetch costs "
                          << off_ns << " ns; work leaked ahead of the gate";
  prof.reset_counters();
}

/// The end-to-end 3% bound. Warm engine queries (cache-resident, the
/// highest fetch rate per unit work the read path can sustain) run
/// interleaved profiler-on/profiler-off so I/O and scheduler weather
/// moves both sides; best-of keeps the comparison on clean samples.
TEST(ProfileOverhead, AlwaysOnTierStaysWithinThreePercentOfKillSwitchedRun) {
  TempDir dir("spio-profperf");
  constexpr int kRanks = 8;
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), kRanks);
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {1, 1, 1};
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), 2000,
        stream_seed(91, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * 2000);
    write_dataset(comm, decomp, local, cfg);
  });

  ReadEngine& eng = ReadEngine::instance();
  const std::uint64_t prev_budget = eng.cache_budget();
  const int prev_threads = eng.concurrency();
  eng.set_cache_budget(256ull << 20);
  eng.set_concurrency(4);
  eng.clear_cache();

  const Dataset ds = Dataset::open(dir.path());
  const Box3 box({0.1, 0.1, 0.1}, {0.9, 0.9, 0.9});
  ds.query_box(box);  // prime the cache: both sides measure warm queries

  auto& prof = obs::AccessProfiler::instance();
  constexpr int kQueriesPerSample = 50;
  const auto sample = [&] {
    return seconds_of([&] {
      for (int i = 0; i < kQueriesPerSample; ++i) ds.query_box(box);
    });
  };

  double best_on = 1e300, best_off = 1e300;
  for (int r = 0; r < 11; ++r) {
    prof.set_enabled(true);
    best_on = std::min(best_on, sample());
    prof.set_enabled(false);
    best_off = std::min(best_off, sample());
  }
  prof.set_enabled(true);
  eng.set_cache_budget(prev_budget);
  eng.set_concurrency(prev_threads);

  // ≤3% relative plus 2ms absolute slack: a sample is ~15ms of warm
  // queries, so scheduler jitter alone swings a couple percent at this
  // scale (same shape as the telemetry-exporter floor). The profiler's
  // true cost — a dozen relaxed adds and one clock read per file — sits
  // far under the relative bound; the gate trips if the always-on tier
  // ever grows a lock, an allocation, or a per-record branch.
  EXPECT_LE(best_on, best_off * 1.03 + 0.002)
      << "always-on profiling costs " << (best_on / best_off - 1.0) * 100
      << "% of warm readpath throughput; the budget is 3%";
}

}  // namespace
}  // namespace spio
