#pragma once

/// \file serialize.hpp
/// Bounds-checked binary (de)serialization used by the metadata and data
/// file formats and by the message-passing layer's byte payloads.
///
/// The on-disk format is little-endian; this implementation targets
/// little-endian hosts (checked at startup in the file readers) which
/// covers every platform the paper's systems run on (BG/Q runs PowerPC in
/// little-endian-compatible I/O via explicit swaps in the original code;
/// our reproduction simply pins little-endian).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace spio {

/// Appends plain values to a growing byte buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  /// Append the raw object representation of a trivially-copyable value.
  template <typename T>
  void write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  /// Append a contiguous range of trivially-copyable values (no length
  /// prefix; pair with `write_span` on the reader side or use
  /// `write_vector`).
  template <typename T>
  void write_span(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::byte*>(values.data());
    buf_.insert(buf_.end(), p, p + values.size_bytes());
  }

  /// Append a `u64` length prefix followed by the elements.
  template <typename T>
  void write_vector(const std::vector<T>& values) {
    write<std::uint64_t>(values.size());
    write_span<T>(values);
  }

  /// Append a `u64` length prefix followed by the characters.
  void write_string(const std::string& s) {
    write<std::uint64_t>(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  void write_bytes(std::span<const std::byte> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  const std::vector<std::byte>& bytes() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Reads plain values from a byte span with bounds checking; a truncated
/// buffer raises `FormatError` rather than reading out of bounds.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// Read `count` elements into a vector (no length prefix).
  template <typename T>
  std::vector<T> read_span(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    require(count * sizeof(T));
    std::vector<T> out(count);
    std::memcpy(out.data(), bytes_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return out;
  }

  /// Read a `u64` length prefix followed by the elements.
  template <typename T>
  std::vector<T> read_vector() {
    const auto n = read<std::uint64_t>();
    SPIO_CHECK(n * sizeof(T) <= remaining(), FormatError,
               "length prefix " << n << " exceeds remaining payload");
    return read_span<T>(static_cast<std::size_t>(n));
  }

  std::string read_string() {
    const auto n = read<std::uint64_t>();
    SPIO_CHECK(n <= remaining(), FormatError,
               "string length " << n << " exceeds remaining payload");
    std::string s(n, '\0');
    std::memcpy(s.data(), bytes_.data() + pos_, n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool at_end() const { return pos_ == bytes_.size(); }

 private:
  void require(std::size_t n) const {
    SPIO_CHECK(n <= remaining(), FormatError,
               "truncated payload: need " << n << " bytes, have "
                                          << remaining());
  }

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

/// Write `bytes` to `path`, replacing any existing file. Throws `IoError`.
void write_file(const std::filesystem::path& path,
                std::span<const std::byte> bytes);

/// Append `bytes` to `path`, creating it if needed. Throws `IoError`.
void append_file(const std::filesystem::path& path,
                 std::span<const std::byte> bytes);

/// Read the whole file. Throws `IoError` if it cannot be opened.
std::vector<std::byte> read_file(const std::filesystem::path& path);

/// Read `[offset, offset + length)` from the file. Throws `IoError` on open
/// failure and `FormatError` if the file is shorter than requested.
std::vector<std::byte> read_file_range(const std::filesystem::path& path,
                                       std::uint64_t offset,
                                       std::uint64_t length);

/// Read `[offset, offset + out.size())` into caller-provided storage —
/// the allocation-free twin of `read_file_range` for callers that manage
/// their own (possibly uninitialized) buffers. Same error behaviour.
void read_file_range_into(const std::filesystem::path& path,
                          std::uint64_t offset, std::span<std::byte> out);

/// Size of the file in bytes. Throws `IoError` if it does not exist.
std::uint64_t file_size_bytes(const std::filesystem::path& path);

}  // namespace spio
