# Empty compiler generated dependencies file for spio_simmpi.
# This may be replaced when dependencies are built.
