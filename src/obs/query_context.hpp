#pragma once

/// \file query_context.hpp
/// Per-query request IDs (docs/OBSERVABILITY.md "Live telemetry").
///
/// The query service assigns every admitted query a process-unique,
/// monotonic ID (`next_query_id`) and installs it thread-locally
/// (`ScopedQueryId`) for the duration of the query's execution. Code
/// that hops threads — the read engine's pool workers — captures
/// `current_query_id()` at submit time and re-installs it on the worker,
/// exactly like the cooperative-deadline token it rides along with.
///
/// Every observability surface then stamps the active ID automatically:
///   - trace spans carry `args:{"qid":N}` in the Chrome trace,
///   - `SPIO_LOG` lines append ` qid=N`,
///   - flight-recorder span/log records carry N in their `a` word,
/// so one slow query is greppable end-to-end across service admission,
/// per-file fetches, and kernel dispatches — even when those ran on
/// different pool threads.
///
/// Cost model: reading the current ID is one thread-local load; sites
/// with no active query (ID 0) emit nothing extra.

#include <cstdint>

namespace spio::obs {

/// Allocate the next process-unique query ID (monotonic, starts at 1;
/// never returns 0 — 0 means "no active query").
std::uint64_t next_query_id();

/// The calling thread's active query ID (0 = none).
std::uint64_t current_query_id();

/// RAII install/restore of the thread's query ID. Installing 0 clears
/// any inherited ID (restored on destruction either way).
class ScopedQueryId {
 public:
  explicit ScopedQueryId(std::uint64_t id);
  ~ScopedQueryId();

  ScopedQueryId(const ScopedQueryId&) = delete;
  ScopedQueryId& operator=(const ScopedQueryId&) = delete;

 private:
  std::uint64_t prev_;
};

}  // namespace spio::obs
