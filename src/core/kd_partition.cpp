#include "core/kd_partition.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace spio {

namespace {

/// Estimated number of particles inside `box`, assuming each rank's
/// particles are uniformly distributed within its extent.
double load_in(const Box3& box, const std::vector<RankExtent>& extents) {
  double load = 0;
  for (const RankExtent& e : extents) {
    if (e.particle_count == 0) continue;
    const Box3 overlap = Box3::intersection(box, e.bounds);
    if (overlap.is_empty()) continue;
    const double vol = e.bounds.volume();
    const double frac = vol > 0 ? overlap.volume() / vol : 1.0;
    load += frac * static_cast<double>(e.particle_count);
  }
  return load;
}

/// Degenerate (zero-volume) extents would either vanish from or be
/// double-counted by the volume-fraction estimate; inflate them to a tiny
/// box around their location so each contributes its mass exactly once
/// (possibly split across adjacent leaves, which is fine for an
/// estimate).
std::vector<RankExtent> inflate_degenerate(const Box3& region,
                                           std::vector<RankExtent> extents) {
  for (RankExtent& e : extents) {
    if (e.particle_count == 0) continue;
    for (int a = 0; a < 3; ++a) {
      if (e.bounds.hi[a] - e.bounds.lo[a] <= 0) {
        const double eps = 1e-9 * (region.hi[a] - region.lo[a]) +
                           std::max(1e-300, 1e-12 * std::abs(e.bounds.lo[a]));
        e.bounds.lo[a] -= eps;
        e.bounds.hi[a] += eps;
      }
    }
  }
  return extents;
}

/// Split position on `axis` that best balances the load of the two
/// halves, searched over a fixed set of candidate planes.
double balanced_split(const Box3& box, int axis,
                      const std::vector<RankExtent>& extents) {
  constexpr int kCandidates = 15;
  double best_pos = (box.lo[axis] + box.hi[axis]) / 2;
  double best_diff = std::numeric_limits<double>::max();
  for (int i = 1; i <= kCandidates; ++i) {
    const double t = static_cast<double>(i) / (kCandidates + 1);
    const double pos = box.lo[axis] + t * (box.hi[axis] - box.lo[axis]);
    Box3 left = box, right = box;
    left.hi[axis] = pos;
    right.lo[axis] = pos;
    const double diff =
        std::abs(load_in(left, extents) - load_in(right, extents));
    if (diff < best_diff) {
      best_diff = diff;
      best_pos = pos;
    }
  }
  return best_pos;
}

}  // namespace

KdPartitioning KdPartitioning::build(const Box3& region,
                                     const std::vector<RankExtent>& extents,
                                     int target_partitions) {
  SPIO_CHECK(!region.is_empty(), ConfigError,
             "kd partitioning needs a non-empty region");
  SPIO_CHECK(target_partitions >= 1, ConfigError,
             "kd partitioning needs >= 1 target partitions");

  const std::vector<RankExtent> load_extents =
      inflate_degenerate(region, extents);

  KdPartitioning kd;
  kd.region_ = region;
  kd.nodes_.push_back(Node{});
  kd.nodes_[0].leaf = 0;
  kd.leaves_.push_back(Leaf{region, load_in(region, load_extents), 0});

  while (static_cast<int>(kd.leaves_.size()) < target_partitions) {
    // Pick the heaviest splittable leaf.
    int victim = -1;
    double heaviest = -1;
    for (std::size_t i = 0; i < kd.leaves_.size(); ++i) {
      const Leaf& leaf = kd.leaves_[i];
      const double min_extent = leaf.box.size().min_component();
      if (min_extent <= 0) continue;
      if (leaf.load > heaviest) {
        heaviest = leaf.load;
        victim = static_cast<int>(i);
      }
    }
    if (victim < 0) break;  // nothing splittable left

    Leaf& leaf = kd.leaves_[static_cast<std::size_t>(victim)];
    const int axis = leaf.box.size().max_axis();
    const double pos = balanced_split(leaf.box, axis, load_extents);

    Box3 left_box = leaf.box, right_box = leaf.box;
    left_box.hi[axis] = pos;
    right_box.lo[axis] = pos;

    // The victim's node becomes interior; its leaf slot is reused for the
    // left child and a new leaf is appended for the right child (leaf
    // indices of other partitions stay stable).
    const int left_node = static_cast<int>(kd.nodes_.size());
    kd.nodes_.push_back(Node{});
    const int right_node = static_cast<int>(kd.nodes_.size());
    kd.nodes_.push_back(Node{});

    Node& parent = kd.nodes_[static_cast<std::size_t>(leaf.node)];
    parent.axis = axis;
    parent.pos = pos;
    parent.left = left_node;
    parent.right = right_node;
    parent.leaf = -1;

    kd.nodes_[static_cast<std::size_t>(left_node)].leaf = victim;
    const int right_leaf = static_cast<int>(kd.leaves_.size());
    kd.nodes_[static_cast<std::size_t>(right_node)].leaf = right_leaf;

    leaf.box = left_box;
    leaf.load = load_in(left_box, load_extents);
    leaf.node = left_node;
    kd.leaves_.push_back(
        Leaf{right_box, load_in(right_box, load_extents), right_node});
  }
  return kd;
}

int KdPartitioning::partition_of_point(const Vec3d& p) const {
  // Clamp into the region so outside points land in a boundary leaf.
  Vec3d q = Vec3d::min(Vec3d::max(p, region_.lo), region_.hi);
  int node = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.axis < 0) return n.leaf;
    node = q[n.axis] < n.pos ? n.left : n.right;
  }
}

Box3 KdPartitioning::partition_box(int idx) const {
  SPIO_EXPECTS(idx >= 0 && idx < partition_count());
  return leaves_[static_cast<std::size_t>(idx)].box;
}

double KdPartitioning::leaf_load(int idx) const {
  SPIO_EXPECTS(idx >= 0 && idx < partition_count());
  return leaves_[static_cast<std::size_t>(idx)].load;
}

}  // namespace spio
