# Empty compiler generated dependencies file for spio_convert.
# This may be replaced when dependencies are built.
