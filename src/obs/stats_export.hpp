#pragma once

/// \file stats_export.hpp
/// Background telemetry exporter: the live-operations counterpart of the
/// post-hoc trace/postmortem artifacts (docs/OBSERVABILITY.md "Live
/// telemetry").
///
/// `SPIO_STATS=<interval_ms>:<path>` starts one background thread that
/// every `interval_ms` snapshots the metrics registry — counters, gauges,
/// and the windowed latency histograms — derives operator-facing rates
/// (QPS, cache hit-rate, coalesce rate, single-flight follower share,
/// SLO violations), and appends one compact JSON object per tick to
/// `<path>` (conventionally `stats.spio.jsonl`). Each line is written
/// with a single `fwrite` and flushed, so a concurrent tail — `spio_top`
/// — never sees a truncated record, and a crash loses at most the
/// in-progress tick. `spio_trace --check` validates the stream.
///
/// While the exporter runs, `obs::telemetry_running()` is true, which
/// flips the `stats_enabled()` gate at counter-publication sites: the
/// stats stream is populated without turning on tracing. After each
/// sample the exporter rotates every windowed histogram's epoch and
/// resets the `service.queue_depth_max` watermark, so quantiles and the
/// high-water gauge describe the last few windows, not all history.
///
/// `stop()` (idempotent; also registered via `atexit`) emits one final
/// sample marked `"final": true`, joins the thread, and closes the file.
///
/// Line schema (`"format": "spio.stats"`, `"version": 1`):
///   seq          monotonic sample index (0-based)
///   ts_us        obs::now_us() at sample time
///   interval_ms  configured tick; the qps denominator is the *actual*
///                elapsed time between samples
///   final        true only on the shutdown sample
///   derived      {qps, queue_depth, queue_depth_max, cache_hit_rate,
///                 coalesce_rate, singleflight_follower_share,
///                 slo_ms, slo_violations, slo_violations_total,
///                 read_amplification}  — read_amplification is the
///                *windowed* disk-bytes-per-returned-byte of this tick
///                (delta reader.bytes_read / delta reader.bytes_returned;
///                the cumulative figure stays in the
///                `reader.read_amplification` gauge)
///   hot_files    top-5 files by bytes scanned this tick, from the
///                spatial access profiler (access_profile.hpp):
///                [{file, dataset, bytes, accesses}]
///   windows      per windowed histogram: {count, mean, p50, p95, p99}
///                over the merged window, plus cumulative total_count
///   counters     every registry counter (cumulative values)
///   gauges       every registry gauge

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

#include <condition_variable>
#include <mutex>
#include <thread>

namespace spio::obs {

/// The per-query latency budget from `SPIO_SLO_MS`, in microseconds
/// (0 = unset). Read once per process; the query service counts
/// `service.slo_violations` against it.
std::uint64_t slo_budget_us();

class TelemetryExporter {
 public:
  /// Process-wide exporter (never destroyed; `stop()` is the shutdown).
  static TelemetryExporter& instance();

  /// Parse an `SPIO_STATS` spec `<interval_ms>:<path>`. Returns false
  /// (leaving outputs untouched) on a malformed spec: missing colon,
  /// non-numeric or non-positive interval, empty path.
  static bool parse_spec(std::string_view spec,
                         std::chrono::milliseconds& interval,
                         std::string& path);

  /// Start sampling every `interval` into `path` (truncates any existing
  /// file). Returns false if already running or the file cannot be
  /// opened. Registers an atexit stop on first successful start.
  bool start(std::chrono::milliseconds interval, std::string path);

  /// Emit the final sample, join the thread, close the file. Idempotent
  /// and safe to call when never started.
  void stop();

  bool running() const { return telemetry_running(); }
  const std::string& path() const { return path_; }

  /// Apply `SPIO_STATS` from the environment (no-op when unset or
  /// malformed, or when already running).
  void init_from_env();

 private:
  TelemetryExporter() = default;

  void run_loop();
  void emit_sample(bool final_sample);

  std::mutex mu_;               // guards start/stop transitions + cv
  std::condition_variable cv_;  // wakes the sampler for shutdown
  bool stop_requested_ = false;
  std::thread thread_;
  std::FILE* file_ = nullptr;
  std::string path_;
  std::chrono::milliseconds interval_{0};

  // Sampler-thread state (no locking needed once running).
  std::uint64_t seq_ = 0;
  double last_ts_us_ = 0;
  MetricsRegistry::Snapshot prev_;
  /// Previous tick's per-file (bytes_scanned, accesses) from the access
  /// profiler, keyed "<dataset>/<file>", for the hot_files deltas.
  std::unordered_map<std::string, std::pair<std::uint64_t, std::uint64_t>>
      prev_hot_;
};

}  // namespace spio::obs
