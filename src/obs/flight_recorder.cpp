#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

namespace spio::obs {

namespace {

/// Pack the fixed fields into word 0:
///   bits  0..7   type
///   bits  8..15  detail (log level / tag low byte / fault kind)
///   bits 16..31  rank (int16 bit pattern)
///   bits 32..63  sequence number (low 32 bits of the cursor)
std::uint64_t pack_head(FlightType type, std::uint8_t detail,
                        std::int16_t rank, std::uint32_t seq) {
  return (std::uint64_t{seq} << 32) |
         (std::uint64_t{static_cast<std::uint16_t>(rank)} << 16) |
         (std::uint64_t{detail} << 8) | std::uint64_t{static_cast<std::uint8_t>(type)};
}

/// SPIO_FLIGHT=off|0 disables the recorder for the whole process (an
/// escape hatch; the recorder is meant to be always on).
const bool g_flight_env_init = [] {
  const char* v = std::getenv("SPIO_FLIGHT");
  if (v && (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0))
    FlightRecorder::instance().set_enabled(false);
  return true;
}();

}  // namespace

const char* flight_type_name(FlightType t) {
  switch (t) {
    case FlightType::kSpanBegin: return "span_begin";
    case FlightType::kSpanEnd: return "span_end";
    case FlightType::kLog: return "log";
    case FlightType::kSend: return "send";
    case FlightType::kRecv: return "recv";
    case FlightType::kFault: return "fault";
    case FlightType::kPhase: return "phase";
    case FlightType::kMark: return "mark";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

FlightRecorder::Ring& FlightRecorder::ring_for_slot(std::size_t slot) {
  Ring* r = rings_[slot].load(std::memory_order_acquire);
  if (r) return *r;
  std::lock_guard<std::mutex> lock(alloc_mu_);
  r = rings_[slot].load(std::memory_order_relaxed);
  if (!r) {
    owned_.push_back(std::make_unique<Ring>());
    r = owned_.back().get();
    rings_[slot].store(r, std::memory_order_release);
  }
  return *r;
}

void FlightRecorder::push(FlightType type, const char* text, std::uint64_t a,
                          std::uint64_t b, std::uint8_t detail) {
  (void)g_flight_env_init;
  const int rank = thread_rank();
  const std::size_t slot = (rank < 0 || rank > kMaxRank)
                               ? 0
                               : static_cast<std::size_t>(rank) + 1;
  Ring& ring = ring_for_slot(slot);
  const std::uint64_t i = ring.cursor.fetch_add(1, std::memory_order_relaxed);
  std::atomic<std::uint64_t>* w =
      &ring.words[(i % kCapacity) * kWordsPerRecord];

  const std::int16_t r16 = static_cast<std::int16_t>(
      rank < -1 ? -1 : (rank > kMaxRank ? kMaxRank : rank));
  w[0].store(pack_head(type, detail, r16, static_cast<std::uint32_t>(i)),
             std::memory_order_relaxed);
  w[1].store(std::bit_cast<std::uint64_t>(now_us()),
             std::memory_order_relaxed);
  w[2].store(a, std::memory_order_relaxed);
  w[3].store(b, std::memory_order_relaxed);

  std::uint64_t tw[4] = {0, 0, 0, 0};
  if (text) {
    for (std::size_t k = 0; k < 32 && text[k] != '\0'; ++k)
      tw[k / 8] |= std::uint64_t{static_cast<unsigned char>(text[k])}
                   << (8 * (k % 8));
  }
  for (std::size_t k = 0; k < 4; ++k)
    w[4 + k].store(tw[k], std::memory_order_relaxed);
}

std::vector<FlightRingSnapshot> FlightRecorder::snapshot() const {
  std::vector<FlightRingSnapshot> out;
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    const Ring* ring = rings_[slot].load(std::memory_order_acquire);
    if (!ring) continue;
    FlightRingSnapshot snap;
    snap.rank = slot == 0 ? -1 : static_cast<int>(slot) - 1;
    snap.recorded = ring->cursor.load(std::memory_order_relaxed);
    const std::uint64_t n = std::min<std::uint64_t>(snap.recorded, kCapacity);
    snap.dropped = snap.recorded - n;
    snap.events.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::atomic<std::uint64_t>* w = &ring->words[i * kWordsPerRecord];
      FlightRecord rec;
      const std::uint64_t w0 = w[0].load(std::memory_order_relaxed);
      const std::uint64_t raw_type = w0 & 0xffu;
      rec.type = raw_type <= 7 ? static_cast<FlightType>(raw_type)
                               : FlightType::kMark;
      rec.detail = static_cast<std::uint8_t>((w0 >> 8) & 0xffu);
      rec.rank = static_cast<std::int16_t>(
          static_cast<std::uint16_t>((w0 >> 16) & 0xffffu));
      rec.seq = static_cast<std::uint32_t>(w0 >> 32);
      rec.ts_us =
          std::bit_cast<double>(w[1].load(std::memory_order_relaxed));
      rec.a = w[2].load(std::memory_order_relaxed);
      rec.b = w[3].load(std::memory_order_relaxed);
      for (std::size_t k = 0; k < 32; ++k) {
        const std::uint64_t tw = w[4 + k / 8].load(std::memory_order_relaxed);
        rec.text[k] = static_cast<char>((tw >> (8 * (k % 8))) & 0xffu);
      }
      rec.text[32] = '\0';
      snap.events.push_back(rec);
    }
    std::stable_sort(snap.events.begin(), snap.events.end(),
                     [](const FlightRecord& x, const FlightRecord& y) {
                       return x.ts_us < y.ts_us;
                     });
    out.push_back(std::move(snap));
  }
  return out;
}

std::uint64_t FlightRecorder::record_count() const {
  std::uint64_t total = 0;
  for (std::size_t slot = 0; slot < kSlots; ++slot)
    if (const Ring* ring = rings_[slot].load(std::memory_order_acquire))
      total += ring->cursor.load(std::memory_order_relaxed);
  return total;
}

void FlightRecorder::clear() {
  for (std::size_t slot = 0; slot < kSlots; ++slot)
    if (Ring* ring = rings_[slot].load(std::memory_order_acquire))
      ring->cursor.store(0, std::memory_order_relaxed);
}

}  // namespace spio::obs
