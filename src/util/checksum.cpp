#include "util/checksum.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "util/error.hpp"

namespace spio {

namespace {

// Reflected form of the ECMA-182 polynomial 0x42F0E1EBA9EA3693.
constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ULL;

// kTables[0] is the classic byte-at-a-time table; kTables[s][b] extends a
// CRC byte that is followed by s zero bytes. With 16 tables the body loop
// consumes two 64-bit words per iteration (slicing-by-16): sixteen
// independent lookups whose XOR tree the CPU can overlap, instead of the
// serial one-lookup-per-byte dependency chain.
constexpr std::array<std::array<std::uint64_t, 256>, 16> make_tables() {
  std::array<std::array<std::uint64_t, 256>, 16> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (std::size_t s = 1; s < 16; ++s) {
      t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFF];
    }
  }
  return t;
}

constexpr std::array<std::array<std::uint64_t, 256>, 16> kTables =
    make_tables();

std::uint64_t update_raw(std::uint64_t crc, const std::byte* p,
                         std::size_t n) {
  // Head: align to the word loop (any split is fine; the tables compose).
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7) != 0) {
    crc = kTables[0][(crc ^ static_cast<std::uint64_t>(*p)) & 0xFF] ^
          (crc >> 8);
    ++p;
    --n;
  }
  // Body: two 64-bit words per iteration. The CRC state folds into the
  // first word only; the second word's lookups are independent of it,
  // which is where the instruction-level parallelism comes from. The
  // on-disk format (and these loads) is little-endian, pinned by the
  // serializer.
  while (n >= 16) {
#if defined(__GNUC__) || defined(__clang__)
    // Non-temporal-hint prefetch a few lines ahead keeps the stream fed
    // when the buffer is DRAM-resident; harmless when it is cache-hot.
    __builtin_prefetch(p + 512, 0, 0);
#endif
    std::uint64_t w1, w2;
    std::memcpy(&w1, p, 8);
    std::memcpy(&w2, p + 8, 8);
    w1 ^= crc;
    crc = kTables[15][w1 & 0xFF] ^ kTables[14][(w1 >> 8) & 0xFF] ^
          kTables[13][(w1 >> 16) & 0xFF] ^ kTables[12][(w1 >> 24) & 0xFF] ^
          kTables[11][(w1 >> 32) & 0xFF] ^ kTables[10][(w1 >> 40) & 0xFF] ^
          kTables[9][(w1 >> 48) & 0xFF] ^ kTables[8][w1 >> 56] ^
          kTables[7][w2 & 0xFF] ^ kTables[6][(w2 >> 8) & 0xFF] ^
          kTables[5][(w2 >> 16) & 0xFF] ^ kTables[4][(w2 >> 24) & 0xFF] ^
          kTables[3][(w2 >> 32) & 0xFF] ^ kTables[2][(w2 >> 40) & 0xFF] ^
          kTables[1][(w2 >> 48) & 0xFF] ^ kTables[0][w2 >> 56];
    p += 16;
    n -= 16;
  }
  if (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc ^= word;
    crc = kTables[7][crc & 0xFF] ^ kTables[6][(crc >> 8) & 0xFF] ^
          kTables[5][(crc >> 16) & 0xFF] ^ kTables[4][(crc >> 24) & 0xFF] ^
          kTables[3][(crc >> 32) & 0xFF] ^ kTables[2][(crc >> 40) & 0xFF] ^
          kTables[1][(crc >> 48) & 0xFF] ^ kTables[0][crc >> 56];
    p += 8;
    n -= 8;
  }
  // Tail.
  while (n > 0) {
    crc = kTables[0][(crc ^ static_cast<std::uint64_t>(*p)) & 0xFF] ^
          (crc >> 8);
    ++p;
    --n;
  }
  return crc;
}

// Chunk size for the combined write+checksum and streamed-read passes:
// large enough to amortize stdio calls, small enough to stay in L2.
constexpr std::size_t kIoChunk = 1 << 20;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};

}  // namespace

void Crc64::update(std::span<const std::byte> data) {
  crc_ = update_raw(crc_, data.data(), data.size());
}

std::uint64_t crc64(std::span<const std::byte> data) {
  return ~update_raw(~0ULL, data.data(), data.size());
}

std::uint64_t crc64_bytewise(std::span<const std::byte> data) {
  std::uint64_t crc = ~0ULL;
  for (const std::byte b : data) {
    crc = kTables[0][(crc ^ static_cast<std::uint64_t>(b)) & 0xFF] ^
          (crc >> 8);
  }
  return ~crc;
}

std::uint64_t crc64_write_file(const std::filesystem::path& path,
                               std::span<const std::byte> bytes) {
  std::unique_ptr<std::FILE, FileCloser> f(
      std::fopen(path.string().c_str(), "wb"));
  SPIO_CHECK(f != nullptr, IoError,
             "cannot open '" << path.string() << "' for writing");
  Crc64 crc;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const std::size_t n = std::min(kIoChunk, bytes.size() - off);
    const std::span<const std::byte> chunk = bytes.subspan(off, n);
    // Checksum the chunk while it is hot in cache from the write.
    const std::size_t written =
        std::fwrite(chunk.data(), 1, chunk.size(), f.get());
    SPIO_CHECK(written == chunk.size(), IoError,
               "short write to '" << path.string() << "': " << off + written
                                  << " of " << bytes.size() << " bytes");
    crc.update(chunk);
    off += n;
  }
  return crc.value();
}

std::uint64_t crc64_file(const std::filesystem::path& path) {
  std::unique_ptr<std::FILE, FileCloser> f(
      std::fopen(path.string().c_str(), "rb"));
  SPIO_CHECK(f != nullptr, IoError,
             "cannot open '" << path.string() << "' for reading");
  Crc64 crc;
  std::vector<std::byte> buf(kIoChunk);
  for (;;) {
    const std::size_t n = std::fread(buf.data(), 1, buf.size(), f.get());
    if (n > 0) crc.update({buf.data(), n});
    if (n < buf.size()) {
      SPIO_CHECK(std::ferror(f.get()) == 0, IoError,
                 "read error in '" << path.string() << "'");
      break;
    }
  }
  return crc.value();
}

}  // namespace spio
