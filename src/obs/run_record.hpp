#pragma once

/// \file run_record.hpp
/// Darshan-style per-run record: `trace.spio.json`, written next to a
/// dataset by the writer (and extended in place by the reader) so the
/// dataset is self-describing — configuration, per-rank per-phase
/// seconds, and a counter dump survive after the job is gone.
///
/// Layout (one JSON object; sections appear as the pipeline produces
/// them):
///
///   {
///     "format": "spio.run_record", "version": 1,
///     "write": {
///       "ranks": 8, "schema_bytes": 124, "partition_count": 4,
///       "config": {"factor": "2x2x1", ...},
///       "phase_seconds": [{"rank": 0, "setup": ..., ...}, ...],
///       "totals": {"bytes_written": ..., ...},
///       "counters": {"writer.bytes_written": ..., ...},
///       "environment": {"threads_as_ranks": true, ...}
///     },
///     "read": { ... symmetric, io/exchange phases ... }
///   }
///
/// Emission is gated on `obs::run_records_enabled()` so default runs
/// (golden-format and chaos byte-identity tests among them) leave the
/// dataset directory untouched.

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace spio::obs {

/// File name of the run record inside a dataset directory.
inline constexpr const char* kRunRecordFile = "trace.spio.json";

/// One rank's write-pipeline phase seconds (mirrors `WriteStats` times).
struct WritePhaseSeconds {
  int rank = 0;
  double setup = 0;
  double meta_exchange = 0;
  double particle_exchange = 0;
  double reorder = 0;
  double file_io = 0;
  double metadata_io = 0;
};

/// The writer's contribution to the record.
struct WriteRunInfo {
  int ranks = 0;
  std::uint64_t schema_bytes = 0;
  int partition_count = 0;
  /// Flat config echo (factor, adaptive, lod, checksums, ...).
  std::map<std::string, std::string> config;
  std::vector<WritePhaseSeconds> phases;  // one entry per rank
  struct Totals {
    std::uint64_t particles_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t particles_written = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t files_written = 0;
  } totals;
  /// Per-partition load balance (the paper's §6 adaptive-aggregation
  /// motivation, measured): filled by rank 0 at commit from the
  /// per-file particle counts. `imbalance` = max/mean (1.0 = perfectly
  /// balanced); mirrored into the `write.partition_*` gauges.
  struct LoadBalance {
    std::uint64_t partition_particles_max = 0;
    double partition_particles_mean = 0;
    double imbalance = 0;
  } load_balance;
};

/// One rank's distributed-read phase seconds (mirrors `ReadStats`).
struct ReadPhaseSeconds {
  int rank = 0;
  double file_io = 0;
  double exchange = 0;
};

/// The reader's contribution to the record.
struct ReadRunInfo {
  int ranks = 0;
  int levels = -1;
  std::vector<ReadPhaseSeconds> phases;
  struct Totals {
    std::uint64_t files_opened = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t particles_scanned = 0;
    std::uint64_t particles_returned = 0;
    double read_amplification = 0;
  } totals;
};

/// Write (or overwrite) the record's `write` section, replacing any
/// existing record — a rewrite of the dataset restarts its history.
void save_write_record(const std::filesystem::path& dataset_dir,
                       const WriteRunInfo& info,
                       const MetricsRegistry::Snapshot& metrics);

/// Merge the `read` section into an existing record (or create a fresh
/// record holding only the read section when the writer left none).
void save_read_record(const std::filesystem::path& dataset_dir,
                      const ReadRunInfo& info,
                      const MetricsRegistry::Snapshot& metrics);

/// True when `dataset_dir` holds a run record.
bool run_record_present(const std::filesystem::path& dataset_dir);

/// Load and validate the record. Throws `IoError` / `FormatError`.
JsonValue load_run_record(const std::filesystem::path& dataset_dir);

/// Counter/gauge snapshot rendered as a flat JSON object (histograms
/// become `{count, sum, buckets: [[bound, n], ...]}` objects).
JsonValue metrics_to_json(const MetricsRegistry::Snapshot& snapshot);

}  // namespace spio::obs
