#pragma once

/// \file machine_profile.hpp
/// Calibrated cost-model profiles for the paper's evaluation platforms.
/// These parameters feed the write/read models that regenerate the shapes
/// of the paper's scaling figures; they are documented estimates of each
/// machine's architecture, not measurements, and EXPERIMENTS.md records
/// the shape-level agreement they produce.
///
/// Mira (ALCF): IBM Blue Gene/Q, 49,152 nodes, 5D torus, GPFS with 384
/// dedicated I/O nodes; a job's ranks are statically mapped to the I/O
/// nodes of their partition (128 compute nodes per ION, 16 ranks/node in
/// the paper's runs). Documented peak I/O ~240 GB/s.
///
/// Theta (ALCF): Cray XC40, Intel KNL, dragonfly network, Lustre; the
/// paper's runs used 48 OSTs (stripe count 48, 8 MB stripes) and shared
/// I/O routers. Lustre file creates serialize at the MDS.

#include <string>

namespace spio::iosim {

struct MachineProfile {
  std::string name;

  // ---- storage back end ----
  /// Number of independent I/O resources (GPFS IONs / Lustre OSTs).
  int io_resources = 1;
  /// Sustained write bandwidth per resource (bytes/s).
  double resource_bw = 1e9;
  /// Ranks served per I/O resource: a job of N ranks can engage at most
  /// ceil(N / ranks_per_resource) resources (dedicated-ION machines);
  /// 0 = all resources reachable by any job (Lustre).
  int ranks_per_resource = 0;
  /// Fixed per-file cost at the resource, expressed as equivalent bytes
  /// (seek/allocation overhead — penalizes many small files).
  double per_file_overhead_bytes = 0;
  /// Metadata-server cost per file create (seconds) and how many creates
  /// proceed concurrently.
  double file_create_seconds = 0;
  int mds_parallelism = 1;
  /// File count beyond which create costs grow linearly (directory/MDS
  /// contention knee); 0 disables.
  double create_contention_knee = 0;
  /// Throughput efficiency of N writers sharing one file (lock/stripe
  /// contention): eff = shared_base_efficiency
  ///                    / (1 + shared_lock_factor * N).
  double shared_lock_factor = 0;
  /// Fraction of peak a shared-file write can reach even without
  /// contention (extent-lock ping-pong, unaligned stripes).
  double shared_base_efficiency = 1.0;

  // ---- network (aggregation phase) ----
  /// Effective throughput at which an aggregator absorbs particle data
  /// from its senders (bytes/s), folding together network fan-in,
  /// receive-side packing, and router sharing. Fitted per machine; Theta's
  /// is far below Mira's (the paper's Fig. 6: aggregation dominates on
  /// Theta, is minor on Mira).
  double aggregation_bw = 1e9;
  /// Per-message latency (seconds).
  double msg_latency = 1e-6;
  /// Extra fan-in contention: receiving from G senders divides the
  /// effective bandwidth by (1 + incast_factor * (G - 1)).
  double incast_factor = 0;
  /// Large messages amortize per-message costs: effective bandwidth is
  /// multiplied by (msg_bytes / agg_msg_ref_bytes)^agg_msg_size_exponent
  /// (clamped to gains only). Reference size is the paper's 4 MB/core.
  double agg_msg_ref_bytes = 4.0 * (1 << 20);
  double agg_msg_size_exponent = 0;

  /// Seconds for one aggregator to absorb `per_sender_bytes` from each of
  /// `senders` senders (0 for no exchange).
  double aggregation_seconds(int senders, double per_sender_bytes) const;

  /// Throughput lost when active aggregators cluster in a sub-range of
  /// the rank space instead of spreading uniformly (§6): a fully
  /// clustered placement multiplies I/O time by (1 + placement_loss).
  /// Large on machines with rank-mapped dedicated I/O nodes (Mira),
  /// small where any rank reaches any resource (Theta).
  double placement_loss = 0;

  // ---- per-writer ceiling ----
  /// A single writer process cannot push faster than this (bytes/s);
  /// caps small-scale throughput when few aggregators are active.
  double per_writer_bw = 1e9;

  // ---- read side ----
  /// Per-process read bandwidth (bytes/s) and aggregate ceiling.
  double read_bw_per_process = 1e9;
  double read_total_bw = 1e9;
  /// Cost of opening one file for reading (seconds).
  double file_open_seconds = 0;

  /// Resources a job of `nranks` can engage.
  int job_resources(int nranks) const;

  /// Effective per-file create cost when `files` files are created.
  double effective_create_seconds(double files) const;

  static MachineProfile mira();
  static MachineProfile theta();
  static MachineProfile ssd_workstation();
};

}  // namespace spio::iosim
