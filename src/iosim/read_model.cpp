#include "iosim/read_model.hpp"

#include <algorithm>
#include <cmath>

namespace spio::iosim {

namespace {

/// Effective per-reader bandwidth: each stream is limited individually
/// and all streams share the aggregate ceiling.
double per_reader_bw(const MachineProfile& m, int readers) {
  return std::min(m.read_bw_per_process,
                  m.read_total_bw / std::max(1, readers));
}

}  // namespace

double model_read_seconds(const MachineProfile& m, const ReadCase& c) {
  SPIO_CHECK(c.files >= 1 && c.readers >= 1, ConfigError,
             "read case needs >= 1 file and reader");
  const double total = static_cast<double>(c.total_bytes);

  if (c.mode == ReadMode::kWithMetadata) {
    // Each reader opens ceil(F/n) files and pulls its 1/n share of bytes.
    const double opens = std::ceil(static_cast<double>(c.files) / c.readers);
    return opens * m.file_open_seconds +
           (total / c.readers) / per_reader_bw(m, c.readers);
  }

  // Without metadata every reader opens every file and scans everything;
  // adding readers does not shrink the per-reader load, and the shared
  // metadata service degrades under the open storm (the Fig. 7 curve that
  // worsens with scale).
  const double open_storm =
      static_cast<double>(c.files) * m.file_open_seconds *
      (1.0 + 0.02 * (c.readers - 1));
  return open_storm + total / per_reader_bw(m, c.readers);
}

double model_lod_read_seconds(const MachineProfile& m, const LodReadCase& c) {
  SPIO_CHECK(c.files >= 1 && c.readers >= 1, ConfigError,
             "LOD read case needs >= 1 file and reader");
  SPIO_CHECK(c.levels >= 0, ConfigError, "levels must be >= 0");
  const std::uint64_t particles =
      lod_cumulative(c.lod, c.readers, c.levels, c.total_particles);
  const double bytes =
      static_cast<double>(particles) * static_cast<double>(c.record_bytes);
  const double opens = std::ceil(static_cast<double>(c.files) / c.readers);
  return opens * m.file_open_seconds +
         (bytes / c.readers) / per_reader_bw(m, c.readers);
}

}  // namespace spio::iosim
