#include "util/temp_dir.hpp"

#include <atomic>
#include <chrono>

#include "util/error.hpp"

namespace spio {

namespace {
std::atomic<unsigned> g_counter{0};
}

TempDir::TempDir(const std::string& prefix) {
  const auto base = std::filesystem::temp_directory_path();
  const auto stamp = std::chrono::steady_clock::now().time_since_epoch().count();
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto candidate =
        base / (prefix + "-" + std::to_string(stamp) + "-" +
                std::to_string(g_counter.fetch_add(1)));
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec) && !ec) {
      path_ = std::move(candidate);
      return;
    }
  }
  throw IoError("could not create a unique temp directory under " +
                base.string());
}

TempDir::~TempDir() {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort in a destructor
  }
}

TempDir::TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) {
  other.path_.clear();
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

std::filesystem::path TempDir::release() {
  auto p = std::move(path_);
  path_.clear();
  return p;
}

}  // namespace spio
