/// \file fig06_time_breakdown.cpp
/// Figure 6: share of write time spent in data aggregation
/// (communication) versus file I/O at 32,768 ranks, per aggregation
/// configuration, on Mira and Theta for both workloads. The paper's
/// findings: the share grows with the partition factor on both machines,
/// stays small on Mira, and dominates on Theta — which is why Theta
/// prefers small factors.

#include <iostream>
#include <vector>

#include "bench_env.hpp"
#include "iosim/write_model.hpp"
#include "util/table.hpp"

using namespace spio;
using namespace spio::iosim;

namespace {

void panel(const MachineProfile& machine, std::uint64_t ppc,
           const std::vector<PartitionFactor>& factors) {
  Table t("Figure 6: " + machine.name + ", " + std::to_string(ppc / 1024) +
              "K particles/core, 32768 ranks — time breakdown",
          {"factor", "aggregation %", "file I/O %", "agg (s)", "io (s)"});
  for (const auto& f : factors) {
    WriteCase c;
    c.nprocs = 32768;
    c.particles_per_proc = ppc;
    c.scheme = WriteScheme::kSpio;
    c.factor = f;
    const WriteBreakdown b = model_write(machine, c);
    t.row()
        .add(f.to_string())
        .add_double(100.0 * b.aggregation_share(), 1)
        .add_double(100.0 * (1.0 - b.aggregation_share()), 1)
        .add_double(b.aggregation_seconds, 3)
        .add_double(b.io_seconds, 3);
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  spio::bench::init_observability();
  const std::vector<PartitionFactor> mira_factors = {
      {1, 1, 1}, {2, 2, 2}, {2, 2, 4}, {2, 4, 4}};
  const std::vector<PartitionFactor> theta_factors = {
      {1, 1, 1}, {1, 1, 2}, {1, 2, 2}, {2, 2, 2},
      {2, 2, 4}, {2, 4, 4}, {4, 4, 4}};
  for (const std::uint64_t ppc : {32768ull, 65536ull})
    panel(MachineProfile::mira(), ppc, mira_factors);
  for (const std::uint64_t ppc : {32768ull, 65536ull})
    panel(MachineProfile::theta(), ppc, theta_factors);
  std::cout << "paper reference: aggregation share grows with the "
               "partition factor;\nsmall on Mira, dominant on Theta "
               "(\"fewer partitions, and thus less communication, should "
               "be preferred on Theta\").\n";
  return 0;
}
