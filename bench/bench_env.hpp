#pragma once

/// \file bench_env.hpp
/// Observability plumbing shared by the figure/ablation binaries.
///
/// Calling `spio::bench::init_observability()` first thing in main()
/// honors the standard environment switches (docs/OBSERVABILITY.md):
///
///   SPIO_TRACE=path   collect spans and flush a Chrome trace at exit
///   SPIO_LOG=level[:path]  structured logging to stderr or a file
///
/// The always-on flight recorder needs no opt-in; SPIO_FLIGHT=off
/// disables it. Explicit initialization keeps the benchmarks working
/// even if a linker drops the obs layer's self-registering translation
/// units from a static archive.

#include "obs/obs.hpp"

namespace spio::bench {

inline void init_observability() { obs::init_from_env(); }

}  // namespace spio::bench
