#include "core/distributed_read.hpp"

#include <chrono>
#include <numeric>
#include <type_traits>

#include "core/query_plan/kd_tree.hpp"
#include "core/read_engine.hpp"
#include "obs/access_profile.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/run_record.hpp"
#include "obs/trace.hpp"

namespace spio {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int file_reader(const DatasetMetadata& meta, int file_index,
                const PatchDecomposition& decomp) {
  SPIO_EXPECTS(file_index >= 0 &&
               file_index < static_cast<int>(meta.files.size()));
  SPIO_CHECK(meta.has_bounds, ConfigError,
             "distributed reads need spatial metadata");
  const Box3& b = meta.files[static_cast<std::size_t>(file_index)].bounds;
  return decomp.rank_of(decomp.cell_of(b.center()));
}

ParticleBuffer distributed_read(simmpi::Comm& comm,
                                const PatchDecomposition& decomp,
                                const std::filesystem::path& dir, int levels,
                                ReadStats* stats) {
  SPIO_CHECK(comm.size() == decomp.rank_count(), ConfigError,
             "decomposition has " << decomp.rank_count()
                                  << " patches for a job of " << comm.size()
                                  << " ranks");
  // Ranks are threads of one process, so everyone sees the same
  // collection state and agrees on the record-emission gather below.
  const bool record_run = obs::run_records_enabled();
  obs::ScopedSpan whole_span("read.distributed", "reader");
  try {
  const Dataset ds = Dataset::open(dir);
  SPIO_CHECK(decomp.domain().contains_box(ds.metadata().domain), ConfigError,
             "reader domain " << decomp.domain()
                              << " does not contain the dataset domain "
                              << ds.metadata().domain);

  // Local accumulator regardless of the caller's interest: it also feeds
  // the metrics registry and the run record.
  ReadStats acc;

  // Phase 1: read my assigned files and bin their particles by owner
  // tile. Binning uses the decomposition's point location, which clamps
  // boundary particles into the domain's edge patches.
  obs::ScopedSpan io_span("read.distributed.local_io", "reader");
  std::vector<ParticleBuffer> outgoing(
      static_cast<std::size_t>(comm.size()),
      ParticleBuffer(ds.metadata().schema));
  // Candidate files via the k-d tree's closed-overlap search over my
  // patch: a file's owner is the rank whose patch holds its bbox center,
  // and the center lies inside the bbox, so the owner's patch always
  // closed-overlaps the bbox — the candidates are a superset of my files,
  // confirmed exactly by `file_reader` below. Replaces the O(F · ranks)
  // every-rank-scans-every-file loop.
  std::vector<int> candidates;
  if (const auto& tree = ds.spatial_tree(); tree && !tree->empty()) {
    candidates = tree->query_closed(decomp.patch(comm.rank()));
  } else {
    candidates.resize(static_cast<std::size_t>(ds.file_count()));
    std::iota(candidates.begin(), candidates.end(), 0);
  }
  for (const int fi : candidates) {
    if (file_reader(ds.metadata(), fi, decomp) != comm.rank()) continue;
    // Fetch (not read_data_file) keeps the prefix shared with the cache
    // and carries its SoA position mirror, so a warm distributed read
    // bins through the SIMD kernel. Owner binning is fused either way:
    // spatially-coherent files yield long runs of one owner, copied
    // with single memcpys (bin_by_owner_reference is the oracle).
    const Dataset::FilePrefix prefix =
        ds.fetch_file(fi, levels, comm.size(), &acc);
    read_detail::bin_by_owner_dispatch(prefix.bytes(), ds.metadata().schema,
                                       decomp, prefix.mirror(), outgoing);
    // Owner binning delivers every scanned record to some rank, so the
    // whole prefix counts as used in the access profile (the disjoint
    // tiles cover the domain; nothing is filtered away).
    obs::AccessProfiler::instance().record_used(ds.profile_base(), fi,
                                                prefix.bytes().size());
  }
  io_span.end();

  // Phase 2: personalized exchange of the binned bytes.
  obs::ScopedSpan exchange_span("read.distributed.exchange", "reader");
  const Clock::time_point t0 = Clock::now();
  std::vector<std::vector<std::byte>> send_to(
      static_cast<std::size_t>(comm.size()));
  for (int r = 0; r < comm.size(); ++r)
    send_to[static_cast<std::size_t>(r)] =
        outgoing[static_cast<std::size_t>(r)].take_bytes();
  const auto received = comm.alltoallv(send_to);

  ParticleBuffer mine(ds.metadata().schema);
  for (const auto& payload : received) mine.append_bytes(payload);
  acc.exchange_seconds = seconds_since(t0);
  exchange_span.end();

  // What this rank *returns* is what it owns after the exchange, not what
  // it scanned on behalf of others.
  acc.particles_returned = mine.size();
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("reader.particles_returned").add(mine.size());
    reg.counter("reader.bytes_returned").add(mine.byte_size());
    const std::uint64_t read = reg.counter("reader.bytes_read").value();
    const std::uint64_t ret = reg.counter("reader.bytes_returned").value();
    if (ret > 0)
      reg.gauge("reader.read_amplification")
          .set(static_cast<double>(read) / static_cast<double>(ret));
  }
  if (stats) stats->accumulate(acc);

  if (record_run) {
    // Merge the read section into the dataset's Darshan-style run record.
    static_assert(std::is_trivially_copyable_v<ReadStats>);
    const std::vector<ReadStats> all = comm.gather<ReadStats>(acc, 0);
    if (comm.rank() == 0) {
      obs::ReadRunInfo info;
      info.ranks = comm.size();
      info.levels = levels;
      for (int r = 0; r < comm.size(); ++r) {
        const ReadStats& s = all[static_cast<std::size_t>(r)];
        info.phases.push_back({r, s.file_io_seconds, s.exchange_seconds});
        info.totals.files_opened += static_cast<std::uint64_t>(s.files_opened);
        info.totals.bytes_read += s.bytes_read;
        info.totals.particles_scanned += s.particles_scanned;
        info.totals.particles_returned += s.particles_returned;
      }
      if (info.totals.particles_returned > 0)
        info.totals.read_amplification =
            static_cast<double>(info.totals.particles_scanned) /
            static_cast<double>(info.totals.particles_returned);
      obs::save_read_record(dir, info,
                            obs::MetricsRegistry::global().snapshot());
    }
  }
  return mine;
  } catch (const simmpi::Aborted&) {
    // Secondary casualty: the rank that actually failed owns the bundle.
    throw;
  } catch (const std::exception& e) {
    // Covers the journal-trigger path too: an incomplete dataset makes
    // `Dataset::open` refuse, and the bundle explains the refusal.
    obs::log::Event(obs::log::Level::kError, "read.failed")
        .kv("rank", comm.rank())
        .kv("dir", dir.string())
        .kv("reason", e.what());
    std::error_code ec;
    if (std::filesystem::is_directory(dir, ec)) {
      obs::PostmortemInfo info;
      info.reason = e.what();
      info.failed_rank = comm.rank();
      info.phase = "read";
      info.job_ranks = comm.size();
      obs::save_postmortem(dir, info);
    }
    throw;
  }
}

}  // namespace spio
