#include <gtest/gtest.h>

#include <string>

#include "core/metadata.hpp"

namespace spio {
namespace {

/// On-disk format freeze: the exact byte sequence of a reference metadata
/// file, version 2. If this test fails, the format changed — either fix
/// the regression or bump `DatasetMetadata::kVersion` and regenerate the
/// golden bytes (see docs/FORMAT.md).
constexpr const char* kGoldenHex =
    "5350494f0200000004030201060000000800000000000000706f736974696f6e0103"
    "00000006000000000000007374726573730109000000070000000000000064656e73"
    "69747901010000000600000000000000766f6c756d65010100000002000000000000"
    "00696401010000000400000000000000747970650001000000000000000000000000"
    "00000000000000000000000000000000000000000010400000000000000040000000"
    "000000f03f2000000000000000000000000000004000010107000000000000000100"
    "00000000000003000000070000000000000000000000000000000000000000000000"
    "000000000000000000000000000000400000000000000040000000000000f03f0000"
    "00000000f0bf000000000000f03f000000000000f0bf000000000000f03f00000000"
    "0000f0bf000000000000f03f000000000000f0bf000000000000f03f000000000000"
    "f0bf000000000000f03f000000000000f0bf000000000000f03f000000000000f0bf"
    "000000000000f03f000000000000f0bf000000000000f03f000000000000f0bf0000"
    "00000000f03f000000000000f0bf000000000000f03f000000000000f0bf00000000"
    "0000f03f000000000000f0bf000000000000f03f000000000000f0bf000000000000"
    "f03f000000000000f0bf000000000000f03f000000000000f0bf000000000000f03f"
    "000000000000f0bf000000000000f03f";

DatasetMetadata reference_metadata() {
  DatasetMetadata m;
  m.schema = Schema::uintah();
  m.domain = Box3({0, 0, 0}, {4, 2, 1});
  m.lod = {32, 2.0};
  m.heuristic = LodHeuristic::kRandom;
  m.total_particles = 7;
  FileRecord f;
  f.partition_id = 0;
  f.aggregator_rank = 3;
  f.particle_count = 7;
  f.bounds = Box3({0, 0, 0}, {2, 2, 1});
  f.field_ranges.assign(m.range_count(), FieldRange{-1.0, 1.0});
  m.files.push_back(f);
  return m;
}

std::string to_hex(std::span<const std::byte> bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::byte b : bytes) {
    out.push_back(digits[static_cast<unsigned>(b) >> 4]);
    out.push_back(digits[static_cast<unsigned>(b) & 0xF]);
  }
  return out;
}

TEST(FormatGolden, MetadataBytesAreFrozen) {
  const auto bytes = reference_metadata().serialize();
  EXPECT_EQ(bytes.size(), 526u);
  EXPECT_EQ(to_hex(bytes), kGoldenHex);
}

TEST(FormatGolden, GoldenBytesParseBackToTheReference) {
  std::vector<std::byte> bytes;
  const std::string hex = kGoldenHex;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    bytes.push_back(static_cast<std::byte>(
        std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  EXPECT_EQ(DatasetMetadata::deserialize(bytes), reference_metadata());
}

TEST(FormatGolden, MagicSpellsSpio) {
  const auto bytes = reference_metadata().serialize();
  EXPECT_EQ(static_cast<char>(bytes[0]), 'S');
  EXPECT_EQ(static_cast<char>(bytes[1]), 'P');
  EXPECT_EQ(static_cast<char>(bytes[2]), 'I');
  EXPECT_EQ(static_cast<char>(bytes[3]), 'O');
  EXPECT_EQ(static_cast<unsigned>(bytes[4]), 2u);  // version
}

TEST(FormatGolden, TruncatedMetadataRaisesStructuredError) {
  // A torn metadata write (the crash mode the write journal exists for)
  // must surface as FormatError at every truncation point — never an
  // out-of-bounds read, a crash, or a silently short parse.
  const auto whole = reference_metadata().serialize();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{4}, std::size_t{5},
        std::size_t{16}, std::size_t{100}, whole.size() / 2,
        whole.size() - 1}) {
    std::vector<std::byte> torn(whole.begin(),
                                whole.begin() + static_cast<long>(keep));
    EXPECT_THROW(DatasetMetadata::deserialize(torn), FormatError)
        << "truncated to " << keep << " bytes";
  }
}

TEST(FormatGolden, TrailingGarbageAfterMetadataIsRejected) {
  auto bytes = reference_metadata().serialize();
  bytes.push_back(std::byte{0x5A});
  EXPECT_THROW(DatasetMetadata::deserialize(bytes), FormatError);
}

TEST(FormatGolden, CorruptedMagicIsRejected) {
  auto bytes = reference_metadata().serialize();
  bytes[0] = std::byte{'X'};
  EXPECT_THROW(DatasetMetadata::deserialize(bytes), FormatError);
}

}  // namespace
}  // namespace spio
