#!/usr/bin/env sh
# Regenerate BENCH_hotpath.json, the committed machine-readable perf
# baseline for the write pipeline's hot paths (binning, exchange, LOD
# reorder, CRC, file write; micro kernels vs their pre-optimization
# references).
#
# Usage: bench/run_hotpath.sh [build-dir] [reps]
#
# Run from the repository root on an otherwise idle machine. The JSON is
# written to the repository root; commit it when refreshing the baseline.
#
# Three observability gates ride along (docs/OBSERVABILITY.md):
#   - the fresh results are compared against the committed baseline with
#     `spio_bench --compare`; any micro-kernel speedup more than 15%
#     below BENCH_hotpath.json (35% for the weather-riding absolute
#     stage MB/s rows) fails the script,
#   - the 8-rank stage run also emits a Chrome trace which is validated
#     with `spio_trace --check`,
#   - the flight recorder dumps a postmortem smoke bundle which is
#     validated with `spio_trace --check` as well.
#
# After the write-path run it regenerates and gates BENCH_readpath.json
# (read engine, including the SIMD kernel rows and the per-stage
# read-amplification gate) and BENCH_servepath.json (concurrent query
# service, including the server-side p99 and scan-amplification gates).
# A separate short serve run collects a detailed spatial access profile
# (SPIO_PROFILE — kept off the gated runs: the detailed tier takes a
# mutex per record, and the baselines measure the always-on tier only);
# the profile is schema-checked with `spio_trace --check` and its Zipf
# hot spot is rendered with `spio_heatmap`. It also runs
# the SIMD differential suite under both dispatch paths (`ctest -L simd`
# twice, the second with SPIO_SIMD=off forcing the scalar fallback), the
# query-planner differential suite under both planners (`ctest -L
# planner` twice, the second with SPIO_PLAN=linear forcing the
# linear-scan oracle),
# exercises the live-telemetry path (the serve run streams
# stats.spio.jsonl via SPIO_STATS; the stream is validated with
# `spio_trace --check` and rendered with `spio_top --replay`), then runs
# the service + read test suites under ThreadSanitizer
# (`ctest --preset tsan-serve`) as a final concurrency gate.
set -eu

BUILD_DIR="${1:-build}"
REPS="${2:-5}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH="$REPO_ROOT/$BUILD_DIR/tools/spio_bench"
TRACE_TOOL="$REPO_ROOT/$BUILD_DIR/tools/spio_trace"

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j --target spio_bench spio_trace" >&2
  exit 1
fi

BASELINE="$REPO_ROOT/BENCH_hotpath.json"
TRACE_JSON="$REPO_ROOT/$BUILD_DIR/hotpath_trace.json"
BUNDLE_DIR="$REPO_ROOT/$BUILD_DIR"

# Gate against the committed baseline when one exists; the same
# invocation rewrites it (the baseline is read before the overwrite).
COMPARE_ARGS=""
if [ -f "$BASELINE" ]; then
  COMPARE_ARGS="--compare $BASELINE"
else
  echo "no committed baseline at $BASELINE; generating without the gate" >&2
fi

# shellcheck disable=SC2086  # COMPARE_ARGS is intentionally word-split
"$BENCH" --hotpath --reps "$REPS" --json "$BASELINE" $COMPARE_ARGS \
  --trace "$TRACE_JSON" --dump-postmortem "$BUNDLE_DIR"

if [ -x "$TRACE_TOOL" ]; then
  "$TRACE_TOOL" --check "$TRACE_JSON"
  "$TRACE_TOOL" --check "$BUNDLE_DIR/postmortem.spio.json"
else
  echo "warning: $TRACE_TOOL not built; skipping artifact validation" >&2
fi

# Read-path baseline (BENCH_readpath.json): the fused filter kernels vs
# their references, plus cold/warm/range-filter/distributed end-to-end
# stages through the read engine. Gated the same way.
READ_BASELINE="$REPO_ROOT/BENCH_readpath.json"
READ_COMPARE_ARGS=""
if [ -f "$READ_BASELINE" ]; then
  READ_COMPARE_ARGS="--compare $READ_BASELINE"
else
  echo "no committed baseline at $READ_BASELINE; generating without the gate" >&2
fi

# shellcheck disable=SC2086  # READ_COMPARE_ARGS is intentionally word-split
"$BENCH" --readpath --reps "$REPS" --json "$READ_BASELINE" $READ_COMPARE_ARGS

# SIMD correctness gate: the differential suite (SIMD kernels pinned
# byte-for-byte to the scalar references) under the host's best ISA,
# then again with dispatch forced to the scalar fallback — the readpath
# baseline above is only meaningful if both paths produce identical
# bytes.
echo "== simd: differential suite, native dispatch =="
(cd "$REPO_ROOT/$BUILD_DIR" && ctest -L simd --output-on-failure)
echo "== simd: differential suite, SPIO_SIMD=off scalar fallback =="
(cd "$REPO_ROOT/$BUILD_DIR" && SPIO_SIMD=off ctest -L simd --output-on-failure)

# Planner correctness gate, same shape: the query-planning differential
# suite (pruned plans vs the linear-scan oracle, byte-identical results)
# under the default pruned planner, then again with SPIO_PLAN=linear
# forcing every Dataset onto the oracle path — the readpath
# amplification and planning rows above are only meaningful if both
# planners produce identical bytes.
echo "== planner: differential suite, pruned planner =="
(cd "$REPO_ROOT/$BUILD_DIR" && ctest -L planner --output-on-failure)
echo "== planner: differential suite, SPIO_PLAN=linear oracle path =="
(cd "$REPO_ROOT/$BUILD_DIR" && SPIO_PLAN=linear ctest -L planner --output-on-failure)

# Query-service baseline (BENCH_servepath.json): closed-loop Zipfian
# hot-spot QPS at 1/4/16 clients plus the 16-client scaling factor
# through the concurrent query service. Gated the same way (but with a
# wider 35% band: closed-loop QPS rides scheduler weather).
SERVE_BASELINE="$REPO_ROOT/BENCH_servepath.json"
SERVE_COMPARE_ARGS=""
if [ -f "$SERVE_BASELINE" ]; then
  SERVE_COMPARE_ARGS="--compare $SERVE_BASELINE"
else
  echo "no committed baseline at $SERVE_BASELINE; generating without the gate" >&2
fi

# The serve run doubles as the live-telemetry smoke test
# (docs/OBSERVABILITY.md "Live telemetry"): the exporter streams
# stats.spio.jsonl while the bench serves, the stream is schema-checked
# with `spio_trace --check`, and `spio_top --replay` must render it.
STATS_JSONL="$REPO_ROOT/$BUILD_DIR/stats.spio.jsonl"
TOP_TOOL="$REPO_ROOT/$BUILD_DIR/tools/spio_top"

# shellcheck disable=SC2086  # SERVE_COMPARE_ARGS is intentionally word-split
SPIO_STATS="250:$STATS_JSONL" SPIO_SLO_MS=1000 \
  "$BENCH" --serve --reps "$REPS" --json "$SERVE_BASELINE" $SERVE_COMPARE_ARGS

if [ -x "$TRACE_TOOL" ]; then
  "$TRACE_TOOL" --check "$STATS_JSONL"
else
  echo "warning: $TRACE_TOOL not built; skipping stats validation" >&2
fi

# Access-profiler smoke (docs/OBSERVABILITY.md "Spatial access
# profiles"): a short ungated serve run with SPIO_PROFILE collects the
# Zipf hot-spot profile — skewed traffic is exactly what the heatmap
# exists to show. The profiler serializes per-file attribution at exit;
# the document must pass the same structural validator as every other
# spio artifact, then render as a heatmap.
SERVE_PROFILE="$REPO_ROOT/$BUILD_DIR/servepath_profile.spio.json"
HEATMAP_TOOL="$REPO_ROOT/$BUILD_DIR/tools/spio_heatmap"
SPIO_PROFILE="$SERVE_PROFILE" \
  "$BENCH" --serve --reps 1 --json "$REPO_ROOT/$BUILD_DIR/servepath_profiled.json"

if [ -x "$TRACE_TOOL" ]; then
  "$TRACE_TOOL" --check "$SERVE_PROFILE"
else
  echo "warning: $TRACE_TOOL not built; skipping profile validation" >&2
fi
if [ -x "$HEATMAP_TOOL" ]; then
  echo "== spio_heatmap: the serve run's Zipf hot-spot, bytes scanned =="
  "$HEATMAP_TOOL" "$SERVE_PROFILE" --metric scanned --width 48 --top 5
else
  echo "warning: $HEATMAP_TOOL not built; skipping heatmap render" >&2
fi
if [ -x "$TOP_TOOL" ]; then
  echo "== spio_top: replay of the serve run's telemetry stream =="
  "$TOP_TOOL" "$STATS_JSONL" --replay | tail -n 12
else
  echo "warning: $TOP_TOOL not built; skipping dashboard replay" >&2
fi

# Concurrency gate: the service + read suites must be TSan-clean. Uses
# the tsan preset's build tree, configuring/building it on first run.
echo "== tsan-serve: service + read suites under ThreadSanitizer =="
(cd "$REPO_ROOT" \
  && cmake --preset tsan >/dev/null \
  && cmake --build --preset tsan -j >/dev/null \
  && ctest --preset tsan-serve)
