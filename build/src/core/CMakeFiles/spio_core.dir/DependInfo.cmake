
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation_grid.cpp" "src/core/CMakeFiles/spio_core.dir/aggregation_grid.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/aggregation_grid.cpp.o.d"
  "/root/repo/src/core/aggregation_plan.cpp" "src/core/CMakeFiles/spio_core.dir/aggregation_plan.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/aggregation_plan.cpp.o.d"
  "/root/repo/src/core/density.cpp" "src/core/CMakeFiles/spio_core.dir/density.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/density.cpp.o.d"
  "/root/repo/src/core/distributed_read.cpp" "src/core/CMakeFiles/spio_core.dir/distributed_read.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/distributed_read.cpp.o.d"
  "/root/repo/src/core/file_index.cpp" "src/core/CMakeFiles/spio_core.dir/file_index.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/file_index.cpp.o.d"
  "/root/repo/src/core/journal.cpp" "src/core/CMakeFiles/spio_core.dir/journal.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/journal.cpp.o.d"
  "/root/repo/src/core/kd_partition.cpp" "src/core/CMakeFiles/spio_core.dir/kd_partition.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/kd_partition.cpp.o.d"
  "/root/repo/src/core/knn.cpp" "src/core/CMakeFiles/spio_core.dir/knn.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/knn.cpp.o.d"
  "/root/repo/src/core/lod.cpp" "src/core/CMakeFiles/spio_core.dir/lod.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/lod.cpp.o.d"
  "/root/repo/src/core/metadata.cpp" "src/core/CMakeFiles/spio_core.dir/metadata.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/metadata.cpp.o.d"
  "/root/repo/src/core/reader.cpp" "src/core/CMakeFiles/spio_core.dir/reader.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/reader.cpp.o.d"
  "/root/repo/src/core/restart.cpp" "src/core/CMakeFiles/spio_core.dir/restart.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/restart.cpp.o.d"
  "/root/repo/src/core/timeseries.cpp" "src/core/CMakeFiles/spio_core.dir/timeseries.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/timeseries.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/spio_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/validate.cpp.o.d"
  "/root/repo/src/core/writer.cpp" "src/core/CMakeFiles/spio_core.dir/writer.cpp.o" "gcc" "src/core/CMakeFiles/spio_core.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spio_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/spio_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/spio_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spio_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
