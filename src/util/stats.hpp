#pragma once

/// \file stats.hpp
/// Small statistics helpers used by the benchmark harnesses and by the
/// level-of-detail quality experiments (density-field RMSE).

#include <cstddef>
#include <span>
#include <vector>

namespace spio {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a sample; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, `q` in [0, 100]. Precondition: non-empty.
double percentile(std::vector<double> xs, double q);

/// Root-mean-square error between two equally-sized samples.
/// Precondition: `a.size() == b.size()`, non-empty.
double rmse(std::span<const double> a, std::span<const double> b);

}  // namespace spio
