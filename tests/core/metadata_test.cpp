#include "core/metadata.hpp"

#include <gtest/gtest.h>

#include "util/temp_dir.hpp"

namespace spio {
namespace {

DatasetMetadata sample_metadata() {
  DatasetMetadata m;
  m.schema = Schema::uintah();
  m.domain = Box3({0, 0, 0}, {4, 4, 4});
  m.lod = {32, 2.0};
  m.has_field_ranges = false;
  m.total_particles = 300;
  m.files.push_back({0, 0, 100, Box3({0, 0, 0}, {2, 4, 4}), {}});
  m.files.push_back({1, 4, 200, Box3({2, 0, 0}, {4, 4, 4}), {}});
  return m;
}

DatasetMetadata sample_with_ranges() {
  DatasetMetadata m = sample_metadata();
  m.has_field_ranges = true;
  for (auto& f : m.files) {
    f.field_ranges.assign(m.range_count(), FieldRange{0.0, 1.0});
    // Make density (index 12 = 3 position + 9 stress) distinctive.
    f.field_ranges[m.range_index(m.schema.index_of("density"), 0)] = {
        900.0 + f.partition_id * 100.0, 1000.0 + f.partition_id * 100.0};
  }
  return m;
}

TEST(Metadata, RangeIndexingFlattensComponents) {
  const DatasetMetadata m = sample_metadata();
  // uintah: position x3, stress x9, density, volume, id, type = 16.
  EXPECT_EQ(m.range_count(), 16u);
  EXPECT_EQ(m.range_index(0, 0), 0u);
  EXPECT_EQ(m.range_index(0, 2), 2u);
  EXPECT_EQ(m.range_index(1, 0), 3u);   // stress starts after position
  EXPECT_EQ(m.range_index(2, 0), 12u);  // density
  EXPECT_EQ(m.range_index(5, 0), 15u);  // type
}

TEST(Metadata, FieldRangesRoundTrip) {
  const DatasetMetadata m = sample_with_ranges();
  const DatasetMetadata back = DatasetMetadata::deserialize(m.serialize());
  EXPECT_EQ(back, m);
  EXPECT_TRUE(back.has_field_ranges);
  const auto di = m.range_index(m.schema.index_of("density"), 0);
  EXPECT_EQ(back.files[1].field_ranges[di], (FieldRange{1000.0, 1100.0}));
}

TEST(Metadata, FieldRangeIntersection) {
  const FieldRange r{5.0, 10.0};
  EXPECT_TRUE(r.intersects(0.0, 5.0));    // touch at the low end
  EXPECT_TRUE(r.intersects(10.0, 20.0));  // touch at the high end
  EXPECT_TRUE(r.intersects(6.0, 7.0));    // inside
  EXPECT_TRUE(r.intersects(0.0, 20.0));   // contains
  EXPECT_FALSE(r.intersects(0.0, 4.9));
  EXPECT_FALSE(r.intersects(10.1, 20.0));
}

TEST(Metadata, InconsistentRangeTableRejectedOnWrite) {
  DatasetMetadata m = sample_with_ranges();
  m.files[0].field_ranges.pop_back();
  EXPECT_THROW(m.serialize(), ConfigError);
}

TEST(Metadata, InvertedRangeRejectedOnRead) {
  DatasetMetadata m = sample_with_ranges();
  m.files[0].field_ranges[0] = {5.0, 1.0};
  EXPECT_THROW(DatasetMetadata::deserialize(m.serialize()), FormatError);
}

TEST(Metadata, SerializeDeserializeRoundTrip) {
  const DatasetMetadata m = sample_metadata();
  const auto bytes = m.serialize();
  EXPECT_EQ(DatasetMetadata::deserialize(bytes), m);
}

TEST(Metadata, SaveLoadRoundTrip) {
  TempDir dir("meta-test");
  const DatasetMetadata m = sample_metadata();
  m.save(dir.path());
  EXPECT_TRUE(std::filesystem::exists(dir.file(DatasetMetadata::kFileName)));
  EXPECT_EQ(DatasetMetadata::load(dir.path()), m);
}

TEST(Metadata, FileNameDerivedFromAggregatorRank) {
  // Fig. 4: "Agg rank is used to derive the name of the data file".
  FileRecord f;
  f.aggregator_rank = 12;
  EXPECT_EQ(f.file_name(), "File_12.bin");
}

TEST(Metadata, RoundTripWithoutBounds) {
  DatasetMetadata m = sample_metadata();
  m.has_bounds = false;
  const auto back = DatasetMetadata::deserialize(m.serialize());
  EXPECT_EQ(back.has_bounds, false);
  EXPECT_EQ(back.files.size(), 2u);
  EXPECT_EQ(back.files[1].particle_count, 200u);
  // Without bounds, spatial selection must refuse.
  EXPECT_THROW(back.files_intersecting(Box3::unit()), ConfigError);
}

TEST(Metadata, FilesIntersectingSelectsByBox) {
  const DatasetMetadata m = sample_metadata();
  EXPECT_EQ(m.files_intersecting(Box3({0, 0, 0}, {1, 1, 1})),
            (std::vector<int>{0}));
  EXPECT_EQ(m.files_intersecting(Box3({3, 3, 3}, {4, 4, 4})),
            (std::vector<int>{1}));
  EXPECT_EQ(m.files_intersecting(Box3({1, 1, 1}, {3, 3, 3})),
            (std::vector<int>{0, 1}));
  EXPECT_TRUE(m.files_intersecting(Box3({9, 9, 9}, {10, 10, 10})).empty());
}

TEST(Metadata, RejectsBadMagic) {
  auto bytes = sample_metadata().serialize();
  bytes[0] = std::byte{0xFF};
  EXPECT_THROW(DatasetMetadata::deserialize(bytes), FormatError);
}

TEST(Metadata, RejectsWrongVersion) {
  auto bytes = sample_metadata().serialize();
  bytes[4] = std::byte{99};
  EXPECT_THROW(DatasetMetadata::deserialize(bytes), FormatError);
}

TEST(Metadata, RejectsTruncation) {
  const auto bytes = sample_metadata().serialize();
  for (const std::size_t keep : {bytes.size() - 1, bytes.size() / 2,
                                 std::size_t{10}, std::size_t{0}}) {
    std::vector<std::byte> cut(bytes.begin(),
                               bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(DatasetMetadata::deserialize(cut), FormatError)
        << "kept " << keep;
  }
}

TEST(Metadata, RejectsTrailingGarbage) {
  auto bytes = sample_metadata().serialize();
  bytes.push_back(std::byte{0});
  EXPECT_THROW(DatasetMetadata::deserialize(bytes), FormatError);
}

TEST(Metadata, RejectsInconsistentTotals) {
  DatasetMetadata m = sample_metadata();
  m.total_particles = 999;  // != 100 + 200
  EXPECT_THROW(DatasetMetadata::deserialize(m.serialize()), FormatError);
}

TEST(Metadata, LoadMissingDirectoryThrowsIoError) {
  TempDir dir("meta-test");
  EXPECT_THROW(DatasetMetadata::load(dir.path() / "nonexistent"), IoError);
}

TEST(Metadata, EmptyDatasetRoundTrips) {
  DatasetMetadata m;
  m.domain = Box3::unit();
  const auto back = DatasetMetadata::deserialize(m.serialize());
  EXPECT_EQ(back.files.size(), 0u);
  EXPECT_EQ(back.total_particles, 0u);
}

}  // namespace
}  // namespace spio
