#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/journal.hpp"
#include "core/writer.hpp"
#include "faultsim/fault_plan.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace simmpi {
namespace {

TEST(Failure, ExceptionInOneRankPropagatesToCaller) {
  EXPECT_THROW(run(4,
                   [](Comm& comm) {
                     if (comm.rank() == 2)
                       throw std::runtime_error("rank 2 failed");
                     // Other ranks keep working; they may or may not block.
                   }),
               std::runtime_error);
}

TEST(Failure, BlockedReceiversUnwindInsteadOfDeadlocking) {
  // Rank 0 dies; rank 1 is blocked in a receive that will never be
  // matched. The runtime must abort rank 1 and rethrow rank 0's error.
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0)
                       throw std::logic_error("writer exploded");
                     comm.recv_value<int>(0, 0);  // would block forever
                     FAIL() << "recv returned after peer death";
                   }),
               std::logic_error);
}

TEST(Failure, BlockedCollectiveUnwinds) {
  EXPECT_THROW(run(4,
                   [](Comm& comm) {
                     if (comm.rank() == 3)
                       throw std::runtime_error("no barrier for me");
                     comm.barrier();  // 3 never arrives
                     FAIL() << "barrier completed without all ranks";
                   }),
               std::runtime_error);
}

TEST(Failure, FirstExceptionWins) {
  try {
    run(4, [](Comm& comm) {
      if (comm.rank() == 0) throw std::runtime_error("original failure");
      comm.barrier();
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "original failure");
  }
}

TEST(Failure, HealthyJobAfterFailedJob) {
  // A failed job must not poison subsequent jobs (no global state).
  EXPECT_THROW(run(2,
                   [](Comm&) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  int ok = 0;
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) ok = 1;
    comm.barrier();
  });
  EXPECT_EQ(ok, 1);
}

TEST(Failure, RunRejectsNonPositiveRankCountByContract) {
  // Contract violations abort; we only verify the positive path here and
  // exercise 1-rank jobs as the boundary.
  run(1, [](Comm& comm) { EXPECT_EQ(comm.size(), 1); });
}

TEST(Failure, SplitBlockedPeersUnwind) {
  EXPECT_THROW(run(4,
                   [](Comm& comm) {
                     if (comm.rank() == 1)
                       throw std::runtime_error("dies before split");
                     Comm sub = comm.split(0, comm.rank());
                     sub.barrier();
                   }),
               std::runtime_error);
}

// ---- rank death at each pipeline phase of the real writer ----

/// One rank dies at a chosen phase of the two-phase write pipeline (via
/// the fault injector); whatever phase it is, the surviving ranks must
/// unwind instead of deadlocking, the caller must see the RankDeath, and
/// the journal must make the interrupted write detectable on disk.
class PipelinePhaseDeath
    : public ::testing::TestWithParam<spio::faultsim::WritePhase> {};

TEST_P(PipelinePhaseDeath, PropagatesAndLeavesDetectableState) {
  const spio::faultsim::WritePhase phase = GetParam();
  spio::faultsim::FaultPlan plan;
  plan.deaths.push_back({2, phase});
  spio::faultsim::FaultInjector inj(plan, 4);

  spio::TempDir dir("spio-phase-death");
  const spio::PatchDecomposition decomp(spio::Box3::unit(), {2, 2, 1});
  try {
    run(4, RunOptions{&inj}, [&](Comm& comm) {
      spio::WriterConfig cfg;
      cfg.dir = dir.path();
      cfg.factor = {2, 1, 1};
      cfg.faults = &inj;
      const auto local = spio::workload::uniform(
          spio::Schema::uintah(), decomp.patch(comm.rank()), 40,
          spio::stream_seed(11, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * 40);
      spio::write_dataset(comm, decomp, local, cfg);
    });
    FAIL() << "write survived a scheduled rank death";
  } catch (const spio::faultsim::RankDeath& e) {
    EXPECT_NE(std::string(e.what())
                  .find(spio::faultsim::phase_name(phase)),
              std::string::npos);
  }

  // The journal is opened before any phase begins, so every death leaves
  // an interrupted write that repair can clear.
  EXPECT_TRUE(spio::WriteJournal::present(dir.path()));
  EXPECT_EQ(spio::check_and_repair(dir.path(), /*remove_partial=*/true),
            spio::RepairOutcome::kRemovedPartial);
  EXPECT_FALSE(spio::WriteJournal::present(dir.path()));
}

INSTANTIATE_TEST_SUITE_P(
    AllPhases, PipelinePhaseDeath,
    ::testing::Values(spio::faultsim::WritePhase::kSetup,
                      spio::faultsim::WritePhase::kMetaExchange,
                      spio::faultsim::WritePhase::kParticleExchange,
                      spio::faultsim::WritePhase::kDataWrite,
                      spio::faultsim::WritePhase::kCommit),
    [](const ::testing::TestParamInfo<spio::faultsim::WritePhase>& info) {
      return std::string(spio::faultsim::phase_name(info.param));
    });

}  // namespace
}  // namespace simmpi
