#pragma once

/// \file generators.hpp
/// Synthetic particle workload generators reproducing the distributions
/// the paper evaluates on: the uniform Uintah-style checkpoint workload
/// (§5.1), the shrinking-coverage non-uniform distributions (§6, Fig. 10d),
/// gaussian cluster distributions (Fig. 10a-c), and an injection-over-time
/// workload (coal-jet style, Fig. 9).
///
/// All generators are deterministic: identical (patch, count, seed) inputs
/// produce identical particles.

#include <cstdint>

#include "util/box.hpp"
#include "util/rng.hpp"
#include "workload/particle_buffer.hpp"
#include "workload/schema.hpp"

namespace spio::workload {

/// Fill the non-position attributes of record `i` with plausible,
/// deterministic physics-like values (stress, density, volume, global id,
/// material type). A no-op for fields the schema does not have.
void fill_attributes(ParticleBuffer& buf, std::size_t i, std::uint64_t id,
                     Xoshiro256& rng);

/// `count` particles uniformly distributed in `patch`.
ParticleBuffer uniform(const Schema& schema, const Box3& patch,
                       std::uint64_t count, std::uint64_t seed,
                       std::uint64_t first_id = 0);

/// `count` particles drawn from `clusters` isotropic gaussian blobs whose
/// centers are uniform in `patch`; `sigma_frac` scales the blob width
/// relative to the patch. Positions are clamped into the patch so every
/// particle stays within its owner's extent.
ParticleBuffer gaussian_clusters(const Schema& schema, const Box3& patch,
                                 std::uint64_t count, int clusters,
                                 double sigma_frac, std::uint64_t seed,
                                 std::uint64_t first_id = 0);

/// The occupied sub-region used by the §6.1 experiment: the fraction
/// `coverage` (0, 1] of `domain` along the x axis (anchored at domain.lo),
/// matching "particles distributed over progressively smaller portions of
/// the domain".
Box3 coverage_region(const Box3& domain, double coverage);

/// `count` particles uniform in `patch ∩ region`; returns an empty buffer
/// when the intersection is empty. Used to build non-uniform global
/// distributions where some ranks hold no particles at all (Fig. 10d).
ParticleBuffer uniform_in_region(const Schema& schema, const Box3& patch,
                                 const Box3& region, std::uint64_t count,
                                 std::uint64_t seed,
                                 std::uint64_t first_id = 0);

/// Cosmology-style radial distribution: `count` particles drawn from a
/// Plummer sphere (density ~ (1 + r²/a²)^(-5/2)) centered in `patch`,
/// with scale radius `a = scale_frac * min patch extent`, clamped into
/// the patch. The centrally-concentrated profile is the classic N-body
/// halo model — the paper's cosmology use case (HACC, Dark Sky).
ParticleBuffer plummer_sphere(const Schema& schema, const Box3& patch,
                              std::uint64_t count, double scale_frac,
                              std::uint64_t seed,
                              std::uint64_t first_id = 0);

/// Injection workload: particles enter at the x-low face of `domain` and
/// drift toward x-high; at normalized time `t01` in [0, 1] the occupied
/// region is the first `t01` fraction of the domain with density decaying
/// along the jet. `count` is the number of particles in `patch` at `t01`
/// before density decay (the returned buffer may be smaller).
ParticleBuffer injection(const Schema& schema, const Box3& patch,
                         const Box3& domain, double t01, std::uint64_t count,
                         std::uint64_t seed, std::uint64_t first_id = 0);

}  // namespace spio::workload
