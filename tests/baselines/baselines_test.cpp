#include <gtest/gtest.h>

#include <set>

#include "baselines/fpp.hpp"
#include "baselines/ior_like.hpp"
#include "baselines/rank_order.hpp"
#include "baselines/shared_file.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/decomposition.hpp"
#include "workload/generators.hpp"

namespace spio::baselines {
namespace {

ParticleBuffer rank_particles(int rank, const PatchDecomposition& decomp,
                              std::uint64_t n) {
  return workload::uniform(Schema::uintah(), decomp.patch(rank), n,
                           stream_seed(77, static_cast<std::uint64_t>(rank)),
                           static_cast<std::uint64_t>(rank) * n);
}

std::set<double> id_set(const ParticleBuffer& buf) {
  const auto id = buf.schema().index_of("id");
  std::set<double> out;
  for (std::size_t i = 0; i < buf.size(); ++i) out.insert(buf.get_f64(i, id));
  return out;
}

TEST(Fpp, WriteReadRoundTrip) {
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 1});
  TempDir dir("fpp");
  simmpi::run(4, [&](simmpi::Comm& comm) {
    fpp_write(comm, rank_particles(comm.rank(), decomp, 100), dir.path());
  });
  const FppDataset ds = FppDataset::open(dir.path());
  EXPECT_EQ(ds.file_count(), 4);
  EXPECT_EQ(ds.total_particles(), 400u);
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(ds.read_rank_file(r).size(), 100u);
}

TEST(Fpp, QueryScansEverything) {
  const PatchDecomposition decomp(Box3::unit(), {4, 1, 1});
  TempDir dir("fpp");
  simmpi::run(4, [&](simmpi::Comm& comm) {
    fpp_write(comm, rank_particles(comm.rank(), decomp, 200), dir.path());
  });
  const FppDataset ds = FppDataset::open(dir.path());
  ReadStats rs;
  const Box3 q({0, 0, 0}, {0.25, 1, 1});  // only rank 0's slab
  const auto out = ds.query_box(q, &rs);
  EXPECT_EQ(out.size(), 200u);
  EXPECT_EQ(rs.files_opened, 4);           // still read every file
  EXPECT_EQ(rs.particles_scanned, 800u);   // and scanned every particle
}

TEST(Fpp, EmptyRankFileHandled) {
  const PatchDecomposition decomp(Box3::unit(), {2, 1, 1});
  TempDir dir("fpp");
  simmpi::run(2, [&](simmpi::Comm& comm) {
    const auto buf = comm.rank() == 0
                         ? rank_particles(0, decomp, 50)
                         : ParticleBuffer(Schema::uintah());
    fpp_write(comm, buf, dir.path());
  });
  const FppDataset ds = FppDataset::open(dir.path());
  EXPECT_EQ(ds.total_particles(), 50u);
  EXPECT_EQ(ds.read_rank_file(1).size(), 0u);
}

TEST(Fpp, TruncationDetected) {
  const PatchDecomposition decomp(Box3::unit(), {2, 1, 1});
  TempDir dir("fpp");
  simmpi::run(2, [&](simmpi::Comm& comm) {
    fpp_write(comm, rank_particles(comm.rank(), decomp, 10), dir.path());
  });
  auto bytes = read_file(dir.file("rank_0.bin"));
  bytes.pop_back();
  write_file(dir.file("rank_0.bin"), bytes);
  const FppDataset ds = FppDataset::open(dir.path());
  EXPECT_THROW(ds.read_rank_file(0), FormatError);
}

TEST(SharedFile, WriteReadRoundTrip) {
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 2});
  TempDir dir("shared");
  simmpi::run(8, [&](simmpi::Comm& comm) {
    shared_write(comm, rank_particles(comm.rank(), decomp, 64), dir.path());
  });
  const SharedDataset ds = SharedDataset::open(dir.path());
  EXPECT_EQ(ds.total_particles(), 512u);
  EXPECT_EQ(ds.writer_count(), 8);
  const auto all = ds.read_all();
  EXPECT_EQ(id_set(all).size(), 512u);
}

TEST(SharedFile, RankSlicesAreContiguousAndOrdered) {
  const PatchDecomposition decomp(Box3::unit(), {4, 1, 1});
  TempDir dir("shared");
  simmpi::run(4, [&](simmpi::Comm& comm) {
    shared_write(comm, rank_particles(comm.rank(), decomp, 50), dir.path());
  });
  const SharedDataset ds = SharedDataset::open(dir.path());
  const auto idf = Schema::uintah().index_of("id");
  for (int r = 0; r < 4; ++r) {
    const auto slice = ds.read_rank_slice(r);
    ASSERT_EQ(slice.size(), 50u);
    // Generator ids are rank*50 + i, so the slice identifies its writer.
    EXPECT_EQ(slice.get_f64(0, idf), r * 50.0);
  }
}

TEST(SharedFile, QueryScansWholeFile) {
  const PatchDecomposition decomp(Box3::unit(), {4, 1, 1});
  TempDir dir("shared");
  simmpi::run(4, [&](simmpi::Comm& comm) {
    shared_write(comm, rank_particles(comm.rank(), decomp, 100), dir.path());
  });
  const SharedDataset ds = SharedDataset::open(dir.path());
  ReadStats rs;
  const auto out = ds.query_box(Box3({0, 0, 0}, {0.25, 1, 1}), &rs);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(rs.particles_scanned, 400u);
}

TEST(SharedFile, VariableCountsPlaceCorrectOffsets) {
  const PatchDecomposition decomp(Box3::unit(), {3, 1, 1});
  TempDir dir("shared");
  simmpi::run(3, [&](simmpi::Comm& comm) {
    // Rank r writes r*30 particles.
    const auto buf = rank_particles(
        comm.rank(), decomp, static_cast<std::uint64_t>(comm.rank()) * 30);
    shared_write(comm, buf, dir.path());
  });
  const SharedDataset ds = SharedDataset::open(dir.path());
  EXPECT_EQ(ds.total_particles(), 90u);
  EXPECT_EQ(ds.read_rank_slice(0).size(), 0u);
  EXPECT_EQ(ds.read_rank_slice(2).size(), 60u);
}

TEST(RankOrder, GroupFilesMixDistantRegions) {
  // 8 ranks along x, groups of 4 consecutive ranks: group 0 holds ranks
  // 0-3 = the left half; its file spans half the domain, whereas a
  // spatially-aware 2-file layout would also produce half-domain files —
  // the difference shows with stride: ranks {0,4} in one spatial half.
  const PatchDecomposition decomp(Box3::unit(), {8, 1, 1});
  TempDir dir("rankorder");
  simmpi::run(8, [&](simmpi::Comm& comm) {
    rank_order_write(comm, rank_particles(comm.rank(), decomp, 100),
                     dir.path(), 4);
  });
  const RankOrderDataset ds = RankOrderDataset::open(dir.path());
  EXPECT_EQ(ds.file_count(), 2);
  EXPECT_EQ(ds.total_particles(), 800u);
  EXPECT_EQ(id_set(ds.query_box(Box3::unit())).size(), 800u);
}

TEST(RankOrder, UnevenTailGroup) {
  const PatchDecomposition decomp(Box3::unit(), {5, 1, 1});
  TempDir dir("rankorder");
  simmpi::run(5, [&](simmpi::Comm& comm) {
    rank_order_write(comm, rank_particles(comm.rank(), decomp, 40),
                     dir.path(), 2);
  });
  const RankOrderDataset ds = RankOrderDataset::open(dir.path());
  EXPECT_EQ(ds.file_count(), 3);
  EXPECT_EQ(ds.read_group_file(2).size(), 40u);  // lone rank 4
}

TEST(RankOrder, QueryMustTouchEveryFile) {
  const PatchDecomposition decomp(Box3::unit(), {8, 1, 1});
  TempDir dir("rankorder");
  simmpi::run(8, [&](simmpi::Comm& comm) {
    rank_order_write(comm, rank_particles(comm.rank(), decomp, 100),
                     dir.path(), 2);
  });
  const RankOrderDataset ds = RankOrderDataset::open(dir.path());
  ReadStats rs;
  const auto out = ds.query_box(Box3({0, 0, 0}, {0.125, 1, 1}), &rs);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(rs.files_opened, 4);
  EXPECT_EQ(rs.particles_scanned, 800u);
}

TEST(IorLike, FppModeWritesExpectedVolume) {
  TempDir dir("ior");
  simmpi::run(4, [&](simmpi::Comm& comm) {
    IorConfig cfg;
    cfg.dir = dir.path();
    cfg.block_bytes = 256 * 1024;
    cfg.transfer_bytes = 64 * 1024;
    const IorResult r = ior_write(comm, cfg);
    EXPECT_EQ(r.total_bytes, 4u * 256 * 1024);
    EXPECT_GT(r.write_seconds, 0.0);
    EXPECT_GT(r.throughput_gbs(), 0.0);
  });
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(file_size_bytes(dir.file("ior_" + std::to_string(r) + ".bin")),
              256u * 1024);
}

TEST(IorLike, SharedModeProducesOneFile) {
  TempDir dir("ior");
  simmpi::run(4, [&](simmpi::Comm& comm) {
    IorConfig cfg;
    cfg.dir = dir.path();
    cfg.mode = IorMode::kSharedFile;
    cfg.block_bytes = 128 * 1024;
    cfg.transfer_bytes = 32 * 1024;
    ior_write(comm, cfg);
  });
  EXPECT_EQ(file_size_bytes(dir.file("ior_shared.bin")), 4u * 128 * 1024);
}

TEST(IorLike, RejectsBadConfig) {
  EXPECT_THROW(simmpi::run(1,
                           [&](simmpi::Comm& comm) {
                             IorConfig cfg;  // dir unset
                             ior_write(comm, cfg);
                           }),
               ConfigError);
}

}  // namespace
}  // namespace spio::baselines
