#include "iosim/event_sim.hpp"

#include <gtest/gtest.h>

namespace spio::iosim {
namespace {

TEST(EventSim, SingleJob) {
  EventSim sim(1);
  const int id = sim.submit(0, 2.0, 3.0);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.completion(id), 5.0);
  EXPECT_DOUBLE_EQ(sim.makespan(), 5.0);
  EXPECT_DOUBLE_EQ(sim.busy_time(0), 3.0);
}

TEST(EventSim, FifoQueueingOnOneServer) {
  EventSim sim(1);
  const int a = sim.submit(0, 0.0, 2.0);
  const int b = sim.submit(0, 0.0, 2.0);
  const int c = sim.submit(0, 1.0, 1.0);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.completion(a), 2.0);
  EXPECT_DOUBLE_EQ(sim.completion(b), 4.0);
  EXPECT_DOUBLE_EQ(sim.completion(c), 5.0);
}

TEST(EventSim, ReadyTimeDelaysStart) {
  EventSim sim(1);
  const int a = sim.submit(0, 0.0, 1.0);
  const int b = sim.submit(0, 10.0, 1.0);  // server idles 9s
  sim.run();
  EXPECT_DOUBLE_EQ(sim.completion(a), 1.0);
  EXPECT_DOUBLE_EQ(sim.completion(b), 11.0);
}

TEST(EventSim, ParallelServersRunIndependently) {
  EventSim sim(2);
  const int a = sim.submit(0, 0.0, 5.0);
  const int b = sim.submit(1, 0.0, 3.0);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.completion(a), 5.0);
  EXPECT_DOUBLE_EQ(sim.completion(b), 3.0);
  EXPECT_DOUBLE_EQ(sim.makespan(), 5.0);
}

TEST(EventSim, EligibilityOrderBeatsSubmissionOrder) {
  // Job submitted later but ready earlier is served first (FIFO by ready
  // time, as a work-conserving server would).
  EventSim sim(1);
  const int late_ready = sim.submit(0, 5.0, 1.0);
  const int early_ready = sim.submit(0, 0.0, 1.0);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.completion(early_ready), 1.0);
  EXPECT_DOUBLE_EQ(sim.completion(late_ready), 6.0);
}

TEST(EventSim, PipelinedCreateThenTransferPattern) {
  // The storage model's pattern: creates stagger ready times; transfers
  // overlap with later creates. 4 files, creates every 1s, transfers 2s,
  // 2 resources: completions 3, 4, 5, 6 -> makespan 6, not 4 + 4*2.
  EventSim sim(2);
  std::vector<int> ids;
  for (int i = 0; i < 4; ++i)
    ids.push_back(sim.submit(i % 2, 1.0 * (i + 1), 2.0));
  sim.run();
  EXPECT_DOUBLE_EQ(sim.completion(ids[0]), 3.0);
  EXPECT_DOUBLE_EQ(sim.completion(ids[1]), 4.0);
  EXPECT_DOUBLE_EQ(sim.completion(ids[2]), 5.0);
  EXPECT_DOUBLE_EQ(sim.completion(ids[3]), 6.0);
  EXPECT_DOUBLE_EQ(sim.makespan(), 6.0);
}

TEST(EventSim, MakespanOfEmptySimIsZero) {
  EventSim sim(3);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.makespan(), 0.0);
}

TEST(EventSim, BusyTimeAccumulates) {
  EventSim sim(2);
  sim.submit(0, 0.0, 1.5);
  sim.submit(0, 0.0, 2.5);
  sim.submit(1, 0.0, 1.0);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.busy_time(0), 4.0);
  EXPECT_DOUBLE_EQ(sim.busy_time(1), 1.0);
}

TEST(EventSim, StableOrderForEqualReadyTimes) {
  EventSim sim(1);
  const int a = sim.submit(0, 1.0, 1.0);
  const int b = sim.submit(0, 1.0, 1.0);
  sim.run();
  EXPECT_LT(sim.completion(a), sim.completion(b));
}

}  // namespace
}  // namespace spio::iosim
