#include "faultsim/checked_io.hpp"

#include <vector>

#include "util/checksum.hpp"
#include "util/serialize.hpp"

namespace spio::faultsim {

std::uint64_t checked_write_file(const std::filesystem::path& path,
                                 std::span<const std::byte> data,
                                 FaultInjector* injector, int rank,
                                 const CheckedIoPolicy& policy) {
  SPIO_EXPECTS(policy.max_attempts > 0);
  const std::uint64_t want = crc64(data);

  for (int attempt = 1;; ++attempt) {
    const FileFaultKind fault =
        injector ? injector->next_file_fault(rank, path.filename().string())
                 : FileFaultKind::kNone;

    bool flush_failed = false;
    switch (fault) {
      case FileFaultKind::kTornWrite: {
        // Only a prefix reaches the disk (crash or full device mid-write).
        write_file(path, data.subspan(0, data.size() / 2));
        break;
      }
      case FileFaultKind::kCorruptByte: {
        std::vector<std::byte> bad(data.begin(), data.end());
        if (!bad.empty()) bad[bad.size() / 3] ^= std::byte{0x40};
        write_file(path, bad);
        break;
      }
      case FileFaultKind::kFailedSync: {
        // The data reached the page cache but the flush failed; the
        // on-disk state is untrustworthy, so the attempt must not count
        // as durable even though a read-back could succeed.
        write_file(path, data);
        flush_failed = true;
        break;
      }
      case FileFaultKind::kNone:
      case FileFaultKind::kBitRot: {
        write_file(path, data);
        break;
      }
    }

    // Read back and revalidate; a torn or corrupted write is caught here
    // and rewritten, up to the budget.
    bool valid = !flush_failed;
    if (valid) {
      const std::vector<std::byte> back = read_file(path);
      valid = crc64(back) == want;
    }
    if (valid) {
      if (fault == FileFaultKind::kBitRot) {
        // Corrupt *after* validation passed: silent on the write path by
        // construction; only reader-side checksums can detect it.
        std::vector<std::byte> rotted = read_file(path);
        if (!rotted.empty()) rotted[rotted.size() / 2] ^= std::byte{0x01};
        write_file(path, rotted);
      }
      return want;
    }

    SPIO_CHECK(attempt < policy.max_attempts, FaultError,
               "rank " << rank << " could not produce a valid copy of '"
                       << path.string() << "' after " << attempt
                       << " write attempts");
  }
}

}  // namespace spio::faultsim
