#include "simd/kernels.hpp"

#include "simd/kernels_isa.hpp"
#include "simd/simd_level.hpp"

namespace spio::simd {

namespace {

/// The mirror must describe exactly the records in `bytes`; anything
/// else means the caller paired a stale mirror with fresh bytes (or a
/// zero record size) and the safe answer is the scalar fallback.
bool mirror_matches(const PositionMirror& mirror,
                    std::span<const std::byte> bytes,
                    std::size_t record_size) {
  return record_size > 0 && bytes.size() % record_size == 0 &&
         mirror.size() == bytes.size() / record_size;
}

}  // namespace

bool filter_box(const PositionMirror& mirror, std::span<const std::byte> bytes,
                std::size_t record_size, const Box3& box, ParticleBuffer& out,
                std::uint64_t* kept) {
  const Level level = active_level();
  if (level == Level::kScalar || !mirror_matches(mirror, bytes, record_size))
    return false;
  const std::uint64_t k =
      level == Level::kAVX2
          ? detail::filter_box_avx2(mirror, bytes.data(), record_size, box,
                                    out)
          : detail::filter_box_sse2(mirror, bytes.data(), record_size, box,
                                    out);
  if (kept) *kept = k;
  return true;
}

bool filter_box_ranges(const PositionMirror& mirror,
                       std::span<const std::byte> bytes,
                       std::size_t record_size, const Box3& box,
                       std::span<const RangePred> preds, ParticleBuffer& out,
                       std::uint64_t* kept) {
  const Level level = active_level();
  if (level == Level::kScalar || !mirror_matches(mirror, bytes, record_size))
    return false;
  const std::uint64_t k =
      level == Level::kAVX2
          ? detail::filter_box_ranges_avx2(mirror, bytes.data(), record_size,
                                           box, preds.data(), preds.size(),
                                           out)
          : detail::filter_box_ranges_sse2(mirror, bytes.data(), record_size,
                                           box, preds.data(), preds.size(),
                                           out);
  if (kept) *kept = k;
  return true;
}

bool bin_by_owner(const PositionMirror& mirror,
                  std::span<const std::byte> bytes, std::size_t record_size,
                  const PatchDecomposition& decomp,
                  std::vector<ParticleBuffer>& outgoing) {
  const Level level = active_level();
  if (level == Level::kScalar || !mirror_matches(mirror, bytes, record_size) ||
      outgoing.size() != static_cast<std::size_t>(decomp.rank_count()))
    return false;
  if (level == Level::kAVX2) {
    detail::bin_by_owner_avx2(mirror, bytes.data(), record_size, decomp,
                              outgoing);
  } else {
    detail::bin_by_owner_sse2(mirror, bytes.data(), record_size, decomp,
                              outgoing);
  }
  return true;
}

}  // namespace spio::simd
