file(REMOVE_RECURSE
  "../bench/fig07_read_scaling"
  "../bench/fig07_read_scaling.pdb"
  "CMakeFiles/fig07_read_scaling.dir/fig07_read_scaling.cpp.o"
  "CMakeFiles/fig07_read_scaling.dir/fig07_read_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_read_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
