#pragma once

/// \file kd_partition.hpp
/// Density-refined spatial partitioning — the paper's §7 extension:
/// "creating an adaptive grid on the fly, which can re-balance the grid
/// partition size and placement based on the particle distribution."
///
/// A k-d-style recursive bisection of the occupied region: the heaviest
/// leaf (by estimated particle load) is repeatedly split along its
/// longest axis at the load-balancing position, until the target
/// partition count is reached. The load estimate comes from the same
/// per-rank extent/count table the adaptive scheme already exchanges
/// (§6), assuming uniform density within each rank's extent — no extra
/// communication is needed.

#include <memory>
#include <vector>

#include "core/aggregation_plan.hpp"
#include "core/spatial_partition.hpp"

namespace spio {

class KdPartitioning final : public SpatialPartitioning {
 public:
  /// Build over `region` (normally the union of occupied extents) with
  /// `target_partitions` leaves. `extents` is the rank-indexed table;
  /// ranks with zero particles contribute no load.
  /// Preconditions: non-empty region, target >= 1.
  static KdPartitioning build(const Box3& region,
                              const std::vector<RankExtent>& extents,
                              int target_partitions);

  int partition_count() const override {
    return static_cast<int>(leaves_.size());
  }
  int partition_of_point(const Vec3d& p) const override;
  Box3 partition_box(int idx) const override;
  Box3 region() const override { return region_; }

  /// Estimated particle load of leaf `idx` (for tests and diagnostics).
  double leaf_load(int idx) const;

 private:
  struct Node {
    // Interior: split axis/position and children; leaf: leaf index.
    int axis = -1;  // -1 marks a leaf
    double pos = 0;
    int left = -1;
    int right = -1;
    int leaf = -1;
  };
  struct Leaf {
    Box3 box;
    double load = 0;
    int node = -1;
  };

  KdPartitioning() = default;

  Box3 region_;
  std::vector<Node> nodes_;
  std::vector<Leaf> leaves_;
};

}  // namespace spio
