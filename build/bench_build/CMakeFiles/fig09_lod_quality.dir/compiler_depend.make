# Empty compiler generated dependencies file for fig09_lod_quality.
# This may be replaced when dependencies are built.
