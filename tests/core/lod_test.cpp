#include "core/lod.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "workload/generators.hpp"

namespace spio {
namespace {

TEST(LodLevels, PaperExampleHundredParticles) {
  // §3.4: "reading a dataset containing 100 particles on one core (n = 1)
  // with P = 32 and S = 2, the first level will contain 32 particles, the
  // second 64 and the third the remaining four".
  const LodParams p{32, 2.0};
  EXPECT_EQ(lod_level_size_capped(p, 1, 0, 100), 32u);
  EXPECT_EQ(lod_level_size_capped(p, 1, 1, 100), 64u);
  EXPECT_EQ(lod_level_size_capped(p, 1, 2, 100), 4u);
  EXPECT_EQ(lod_level_size_capped(p, 1, 3, 100), 0u);
  EXPECT_EQ(lod_level_count(p, 1, 100), 3);
}

TEST(LodLevels, PaperFigure8Configuration) {
  // §5.4: 2^31 particles read by n=64 cores with P=32, S=2:
  // "l = log2(2^31 / (64·32)) = 20" — level indices run 0..20.
  const LodParams p{32, 2.0};
  const std::uint64_t total = 1ull << 31;
  const int count = lod_level_count(p, 64, total);
  EXPECT_EQ(count, 21);         // levels 0..20 are non-empty
  EXPECT_EQ(count - 1, 20);     // the paper's maximum level index
  // The last level holds exactly the remainder: cumulative through level
  // 19 is 64*32*(2^20 - 1) = 2^31 - 2^11.
  EXPECT_EQ(lod_level_size_capped(p, 64, 20, total), 1ull << 11);
}

TEST(LodLevels, NominalSizesFollowGeometricLaw) {
  const LodParams p{32, 2.0};
  EXPECT_EQ(lod_level_size(p, 1, 0), 32u);
  EXPECT_EQ(lod_level_size(p, 1, 5), 32u * 32);
  EXPECT_EQ(lod_level_size(p, 64, 0), 64u * 32);
  // Non-integral scale factors round to nearest.
  const LodParams p15{10, 1.5};
  EXPECT_EQ(lod_level_size(p15, 1, 1), 15u);
  EXPECT_EQ(lod_level_size(p15, 1, 2), 23u);  // 22.5 rounds up
}

TEST(LodLevels, CumulativeSaturatesAtTotal) {
  const LodParams p{32, 2.0};
  EXPECT_EQ(lod_cumulative(p, 1, 0, 100), 0u);
  EXPECT_EQ(lod_cumulative(p, 1, 1, 100), 32u);
  EXPECT_EQ(lod_cumulative(p, 1, 2, 100), 96u);
  EXPECT_EQ(lod_cumulative(p, 1, 3, 100), 100u);
  EXPECT_EQ(lod_cumulative(p, 1, 50, 100), 100u);
}

TEST(LodLevels, LevelSizesSumToTotalProperty) {
  const LodParams p{7, 3.0};
  for (const std::uint64_t total : {0ull, 1ull, 6ull, 7ull, 1000ull, 12345ull}) {
    for (const int n : {1, 3, 16}) {
      const int levels = lod_level_count(p, n, total);
      std::uint64_t sum = 0;
      for (int l = 0; l < levels + 2; ++l)
        sum += lod_level_size_capped(p, n, l, total);
      EXPECT_EQ(sum, total) << "total=" << total << " n=" << n;
      if (total > 0) {
        EXPECT_GT(lod_level_size_capped(p, n, levels - 1, total), 0u);
        EXPECT_EQ(lod_level_size_capped(p, n, levels, total), 0u);
      }
    }
  }
}

TEST(LodLevels, MoreReadersMeanFewerLevels) {
  const LodParams p{32, 2.0};
  const std::uint64_t total = 1u << 20;
  EXPECT_GT(lod_level_count(p, 1, total), lod_level_count(p, 64, total));
}

TEST(LodLevels, ZeroTotalHasNoLevels) {
  EXPECT_EQ(lod_level_count(LodParams{}, 1, 0), 0);
}

TEST(LodLevels, UnitScaleFactorGivesEqualLevels) {
  const LodParams p{10, 1.0};
  EXPECT_EQ(lod_level_count(p, 1, 100), 10);
  EXPECT_EQ(lod_level_size_capped(p, 1, 4, 100), 10u);
}

TEST(LodParamsStruct, Validity) {
  EXPECT_TRUE(LodParams{}.valid());
  EXPECT_FALSE((LodParams{0, 2.0}).valid());
  EXPECT_FALSE((LodParams{32, 0.5}).valid());
}

TEST(LodLevels, FormulaPropertyForNonDefaultScaleFactors) {
  // Property sweep over non-default S: every level obeys the paper's
  // n·P·S^l law (rounded), capped sizes partition the total, and the
  // cumulative prefix is monotone. Exercises S values that do not divide
  // totals evenly.
  for (const double s : {1.3, 1.7, 2.5, 4.0}) {
    const LodParams p{13, s};
    for (const int n : {1, 2, 5}) {
      for (const std::uint64_t total : {0ull, 1ull, 13ull, 999ull, 40000ull}) {
        const int levels = lod_level_count(p, n, total);
        std::uint64_t sum = 0;
        std::uint64_t prev_cum = 0;
        for (int l = 0; l < levels; ++l) {
          const std::uint64_t nominal = lod_level_size(p, n, l);
          const std::uint64_t expected = static_cast<std::uint64_t>(
              std::llround(n * 13 * std::pow(s, l)));
          EXPECT_EQ(nominal, expected)
              << "S=" << s << " n=" << n << " l=" << l;
          EXPECT_LE(lod_level_size_capped(p, n, l, total), nominal);
          sum += lod_level_size_capped(p, n, l, total);
          const std::uint64_t cum = lod_cumulative(p, n, l + 1, total);
          EXPECT_GE(cum, prev_cum);
          EXPECT_EQ(cum, sum);
          prev_cum = cum;
        }
        EXPECT_EQ(sum, total) << "S=" << s << " n=" << n;
      }
    }
  }
}

TEST(LodLevels, DegenerateTotalsHaveConsistentEdges) {
  const LodParams p{32, 2.0};
  // No particles: no levels, empty prefixes at every depth.
  EXPECT_EQ(lod_level_count(p, 1, 0), 0);
  EXPECT_EQ(lod_level_size_capped(p, 1, 0, 0), 0u);
  EXPECT_EQ(lod_cumulative(p, 1, 5, 0), 0u);
  // A single particle: exactly one level holding it.
  EXPECT_EQ(lod_level_count(p, 1, 1), 1);
  EXPECT_EQ(lod_level_size_capped(p, 1, 0, 1), 1u);
  EXPECT_EQ(lod_cumulative(p, 1, 1, 1), 1u);
  // Readers outnumbering particles still terminate with one level.
  EXPECT_EQ(lod_level_count(p, 1024, 1), 1);
}

// ---- shuffle ----

ParticleBuffer numbered_particles(std::size_t n) {
  ParticleBuffer buf(Schema::uintah());
  const auto id = buf.schema().index_of("id");
  for (std::size_t i = 0; i < n; ++i) {
    buf.append_uninitialized();
    buf.set_position(i, Vec3d(static_cast<double>(i), 0, 0));
    buf.set_f64(i, id, 0, static_cast<double>(i));
  }
  return buf;
}

std::multiset<double> ids_of(const ParticleBuffer& buf) {
  const auto id = buf.schema().index_of("id");
  std::multiset<double> out;
  for (std::size_t i = 0; i < buf.size(); ++i) out.insert(buf.get_f64(i, id));
  return out;
}

TEST(LodShuffle, RandomShuffleIsAPermutation) {
  ParticleBuffer buf = numbered_particles(500);
  const auto before = ids_of(buf);
  lod_reorder(buf, 42, LodHeuristic::kRandom);
  EXPECT_EQ(ids_of(buf), before);
  EXPECT_EQ(buf.size(), 500u);
}

TEST(LodShuffle, DeterministicInSeed) {
  ParticleBuffer a = numbered_particles(200);
  ParticleBuffer b = numbered_particles(200);
  lod_reorder(a, 7);
  lod_reorder(b, 7);
  EXPECT_EQ(std::memcmp(a.bytes().data(), b.bytes().data(), a.byte_size()), 0);
}

TEST(LodShuffle, DeterministicAcrossManySeedsAndHeuristics) {
  // Seeded property: for every heuristic, replaying any seed reproduces
  // the permutation byte for byte (the chaos harness's golden-run
  // comparisons depend on this).
  for (const auto h : {LodHeuristic::kRandom, LodHeuristic::kStride,
                       LodHeuristic::kStratified}) {
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
      ParticleBuffer a = numbered_particles(151);
      ParticleBuffer b = numbered_particles(151);
      lod_reorder(a, seed, h);
      lod_reorder(b, seed, h);
      ASSERT_EQ(std::memcmp(a.bytes().data(), b.bytes().data(),
                            a.byte_size()),
                0)
          << "heuristic=" << static_cast<int>(h) << " seed=" << seed;
      EXPECT_EQ(ids_of(a), ids_of(numbered_particles(151)));
    }
  }
}

TEST(LodShuffle, DifferentSeedsDiffer) {
  ParticleBuffer a = numbered_particles(200);
  ParticleBuffer b = numbered_particles(200);
  lod_reorder(a, 7);
  lod_reorder(b, 8);
  EXPECT_NE(std::memcmp(a.bytes().data(), b.bytes().data(), a.byte_size()), 0);
}

TEST(LodShuffle, ActuallyMovesRecords) {
  ParticleBuffer buf = numbered_particles(1000);
  lod_reorder(buf, 1);
  const auto id = buf.schema().index_of("id");
  int in_place = 0;
  for (std::size_t i = 0; i < buf.size(); ++i)
    in_place += (buf.get_f64(i, id) == static_cast<double>(i));
  EXPECT_LT(in_place, 50);  // a uniform permutation fixes ~1 element
}

TEST(LodShuffle, PrefixIsUnbiasedSample) {
  // Property behind the LOD format: the first k particles of a shuffled
  // buffer are a uniform sample. Check the mean of ids in a 10% prefix
  // over several seeds stays near the population mean.
  const std::size_t n = 2000;
  const auto idf = Schema::uintah().index_of("id");
  double mean_of_means = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    ParticleBuffer buf = numbered_particles(n);
    lod_reorder(buf, static_cast<std::uint64_t>(t));
    double m = 0;
    for (std::size_t i = 0; i < n / 10; ++i) m += buf.get_f64(i, idf);
    mean_of_means += m / (n / 10.0);
  }
  mean_of_means /= trials;
  EXPECT_NEAR(mean_of_means, (n - 1) / 2.0, n * 0.03);
}

TEST(LodShuffle, EmptyAndSingletonAreNoOps) {
  ParticleBuffer empty(Schema::uintah());
  lod_reorder(empty, 3);
  EXPECT_TRUE(empty.empty());
  ParticleBuffer one = numbered_particles(1);
  lod_reorder(one, 3);
  EXPECT_EQ(one.get_f64(0, one.schema().index_of("id")), 0.0);
}

TEST(LodShuffle, StrideHeuristicIsAPermutation) {
  ParticleBuffer buf = numbered_particles(300);
  const auto before = ids_of(buf);
  lod_reorder(buf, 0, LodHeuristic::kStride);
  EXPECT_EQ(ids_of(buf), before);
}

TEST(LodShuffle, StratifiedIsAPermutation) {
  ParticleBuffer buf = numbered_particles(777);
  const auto before = ids_of(buf);
  lod_reorder(buf, 5, LodHeuristic::kStratified);
  EXPECT_EQ(ids_of(buf), before);
}

TEST(LodShuffle, StratifiedIsDeterministicInSeed) {
  ParticleBuffer a = numbered_particles(300);
  ParticleBuffer b = numbered_particles(300);
  lod_reorder(a, 9, LodHeuristic::kStratified);
  lod_reorder(b, 9, LodHeuristic::kStratified);
  EXPECT_EQ(std::memcmp(a.bytes().data(), b.bytes().data(), a.byte_size()),
            0);
}

TEST(LodShuffle, StratifiedPrefixCoversSpaceBetterThanRandom) {
  // Clustered particles, 2% prefix: the stratified order must hit at
  // least as many occupied spatial cells as a random shuffle (usually
  // strictly more — that is its purpose).
  auto clustered = [] {
    return workload::gaussian_clusters(Schema::uintah(),
                                       Box3({0, 0, 0}, {1, 1, 1}), 5000, 6,
                                       0.08, 99);
  };
  auto cells_hit = [](const ParticleBuffer& buf, std::size_t prefix) {
    std::set<int> cells;
    for (std::size_t i = 0; i < prefix; ++i) {
      const Vec3d p = buf.position(i);
      const int cx = std::min(7, static_cast<int>(p.x * 8));
      const int cy = std::min(7, static_cast<int>(p.y * 8));
      const int cz = std::min(7, static_cast<int>(p.z * 8));
      cells.insert((cz * 8 + cy) * 8 + cx);
    }
    return cells.size();
  };

  double random_avg = 0, strat_avg = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    ParticleBuffer r = clustered();
    ParticleBuffer s = clustered();
    lod_reorder(r, static_cast<std::uint64_t>(t), LodHeuristic::kRandom);
    lod_reorder(s, static_cast<std::uint64_t>(t), LodHeuristic::kStratified);
    random_avg += static_cast<double>(cells_hit(r, 100));
    strat_avg += static_cast<double>(cells_hit(s, 100));
  }
  EXPECT_GE(strat_avg, random_avg);
}

TEST(LodShuffle, StratifiedHandlesCoincidentPositions) {
  // All particles at one point: Morton keys all tie; the shuffle must
  // still be a valid permutation.
  ParticleBuffer buf(Schema::uintah());
  const auto id = buf.schema().index_of("id");
  for (int i = 0; i < 50; ++i) {
    buf.append_uninitialized();
    buf.set_position(static_cast<std::size_t>(i), {0.5, 0.5, 0.5});
    buf.set_f64(static_cast<std::size_t>(i), id, 0, i);
  }
  const auto before = ids_of(buf);
  lod_reorder(buf, 1, LodHeuristic::kStratified);
  EXPECT_EQ(ids_of(buf), before);
}

TEST(LodShuffle, StrideSpreadsPrefixAcrossInput) {
  ParticleBuffer buf = numbered_particles(256);
  lod_reorder(buf, 0, LodHeuristic::kStride);
  const auto id = buf.schema().index_of("id");
  // Bit-reversed order: first entries are 0, 128, 64, 192, ...
  EXPECT_EQ(buf.get_f64(0, id), 0.0);
  EXPECT_EQ(buf.get_f64(1, id), 128.0);
  EXPECT_EQ(buf.get_f64(2, id), 64.0);
  EXPECT_EQ(buf.get_f64(3, id), 192.0);
}

}  // namespace
}  // namespace spio
