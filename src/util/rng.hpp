#pragma once

/// \file rng.hpp
/// Deterministic random number generation. The library never uses
/// `std::random_device` or global state: every stochastic step (particle
/// generation, level-of-detail shuffling) is seeded explicitly so that
/// datasets, shuffles and tests are bit-reproducible across runs and rank
/// counts.

#include <cstdint>
#include <limits>

namespace spio {

/// SplitMix64: used to expand a user seed into well-distributed stream
/// seeds (one per rank / partition). Reference: Steele, Lea, Flood 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Small, fast, and high quality;
/// satisfies the UniformRandomBitGenerator requirements so it can be used
/// with standard distributions, but the helpers below are preferred as they
/// are reproducible across standard library implementations.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 as recommended by the xoshiro authors.
  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): 53 random mantissa bits.
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Unbiased uniform integer in [0, bound) via Lemire rejection.
  /// Precondition: bound > 0.
  constexpr std::uint64_t uniform_index(std::uint64_t bound) {
    // Classic modulo-rejection; reproducible and unbiased.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Standard normal deviate (Box-Muller, reproducible).
  double normal();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

/// Derive a per-stream seed from a base seed and a stream index (e.g. the
/// rank or the aggregation-partition id). Streams with distinct indices are
/// statistically independent.
constexpr std::uint64_t stream_seed(std::uint64_t base, std::uint64_t stream) {
  SplitMix64 sm(base ^ (0xd1b54a32d192ed03ULL * (stream + 1)));
  sm.next();
  return sm.next();
}

}  // namespace spio
