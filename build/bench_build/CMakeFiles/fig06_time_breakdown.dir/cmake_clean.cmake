file(REMOVE_RECURSE
  "../bench/fig06_time_breakdown"
  "../bench/fig06_time_breakdown.pdb"
  "CMakeFiles/fig06_time_breakdown.dir/fig06_time_breakdown.cpp.o"
  "CMakeFiles/fig06_time_breakdown.dir/fig06_time_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_time_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
