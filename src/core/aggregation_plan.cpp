#include "core/aggregation_plan.hpp"

#include <algorithm>
#include <cmath>

#include "core/kd_partition.hpp"
#include "util/error.hpp"

namespace spio {

namespace {

std::vector<int> place_aggregators(int nranks, int nparts,
                                   AggregatorPlacement placement) {
  switch (placement) {
    case AggregatorPlacement::kUniform:
      return select_aggregators_uniform(nranks, nparts);
    case AggregatorPlacement::kPacked:
      return select_aggregators_packed(nranks, nparts);
  }
  throw ConfigError("unknown aggregator placement");
}

/// Map the near-cubic factors of `k` onto axes so the largest factor lands
/// on the region's longest axis (keeps adaptive partitions roughly cubic).
Vec3i dims_for_region(const Box3& region, int k) {
  const Vec3i f = near_cubic_factors(k);  // sorted descending
  const Vec3d ext = region.size();
  // Rank axes by extent, descending.
  int axes[3] = {0, 1, 2};
  std::sort(axes, axes + 3, [&](int a, int b) { return ext[a] > ext[b]; });
  Vec3i dims;
  dims[axes[0]] = f.x;
  dims[axes[1]] = f.y;
  dims[axes[2]] = f.z;
  return dims;
}

/// Number of adaptive partitions: one per `group_size` occupied ranks.
int adaptive_partition_count(int occupied_ranks,
                             const PartitionFactor& factor) {
  return std::clamp<int>(
      static_cast<int>((occupied_ranks + factor.group_size() - 1) /
                       factor.group_size()),
      1, occupied_ranks);
}

}  // namespace

AggregationPlan AggregationPlan::non_adaptive(const PatchDecomposition& decomp,
                                              const PartitionFactor& factor,
                                              AggregatorPlacement placement) {
  SPIO_CHECK(factor.valid(), ConfigError,
             "invalid partition factor " << factor.to_string());
  auto grid = std::make_shared<AggregationGrid>(
      AggregationGrid::aligned(decomp, factor));
  std::vector<Box3> extents(static_cast<std::size_t>(decomp.rank_count()));
  for (int r = 0; r < decomp.rank_count(); ++r)
    extents[static_cast<std::size_t>(r)] = decomp.patch(r);
  AggregationPlan plan = build(grid, decomp.rank_count(), placement, extents,
                               /*aligned=*/true, /*adaptive=*/false);
  plan.grid_ = std::move(grid);
  return plan;
}

AggregationPlan AggregationPlan::non_adaptive_with_extents(
    const PatchDecomposition& decomp, const PartitionFactor& factor,
    AggregatorPlacement placement, const std::vector<RankExtent>& extents) {
  SPIO_CHECK(factor.valid(), ConfigError,
             "invalid partition factor " << factor.to_string());
  SPIO_CHECK(static_cast<int>(extents.size()) == decomp.rank_count(),
             ConfigError,
             "extent table has " << extents.size() << " entries for "
                                 << decomp.rank_count() << " ranks");
  auto grid = std::make_shared<AggregationGrid>(
      AggregationGrid::aligned(decomp, factor));
  AggregationPlan plan =
      build(grid, decomp.rank_count(), placement, sender_extents_of(extents),
            /*aligned=*/false, /*adaptive=*/false);
  plan.grid_ = std::move(grid);
  return plan;
}

AggregationPlan::Occupancy AggregationPlan::occupancy_of(
    const PatchDecomposition& decomp,
    const std::vector<RankExtent>& extents) {
  Occupancy occ;
  occ.region = Box3::empty();
  for (const RankExtent& e : extents) {
    if (e.particle_count == 0) continue;
    ++occ.ranks;
    occ.region.extend(e.bounds);
    // A single particle yields a degenerate (zero-volume) tight box; it
    // still marks its location as occupied.
    occ.region.extend(e.bounds.lo);
  }
  if (occ.ranks == 0) return occ;
  // Guard against a degenerate occupied box (all particles in one plane
  // or point): give it a minimal physical extent within the domain.
  for (int a = 0; a < 3; ++a) {
    if (occ.region.hi[a] <= occ.region.lo[a]) {
      const double pad =
          std::max(1e-12, 1e-9 * std::abs(occ.region.lo[a])) +
          1e-9 * (decomp.domain().hi[a] - decomp.domain().lo[a]);
      occ.region.hi[a] = occ.region.lo[a] + pad;
    }
  }
  return occ;
}

std::vector<Box3> AggregationPlan::sender_extents_of(
    const std::vector<RankExtent>& extents) {
  std::vector<Box3> out(extents.size());
  for (std::size_t r = 0; r < extents.size(); ++r) {
    out[r] = extents[r].particle_count > 0 ? extents[r].bounds : Box3::empty();
  }
  return out;
}

AggregationPlan AggregationPlan::empty_plan(const PatchDecomposition& decomp,
                                            AggregatorPlacement placement) {
  auto grid = std::make_shared<AggregationGrid>(decomp.domain(),
                                                Vec3i{1, 1, 1});
  AggregationPlan plan = build(grid, decomp.rank_count(), placement, {},
                               /*aligned=*/false, /*adaptive=*/true);
  plan.grid_ = std::move(grid);
  return plan;
}

AggregationPlan AggregationPlan::adaptive(
    const PatchDecomposition& decomp, const PartitionFactor& factor,
    AggregatorPlacement placement, const std::vector<RankExtent>& extents) {
  SPIO_CHECK(factor.valid(), ConfigError,
             "invalid partition factor " << factor.to_string());
  SPIO_CHECK(static_cast<int>(extents.size()) == decomp.rank_count(),
             ConfigError,
             "extent table has " << extents.size() << " entries for "
                                 << decomp.rank_count() << " ranks");
  const Occupancy occ = occupancy_of(decomp, extents);
  if (occ.ranks == 0) return empty_plan(decomp, placement);

  const int k = adaptive_partition_count(occ.ranks, factor);
  auto grid = std::make_shared<AggregationGrid>(
      occ.region, dims_for_region(occ.region, k));
  AggregationPlan plan =
      build(grid, decomp.rank_count(), placement, sender_extents_of(extents),
            /*aligned=*/false, /*adaptive=*/true);
  plan.grid_ = std::move(grid);
  return plan;
}

AggregationPlan AggregationPlan::adaptive_refined(
    const PatchDecomposition& decomp, const PartitionFactor& factor,
    AggregatorPlacement placement, const std::vector<RankExtent>& extents) {
  SPIO_CHECK(factor.valid(), ConfigError,
             "invalid partition factor " << factor.to_string());
  SPIO_CHECK(static_cast<int>(extents.size()) == decomp.rank_count(),
             ConfigError,
             "extent table has " << extents.size() << " entries for "
                                 << decomp.rank_count() << " ranks");
  const Occupancy occ = occupancy_of(decomp, extents);
  if (occ.ranks == 0) return empty_plan(decomp, placement);

  const int k = adaptive_partition_count(occ.ranks, factor);
  auto kd = std::make_shared<KdPartitioning>(
      KdPartitioning::build(occ.region, extents, k));
  return build(kd, decomp.rank_count(), placement,
               sender_extents_of(extents),
               /*aligned=*/false, /*adaptive=*/true);
}

AggregationPlan AggregationPlan::build(
    std::shared_ptr<const SpatialPartitioning> part, int nranks,
    AggregatorPlacement placement, const std::vector<Box3>& rank_extents,
    bool aligned, bool adaptive) {
  AggregationPlan plan;
  plan.part_ = std::move(part);
  plan.aligned_ = aligned;
  plan.adaptive_ = adaptive;
  const int nparts = plan.part_->partition_count();
  plan.aggregators_ = place_aggregators(nranks, nparts, placement);
  plan.senders_.assign(static_cast<std::size_t>(nparts), {});
  plan.targets_.assign(static_cast<std::size_t>(nranks), {});

  for (int r = 0; r < static_cast<int>(rank_extents.size()); ++r) {
    const Box3& ext = rank_extents[static_cast<std::size_t>(r)];
    if (ext.lo.x > ext.hi.x) continue;  // inverted sentinel: rank is idle
    if (aligned) {
      // Whole patch lies in one partition; locate it by the center point.
      const int p = plan.part_->partition_of_point(ext.center());
      plan.senders_[static_cast<std::size_t>(p)].push_back(r);
      plan.targets_[static_cast<std::size_t>(r)].push_back(p);
    } else {
      for (int p = 0; p < nparts; ++p) {
        if (plan.part_->partition_box(p).overlaps_closed(ext)) {
          plan.senders_[static_cast<std::size_t>(p)].push_back(r);
          plan.targets_[static_cast<std::size_t>(r)].push_back(p);
        }
      }
    }
  }
  return plan;
}

const AggregationGrid& AggregationPlan::grid() const {
  SPIO_EXPECTS(grid_ != nullptr);
  return *grid_;
}

int AggregationPlan::partition_owned_by(int rank) const {
  for (int p = 0; p < partition_count(); ++p)
    if (aggregators_[static_cast<std::size_t>(p)] == rank) return p;
  return -1;
}

}  // namespace spio
