/// \file abl_shuffle_heuristic.cpp
/// Ablation: LOD ordering heuristics (§3.4 — "the order of particles used
/// to create the levels of detail can be defined using different kinds of
/// heuristics"). Compares the paper's random reshuffle against a
/// deterministic bit-reversal stride on (a) reorder cost and (b) prefix
/// representativeness (density RMSE of a 10% prefix), for a clustered
/// dataset where input order correlates with space.

#include <chrono>
#include <iostream>
#include <vector>

#include "bench_env.hpp"
#include "core/lod.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace spio;

namespace {

constexpr int kGrid = 16;

std::vector<double> density(const ParticleBuffer& buf, std::size_t count,
                            const Box3& box) {
  std::vector<double> field(kGrid * kGrid * kGrid, 0.0);
  count = std::min(count, buf.size());
  for (std::size_t i = 0; i < count; ++i) {
    const Vec3d rel = (buf.position(i) - box.lo) / box.size();
    const int x = std::min(kGrid - 1, static_cast<int>(rel.x * kGrid));
    const int y = std::min(kGrid - 1, static_cast<int>(rel.y * kGrid));
    const int z = std::min(kGrid - 1, static_cast<int>(rel.z * kGrid));
    field[static_cast<std::size_t>((z * kGrid + y) * kGrid + x)] += 1.0;
  }
  for (double& v : field) v /= static_cast<double>(count);
  return field;
}

}  // namespace

int main() {
  spio::bench::init_observability();
  const Box3 box = Box3::unit();
  constexpr std::size_t kN = 200000;

  // Clustered particles appended cluster by cluster: the worst case for
  // an unshuffled prefix, the interesting case for heuristics.
  ParticleBuffer base(Schema::uintah());
  {
    Xoshiro256 rng(5);
    for (int cluster = 0; cluster < 8; ++cluster) {
      const Box3 cell({0.25 * (cluster % 4), 0.5 * (cluster / 4), 0.0},
                      {0.25 * (cluster % 4) + 0.25, 0.5 * (cluster / 4) + 0.5,
                       1.0});
      const auto part = workload::gaussian_clusters(
          Schema::uintah(), cell, kN / 8, 2, 0.1,
          stream_seed(77, static_cast<std::uint64_t>(cluster)),
          static_cast<std::uint64_t>(cluster) * (kN / 8));
      base.append_bytes(part.bytes());
    }
  }
  const auto full_field = density(base, base.size(), box);

  Table t("Ablation: LOD ordering heuristic (200K clustered particles)",
          {"heuristic", "reorder (ms)", "10% prefix density RMSE"});

  struct Case {
    const char* name;
    LodHeuristic h;
    bool reorder;
  };
  const Case cases[] = {
      {"none (input order)", LodHeuristic::kRandom, false},
      {"random shuffle", LodHeuristic::kRandom, true},
      {"bit-reversal stride", LodHeuristic::kStride, true},
      {"morton-stratified", LodHeuristic::kStratified, true}};
  for (const Case& c : cases) {
    ParticleBuffer buf(Schema::uintah());
    buf.append_bytes(base.bytes());
    const auto t0 = std::chrono::steady_clock::now();
    if (c.reorder) lod_reorder(buf, 99, c.h);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const auto prefix_field = density(buf, buf.size() / 10, box);
    t.row()
        .add(c.name)
        .add_double(ms, 2)
        .add_sci(rmse(prefix_field, full_field), 3);
  }
  t.print(std::cout);
  std::cout << "\nan unshuffled prefix sees only the first clusters "
               "(large RMSE); the random\nshuffle gives an unbiased "
               "sample; the stride order is cheaper to compute in\n"
               "streaming settings but inherits input-order bias within "
               "levels.\n";
  return 0;
}
