#include "core/query_plan/zone_map.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/lod.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"
#include "workload/particle_buffer.hpp"

namespace spio {

std::uint32_t zone_file_count(const LodParams& lod, std::uint64_t n) {
  return n == 0 ? 0
               : static_cast<std::uint32_t>(lod_level_count(lod, 1, n));
}

std::uint64_t zone_begin(const LodParams& lod, std::uint32_t z,
                         std::uint64_t n) {
  return lod_cumulative(lod, 1, static_cast<int>(z), n);
}

const FileZones* ZoneMapTable::find(std::uint32_t aggregator_rank) const {
  const auto it = std::lower_bound(
      files.begin(), files.end(), aggregator_rank,
      [](const FileZones& f, std::uint32_t r) {
        return f.aggregator_rank < r;
      });
  return it != files.end() && it->aggregator_rank == aggregator_rank
             ? &*it
             : nullptr;
}

std::vector<std::byte> ZoneMapTable::serialize() const {
  BinaryWriter w;
  w.write<std::uint32_t>(kMagic);
  w.write<std::uint32_t>(kVersion);
  w.write<std::uint32_t>(static_cast<std::uint32_t>(range_count));
  w.write<std::uint64_t>(lod.P);
  w.write<double>(lod.S);
  w.write<std::uint32_t>(static_cast<std::uint32_t>(files.size()));
  for (const FileZones& f : files) {
    SPIO_EXPECTS(f.zones.size() ==
                 std::size_t{zone_file_count(lod, f.particle_count)} *
                     range_count);
    w.write<std::uint32_t>(f.aggregator_rank);
    w.write<std::uint64_t>(f.particle_count);
    w.write<std::uint32_t>(zone_file_count(lod, f.particle_count));
    for (const FieldRange& z : f.zones) {
      w.write<double>(z.min);
      w.write<double>(z.max);
    }
  }
  w.write<std::uint64_t>(crc64(w.bytes()));
  return w.take();
}

ZoneMapTable ZoneMapTable::deserialize(std::span<const std::byte> bytes) {
  SPIO_CHECK(bytes.size() > sizeof(std::uint64_t), FormatError,
             "zone sidecar truncated (" << bytes.size() << " bytes)");
  const std::span<const std::byte> body =
      bytes.first(bytes.size() - sizeof(std::uint64_t));
  std::uint64_t trailer;
  std::memcpy(&trailer, bytes.data() + body.size(), sizeof(trailer));
  SPIO_CHECK(trailer == crc64(body), FormatError,
             "zone sidecar CRC mismatch");

  BinaryReader r(body);
  ZoneMapTable t;
  SPIO_CHECK(r.read<std::uint32_t>() == kMagic, FormatError,
             "not a zone sidecar (bad magic)");
  SPIO_CHECK(r.read<std::uint32_t>() == kVersion, FormatError,
             "unsupported zone sidecar version");
  t.range_count = r.read<std::uint32_t>();
  t.lod.P = r.read<std::uint64_t>();
  t.lod.S = r.read<double>();
  SPIO_CHECK(t.lod.valid(), FormatError,
             "zone sidecar has invalid LOD parameters");
  const auto file_count = r.read<std::uint32_t>();
  t.files.reserve(file_count);
  for (std::uint32_t i = 0; i < file_count; ++i) {
    FileZones f;
    f.aggregator_rank = r.read<std::uint32_t>();
    f.particle_count = r.read<std::uint64_t>();
    SPIO_CHECK(f.particle_count > 0, FormatError,
               "zone sidecar entry " << i << " claims an empty file");
    SPIO_CHECK(t.files.empty() ||
                   t.files.back().aggregator_rank < f.aggregator_rank,
               FormatError, "zone sidecar entries out of order");
    const auto zones = r.read<std::uint32_t>();
    SPIO_CHECK(zones == zone_file_count(t.lod, f.particle_count),
               FormatError,
               "zone sidecar entry " << i
                                     << " violates the LOD zone-count law");
    f.zones.resize(std::size_t{zones} * t.range_count);
    for (FieldRange& z : f.zones) {
      z.min = r.read<double>();
      z.max = r.read<double>();
      SPIO_CHECK(!std::isnan(z.min) && !std::isnan(z.max) && z.min <= z.max,
                 FormatError,
                 "zone sidecar entry " << i << " has an invalid range");
    }
    t.files.push_back(std::move(f));
  }
  SPIO_CHECK(r.at_end(), FormatError,
             "zone sidecar has trailing bytes");
  return t;
}

void ZoneMapTable::save(const std::filesystem::path& dir) const {
  write_file(dir / kFileName, serialize());
}

ZoneMapTable ZoneMapTable::load(const std::filesystem::path& dir) {
  return deserialize(read_file(dir / kFileName));
}

bool ZoneMapTable::present(const std::filesystem::path& dir) {
  std::error_code ec;
  return std::filesystem::is_regular_file(dir / kFileName, ec);
}

std::vector<FieldRange> compute_zone_maps(const ParticleBuffer& buf,
                                          const LodParams& lod) {
  if (buf.empty()) return {};
  const Schema& s = buf.schema();

  struct Comp {
    std::size_t offset;
    bool f64;
  };
  std::vector<Comp> comps;
  for (std::size_t f = 0; f < s.field_count(); ++f) {
    const FieldDesc& fd = s.fields()[f];
    const std::size_t elem = field_type_size(fd.type);
    for (std::uint32_t c = 0; c < fd.components; ++c)
      comps.push_back({s.offset(f) + c * elem, fd.type == FieldType::kF64});
  }

  const std::uint64_t n = buf.size();
  const std::uint32_t zones = zone_file_count(lod, n);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<FieldRange> out(std::size_t{zones} * comps.size(),
                              FieldRange{kInf, -kInf});

  const std::byte* base = buf.bytes().data();
  const std::size_t rs = buf.record_size();
  std::uint32_t z = 0;
  std::uint64_t next = zone_begin(lod, 1, n);
  // Record-major, like compute_field_ranges: each record updates all of
  // its zone's component ranges while it sits in cache.
  for (std::uint64_t i = 0; i < n; ++i) {
    if (i == next) {
      ++z;
      next = zone_begin(lod, z + 1, n);
    }
    const std::byte* rec = base + i * rs;
    FieldRange* zr = out.data() + std::size_t{z} * comps.size();
    for (std::size_t c = 0; c < comps.size(); ++c) {
      double v;
      if (comps[c].f64) {
        std::memcpy(&v, rec + comps[c].offset, sizeof(double));
      } else {
        float fv;
        std::memcpy(&fv, rec + comps[c].offset, sizeof(float));
        v = static_cast<double>(fv);
      }
      if (std::isnan(v)) {
        // Filter kernels pass NaN, so the zone must match everything.
        zr[c] = {-kInf, kInf};
      } else {
        zr[c].min = std::min(zr[c].min, v);
        zr[c].max = std::max(zr[c].max, v);
      }
    }
  }
  return out;
}

std::vector<FieldRange> zone_union(const std::vector<FieldRange>& zones,
                                   std::size_t range_count) {
  SPIO_EXPECTS(range_count > 0 && zones.size() % range_count == 0);
  std::vector<FieldRange> out(zones.begin(),
                              zones.begin() + static_cast<std::ptrdiff_t>(
                                                  range_count));
  for (std::size_t i = range_count; i < zones.size(); ++i) {
    FieldRange& u = out[i % range_count];
    u.min = std::min(u.min, zones[i].min);
    u.max = std::max(u.max, zones[i].max);
  }
  return out;
}

bool zones_consistent(const ZoneMapTable& table,
                      const DatasetMetadata& meta) {
  if (table.range_count != meta.range_count()) return false;
  if (table.lod.P != meta.lod.P || table.lod.S != meta.lod.S) return false;
  for (const FileRecord& f : meta.files) {
    if (f.particle_count == 0) continue;  // no file on disk, no zones
    const FileZones* z = table.find(f.aggregator_rank);
    if (z == nullptr || z->particle_count != f.particle_count) return false;
  }
  return true;
}

}  // namespace spio
