/// \file telemetry_propagation_test.cpp
/// End-to-end request-ID propagation (docs/OBSERVABILITY.md "Live
/// telemetry"): one query admitted by the QueryService must carry the
/// same `qid` in (a) its Chrome-trace spans — including the `read.file`
/// spans that ran on read-engine pool workers, not the service worker —
/// (b) its `SPIO_LOG` lines, and (c) its flight-recorder span/log
/// records. Also pins the ID allocator's basics: monotonic, never zero,
/// distinct per admission, and scoped installation that restores the
/// previous ID.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/query_service.hpp"
#include "core/read_engine.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "obs/query_context.hpp"
#include "obs/trace.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

using obs::JsonValue;

TEST(QueryContext, IdsAreMonotonicAndNeverZero) {
  const std::uint64_t a = obs::next_query_id();
  const std::uint64_t b = obs::next_query_id();
  EXPECT_NE(a, 0u);
  EXPECT_GT(b, a);
}

TEST(QueryContext, ScopedInstallRestoresPrevious) {
  EXPECT_EQ(obs::current_query_id(), 0u) << "fresh thread has no query";
  {
    obs::ScopedQueryId outer(42);
    EXPECT_EQ(obs::current_query_id(), 42u);
    {
      obs::ScopedQueryId inner(43);
      EXPECT_EQ(obs::current_query_id(), 43u);
    }
    EXPECT_EQ(obs::current_query_id(), 42u);
    {
      obs::ScopedQueryId cleared(0);  // installing 0 clears inheritance
      EXPECT_EQ(obs::current_query_id(), 0u);
    }
    EXPECT_EQ(obs::current_query_id(), 42u);
  }
  EXPECT_EQ(obs::current_query_id(), 0u);
}

TEST(QueryContext, IdIsThreadLocal) {
  obs::ScopedQueryId mine(7);
  std::uint64_t seen_on_other_thread = 99;
  std::thread([&] { seen_on_other_thread = obs::current_query_id(); }).join();
  EXPECT_EQ(seen_on_other_thread, 0u)
      << "IDs must not leak across threads without explicit re-install";
  EXPECT_EQ(obs::current_query_id(), 7u);
}

/// Shared small dataset for the end-to-end run (4 files so one query
/// fans out across pool workers).
class TelemetryPropagation : public ::testing::Test {
 protected:
  static constexpr int kRanks = 4;
  static constexpr std::uint64_t kPerRank = 300;

  static void SetUpTestSuite() {
    dir_ = new TempDir("spio-qid");
    const PatchDecomposition decomp =
        PatchDecomposition::for_ranks(Box3::unit(), kRanks);
    WriterConfig cfg;
    cfg.dir = dir_->path();
    cfg.factor = {1, 1, 1};
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      const auto local = workload::uniform(
          Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
          stream_seed(17, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      write_dataset(comm, decomp, local, cfg);
    });
  }
  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  void TearDown() override {
    obs::disable();
    obs::log::set_level(obs::log::Level::kOff);
    obs::log::set_sink_path("");
    obs::Tracer::instance().clear();
    obs::FlightRecorder::instance().clear();
  }

  static TempDir* dir_;
};

TempDir* TelemetryPropagation::dir_ = nullptr;

std::vector<std::string> lines_of(const std::filesystem::path& p) {
  std::ifstream f(p);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) lines.push_back(line);
  return lines;
}

/// Extract `qid=N` from a log line (0 = not present).
std::uint64_t qid_of_line(const std::string& line) {
  const auto pos = line.find(" qid=");
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + 5, nullptr, 10);
}

TEST_F(TelemetryPropagation, OneQueryCarriesOneIdAcrossAllSurfaces) {
  TempDir scratch("spio-qid-log");
  const auto log_path = scratch.file("query.log");
  obs::log::set_sink_path(log_path.string());
  obs::log::set_level(obs::log::Level::kDebug);
  obs::enable();
  obs::Tracer::instance().clear();
  obs::FlightRecorder::instance().clear();

  const Dataset ds = Dataset::open(dir_->path());
  const int prev_concurrency = ReadEngine::instance().concurrency();
  {
    // Pool big enough that per-file reads hop to engine workers.
    ReadEngine::instance().set_concurrency(4);
    ServiceConfig cfg;
    cfg.workers = 2;
    QueryService svc(cfg);
    const Box3 box({0.05, 0.05, 0.05}, {0.95, 0.95, 0.95});
    auto result = svc.run([&] { return ds.query_box(box); });
    ASSERT_NE(result, nullptr);
    EXPECT_GT(result->size(), 0u);
    svc.shutdown();
  }
  ReadEngine::instance().set_concurrency(prev_concurrency);
  obs::log::set_level(obs::log::Level::kOff);
  obs::log::set_sink_path("");

  // (b) The log line names the query's ID.
  std::uint64_t qid = 0;
  for (const auto& line : lines_of(log_path)) {
    if (line.find("serve.query.done") != std::string::npos) {
      qid = qid_of_line(line);
      break;
    }
  }
  ASSERT_NE(qid, 0u) << "serve.query.done log line must carry qid=N";

  // (a) Chrome-trace spans: the service span AND the pool-worker file
  // reads all carry args:{"qid":qid}.
  const JsonValue trace =
      JsonValue::parse(obs::Tracer::instance().chrome_json());
  const JsonValue& events = trace.at("traceEvents");
  std::size_t serve_spans = 0, file_spans = 0;
  std::uint64_t serve_tid = 0;
  std::set<std::uint64_t> file_span_tids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    const JsonValue* args = e.find("args");
    if (!args) continue;
    const JsonValue* q = args->find("qid");
    if (!q || q->as_u64() != qid) continue;
    const std::string& name = e.at("name").as_string();
    if (name == "serve.query") {
      ++serve_spans;
      serve_tid = e.at("tid").as_u64();
    }
    if (name == "read.file") {
      ++file_spans;
      file_span_tids.insert(e.at("tid").as_u64());
    }
  }
  EXPECT_EQ(serve_spans, 1u) << "exactly one serve.query span for the query";
  EXPECT_EQ(file_spans, static_cast<std::size_t>(kRanks))
      << "every per-file read span must inherit the query's ID";
  // The engine pool is a different pool than the service workers, so the
  // fetches hopped threads — and the ID followed them.
  EXPECT_EQ(file_span_tids.count(serve_tid), 0u)
      << "read.file spans run on engine pool workers, not the service "
         "worker — the ID must survive the hop";

  // (c) Flight recorder: span begin/end and the log record carry the ID
  // in their `a` word.
  bool flight_serve = false, flight_file = false, flight_log = false;
  for (const auto& ring : obs::FlightRecorder::instance().snapshot()) {
    for (const auto& rec : ring.events) {
      if (rec.a != qid) continue;
      if (rec.type == obs::FlightType::kSpanBegin) {
        if (std::string_view(rec.text) == "serve.query") flight_serve = true;
        if (std::string_view(rec.text) == "read.file") flight_file = true;
      }
      if (rec.type == obs::FlightType::kLog &&
          std::string_view(rec.text) == "serve.query.done")
        flight_log = true;
    }
  }
  EXPECT_TRUE(flight_serve) << "serve.query flight record must carry the qid";
  EXPECT_TRUE(flight_file) << "read.file flight record must carry the qid";
  EXPECT_TRUE(flight_log) << "log flight record must carry the qid";
}

TEST_F(TelemetryPropagation, ConcurrentQueriesGetDistinctIds) {
  TempDir scratch("spio-qid-log");
  const auto log_path = scratch.file("many.log");
  obs::log::set_sink_path(log_path.string());
  obs::log::set_level(obs::log::Level::kDebug);

  const Dataset ds = Dataset::open(dir_->path());
  constexpr int kQueries = 12;
  {
    ServiceConfig cfg;
    cfg.workers = 4;
    QueryService svc(cfg);
    std::vector<std::future<QueryService::Result>> futures;
    const Box3 box({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
    for (int i = 0; i < kQueries; ++i)
      futures.push_back(svc.submit([&ds, box] { return ds.query_box(box); }));
    for (auto& f : futures) ASSERT_NE(f.get(), nullptr);
    svc.shutdown();
  }
  obs::log::set_level(obs::log::Level::kOff);
  obs::log::set_sink_path("");

  std::set<std::uint64_t> ids;
  for (const auto& line : lines_of(log_path)) {
    if (line.find("serve.query.done") == std::string::npos) continue;
    const std::uint64_t qid = qid_of_line(line);
    EXPECT_NE(qid, 0u);
    ids.insert(qid);
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kQueries))
      << "each admission allocates its own ID";
}

}  // namespace
}  // namespace spio
