#pragma once

/// \file access_profile.hpp
/// Spatial access profiler (docs/OBSERVABILITY.md "Spatial access
/// profiles"): Darshan-style per-file I/O attribution for the read path.
///
/// Every byte the read path moves is attributed to the partition — data
/// file index plus bounding box — it came from. The accounting has two
/// tiers:
///
///   1. **Always-on per-file slots.** Each data file of every opened
///      dataset owns a fixed slot of relaxed `std::atomic` counters
///      (access count, bytes scanned / fetched-from-disk / surviving the
///      filter, cache-outcome tallies, a log2 fetch-latency histogram,
///      last-touch timestamp) — the same discipline as the flight
///      recorder: a handful of relaxed RMWs per per-file fetch, bounded
///      by the profile perf floor (tests/perf/profile_overhead_test.cpp,
///      <= 3% of readpath throughput). `set_enabled(false)` is the kill
///      switch the floor test measures against.
///
///   2. **Detailed per-query records**, gated by `SPIO_PROFILE=<path>`:
///      each query additionally accumulates a compact record — files
///      touched with their per-file byte split, a fetch/filter/merge
///      time breakdown, and the request ID linking it to trace spans and
///      log lines. At process exit (or an explicit `write()`) the
///      profiler serializes the per-file slots joined with their
///      partition bboxes — the spatial heatmap — plus the query records
///      as `profile.spio.json` (`"format":"spio.access_profile"`).
///      Rendered by `spio_heatmap`, summarized by `spio_inspect`,
///      validated by `spio_trace --check`.
///
/// Byte semantics (pinned by the oracle differential suite in
/// tests/obs/access_profile_test.cpp):
///   - `bytes_scanned`  — every byte materialized for the caller,
///     whether it came from disk, the prefix cache, or a single-flight
///     leader (= `want * record_size` per access).
///   - `bytes_fetched`  — bytes actually read from disk: bypass and
///     single-flight-leader (miss) accesses only. Cache hits and
///     followers add nothing, so coalesced readers never double-count —
///     `bytes_fetched` matches an instrumented `ReadEngine::FetchHook`
///     byte-for-byte.
///   - `bytes_used`     — records surviving the query's filter times the
///     record size (for whole-file fast paths and owner binning: the
///     whole prefix).
/// Read amplification falls out per file and per query as
/// `bytes_fetched / bytes_used` (disk amplification; 0 for fully-warm
/// traffic) and `bytes_scanned / bytes_used` (scan amplification, the
/// `ReadStats::read_amplification` analogue).

#include <atomic>
#include <cstdint>
#include <optional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/query_context.hpp"
#include "util/box.hpp"

namespace spio::obs {

/// How a profiled fetch was satisfied. Values mirror the read engine's
/// `CacheOutcome` (core/read_engine.hpp) so call sites can cast.
enum class AccessOutcome : std::uint8_t {
  kBypass = 0,    ///< cache disabled: a plain disk read
  kHit = 1,       ///< served from the prefix cache
  kMiss = 2,      ///< single-flight leader: did the disk read
  kFollower = 3,  ///< joined another query's in-flight read
};

class AccessProfiler {
 public:
  /// Slots across all registered datasets; registrations past the cap
  /// are refused (their traffic counts into `unattributed()`).
  static constexpr int kMaxSlots = 8192;
  /// log2(us) fetch-latency buckets; bucket i covers [2^(i-1), 2^i) us
  /// like metrics.hpp histograms, the last bucket absorbs the tail.
  static constexpr int kLatencyBuckets = 28;
  /// Detailed mode keeps at most this many finished query records; the
  /// surplus of a long serve run is counted in `queries_dropped`.
  static constexpr std::size_t kMaxQueryRecords = 8192;

  /// The process-wide profiler (thread-safe magic static). Reads
  /// `SPIO_PROFILE` once on construction.
  static AccessProfiler& instance();

  /// Static description of one data file, captured at registration.
  struct FileInfo {
    std::string name;
    Box3 bounds;
    std::uint64_t particle_count = 0;
  };

  /// Register (or re-find) a dataset's files and return the base slot
  /// index; per-file slot = base + file index. A dataset already
  /// registered under `dir` with the same file count reuses its slots
  /// (counters survive re-opens); a changed file count re-registers
  /// fresh ones. Returns -1 when the slot table is full — accounting
  /// for that dataset then lands in `unattributed()`.
  int register_dataset(const std::string& dir, const Box3& domain,
                       std::uint64_t record_size, bool has_bounds,
                       std::vector<FileInfo> files);

  /// One per-file fetch: `bytes` were materialized (scan side), read
  /// from disk iff `outcome` is kBypass/kMiss, in `fetch_us`
  /// microseconds. `base` from `register_dataset`, negative = count as
  /// unattributed.
  void record_fetch(int base, int file_index, std::uint64_t bytes,
                    AccessOutcome outcome, bool had_mirror,
                    std::uint64_t fetch_us);

  /// Filter-side attribution: `bytes` of file `base + file_index`
  /// survived the query's filter. `filter_us`/`merge_us` feed the
  /// active query record's time breakdown (detailed mode; pass 0 when
  /// not measured).
  void record_used(int base, int file_index, std::uint64_t bytes,
                   std::uint64_t filter_us = 0, std::uint64_t merge_us = 0);

  /// Service completion annotation for the query record of `qid`
  /// (detailed mode; no-op when the record was never opened or already
  /// dropped).
  void complete_query(std::uint64_t qid, std::uint64_t wait_us,
                      std::uint64_t latency_us, std::size_t waiters);

  // -- always-on kill switch (perf floor + tests) -------------------------
  bool profiling_enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // -- detailed mode ------------------------------------------------------
  /// True when per-query records are being collected (`SPIO_PROFILE` or
  /// `set_detailed`).
  bool detailed() const { return detailed_.load(std::memory_order_relaxed); }
  /// Turn detailed mode on with an output path (empty = collect but do
  /// not auto-write), or off. Registers the exit writer on first enable
  /// with a non-empty path.
  void set_detailed(bool on, std::string path = {});
  std::string profile_path() const;

  /// Apply `SPIO_PROFILE=<path>` (idempotent; also applied on
  /// construction). A directory path gets `profile.spio.json` appended.
  void init_from_env();

  // -- snapshots ----------------------------------------------------------
  /// Point-in-time copy of one file slot joined with its registration.
  struct FileSnapshot {
    std::string dataset;  ///< dataset directory
    std::string name;     ///< data file name
    int file_index = 0;
    Box3 bounds;
    std::uint64_t particle_count = 0;
    std::uint64_t accesses = 0;
    std::uint64_t bytes_scanned = 0;
    std::uint64_t bytes_fetched = 0;
    std::uint64_t bytes_used = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t followers = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t mirror_fetches = 0;
    std::uint64_t last_touch_us = 0;
  };
  /// Every registered file's counters (relaxed reads; skips files that
  /// were never touched when `touched_only`).
  std::vector<FileSnapshot> snapshot_files(bool touched_only = false) const;

  struct Totals {
    std::uint64_t accesses = 0;
    std::uint64_t bytes_scanned = 0;
    std::uint64_t bytes_fetched = 0;
    std::uint64_t bytes_used = 0;
  };
  Totals totals() const;

  /// Fetches that could not be attributed (unregistered dataset or slot
  /// table full).
  std::uint64_t unattributed() const {
    return unattributed_.load(std::memory_order_relaxed);
  }

  /// Serialize the profile (`"format":"spio.access_profile"`, version 1)
  /// to `path`. Returns false on I/O failure. Thread-safe.
  bool write(const std::string& path) const;
  /// The JSON document `write` serializes, for in-process consumers.
  std::string dump() const;

  /// Zero every slot counter and drop all query records (registrations
  /// stay). Tests only; must not race queries.
  void reset_counters();

 private:
  AccessProfiler();

  struct FileSlot {
    std::atomic<std::uint64_t> accesses{0};
    std::atomic<std::uint64_t> bytes_scanned{0};
    std::atomic<std::uint64_t> bytes_fetched{0};
    std::atomic<std::uint64_t> bytes_used{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> followers{0};
    std::atomic<std::uint64_t> bypasses{0};
    std::atomic<std::uint64_t> mirror_fetches{0};
    std::atomic<std::uint64_t> last_touch_us{0};
    std::atomic<std::uint64_t> fetch_us_hist[kLatencyBuckets] = {};
  };

  struct DatasetReg {
    std::string dir;
    Box3 domain;
    std::uint64_t record_size = 0;
    bool has_bounds = true;
    int base = 0;
    std::vector<FileInfo> files;
  };

  /// Per-file contribution within one query record.
  struct QueryFile {
    int slot = -1;
    std::uint64_t bytes_scanned = 0;
    std::uint64_t bytes_fetched = 0;
    std::uint64_t bytes_used = 0;
  };

  struct QueryRecord {
    std::uint64_t qid = 0;
    std::string kind;
    double start_us = 0;
    std::vector<QueryFile> files;
    std::uint64_t bytes_scanned = 0;
    std::uint64_t bytes_fetched = 0;
    std::uint64_t bytes_used = 0;
    std::uint64_t fetch_us = 0;
    std::uint64_t filter_us = 0;
    std::uint64_t merge_us = 0;
    std::uint64_t total_us = 0;
    bool finished = false;
    // Service annotation (complete_query); absent for direct queries.
    bool served = false;
    std::uint64_t wait_us = 0;
    std::uint64_t latency_us = 0;
    std::uint64_t waiters = 0;
  };

  friend class ProfiledQuery;
  /// Detailed-mode query lifecycle (driven by `ProfiledQuery`). A begin
  /// returns false when the record was not opened — qid already open
  /// (nested reader entry points: the outer scope owns the record) or
  /// the finished buffer is full.
  bool begin_query(std::uint64_t qid, const char* kind);
  void finish_query(std::uint64_t qid, std::uint64_t total_us);

  QueryFile& query_file_locked(QueryRecord& q, int slot);
  QueryRecord* find_open_locked(std::uint64_t qid);

  std::atomic<bool> enabled_{true};
  std::atomic<bool> detailed_{false};
  std::atomic<FileSlot*> slots_{nullptr};  ///< published with release
  std::atomic<std::uint64_t> unattributed_{0};

  mutable std::mutex reg_mu_;  ///< registrations + path
  std::vector<DatasetReg> datasets_;
  int next_slot_ = 0;
  std::string path_;
  bool exit_writer_registered_ = false;

  mutable std::mutex query_mu_;  ///< detailed-mode records
  std::vector<QueryRecord> open_;
  std::vector<QueryRecord> finished_;
  std::uint64_t queries_dropped_ = 0;
};

/// RAII scope of one profiled query (reader entry points). Inactive —
/// two relaxed loads — unless detailed mode is on; when active it
/// guarantees a non-zero request ID (allocating one when the caller has
/// none, e.g. a direct `query_box` outside the service), opens the query
/// record, and finishes it with the measured wall time on destruction.
class ProfiledQuery {
 public:
  explicit ProfiledQuery(const char* kind);
  ~ProfiledQuery();

  ProfiledQuery(const ProfiledQuery&) = delete;
  ProfiledQuery& operator=(const ProfiledQuery&) = delete;

  bool active() const { return active_; }

 private:
  bool active_ = false;
  std::uint64_t qid_ = 0;
  double t0_us_ = 0;
  std::optional<ScopedQueryId> scope_;  ///< only when we allocated the ID
};

}  // namespace spio::obs
