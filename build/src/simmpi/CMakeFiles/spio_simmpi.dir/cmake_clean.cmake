file(REMOVE_RECURSE
  "CMakeFiles/spio_simmpi.dir/collective_arena.cpp.o"
  "CMakeFiles/spio_simmpi.dir/collective_arena.cpp.o.d"
  "CMakeFiles/spio_simmpi.dir/comm.cpp.o"
  "CMakeFiles/spio_simmpi.dir/comm.cpp.o.d"
  "CMakeFiles/spio_simmpi.dir/mailbox.cpp.o"
  "CMakeFiles/spio_simmpi.dir/mailbox.cpp.o.d"
  "CMakeFiles/spio_simmpi.dir/runtime.cpp.o"
  "CMakeFiles/spio_simmpi.dir/runtime.cpp.o.d"
  "libspio_simmpi.a"
  "libspio_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spio_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
