#pragma once

/// \file rank_order.hpp
/// Spatially-unaware two-phase aggregation baseline (Figure 1, middle):
/// the same sub-filing structure as spio — N ranks aggregate into F files
/// of G = N/F ranks each — but groups are formed by *rank order*, not
/// space. This is what generic two-phase I/O and HDF5 sub-filing produce:
/// each file mixes particles from distant regions, so a spatial query
/// cannot rule out any file.

#include <filesystem>

#include "core/reader.hpp"
#include "simmpi/comm.hpp"
#include "workload/particle_buffer.hpp"

namespace spio::baselines {

/// Collective: aggregate groups of `group_size` consecutive ranks onto the
/// group's first rank and write one file per group, plus a manifest with
/// per-file counts (no bounding boxes — there is no meaningful box).
void rank_order_write(simmpi::Comm& comm, const ParticleBuffer& local,
                      const std::filesystem::path& dir, int group_size);

class RankOrderDataset {
 public:
  static RankOrderDataset open(const std::filesystem::path& dir);

  int file_count() const { return static_cast<int>(counts_.size()); }
  std::uint64_t total_particles() const;
  const Schema& schema() const { return schema_; }

  ParticleBuffer read_group_file(int group, ReadStats* stats = nullptr) const;

  /// Box query: every file may contain matching particles, so all are
  /// read and filtered.
  ParticleBuffer query_box(const Box3& box, ReadStats* stats = nullptr) const;

 private:
  RankOrderDataset(std::filesystem::path dir, Schema schema,
                   std::vector<std::uint64_t> counts)
      : dir_(std::move(dir)),
        schema_(std::move(schema)),
        counts_(std::move(counts)) {}

  std::filesystem::path dir_;
  Schema schema_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace spio::baselines
