/// \file fig09_lod_quality.cpp
/// Figure 9: how representative is an LOD prefix? The paper renders a
/// 55-million-particle coal-injection dataset at 25/50/75/100% of the
/// data and observes that "most of the features are still visible even
/// using only 25%". Without a renderer we quantify the same claim: a
/// scaled-down injection dataset is written with the random-shuffle LOD
/// order, prefixes are read back, and we report (a) the RMSE between the
/// prefix's binned density field (normalized to a distribution) and the
/// full dataset's, (b) spatial coverage (fraction of occupied bins hit),
/// and (c) an ASCII side view of the jet at each fraction.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_env.hpp"
#include "core/density.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/table.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

using namespace spio;

namespace {

constexpr int kGrid = 24;  // density bins per axis

DensityField density_field(const ParticleBuffer& buf, const Box3& domain) {
  DensityField f(domain, {kGrid, kGrid, kGrid});
  f.add(buf);
  f.normalize();
  return f;
}

void ascii_render(const ParticleBuffer& buf, const Box3& domain,
                  const std::string& title) {
  constexpr int kW = 64, kH = 16;
  std::vector<int> cols(kW * kH, 0);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const Vec3d rel = (buf.position(i) - domain.lo) / domain.size();
    const int x = std::min(kW - 1, static_cast<int>(rel.x * kW));
    const int y = std::min(kH - 1, static_cast<int>(rel.y * kH));
    ++cols[static_cast<std::size_t>(y * kW + x)];
  }
  int peak = 1;
  for (int v : cols) peak = std::max(peak, v);
  static const char shades[] = " .:-=+*#%@";
  std::cout << "-- " << title << " --\n";
  for (int y = kH - 1; y >= 0; --y) {
    for (int x = 0; x < kW; ++x) {
      const double s = static_cast<double>(cols[static_cast<std::size_t>(
                           y * kW + x)]) /
                       peak;
      std::cout << shades[std::min<std::size_t>(
          sizeof(shades) - 2,
          static_cast<std::size_t>(std::pow(s, 0.4) * (sizeof(shades) - 2)))];
    }
    std::cout << '\n';
  }
}

}  // namespace

int main() {
  spio::bench::init_observability();
  // Coal-jet style injection workload, written with LOD ordering.
  constexpr int kRanks = 32;
  constexpr std::uint64_t kPerRank = 20000;
  const Box3 domain({0, 0, 0}, {4, 1, 1});
  const PatchDecomposition decomp(domain, {8, 2, 2});
  TempDir dir("fig09");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 2};
  cfg.adaptive = true;  // the jet fills ~3/4 of the domain
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    const auto local = workload::injection(
        Schema::uintah(), decomp.patch(comm.rank()), domain, 0.75, kPerRank,
        stream_seed(9, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * kPerRank);
    write_dataset(comm, decomp, local, cfg);
  });

  const Dataset ds = Dataset::open(dir.path());
  const ParticleBuffer full = ds.query_box(domain);
  const auto full_field = density_field(full, domain);

  Table t("Figure 9: LOD prefix quality on a " +
              std::to_string(full.size()) + "-particle injection dataset",
          {"fraction", "particles", "density RMSE", "coverage %"});

  for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
    // Read a prefix of every file proportional to the fraction.
    ParticleBuffer prefix(ds.metadata().schema);
    for (int fi = 0; fi < ds.file_count(); ++fi) {
      const auto& rec = ds.metadata().files[static_cast<std::size_t>(fi)];
      const auto want = static_cast<std::uint64_t>(
          frac * static_cast<double>(rec.particle_count));
      const auto whole = ds.read_data_file(fi);
      for (std::uint64_t i = 0; i < want; ++i)
        prefix.append_from(whole, static_cast<std::size_t>(i));
    }
    const auto prefix_field = density_field(prefix, domain);
    t.row()
        .add_double(frac, 2)
        .add_int(static_cast<long long>(prefix.size()))
        .add_sci(prefix_field.rmse_against(full_field), 3)
        .add_double(100.0 * prefix_field.coverage_of(full_field), 1);
    ascii_render(prefix, domain,
                 std::to_string(static_cast<int>(frac * 100)) +
                     "% of particles (side view of the jet)");
  }
  std::cout << '\n';
  t.print(std::cout);
  std::cout << "\npaper reference: features remain visible at 25% of the "
               "data; RMSE should be small\nand coverage high even for "
               "the 25% prefix because prefixes are uniform samples.\n";
  return 0;
}
