#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>

#include "obs/run_record.hpp"
#include "util/error.hpp"
#include "util/temp_dir.hpp"

namespace spio::obs {
namespace {

WriteRunInfo sample_write_info() {
  WriteRunInfo info;
  info.ranks = 2;
  info.schema_bytes = 124;
  info.partition_count = 4;
  info.config["factor"] = "2x1x1";
  info.config["adaptive"] = "false";
  for (int r = 0; r < 2; ++r) {
    WritePhaseSeconds p;
    p.rank = r;
    p.setup = 0.5 + r;
    p.meta_exchange = 0.25;
    p.particle_exchange = 1.0;
    p.reorder = 0.125;
    p.file_io = 2.0;
    p.metadata_io = 0.0625;
    info.phases.push_back(p);
  }
  info.totals.particles_sent = 1000;
  info.totals.bytes_sent = 124000;
  info.totals.particles_written = 1000;
  info.totals.bytes_written = 124000;
  info.totals.files_written = 2;
  return info;
}

TEST(RunRecord, WriteRecordRoundTrips) {
  TempDir dir("spio-record");
  EXPECT_FALSE(run_record_present(dir.path()));

  MetricsRegistry reg;
  // A value above 2^53 checks that counters survive the JSON round trip
  // at full u64 precision.
  const std::uint64_t big = (std::uint64_t{1} << 61) + 3;
  reg.counter("writer.bytes_written").add(big);
  save_write_record(dir.path(), sample_write_info(), reg.snapshot());

  ASSERT_TRUE(run_record_present(dir.path()));
  const JsonValue doc = load_run_record(dir.path());
  EXPECT_EQ(doc.at("format").as_string(), "spio.run_record");
  EXPECT_EQ(doc.at("version").as_i64(), 1);

  const JsonValue& w = doc.at("write");
  EXPECT_EQ(w.at("ranks").as_i64(), 2);
  EXPECT_EQ(w.at("schema_bytes").as_u64(), 124u);
  EXPECT_EQ(w.at("partition_count").as_i64(), 4);
  EXPECT_EQ(w.at("config").at("factor").as_string(), "2x1x1");
  ASSERT_EQ(w.at("phase_seconds").size(), 2u);
  const JsonValue& p1 = w.at("phase_seconds").at(std::size_t{1});
  EXPECT_EQ(p1.at("rank").as_i64(), 1);
  EXPECT_DOUBLE_EQ(p1.at("setup").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(p1.at("file_io").as_double(), 2.0);
  EXPECT_EQ(w.at("totals").at("bytes_written").as_u64(), 124000u);
  EXPECT_EQ(w.at("counters").at("writer.bytes_written").as_u64(), big);
  EXPECT_TRUE(w.at("environment").at("threads_as_ranks").as_bool());
  EXPECT_FALSE(doc.contains("read"));
}

TEST(RunRecord, ReadRecordMergesIntoExistingWriteRecord) {
  TempDir dir("spio-record");
  MetricsRegistry reg;
  save_write_record(dir.path(), sample_write_info(), reg.snapshot());

  ReadRunInfo info;
  info.ranks = 2;
  info.levels = -1;
  info.phases.push_back({0, 0.5, 0.25});
  info.phases.push_back({1, 0.75, 0.125});
  info.totals.files_opened = 2;
  info.totals.bytes_read = 248000;
  info.totals.particles_scanned = 2000;
  info.totals.particles_returned = 1000;
  info.totals.read_amplification = 2.0;
  reg.counter("reader.bytes_read").add(248000);
  save_read_record(dir.path(), info, reg.snapshot());

  const JsonValue doc = load_run_record(dir.path());
  // The writer's section survives the merge.
  EXPECT_EQ(doc.at("write").at("ranks").as_i64(), 2);
  EXPECT_EQ(doc.at("write").at("totals").at("files_written").as_u64(), 2u);
  const JsonValue& r = doc.at("read");
  EXPECT_EQ(r.at("ranks").as_i64(), 2);
  EXPECT_EQ(r.at("levels").as_i64(), -1);
  ASSERT_EQ(r.at("phase_seconds").size(), 2u);
  EXPECT_DOUBLE_EQ(
      r.at("phase_seconds").at(std::size_t{1}).at("exchange").as_double(),
      0.125);
  EXPECT_DOUBLE_EQ(r.at("totals").at("read_amplification").as_double(), 2.0);
  EXPECT_EQ(r.at("counters").at("reader.bytes_read").as_u64(), 248000u);
}

TEST(RunRecord, ReadRecordAloneCreatesFreshDocument) {
  TempDir dir("spio-record");
  ReadRunInfo info;
  info.ranks = 1;
  MetricsRegistry reg;
  save_read_record(dir.path(), info, reg.snapshot());

  const JsonValue doc = load_run_record(dir.path());
  EXPECT_EQ(doc.at("format").as_string(), "spio.run_record");
  EXPECT_FALSE(doc.contains("write"));
  EXPECT_EQ(doc.at("read").at("ranks").as_i64(), 1);
}

TEST(RunRecord, ReadRecordReplacesMalformedExistingRecord) {
  TempDir dir("spio-record");
  {
    std::ofstream f(dir.path() / kRunRecordFile);
    f << "{not json";
  }
  ASSERT_TRUE(run_record_present(dir.path()));

  ReadRunInfo info;
  info.ranks = 3;
  MetricsRegistry reg;
  save_read_record(dir.path(), info, reg.snapshot());
  const JsonValue doc = load_run_record(dir.path());
  EXPECT_EQ(doc.at("read").at("ranks").as_i64(), 3);
}

TEST(RunRecord, LoadRejectsForeignJson) {
  TempDir dir("spio-record");
  {
    std::ofstream f(dir.path() / kRunRecordFile);
    f << "{\"format\": \"something.else\"}\n";
  }
  EXPECT_THROW(load_run_record(dir.path()), FormatError);
  EXPECT_THROW(load_run_record(dir.path() / "absent"), IoError);
}

TEST(RunRecord, MetricsToJsonRendersAllKinds) {
  MetricsRegistry reg;
  reg.counter("a.count").add(7);
  reg.gauge("a.ratio").set(0.5);
  reg.histogram("a.sizes").observe(100);
  reg.histogram("a.sizes").observe(200);

  const JsonValue j = metrics_to_json(reg.snapshot());
  EXPECT_EQ(j.at("a.count").as_u64(), 7u);
  EXPECT_DOUBLE_EQ(j.at("a.ratio").as_double(), 0.5);
  const JsonValue& h = j.at("a.sizes");
  EXPECT_EQ(h.at("count").as_u64(), 2u);
  EXPECT_EQ(h.at("sum").as_u64(), 300u);
  // 100 -> [64, 127], 200 -> [128, 255]: two non-empty buckets.
  ASSERT_EQ(h.at("buckets").size(), 2u);
  EXPECT_EQ(h.at("buckets").at(std::size_t{0}).at(std::size_t{0}).as_u64(),
            127u);
  EXPECT_EQ(h.at("buckets").at(std::size_t{0}).at(std::size_t{1}).as_u64(),
            1u);
}

}  // namespace
}  // namespace spio::obs
