file(REMOVE_RECURSE
  "CMakeFiles/spio_baselines.dir/convert.cpp.o"
  "CMakeFiles/spio_baselines.dir/convert.cpp.o.d"
  "CMakeFiles/spio_baselines.dir/fpp.cpp.o"
  "CMakeFiles/spio_baselines.dir/fpp.cpp.o.d"
  "CMakeFiles/spio_baselines.dir/ior_like.cpp.o"
  "CMakeFiles/spio_baselines.dir/ior_like.cpp.o.d"
  "CMakeFiles/spio_baselines.dir/rank_order.cpp.o"
  "CMakeFiles/spio_baselines.dir/rank_order.cpp.o.d"
  "CMakeFiles/spio_baselines.dir/shared_file.cpp.o"
  "CMakeFiles/spio_baselines.dir/shared_file.cpp.o.d"
  "libspio_baselines.a"
  "libspio_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spio_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
