#include "iosim/write_model.hpp"

#include <gtest/gtest.h>

namespace spio::iosim {
namespace {

WriteCase spio_case(int nprocs, PartitionFactor f,
                    std::uint64_t ppc = 32768) {
  WriteCase c;
  c.nprocs = nprocs;
  c.particles_per_proc = ppc;
  c.scheme = WriteScheme::kSpio;
  c.factor = f;
  return c;
}

WriteCase scheme_case(int nprocs, WriteScheme s, std::uint64_t ppc = 32768) {
  WriteCase c;
  c.nprocs = nprocs;
  c.particles_per_proc = ppc;
  c.scheme = s;
  return c;
}

TEST(MachineProfiles, MiraJobEngagesThirdOfIonsAtFullScale) {
  // 262,144 ranks at 2048 ranks/ION engage 128 of 384 IONs — the paper's
  // "1/3 of the system".
  const auto mira = MachineProfile::mira();
  EXPECT_EQ(mira.job_resources(262144), 128);
  EXPECT_EQ(mira.job_resources(512), 1);
  EXPECT_EQ(mira.job_resources(100'000'000), 384);
}

TEST(MachineProfiles, ThetaJobsReachAllOsts) {
  const auto theta = MachineProfile::theta();
  EXPECT_EQ(theta.job_resources(512), 48);
  EXPECT_EQ(theta.job_resources(262144), 48);
}

TEST(MachineProfiles, AggregationCostGrowsWithGroupSize) {
  for (const auto& m : {MachineProfile::mira(), MachineProfile::theta()}) {
    const double d = 4.0 * (1 << 20);
    double prev = m.aggregation_seconds(1, d);
    EXPECT_EQ(prev, 0.0);
    for (int g : {2, 4, 8, 16, 32, 64}) {
      const double t = m.aggregation_seconds(g, d);
      EXPECT_GT(t, prev) << m.name << " G=" << g;
      prev = t;
    }
  }
}

TEST(MachineProfiles, ThetaAggregationFarMoreExpensiveThanMira) {
  // Fig. 6: same configuration spends a much larger share aggregating on
  // Theta than on Mira.
  const double d = 4.0 * (1 << 20);
  EXPECT_GT(MachineProfile::theta().aggregation_seconds(8, d),
            20 * MachineProfile::mira().aggregation_seconds(8, d));
}

TEST(MachineProfiles, CreateContentionKneeOnMira) {
  const auto mira = MachineProfile::mira();
  EXPECT_DOUBLE_EQ(mira.effective_create_seconds(1000),
                   mira.file_create_seconds);
  EXPECT_GT(mira.effective_create_seconds(262144),
            10 * mira.file_create_seconds);
}

TEST(WriteModel, FileCountsMatchTheLaw) {
  const auto b =
      model_write(MachineProfile::theta(), spio_case(4096, {2, 4, 4}));
  EXPECT_EQ(b.files, 128);  // 4096 / 32
  EXPECT_EQ(b.group_size, 32);
  const auto fpp = model_write(MachineProfile::theta(),
                               scheme_case(4096, WriteScheme::kFilePerProcess));
  EXPECT_EQ(fpp.files, 4096);
  EXPECT_EQ(fpp.group_size, 1);
}

TEST(WriteModel, FactorOneHasNoAggregation) {
  const auto b =
      model_write(MachineProfile::mira(), spio_case(4096, {1, 1, 1}));
  EXPECT_EQ(b.aggregation_seconds, 0.0);
  EXPECT_EQ(b.files, 4096);
}

TEST(WriteModel, WeakScalingThroughputRisesForGoodConfigs) {
  // Fig. 5: the winning configurations keep scaling to 262,144 ranks.
  const auto mira = MachineProfile::mira();
  double prev = 0;
  for (int n : {512, 4096, 32768, 262144}) {
    const double gbs =
        model_write(mira, spio_case(n, {2, 4, 4})).throughput_gbs();
    EXPECT_GT(gbs, prev) << n;
    prev = gbs;
  }
  const auto theta = MachineProfile::theta();
  prev = 0;
  for (int n : {512, 4096, 32768, 262144}) {
    const double gbs =
        model_write(theta, spio_case(n, {1, 2, 2})).throughput_gbs();
    EXPECT_GT(gbs, prev) << n;
    prev = gbs;
  }
}

TEST(WriteModel, MiraFppSaturatesAtScale) {
  // Fig. 5 (Mira): file-per-process collapses under metadata contention
  // at 131-262K files while (2,4,4) keeps scaling.
  const auto mira = MachineProfile::mira();
  const double fpp_131k =
      model_write(mira, scheme_case(131072, WriteScheme::kFilePerProcess))
          .throughput_gbs();
  const double fpp_262k =
      model_write(mira, scheme_case(262144, WriteScheme::kFilePerProcess))
          .throughput_gbs();
  // The paper: FPP "starts to saturate at 131,072 processes" — doubling
  // the job again buys almost nothing.
  EXPECT_LT(fpp_262k, 1.2 * fpp_131k);
  const double ours_262k =
      model_write(mira, spio_case(262144, {2, 4, 4})).throughput_gbs();
  EXPECT_GT(ours_262k, 4.0 * fpp_262k);
}

TEST(WriteModel, MiraFullScaleThroughputNearPaperValue) {
  // Paper: ~98 GB/s at 262,144 ranks with 32K particles/core; we accept
  // the same order of magnitude (50-130 GB/s).
  const double gbs = model_write(MachineProfile::mira(),
                                 spio_case(262144, {2, 4, 4}))
                         .throughput_gbs();
  EXPECT_GT(gbs, 50.0);
  EXPECT_LT(gbs, 130.0);
}

TEST(WriteModel, ThetaCrossoverNearPaperScale) {
  // Fig. 5 (Theta): FPP wins at small scale; (1,2,2) overtakes around
  // 65,536 ranks and wins clearly at 262,144.
  const auto theta = MachineProfile::theta();
  auto fpp = [&](int n) {
    return model_write(theta, scheme_case(n, WriteScheme::kFilePerProcess))
        .throughput_gbs();
  };
  auto ours = [&](int n) {
    return model_write(theta, spio_case(n, {1, 2, 2})).throughput_gbs();
  };
  EXPECT_GT(fpp(8192), ours(8192));
  EXPECT_GT(fpp(32768), ours(32768));
  EXPECT_GT(ours(262144), 1.5 * fpp(262144));
}

TEST(WriteModel, ThetaFullScaleValuesNearPaper) {
  // Paper: 216 GB/s for (1,2,2) and 83 GB/s FPP at 262,144 ranks (32K
  // particles/core); accept the right ratio and magnitudes.
  const auto theta = MachineProfile::theta();
  const double ours =
      model_write(theta, spio_case(262144, {1, 2, 2})).throughput_gbs();
  const double fpp =
      model_write(theta, scheme_case(262144, WriteScheme::kFilePerProcess))
          .throughput_gbs();
  EXPECT_GT(ours, 120.0);
  EXPECT_LT(ours, 260.0);
  EXPECT_GT(fpp, 50.0);
  EXPECT_LT(fpp, 110.0);
}

TEST(WriteModel, Theta64kWorkloadDoublesFppThroughput) {
  // Paper: FPP yields 83 GB/s (32K ppc) vs 160 GB/s (64K ppc) — create
  // bound, so doubling data nearly doubles throughput.
  const auto theta = MachineProfile::theta();
  const double t32 =
      model_write(theta, scheme_case(262144, WriteScheme::kFilePerProcess,
                                     32768))
          .throughput_gbs();
  const double t64 =
      model_write(theta, scheme_case(262144, WriteScheme::kFilePerProcess,
                                     65536))
          .throughput_gbs();
  EXPECT_GT(t64, 1.5 * t32);
  EXPECT_LT(t64, 2.2 * t32);
}

TEST(WriteModel, SixtyFourKWorkloadKeepsTheOrdering) {
  // Fig. 5's second row (64K particles/core): the winners and losers are
  // the same as with 32K, at roughly doubled data rates for the
  // create/metadata-bound schemes.
  const auto mira = MachineProfile::mira();
  const auto theta = MachineProfile::theta();
  EXPECT_GT(
      model_write(mira, spio_case(262144, {2, 4, 4}, 65536)).throughput_gbs(),
      model_write(mira, spio_case(262144, {2, 2, 2}, 65536)).throughput_gbs());
  EXPECT_GT(
      model_write(theta, spio_case(262144, {1, 2, 2}, 65536)).throughput_gbs(),
      model_write(theta, scheme_case(262144, WriteScheme::kFilePerProcess,
                                     65536))
          .throughput_gbs());
  // Paper values at 262,144 ranks, 64K ppc: (1,2,2) 243 GB/s, FPP 160.
  const double ours =
      model_write(theta, spio_case(262144, {1, 2, 2}, 65536)).throughput_gbs();
  EXPECT_GT(ours, 150.0);
  EXPECT_LT(ours, 300.0);
}

TEST(WriteModel, SmallFactorsWinOnThetaLargeOnMira) {
  // The paper's headline tuning observation.
  const auto theta = MachineProfile::theta();
  EXPECT_GT(model_write(theta, spio_case(65536, {1, 2, 2})).throughput_gbs(),
            model_write(theta, spio_case(65536, {4, 4, 4})).throughput_gbs());
  const auto mira = MachineProfile::mira();
  EXPECT_GT(model_write(mira, spio_case(262144, {2, 4, 4})).throughput_gbs(),
            model_write(mira, spio_case(262144, {1, 1, 1})).throughput_gbs());
}

TEST(WriteModel, SharedFileAndPhdf5DoNotScale) {
  for (const auto& m : {MachineProfile::mira(), MachineProfile::theta()}) {
    const double shared_512 =
        model_write(m, scheme_case(512, WriteScheme::kIorShared))
            .throughput_gbs();
    const double shared_262k =
        model_write(m, scheme_case(262144, WriteScheme::kIorShared))
            .throughput_gbs();
    // Weak scaling multiplies data 512x; shared file gains far less.
    EXPECT_LT(shared_262k, 30 * shared_512) << m.name;
    // And is far below our best configuration at full scale.
    const double ours = model_write(m, spio_case(262144, {2, 4, 4}))
                            .throughput_gbs();
    EXPECT_GT(ours, 5 * shared_262k) << m.name;
    // PHDF5 tracks shared-file behavior from above.
    const double phdf5 =
        model_write(m, scheme_case(262144, WriteScheme::kPhdf5))
            .throughput_gbs();
    EXPECT_LT(phdf5, shared_262k * 1.01) << m.name;
  }
}

TEST(WriteModel, AggregationShareGrowsWithPartitionFactor) {
  // Fig. 6: larger aggregation groups spend a larger share of time
  // communicating, on both machines.
  for (const auto& m : {MachineProfile::mira(), MachineProfile::theta()}) {
    double prev = -1;
    for (const PartitionFactor f :
         {PartitionFactor{1, 1, 1}, {2, 2, 2}, {2, 4, 4}, {4, 4, 4}}) {
      const double share =
          model_write(m, spio_case(32768, f)).aggregation_share();
      EXPECT_GT(share, prev) << m.name << " " << f.to_string();
      prev = share;
    }
  }
}

TEST(WriteModel, AggregationShareSmallOnMiraLargeOnTheta) {
  // Fig. 6a vs 6c at 32K ranks: Mira's aggregation share stays small;
  // Theta's dominates for large factors.
  const double mira_share =
      model_write(MachineProfile::mira(), spio_case(32768, {2, 4, 4}))
          .aggregation_share();
  const double theta_share =
      model_write(MachineProfile::theta(), spio_case(32768, {2, 4, 4}))
          .aggregation_share();
  EXPECT_LT(mira_share, 0.25);
  EXPECT_GT(theta_share, 0.5);
}

TEST(WriteModel, MoreDataTakesLonger) {
  const auto theta = MachineProfile::theta();
  EXPECT_GT(
      model_write(theta, spio_case(4096, {2, 2, 2}, 65536)).total_seconds(),
      model_write(theta, spio_case(4096, {2, 2, 2}, 32768)).total_seconds());
}

TEST(WriteModel, RejectsInvalidCases) {
  WriteCase c;
  c.nprocs = 0;
  EXPECT_THROW(model_write(MachineProfile::mira(), c), ConfigError);
  WriteCase bad_grid = spio_case(4096, {2, 2, 2});
  bad_grid.process_grid = {2, 2, 2};  // != 4096 ranks
  EXPECT_THROW(model_write(MachineProfile::mira(), bad_grid), ConfigError);
}

}  // namespace
}  // namespace spio::iosim
