/// Targeted fault scenarios: one hand-written FaultPlan per failure mode
/// the subsystem claims to handle, asserting the specific recovery (or
/// the specific structured detection) rather than the chaos harness's
/// statistical sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>

#include "chaos/chaos_util.hpp"
#include "core/query_plan/zone_map.hpp"
#include "core/reader.hpp"
#include "core/restart.hpp"
#include "core/validate.hpp"
#include "util/serialize.hpp"

namespace spio::chaos {
namespace {

using faultsim::FaultPlan;
using faultsim::FileFaultKind;
using faultsim::WritePhase;
using simmpi::SendAction;

bool any_event_contains(const ChaosOutcome& out, std::string_view needle) {
  for (const auto& e : out.events)
    if (e.description.find(needle) != std::string::npos) return true;
  return false;
}

void expect_clean_recovery(const std::filesystem::path& dir,
                           const ChaosOutcome& out) {
  ASSERT_TRUE(out.completed) << out.what;
  EXPECT_FALSE(WriteJournal::present(dir));
  const ValidationReport deep = validate_dataset(dir, true);
  EXPECT_TRUE(deep.ok()) << deep.errors.front();
  EXPECT_TRUE(snapshot_dir(dir) == golden_snapshot())
      << "recovered dataset differs from fault-free run";
}

// ---- message faults: the reliable exchange recovers ----

TEST(ChaosRecovery, DroppedCountMessageIsResent) {
  FaultPlan plan;
  plan.messages.push_back(
      {SendAction::kDrop, -1, -1, faultsim::kTagMetaExchange, 0, 1});
  TempDir dir("spio-chaos-drop-count");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);
  EXPECT_TRUE(any_event_contains(out, "drop"));
  expect_clean_recovery(dir.path(), out);
}

TEST(ChaosRecovery, DroppedParticleMessageIsResent) {
  FaultPlan plan;
  plan.messages.push_back(
      {SendAction::kDrop, -1, -1, faultsim::kTagParticleExchange, 0, 2});
  TempDir dir("spio-chaos-drop-data");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);
  EXPECT_TRUE(any_event_contains(out, "drop"));
  expect_clean_recovery(dir.path(), out);
}

TEST(ChaosRecovery, DuplicatedParticleMessagesAreDeduplicated) {
  FaultPlan plan;
  plan.messages.push_back(
      {SendAction::kDuplicate, -1, -1, faultsim::kTagParticleExchange, 0, 2});
  TempDir dir("spio-chaos-dup");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);
  EXPECT_TRUE(any_event_contains(out, "dup"));
  expect_clean_recovery(dir.path(), out);
}

TEST(ChaosRecovery, DelayedMessagesAreReorderedHarmlessly) {
  FaultPlan plan;
  plan.messages.push_back(
      {SendAction::kDelay, -1, -1, faultsim::kTagMetaExchange, 0, 1});
  plan.messages.push_back(
      {SendAction::kDelay, -1, -1, faultsim::kTagParticleExchange, 0, 1});
  TempDir dir("spio-chaos-delay");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);
  EXPECT_TRUE(any_event_contains(out, "delay"));
  expect_clean_recovery(dir.path(), out);
}

TEST(ChaosRecovery, AckDirectedFaultsEndInStructuredError) {
  // A plan hostile enough to defeat the ARQ (every ACK dropped, forever)
  // must exhaust the bounded retries with a FaultError — never hang.
  FaultPlan plan;
  plan.messages.push_back(
      {SendAction::kDrop, -1, -1,
       faultsim::ack_tag(faultsim::kTagParticleExchange), 0, 1000});
  faultsim::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.ack_timeout = std::chrono::milliseconds(5);
  TempDir dir("spio-chaos-ack");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan, retry);
  ASSERT_TRUE(out.fault_error) << out.what;
  EXPECT_NE(out.what.find("injected fault"), std::string::npos);
  // The interrupted write is detected and repairable.
  EXPECT_TRUE(WriteJournal::present(dir.path()));
  EXPECT_EQ(check_and_repair(dir.path(), true), RepairOutcome::kRemovedPartial);
  write_golden(dir.path());
  EXPECT_TRUE(snapshot_dir(dir.path()) == golden_snapshot());
}

// ---- storage faults: rewrite-and-revalidate ----

TEST(ChaosRecovery, TornWriteIsRewritten) {
  FaultPlan plan;
  plan.files.push_back({FileFaultKind::kTornWrite, -1, "File_", 0, 1});
  TempDir dir("spio-chaos-torn");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);
  EXPECT_TRUE(any_event_contains(out, "torn_write"));
  expect_clean_recovery(dir.path(), out);
}

TEST(ChaosRecovery, CorruptedByteIsRewritten) {
  FaultPlan plan;
  plan.files.push_back({FileFaultKind::kCorruptByte, -1, "File_", 0, 2});
  TempDir dir("spio-chaos-corrupt");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);
  EXPECT_TRUE(any_event_contains(out, "corrupt_byte"));
  expect_clean_recovery(dir.path(), out);
}

TEST(ChaosRecovery, FailedSyncIsRetried) {
  FaultPlan plan;
  plan.files.push_back({FileFaultKind::kFailedSync, -1, "File_", 0, 1});
  TempDir dir("spio-chaos-sync");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);
  EXPECT_TRUE(any_event_contains(out, "failed_sync"));
  expect_clean_recovery(dir.path(), out);
}

TEST(ChaosRecovery, PersistentTornWriteExhaustsBudgetStructurally) {
  // Fault windows wider than the rewrite budget: the writer must give up
  // with FaultError, leaving a detectable incomplete write behind.
  FaultPlan plan;
  plan.files.push_back({FileFaultKind::kTornWrite, -1, "File_", 0, 100});
  TempDir dir("spio-chaos-torn-forever");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);
  ASSERT_TRUE(out.fault_error) << out.what;
  EXPECT_TRUE(WriteJournal::present(dir.path()));
  EXPECT_THROW(Dataset::open(dir.path()), IncompleteDatasetError);
  EXPECT_EQ(check_and_repair(dir.path(), true), RepairOutcome::kRemovedPartial);
  write_golden(dir.path());
  EXPECT_TRUE(snapshot_dir(dir.path()) == golden_snapshot());
}

TEST(ChaosRecovery, BitRotIsSilentUntilDeepValidation) {
  // Bit rot corrupts after write validation passes: the write completes,
  // shallow checks see nothing, and only the recorded checksums catch it.
  FaultPlan plan;
  plan.files.push_back({FileFaultKind::kBitRot, -1, "File_", 0, 1});
  TempDir dir("spio-chaos-bitrot");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);
  ASSERT_TRUE(out.completed) << out.what;
  EXPECT_TRUE(any_event_contains(out, "bit_rot"));
  EXPECT_FALSE(WriteJournal::present(dir.path()));
  EXPECT_TRUE(validate_dataset(dir.path(), false).ok());
  const ValidationReport deep = validate_dataset(dir.path(), true);
  ASSERT_FALSE(deep.ok());
  EXPECT_NE(deep.errors[0].find("checksum"), std::string::npos);
}

// ---- zone-map sidecar faults: pruning degrades, results never do ----

TEST(ChaosRecovery, TornZoneSidecarWriteIsRewritten) {
  // The sidecar takes the same validated write as the data files, so a
  // torn write is caught by the read-back and rewritten in place.
  FaultPlan plan;
  plan.files.push_back({FileFaultKind::kTornWrite, -1, "zones", 0, 1});
  TempDir dir("spio-chaos-zones-torn");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);
  EXPECT_TRUE(any_event_contains(out, "torn_write"));
  expect_clean_recovery(dir.path(), out);
}

TEST(ChaosRecovery, CorruptZoneSidecarWriteIsRewritten) {
  FaultPlan plan;
  plan.files.push_back({FileFaultKind::kCorruptByte, -1, "zones", 0, 1});
  TempDir dir("spio-chaos-zones-corrupt");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);
  EXPECT_TRUE(any_event_contains(out, "corrupt_byte"));
  expect_clean_recovery(dir.path(), out);
}

TEST(ChaosRecovery, ZoneSidecarBitRotDegradesToZoneFreePlanning) {
  // Bit rot lands after write validation: the sidecar's CRC-64 trailer
  // catches it at load time, the planner falls back to zone-free
  // planning (logged, `planner.zone_fallbacks`), and query results stay
  // exactly right — only the pruning is lost.
  FaultPlan plan;
  plan.files.push_back({FileFaultKind::kBitRot, -1, "zones", 0, 1});
  TempDir dir("spio-chaos-zones-bitrot");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);
  ASSERT_TRUE(out.completed) << out.what;
  EXPECT_TRUE(any_event_contains(out, "bit_rot"));

  // The CRC trailer refuses the rotted sidecar outright.
  EXPECT_THROW(ZoneMapTable::load(dir.path()), FormatError);
  const ValidationReport report = validate_dataset(dir.path(), false);
  EXPECT_FALSE(report.ok());

  const Dataset ds = Dataset::open(dir.path());  // fallback, not refusal
  EXPECT_EQ(ds.planner().zones(), nullptr);
  const Box3 box({0.2, 0.2, 0.2}, {0.8, 0.8, 0.8});
  const ParticleBuffer pruned = ds.query_box(box);
  const ParticleBuffer oracle = ds.query_box_scan_all(box);
  ASSERT_EQ(pruned.byte_size(), oracle.byte_size());
  EXPECT_TRUE(std::equal(pruned.bytes().begin(), pruned.bytes().end(),
                         oracle.bytes().begin()));
}

TEST(ChaosRecovery, MissingZoneSidecarFallsBackWithoutWrongResults) {
  // A deleted sidecar under metadata that promises one: flagged by
  // validation as a warning, planned around at read time.
  TempDir dir("spio-chaos-zones-missing");
  write_golden(dir.path());
  std::filesystem::remove(dir.path() / ZoneMapTable::kFileName);

  const ValidationReport report = validate_dataset(dir.path(), false);
  EXPECT_TRUE(report.ok());
  bool warned = false;
  for (const auto& w : report.warnings)
    warned = warned || w.find("zones.spio") != std::string::npos;
  EXPECT_TRUE(warned) << "no warning mentions the missing sidecar";

  const Dataset ds = Dataset::open(dir.path());
  EXPECT_EQ(ds.planner().zones(), nullptr);
  const Box3 box({0.1, 0.1, 0.1}, {0.9, 0.6, 0.9});
  const ParticleBuffer pruned = ds.query_box(box);
  const ParticleBuffer oracle = ds.query_box_scan_all(box);
  ASSERT_EQ(pruned.byte_size(), oracle.byte_size());
  EXPECT_TRUE(std::equal(pruned.bytes().begin(), pruned.bytes().end(),
                         oracle.bytes().begin()));
}

// ---- rank death: journal makes the crash detectable and repairable ----

TEST(ChaosRecovery, RankDeathDuringDataWriteIsDetectedByRestart) {
  FaultPlan plan;
  plan.deaths.push_back({2, WritePhase::kDataWrite});
  TempDir dir("spio-chaos-death");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);
  ASSERT_TRUE(out.rank_death) << out.what;
  EXPECT_NE(out.what.find("data_write"), std::string::npos);
  EXPECT_TRUE(WriteJournal::present(dir.path()));

  // A restarting job must refuse the torso of the dataset on every rank.
  const PatchDecomposition decomp = test_decomp();
  EXPECT_THROW(simmpi::run(kRanks,
                           [&](simmpi::Comm& comm) {
                             restart_read(comm, decomp, dir.path());
                           }),
               IncompleteDatasetError);

  // Repair, rewrite, and restart cleanly: every particle exactly once.
  EXPECT_EQ(check_and_repair(dir.path(), true), RepairOutcome::kRemovedPartial);
  write_golden(dir.path());
  std::atomic<std::uint64_t> total{0};
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    total += restart_read(comm, decomp, dir.path()).size();
  });
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(kRanks) * kPerRank);
}

TEST(ChaosRecovery, RankDeathAtCommitLeavesIncompleteClassification) {
  // Death between the data writes and the metadata commit: the exact
  // window the journal exists for. Data files are whole, metadata is
  // absent — check_and_repair must call it incomplete, not finalize it.
  FaultPlan plan;
  plan.deaths.push_back({0, WritePhase::kCommit});
  TempDir dir("spio-chaos-death-commit");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);
  ASSERT_TRUE(out.rank_death) << out.what;
  EXPECT_TRUE(WriteJournal::present(dir.path()));
  EXPECT_FALSE(std::filesystem::exists(
      dir.path() / DatasetMetadata::kFileName));
  EXPECT_EQ(check_and_repair(dir.path(), false), RepairOutcome::kIncomplete);
  EXPECT_TRUE(WriteJournal::present(dir.path()));  // left in place
}

// ---- journal protocol edges ----

TEST(ChaosRecovery, StaleJournalOverCompleteDatasetIsFinalized) {
  // Crash after the commit point but before journal removal: everything
  // is durable, only the journal lingers. Repair finalizes instead of
  // discarding a perfectly good dataset.
  TempDir dir("spio-chaos-stale");
  write_golden(dir.path());
  BinaryWriter w;
  w.write<std::uint32_t>(WriteJournal::kMagic);
  w.write<std::uint32_t>(WriteJournal::kVersion);
  write_file(dir.path() / WriteJournal::kFileName, w.bytes());

  // Validation flags the oddity without calling the dataset broken.
  const ValidationReport report = validate_dataset(dir.path(), false);
  EXPECT_TRUE(report.ok());
  ASSERT_FALSE(report.warnings.empty());
  EXPECT_NE(report.warnings[0].find("journal"), std::string::npos);

  EXPECT_EQ(check_and_repair(dir.path(), false),
            RepairOutcome::kFinalizedJournal);
  EXPECT_FALSE(WriteJournal::present(dir.path()));
  EXPECT_TRUE(snapshot_dir(dir.path()) == golden_snapshot());
  EXPECT_TRUE(validate_dataset(dir.path(), true).ok());
}

}  // namespace
}  // namespace spio::chaos
