#include "workload/decomposition.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace spio {

PatchDecomposition::PatchDecomposition(const Box3& domain, const Vec3i& grid)
    : domain_(domain), grid_(grid) {
  SPIO_CHECK(!domain.is_empty(), ConfigError, "domain must be non-empty");
  SPIO_CHECK(grid.x >= 1 && grid.y >= 1 && grid.z >= 1, ConfigError,
             "process grid must be at least 1 in every axis, got " << grid);
}

PatchDecomposition PatchDecomposition::for_ranks(const Box3& domain,
                                                 int nranks) {
  SPIO_CHECK(nranks > 0, ConfigError, "rank count must be positive");
  return PatchDecomposition(domain, near_cubic_factors(nranks));
}

Vec3d PatchDecomposition::patch_size() const {
  return domain_.size() / grid_.cast<double>();
}

Vec3i PatchDecomposition::coord_of(int rank) const {
  SPIO_EXPECTS(rank >= 0 && rank < rank_count());
  const std::int64_t r = rank;
  return {r % grid_.x, (r / grid_.x) % grid_.y, r / (grid_.x * grid_.y)};
}

int PatchDecomposition::rank_of(const Vec3i& c) const {
  SPIO_EXPECTS(c.x >= 0 && c.x < grid_.x);
  SPIO_EXPECTS(c.y >= 0 && c.y < grid_.y);
  SPIO_EXPECTS(c.z >= 0 && c.z < grid_.z);
  return static_cast<int>(c.x + grid_.x * (c.y + grid_.y * c.z));
}

Box3 PatchDecomposition::patch(int rank) const {
  const Vec3i c = coord_of(rank);
  const Vec3d dsize = domain_.size();
  auto edge = [&](std::int64_t i, std::int64_t n, int axis) {
    return domain_.lo[axis] +
           dsize[axis] * (static_cast<double>(i) / static_cast<double>(n));
  };
  Box3 b;
  for (int a = 0; a < 3; ++a) {
    b.lo[a] = edge(c[a], grid_[a], a);
    b.hi[a] = edge(c[a] + 1, grid_[a], a);
  }
  return b;
}

Vec3i PatchDecomposition::cell_of(const Vec3d& p) const {
  Vec3i c;
  const Vec3d rel = (p - domain_.lo) / domain_.size();
  for (int a = 0; a < 3; ++a) {
    // Clamp in the double domain *before* the integer cast: casting
    // NaN, ±inf, or out-of-range doubles to int64 is undefined. The
    // operand order is load-bearing — std::max(0.0, t) yields 0.0 for
    // NaN, which is also what MAXPD(t, 0) produces, so the SIMD binning
    // kernel (src/simd) is bit-identical to this loop, NaN included.
    double t = std::floor(rel[a] * static_cast<double>(grid_[a]));
    t = std::max(0.0, t);
    t = std::min(static_cast<double>(grid_[a] - 1), t);
    c[a] = static_cast<std::int64_t>(t);
  }
  return c;
}

Vec3i near_cubic_factors(int n) {
  SPIO_EXPECTS(n > 0);
  // Greedy: pick the divisor of n closest to its cube root, recurse on the
  // remaining product with the square root.
  auto closest_divisor = [](int m, double target) {
    int best = 1;
    double best_dist = std::abs(target - 1.0);
    for (int d = 1; d <= m; ++d) {
      if (m % d != 0) continue;
      const double dist = std::abs(target - static_cast<double>(d));
      if (dist < best_dist) {
        best = d;
        best_dist = dist;
      }
    }
    return best;
  };
  const int fx = closest_divisor(n, std::cbrt(static_cast<double>(n)));
  const int rest = n / fx;
  const int fy = closest_divisor(rest, std::sqrt(static_cast<double>(rest)));
  const int fz = rest / fy;
  Vec3i f{fx, fy, fz};
  // Sort descending so the x axis gets the largest extent.
  std::int64_t v[3] = {f.x, f.y, f.z};
  std::sort(v, v + 3, std::greater<>());
  return {v[0], v[1], v[2]};
}

}  // namespace spio
