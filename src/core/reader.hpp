#pragma once

/// \file reader.hpp
/// Scalable reads for analysis and visualization (paper §4). A `Dataset`
/// wraps one written dataset directory; spatial queries consult the
/// metadata's bounding boxes to open only the files they intersect, and
/// every file can be read as an LOD prefix (the first `levels` levels)
/// instead of in full.
///
/// Readers are independent of the writer's rank count: any number of
/// processes can open the same dataset and issue disjoint queries, which
/// is the paper's visualization-read scenario (§5.3).
///
/// Every query entry point routes through the shared `ReadEngine`
/// (read_engine.hpp): the intersecting files of a query are read and
/// filtered concurrently by a bounded worker pool (`SPIO_READ_THREADS`),
/// file prefixes are served from an LRU buffer cache (`SPIO_READ_CACHE`)
/// so repeated queries skip disk, and per-particle filtering runs
/// through fused run-copy kernels. Results are merged in file-index
/// order, so output is byte-identical to the serial path; a pool of 1
/// with the cache disabled reproduces serial reads exactly.

#include <filesystem>
#include <functional>
#include <memory>
#include <span>

#include "core/metadata.hpp"
#include "core/query_plan/planner.hpp"
#include "core/read_engine.hpp"
#include "workload/particle_buffer.hpp"

namespace spio {

/// Volume and timing counters for one read operation (accumulated when
/// the same struct is passed to several calls). The symmetric partner of
/// `WriteStats`: reduce across ranks with `ReadStats::max_over`.
struct ReadStats {
  /// Files actually opened and read from disk; a read-cache hit opens
  /// nothing and is counted in `cache_hits` instead.
  int files_opened = 0;
  /// Bytes fetched from disk (cache hits add nothing here).
  std::uint64_t bytes_read = 0;
  /// Particles materialized (from disk or the read cache) before
  /// spatial filtering.
  std::uint64_t particles_scanned = 0;
  /// Particles returned to the caller.
  std::uint64_t particles_returned = 0;
  /// File prefixes served from the read engine's buffer cache / fetched
  /// from disk and inserted into it. Both stay 0 when the cache is
  /// disabled (`SPIO_READ_CACHE=0`).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Candidate files the planner dropped without opening (field-range or
  /// zone-map pruning; the k-d descent's non-candidates are not counted —
  /// they were never considered).
  int files_skipped = 0;
  /// Bytes the zone maps shaved off surviving files' LOD prefixes.
  std::uint64_t lod_bytes_skipped = 0;

  /// Wall time spent inside data-file reads on this rank.
  double file_io_seconds = 0;
  /// Wall time of the redistribution exchange (`distributed_read` only).
  double exchange_seconds = 0;

  /// Read amplification: particles fetched from disk per particle
  /// actually returned (1.0 = perfect locality; equals the byte ratio
  /// since every record has the same size). 0 when nothing was returned.
  double read_amplification() const {
    if (particles_returned == 0) return 0.0;
    return static_cast<double>(particles_scanned) /
           static_cast<double>(particles_returned);
  }

  /// Field-wise merge of another rank's (or another call's) counters.
  void accumulate(const ReadStats& o) {
    files_opened += o.files_opened;
    bytes_read += o.bytes_read;
    particles_scanned += o.particles_scanned;
    particles_returned += o.particles_returned;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    files_skipped += o.files_skipped;
    lod_bytes_skipped += o.lod_bytes_skipped;
    file_io_seconds += o.file_io_seconds;
    exchange_seconds += o.exchange_seconds;
  }

  /// Element-wise max of times, sum of volumes; the job-level view
  /// (mirrors `WriteStats::max_over`).
  static ReadStats max_over(const ReadStats& a, const ReadStats& b);
};

class Dataset {
 public:
  /// Open `<dir>/meta.spio` and validate it. Throws `IoError` /
  /// `FormatError` on missing or corrupt metadata.
  static Dataset open(const std::filesystem::path& dir);

  const DatasetMetadata& metadata() const { return meta_; }
  const std::filesystem::path& dir() const { return dir_; }
  int file_count() const { return static_cast<int>(meta_.files.size()); }

  /// Number of particles in the first `levels` LOD levels of file
  /// `file_index`, for `n_readers` reading processes. `levels < 0` means
  /// all of them. The level-size law is global (`n·P·S^l` particles across
  /// the dataset, §3.4); each file contributes its proportional share.
  std::uint64_t level_prefix_count(int file_index, int levels,
                                   int n_readers) const;

  /// Read the first `levels` LOD levels of one data file (`levels < 0`:
  /// the whole file). Only the prefix bytes are read from disk.
  ParticleBuffer read_data_file(int file_index, int levels = -1,
                                int n_readers = 1,
                                ReadStats* stats = nullptr) const;

  /// One file's LOD prefix as fetched through the read engine (bytes
  /// shared with the buffer cache when it is on) plus its record count.
  /// `fetched.mirror` carries the cached SoA position mirror when one
  /// exists, letting callers run the SIMD kernels without re-gathering.
  struct FilePrefix {
    ReadEngine::Fetched fetched;
    std::uint64_t count = 0;
    std::span<const std::byte> bytes() const { return fetched.bytes(); }
    /// The SoA mirror for the SIMD dispatch wrappers (null = scalar).
    const PositionMirror* mirror() const { return fetched.mirror.get(); }
  };

  /// Scan-side fetch of file `file_index`'s LOD prefix. Counts only scan
  /// accounting into `stats` (files_opened, bytes_read,
  /// particles_scanned, cache_*, file_io_seconds) — never
  /// `particles_returned`, so callers never have to un-count records
  /// they end up filtering out.
  FilePrefix fetch_file(int file_index, int levels, int n_readers,
                        ReadStats* stats) const;

  /// Same, but fetching exactly the first `records` records — the
  /// planner's zone-clamped fetch size (`FilePlan::fetch_records`).
  FilePrefix fetch_file_records(int file_index, std::uint64_t records,
                                ReadStats* stats) const;

  /// Spatial box query via the metadata (§4): reads only the files whose
  /// bounds intersect `box`, filters particles of partially-covered files,
  /// optionally LOD-bounded. Requires spatial metadata.
  ParticleBuffer query_box(const Box3& box, int levels = -1,
                           int n_readers = 1,
                           ReadStats* stats = nullptr) const;

  /// A predicate on one scalar field component: keep particles with
  /// value in [lo, hi]. Used by `query` to combine spatial and attribute
  /// selection; files whose metadata range misses [lo, hi] are skipped
  /// without being opened (§3.5 extension). (An alias of the
  /// namespace-scope `spio::RangeFilter` the fused kernels take.)
  using RangeFilter = spio::RangeFilter;

  /// Combined spatial + attribute query: files are pruned first by
  /// bounding box, then by the recorded field ranges; surviving files are
  /// read (LOD-bounded) and particles filtered exactly. Requires spatial
  /// metadata; attribute pruning additionally requires field ranges (it
  /// degrades to exact filtering without them).
  ParticleBuffer query(const Box3& box, std::span<const RangeFilter> filters,
                       int levels = -1, int n_readers = 1,
                       ReadStats* stats = nullptr) const;

  /// Files surviving both the bounding-box and field-range pruning.
  std::vector<int> files_matching(const Box3& box,
                                  std::span<const RangeFilter> filters) const;

  /// Streaming box query for memory-bounded consumers (the paper's
  /// workstation-visualization motivation: "the data does not fit in the
  /// available memory"): matching particles are delivered file by file
  /// through `sink` instead of being materialized in one buffer. Each
  /// chunk holds only particles inside `box`, in LOD order within its
  /// file; peak memory is one file's prefix. Returns the number of
  /// particles delivered. `sink` may return false to stop early (e.g.
  /// once a display budget is filled).
  std::uint64_t stream_box(
      const Box3& box,
      const std::function<bool(const ParticleBuffer& chunk)>& sink,
      int levels = -1, int n_readers = 1, ReadStats* stats = nullptr) const;

  /// The spatially-unaware baseline: read *every* file in full and filter
  /// ("every process [must] read all particles across all the files and
  /// then cherry-pick", §4). Works without bounding boxes.
  ParticleBuffer query_box_scan_all(const Box3& box,
                                    ReadStats* stats = nullptr) const;

  /// Total number of LOD levels of this dataset for `n_readers`.
  int level_count(int n_readers) const;

  /// The pruned query plan the reading entry points execute (k-d
  /// candidates, field-range pruning, zone-map file skips and LOD tail
  /// clamps; query_plan/planner.hpp). Published for tools and the
  /// differential property suite. Requires spatial metadata.
  QueryPlan plan_query(const Box3& box, std::span<const RangeFilter> filters,
                       int levels = -1, int n_readers = 1) const;

  /// The linear-scan oracle plan (pre-k-d, pre-zone behaviour): bbox scan
  /// + field-range pruning, full LOD prefixes.
  QueryPlan plan_reference(const Box3& box,
                           std::span<const RangeFilter> filters,
                           int levels = -1, int n_readers = 1) const;

  /// The k-d tree over this dataset's partition boxes (null when the
  /// dataset has no spatial metadata). `distributed_read` and the kNN
  /// search drive their own traversals with it.
  const std::shared_ptr<const BoxKdTree>& spatial_tree() const {
    return meta_.spatial_tree;
  }

  /// This dataset's planner (always set; linear mode under
  /// `SPIO_PLAN=linear` or for bound-less datasets).
  const QueryPlanner& planner() const { return *planner_; }

  /// Base slot of this dataset in the spatial access profiler
  /// (obs/access_profile.hpp); per-file slot = base + file index. -1
  /// when the profiler's slot table had no room. Opening registers the
  /// dataset's partition bboxes so every fetch is attributed always-on.
  int profile_base() const { return profile_base_; }

 private:
  Dataset(std::filesystem::path dir, DatasetMetadata meta);

  /// Files intersecting `box`, via the k-d tree when available.
  std::vector<int> intersecting(const Box3& box) const;

  /// Plan a query, record the planner span/metrics and the skip counters
  /// in `stats` — the shared front half of every query entry point.
  QueryPlan run_plan(const Box3& box, std::span<const RangeFilter> filters,
                     int levels, int n_readers, ReadStats* stats) const;

  /// The shared fan-out body of `query_box` / `query` /
  /// `query_box_scan_all`: read every planned file through the engine
  /// (concurrently when the pool allows), filter with the fused kernels,
  /// and merge the per-file results into `out` in plan order — the
  /// serial path's order, keeping output byte-identical.
  /// `whole_file_fast_path` enables the contains_box shortcut (spatial
  /// queries only; attribute queries must always filter). Returns
  /// particles appended to `out`.
  std::uint64_t filter_files_into(std::span<const FilePlan> files,
                                  const Box3& box,
                                  std::span<const RangeFilter> filters,
                                  bool whole_file_fast_path,
                                  ParticleBuffer& out,
                                  ReadStats* stats) const;

  std::filesystem::path dir_;
  DatasetMetadata meta_;
  /// The query planner (k-d tree + zone maps + plan mode); shared so
  /// Dataset stays cheaply copyable.
  std::shared_ptr<const QueryPlanner> planner_;
  /// Access-profiler slot base (see profile_base()).
  int profile_base_ = -1;
};

/// The tile of the domain assigned to reader `rank` of `nranks` — the
/// distributed-rendering read pattern: disjoint tiles covering the domain.
Box3 reader_tile(const Box3& domain, int rank, int nranks);

}  // namespace spio
