file(REMOVE_RECURSE
  "../examples/uintah_checkpoint"
  "../examples/uintah_checkpoint.pdb"
  "CMakeFiles/uintah_checkpoint.dir/uintah_checkpoint.cpp.o"
  "CMakeFiles/uintah_checkpoint.dir/uintah_checkpoint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uintah_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
