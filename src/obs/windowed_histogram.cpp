#include "obs/windowed_histogram.hpp"

#include <algorithm>
#include <bit>

namespace spio::obs {

std::size_t WindowedHistogram::bucket_index(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const std::size_t exp = static_cast<std::size_t>(std::bit_width(v)) - 1;
  const std::size_t sub =
      static_cast<std::size_t>(v >> (exp - kSubBits)) & (kSubBuckets - 1);
  return (exp - kSubBits + 1) * kSubBuckets + sub;
}

std::uint64_t WindowedHistogram::bucket_lower(std::size_t idx) {
  if (idx < kSubBuckets) return idx;
  const std::size_t block = idx / kSubBuckets;
  const std::size_t sub = idx % kSubBuckets;
  const std::size_t exp = block + kSubBits - 1;
  return (std::uint64_t{1} << exp) |
         (static_cast<std::uint64_t>(sub) << (exp - kSubBits));
}

std::uint64_t WindowedHistogram::bucket_upper(std::size_t idx) {
  return idx + 1 < kBuckets ? bucket_lower(idx + 1) - 1 : ~std::uint64_t{0};
}

void WindowedHistogram::rotate() {
  const std::size_t next =
      (cur_.load(std::memory_order_relaxed) + 1) % kWindows;
  Window& w = windows_[next];
  for (auto& b : w.buckets) b.store(0, std::memory_order_relaxed);
  w.count.store(0, std::memory_order_relaxed);
  w.sum.store(0, std::memory_order_relaxed);
  cur_.store(next, std::memory_order_release);
}

WindowedHistogram::Merged WindowedHistogram::merged() const {
  std::array<std::uint64_t, kBuckets> acc{};
  Merged m;
  for (const Window& w : windows_) {
    for (std::size_t i = 0; i < kBuckets; ++i)
      acc[i] += w.buckets[i].load(std::memory_order_relaxed);
    m.sum += w.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : acc) m.count += c;
  if (m.count == 0) return m;

  const auto rank_value = [&](double q) {
    const std::uint64_t rank = std::min<std::uint64_t>(
        m.count - 1, static_cast<std::uint64_t>(q * static_cast<double>(m.count)));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cum += acc[i];
      if (cum > rank) return bucket_upper(i);
    }
    return bucket_upper(kBuckets - 1);
  };
  m.p50 = rank_value(0.50);
  m.p95 = rank_value(0.95);
  m.p99 = rank_value(0.99);
  return m;
}

std::uint64_t WindowedHistogram::quantile(double q) const {
  std::array<std::uint64_t, kBuckets> acc{};
  std::uint64_t count = 0;
  for (const Window& w : windows_) {
    for (std::size_t i = 0; i < kBuckets; ++i)
      acc[i] += w.buckets[i].load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : acc) count += c;
  if (count == 0) return 0;
  const std::uint64_t rank = std::min<std::uint64_t>(
      count - 1, static_cast<std::uint64_t>(q * static_cast<double>(count)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += acc[i];
    if (cum > rank) return bucket_upper(i);
  }
  return bucket_upper(kBuckets - 1);
}

void WindowedHistogram::reset() {
  for (Window& w : windows_) {
    for (auto& b : w.buckets) b.store(0, std::memory_order_relaxed);
    w.count.store(0, std::memory_order_relaxed);
    w.sum.store(0, std::memory_order_relaxed);
  }
  cur_.store(0, std::memory_order_relaxed);
  total_count_.store(0, std::memory_order_relaxed);
  total_sum_.store(0, std::memory_order_relaxed);
}

}  // namespace spio::obs
