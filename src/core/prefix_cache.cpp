#include "core/prefix_cache.hpp"

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "simd/position_mirror.hpp"

namespace spio {

namespace {

void publish_counter(const char* name, std::uint64_t delta) {
  if (delta == 0 || !obs::stats_enabled()) return;
  obs::MetricsRegistry::global().counter(name).add(delta);
}

}  // namespace

std::uint64_t PrefixCache::entry_bytes(const Entry& e) {
  return e.data->size() + (e.mirror ? e.mirror->byte_size() : 0);
}

std::shared_ptr<const ByteBlock> PrefixCache::lookup(
    const std::string& key, const FileSig& sig,
    std::shared_ptr<const PositionMirror>* mirror) {
  std::uint64_t evicted_delta = 0;
  std::shared_ptr<const ByteBlock> found;
  if (mirror) mirror->reset();
  {
    std::lock_guard lk(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      Entry& e = *it->second;
      if (e.sig.size == sig.size && e.sig.mtime_ns == sig.mtime_ns) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++stats_.hits;
        found = e.data;
        if (mirror) *mirror = e.mirror;
      } else {
        // Stale entry (the file was rewritten in place): drop it — the
        // mirror with it — and the caller re-reads and re-inserts under
        // the fresh signature.
        evicted_delta += entry_bytes(e);
        evict_locked(it->second);
      }
    }
  }
  if (found) {
    publish_counter("reader.cache.hits", 1);
    return found;
  }
  publish_counter("reader.cache.bytes_evicted", evicted_delta);
  return nullptr;
}

void PrefixCache::insert(const std::string& key,
                         std::shared_ptr<const ByteBlock> data,
                         const FileSig& sig,
                         std::shared_ptr<const PositionMirror> mirror) {
  const std::uint64_t charge =
      data->size() + (mirror ? mirror->byte_size() : 0);
  std::uint64_t evicted_delta = 0;
  {
    std::lock_guard lk(mu_);
    ++stats_.misses;
    if (charge <= budget_) {
      const auto raced = map_.find(key);  // a concurrent miss beat us
      if (raced != map_.end()) {
        evicted_delta += entry_bytes(*raced->second);
        evict_locked(raced->second);
      }
      const std::uint64_t before = stats_.bytes_evicted;
      shrink_to_locked(budget_ - charge);
      evicted_delta += stats_.bytes_evicted - before;
      bytes_held_ += charge;
      lru_.push_front(Entry{key, std::move(data), std::move(mirror), sig});
      map_.emplace(key, lru_.begin());
    }
  }
  publish_counter("reader.cache.misses", 1);
  publish_counter("reader.cache.bytes_evicted", evicted_delta);
}

void PrefixCache::invalidate(const std::string& key) {
  std::uint64_t evicted_delta = 0;
  {
    std::lock_guard lk(mu_);
    const auto it = map_.find(key);
    if (it == map_.end()) return;
    evicted_delta = entry_bytes(*it->second);
    evict_locked(it->second);
  }
  publish_counter("reader.cache.bytes_evicted", evicted_delta);
}

void PrefixCache::clear() {
  std::uint64_t evicted_delta = 0;
  {
    std::lock_guard lk(mu_);
    const std::uint64_t before = stats_.bytes_evicted;
    shrink_to_locked(0);
    evicted_delta = stats_.bytes_evicted - before;
  }
  publish_counter("reader.cache.bytes_evicted", evicted_delta);
}

void PrefixCache::set_budget(std::uint64_t bytes) {
  std::uint64_t evicted_delta = 0;
  {
    std::lock_guard lk(mu_);
    budget_ = bytes;
    const std::uint64_t before = stats_.bytes_evicted;
    shrink_to_locked(budget_);
    evicted_delta = stats_.bytes_evicted - before;
  }
  publish_counter("reader.cache.bytes_evicted", evicted_delta);
}

std::uint64_t PrefixCache::budget() const {
  std::lock_guard lk(mu_);
  return budget_;
}

void PrefixCache::reset_stats() {
  std::lock_guard lk(mu_);
  stats_ = ReadCacheStats{};
}

ReadCacheStats PrefixCache::stats() const {
  std::lock_guard lk(mu_);
  ReadCacheStats s = stats_;
  s.bytes_held = bytes_held_;
  s.entries = map_.size();
  return s;
}

void PrefixCache::evict_locked(LruList::iterator it) {
  const std::uint64_t bytes = entry_bytes(*it);
  bytes_held_ -= bytes;
  stats_.bytes_evicted += bytes;
  ++stats_.evictions;
  map_.erase(it->key);
  lru_.erase(it);
}

void PrefixCache::shrink_to_locked(std::uint64_t target) {
  while (bytes_held_ > target && !lru_.empty())
    evict_locked(std::prev(lru_.end()));
}

ShardedPrefixCache::ShardedPrefixCache(std::uint64_t total_budget,
                                       int shards) {
  const std::size_t n = shards < 1 ? 1 : static_cast<std::size_t>(shards);
  shards_.reserve(n);
  const std::uint64_t each = total_budget / n;
  const std::uint64_t extra = total_budget % n;
  for (std::size_t i = 0; i < n; ++i)
    shards_.push_back(
        std::make_unique<PrefixCache>(each + (i < extra ? 1 : 0)));
}

void ShardedPrefixCache::clear() {
  for (auto& s : shards_) s->clear();
}

std::uint64_t ShardedPrefixCache::budget() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->budget();
  return total;
}

void ShardedPrefixCache::set_budget(std::uint64_t bytes) {
  const std::size_t n = shards_.size();
  const std::uint64_t each = bytes / n;
  const std::uint64_t extra = bytes % n;
  for (std::size_t i = 0; i < n; ++i)
    shards_[i]->set_budget(each + (i < extra ? 1 : 0));
}

void ShardedPrefixCache::reset_stats() {
  for (auto& s : shards_) s->reset_stats();
}

ReadCacheStats ShardedPrefixCache::stats() const {
  ReadCacheStats total;
  for (const auto& s : shards_) {
    const ReadCacheStats one = s->stats();
    total.hits += one.hits;
    total.misses += one.misses;
    total.evictions += one.evictions;
    total.bytes_evicted += one.bytes_evicted;
    total.bytes_held += one.bytes_held;
    total.entries += one.entries;
  }
  return total;
}

}  // namespace spio
