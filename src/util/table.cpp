#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace spio {

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  SPIO_EXPECTS(!header_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

Table& Table::add(std::string cell) {
  SPIO_EXPECTS(!rows_.empty());
  SPIO_EXPECTS(rows_.back().size() < header_.size());
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return add(buf);
}

Table& Table::add_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return add(buf);
}

Table& Table::add_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return add(buf);
}

const std::string& Table::cell(std::size_t r, std::size_t c) const {
  SPIO_EXPECTS(r < rows_.size());
  SPIO_EXPECTS(c < rows_[r].size());
  return rows_[r][c];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << s;
      if (c + 1 < header_.size())
        os << std::string(width[c] - s.size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < header_.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
}

void Table::print_csv(std::ostream& os) const {
  os << "# " << title_ << '\n';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << header_[c] << (c + 1 < header_.size() ? "," : "\n");
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      os << r[c] << (c + 1 < r.size() ? "," : "\n");
}

}  // namespace spio
