#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include "util/temp_dir.hpp"

namespace spio {
namespace {

TEST(BinaryRoundTrip, ScalarsInOrder) {
  BinaryWriter w;
  w.write<std::uint32_t>(7);
  w.write<double>(3.25);
  w.write<std::int8_t>(-2);

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.read<std::uint32_t>(), 7u);
  EXPECT_EQ(r.read<double>(), 3.25);
  EXPECT_EQ(r.read<std::int8_t>(), -2);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryRoundTrip, VectorWithLengthPrefix) {
  BinaryWriter w;
  std::vector<std::uint64_t> v{1, 2, 3, 4};
  w.write_vector(v);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.read_vector<std::uint64_t>(), v);
}

TEST(BinaryRoundTrip, EmptyVector) {
  BinaryWriter w;
  w.write_vector(std::vector<double>{});
  BinaryReader r(w.bytes());
  EXPECT_TRUE(r.read_vector<double>().empty());
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryRoundTrip, Strings) {
  BinaryWriter w;
  w.write_string("position");
  w.write_string("");
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.read_string(), "position");
  EXPECT_EQ(r.read_string(), "");
}

TEST(BinaryReader, TruncatedScalarThrows) {
  BinaryWriter w;
  w.write<std::uint16_t>(5);
  BinaryReader r(w.bytes());
  EXPECT_THROW(r.read<std::uint64_t>(), FormatError);
}

TEST(BinaryReader, OversizedLengthPrefixThrows) {
  BinaryWriter w;
  w.write<std::uint64_t>(1'000'000);  // claims a million elements
  BinaryReader r(w.bytes());
  EXPECT_THROW(r.read_vector<double>(), FormatError);
}

TEST(BinaryReader, OversizedStringThrows) {
  BinaryWriter w;
  w.write<std::uint64_t>(100);
  w.write<std::uint8_t>('x');
  BinaryReader r(w.bytes());
  EXPECT_THROW(r.read_string(), FormatError);
}

TEST(BinaryReader, RemainingAndPositionTrack) {
  BinaryWriter w;
  w.write<std::uint32_t>(1);
  w.write<std::uint32_t>(2);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.read<std::uint32_t>();
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(FileIo, WriteReadRoundTrip) {
  TempDir dir("serialize-test");
  const auto path = dir.file("blob.bin");
  std::vector<std::byte> payload(1000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>(i % 251);
  write_file(path, payload);
  EXPECT_EQ(file_size_bytes(path), payload.size());
  EXPECT_EQ(read_file(path), payload);
}

TEST(FileIo, RangedRead) {
  TempDir dir("serialize-test");
  const auto path = dir.file("blob.bin");
  std::vector<std::byte> payload(100);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>(i);
  write_file(path, payload);

  const auto mid = read_file_range(path, 10, 20);
  ASSERT_EQ(mid.size(), 20u);
  for (std::size_t i = 0; i < mid.size(); ++i)
    EXPECT_EQ(mid[i], static_cast<std::byte>(10 + i));
}

TEST(FileIo, RangePastEndThrowsFormatError) {
  TempDir dir("serialize-test");
  const auto path = dir.file("blob.bin");
  write_file(path, std::vector<std::byte>(10));
  EXPECT_THROW(read_file_range(path, 5, 10), FormatError);
}

TEST(FileIo, MissingFileThrowsIoError) {
  TempDir dir("serialize-test");
  EXPECT_THROW(read_file(dir.file("nope.bin")), IoError);
  EXPECT_THROW(file_size_bytes(dir.file("nope.bin")), IoError);
}

TEST(FileIo, AppendExtendsFile) {
  TempDir dir("serialize-test");
  const auto path = dir.file("log.bin");
  std::vector<std::byte> a(3, std::byte{1}), b(2, std::byte{2});
  append_file(path, a);
  append_file(path, b);
  const auto all = read_file(path);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0], std::byte{1});
  EXPECT_EQ(all[4], std::byte{2});
}

TEST(FileIo, OverwriteReplacesContent) {
  TempDir dir("serialize-test");
  const auto path = dir.file("blob.bin");
  write_file(path, std::vector<std::byte>(100, std::byte{7}));
  write_file(path, std::vector<std::byte>(3, std::byte{9}));
  EXPECT_EQ(file_size_bytes(path), 3u);
}

}  // namespace
}  // namespace spio
