#pragma once

/// \file kernels_x86_body.hpp
/// Internal: the shared kernel bodies, templated over a per-ISA Traits
/// type. Each ISA TU (kernels_sse2.cpp, kernels_avx2.cpp) defines a
/// Traits with `kLanes`, a vector register type `Reg`, and the small
/// set of ops the bodies need, then instantiates these templates. The
/// header itself contains no intrinsics, so it compiles at any ISA.
///
/// A Traits must provide:
///   static constexpr std::size_t kLanes;       // f64 lanes per Reg
///   using Reg = ...;
///   static Reg load(const double*);            // unaligned
///   static Reg set1(double);
///   static Reg cmp_ge(Reg, Reg);               // ordered: NaN -> false
///   static Reg cmp_lt(Reg, Reg);               // ordered: NaN -> false
///   static Reg and_(Reg, Reg);
///   static unsigned movemask(Reg);             // sign bit per lane
///   static Reg add(Reg, Reg);
///   static Reg sub(Reg, Reg);
///   static Reg div(Reg, Reg);                  // true IEEE divide
///   static Reg mul(Reg, Reg);
///   static Reg floor_(Reg);
///   static Reg max_(Reg a, Reg b);             // NaN in a -> b (MAXPD)
///   static Reg min_(Reg a, Reg b);             // NaN in a -> b (MINPD)
///   static void to_int32(Reg, std::int32_t*);  // truncating, pre-clamped
///
/// Byte-identity with the fused scalar kernels rests on two facts used
/// throughout: every compare is ordered (NaN fails, matching scalar
/// `>=`/`<`), and the arithmetic sequences are the scalar ones
/// operation for operation (sub, divide — never a reciprocal multiply —
/// mul, floor, clamp), so IEEE determinism makes each lane bit-equal to
/// the scalar loop. Matching records are then copied from the very same
/// AoS bytes with the same run-closure `append_records` calls.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "simd/kernels.hpp"
#include "simd/position_mirror.hpp"
#include "util/box.hpp"
#include "workload/decomposition.hpp"
#include "workload/particle_buffer.hpp"

namespace spio::simd::detail {

/// Folds a stream of per-record keep/drop decisions (indices strictly
/// increasing) into runs *without touching the AoS bytes*, then copies
/// them in one `flush`. The fused scalar kernels must copy each run the
/// moment it closes (their scan is the expensive part); here the scan
/// over the mirror is cheap, so deferring the copies buys an exact
/// `reserve` — the regrowth copies of a large output cost more than the
/// run bookkeeping. Runs flush in record order, so the output bytes are
/// unchanged.
class RunCollector {
 public:
  void keep(std::size_t i) {
    if (run_ == kNone) run_ = i;
  }
  void drop(std::size_t i) {
    if (run_ != kNone) close(i);
  }
  std::uint64_t finish(std::size_t n) {
    if (run_ != kNone) close(n);
    return kept_;
  }

  /// One exact reserve, then one memcpy per run.
  void flush(const std::byte* base, std::size_t record_size,
             ParticleBuffer& out) const {
    out.reserve(out.size() + static_cast<std::size_t>(kept_));
    for (const Run& r : runs_)
      out.append_records(base + r.start * record_size, r.len);
  }

 private:
  struct Run {
    std::size_t start;
    std::size_t len;
  };

  void close(std::size_t end) {
    runs_.push_back({run_, end - run_});
    kept_ += end - run_;
    run_ = kNone;
  }

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<Run> runs_;
  std::size_t run_ = kNone;
  std::uint64_t kept_ = 0;
};

/// Scalar range check against the AoS record — exactly the fused
/// kernel's hoisted-filter loop (NaN passes: `!(v < lo || v > hi)`).
inline bool record_passes_ranges(const std::byte* r, const RangePred* preds,
                                 std::size_t npreds) {
  for (std::size_t k = 0; k < npreds; ++k) {
    const RangePred& h = preds[k];
    double v;
    if (h.is_f64) {
      std::memcpy(&v, r + h.offset, sizeof(double));
    } else {
      float f;
      std::memcpy(&f, r + h.offset, sizeof(float));
      v = static_cast<double>(f);
    }
    if (v < h.lo || v > h.hi) return false;
  }
  return true;
}

/// Box-mask state shared by the two filter kernels: six broadcast
/// planes, one fused in-box mask per vector of mirrored positions.
template <class T>
struct BoxMask {
  explicit BoxMask(const Box3& box)
      : lox(T::set1(box.lo.x)), hix(T::set1(box.hi.x)),
        loy(T::set1(box.lo.y)), hiy(T::set1(box.hi.y)),
        loz(T::set1(box.lo.z)), hiz(T::set1(box.hi.z)) {}

  unsigned bits(const double* xs, const double* ys, const double* zs,
                std::size_t i) const {
    const typename T::Reg x = T::load(xs + i);
    const typename T::Reg y = T::load(ys + i);
    const typename T::Reg z = T::load(zs + i);
    const typename T::Reg in = T::and_(
        T::and_(T::and_(T::cmp_ge(x, lox), T::cmp_lt(x, hix)),
                T::and_(T::cmp_ge(y, loy), T::cmp_lt(y, hiy))),
        T::and_(T::cmp_ge(z, loz), T::cmp_lt(z, hiz)));
    return T::movemask(in);
  }

  typename T::Reg lox, hix, loy, hiy, loz, hiz;
};

template <class T>
std::uint64_t filter_box_body(const PositionMirror& mirror,
                              const std::byte* base, std::size_t record_size,
                              const Box3& box, ParticleBuffer& out) {
  constexpr std::size_t W = T::kLanes;
  constexpr unsigned kFull = (1u << W) - 1;
  const std::size_t n = mirror.size();
  const double* xs = mirror.x();
  const double* ys = mirror.y();
  const double* zs = mirror.z();
  const BoxMask<T> mask(box);
  RunCollector runs;

  // The mirror's tail is NaN-padded to a lane multiple and NaN fails
  // every ordered compare, so the vector loop covers the ragged tail:
  // padding lanes read as drops, which also closes a run ending at n.
  const std::size_t padded = (n + W - 1) / W * W;
  for (std::size_t i = 0; i < padded; i += W) {
    const unsigned bits = mask.bits(xs, ys, zs, i);
    if (bits == kFull) {
      runs.keep(i);
    } else if (bits == 0) {
      runs.drop(i);
    } else {
      for (std::size_t b = 0; b < W; ++b) {
        if (bits & (1u << b)) {
          runs.keep(i + b);
        } else {
          runs.drop(i + b);
        }
      }
    }
  }
  const std::uint64_t kept = runs.finish(n);
  runs.flush(base, record_size, out);
  return kept;
}

template <class T>
std::uint64_t filter_box_ranges_body(const PositionMirror& mirror,
                                     const std::byte* base,
                                     std::size_t record_size, const Box3& box,
                                     const RangePred* preds,
                                     std::size_t npreds, ParticleBuffer& out) {
  constexpr std::size_t W = T::kLanes;
  const std::size_t n = mirror.size();
  const double* xs = mirror.x();
  const double* ys = mirror.y();
  const double* zs = mirror.z();
  const BoxMask<T> mask(box);
  RunCollector runs;

  // Box predicate at full vector width over the mirror; only the lanes
  // it passes pay the scalar range loads from the AoS record. Padding
  // lanes are NaN, fail the box mask, and so never touch the buffer.
  const std::size_t padded = (n + W - 1) / W * W;
  for (std::size_t i = 0; i < padded; i += W) {
    const unsigned bits = mask.bits(xs, ys, zs, i);
    if (bits == 0) {
      runs.drop(i);
      continue;
    }
    for (std::size_t b = 0; b < W; ++b) {
      const std::size_t idx = i + b;
      if ((bits & (1u << b)) &&
          record_passes_ranges(base + idx * record_size, preds, npreds)) {
        runs.keep(idx);
      } else {
        runs.drop(idx);
      }
    }
  }
  const std::uint64_t kept = runs.finish(n);
  runs.flush(base, record_size, out);
  return kept;
}

template <class T>
void bin_by_owner_body(const PositionMirror& mirror, const std::byte* base,
                       std::size_t record_size,
                       const PatchDecomposition& decomp,
                       std::vector<ParticleBuffer>& outgoing) {
  constexpr std::size_t W = T::kLanes;
  // Owners for one chunk of records, computed vector-wide, then folded
  // into runs scalar-side. A multiple of the widest lane count so every
  // vector store stays inside the chunk buffer.
  constexpr std::size_t kChunk = 1024;
  static_assert(kChunk % 8 == 0);

  const std::size_t n = mirror.size();
  const double* xs = mirror.x();
  const double* ys = mirror.y();
  const double* zs = mirror.z();

  // Exactly cell_of + rank_of, vectorized. rel = (p - lo) / size, then
  // floor(rel * grid), clamped into [0, grid-1] in the double domain
  // (max_ with the NaN operand first maps NaN to 0, the same value the
  // scalar std::max(0.0, t) produces). The rank combine
  // cx + gx*(cy + gy*cz) runs in doubles: every operand is an integer
  // below 2^31 and every intermediate below rank_count() <= INT_MAX, so
  // the arithmetic is exact and one truncating convert yields the rank.
  const Box3& dom = decomp.domain();
  const Vec3d dsize = dom.size();
  const Vec3i& grid = decomp.grid();
  const typename T::Reg lo_x = T::set1(dom.lo.x), lo_y = T::set1(dom.lo.y),
                        lo_z = T::set1(dom.lo.z);
  const typename T::Reg sz_x = T::set1(dsize.x), sz_y = T::set1(dsize.y),
                        sz_z = T::set1(dsize.z);
  const typename T::Reg g_x = T::set1(static_cast<double>(grid.x)),
                        g_y = T::set1(static_cast<double>(grid.y)),
                        g_z = T::set1(static_cast<double>(grid.z));
  const typename T::Reg gm1_x = T::set1(static_cast<double>(grid.x - 1)),
                        gm1_y = T::set1(static_cast<double>(grid.y - 1)),
                        gm1_z = T::set1(static_cast<double>(grid.z - 1));
  const typename T::Reg zero = T::set1(0.0);

  const auto axis_cell = [&](const double* lanes, std::size_t i,
                             typename T::Reg lo, typename T::Reg sz,
                             typename T::Reg g, typename T::Reg gm1) {
    typename T::Reg t = T::div(T::sub(T::load(lanes + i), lo), sz);
    t = T::floor_(T::mul(t, g));
    return T::min_(T::max_(t, zero), gm1);
  };

  struct OwnerRun {
    std::size_t start;
    std::size_t len;
    int owner;
  };
  std::vector<OwnerRun> runs;
  std::vector<std::size_t> totals(outgoing.size(), 0);
  int cur_owner = -1;
  std::size_t run_start = 0;
  const auto close_run = [&](std::size_t end) {
    if (cur_owner >= 0 && end > run_start) {
      runs.push_back({run_start, end - run_start, cur_owner});
      totals[static_cast<std::size_t>(cur_owner)] += end - run_start;
    }
  };

  std::int32_t owners[kChunk];
  for (std::size_t chunk = 0; chunk < n; chunk += kChunk) {
    const std::size_t cn = std::min(kChunk, n - chunk);
    // Vector loop may overrun cn up to the next lane multiple — those
    // lanes read NaN padding (owner 0 after the clamp) and are never
    // consumed by the fold below.
    for (std::size_t j = 0; j < cn; j += W) {
      const typename T::Reg cx =
          axis_cell(xs, chunk + j, lo_x, sz_x, g_x, gm1_x);
      const typename T::Reg cy =
          axis_cell(ys, chunk + j, lo_y, sz_y, g_y, gm1_y);
      const typename T::Reg cz =
          axis_cell(zs, chunk + j, lo_z, sz_z, g_z, gm1_z);
      const typename T::Reg owner =
          T::add(cx, T::mul(g_x, T::add(cy, T::mul(g_y, cz))));
      T::to_int32(owner, owners + j);
    }
    for (std::size_t j = 0; j < cn; ++j) {
      const int owner = owners[j];
      if (owner != cur_owner) {
        close_run(chunk + j);
        cur_owner = owner;
        run_start = chunk + j;
      }
    }
  }
  close_run(n);

  // Two-pass append, identical to the fused scalar kernel: exact
  // reserves, then one memcpy per run.
  for (std::size_t o = 0; o < outgoing.size(); ++o)
    if (totals[o] > 0) outgoing[o].reserve(outgoing[o].size() + totals[o]);
  for (const OwnerRun& r : runs)
    outgoing[static_cast<std::size_t>(r.owner)].append_records(
        base + r.start * record_size, r.len);
}

}  // namespace spio::simd::detail
