#include <gtest/gtest.h>

#include <set>

#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

/// Functional verification of the paper's §3.1 claim: "communication
/// during the data aggregation phase is localized to each aggregation
/// partition, confined to a group of Px × Py × Pz processes" — checked
/// on the real message traffic of a write (simmpi counts every
/// point-to-point byte; collectives move through shared memory and do
/// not blur the picture).

TEST(CommunicationLocality, SendersTalkOnlyToTheirAggregator) {
  constexpr int kRanks = 32;
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 2});
  const PartitionFactor factor{2, 2, 2};
  const auto plan = AggregationPlan::non_adaptive(
      decomp, factor, AggregatorPlacement::kUniform);

  TempDir dir("spio-locality");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = factor;
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), 100,
        stream_seed(3, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * 100);
    write_dataset(comm, decomp, local, cfg);
    comm.barrier();
    if (comm.rank() == 0) {
      for (int src = 0; src < kRanks; ++src) {
        ASSERT_EQ(plan.targets_of(src).size(), 1u);
        const int agg = plan.aggregator_of(plan.targets_of(src)[0]);
        for (const int dst : comm.destinations_of(src)) {
          // Every rank sends only to its partition's aggregator.
          EXPECT_EQ(dst, agg) << "rank " << src << " talked to " << dst;
        }
      }
    }
  });
}

TEST(CommunicationLocality, FilePerProcessMovesNoRemoteBytes) {
  // §3.1: (1,1,1) is file-per-process — no particle leaves its rank.
  constexpr int kRanks = 8;
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 2});
  TempDir dir("spio-locality");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {1, 1, 1};
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), 200,
        stream_seed(5, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * 200);
    write_dataset(comm, decomp, local, cfg);
    comm.barrier();
    if (comm.rank() == 0) {
      for (int src = 0; src < kRanks; ++src)
        for (int dst = 0; dst < kRanks; ++dst) {
          if (src == dst) continue;
          EXPECT_EQ(comm.bytes_sent(src, dst), 0u)
              << src << " -> " << dst;
        }
    }
  });
}

TEST(CommunicationLocality, AggregationVolumeMatchesGroupData) {
  // With group size G, an aggregator receives exactly the other G-1
  // ranks' particle payloads (plus 8-byte count messages).
  constexpr int kRanks = 16;
  constexpr std::uint64_t kPerRank = 150;
  const PatchDecomposition decomp(Box3::unit(), {4, 2, 2});
  const PartitionFactor factor{2, 2, 2};  // G = 8, 2 partitions
  const auto plan = AggregationPlan::non_adaptive(
      decomp, factor, AggregatorPlacement::kUniform);

  TempDir dir("spio-locality");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = factor;
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
        stream_seed(5, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * kPerRank);
    write_dataset(comm, decomp, local, cfg);
    comm.barrier();
    if (comm.rank() == 0) {
      const std::uint64_t payload =
          kPerRank * Schema::uintah().record_size();
      for (int p = 0; p < plan.partition_count(); ++p) {
        const int agg = plan.aggregator_of(p);
        std::uint64_t received = 0;
        std::uint64_t remote_senders = 0;
        for (const int s : plan.senders_of(p)) {
          if (s == agg) continue;  // the aggregator's own data stays local
          ++remote_senders;
          received += comm.bytes_sent(s, agg);
        }
        // Each remote sender ships its particles + one 8-byte count.
        // Note: an aggregator may live *outside* its partition (§3.2), in
        // which case every one of the G senders is remote.
        EXPECT_EQ(received, remote_senders * (payload + 8)) << "partition "
                                                            << p;
      }
    }
  });
}

TEST(TrafficCounters, CountBytesAndMessages) {
  simmpi::run(2, [](simmpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<double>(1, 0, std::vector<double>{1, 2, 3});
      comm.send<double>(1, 1, std::vector<double>{4});
    }
    comm.barrier();
    EXPECT_EQ(comm.bytes_sent(0, 1), 4 * sizeof(double));
    EXPECT_EQ(comm.bytes_sent(1, 0), 0u);
    EXPECT_EQ(comm.destinations_of(0), std::vector<int>{1});
    EXPECT_TRUE(comm.destinations_of(1).empty());
    if (comm.rank() == 1) {
      comm.recv<double>(0, 0);
      comm.recv<double>(0, 1);
    }
  });
}

}  // namespace
}  // namespace spio
