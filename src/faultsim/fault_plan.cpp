#include "faultsim/fault_plan.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "util/rng.hpp"

namespace spio::faultsim {

std::string_view send_action_name(simmpi::SendAction a) {
  switch (a) {
    case simmpi::SendAction::kDeliver:
      return "deliver";
    case simmpi::SendAction::kDrop:
      return "drop";
    case simmpi::SendAction::kDuplicate:
      return "duplicate";
    case simmpi::SendAction::kDelay:
      return "delay";
  }
  return "?";
}

std::string_view phase_name(WritePhase phase) {
  switch (phase) {
    case WritePhase::kSetup:
      return "setup";
    case WritePhase::kMetaExchange:
      return "meta_exchange";
    case WritePhase::kParticleExchange:
      return "particle_exchange";
    case WritePhase::kDataWrite:
      return "data_write";
    case WritePhase::kCommit:
      return "commit";
  }
  return "?";
}

std::string_view file_fault_name(FileFaultKind kind) {
  switch (kind) {
    case FileFaultKind::kNone:
      return "none";
    case FileFaultKind::kTornWrite:
      return "torn_write";
    case FileFaultKind::kCorruptByte:
      return "corrupt_byte";
    case FileFaultKind::kFailedSync:
      return "failed_sync";
    case FileFaultKind::kBitRot:
      return "bit_rot";
  }
  return "?";
}

FaultPlan FaultPlan::random(std::uint64_t seed, int nranks) {
  SPIO_EXPECTS(nranks > 0);
  Xoshiro256 rng(stream_seed(seed, 0xFA17ULL));
  const auto n = static_cast<std::uint64_t>(nranks);
  FaultPlan plan;

  // 1–2 message rules, at most one per data tag. `after = 0` and a small
  // `count` keep every schedule deterministic and within the retry budget
  // (see file header of fault_plan.hpp). Two rules on the *same* tag
  // would break replay determinism: the first rule's fault decides
  // whether a retransmission (a timing artifact) ever reaches the second
  // rule's window.
  const std::uint64_t nmsg = 1 + rng.uniform_index(2);
  const std::uint64_t first_tag = rng.uniform_index(2);
  for (std::uint64_t i = 0; i < nmsg; ++i) {
    MessageRule r;
    switch (rng.uniform_index(3)) {
      case 0:
        r.action = simmpi::SendAction::kDrop;
        break;
      case 1:
        r.action = simmpi::SendAction::kDuplicate;
        break;
      default:
        r.action = simmpi::SendAction::kDelay;
        break;
    }
    r.tag = (first_tag + i) % 2 == 0 ? kTagMetaExchange : kTagParticleExchange;
    r.src = rng.uniform_index(2) == 0
                ? -1
                : static_cast<int>(rng.uniform_index(n));
    r.dst = rng.uniform_index(3) == 0
                ? static_cast<int>(rng.uniform_index(n))
                : -1;
    r.after = 0;
    r.count = 1 + static_cast<int>(rng.uniform_index(2));
    plan.messages.push_back(r);
  }

  // ~2/3 of seeds add a recoverable storage fault on the data files.
  if (rng.uniform_index(3) != 0) {
    FileRule f;
    switch (rng.uniform_index(3)) {
      case 0:
        f.kind = FileFaultKind::kTornWrite;
        break;
      case 1:
        f.kind = FileFaultKind::kCorruptByte;
        break;
      default:
        f.kind = FileFaultKind::kFailedSync;
        break;
    }
    f.rank = rng.uniform_index(2) == 0
                 ? -1
                 : static_cast<int>(rng.uniform_index(n));
    f.path_contains = "File_";
    f.after = 0;
    f.count = 1 + static_cast<int>(rng.uniform_index(2));
    plan.files.push_back(f);
  }

  // ~1/4 of seeds kill one rank at a random phase: those schedules must
  // end in a detected incomplete write, not a recovered one.
  if (rng.uniform_index(4) == 0) {
    DeathRule d;
    d.rank = static_cast<int>(rng.uniform_index(n));
    d.phase = static_cast<WritePhase>(
        rng.uniform_index(static_cast<std::uint64_t>(kNumWritePhases)));
    plan.deaths.push_back(d);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, int nranks)
    : plan_(std::move(plan)),
      nranks_(nranks),
      seen_msgs_(plan_.messages.size(),
                 std::vector<int>(static_cast<std::size_t>(nranks), 0)),
      seen_files_(plan_.files.size(),
                  std::vector<int>(static_cast<std::size_t>(nranks), 0)),
      log_(static_cast<std::size_t>(nranks)),
      next_seq_(static_cast<std::size_t>(nranks), 0) {
  SPIO_EXPECTS(nranks > 0);
}

void FaultInjector::record(int rank, std::string description) {
  // Mirror every injection into the always-on flight recorder (and the
  // log when one is configured) so postmortem bundles carry the fault
  // history without touching the per-rank log_, which is only safe to
  // aggregate after the job joins.
  obs::flight_record(obs::FlightType::kFault, description.c_str());
  obs::log::Event(obs::log::Level::kWarn, "faultsim.inject")
      .kv("rank", rank)
      .kv("what", description);
  const auto r = static_cast<std::size_t>(rank);
  log_[r].push_back(FaultEvent{rank, next_seq_[r]++, std::move(description)});
}

simmpi::SendAction FaultInjector::on_send(int src, int dst, int tag,
                                          std::size_t bytes) {
  SPIO_EXPECTS(src >= 0 && src < nranks_);
  for (std::size_t i = 0; i < plan_.messages.size(); ++i) {
    const MessageRule& r = plan_.messages[i];
    if (r.src != -1 && r.src != src) continue;
    if (r.dst != -1 && r.dst != dst) continue;
    if (r.tag != -1 && r.tag != tag) continue;
    const int idx = seen_msgs_[i][static_cast<std::size_t>(src)]++;
    if (idx < r.after || idx >= r.after + r.count) continue;
    std::ostringstream oss;
    oss << send_action_name(r.action) << " msg tag=" << tag << " src=" << src
        << " dst=" << dst << " bytes=" << bytes;
    record(src, oss.str());
    return r.action;
  }
  return simmpi::SendAction::kDeliver;
}

void FaultInjector::on_phase(int rank, WritePhase phase) {
  SPIO_EXPECTS(rank >= 0 && rank < nranks_);
  for (const DeathRule& d : plan_.deaths) {
    if (d.rank != rank || d.phase != phase) continue;
    std::ostringstream oss;
    oss << "death rank=" << rank << " phase=" << phase_name(phase);
    record(rank, oss.str());
    throw RankDeath(oss.str());
  }
}

FileFaultKind FaultInjector::next_file_fault(int rank, std::string_view path) {
  SPIO_EXPECTS(rank >= 0 && rank < nranks_);
  for (std::size_t i = 0; i < plan_.files.size(); ++i) {
    const FileRule& r = plan_.files[i];
    if (r.rank != -1 && r.rank != rank) continue;
    if (!r.path_contains.empty() &&
        path.find(r.path_contains) == std::string_view::npos)
      continue;
    const int idx = seen_files_[i][static_cast<std::size_t>(rank)]++;
    if (idx < r.after || idx >= r.after + r.count) continue;
    std::ostringstream oss;
    oss << file_fault_name(r.kind) << " file=" << path << " rank=" << rank;
    record(rank, oss.str());
    return r.kind;
  }
  return FileFaultKind::kNone;
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::vector<FaultEvent> all;
  for (const auto& per_rank : log_)
    all.insert(all.end(), per_rank.begin(), per_rank.end());
  std::sort(all.begin(), all.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return std::tie(a.rank, a.seq) < std::tie(b.rank, b.seq);
            });
  return all;
}

}  // namespace spio::faultsim
