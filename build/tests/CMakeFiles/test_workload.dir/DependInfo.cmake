
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/decomposition_test.cpp" "tests/CMakeFiles/test_workload.dir/workload/decomposition_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/decomposition_test.cpp.o.d"
  "/root/repo/tests/workload/generators_test.cpp" "tests/CMakeFiles/test_workload.dir/workload/generators_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/generators_test.cpp.o.d"
  "/root/repo/tests/workload/particle_buffer_test.cpp" "tests/CMakeFiles/test_workload.dir/workload/particle_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/particle_buffer_test.cpp.o.d"
  "/root/repo/tests/workload/schema_test.cpp" "tests/CMakeFiles/test_workload.dir/workload/schema_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/schema_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spio_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/spio_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spio_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
