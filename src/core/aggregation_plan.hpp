#pragma once

/// \file aggregation_plan.hpp
/// The aggregation plan: spatial partitioning + aggregator assignment +
/// communication sets. Built deterministically on every rank — from
/// static configuration in the non-adaptive case (no communication), or
/// from the allgathered extent table in the adaptive cases (§6) — so
/// senders and receivers agree on who talks to whom without a handshake.

#include <memory>
#include <vector>

#include "core/aggregation_grid.hpp"
#include "core/partition_factor.hpp"
#include "util/box.hpp"
#include "workload/decomposition.hpp"

namespace spio {

/// How aggregator ranks are placed in the rank space.
enum class AggregatorPlacement : std::uint8_t {
  /// Spread uniformly over the rank space (§3.2); evenly utilizes I/O
  /// nodes on machines that map rank blocks to I/O resources.
  kUniform = 0,
  /// Packed into the lowest ranks; the ablation baseline.
  kPacked = 1,
};

/// Per-rank spatial extent + particle count, as exchanged all-to-all by
/// the adaptive scheme ("processes perform an all-to-all exchange and send
/// each other their spatial extents, and the number of particles within
/// their extents", §6). Trivially copyable for the collective payload.
struct RankExtent {
  Box3 bounds;                       // tight particle bounds (may be empty)
  std::uint64_t particle_count = 0;
};

class AggregationPlan {
 public:
  /// Static plan (§3.1–3.2): aligned grid over the whole domain; every
  /// rank derives the identical plan with no communication.
  static AggregationPlan non_adaptive(const PatchDecomposition& decomp,
                                      const PartitionFactor& factor,
                                      AggregatorPlacement placement);

  /// Static grid, dynamic communication sets: the aligned grid over the
  /// whole domain, but sender/receiver sets derived from the allgathered
  /// *actual* particle extents rather than the nominal patches. Used when
  /// particles have drifted outside their owners' patches (the writer
  /// detects this and exchanges extents collectively).
  static AggregationPlan non_adaptive_with_extents(
      const PatchDecomposition& decomp, const PartitionFactor& factor,
      AggregatorPlacement placement, const std::vector<RankExtent>& extents);

  /// Adaptive plan (§6): a uniform grid covering only the sub-region
  /// occupied by particles, with one partition per `group_size`
  /// *occupied* ranks; aggregators are spread uniformly over the full
  /// rank space and no aggregator is assigned to empty space. `extents`
  /// is the allgathered per-rank table, indexed by rank.
  static AggregationPlan adaptive(const PatchDecomposition& decomp,
                                  const PartitionFactor& factor,
                                  AggregatorPlacement placement,
                                  const std::vector<RankExtent>& extents);

  /// Density-refined adaptive plan (§7 extension): a k-d bisection of the
  /// occupied region that balances estimated particle load per partition
  /// instead of volume — equalizes file sizes under clustered
  /// distributions where the uniform adaptive grid cannot.
  static AggregationPlan adaptive_refined(
      const PatchDecomposition& decomp, const PartitionFactor& factor,
      AggregatorPlacement placement, const std::vector<RankExtent>& extents);

  /// The spatial partitioning backing this plan.
  const SpatialPartitioning& partitioning() const { return *part_; }

  /// The rectilinear grid, for grid-based plans only (all but
  /// `adaptive_refined`). Precondition: the plan is grid-based.
  const AggregationGrid& grid() const;

  int partition_count() const { return part_->partition_count(); }

  /// Aggregator rank owning partition `p`.
  int aggregator_of(int p) const {
    return aggregators_[static_cast<std::size_t>(p)];
  }
  const std::vector<int>& aggregators() const { return aggregators_; }

  /// Partition owned by `rank`, or -1 if `rank` is not an aggregator.
  int partition_owned_by(int rank) const;

  /// Ranks that may send particles to partition `p` (a conservative
  /// superset: every rank whose extent touches the partition box). Sorted
  /// ascending, so aggregators assemble buffers in a deterministic order.
  const std::vector<int>& senders_of(int p) const {
    return senders_[static_cast<std::size_t>(p)];
  }

  /// Partitions that rank `r` may send particles to. Sorted ascending.
  const std::vector<int>& targets_of(int r) const {
    return targets_[static_cast<std::size_t>(r)];
  }

  /// True when every rank sends to exactly one partition and the grid is
  /// patch-aligned, enabling the no-scan fast path (§3.3).
  bool aligned() const { return aligned_; }

  bool adaptive_mode() const { return adaptive_; }

 private:
  /// Occupied sub-region and rank count of an extent table; pads
  /// degenerate boxes to a minimal extent within the domain.
  struct Occupancy {
    Box3 region;
    int ranks = 0;
  };
  static Occupancy occupancy_of(const PatchDecomposition& decomp,
                                const std::vector<RankExtent>& extents);

  static std::vector<Box3> sender_extents_of(
      const std::vector<RankExtent>& extents);

  static AggregationPlan build(
      std::shared_ptr<const SpatialPartitioning> part, int nranks,
      AggregatorPlacement placement, const std::vector<Box3>& rank_extents,
      bool aligned, bool adaptive);

  /// Degenerate plan for a dataset with no particles at all.
  static AggregationPlan empty_plan(const PatchDecomposition& decomp,
                                    AggregatorPlacement placement);

  std::shared_ptr<const SpatialPartitioning> part_;
  std::shared_ptr<const AggregationGrid> grid_;  // null for kd plans
  std::vector<int> aggregators_;                 // by partition
  std::vector<std::vector<int>> senders_;        // by partition
  std::vector<std::vector<int>> targets_;        // by rank
  bool aligned_ = false;
  bool adaptive_ = false;
};

}  // namespace spio
