
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/decomposition.cpp" "src/workload/CMakeFiles/spio_workload.dir/decomposition.cpp.o" "gcc" "src/workload/CMakeFiles/spio_workload.dir/decomposition.cpp.o.d"
  "/root/repo/src/workload/generators.cpp" "src/workload/CMakeFiles/spio_workload.dir/generators.cpp.o" "gcc" "src/workload/CMakeFiles/spio_workload.dir/generators.cpp.o.d"
  "/root/repo/src/workload/particle_buffer.cpp" "src/workload/CMakeFiles/spio_workload.dir/particle_buffer.cpp.o" "gcc" "src/workload/CMakeFiles/spio_workload.dir/particle_buffer.cpp.o.d"
  "/root/repo/src/workload/schema.cpp" "src/workload/CMakeFiles/spio_workload.dir/schema.cpp.o" "gcc" "src/workload/CMakeFiles/spio_workload.dir/schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
