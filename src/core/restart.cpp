#include "core/restart.hpp"

#include "core/journal.hpp"

namespace spio {

ParticleBuffer restart_read(simmpi::Comm& comm,
                            const PatchDecomposition& decomp,
                            const std::filesystem::path& dir,
                            ReadStats* stats) {
  SPIO_CHECK(comm.size() == decomp.rank_count(), ConfigError,
             "restart decomposition has " << decomp.rank_count()
                                          << " patches for a job of "
                                          << comm.size() << " ranks");
  // Crash-consistency gate: rank 0 inspects the write journal, finalizing
  // a stale one (crash between metadata commit and journal removal), and
  // every rank agrees on the verdict before any metadata is trusted.
  const bool incomplete = comm.bcast<bool>(
      comm.rank() == 0 &&
          check_and_repair(dir, /*remove_partial=*/false) ==
              RepairOutcome::kIncomplete,
      0);
  SPIO_CHECK(!incomplete, IncompleteDatasetError,
             "cannot restart from '"
                 << dir.string()
                 << "': the last write did not complete (journal present); "
                    "run check_and_repair to clear the partial data");
  const Dataset ds = Dataset::open(dir);
  SPIO_CHECK(decomp.domain().contains_box(ds.metadata().domain), ConfigError,
             "restart domain " << decomp.domain()
                               << " does not contain the dataset domain "
                               << ds.metadata().domain);

  // Patch tiles are half-open; particles exactly on the dataset domain's
  // upper face must land in the boundary patches, so those patches' query
  // boxes are nudged past the face.
  Box3 patch = decomp.patch(comm.rank());
  const Box3& domain = decomp.domain();
  for (int a = 0; a < 3; ++a) {
    if (patch.hi[a] >= domain.hi[a]) {
      patch.hi[a] += 1e-9 * (domain.hi[a] - domain.lo[a]) + 1e-300;
    }
  }
  return ds.query_box(patch, /*levels=*/-1, comm.size(), stats);
}

}  // namespace spio
