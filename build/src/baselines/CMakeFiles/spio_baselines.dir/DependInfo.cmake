
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/convert.cpp" "src/baselines/CMakeFiles/spio_baselines.dir/convert.cpp.o" "gcc" "src/baselines/CMakeFiles/spio_baselines.dir/convert.cpp.o.d"
  "/root/repo/src/baselines/fpp.cpp" "src/baselines/CMakeFiles/spio_baselines.dir/fpp.cpp.o" "gcc" "src/baselines/CMakeFiles/spio_baselines.dir/fpp.cpp.o.d"
  "/root/repo/src/baselines/ior_like.cpp" "src/baselines/CMakeFiles/spio_baselines.dir/ior_like.cpp.o" "gcc" "src/baselines/CMakeFiles/spio_baselines.dir/ior_like.cpp.o.d"
  "/root/repo/src/baselines/rank_order.cpp" "src/baselines/CMakeFiles/spio_baselines.dir/rank_order.cpp.o" "gcc" "src/baselines/CMakeFiles/spio_baselines.dir/rank_order.cpp.o.d"
  "/root/repo/src/baselines/shared_file.cpp" "src/baselines/CMakeFiles/spio_baselines.dir/shared_file.cpp.o" "gcc" "src/baselines/CMakeFiles/spio_baselines.dir/shared_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/spio_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/spio_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spio_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
