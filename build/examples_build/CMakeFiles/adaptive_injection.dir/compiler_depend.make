# Empty compiler generated dependencies file for adaptive_injection.
# This may be replaced when dependencies are built.
