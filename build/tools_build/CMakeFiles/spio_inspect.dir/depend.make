# Empty dependencies file for spio_inspect.
# This may be replaced when dependencies are built.
