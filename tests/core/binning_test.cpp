/// \file binning_test.cpp
/// Differential tests for the writer's two-pass histogram+scatter binning
/// against the preserved map-and-append reference, and for the grid's
/// O(1) point locator against its binary search. The optimized paths must
/// be *byte-identical*, not just equivalent — the file format's
/// reproducibility rests on bins keeping original particle order.

#include <gtest/gtest.h>

#include <vector>

#include "core/aggregation_grid.hpp"
#include "core/writer.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

void expect_bins_identical(const writer_detail::BinnedParticles& a,
                           const writer_detail::BinnedParticles& b) {
  ASSERT_EQ(a.bin_count(), b.bin_count());
  EXPECT_EQ(a.partitions, b.partitions);
  EXPECT_EQ(a.counts, b.counts);
  for (std::size_t i = 0; i < a.bin_count(); ++i) {
    EXPECT_EQ(a.payloads[i], b.payloads[i]) << "payload bytes of bin " << i;
  }
}

struct BinningCase {
  int ranks;
  PartitionFactor factor;
  std::uint64_t particles;
};

class BinningDifferential : public ::testing::TestWithParam<BinningCase> {};

TEST_P(BinningDifferential, GeneralPathMatchesReference) {
  const auto [ranks, factor, particles] = GetParam();
  const auto decomp = PatchDecomposition::for_ranks(Box3::unit(), ranks);
  const auto plan = AggregationPlan::non_adaptive(
      decomp, factor, AggregatorPlacement::kUniform);
  // Domain-wide positions: particles scatter over every partition, the
  // case the general path exists for.
  const auto local = workload::uniform(Schema::uintah(), Box3::unit(),
                                       particles, stream_seed(5, 1), 0);
  expect_bins_identical(
      writer_detail::bin_particles(local, plan, false),
      writer_detail::bin_particles_reference(local, plan, false));
}

TEST_P(BinningDifferential, FastPathMatchesReference) {
  const auto [ranks, factor, particles] = GetParam();
  const auto decomp = PatchDecomposition::for_ranks(Box3::unit(), ranks);
  const auto plan = AggregationPlan::non_adaptive(
      decomp, factor, AggregatorPlacement::kUniform);
  // Patch-confined positions, as the aligned fast path requires.
  const auto local = workload::uniform(Schema::uintah(), decomp.patch(0),
                                       particles, stream_seed(5, 2), 0);
  expect_bins_identical(
      writer_detail::bin_particles(local, plan, true),
      writer_detail::bin_particles_reference(local, plan, true));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BinningDifferential,
    ::testing::Values(BinningCase{8, {2, 2, 2}, 1000},
                      BinningCase{8, {1, 1, 1}, 1000},
                      BinningCase{16, {2, 1, 1}, 5000},
                      BinningCase{27, {1, 1, 1}, 2000},
                      BinningCase{64, {2, 2, 2}, 10000},
                      BinningCase{64, {1, 1, 1}, 1}));

TEST(Binning, EmptyBufferYieldsNoBins) {
  const auto decomp = PatchDecomposition::for_ranks(Box3::unit(), 8);
  const auto plan = AggregationPlan::non_adaptive(
      decomp, {1, 1, 1}, AggregatorPlacement::kUniform);
  const ParticleBuffer empty(Schema::uintah());
  EXPECT_EQ(writer_detail::bin_particles(empty, plan, false).bin_count(), 0u);
  EXPECT_EQ(writer_detail::bin_particles(empty, plan, true).bin_count(), 0u);
}

TEST(Binning, PositionOnlySchemaMatchesReference) {
  const auto decomp = PatchDecomposition::for_ranks(Box3::unit(), 16);
  const auto plan = AggregationPlan::non_adaptive(
      decomp, {1, 1, 1}, AggregatorPlacement::kUniform);
  const auto local = workload::uniform(Schema::position_only(), Box3::unit(),
                                       3000, stream_seed(6, 0), 0);
  expect_bins_identical(
      writer_detail::bin_particles(local, plan, false),
      writer_detail::bin_particles_reference(local, plan, false));
}

TEST(Binning, IndexOfFindsEveryBinAndRejectsOthers) {
  const auto decomp = PatchDecomposition::for_ranks(Box3::unit(), 8);
  const auto plan = AggregationPlan::non_adaptive(
      decomp, {1, 1, 1}, AggregatorPlacement::kUniform);
  const auto local = workload::uniform(Schema::uintah(), Box3::unit(), 2000,
                                       stream_seed(7, 0), 0);
  const auto bins = writer_detail::bin_particles(local, plan, false);
  for (std::size_t b = 0; b < bins.bin_count(); ++b) {
    EXPECT_EQ(bins.index_of(bins.partitions[b]), static_cast<int>(b));
  }
  EXPECT_EQ(bins.index_of(-1), -1);
  EXPECT_EQ(bins.index_of(plan.partition_count()), -1);
}

TEST(GridLocate, MatchesBinarySearchOnRandomAndBoundaryPoints) {
  for (const Vec3i dims : {Vec3i{1, 1, 1}, Vec3i{2, 3, 4}, Vec3i{8, 8, 8}}) {
    const Box3 region({-1.5, 0.0, 2.0}, {2.5, 1.0, 7.0});
    const AggregationGrid grid(region, dims);
    Xoshiro256 rng(99);
    for (int i = 0; i < 5000; ++i) {
      const Vec3d p{region.lo.x + rng.uniform() * 5.0 - 0.5,
                    region.lo.y + rng.uniform() * 1.5 - 0.25,
                    region.lo.z + rng.uniform() * 6.0 - 0.5};
      EXPECT_EQ(grid.locate(p), grid.partition_of_point(p))
          << "dims " << dims << " point " << p;
    }
    // Every edge coordinate exactly, including the clamped outer faces.
    for (int a = 0; a < 3; ++a) {
      for (const double e : grid.edges(a)) {
        Vec3d p = region.center();
        p[a] = e;
        EXPECT_EQ(grid.locate(p), grid.partition_of_point(p));
      }
    }
  }
}

TEST(GridLocate, MatchesBinarySearchOnAlignedGridWithRemainder) {
  // 5 patches grouped by 2: the trailing partition covers a single patch,
  // so the uniform-spacing index estimate overshoots there and must be
  // walked back.
  const auto decomp = PatchDecomposition::for_ranks(Box3::unit(), 125);
  const auto grid = AggregationGrid::aligned(decomp, {2, 2, 2});
  Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const Vec3d p{rng.uniform() * 1.2 - 0.1, rng.uniform() * 1.2 - 0.1,
                  rng.uniform() * 1.2 - 0.1};
    EXPECT_EQ(grid.locate(p), grid.partition_of_point(p)) << p;
  }
}

}  // namespace
}  // namespace spio
