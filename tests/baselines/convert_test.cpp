#include "baselines/convert.hpp"

#include <gtest/gtest.h>

#include <set>

#include "baselines/fpp.hpp"
#include "baselines/rank_order.hpp"
#include "baselines/shared_file.hpp"
#include "core/reader.hpp"
#include "core/validate.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/decomposition.hpp"
#include "workload/generators.hpp"

namespace spio::baselines {
namespace {

constexpr int kWriters = 8;
constexpr std::uint64_t kPerRank = 300;

const PatchDecomposition& legacy_decomp() {
  static const PatchDecomposition d(Box3({0, 0, 0}, {4, 4, 4}), {2, 2, 2});
  return d;
}

ParticleBuffer legacy_particles(int rank) {
  return workload::uniform(
      Schema::uintah(), legacy_decomp().patch(rank), kPerRank,
      stream_seed(91, static_cast<std::uint64_t>(rank)),
      static_cast<std::uint64_t>(rank) * kPerRank);
}

std::set<double> id_set(const ParticleBuffer& buf) {
  const auto id = buf.schema().index_of("id");
  std::set<double> out;
  for (std::size_t i = 0; i < buf.size(); ++i) out.insert(buf.get_f64(i, id));
  return out;
}

class Convert : public ::testing::TestWithParam<LegacyFormat> {
 protected:
  TempDir write_legacy(LegacyFormat format) {
    TempDir dir("convert-src");
    simmpi::run(kWriters, [&](simmpi::Comm& comm) {
      const ParticleBuffer local = legacy_particles(comm.rank());
      switch (format) {
        case LegacyFormat::kFilePerProcess:
          fpp_write(comm, local, dir.path());
          break;
        case LegacyFormat::kSharedFile:
          shared_write(comm, local, dir.path());
          break;
        case LegacyFormat::kRankOrder:
          rank_order_write(comm, local, dir.path(), 2);
          break;
      }
    });
    return dir;
  }
};

TEST_P(Convert, ProducesAValidEquivalentSpioDataset) {
  const TempDir src = write_legacy(GetParam());
  TempDir dst("convert-dst");

  WriterConfig cfg;
  cfg.dir = dst.path();
  cfg.factor = {2, 2, 1};
  ConvertResult result;
  // Convert with a *different* rank count than wrote the legacy data.
  simmpi::run(4, [&](simmpi::Comm& comm) {
    const ConvertResult r = convert_to_spio(comm, GetParam(), src.path(), cfg);
    if (comm.rank() == 0) result = r;
  });
  EXPECT_EQ(result.particles, kWriters * kPerRank);

  // The converted dataset is valid and holds exactly the legacy ids.
  const auto report = validate_dataset(dst.path(), /*deep=*/true);
  EXPECT_TRUE(report.ok()) << report.errors.front();
  const Dataset ds = Dataset::open(dst.path());
  EXPECT_EQ(ds.metadata().total_particles, kWriters * kPerRank);

  std::set<double> expect;
  for (int r = 0; r < kWriters; ++r) {
    const auto ids = id_set(legacy_particles(r));
    expect.insert(ids.begin(), ids.end());
  }
  EXPECT_EQ(id_set(ds.query_box(ds.metadata().domain)), expect);

  // And it is spatially queryable: a sub-box returns a proper subset.
  const auto sub = ds.query_box(Box3({0, 0, 0}, {2, 2, 2}));
  EXPECT_GT(sub.size(), 0u);
  EXPECT_LT(sub.size(), kWriters * kPerRank);
}

INSTANTIATE_TEST_SUITE_P(Formats, Convert,
                         ::testing::Values(LegacyFormat::kFilePerProcess,
                                           LegacyFormat::kSharedFile,
                                           LegacyFormat::kRankOrder),
                         [](const auto& info) {
                           switch (info.param) {
                             case LegacyFormat::kFilePerProcess:
                               return "fpp";
                             case LegacyFormat::kSharedFile:
                               return "shared";
                             case LegacyFormat::kRankOrder:
                               return "rankorder";
                           }
                           return "unknown";
                         });

TEST(ConvertEdge, EmptySourceRejected) {
  TempDir src("convert-empty");
  // Legacy FPP dataset with zero particles everywhere.
  simmpi::run(2, [&](simmpi::Comm& comm) {
    fpp_write(comm, ParticleBuffer(Schema::uintah()), src.path());
  });
  TempDir dst("convert-empty-dst");
  WriterConfig cfg;
  cfg.dir = dst.path();
  EXPECT_THROW(
      simmpi::run(2,
                  [&](simmpi::Comm& comm) {
                    convert_to_spio(comm, LegacyFormat::kFilePerProcess,
                                    src.path(), cfg);
                  }),
      ConfigError);
}

TEST(ConvertEdge, MoreConvertersThanFiles) {
  TempDir src("convert-few");
  simmpi::run(2, [&](simmpi::Comm& comm) {
    fpp_write(comm, legacy_particles(comm.rank()), src.path());
  });
  TempDir dst("convert-few-dst");
  WriterConfig cfg;
  cfg.dir = dst.path();
  cfg.factor = {1, 1, 1};
  simmpi::run(6, [&](simmpi::Comm& comm) {
    convert_to_spio(comm, LegacyFormat::kFilePerProcess, src.path(), cfg);
  });
  EXPECT_EQ(Dataset::open(dst.path()).metadata().total_particles,
            2 * kPerRank);
}

}  // namespace
}  // namespace spio::baselines
