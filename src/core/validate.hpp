#pragma once

/// \file validate.hpp
/// Dataset integrity checking, for tooling and post-crash triage: a
/// partially-written checkpoint (e.g. a job killed mid-write) must be
/// detected before an analysis pipeline consumes it.

#include <filesystem>
#include <string>
#include <vector>

namespace spio {

struct ValidationReport {
  /// Violations that make the dataset unusable (missing/truncated files,
  /// corrupt metadata, inconsistent counts).
  std::vector<std::string> errors;
  /// Suspicious but usable conditions (bounds outside the domain,
  /// overlapping file bounds).
  std::vector<std::string> warnings;

  bool ok() const { return errors.empty(); }
};

/// Validate the dataset in `dir`.
///
/// Shallow checks (always): metadata parses, every data file exists with
/// exactly `count * record_size` bytes, counts sum to the header total,
/// file bounds are pairwise disjoint and inside the domain, and the
/// `zones.spio` sidecar (when present) passes its CRC and matches the
/// metadata.
///
/// Deep checks (`deep = true`): read every particle and verify it lies
/// within its file's bounds, within the recorded field ranges, and within
/// its LOD zone's recorded min/max.
ValidationReport validate_dataset(const std::filesystem::path& dir,
                                  bool deep = false);

}  // namespace spio
