/// \file spio_trace.cpp
/// Render and validate spio observability artifacts.
///
/// Usage:
///   spio_trace <trace.json>       [--check] [--csv]
///   spio_trace <bundle.json>      [--check]
///   spio_trace <stats.spio.jsonl> [--check] [--csv]
///   spio_trace <dataset-dir>      [--csv] [--postmortem] [--check]
///
/// Given a Chrome trace-event JSON file (from `spio_bench --trace` or
/// `SPIO_TRACE=path`), prints a Fig. 6-style per-rank, per-phase
/// breakdown of the write pipeline plus a span summary. Given a dataset
/// directory holding a `trace.spio.json` run record, prints the record's
/// phase tables instead.
///
/// A `postmortem.spio.json` failure bundle is recognized by its
/// `"format"` key (or forced with `--postmortem`, which on a dataset
/// directory loads the bundle the failed write left behind) and rendered
/// as a per-rank timeline of the flight recorder's last events.
///
/// A telemetry stream (`stats.spio.jsonl` from `SPIO_STATS`, one JSON
/// object per line with `"format":"spio.stats"`) is recognized by its
/// first line and rendered as a per-sample table; `spio_top` renders the
/// same stream live.
///
/// A spatial access profile (`profile.spio.json` from `SPIO_PROFILE`,
/// `"format":"spio.access_profile"`) is recognized by its format key and
/// rendered as a totals + hot-file summary; `spio_heatmap` renders the
/// full 2-D grid. With `--against <trace.json>`, `--check` additionally
/// cross-references every profile query's request ID against the qids
/// stamped on the trace's spans.
///
/// `--check` validates the artifact structurally — a Chrome trace must
/// parse, carry a well-formed `traceEvents` array, and nest its spans
/// within each rank track; a postmortem bundle must satisfy
/// `obs::validate_postmortem`; a stats stream must parse line by line
/// with consecutive `seq`, non-decreasing `ts_us`, ordered window
/// quantiles, and `"final":true` on the last sample only; an access
/// profile must carry self-consistent byte accounting (per-file tallies
/// summing exactly to its totals, per-query file splits summing to the
/// query's totals, fetched never exceeding scanned) — and exits non-zero
/// on any violation (used by `bench/run_hotpath.sh` as a CI gate).

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "obs/json.hpp"
#include "obs/postmortem.hpp"
#include "obs/run_record.hpp"
#include "util/serialize.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace spio;

namespace {

struct Span {
  std::string name;
  std::string cat;
  double ts = 0;
  double dur = 0;
  int tid = 0;
};

constexpr const char* kWritePhases[] = {
    "write.setup",       "write.meta_exchange", "write.particle_exchange",
    "write.reorder",     "write.file_io",       "write.metadata_io",
};

/// Extract the complete ("X") spans of a Chrome trace document.
std::vector<Span> complete_spans(const obs::JsonValue& doc) {
  std::vector<Span> out;
  const obs::JsonValue& events = doc.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::JsonValue& e = events.at(i);
    if (e.at("ph").as_string() != "X") continue;
    Span s;
    s.name = e.at("name").as_string();
    if (const obs::JsonValue* c = e.find("cat")) s.cat = c->as_string();
    s.ts = e.at("ts").as_double();
    s.dur = e.at("dur").as_double();
    if (const obs::JsonValue* t = e.find("tid")) s.tid = int(t->as_i64());
    out.push_back(std::move(s));
  }
  return out;
}

/// Structural validation: every event carries the required keys, and the
/// complete spans of each rank track either nest or are disjoint (the
/// shape Perfetto needs to build a flame graph).
int check_trace(const obs::JsonValue& doc) {
  int problems = 0;
  const auto complain = [&](const std::string& what) {
    std::cerr << "check: " << what << "\n";
    ++problems;
  };
  const obs::JsonValue* events = doc.find("traceEvents");
  if (!events || !events->is_array()) {
    complain("document has no traceEvents array");
    return 1;
  }
  for (std::size_t i = 0; i < events->size(); ++i) {
    const obs::JsonValue& e = events->at(i);
    if (!e.is_object() || !e.contains("ph") || !e.contains("name")) {
      complain("event " + std::to_string(i) + " lacks ph/name");
      continue;
    }
    const std::string& ph = e.at("ph").as_string();
    if (ph == "X" && (!e.contains("ts") || !e.contains("dur")))
      complain("complete event " + std::to_string(i) + " lacks ts/dur");
    if (ph == "i" && !e.contains("ts"))
      complain("instant event " + std::to_string(i) + " lacks ts");
  }

  // Nesting check per track: with spans sorted by begin time, an open
  // interval must fully contain any span starting inside it.
  std::map<int, std::vector<Span>> tracks;
  for (Span& s : complete_spans(doc)) tracks[s.tid].push_back(std::move(s));
  for (auto& [tid, spans] : tracks) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Span& a, const Span& b) { return a.ts < b.ts; });
    std::vector<const Span*> open;
    for (const Span& s : spans) {
      while (!open.empty() && s.ts >= open.back()->ts + open.back()->dur)
        open.pop_back();
      // Tolerate timer granularity: a child may end a hair after its
      // parent's recorded end.
      if (!open.empty() &&
          s.ts + s.dur > open.back()->ts + open.back()->dur + 1.0) {
        complain("span '" + s.name + "' on track " + std::to_string(tid) +
                 " overlaps '" + open.back()->name + "' without nesting");
      }
      open.push_back(&s);
    }
  }
  if (problems == 0) std::cout << "trace OK\n";
  return problems == 0 ? 0 : 1;
}

/// The Fig. 6-style view: per-rank seconds in each write phase (summed
/// over possibly several writes in the trace), plus an aggregation/IO
/// split, and the symmetric read table when read spans are present.
void render_trace(const obs::JsonValue& doc, bool csv) {
  const std::vector<Span> spans = complete_spans(doc);

  // name -> tid -> total microseconds.
  std::map<std::string, std::map<int, double>> by_name;
  std::map<std::string, std::pair<std::uint64_t, double>> summary;
  for (const Span& s : spans) {
    by_name[s.name][s.tid] += s.dur;
    auto& [count, total] = summary[s.name];
    ++count;
    total += s.dur;
  }

  const auto ranks_of = [&](const char* const* names, std::size_t n) {
    std::vector<int> ranks;
    for (std::size_t i = 0; i < n; ++i) {
      const auto it = by_name.find(names[i]);
      if (it == by_name.end()) continue;
      for (const auto& [tid, _] : it->second)
        if (std::find(ranks.begin(), ranks.end(), tid) == ranks.end())
          ranks.push_back(tid);
    }
    std::sort(ranks.begin(), ranks.end());
    return ranks;
  };

  const std::vector<int> wranks =
      ranks_of(kWritePhases, std::size(kWritePhases));
  if (!wranks.empty()) {
    Table t("write pipeline (ms per rank, Fig. 6 breakdown)",
            {"rank", "setup", "meta_exch", "particle_exch", "reorder",
             "file_io", "metadata_io", "aggregation %"});
    for (const int r : wranks) {
      double phase_ms[std::size(kWritePhases)] = {};
      double total = 0;
      for (std::size_t p = 0; p < std::size(kWritePhases); ++p) {
        const auto it = by_name.find(kWritePhases[p]);
        if (it == by_name.end()) continue;
        const auto rt = it->second.find(r);
        if (rt == it->second.end()) continue;
        phase_ms[p] = rt->second / 1e3;
        total += phase_ms[p];
      }
      const double agg =
          phase_ms[0] + phase_ms[1] + phase_ms[2] + phase_ms[3];
      t.row().add_int(r);
      for (const double ms : phase_ms) t.add_double(ms, 2);
      t.add_double(total > 0 ? 100.0 * agg / total : 0.0, 1);
    }
    csv ? t.print_csv(std::cout) : t.print(std::cout);
    std::cout << "\n";
  }

  Table s("span summary", {"span", "count", "total ms", "mean us"});
  for (const auto& [name, ct] : summary) {
    s.row()
        .add(name)
        .add_int(static_cast<long long>(ct.first))
        .add_double(ct.second / 1e3, 2)
        .add_double(ct.second / static_cast<double>(ct.first), 1);
  }
  csv ? s.print_csv(std::cout) : s.print(std::cout);
}

/// `--check` for failure bundles: structural validation via the library.
int check_postmortem(const obs::JsonValue& doc) {
  const std::vector<std::string> problems = obs::validate_postmortem(doc);
  for (const std::string& p : problems) std::cerr << "check: " << p << "\n";
  if (problems.empty()) std::cout << "postmortem bundle OK\n";
  return problems.empty() ? 0 : 1;
}

/// Render a failure bundle: the reason header, the fault-plan echo, and
/// a per-rank timeline of the flight recorder's last events — the view
/// of "what was every rank doing when it died".
void render_postmortem(const obs::JsonValue& doc) {
  std::cout << "postmortem bundle\n"
            << "  reason     : " << doc.at("reason").as_string() << "\n"
            << "  failed rank: " << doc.at("failed_rank").as_i64() << "\n"
            << "  phase      : " << doc.at("phase").as_string() << "\n";
  if (const obs::JsonValue* jr = doc.find("job_ranks"))
    std::cout << "  job ranks  : " << jr->as_i64() << "\n";
  if (const obs::JsonValue* plan = doc.find("fault_plan")) {
    const auto count = [&](const char* key) {
      const obs::JsonValue* a = plan->find(key);
      return a && a->is_array() ? a->size() : std::size_t{0};
    };
    std::cout << "  fault plan : " << count("messages")
              << " message rule(s), " << count("files") << " file rule(s), "
              << count("deaths") << " death rule(s)\n";
  }
  if (const obs::JsonValue* ws = doc.find("write_stats")) {
    if (ws->contains("particles_written") && ws->contains("bytes_written"))
      std::cout << "  progress   : "
                << ws->at("particles_written").as_u64() << " particles, "
                << format_bytes(ws->at("bytes_written").as_u64())
                << " written before the failure\n";
  }

  const obs::JsonValue& fr = doc.at("flight_recorder");
  std::cout << "\nflight recorder (ring capacity "
            << fr.at("capacity").as_u64() << " events per rank)\n";
  const obs::JsonValue& ranks = fr.at("ranks");
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const obs::JsonValue& r = ranks.at(i);
    const long long rank = r.at("rank").as_i64();
    std::cout << "\n"
              << (rank < 0 ? std::string("non-rank threads")
                           : "rank " + std::to_string(rank))
              << ": " << r.at("recorded").as_u64() << " event(s), "
              << r.at("dropped").as_u64() << " overwritten\n";
    const obs::JsonValue& events = r.at("events");
    for (std::size_t j = 0; j < events.size(); ++j) {
      const obs::JsonValue& e = events.at(j);
      std::ostringstream extra;
      if (const obs::JsonValue* a = e.find("a")) extra << "  a=" << a->as_u64();
      if (const obs::JsonValue* b = e.find("b")) extra << " b=" << b->as_u64();
      if (const obs::JsonValue* d = e.find("detail"))
        extra << " detail=" << d->as_u64();
      std::cout << "  +" << std::fixed << std::setprecision(1)
                << std::setw(12) << e.at("ts_us").as_double() << "us  "
                << std::left << std::setw(11) << e.at("type").as_string()
                << std::right << e.at("name").as_string() << extra.str()
                << "\n";
    }
  }
}

/// Render a dataset's `trace.spio.json` run record.
void render_record(const std::filesystem::path& dir, bool csv) {
  const obs::JsonValue rec = obs::load_run_record(dir);
  const auto print = [&](Table& t) {
    csv ? t.print_csv(std::cout) : t.print(std::cout);
    std::cout << "\n";
  };
  if (const obs::JsonValue* w = rec.find("write")) {
    Table t("write phases (seconds per rank)",
            {"rank", "setup", "meta_exch", "particle_exch", "reorder",
             "file_io", "metadata_io"});
    const obs::JsonValue& phases = w->at("phase_seconds");
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const obs::JsonValue& p = phases.at(i);
      t.row()
          .add_int(p.at("rank").as_i64())
          .add_double(p.at("setup").as_double(), 4)
          .add_double(p.at("meta_exchange").as_double(), 4)
          .add_double(p.at("particle_exchange").as_double(), 4)
          .add_double(p.at("reorder").as_double(), 4)
          .add_double(p.at("file_io").as_double(), 4)
          .add_double(p.at("metadata_io").as_double(), 4);
    }
    print(t);
    const obs::JsonValue& totals = w->at("totals");
    std::cout << "write totals: "
              << totals.at("particles_written").as_u64() << " particles, "
              << format_bytes(totals.at("bytes_written").as_u64()) << " in "
              << totals.at("files_written").as_u64() << " files, "
              << format_bytes(totals.at("bytes_sent").as_u64())
              << " exchanged\n\n";
  }
  if (const obs::JsonValue* r = rec.find("read")) {
    Table t("read phases (seconds per rank)",
            {"rank", "file_io", "exchange"});
    const obs::JsonValue& phases = r->at("phase_seconds");
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const obs::JsonValue& p = phases.at(i);
      t.row()
          .add_int(p.at("rank").as_i64())
          .add_double(p.at("file_io").as_double(), 4)
          .add_double(p.at("exchange").as_double(), 4);
    }
    print(t);
    const obs::JsonValue& totals = r->at("totals");
    std::cout << "read totals: " << totals.at("files_opened").as_u64()
              << " files, " << format_bytes(totals.at("bytes_read").as_u64())
              << " read, amplification "
              << totals.at("read_amplification").as_double() << "\n";
  }
  if (!rec.contains("write") && !rec.contains("read"))
    std::cout << "run record holds no write or read section\n";
}

/// Does this document look like one line of an `SPIO_STATS` stream?
bool is_stats_line(std::string_view line) {
  return line.find("\"format\":\"spio.stats\"") != std::string_view::npos;
}

/// Split a JSONL stream into parsed per-line documents. Throws on any
/// malformed line (the writer emits each line atomically, so a torn
/// line is a real defect, not an artifact of concurrent reading).
std::vector<obs::JsonValue> parse_stats_lines(std::string_view text) {
  std::vector<obs::JsonValue> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    out.push_back(obs::JsonValue::parse(line));
  }
  return out;
}

/// `--check` for stats streams: every line is a well-formed sample, seq
/// is consecutive from 0, time moves forward, quantiles are ordered, and
/// only the last sample is final.
int check_stats(std::string_view text) {
  int problems = 0;
  const auto complain = [&](const std::string& what) {
    std::cerr << "check: " << what << "\n";
    ++problems;
  };
  std::vector<obs::JsonValue> samples;
  try {
    samples = parse_stats_lines(text);
  } catch (const std::exception& e) {
    std::cerr << "check: malformed stats line: " << e.what() << "\n";
    return 1;
  }
  if (samples.empty()) {
    std::cerr << "check: stats stream holds no samples\n";
    return 1;
  }
  double prev_ts = -1;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const obs::JsonValue& s = samples[i];
    const std::string at = "sample " + std::to_string(i);
    if (!s.is_object() || !s.contains("format") ||
        s.at("format").as_string() != "spio.stats") {
      complain(at + " lacks format spio.stats");
      continue;
    }
    for (const char* key : {"version", "seq", "ts_us", "interval_ms"}) {
      if (!s.contains(key) || !s.at(key).is_number())
        complain(at + " lacks numeric " + key);
    }
    for (const char* key : {"derived", "windows", "counters", "gauges"}) {
      if (!s.contains(key) || !s.at(key).is_object())
        complain(at + " lacks object " + key);
    }
    if (!s.contains("final") || !s.at("final").is_bool()) {
      complain(at + " lacks boolean final");
      continue;
    }
    if (s.at("seq").as_u64() != i)
      complain(at + " has seq " + std::to_string(s.at("seq").as_u64()) +
               ", expected " + std::to_string(i));
    const double ts = s.at("ts_us").as_double();
    if (ts < prev_ts) complain(at + " moves backward in time");
    prev_ts = ts;
    if (s.at("final").as_bool() != (i + 1 == samples.size()))
      complain(at + (i + 1 == samples.size()
                         ? " is the last sample but not final"
                         : " is final before the end of the stream"));
    if (const obs::JsonValue* w = s.find("windows")) {
      for (const auto& [name, v] : w->members()) {
        if (!v.is_object() || !v.contains("count") || !v.contains("p50") ||
            !v.contains("p95") || !v.contains("p99")) {
          complain(at + " window '" + name + "' lacks count/p50/p95/p99");
          continue;
        }
        const std::uint64_t p50 = v.at("p50").as_u64();
        const std::uint64_t p95 = v.at("p95").as_u64();
        const std::uint64_t p99 = v.at("p99").as_u64();
        if (p50 > p95 || p95 > p99)
          complain(at + " window '" + name + "' has unordered quantiles");
      }
    }
  }
  if (problems == 0)
    std::cout << "stats stream OK (" << samples.size() << " samples)\n";
  return problems == 0 ? 0 : 1;
}

/// Render a stats stream as a per-sample table — the static sibling of
/// `spio_top --replay`.
void render_stats(std::string_view text, bool csv) {
  const std::vector<obs::JsonValue> samples = parse_stats_lines(text);
  Table t("telemetry stream (stats.spio.jsonl)",
          {"seq", "t (s)", "qps", "p50 ms", "p99 ms", "queue", "q max",
           "hit %", "slo viol"});
  for (const obs::JsonValue& s : samples) {
    const obs::JsonValue& d = s.at("derived");
    double p50_ms = 0, p99_ms = 0;
    if (const obs::JsonValue* w = s.at("windows").find("service.latency_us")) {
      p50_ms = w->at("p50").as_double() / 1e3;
      p99_ms = w->at("p99").as_double() / 1e3;
    }
    t.row()
        .add_int(static_cast<long long>(s.at("seq").as_u64()))
        .add_double(s.at("ts_us").as_double() / 1e6, 2)
        .add_double(d.at("qps").as_double(), 1)
        .add_double(p50_ms, 3)
        .add_double(p99_ms, 3)
        .add_int(static_cast<long long>(d.at("queue_depth").as_double()))
        .add_int(static_cast<long long>(d.at("queue_depth_max").as_double()))
        .add_double(100.0 * d.at("cache_hit_rate").as_double(), 1)
        .add_int(static_cast<long long>(
            d.at("slo_violations_total").as_double()));
  }
  csv ? t.print_csv(std::cout) : t.print(std::cout);
}

/// Every request ID stamped on a Chrome trace's span args — the join key
/// the access profile's query records carry.
std::set<std::uint64_t> trace_qids(const obs::JsonValue& doc) {
  std::set<std::uint64_t> out;
  const obs::JsonValue* events = doc.find("traceEvents");
  if (!events || !events->is_array()) return out;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const obs::JsonValue& e = events->at(i);
    if (!e.is_object()) continue;
    const obs::JsonValue* args = e.find("args");
    if (!args || !args->is_object()) continue;
    const obs::JsonValue* qid = args->find("qid");
    if (qid && qid->is_number()) out.insert(qid->as_u64());
  }
  return out;
}

/// `--check` for spatial access profiles (`profile.spio.json`,
/// docs/OBSERVABILITY.md "Spatial access profiles"): structural schema
/// validation plus exact byte-accounting cross-checks. When `trace` is
/// given (`--against`), every query record's qid must appear among the
/// trace's span qids.
int check_profile(const obs::JsonValue& doc, const obs::JsonValue* trace) {
  int problems = 0;
  const auto complain = [&](const std::string& what) {
    std::cerr << "check: " << what << "\n";
    ++problems;
  };
  const auto require_u64 = [&](const obs::JsonValue& obj, const char* key,
                               const std::string& at) -> std::uint64_t {
    const obs::JsonValue* v = obj.find(key);
    if (!v || !v->is_number()) {
      complain(at + " lacks numeric " + key);
      return 0;
    }
    return v->as_u64();
  };
  const auto check_box = [&](const obs::JsonValue& obj, const char* key,
                             const std::string& at) {
    const obs::JsonValue* b = obj.find(key);
    if (!b || !b->is_object()) {
      complain(at + " lacks object " + key);
      return;
    }
    for (const char* face : {"lo", "hi"}) {
      const obs::JsonValue* f = b->find(face);
      if (!f || !f->is_array() || f->size() != 3)
        complain(at + " " + key + "." + face + " is not a 3-vector");
    }
  };

  if (!doc.is_object() || !doc.contains("format") ||
      !doc.at("format").is_string() ||
      doc.at("format").as_string() != "spio.access_profile") {
    complain("document lacks format spio.access_profile");
    return 1;
  }
  require_u64(doc, "version", "profile");
  require_u64(doc, "unattributed", "profile");
  require_u64(doc, "queries_dropped", "profile");

  // Per-file accounting, summed for the totals cross-check.
  std::uint64_t sum_accesses = 0, sum_scanned = 0, sum_fetched = 0,
                sum_used = 0;
  const obs::JsonValue* datasets = doc.find("datasets");
  if (!datasets || !datasets->is_array()) {
    complain("profile lacks datasets array");
    return 1;
  }
  for (std::size_t d = 0; d < datasets->size(); ++d) {
    const obs::JsonValue& ds = datasets->at(d);
    const std::string at = "dataset " + std::to_string(d);
    if (!ds.is_object()) {
      complain(at + " is not an object");
      continue;
    }
    if (!ds.contains("dir") || !ds.at("dir").is_string())
      complain(at + " lacks string dir");
    require_u64(ds, "record_size", at);
    check_box(ds, "domain", at);
    const obs::JsonValue* files = ds.find("files");
    if (!files || !files->is_array()) {
      complain(at + " lacks files array");
      continue;
    }
    for (std::size_t i = 0; i < files->size(); ++i) {
      const obs::JsonValue& f = files->at(i);
      const std::string fat = at + " file " + std::to_string(i);
      if (!f.is_object()) {
        complain(fat + " is not an object");
        continue;
      }
      if (!f.contains("name") || !f.at("name").is_string())
        complain(fat + " lacks string name");
      if (require_u64(f, "index", fat) != i)
        complain(fat + " has index out of order");
      check_box(f, "bounds", fat);
      const std::uint64_t accesses = require_u64(f, "accesses", fat);
      const std::uint64_t scanned = require_u64(f, "bytes_scanned", fat);
      const std::uint64_t fetched = require_u64(f, "bytes_fetched", fat);
      const std::uint64_t used = require_u64(f, "bytes_used", fat);
      const std::uint64_t outcomes =
          require_u64(f, "hits", fat) + require_u64(f, "misses", fat) +
          require_u64(f, "followers", fat) + require_u64(f, "bypasses", fat);
      if (fetched > scanned) complain(fat + " fetched more than it scanned");
      if (outcomes != accesses)
        complain(fat + " outcome tallies do not sum to accesses");
      const obs::JsonValue* hist = f.find("fetch_us_hist");
      if (!hist || !hist->is_array()) {
        complain(fat + " lacks fetch_us_hist array");
      } else {
        std::uint64_t events = 0;
        for (std::size_t b = 0; b < hist->size(); ++b)
          events += hist->at(b).as_u64();
        const std::uint64_t disk = f.find("misses")->as_u64() +
                                   f.find("bypasses")->as_u64();
        if (events != disk)
          complain(fat + " fetch_us_hist does not sum to disk fetches");
      }
      sum_accesses += accesses;
      sum_scanned += scanned;
      sum_fetched += fetched;
      sum_used += used;
    }
  }

  const obs::JsonValue* totals = doc.find("totals");
  if (!totals || !totals->is_object()) {
    complain("profile lacks totals object");
  } else {
    if (require_u64(*totals, "accesses", "totals") != sum_accesses)
      complain("totals.accesses does not match the per-file sum");
    if (require_u64(*totals, "bytes_scanned", "totals") != sum_scanned)
      complain("totals.bytes_scanned does not match the per-file sum");
    if (require_u64(*totals, "bytes_fetched", "totals") != sum_fetched)
      complain("totals.bytes_fetched does not match the per-file sum");
    if (require_u64(*totals, "bytes_used", "totals") != sum_used)
      complain("totals.bytes_used does not match the per-file sum");
  }

  const obs::JsonValue* queries = doc.find("queries");
  if (!queries || !queries->is_array()) {
    complain("profile lacks queries array");
    return problems == 0 ? 0 : 1;
  }
  std::set<std::uint64_t> span_qids;
  if (trace) span_qids = trace_qids(*trace);
  for (std::size_t i = 0; i < queries->size(); ++i) {
    const obs::JsonValue& q = queries->at(i);
    const std::string at = "query " + std::to_string(i);
    if (!q.is_object()) {
      complain(at + " is not an object");
      continue;
    }
    const std::uint64_t qid = require_u64(q, "qid", at);
    if (qid == 0) complain(at + " has qid 0 (unattributed)");
    if (!q.contains("kind") || !q.at("kind").is_string())
      complain(at + " lacks string kind");
    for (const char* key : {"fetch_us", "filter_us", "merge_us", "total_us"})
      require_u64(q, key, at);
    const std::uint64_t scanned = require_u64(q, "bytes_scanned", at);
    const std::uint64_t fetched = require_u64(q, "bytes_fetched", at);
    const std::uint64_t used = require_u64(q, "bytes_used", at);
    if (fetched > scanned) complain(at + " fetched more than it scanned");
    const obs::JsonValue* qfiles = q.find("files");
    if (!qfiles || !qfiles->is_array()) {
      complain(at + " lacks files array");
      continue;
    }
    std::uint64_t fscanned = 0, ffetched = 0, fused = 0;
    for (std::size_t k = 0; k < qfiles->size(); ++k) {
      const obs::JsonValue& f = qfiles->at(k);
      const std::string fat = at + " file " + std::to_string(k);
      fscanned += require_u64(f, "bytes_scanned", fat);
      ffetched += require_u64(f, "bytes_fetched", fat);
      fused += require_u64(f, "bytes_used", fat);
    }
    if (fscanned != scanned || ffetched != fetched || fused != used)
      complain(at + " per-file byte split does not sum to the query totals");
    if (trace && !span_qids.empty() && qid != 0 && !span_qids.contains(qid))
      complain(at + " qid " + std::to_string(qid) +
               " appears in no trace span");
  }
  if (trace && span_qids.empty())
    complain("--against trace carries no span qids to cross-reference");

  if (problems == 0)
    std::cout << "access profile OK (" << queries->size() << " queries)\n";
  return problems == 0 ? 0 : 1;
}

/// Render an access profile: totals and the hottest files. The spatial
/// view lives in `spio_heatmap`.
void render_profile(const obs::JsonValue& doc, bool csv) {
  const obs::JsonValue& totals = doc.at("totals");
  std::cout << "access profile: " << totals.at("accesses").as_u64()
            << " file accesses, "
            << format_bytes(totals.at("bytes_scanned").as_u64())
            << " scanned, "
            << format_bytes(totals.at("bytes_fetched").as_u64())
            << " from disk, "
            << format_bytes(totals.at("bytes_used").as_u64())
            << " surviving filters (amplification "
            << totals.at("read_amplification").as_double() << ")\n"
            << doc.at("queries").size() << " query record(s), "
            << doc.at("queries_dropped").as_u64() << " dropped\n\n";

  struct Row {
    const obs::JsonValue* f;
    std::string dir;
  };
  std::vector<Row> rows;
  const obs::JsonValue& datasets = doc.at("datasets");
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const obs::JsonValue& ds = datasets.at(d);
    const obs::JsonValue& files = ds.at("files");
    for (std::size_t i = 0; i < files.size(); ++i)
      if (files.at(i).at("accesses").as_u64() > 0)
        rows.push_back({&files.at(i), ds.at("dir").as_string()});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.f->at("bytes_scanned").as_u64() > b.f->at("bytes_scanned").as_u64();
  });
  if (rows.size() > 10) rows.resize(10);
  Table t("hottest files (by bytes scanned)",
          {"file", "accesses", "scanned", "fetched", "used", "amp", "hits",
           "misses"});
  for (const Row& r : rows) {
    t.row()
        .add(r.f->at("name").as_string())
        .add_int(static_cast<long long>(r.f->at("accesses").as_u64()))
        .add(format_bytes(r.f->at("bytes_scanned").as_u64()))
        .add(format_bytes(r.f->at("bytes_fetched").as_u64()))
        .add(format_bytes(r.f->at("bytes_used").as_u64()))
        .add_double(r.f->at("read_amplification").as_double(), 2)
        .add_int(static_cast<long long>(r.f->at("hits").as_u64()))
        .add_int(static_cast<long long>(r.f->at("misses").as_u64()));
  }
  csv ? t.print_csv(std::cout) : t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: spio_trace <trace.json | bundle.json | stats.spio.jsonl | "
      "profile.spio.json | dataset-dir> [--check] [--csv] [--postmortem] "
      "[--against <trace.json>]\n";
  if (argc < 2) {
    std::cerr << kUsage;
    return 2;
  }
  std::filesystem::path target;
  std::filesystem::path against;
  bool check = false, csv = false, postmortem = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
    else if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    else if (std::strcmp(argv[i], "--postmortem") == 0) postmortem = true;
    else if (std::strcmp(argv[i], "--against") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--against needs a trace path\n";
        return 2;
      }
      against = argv[++i];
    }
    else if (target.empty() && argv[i][0] != '-') target = argv[i];
    else {
      std::cerr << "unknown option: " << argv[i] << "\n";
      return 2;
    }
  }
  if (target.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  try {
    if (std::filesystem::is_directory(target)) {
      if (postmortem || (check && obs::postmortem_present(target))) {
        if (!obs::postmortem_present(target)) {
          std::cerr << "no " << obs::kPostmortemFile << " in '"
                    << target.string() << "' (no failed write to explain)\n";
          return 1;
        }
        const obs::JsonValue doc = obs::load_postmortem(target);
        if (check) return check_postmortem(doc);
        render_postmortem(doc);
        return 0;
      }
      if (!obs::run_record_present(target)) {
        std::cerr << "no " << obs::kRunRecordFile << " in '"
                  << target.string() << "' (write with tracing enabled)\n";
        return 1;
      }
      render_record(target, csv);
      return 0;
    }
    const std::vector<std::byte> bytes = read_file(target);
    const std::string_view text(reinterpret_cast<const char*>(bytes.data()),
                                bytes.size());
    {
      std::size_t eol = text.find('\n');
      if (eol == std::string_view::npos) eol = text.size();
      if (is_stats_line(text.substr(0, eol))) {
        if (check) return check_stats(text);
        render_stats(text, csv);
        return 0;
      }
    }
    const obs::JsonValue doc = obs::JsonValue::parse(text);
    const auto format_is = [&](const char* fmt) {
      return doc.is_object() && doc.contains("format") &&
             doc.at("format").is_string() && doc.at("format").as_string() == fmt;
    };
    if (format_is("spio.access_profile")) {
      std::optional<obs::JsonValue> trace_doc;
      if (!against.empty()) {
        const std::vector<std::byte> tb = read_file(against);
        trace_doc = obs::JsonValue::parse(std::string_view(
            reinterpret_cast<const char*>(tb.data()), tb.size()));
      }
      if (check)
        return check_profile(doc, trace_doc ? &*trace_doc : nullptr);
      render_profile(doc, csv);
      return 0;
    }
    const bool is_bundle = format_is("spio.postmortem");
    if (is_bundle || postmortem) {
      if (check) return check_postmortem(doc);
      render_postmortem(doc);
      return 0;
    }
    if (check) return check_trace(doc);
    render_trace(doc, csv);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
