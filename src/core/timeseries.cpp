#include "core/timeseries.hpp"

#include <algorithm>

#include "util/serialize.hpp"

namespace spio {

namespace {
constexpr std::uint32_t kIndexMagic = 0x53455254;  // "TRES"
constexpr std::uint32_t kIndexVersion = 1;

std::vector<int> parse_index(std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  SPIO_CHECK(r.read<std::uint32_t>() == kIndexMagic, FormatError,
             "not a spio time-series index");
  const auto version = r.read<std::uint32_t>();
  SPIO_CHECK(version == kIndexVersion, FormatError,
             "unsupported series index version " << version);
  auto steps = r.read_vector<std::int32_t>();
  SPIO_CHECK(r.at_end(), FormatError, "trailing bytes in series index");
  std::vector<int> out(steps.begin(), steps.end());
  SPIO_CHECK(std::is_sorted(out.begin(), out.end()) &&
                 std::adjacent_find(out.begin(), out.end()) == out.end(),
             FormatError, "series index steps not sorted/unique");
  return out;
}

void save_index(const std::filesystem::path& base,
                const std::vector<int>& steps) {
  BinaryWriter w;
  w.write<std::uint32_t>(kIndexMagic);
  w.write<std::uint32_t>(kIndexVersion);
  std::vector<std::int32_t> s32(steps.begin(), steps.end());
  w.write_vector(s32);
  write_file(base / TimeSeries::kIndexName, w.bytes());
}

}  // namespace

std::filesystem::path TimeSeries::step_dir(const std::filesystem::path& base,
                                           int step) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "step_%06d", step);
  return base / buf;
}

WriteStats TimeSeries::write_step(simmpi::Comm& comm,
                                  const PatchDecomposition& decomp,
                                  const ParticleBuffer& local,
                                  const std::filesystem::path& base,
                                  int step, WriterConfig config) {
  SPIO_CHECK(step >= 0, ConfigError, "step numbers must be non-negative");
  if (comm.rank() == 0) {
    std::error_code ec;
    std::filesystem::create_directories(base, ec);
    SPIO_CHECK(!ec, IoError,
               "cannot create '" << base.string() << "': " << ec.message());
  }
  comm.barrier();

  config.dir = step_dir(base, step);
  const WriteStats stats = write_dataset(comm, decomp, local, config);

  // Rank 0 updates the index after the step's data is durable. The update
  // is a read-modify-write of a rank-0-owned file, so no locking needed.
  if (comm.rank() == 0) {
    std::vector<int> steps;
    if (std::filesystem::exists(base / kIndexName)) {
      steps = parse_index(read_file(base / kIndexName));
    }
    if (!std::binary_search(steps.begin(), steps.end(), step)) {
      steps.insert(std::upper_bound(steps.begin(), steps.end(), step), step);
      save_index(base, steps);
    }
  }
  comm.barrier();
  return stats;
}

void TimeSeries::remove_step(const std::filesystem::path& base, int step) {
  std::vector<int> steps = parse_index(read_file(base / kIndexName));
  const auto it = std::lower_bound(steps.begin(), steps.end(), step);
  SPIO_CHECK(it != steps.end() && *it == step, ConfigError,
             "series has no step " << step);
  steps.erase(it);
  // Update the index before deleting data: a reader racing the removal
  // sees a missing step rather than a truncated one.
  save_index(base, steps);
  std::error_code ec;
  std::filesystem::remove_all(step_dir(base, step), ec);
  SPIO_CHECK(!ec, IoError,
             "cannot remove step directory: " << ec.message());
}

TimeSeries TimeSeries::open(const std::filesystem::path& base) {
  return TimeSeries(base, parse_index(read_file(base / kIndexName)));
}

bool TimeSeries::has_step(int step) const {
  return std::binary_search(steps_.begin(), steps_.end(), step);
}

Dataset TimeSeries::open_step(int step) const {
  SPIO_CHECK(has_step(step), ConfigError,
             "series has no step " << step);
  return Dataset::open(step_dir(base_, step));
}

}  // namespace spio
